package inplace

import (
	"math/rand"
	"testing"
)

func reference(src []int, rows, cols int) []int {
	dst := make([]int, len(src))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dst[j*rows+i] = src[i*cols+j]
		}
	}
	return dst
}

func intSeq(n int) []int {
	x := make([]int, n)
	for i := range x {
		x[i] = i
	}
	return x
}

func equal(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return len(a) == len(b)
}

func TestTransposeExhaustiveSmall(t *testing.T) {
	for rows := 1; rows <= 20; rows++ {
		for cols := 1; cols <= 20; cols++ {
			data := intSeq(rows * cols)
			want := reference(data, rows, cols)
			if err := Transpose(data, rows, cols); err != nil {
				t.Fatalf("%dx%d: %v", rows, cols, err)
			}
			if !equal(data, want) {
				t.Fatalf("%dx%d: wrong result", rows, cols)
			}
		}
	}
}

func TestTransposeAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, m := range []Method{Auto, Algorithm1, GatherOnly, CacheAware, SkinnyMethod} {
		for trial := 0; trial < 20; trial++ {
			rows := 1 + rng.Intn(50)
			cols := 1 + rng.Intn(50)
			data := intSeq(rows * cols)
			want := reference(data, rows, cols)
			if err := TransposeWith(data, rows, cols, Options{Method: m, Workers: 3}); err != nil {
				t.Fatalf("method %v: %v", m, err)
			}
			if !equal(data, want) {
				t.Fatalf("method %v %dx%d: wrong result", m, rows, cols)
			}
		}
	}
}

func TestTransposeDirections(t *testing.T) {
	for _, d := range []Direction{HeuristicDirection, ForceC2R, ForceR2C} {
		for rows := 1; rows <= 12; rows++ {
			for cols := 1; cols <= 12; cols++ {
				data := intSeq(rows * cols)
				want := reference(data, rows, cols)
				if err := TransposeWith(data, rows, cols, Options{Direction: d}); err != nil {
					t.Fatal(err)
				}
				if !equal(data, want) {
					t.Fatalf("direction %d %dx%d: wrong result", d, rows, cols)
				}
			}
		}
	}
}

func TestHeuristicDirectionChoice(t *testing.T) {
	// The heuristic picks the pipeline with the shorter internal
	// columns: C2R's columns are `rows` long, R2C's are `cols` long.
	p, err := NewPlan(100, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.UsesC2R() {
		t.Error("rows > cols must select R2C (shorter internal columns)")
	}
	p, err = NewPlan(10, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.UsesC2R() {
		t.Error("rows < cols must select C2R (shorter internal columns)")
	}
	// Forcing overrides the heuristic.
	p, err = NewPlan(100, 10, Options{Direction: ForceC2R})
	if err != nil {
		t.Fatal(err)
	}
	if !p.UsesC2R() {
		t.Error("ForceC2R must be honored")
	}
}

func TestColMajorOrder(t *testing.T) {
	// A col-major rows×cols array transposed in place becomes the
	// col-major cols×rows transpose; linearly this equals transposing
	// the row-major cols×rows view (Theorem 2).
	rows, cols := 5, 7
	data := intSeq(rows * cols) // col-major rows×cols: element (i,j) at i + j*rows
	// Build the expected col-major transpose.
	want := make([]int, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := data[i+j*rows]
			want[j+i*cols] = v // transposed: (j,i) at j + i*cols (col-major cols×rows)
		}
	}
	if err := TransposeWith(data, rows, cols, Options{Order: ColMajor}); err != nil {
		t.Fatal(err)
	}
	if !equal(data, want) {
		t.Fatalf("col-major transpose wrong:\n got %v\nwant %v", data, want)
	}
}

func TestPlanReuse(t *testing.T) {
	p, err := NewPlan(9, 14, Options{Method: CacheAware})
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows() != 9 || p.Cols() != 14 {
		t.Fatalf("plan dims wrong: %v", p)
	}
	if p.String() == "" {
		t.Fatal("empty plan string")
	}
	for trial := 0; trial < 3; trial++ {
		data := intSeq(9 * 14)
		want := reference(data, 9, 14)
		if err := Do(p, data); err != nil {
			t.Fatal(err)
		}
		if !equal(data, want) {
			t.Fatalf("plan reuse trial %d wrong", trial)
		}
	}
}

func TestErrors(t *testing.T) {
	if err := Transpose(make([]int, 6), 0, 6); err == nil {
		t.Error("zero rows must fail")
	}
	if err := Transpose(make([]int, 5), 2, 3); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := NewPlan(-1, 3, Options{}); err == nil {
		t.Error("negative rows must fail")
	}
	if _, err := NewPlan(2, 3, Options{Method: Method(77)}); err == nil {
		t.Error("unknown method must fail")
	}
	p, _ := NewPlan(2, 3, Options{})
	if err := Do(p, make([]int, 7)); err == nil {
		t.Error("Do length mismatch must fail")
	}
	if err := C2R(make([]int, 5), 2, 3, Options{}); err == nil {
		t.Error("C2R length mismatch must fail")
	}
	if err := C2R(make([]int, 6), -2, -3, Options{}); err == nil {
		t.Error("C2R bad shape must fail")
	}
	if err := R2C(make([]int, 5), 2, 3, Options{}); err == nil {
		t.Error("R2C length mismatch must fail")
	}
	if err := R2C(make([]int, 6), 0, 3, Options{}); err == nil {
		t.Error("R2C bad shape must fail")
	}
}

func TestC2RAndR2CPrimitives(t *testing.T) {
	for m := 1; m <= 14; m++ {
		for n := 1; n <= 14; n++ {
			data := intSeq(m * n)
			want := reference(data, m, n)
			if err := C2R(data, m, n, Options{}); err != nil {
				t.Fatal(err)
			}
			if !equal(data, want) {
				t.Fatalf("C2R %dx%d wrong", m, n)
			}
			if err := R2C(data, m, n, Options{}); err != nil {
				t.Fatal(err)
			}
			if !equal(data, intSeq(m*n)) {
				t.Fatalf("R2C %dx%d did not invert C2R", m, n)
			}
		}
	}
}

func TestAOSToSOARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, sh := range [][2]int{{100, 3}, {1000, 4}, {4097, 7}, {5000, 16}, {333, 2}, {64, 8}} {
		count, fields := sh[0], sh[1]
		data := make([]int, count*fields)
		for i := range data {
			data[i] = rng.Int()
		}
		orig := append([]int(nil), data...)
		if err := AOSToSOA(data, count, fields); err != nil {
			t.Fatal(err)
		}
		// SoA check: field f of structure s is at f*count + s.
		for s := 0; s < count; s += 1 + count/50 {
			for f := 0; f < fields; f++ {
				if data[f*count+s] != orig[s*fields+f] {
					t.Fatalf("count=%d fields=%d: SoA wrong at s=%d f=%d", count, fields, s, f)
				}
			}
		}
		if err := SOAToAOS(data, count, fields); err != nil {
			t.Fatal(err)
		}
		if !equal(data, orig) {
			t.Fatalf("count=%d fields=%d: SoA->AoS did not invert", count, fields)
		}
	}
}

func TestAOSErrors(t *testing.T) {
	if err := AOSToSOA(make([]int, 5), 2, 3); err == nil {
		t.Error("AOSToSOA length mismatch must fail")
	}
	if err := AOSToSOA(make([]int, 6), 0, 3); err == nil {
		t.Error("AOSToSOA bad shape must fail")
	}
	if err := SOAToAOS(make([]int, 5), 2, 3); err == nil {
		t.Error("SOAToAOS length mismatch must fail")
	}
	if err := SOAToAOS(make([]int, 6), 2, 0); err == nil {
		t.Error("SOAToAOS bad shape must fail")
	}
}

func TestAOSWithExplicitOptions(t *testing.T) {
	count, fields := 2048, 6
	data := intSeq(count * fields)
	orig := append([]int(nil), data...)
	if err := AOSToSOA(data, count, fields, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if err := SOAToAOS(data, count, fields, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if !equal(data, orig) {
		t.Fatal("round trip with options failed")
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		Auto: "auto", Algorithm1: "algorithm1", GatherOnly: "gather",
		CacheAware: "cache-aware", SkinnyMethod: "skinny", Method(9): "Method(9)",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("Method(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestSquareMatrix(t *testing.T) {
	n := 64
	data := intSeq(n * n)
	want := reference(data, n, n)
	if err := Transpose(data, n, n); err != nil {
		t.Fatal(err)
	}
	if !equal(data, want) {
		t.Fatal("square transpose wrong")
	}
}

func TestLargeRandomShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("large shapes skipped in -short")
	}
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 8; trial++ {
		rows := 100 + rng.Intn(400)
		cols := 100 + rng.Intn(400)
		data := intSeq(rows * cols)
		want := reference(data, rows, cols)
		if err := TransposeWith(data, rows, cols, Options{Workers: 8}); err != nil {
			t.Fatal(err)
		}
		if !equal(data, want) {
			t.Fatalf("%dx%d: wrong result", rows, cols)
		}
	}
}
