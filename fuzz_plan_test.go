package inplace

import (
	"testing"
)

// FuzzPlannerReuse is the differential fuzz target for the reusable-plan
// path: a Planner is built once and executed TWICE back to back
// (transpose, then inverse-transpose with a second planner, then again),
// each result checked against the out-of-place reference. Running the
// same cached planner twice is the point — a pass that left stale data
// in the recycled scratch arena, a band snapshot slab, or the lazily
// cached cycle decomposition corrupts only the second run, which a
// single-shot fuzz target would never see.
//
// The seed corpus pins the structurally distinct corners: coprime prime
// shapes (no pre-rotation), gcd-heavy shapes (pre-rotation and short
// rotation cycles), skinny AoS-like shapes in both orientations (banded
// sweeps, whole-row cycle following), degenerate vectors, and every
// method × direction combination across them.
func FuzzPlannerReuse(f *testing.F) {
	f.Add(uint16(97), uint16(101), uint8(0), uint8(0), uint8(1)) // primes, coprime
	f.Add(uint16(96), uint16(120), uint8(3), uint8(0), uint8(2)) // gcd 24
	f.Add(uint16(64), uint16(64), uint8(1), uint8(0), uint8(4))  // square, gcd = m
	f.Add(uint16(2000), uint16(4), uint8(4), uint8(1), uint8(1)) // skinny C2R
	f.Add(uint16(4), uint16(2000), uint8(4), uint8(2), uint8(3)) // skinny R2C
	f.Add(uint16(1), uint16(173), uint8(2), uint8(0), uint8(1))  // degenerate row
	f.Add(uint16(251), uint16(1), uint8(0), uint8(2), uint8(2))  // degenerate column
	f.Add(uint16(512), uint16(8), uint8(4), uint8(0), uint8(8))  // skinny, many workers
	f.Add(uint16(30), uint16(42), uint8(3), uint8(1), uint8(1))  // gcd 6, forced C2R
	f.Fuzz(func(t *testing.T, mRaw, nRaw uint16, methodRaw, dirRaw, workersRaw uint8) {
		rows := int(mRaw%3000) + 1
		cols := int(nRaw%3000) + 1
		if rows*cols > 1<<20 {
			t.Skip("shape too large for fuzz budget")
		}
		o := Options{
			Method:    Method(methodRaw % 5),
			Direction: Direction(dirRaw % 3),
			Workers:   int(workersRaw%8) + 1,
		}

		fwd, err := NewPlanner[uint32](rows, cols, o)
		if err != nil {
			t.Fatal(err)
		}
		inv, err := NewPlanner[uint32](cols, rows, o)
		if err != nil {
			t.Fatal(err)
		}

		orig := make([]uint32, rows*cols)
		for i := range orig {
			orig[i] = uint32(i)*2654435761 + 12345
		}
		want := make([]uint32, len(orig))
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want[j*rows+i] = orig[i*cols+j]
			}
		}

		data := append([]uint32(nil), orig...)
		for round := 0; round < 2; round++ {
			if err := fwd.Execute(data); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			for i := range data {
				if data[i] != want[i] {
					t.Fatalf("%dx%d %+v round %d: transpose wrong at %d: got %d want %d",
						rows, cols, o, round, i, data[i], want[i])
				}
			}
			if err := inv.Execute(data); err != nil {
				t.Fatalf("round %d inverse: %v", round, err)
			}
			for i := range data {
				if data[i] != orig[i] {
					t.Fatalf("%dx%d %+v round %d: round trip wrong at %d: got %d want %d",
						rows, cols, o, round, i, data[i], orig[i])
				}
			}
		}
	})
}
