GO ?= go

.PHONY: ci vet build test race fuzz bench tune-smoke clean

# ci is the full gate: static checks, build, tests, the race detector
# (short mode keeps the race shapes small), and a capped autotuner run.
ci: vet build test race tune-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# fuzz runs each fuzz target for a short budget; raise FUZZTIME for a
# longer campaign.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzTranspose -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzPlannerReuse -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzAOSRoundTrip -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzWisdomRoundTrip -fuzztime $(FUZZTIME) ./internal/tune

bench:
	$(GO) test -bench . -benchmem .

# tune-smoke exercises the whole autotuner pipeline end to end on tiny
# shapes with capped measurement budgets: batch-tune, write a wisdom
# file, and read it back. Seconds, not minutes — cheap enough for ci.
tune-smoke:
	mkdir -p results
	$(GO) run ./cmd/xposetune -shapes 64x48,512x6,32x96 -elem 8 -workers 1 -fast -o results/wisdom-smoke.json
	$(GO) run ./cmd/xposetune -list results/wisdom-smoke.json

clean:
	$(GO) clean
	rm -rf results
