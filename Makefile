GO ?= go

.PHONY: ci vet lint lint-report lint-bench lint-race vuln build test race fuzz bench bench-gate bench-baseline tune-smoke ooc-smoke serve-smoke perm-smoke store-smoke clean

# ci is the full gate: static checks (vet plus the xposelint suite,
# with its golden tests re-run under the race detector and a wall-clock
# budget on the full-repo lint), build, tests, the race detector (short
# mode keeps the race shapes small), a capped autotuner run, an
# out-of-core round trip on a real temp file, the daemon selftest, the
# benchmark regression gate against the committed baseline, and a
# best-effort vulnerability scan.
ci: vet lint lint-race lint-bench build test race tune-smoke ooc-smoke serve-smoke perm-smoke store-smoke bench-gate vuln

vet:
	$(GO) vet ./...

# lint runs the repository's own analyzers (internal/analyzers): hot
# path allocation, index-overflow guards, strength-reduced division,
# pool hygiene, lock discipline (locksafe), goroutine/timer leaks
# (leakcheck), wire-length bounds (wiresafe) and error-sentinel wrapping
# (errsentinel). Non-zero exit on any unsuppressed finding.
lint:
	$(GO) run ./cmd/xposelint ./...

# lint-report writes the machine-readable findings (suppressed ones
# included, with their reasons) to results/lint-report.json; the output
# is sorted and root-relative, so two reports diff textually.
lint-report:
	mkdir -p results
	$(GO) run ./cmd/xposelint -json ./... > results/lint-report.json || true
	@echo "lint-report: results/lint-report.json"

# lint-race re-runs the analyzer golden and metadata tests under the
# race detector: the dataflow analyzers share fact maps across a
# package's analyzer sequence, and the goldens drive every analyzer, so
# this is the cheap way to prove the sharing is race-free. Patterns are
# anchored so the target runs exactly the analyzer tests.
lint-race:
	$(GO) test -race -run '^(TestGolden|TestSuppressionMetadata|TestMultiAllowMetadata)$$' ./internal/analyzers
	$(GO) test -race ./internal/analyzers/lintkit

# lint-bench enforces a wall-clock budget on the full-repo lint: the
# dataflow engine fixpoints must stay lint-fast, not compile-slow. The
# binary is prebuilt so the budget measures analysis, not go build.
LINT_BUDGET_SECS ?= 60
lint-bench:
	mkdir -p results
	$(GO) build -o results/xposelint.bin ./cmd/xposelint
	@start=$$(date +%s); \
	./results/xposelint.bin ./... >/dev/null || exit 1; \
	end=$$(date +%s); took=$$((end - start)); \
	echo "lint-bench: full-repo lint took $${took}s (budget $(LINT_BUDGET_SECS)s)"; \
	if [ $$took -gt $(LINT_BUDGET_SECS) ]; then \
		echo "lint-bench: FAIL — lint exceeded the $(LINT_BUDGET_SECS)s budget"; exit 1; \
	fi

# vuln scans with govulncheck when it is installed and the vulndb is
# reachable; otherwise it reports what it skipped and succeeds, so air-
# gapped ci stays green.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vuln: govulncheck reported issues or could not reach the vulndb (non-fatal)"; \
	else \
		echo "vuln: govulncheck not installed; skipping"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# fuzz runs each fuzz target for a short budget; raise FUZZTIME for a
# longer campaign. Patterns are anchored so each invocation runs exactly
# the named target (unanchored, FuzzTranspose also matches
# FuzzTransposeBatch and friends, and go test refuses to fuzz more than
# one target at a time).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz '^FuzzTranspose$$' -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz '^FuzzPermuteAxes$$' -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz '^FuzzPlannerReuse$$' -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz '^FuzzAOSRoundTrip$$' -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz '^FuzzWisdomRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/tune
	$(GO) test -fuzz '^FuzzOOCRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/ooc
	$(GO) test -fuzz '^FuzzTilestore$$' -fuzztime $(FUZZTIME) ./internal/tilestore

bench:
	$(GO) test -bench . -benchmem .

# bench-gate is the perf-regression gate: measure the quick preset (an
# anchored -run pattern pins the micro families so the run stays in the
# seconds range even if the matrix grows) and diff it against the
# committed baseline. Alloc-count regressions and missing series fail
# hard; wall-clock deltas only warn, because the baseline may have been
# measured on a different host where throughput does not transfer.
BENCH_GATE_RUN = ^(transpose|planner|aos_to_soa|ooc|permute|tilestore)_
bench-gate:
	mkdir -p results
	$(GO) run ./cmd/benchorch run -preset quick -seed 2014 -run '$(BENCH_GATE_RUN)' -q -json results/bench-latest.json
	$(GO) run ./cmd/benchorch compare -perf warn results/bench-baseline.json results/bench-latest.json

# bench-baseline refreshes the committed gate baseline in place; commit
# the result with `git add -f results/bench-baseline.json` (results/ is
# otherwise ignored).
bench-baseline:
	mkdir -p results
	$(GO) run ./cmd/benchorch run -preset quick -seed 2014 -run '$(BENCH_GATE_RUN)' -q -json results/bench-baseline.json

# tune-smoke exercises the whole autotuner pipeline end to end on tiny
# shapes with capped measurement budgets: batch-tune, write a wisdom
# file, and read it back. Seconds, not minutes — cheap enough for ci.
tune-smoke:
	mkdir -p results
	$(GO) run ./cmd/xposetune -shapes 64x48,512x6,32x96 -elem 8 -workers 1 -fast -o results/wisdom-smoke.json
	$(GO) run ./cmd/xposetune -list results/wisdom-smoke.json

# ooc-smoke round-trips the out-of-core engine on a real temp file,
# journaled and verified, under the race detector: the xposeooc selftest
# plus the acceptance tests of the public TransposeFile surface.
ooc-smoke:
	$(GO) run ./cmd/xposeooc -selftest -budget 64k
	$(GO) test -race -run 'TestTransposeFile|TestResumeAfterKill' . ./internal/ooc

# perm-smoke round-trips a small NHWC tensor file through xpose
# -dims/-perm: NHWC -> NCHW, then the inverse permutation, and the
# result must be byte-identical to the original.
perm-smoke:
	mkdir -p results
	$(GO) build -o results/xpose.bin ./cmd/xpose
	head -c 4096 /dev/urandom > results/perm-smoke.bin
	cp results/perm-smoke.bin results/perm-smoke.orig
	./results/xpose.bin -dims 2x8x8x4 -perm 0,3,1,2 -elem 8 results/perm-smoke.bin
	./results/xpose.bin -dims 2x4x8x8 -perm 0,2,3,1 -elem 8 results/perm-smoke.bin
	cmp results/perm-smoke.bin results/perm-smoke.orig
	@echo "perm-smoke: NHWC<->NCHW round trip byte-identical"

# store-smoke runs the columnar tile store's acceptance demo: a
# projection must read strictly fewer backend bytes than a full scan,
# repeated scans must run >90% out of the block cache, and an ingest
# killed mid-write must leave the dataset absent-or-fully-valid.
store-smoke:
	$(GO) run ./cmd/xposestore selftest

# serve-smoke boots the xposed daemon in-process and runs its
# acceptance demo: 64 concurrent clients over TCP with plan sharing and
# coalescing, a spilled job killed mid-upload and resumed across a
# server restart, and every claim re-checked from the /stats scrape.
serve-smoke:
	$(GO) run ./cmd/xposed -selftest

# clean keeps results/bench-baseline.json: it is committed (the
# bench-gate reference), not a build product.
clean:
	$(GO) clean
	@if [ -d results ]; then find results -mindepth 1 ! -name bench-baseline.json -delete; fi
