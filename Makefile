GO ?= go

.PHONY: ci vet build test race fuzz bench clean

# ci is the full gate: static checks, build, tests, and the race
# detector (short mode keeps the race shapes small).
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# fuzz runs each fuzz target for a short budget; raise FUZZTIME for a
# longer campaign.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzTranspose -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzPlannerReuse -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzAOSRoundTrip -fuzztime $(FUZZTIME) .

bench:
	$(GO) test -bench . -benchmem .

clean:
	$(GO) clean
	rm -rf results
