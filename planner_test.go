package inplace_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"inplace"
)

func transposeRef(data []uint64, rows, cols int) []uint64 {
	out := make([]uint64, len(data))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out[j*rows+i] = data[i*cols+j]
		}
	}
	return out
}

func TestPlannerMatchesReference(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{97, 101}, {96, 120}, {64, 64}, {2000, 4}, {4, 2000}, {1, 17}, {17, 1},
	}
	methods := []inplace.Method{
		inplace.Auto, inplace.Algorithm1, inplace.GatherOnly,
		inplace.CacheAware, inplace.SkinnyMethod,
	}
	for _, sh := range shapes {
		for _, m := range methods {
			for _, workers := range []int{1, 4} {
				pl, err := inplace.NewPlanner[uint64](sh.rows, sh.cols, inplace.Options{Method: m, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				data := make([]uint64, sh.rows*sh.cols)
				for i := range data {
					data[i] = uint64(i) * 0x9e3779b97f4a7c15
				}
				want := transposeRef(data, sh.rows, sh.cols)
				// Two rounds through the same planner: the second run
				// executes against the recycled scratch state.
				for round := 0; round < 2; round++ {
					if err := pl.Execute(data); err != nil {
						t.Fatal(err)
					}
					for i := range data {
						if data[i] != want[i] {
							t.Fatalf("%dx%d %v workers=%d round %d: wrong at %d",
								sh.rows, sh.cols, m, workers, round, i)
						}
					}
					copy(data, want)
					want = transposeRef(data, sh.cols, sh.rows)
					pl2, err := inplace.NewPlanner[uint64](sh.cols, sh.rows, inplace.Options{Method: m, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					pl = pl2
				}
			}
		}
	}
}

func TestPlannerErrors(t *testing.T) {
	if _, err := inplace.NewPlanner[int](0, 5); !errors.Is(err, inplace.ErrShape) {
		t.Errorf("NewPlanner(0, 5): got %v, want ErrShape", err)
	}
	pl, err := inplace.NewPlanner[int](3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Execute(make([]int, 14)); !errors.Is(err, inplace.ErrLength) {
		t.Errorf("Execute with short buffer: got %v, want ErrLength", err)
	}
	if pl.Rows() != 3 || pl.Cols() != 5 {
		t.Errorf("Rows/Cols = %d/%d, want 3/5", pl.Rows(), pl.Cols())
	}
}

// TestPlannerSharedConcurrently drives one Planner from many goroutines
// on distinct buffers — the documented concurrency contract. Under
// `go test -race` this checks that concurrent executions never share a
// scratch state, a band snapshot slab, or a worker frame, across both
// the sequential and the pool-dispatched parallel paths.
func TestPlannerSharedConcurrently(t *testing.T) {
	const goroutines = 8
	const iters = 6
	configs := []inplace.Options{
		{Workers: 1, Method: inplace.CacheAware},
		{Workers: 4, Method: inplace.CacheAware},
		{Workers: 4, Method: inplace.SkinnyMethod, Direction: inplace.ForceC2R},
		{Workers: 3, Method: inplace.GatherOnly},
	}
	for ci, o := range configs {
		o := o
		t.Run(fmt.Sprintf("config%d", ci), func(t *testing.T) {
			const rows, cols = 611, 16
			pl, err := inplace.NewPlanner[uint64](rows, cols, o)
			if err != nil {
				t.Fatal(err)
			}
			base := make([]uint64, rows*cols)
			for i := range base {
				base[i] = uint64(i)*0x9e3779b97f4a7c15 + uint64(ci)
			}
			want := transposeRef(base, rows, cols)
			back, err := inplace.NewPlanner[uint64](cols, rows, o)
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					data := append([]uint64(nil), base...)
					for it := 0; it < iters; it++ {
						if err := pl.Execute(data); err != nil {
							errs[g] = err
							return
						}
						for i := range data {
							if data[i] != want[i] {
								errs[g] = fmt.Errorf("goroutine %d iter %d: wrong at %d", g, it, i)
								return
							}
						}
						if err := back.Execute(data); err != nil {
							errs[g] = err
							return
						}
						for i := range data {
							if data[i] != base[i] {
								errs[g] = fmt.Errorf("goroutine %d iter %d: round trip wrong at %d", g, it, i)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestTransposeWithCachedPlanner exercises the implicit planner cache:
// repeated TransposeWith calls of one shape hit the same cached planner
// and must stay correct run after run.
func TestTransposeWithCachedPlanner(t *testing.T) {
	const rows, cols = 123, 77
	base := make([]uint64, rows*cols)
	for i := range base {
		base[i] = uint64(i) * 2654435761
	}
	want := transposeRef(base, rows, cols)
	for round := 0; round < 3; round++ {
		data := append([]uint64(nil), base...)
		if err := inplace.TransposeWith(data, rows, cols, inplace.Options{Workers: 2}); err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("round %d: wrong at %d", round, i)
			}
		}
	}
}
