package inplace

import (
	"fmt"
	"reflect"
	"time"

	"inplace/internal/parallel"
	"inplace/internal/stats"
	"inplace/internal/tensor"
	"inplace/internal/tune"
)

// Autotuning for PermuteAxes: TunePermute measures the planner's
// strategy candidates (both factorizations, plus the cycle fallback on
// small tensors) across the worker budget and records the winner in the
// wisdom table's perm section, keyed by the canonical (dims, perm) form
// so every raw shape that reduces to the same passes shares the entry.

// lookupPermWisdom returns the recorded permutation decision for the
// canonical (dims, perm) strings with the given element size under the
// worker budget that workersOpt resolves to.
func lookupPermWisdom(dims, perm string, elemSize, workersOpt int) (tune.PermDecision, bool) {
	k := tune.PermKey{Dims: dims, Perm: perm, ElemSize: elemSize, MaxWorkers: parallel.Workers(workersOpt)}
	wisdomTab.mu.RLock()
	defer wisdomTab.mu.RUnlock()
	return wisdomTab.t.LookupPerm(k)
}

func storePermWisdom(k tune.PermKey, d tune.PermDecision) {
	wisdomTab.mu.Lock()
	wisdomTab.t.StorePerm(k, d)
	wisdomTab.mu.Unlock()
	flushPlannerCache()
}

// PermuteTuneResult reports the winning decision of one TunePermute
// call. Dims and Perm are the canonical forms the decision is keyed
// under, which may have lower rank than the tuned shape.
type PermuteTuneResult struct {
	Dims       string
	Perm       string
	ElemSize   int
	MaxWorkers int // resolved budget the decision is keyed under

	Strategy string
	Workers  int
	GBps     float64
}

// String summarizes the result.
func (r PermuteTuneResult) String() string {
	return fmt.Sprintf("tuned %s perm %s (%dB, budget %d): %s workers=%d (%.2f GB/s)",
		r.Dims, r.Perm, r.ElemSize, r.MaxWorkers, r.Strategy, r.Workers, r.GBps)
}

// cycleTuneMaxBytes bounds the tensors the tuner will measure the cycle
// strategy on: its O(n·L) index walk is only ever competitive on small
// tensors, and measuring it on large ones would dominate the tuning
// budget for no information.
const cycleTuneMaxBytes = 1 << 21

// TunePermute measures the real strategy space for permuting the axes
// of row-major dims tensors of T with perm — greedy vs. inverse
// factorization, worker counts at 1 and the budget, plus the
// cycle-leader fallback on small tensors — records the winner in the
// process wisdom table's perm section, and returns it. Subsequent
// permutation planners for any shape with the same canonical form (with
// Options.Tuning at WisdomAuto) use the measured decision; SaveWisdom
// persists it for future processes.
func TunePermute[T any](dims, perm []int, cfgs ...TuneConfig) (PermuteTuneResult, error) {
	c := TuneConfig{}
	if len(cfgs) > 0 {
		c = cfgs[0]
	}
	cfg := c.internal()
	if cfg.Reps <= 0 {
		cfg.Reps = 5
	}
	if cfg.MinSample <= 0 {
		cfg.MinSample = time.Millisecond
	}
	if cfg.MaxCandidate <= 0 {
		cfg.MaxCandidate = 80 * time.Millisecond
	}
	elemSize := int(reflect.TypeFor[T]().Size())
	budget := parallel.Workers(c.Workers)

	// Validate and canonicalize once; an identity permutation has nothing
	// to measure.
	probe, err := planPermute(dims, perm, Options{Tuning: WisdomOff}, elemSize, "")
	if err != nil {
		return PermuteTuneResult{}, err
	}
	if probe.Strategy() == permStrategyNoop {
		return PermuteTuneResult{}, fmt.Errorf("%w (identity permutation)", ErrNoTuneResult)
	}

	strategies := []string{tensor.StrategyGreedy, tensor.StrategyInverse}
	if probe.size*elemSize <= cycleTuneMaxBytes {
		strategies = append(strategies, tensor.StrategyCycle)
	}
	workerSet := []int{1}
	if budget > 1 {
		workerSet = append(workerSet, budget)
	}

	data := make([]T, probe.size)
	best := tune.PermDecision{}
	bestCost := 0.0
	for _, strat := range strategies {
		for _, w := range workerSet {
			if strat == tensor.StrategyCycle && w > 1 {
				continue // the cycle walk is inherently sequential
			}
			pp, err := planPermute(dims, perm, Options{Workers: w, Tuning: WisdomOff}, elemSize, strat)
			if err != nil {
				return PermuteTuneResult{}, err
			}
			pl := newPermutePlanner[T](pp)
			run := func() {
				// Permutations are data-independent, so timing does not
				// care that successive runs keep permuting the buffer.
				if err := pl.Execute(data); err != nil {
					panic(err)
				}
			}
			run() // warm the scratch arenas
			samples := tune.Measure(run, tune.MeasureOpts{
				Reps:      cfg.Reps,
				MinSample: cfg.MinSample,
				MaxTotal:  cfg.MaxCandidate,
			})
			cost := stats.Median(samples)
			if bestCost == 0 || cost < bestCost {
				best = tune.PermDecision{Strategy: strat, Workers: w}
				bestCost = cost
			}
		}
	}
	if bestCost <= 0 {
		return PermuteTuneResult{}, fmt.Errorf("%w (%s perm %s)", ErrNoTuneResult, probe.canonDims, probe.canonPerm)
	}
	// One pass reads and writes the tensor once; ns/op and GB/s share
	// the 1e9 factor (the 2D tuner's convention).
	best.GBps = 2 * float64(probe.size) * float64(elemSize) / bestCost

	k := tune.PermKey{Dims: probe.canonDims, Perm: probe.canonPerm, ElemSize: elemSize, MaxWorkers: budget}
	storePermWisdom(k, best)
	return PermuteTuneResult{
		Dims: k.Dims, Perm: k.Perm, ElemSize: elemSize, MaxWorkers: budget,
		Strategy: best.Strategy, Workers: best.Workers, GBps: best.GBps,
	}, nil
}

// TunePermuteElem is TunePermute for callers that know the element width
// in bytes but not the type — raw-buffer CLIs like cmd/xposetune.
// Supported widths are 1, 2, 4 and 8.
func TunePermuteElem(dims, perm []int, elemSize int, cfgs ...TuneConfig) (PermuteTuneResult, error) {
	switch elemSize {
	case 1:
		return TunePermute[uint8](dims, perm, cfgs...)
	case 2:
		return TunePermute[uint16](dims, perm, cfgs...)
	case 4:
		return TunePermute[uint32](dims, perm, cfgs...)
	case 8:
		return TunePermute[uint64](dims, perm, cfgs...)
	default:
		return PermuteTuneResult{}, fmt.Errorf("%w: %d (want 1, 2, 4 or 8)", ErrElemSize, elemSize)
	}
}

// PermWisdomLen returns the number of permutation decisions in the
// process wisdom table.
func PermWisdomLen() int {
	wisdomTab.mu.RLock()
	defer wisdomTab.mu.RUnlock()
	return wisdomTab.t.PermLen()
}
