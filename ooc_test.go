package inplace

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeTempMatrix materializes a random rows×cols matrix of e-byte
// elements in a temp file and returns the file and the expected
// transposed bytes.
func writeTempMatrix(t *testing.T, rows, cols, e int, seed int64) (*os.File, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	in := make([]byte, rows*cols*e)
	rng.Read(in)
	want := make([]byte, len(in))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			copy(want[(j*rows+i)*e:(j*rows+i+1)*e], in[(i*cols+j)*e:(i*cols+j+1)*e])
		}
	}
	f, err := os.CreateTemp(t.TempDir(), "ooc-*.mat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(in, 0); err != nil {
		t.Fatal(err)
	}
	return f, want
}

func readBack(t *testing.T, f *os.File, n int) []byte {
	t.Helper()
	got := make([]byte, n)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestTransposeFileLargerThanBudget is the acceptance path: the file is
// at least 4x the memory budget, the result is bit-exact against the
// out-of-place reference, and the engine's peak resident scratch stays
// within the budget.
func TestTransposeFileLargerThanBudget(t *testing.T) {
	const rows, cols, e = 256, 192, 8
	fileBytes := int64(rows * cols * e) // 384 KiB
	budget := fileBytes / 4             // 96 KiB
	f, want := writeTempMatrix(t, rows, cols, e, 1)
	defer f.Close()

	st, err := TransposeFile(f, rows, cols, e, OOCOptions{Budget: budget})
	if err != nil {
		t.Fatalf("TransposeFile: %v", err)
	}
	if got := readBack(t, f, len(want)); !bytes.Equal(got, want) {
		t.Fatal("result differs from out-of-place reference")
	}
	if int64(st.PeakResidentBytes) > budget {
		t.Fatalf("peak resident %d exceeds budget %d", st.PeakResidentBytes, budget)
	}
	if st.SegmentsTransformed == 0 || st.BytesRead == 0 || st.BytesWritten == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

// TestTransposeFileJournalResume kills a journaled run mid-pass (via a
// write quota on the data backend) and checks that resume converges to
// the bit-exact transpose.
func TestTransposeFileJournalResume(t *testing.T) {
	const rows, cols, e = 64, 96, 8
	f, want := writeTempMatrix(t, rows, cols, e, 2)
	defer f.Close()
	jpath := filepath.Join(t.TempDir(), "journal")
	jf, err := os.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()

	budget, err := OOCMinBudget(rows, cols, e)
	if err != nil {
		t.Fatal(err)
	}
	budget *= 4

	// First attempt dies mid-pass: enough writes for a few segments to
	// commit (a narrow vertical panel takes one strided write per row),
	// then the backend goes dark.
	quota := &writeQuota{f: f, remaining: 150}
	o := OOCOptions{Budget: budget, Journal: jf, Retries: 1}
	if _, err := TransposeFile(quota, rows, cols, e, o); !errors.Is(err, ErrOOCShortWrite) {
		t.Fatalf("want ErrOOCShortWrite from quota'd run, got %v", err)
	}

	// Resume against the healthy file.
	o.Resume = true
	o.Verify = true
	st, err := TransposeFile(f, rows, cols, e, o)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := readBack(t, f, len(want)); !bytes.Equal(got, want) {
		t.Fatal("resumed result differs from reference")
	}
	if st.SegmentsSkipped == 0 {
		t.Fatalf("resume re-did every segment: %+v", st)
	}
}

// writeQuota passes reads through and fails writes permanently once the
// quota is spent.
type writeQuota struct {
	f         *os.File
	remaining int
}

func (w *writeQuota) ReadAt(p []byte, off int64) (int, error) { return w.f.ReadAt(p, off) }

func (w *writeQuota) WriteAt(p []byte, off int64) (int, error) {
	if w.remaining <= 0 {
		return 0, errors.New("write quota exhausted")
	}
	w.remaining--
	return w.f.WriteAt(p, off)
}

func TestNewOOCPlannerValidates(t *testing.T) {
	if _, err := NewOOCPlanner(0, 5, 8); !errors.Is(err, ErrShape) {
		t.Fatalf("bad shape: got %v", err)
	}
	if _, err := NewOOCPlanner(1000, 1000, 8, OOCOptions{Budget: 64}); !errors.Is(err, ErrOOCBudget) {
		t.Fatalf("tiny budget: got %v", err)
	}
	if _, err := NewOOCPlanner(8, 8, 8, OOCOptions{Resume: true}); !errors.Is(err, ErrOOCNoJournal) {
		t.Fatalf("resume sans journal: got %v", err)
	}
	p, err := NewOOCPlanner(64, 48, 8, OOCOptions{Budget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if p.Budget() != 1<<20 {
		t.Fatalf("budget not retained: %d", p.Budget())
	}
}

func TestOOCMinBudget(t *testing.T) {
	got, err := OOCMinBudget(100, 300, 8)
	if err != nil || got != 2*300*8 {
		t.Fatalf("OOCMinBudget = %d, %v", got, err)
	}
	if _, err := OOCMinBudget(-1, 3, 8); !errors.Is(err, ErrShape) {
		t.Fatalf("bad shape: %v", err)
	}
}

func TestTuneOOCRecordsWisdom(t *testing.T) {
	ClearWisdom()
	defer ClearWisdom()
	const rows, cols, e = 32, 48, 8
	budget, err := OOCMinBudget(rows, cols, e)
	if err != nil {
		t.Fatal(err)
	}
	budget *= 8
	res, err := TuneOOC(rows, cols, e, budget, TuneConfig{Fast: true})
	if err != nil {
		t.Fatalf("TuneOOC: %v", err)
	}
	if res.Depth < 1 || res.Workers < 1 || res.SegmentBytes < 1 {
		t.Fatalf("implausible tuning result: %+v", res)
	}
	// A zero-valued planner for the same shape and budget class now picks
	// up the measured schedule.
	p, err := NewOOCPlanner(rows, cols, e, OOCOptions{Budget: budget, Tuning: WisdomRequired})
	if err != nil {
		t.Fatalf("wisdom not consulted: %v", err)
	}
	if p.cfg.Depth != res.Depth || p.cfg.Workers != res.Workers {
		t.Fatalf("planner ignored wisdom: cfg=%+v res=%+v", p.cfg, res)
	}
	// Without wisdom, WisdomRequired fails.
	ClearWisdom()
	if _, err := NewOOCPlanner(rows, cols, e, OOCOptions{Budget: budget, Tuning: WisdomRequired}); !errors.Is(err, ErrNoWisdom) {
		t.Fatalf("want ErrNoWisdom, got %v", err)
	}
}

func TestOOCWisdomRoundTripsThroughFile(t *testing.T) {
	ClearWisdom()
	defer ClearWisdom()
	const rows, cols, e = 16, 24, 8
	budget, _ := OOCMinBudget(rows, cols, e)
	budget *= 8
	if _, err := TuneOOC(rows, cols, e, budget, TuneConfig{Fast: true}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wisdom.json")
	if err := SaveWisdom(path); err != nil {
		t.Fatal(err)
	}
	ClearWisdom()
	if err := LoadWisdom(path); err != nil {
		t.Fatal(err)
	}
	if _, err := NewOOCPlanner(rows, cols, e, OOCOptions{Budget: budget, Tuning: WisdomRequired}); err != nil {
		t.Fatalf("ooc wisdom lost in round trip: %v", err)
	}
}
