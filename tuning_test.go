package inplace_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"inplace"
	"inplace/internal/tune"
)

func TestTuneRecordsWisdomAndPlannerConsultsIt(t *testing.T) {
	defer inplace.ClearWisdom()
	inplace.ClearWisdom()

	res, err := inplace.Tune[uint64](96, 120, inplace.TuneConfig{Workers: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if inplace.WisdomLen() != 1 {
		t.Fatalf("WisdomLen = %d after one Tune, want 1", inplace.WisdomLen())
	}

	pl, err := inplace.NewPlanner[uint64](96, 120, inplace.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Plan().Method(); got != res.Method {
		t.Errorf("tuned planner method = %v, want the tuned decision %v", got, res.Method)
	}
	if got := pl.Plan().UsesC2R(); got != (res.Direction == inplace.ForceC2R) {
		t.Errorf("tuned planner C2R = %v, direction decision was %v", got, res.Direction)
	}

	// The tuned plan must still compute the correct transposition.
	data := make([]uint64, 96*120)
	for i := range data {
		data[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	want := transposeRef(data, 96, 120)
	if err := pl.Execute(data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("tuned plan transposed incorrectly at %d", i)
		}
	}

	// WisdomOff must reproduce the untuned heuristics.
	off, err := inplace.NewPlanner[uint64](96, 120, inplace.Options{Workers: 1, Tuning: inplace.WisdomOff})
	if err != nil {
		t.Fatal(err)
	}
	if off.Plan().Method() != inplace.CacheAware || !off.Plan().UsesC2R() {
		t.Errorf("WisdomOff plan = %v, want the heuristic cache-aware C2R", off.Plan())
	}
}

func TestWisdomKeyedByElementSize(t *testing.T) {
	defer inplace.ClearWisdom()
	inplace.ClearWisdom()

	if _, err := inplace.Tune[uint32](64, 96, inplace.TuneConfig{Workers: 1, Fast: true}); err != nil {
		t.Fatal(err)
	}
	// A different element size must not match the recorded decision.
	if _, err := inplace.NewPlanner[uint64](64, 96, inplace.Options{Workers: 1, Tuning: inplace.WisdomRequired}); !errors.Is(err, inplace.ErrNoWisdom) {
		t.Errorf("uint64 planner matched uint32 wisdom (err=%v)", err)
	}
	if _, err := inplace.NewPlanner[uint32](64, 96, inplace.Options{Workers: 1, Tuning: inplace.WisdomRequired}); err != nil {
		t.Errorf("uint32 planner missed its own wisdom: %v", err)
	}
	// float32 shares uint32's size and therefore its wisdom.
	if _, err := inplace.NewPlanner[float32](64, 96, inplace.Options{Workers: 1, Tuning: inplace.WisdomRequired}); err != nil {
		t.Errorf("float32 planner missed same-size wisdom: %v", err)
	}
}

func TestWisdomRequired(t *testing.T) {
	defer inplace.ClearWisdom()
	inplace.ClearWisdom()

	_, err := inplace.NewPlanner[uint64](33, 44, inplace.Options{Tuning: inplace.WisdomRequired})
	if !errors.Is(err, inplace.ErrNoWisdom) {
		t.Fatalf("WisdomRequired without wisdom: err = %v, want ErrNoWisdom", err)
	}
	if _, err := inplace.Tune[uint64](33, 44, inplace.TuneConfig{Fast: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := inplace.NewPlanner[uint64](33, 44, inplace.Options{Tuning: inplace.WisdomRequired}); err != nil {
		t.Fatalf("WisdomRequired with wisdom: %v", err)
	}
}

func TestExplicitOptionsWinOverWisdom(t *testing.T) {
	defer inplace.ClearWisdom()
	inplace.ClearWisdom()

	if _, err := inplace.Tune[uint64](120, 96, inplace.TuneConfig{Workers: 1, Fast: true}); err != nil {
		t.Fatal(err)
	}
	pl, err := inplace.NewPlanner[uint64](120, 96, inplace.Options{
		Workers: 1, Method: inplace.Algorithm1, Direction: inplace.ForceR2C,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Plan().Method() != inplace.Algorithm1 {
		t.Errorf("explicit Method overridden by wisdom: got %v", pl.Plan().Method())
	}
	if pl.Plan().UsesC2R() {
		t.Error("explicit Direction overridden by wisdom")
	}
}

func TestSaveLoadWisdomRoundTrip(t *testing.T) {
	defer inplace.ClearWisdom()
	inplace.ClearWisdom()

	if _, err := inplace.Tune[uint64](64, 80, inplace.TuneConfig{Workers: 1, Fast: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := inplace.Tune[uint64](500, 5, inplace.TuneConfig{Workers: 1, Fast: true}); err != nil {
		t.Fatal(err)
	}
	before, err := inplace.NewPlanner[uint64](64, 80, inplace.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "wisdom.json")
	if err := inplace.SaveWisdom(path); err != nil {
		t.Fatal(err)
	}

	inplace.ClearWisdom()
	if inplace.WisdomLen() != 0 {
		t.Fatal("ClearWisdom left entries behind")
	}
	if err := inplace.LoadWisdom(path); err != nil {
		t.Fatal(err)
	}
	if inplace.WisdomLen() != 2 {
		t.Fatalf("WisdomLen = %d after reload, want 2", inplace.WisdomLen())
	}
	after, err := inplace.NewPlanner[uint64](64, 80, inplace.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if before.Plan().Method() != after.Plan().Method() || before.Plan().UsesC2R() != after.Plan().UsesC2R() {
		t.Errorf("reloaded wisdom resolves differently: %v vs %v", before.Plan(), after.Plan())
	}

	// Save → load → save must be byte-identical (deterministic format).
	path2 := filepath.Join(dir, "wisdom2.json")
	if err := inplace.SaveWisdom(path2); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(path2)
	if string(a) != string(b) {
		t.Error("wisdom serialization is not deterministic across a round trip")
	}
}

func TestLoadWisdomCorruptAndVersionSkew(t *testing.T) {
	defer inplace.ClearWisdom()
	inplace.ClearWisdom()
	dir := t.TempDir()

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("definitely { not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inplace.LoadWisdom(bad); !errors.Is(err, tune.ErrCorrupt) {
		t.Errorf("corrupt wisdom load: err = %v, want ErrCorrupt", err)
	}

	future := filepath.Join(dir, "future.json")
	if err := os.WriteFile(future, []byte(`{"version": 99, "entries": [{"weird": 1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inplace.LoadWisdom(future); err != nil {
		t.Errorf("unknown-version wisdom must be skipped, not fatal: %v", err)
	}
	if inplace.WisdomLen() != 0 {
		t.Errorf("unknown-version wisdom merged %d entries, want 0", inplace.WisdomLen())
	}
}
