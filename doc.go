// Package inplace provides parallel in-place transposition of
// rectangular matrices in O(mn) work with O(max(m,n)) auxiliary space,
// implementing the decomposition of Catanzaro, Keller and Garland,
// "A Decomposition for In-place Matrix Transposition" (PPoPP 2014).
//
// Instead of following the cycles of the full mn-element transposition
// permutation — which needs either O(mn) cycle storage or O(mn log mn)
// work — the transposition is decomposed into independent row-wise and
// column-wise permutations ("C2R", columns-to-rows, and its inverse
// "R2C"): a column pre-rotation, a per-row shuffle by a closed-form
// bijection, and a column shuffle that factors into a rotation plus one
// shared row permutation. Every pass is embarrassingly parallel with
// perfect load balance.
//
// # Quick start
//
//	data := make([]float64, rows*cols) // row-major rows×cols
//	if err := inplace.Transpose(data, rows, cols); err != nil { ... }
//	// data now holds the row-major cols×rows transpose
//
// # Reusable plans
//
// Repeated transposes of one shape should reuse a Planner, which
// precomputes everything shape-dependent — the decomposition constants
// (gcd cofactors, modular inverses, fixed-point reciprocals), the pass
// schedule (direction heuristic, chunk partitions, rotation closures),
// the cycle decomposition of the shared row permutation, and a recycled
// scratch arena — so that steady-state Execute calls perform no heap
// allocation at all and multi-worker plans run on a persistent worker
// pool instead of spawning goroutines per pass:
//
//	pl, _ := inplace.NewPlanner[float64](rows, cols)
//	for _, buf := range buffers {
//	    pl.Execute(buf) // zero allocations after the first call
//	}
//
// A Planner is safe for concurrent use on distinct buffers. Plan reuse
// pays off when the per-call planning cost is a visible fraction of the
// data movement: small matrices transposed in a loop, and skinny
// AoS↔SoA shapes, where building the row-permutation cycles is O(rows)
// time and memory — comparable to the transpose itself. For one-off
// large transposes the planning cost is negligible and Transpose is
// fine; it (and TransposeWith, TransposeBatch) transparently caches
// planners per (shape, options, element type), so even ad-hoc repeated
// calls hit the amortized path.
//
// The lower-level NewPlan/Do API remains for callers that only need the
// untyped shape resolution:
//
//	p, _ := inplace.NewPlan(rows, cols, inplace.Options{})
//	inplace.Do(p, data)
//
// # Array of Structures ↔ Structure of Arrays
//
// Transposing a count×fields row-major array converts an Array of
// Structures into a Structure of Arrays. AOSToSOA and SOAToAOS validate
// and delegate to the transposition; the direction heuristic then keeps
// every column operation within the tiny structure dimension, which is
// the paper's §6.1 specialization ("all column operations in on-chip
// memory"):
//
//	inplace.AOSToSOA(words, count, fields)
//
// # Engine selection
//
// Options.Method picks the pass structure: Algorithm1 (the paper's
// scatter-based Algorithm 1), GatherOnly (the gather formulation used by
// the paper's parallel CPU implementation, §5.1), CacheAware (coarse/fine
// rotations and cycle-following row permutes, §4.6–4.7, §5.2), or
// SkinnyMethod (the banded-sweep formulation of §6.1). The default Auto
// runs the cache-aware engine with the shape heuristic of §5.2: the C2R
// and R2C pipelines have complementary performance landscapes with a
// crossover at square shapes, and the heuristic picks the pipeline whose
// internal columns are shorter (see Options.Direction to force either).
//
// The in-register SIMD formulation of §6.2, which lets a simulated SIMD
// processor perform Array-of-Structures accesses at full memory
// bandwidth, lives in internal/simd with its bandwidth model in
// internal/memsim; cmd/benchsuite reproduces the paper's figures with it.
//
// # Autotuning and wisdom
//
// The static heuristics above pick well on average, but the real
// crossover between the engine variants, the C2R/R2C direction, worker
// counts and tile widths depends on the machine (cache sizes, core
// count, memory bandwidth). Tune measures the actual candidate space
// for one shape and records the winner in a process-wide "wisdom" table
// — the same measured-plan-selection idea as FFTW's wisdom:
//
//	inplace.Tune[float64](rows, cols)        // measure once...
//	pl, _ := inplace.NewPlanner[float64](rows, cols)
//	pl.Execute(data)                         // ...runs the measured winner
//
// Wisdom is consulted whenever a typed planner resolves a shape whose
// Options leave the corresponding fields at their zero values: an
// explicit Method, Direction, Workers or BlockWidth always wins over
// wisdom, Options.Tuning == WisdomOff ignores the table entirely, and
// WisdomRequired fails with ErrNoWisdom instead of falling back to the
// heuristic. Entries are keyed by (rows, cols, element size, resolved
// worker budget), so float64 and uint64 share wisdom but float32 does
// not, and a decision tuned for one worker budget never leaks into
// another.
//
// SaveWisdom and LoadWisdom persist the table as versioned JSON.
// Loading merges (incoming entries win), rejects corrupt files with an
// error satisfying errors.Is(err, tune.ErrCorrupt), and silently skips
// files written by an unknown future format version. Wisdom measures
// this machine: a file tuned on one host is safe but pointless to load
// on another, and should be re-tuned after hardware or Go toolchain
// changes. Tuning costs real time (tens of milliseconds per shape with
// TuneConfig.Fast, a second or so at default budgets) — tune shapes
// that will be transposed many times, or batch-tune offline with
// cmd/xposetune and ship the file.
//
// # N-dimensional axis permutation
//
// PermuteAxes reorders the axes of a row-major rank-k tensor in place,
// with the 2D transpose as the rank-2 case (numpy convention: result
// axis j is source axis perm[j]):
//
//	// NHWC -> NCHW
//	inplace.PermuteAxes(data, []int{8, 32, 32, 16}, []int{0, 3, 1, 2},
//	    inplace.Options{})
//
// The planner canonicalizes first — size-1 axes are stripped and axes
// that stay adjacent in order collapse into one — and then factors the
// canonical permutation into at most k-1 suffix-group exchanges, each
// of which is a batched in-place 2D transpose over contiguous slabs
// executed by the same Schedule/Engine stack as Transpose. A cost model
// chooses between the greedy and inverse factorizations; when
// Options.MaxScratchBytes caps auxiliary space below both
// factorizations' floors, a strength-reduced cycle-leader walk with
// O(1) extra space runs instead. Rank-2 perm [1, 0] takes exactly the
// 2D planning path (same wisdom, zero warm allocations), and
// NewPermutePlanner amortizes planning the same way NewPlanner does.
// TunePermute measures strategy and worker candidates and stores the
// winner in the wisdom table under the canonical form, so raw shapes
// that collapse to the same form share the entry; the wisdom file's
// optional "perm" section persists it and older files load unchanged.
//
// # Out-of-core transposition
//
// TransposeFile transposes a matrix stored on any io.ReaderAt+io.WriterAt
// backend (*os.File included) in place on the backend, under a
// caller-specified scratch budget — the matrix never needs to fit in
// memory:
//
//	f, _ := os.OpenFile("matrix.bin", os.O_RDWR, 0)
//	stats, err := inplace.TransposeFile(f, rows, cols, 8, inplace.OOCOptions{
//	    Budget: 256 << 20,
//	})
//
// The schedule is the same three-pass decomposition lifted from cache
// blocks to storage segments: every pass touches the buffer along one
// axis only, so it splits into independent column-slab or row-run
// panels streamed through a prefetch/transform/write pipeline with
// write-combined backend spans. The budget floor is
// 2*max(rows,cols)*elemSize bytes — the decomposition's O(max(m,n))
// auxiliary bound made literal. Any positive element size is accepted:
// the engine permutes opaque fixed-size records.
//
// With OOCOptions.Journal set, every segment write is preceded by a
// durable undo image and followed by a checksummed commit record, so an
// interrupted run re-invoked with Resume converges to the bit-identical
// result; Verify re-reads the final pass against the committed
// checksums. Failures wrap the typed sentinels ErrOOCShortRead,
// ErrOOCShortWrite, ErrOOCCorruptSegment, ErrOOCBudget,
// ErrOOCJournalMismatch, ErrOOCJournalCorrupt and ErrOOCNoJournal.
// NewOOCPlanner validates and resolves the schedule once for repeated
// runs; TuneOOC measures schedule candidates on a temp file and records
// the winner in the wisdom table, keyed by shape, element size and the
// budget's binary magnitude. cmd/xposeooc wraps all of it for raw files.
//
// # Static analysis
//
// The hot-path guarantees above — zero allocation in steady state,
// overflow-checked index algebra, strength-reduced division — are
// enforced at build time by the xposelint suite (internal/analyzers):
//
//	go run ./cmd/xposelint ./...
//
// Functions on the per-execution path carry an //xpose:hotpath
// directive in their doc comment, which subjects them to the strict
// checks (no append/make/map/fmt/reflect, no raw % or / by
// plan-constant divisors); every dimension product feeding a subscript,
// make, or len comparison must be dominated by a
// mathutil.CheckedMul-style guard. Intentional exceptions are annotated
// in place with "//xpose:allow <analyzer> -- reason"; the reason is
// mandatory and unused directives are themselves flagged. `make lint`
// runs the suite and is part of the `make ci` gate. See
// internal/analyzers for the full contract.
package inplace
