// Package client is the Go client for the xposed transpose daemon: it
// speaks the internal/server/wire protocol over one TCP connection and
// exposes in-place transposition of byte matrices as blocking calls.
// Results are verified end-to-end with CRC64-ECMA. Failures the server
// reports without poisoning the connection come back as typed errors —
// *ShedError carries the admission controller's retry hint, and every
// other server-side code is a *RemoteError — so callers branch with
// errors.As and keep the connection.
//
// Jobs too large for the daemon's memory budget spill server-side
// through the out-of-core engine and stay resumable by token: if the
// connection drops mid-job, redial and call Resume with the same token
// and geometry, and the exchange continues from the last durable byte.
package client

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"net"
	"time"

	"inplace/internal/server/wire"
)

// ShedError reports an admission-control rejection: the daemon is at
// capacity and suggests retrying after RetryAfter.
type ShedError struct {
	RetryAfter time.Duration
	Msg        string
}

// Error describes the shed.
func (e *ShedError) Error() string {
	return fmt.Sprintf("client: shed by server (retry after %v): %s", e.RetryAfter, e.Msg)
}

// RemoteError is any non-shed failure the server reported with a typed
// Error frame. Code is one of the wire.Code* values.
type RemoteError struct {
	Code uint16
	Msg  string
}

// Error describes the remote failure.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("client: server error code %d: %s", e.Code, e.Msg)
}

// ErrChecksum reports a result stream whose CRC64 did not match the
// server's Result header.
var ErrChecksum = errors.New("client: result checksum mismatch")

// ErrProtocol reports a frame the client-side state machine cannot
// accept; the connection must be discarded.
var ErrProtocol = errors.New("client: protocol violation")

// Client is one connection to an xposed daemon. It is not safe for
// concurrent use; open one Client per goroutine (the daemon multiplexes
// them server-side through the shared planner and admission budget).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	hdr  [wire.HeaderLen]byte
	ctrl [wire.MaxControlFrame]byte
	ack  wire.HelloAck
}

// Dial connects to a daemon's data port and performs the handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	var hello [wire.HelloLen]byte
	wire.Hello{Version: wire.Version}.Marshal(&hello)
	if err := wire.WriteFrame(c.bw, &c.hdr, wire.TypeHello, hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	t, payload, err := c.readFrame()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if t != wire.TypeHelloAck {
		conn.Close()
		return nil, fmt.Errorf("%w: expected HelloAck, got type %d", ErrProtocol, t)
	}
	if err := c.ack.Unmarshal(payload); err != nil {
		conn.Close()
		return nil, err
	}
	if c.ack.Version != wire.Version {
		conn.Close()
		return nil, wire.ErrBadVersion
	}
	return c, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Limits returns the session limits the server announced: the
// data-frame ceiling, the per-job in-memory payload limit beyond which
// jobs spill, and the total admission budget.
func (c *Client) Limits() (maxData int, memLimit, budget uint64) {
	return int(c.ack.MaxData), c.ack.MemLimit, c.ack.Budget
}

// NewToken returns a fresh random job token.
func NewToken() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("client: no entropy for token: " + err.Error())
	}
	return binary.BigEndian.Uint64(b[:])
}

// Transpose sends the row-major rows×cols matrix of elem-byte elements
// in data to the daemon and overwrites data with the transpose. The
// server picks the execution mode (in-memory, coalesced, or spilled).
func (c *Client) Transpose(data []byte, rows, cols, elem int) error {
	_, err := c.TransposeToken(NewToken(), data, rows, cols, elem, 0)
	return err
}

// TransposeToken is Transpose with a caller-chosen token and explicit
// flags (wire.FlagSpill forces the out-of-core path). The returned mode
// is the server's wire.Mode* choice. On a connection failure mid-job a
// spilled job remains resumable via Resume with the same token.
func (c *Client) TransposeToken(token uint64, data []byte, rows, cols, elem int, flags uint32) (mode uint8, err error) {
	var job [wire.JobLen]byte
	wire.Job{
		Token: token,
		Rows:  uint64(rows), Cols: uint64(cols),
		Elem: uint32(elem), Flags: flags,
	}.Marshal(&job)
	if err := wire.WriteFrame(c.bw, &c.hdr, wire.TypeJob, job[:]); err != nil {
		return 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}
	return c.finishExchange(data)
}

// Resume reattaches to a spilled job after a disconnect (on a freshly
// dialed Client). The geometry must match the original job; data must
// be the original payload so the upload can continue from the server's
// last durable byte. On success data holds the transpose.
func (c *Client) Resume(token uint64, data []byte, rows, cols, elem int) error {
	var rsm [wire.ResumeLen]byte
	wire.Resume{
		Token: token,
		Rows:  uint64(rows), Cols: uint64(cols),
		Elem: uint32(elem),
	}.Marshal(&rsm)
	if err := wire.WriteFrame(c.bw, &c.hdr, wire.TypeResume, rsm[:]); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	_, err := c.finishExchange(data)
	return err
}

// finishExchange drives a job from the Accept/Error answer through
// upload, Result and download.
func (c *Client) finishExchange(data []byte) (mode uint8, err error) {
	t, payload, err := c.readFrame()
	if err != nil {
		return 0, err
	}
	switch t {
	case wire.TypeError:
		return 0, c.typedError(payload)
	case wire.TypeAccept:
	default:
		return 0, fmt.Errorf("%w: expected Accept, got type %d", ErrProtocol, t)
	}
	var acc wire.Accept
	if err := acc.Unmarshal(payload); err != nil {
		return 0, err
	}
	if acc.Offset > uint64(len(data)) {
		return 0, fmt.Errorf("%w: accept offset %d beyond payload %d", ErrProtocol, acc.Offset, len(data))
	}

	if err := c.upload(data[acc.Offset:]); err != nil {
		return acc.Mode, err
	}
	return acc.Mode, c.download(data)
}

// upload streams rest as Data frames within the negotiated ceiling.
func (c *Client) upload(rest []byte) error {
	chunk := int(c.ack.MaxData)
	if chunk <= 0 {
		chunk = wire.DefaultMaxData
	}
	for off := 0; off < len(rest); off += chunk {
		end := off + chunk
		if end > len(rest) {
			end = len(rest)
		}
		if err := wire.WriteFrame(c.bw, &c.hdr, wire.TypeData, rest[off:end]); err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

// download reads Result then the Data stream into data, verifies the
// checksum and consumes the closing Done.
func (c *Client) download(data []byte) error {
	t, payload, err := c.readFrame()
	if err != nil {
		return err
	}
	switch t {
	case wire.TypeError:
		return c.typedError(payload)
	case wire.TypeResult:
	default:
		return fmt.Errorf("%w: expected Result, got type %d", ErrProtocol, t)
	}
	var res wire.Result
	if err := res.Unmarshal(payload); err != nil {
		return err
	}

	off := 0
	for {
		typ, n, err := wire.ReadHeader(c.br, &c.hdr, int(c.ack.MaxData))
		if err != nil {
			return err
		}
		if typ == wire.TypeDone {
			if n != 0 {
				return fmt.Errorf("%w: Done with payload", ErrProtocol)
			}
			break
		}
		if typ != wire.TypeData {
			return fmt.Errorf("%w: expected Data, got type %d", ErrProtocol, typ)
		}
		if off+n > len(data) {
			return fmt.Errorf("%w: result overruns payload (%d+%d > %d)", ErrProtocol, off, n, len(data))
		}
		if err := wire.ReadPayload(c.br, data[off:off+n]); err != nil {
			return err
		}
		off += n
	}
	if off != len(data) {
		return fmt.Errorf("%w: result short: %d of %d bytes", ErrProtocol, off, len(data))
	}
	if crc64.Checksum(data, crcTab) != res.CRC {
		return ErrChecksum
	}
	return nil
}

// crcTab is the CRC64-ECMA table, matching the server's.
var crcTab = crc64.MakeTable(crc64.ECMA)

// readFrame reads one control frame into the client's scratch buffer.
func (c *Client) readFrame() (wire.Type, []byte, error) {
	t, n, err := wire.ReadHeader(c.br, &c.hdr, int(c.ack.MaxData))
	if err != nil {
		if err == io.EOF {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if n > len(c.ctrl) {
		return 0, nil, fmt.Errorf("%w: control frame of %d bytes", ErrProtocol, n)
	}
	if err := wire.ReadPayload(c.br, c.ctrl[:n]); err != nil {
		return 0, nil, err
	}
	return t, c.ctrl[:n], nil
}

// typedError maps a wire Error payload onto the package's error types.
func (c *Client) typedError(payload []byte) error {
	var m wire.ErrorMsg
	if err := m.Unmarshal(payload); err != nil {
		return err
	}
	if m.Code == wire.CodeShed {
		return &ShedError{
			RetryAfter: time.Duration(m.RetryAfterMillis) * time.Millisecond,
			Msg:        m.Msg,
		}
	}
	return &RemoteError{Code: m.Code, Msg: m.Msg}
}
