// Quickstart: transpose a rectangular matrix in place and reuse a plan.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"inplace"
)

func main() {
	// A small demonstration first: a 3×8 row-major matrix.
	const m, n = 3, 8
	data := make([]int, m*n)
	for i := range data {
		data[i] = i
	}
	fmt.Println("before (3x8):")
	printMatrix(data, m, n)

	if err := inplace.Transpose(data, m, n); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after (8x3), same buffer:")
	printMatrix(data, n, m)

	// A realistic size: transpose a 1500×2300 float64 matrix in place.
	// NewPlan amortizes the gcd/modular-inverse/reciprocal setup when the
	// same shape is transposed repeatedly.
	rows, cols := 1500, 2300
	//xpose:allow indexoverflow -- demo dimensions are small constants
	big := make([]float64, rows*cols)
	for i := range big {
		big[i] = float64(i)
	}
	plan, err := inplace.NewPlan(rows, cols, inplace.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan: %v\n", plan)

	start := time.Now()
	if err := inplace.Do(plan, big); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	gb := 2 * float64(rows) * float64(cols) * 8 / 1e9
	fmt.Printf("transposed %dx%d float64 in %v (%.2f GB/s)\n",
		rows, cols, elapsed.Round(time.Microsecond), gb/elapsed.Seconds())

	// Verify a few entries: element (i, j) must now live at (j, i).
	for _, p := range [][2]int{{0, 1}, {17, 1200}, {1499, 2299}} {
		i, j := p[0], p[1]
		got := big[j*rows+i]
		want := float64(i*cols + j)
		if got != want {
			log.Fatalf("verification failed at (%d,%d): got %v want %v", i, j, got, want)
		}
	}
	fmt.Println("spot checks passed")
}

func printMatrix(x []int, rows, cols int) {
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			fmt.Printf("%4d", x[i*cols+j])
		}
		fmt.Println()
	}
}
