// Simdgather: the paper's Section 6 on a simulated SIMD processor. A
// warp of 32 lanes loads 24-byte structures from an Array of Structures
// three ways — compiler-style direct element accesses, 128-bit hardware
// vector accesses, and the paper's in-register C2R/R2C transpose built
// from shuffles and a branch-free barrel rotator — and the memory model
// reports the coalescing efficiency and effective bandwidth of each
// (the mechanism behind the paper's coalesced_ptr<T>).
//
// Run with: go run ./examples/simdgather
package main

import (
	"fmt"
	"log"

	"inplace/internal/memsim"
	"inplace/internal/simd"
)

func main() {
	const (
		lanes    = 32
		words    = 3 // 24-byte structures
		nStructs = 1 << 14
	)
	// Build the AoS: structure s, word w = s*1000 + w.
	data := make([]uint64, nStructs*words)
	for s := 0; s < nStructs; s++ {
		for w := 0; w < words; w++ {
			data[s*words+w] = uint64(s*1000 + w)
		}
	}

	strategies := []struct {
		name string
		load func(w *simd.Warp, idx []int)
	}{
		{"Direct (element-wise)", func(w *simd.Warp, idx []int) { simd.DirectLoad(w, data, idx) }},
		{"Vector (128-bit)", func(w *simd.Warp, idx []int) { simd.VectorLoad(w, data, idx) }},
		{"C2R (in-register transpose)", func(w *simd.Warp, idx []int) {
			simd.CoalescedLoad(w, simd.PlanFor(w), data, idx)
		}},
	}

	fmt.Printf("AoS gather of %d-byte structures, %d structures, modeled K20c\n\n", words*8, nStructs)
	for _, st := range strategies {
		mem := memsim.New(memsim.K20c())
		warp := simd.NewWarp(lanes, words, mem)
		idx := make([]int, lanes)
		// Sweep the whole array warp by warp (unit stride).
		for base := 0; base+lanes <= nStructs; base += lanes {
			for l := range idx {
				idx[l] = base + l
			}
			st.load(warp, idx)
			// Verify the last warp's registers: lane l must hold its
			// structure regardless of strategy.
			for l := 0; l < lanes; l++ {
				for w := 0; w < words; w++ {
					if got := warp.Get(w, l); got != uint64((base+l)*1000+w) {
						log.Fatalf("%s: lane %d word %d wrong: %d", st.name, l, w, got)
					}
				}
			}
		}
		s := mem.Stats()
		fmt.Printf("%-28s %6.1f GB/s  (coalescing efficiency %4.0f%%, %d transactions, %d warp instructions)\n",
			st.name, s.EffectiveGBps, s.Efficiency*100, s.Transactions, s.Loads+s.Stores+s.ALU)
	}

	fmt.Println("\nThe in-register transpose reads the same bytes with a fraction of the")
	fmt.Println("transactions: the warp fetches contiguous rows and un-transposes in")
	fmt.Println("registers, so no strided access ever reaches the memory system.")
}
