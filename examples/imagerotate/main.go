// Imagerotate: rotate a grayscale image by 90 degrees in place. A W×H
// raster rotation is a transpose plus a row (or column) reversal; doing
// the transpose in place means even images that barely fit in memory can
// be rotated without a second buffer — the "data structures dictated by
// interface constraints" scenario from the paper's introduction.
//
// The example synthesizes a PGM test image, rotates it clockwise in
// place, and writes both for inspection.
//
// Run with: go run ./examples/imagerotate [outdir]
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"inplace"
)

func main() {
	outdir := "."
	if len(os.Args) > 1 {
		outdir = os.Args[1]
	}
	const w, h = 1280, 720
	img := synthesize(w, h)
	if err := writePGM(filepath.Join(outdir, "original.pgm"), img, w, h); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	rotateCW(img, w, h)
	elapsed := time.Since(start)

	// The raster is now h×w (the image is w tall and h wide).
	if err := writePGM(filepath.Join(outdir, "rotated.pgm"), img, h, w); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rotated %dx%d image 90° clockwise in place in %v\n", w, h, elapsed.Round(time.Microsecond))
	fmt.Printf("wrote %s and %s\n", filepath.Join(outdir, "original.pgm"), filepath.Join(outdir, "rotated.pgm"))

	// Verify: original pixel (x, y) must be at (W-1-y, x) after a
	// clockwise rotation, i.e. rotated[x*h + (h-1-y)].
	orig := synthesize(w, h)
	for _, p := range [][2]int{{0, 0}, {w - 1, 0}, {0, h - 1}, {w - 1, h - 1}, {123, 456}} {
		x, y := p[0], p[1]
		if img[x*h+(h-1-y)] != orig[y*w+x] {
			log.Fatalf("rotation wrong at (%d,%d)", x, y)
		}
	}
	fmt.Println("corner and spot checks passed")
}

// rotateCW rotates the row-major w×h raster 90° clockwise in place:
// transpose (h×w -> w×h raster) then reverse each row.
func rotateCW(img []byte, w, h int) {
	if err := inplace.Transpose(img, h, w); err != nil {
		log.Fatal(err)
	}
	// img is now a w×h raster (w rows of h pixels); reversing each row
	// turns the counter-clockwise-transposed image into the clockwise
	// rotation.
	for r := 0; r < w; r++ {
		row := img[r*h : (r+1)*h]
		for i, j := 0, len(row)-1; i < j; i, j = i+1, j-1 {
			row[i], row[j] = row[j], row[i]
		}
	}
}

// synthesize draws a test pattern: concentric rings plus a bright corner
// marker so orientation errors are obvious.
func synthesize(w, h int) []byte {
	//xpose:allow indexoverflow -- demo image dimensions are small constants
	img := make([]byte, w*h)
	cx, cy := float64(w)/2, float64(h)/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			r := math.Sqrt(dx*dx + dy*dy)
			img[y*w+x] = byte(128 + 127*math.Sin(r/18))
		}
	}
	for y := 0; y < 40; y++ {
		for x := 0; x < 40; x++ {
			img[y*w+x] = 255 // top-left marker
		}
	}
	return img
}

func writePGM(path string, img []byte, w, h int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", w, h); err != nil {
		return err
	}
	_, err = f.Write(img)
	return err
}
