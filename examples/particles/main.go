// Particles: the Array-of-Structures problem the paper's introduction
// motivates. A particle system is stored as an AoS because a physics
// interface hands structures in and out, but a field-wise analysis pass
// (here: center-of-mass and kinetic energy) wants the
// Structure-of-Arrays layout for sequential field access. The skinny
// in-place conversion lets the same buffer serve both phases with no
// second allocation.
//
// Run with: go run ./examples/particles
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"inplace"
)

// A particle is 8 float64 fields: position (x,y,z), velocity (vx,vy,vz),
// mass, charge — a 64-byte structure, the worst case of the paper's
// Figure 8.
const fields = 8

const (
	fX = iota
	fY
	fZ
	fVX
	fVY
	fVZ
	fMass
	fCharge
)

func main() {
	const count = 200_000
	buf := make([]float64, count*fields)

	// Phase 1: structure-wise initialization (AoS-friendly).
	for p := 0; p < count; p++ {
		s := buf[p*fields : (p+1)*fields]
		fp := float64(p)
		s[fX], s[fY], s[fZ] = math.Sin(fp), math.Cos(fp), fp/count
		s[fVX], s[fVY], s[fVZ] = math.Cos(fp)/2, math.Sin(fp)/2, 1
		s[fMass] = 1 + math.Mod(fp, 3)
		s[fCharge] = math.Mod(fp, 2)*2 - 1
	}

	// AoS-layout analysis (strided field access) for reference timing.
	t0 := time.Now()
	comA, keA := analyzeAoS(buf, count)
	aosTime := time.Since(t0)

	// Convert to SoA in place; each field becomes one contiguous array.
	t0 = time.Now()
	if err := inplace.AOSToSOA(buf, count, fields); err != nil {
		log.Fatal(err)
	}
	convTime := time.Since(t0)

	t0 = time.Now()
	comS, keS := analyzeSoA(buf, count)
	soaTime := time.Since(t0)

	fmt.Printf("particles: %d (%d fields, %d MB)\n", count, fields, count*fields*8/1_000_000)
	fmt.Printf("AoS analysis: %v  -> com=(%.4f %.4f %.4f) ke=%.1f\n", aosTime.Round(time.Microsecond), comA[0], comA[1], comA[2], keA)
	fmt.Printf("in-place AoS->SoA: %v (%.2f GB/s)\n", convTime.Round(time.Microsecond),
		2*float64(count*fields*8)/convTime.Seconds()/1e9)
	fmt.Printf("SoA analysis: %v  -> com=(%.4f %.4f %.4f) ke=%.1f\n", soaTime.Round(time.Microsecond), comS[0], comS[1], comS[2], keS)

	for d := 0; d < 3; d++ {
		if math.Abs(comA[d]-comS[d]) > 1e-9 {
			log.Fatalf("layout conversion changed the physics: %v vs %v", comA, comS)
		}
	}
	if math.Abs(keA-keS) > 1e-6*math.Abs(keA) {
		log.Fatalf("kinetic energy mismatch: %v vs %v", keA, keS)
	}

	// Hand the buffer back to the structure-wise interface.
	if err := inplace.SOAToAOS(buf, count, fields); err != nil {
		log.Fatal(err)
	}
	s0 := buf[0:fields]
	if s0[fX] != math.Sin(0) || s0[fMass] != 1 {
		log.Fatal("round trip corrupted particle 0")
	}
	fmt.Println("SoA->AoS round trip verified")
}

// analyzeAoS computes mass-weighted center of mass and kinetic energy
// with strided accesses into the AoS layout.
func analyzeAoS(buf []float64, count int) (com [3]float64, ke float64) {
	var mass float64
	for p := 0; p < count; p++ {
		s := buf[p*fields : (p+1)*fields]
		m := s[fMass]
		mass += m
		com[0] += m * s[fX]
		com[1] += m * s[fY]
		com[2] += m * s[fZ]
		ke += 0.5 * m * (s[fVX]*s[fVX] + s[fVY]*s[fVY] + s[fVZ]*s[fVZ])
	}
	for d := range com {
		com[d] /= mass
	}
	return com, ke
}

// analyzeSoA computes the same quantities with contiguous field arrays.
func analyzeSoA(buf []float64, count int) (com [3]float64, ke float64) {
	field := func(f int) []float64 { return buf[f*count : (f+1)*count] }
	xs, ys, zs := field(fX), field(fY), field(fZ)
	vxs, vys, vzs := field(fVX), field(fVY), field(fVZ)
	ms := field(fMass)
	var mass float64
	for p := 0; p < count; p++ {
		m := ms[p]
		mass += m
		com[0] += m * xs[p]
		com[1] += m * ys[p]
		com[2] += m * zs[p]
		ke += 0.5 * m * (vxs[p]*vxs[p] + vys[p]*vys[p] + vzs[p]*vzs[p])
	}
	for d := range com {
		com[d] /= mass
	}
	return com, ke
}
