package inplace

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"inplace/internal/mathutil"
	"inplace/internal/parallel"
	"inplace/internal/stats"
	"inplace/internal/tensor"
)

// Rank-generic axis permutation: PermuteAxes reorders the axes of a
// row-major rank-k tensor in place, generalizing Transpose (the rank-2
// case with perm [1,0]) to arbitrary rank. The 2D three-pass engine
// stays the only data mover: the permutation is canonicalized (size-1
// axes stripped, fused runs collapsed — see internal/tensor) and the
// normal form factored into a sequence of batched 2D transpositions,
// each executed by the existing Schedule/Engine per contiguous slab.
// The rank-2 [1,0] case canonicalizes to exactly one single-slab step
// planned by the same newPlanElem path Transpose uses, so there is one
// planning path, not two.
//
// When the factored path's scratch floor exceeds Options.
// MaxScratchBytes, the planner falls back to a cycle-leader walk over
// the affine flat-index map (the reversal-method regime: O(1) auxiliary
// space, O(n·L) index work).

// PermutePlan caches the canonical form, chosen strategy and factored 2D
// step plans for permuting one (dims, perm) pair repeatedly.
type PermutePlan struct {
	dims tensor.Shape // raw dims as given
	perm tensor.Perm  // raw perm as given
	size int          // product of dims, proven to fit in int

	canonDims string // canonical shape key, e.g. "8x1024x16"
	canonPerm string // canonical perm key, e.g. "0,2,1"

	strategy string     // tensor.Strategy* name, or "noop"
	steps    []permStep // factored 2D passes (strategy greedy/inverse)
	cyc      *cyclePlan // cycle-leader fallback (strategy cycle)
	workers  int        // resolved Workers option, for slab dispatch
}

// permStep is one batched pass: transpose `slabs` back-to-back slabs of
// `stride` elements each, with the shared 2D plan.
type permStep struct {
	slabs  int
	stride int
	plan   *Plan
}

// permStrategyNoop names the empty plan of an identity permutation.
const permStrategyNoop = "noop"

// permShapeErr, permErr and permWisdomErr build the validation errors
// out of line, mirroring shapeErr/lengthErr.
func permShapeErr(dims []int, cause error) error {
	if errors.Is(cause, tensor.ErrOverflow) {
		return fmt.Errorf("%w (dims %v)", ErrOverflow, dims)
	}
	return fmt.Errorf("%w (dims %v)", ErrShape, dims)
}

func permErr(perm, dims []int) error {
	return fmt.Errorf("%w (perm %v for rank %d)", ErrPerm, perm, len(dims))
}

func permWisdomErr(dims, perm string, elemSize int) error {
	return fmt.Errorf("%w (%s perm %s, %d-byte elements)", ErrNoWisdom, dims, perm, elemSize)
}

// planPermute validates, canonicalizes and factors one permutation
// problem. forced, when non-empty, bypasses wisdom and the cost model
// and builds the named strategy (the tuner's measurement path).
func planPermute(dims, perm []int, o Options, elemSize int, forced string) (*PermutePlan, error) {
	s := tensor.Shape(dims).Clone()
	size, err := s.Validate()
	if err != nil {
		return nil, permShapeErr(dims, err)
	}
	p := tensor.Perm(perm).Clone()
	if err := p.Validate(len(s)); err != nil {
		return nil, permErr(perm, dims)
	}
	// PermuteAxes addresses the buffer through dims directly; the 2D
	// Order convention does not apply (a column-major tensor is described
	// by reversing dims and perm instead).
	o.Order = RowMajor

	cs, cp := tensor.Canonicalize(s, p)
	pp := &PermutePlan{
		dims: s, perm: p, size: size,
		canonDims: cs.String(), canonPerm: cp.String(),
	}
	if cp.IsIdentity() {
		pp.strategy = permStrategyNoop
		return pp, nil
	}

	strategy := forced
	if strategy == "" && elemSize > 0 && o.Tuning != WisdomOff {
		if d, ok := lookupPermWisdom(pp.canonDims, pp.canonPerm, elemSize, o.Workers); ok {
			strategy = d.Strategy
			if o.Workers == 0 {
				o.Workers = d.Workers
			}
		} else if o.Tuning == WisdomRequired {
			return nil, permWisdomErr(pp.canonDims, pp.canonPerm, elemSize)
		}
	}
	pp.workers = o.Workers

	greedy := tensor.FactorGreedy(cs, cp)
	inverse := tensor.FactorInverse(cs, cp)
	if strategy == "" {
		// Budget first: a factorization whose scratch floor exceeds the
		// caller's bound is not a candidate (the reversal-method regime).
		fits := func(steps []tensor.Step) bool {
			return o.MaxScratchBytes <= 0 || elemSize <= 0 ||
				tensor.ScratchFloor(steps, elemSize) <= o.MaxScratchBytes
		}
		gFit, iFit := fits(greedy), fits(inverse)
		switch {
		case gFit && iFit:
			if tensor.Cost(inverse) < tensor.Cost(greedy) {
				strategy = tensor.StrategyInverse
			} else {
				strategy = tensor.StrategyGreedy
			}
		case gFit:
			strategy = tensor.StrategyGreedy
		case iFit:
			strategy = tensor.StrategyInverse
		default:
			strategy = tensor.StrategyCycle
		}
	}
	pp.strategy = strategy

	var steps []tensor.Step
	switch strategy {
	case tensor.StrategyGreedy:
		steps = greedy
	case tensor.StrategyInverse:
		steps = inverse
	case tensor.StrategyCycle:
		pp.cyc = newCyclePlan(cs, cp)
		return pp, nil
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownMethod, strategy)
	}

	pp.steps = make([]permStep, len(steps))
	for i, st := range steps {
		stepO := o
		stepO.MaxScratchBytes = 0
		if st.Slabs > 1 {
			// The slab dimension provides the parallelism; each slab
			// transposes single-threaded so pool dispatches never nest
			// (the TransposeBatch discipline).
			stepO.Workers = 1
		}
		if stepO.Tuning == WisdomRequired {
			// The perm-level wisdom requirement was checked above; the
			// factored 2D shapes consult 2D wisdom opportunistically.
			stepO.Tuning = WisdomAuto
		}
		p2, err := newPlanElem(st.Rows, st.Cols, stepO, elemSize)
		if err != nil {
			return nil, err
		}
		pp.steps[i] = permStep{slabs: st.Slabs, stride: st.Rows * st.Cols, plan: p2}
	}
	return pp, nil
}

// NewPermutePlan validates and factors a permutation plan without
// binding an element type (so, like NewPlan, it never consults wisdom,
// and Options.MaxScratchBytes — a byte budget that needs the element
// size — is ignored; use NewPermutePlanner for both).
func NewPermutePlan(dims, perm []int, o Options) (*PermutePlan, error) {
	return planPermute(dims, perm, o, 0, "")
}

// Dims returns a copy of the plan's dimension list.
func (pp *PermutePlan) Dims() []int { return pp.dims.Clone() }

// Perm returns a copy of the plan's axis permutation.
func (pp *PermutePlan) Perm() []int { return pp.perm.Clone() }

// Size returns the element count of the plan's tensor.
func (pp *PermutePlan) Size() int { return pp.size }

// Strategy names the execution strategy the planner chose: "greedy" or
// "inverse" for the factored 2D paths, "cycle" for the O(1)-space
// fallback, "noop" for permutations that canonicalize to the identity.
func (pp *PermutePlan) Strategy() string { return pp.strategy }

// Passes returns the number of batched 2D passes the plan executes
// (0 for noop and cycle plans).
func (pp *PermutePlan) Passes() int { return len(pp.steps) }

// String describes the plan.
func (pp *PermutePlan) String() string {
	return fmt.Sprintf("inplace.PermutePlan(%s perm %s %s/%d-pass)",
		pp.dims.String(), pp.perm.String(), pp.strategy, len(pp.steps))
}

// --- Cycle-leader fallback ---

// cyclePlan executes the permutation as a cycle-leader walk over the
// affine flat-index map: element at flat source index s moves to
// dest(s) = Σ_i coord_i(s)·w_i, where w_i is the destination stride of
// source axis i. No scratch is allocated; each cycle is rotated through
// a single temporary element.
type cyclePlan struct {
	n    int
	divs []mathutil.Divider // fixed-point divisors for the source dims
	w    []int              // destination stride of each source axis
}

func newCyclePlan(cs tensor.Shape, cp tensor.Perm) *cyclePlan {
	dstStrides, ok := tensor.Strides(tensor.Permuted(cs, cp))
	if !ok {
		// The shape validated, so its permuted strides fit too.
		panic("inplace: permuted strides overflow for a validated shape")
	}
	inv := cp.Inverse()
	c := &cyclePlan{n: cs.Size(), divs: make([]mathutil.Divider, len(cs)), w: make([]int, len(cs))}
	for i, d := range cs {
		c.divs[i] = mathutil.NewDivider(d)
		c.w[i] = dstStrides[inv[i]]
	}
	return c
}

// dest maps a flat source index to its flat destination index, decoding
// the source coordinates innermost axis first.
//
//xpose:hotpath
func (c *cyclePlan) dest(s int) int {
	d := 0
	for i := len(c.divs) - 1; i >= 0; i-- {
		q, r := c.divs[i].DivMod(s)
		d += r * c.w[i]
		s = q
	}
	return d
}

// cycleApply permutes data in place by following each cycle of the
// index map from its leader (the cycle's minimum index), rotating the
// values through one temporary. Leadership is decided by walking the
// cycle, which is the O(n·L) index work the cycle strategy trades for
// its O(1) space.
//
//xpose:hotpath
func cycleApply[T any](c *cyclePlan, data []T) {
	n := c.n
	for start := 0; start < n; start++ {
		d := c.dest(start)
		if d == start {
			continue
		}
		leader := true
		for j := d; j != start; j = c.dest(j) {
			if j < start {
				leader = false
				break
			}
		}
		if !leader {
			continue
		}
		tmp := data[start]
		cur := start
		for {
			nxt := c.dest(cur)
			if nxt == start {
				data[start] = tmp
				break
			}
			data[nxt], tmp = tmp, data[nxt]
			cur = nxt
		}
	}
}

// --- Typed planner ---

// PermutePlanner binds a PermutePlan to an element type: one engine per
// factored pass, each owning its schedule and recycled scratch arena.
// After the first Execute has warmed the arenas, subsequent Executes of
// single-slab plans (every rank-2 transpose, and every shape whose
// canonical form needs no slab batching) perform no heap allocation.
//
// A PermutePlanner is safe for concurrent use, like Planner.
type PermutePlanner[T any] struct {
	pp  *PermutePlan
	pls []*Planner[T]
}

// NewPermutePlanner validates dims and perm and precomputes an execution
// plan for permuting the axes of rank-k arrays of T repeatedly. The
// variadic opts follows NewPlanner: at most one Options value is
// honoured. Knowing the element type, it consults the process wisdom
// table's perm section (see TunePermute) for the strategy, and the 2D
// section for each factored pass.
func NewPermutePlanner[T any](dims, perm []int, opts ...Options) (*PermutePlanner[T], error) {
	o := Options{}
	if len(opts) > 0 {
		o = opts[0]
	}
	pp, err := planPermute(dims, perm, o, int(reflect.TypeFor[T]().Size()), "")
	if err != nil {
		return nil, err
	}
	return newPermutePlanner[T](pp), nil
}

func newPermutePlanner[T any](pp *PermutePlan) *PermutePlanner[T] {
	pl := &PermutePlanner[T]{pp: pp}
	if len(pp.steps) > 0 {
		pl.pls = make([]*Planner[T], len(pp.steps))
		for i, st := range pp.steps {
			pl.pls[i] = newPlanner[T](st.plan)
		}
	}
	return pl
}

// Execute permutes data in place according to the plan. data must hold
// Size() elements of the row-major dims tensor; afterwards element
// (i_0, ..., i_{k-1}) of the permuted tensor — whose axis j is source
// axis perm[j] — lives at its row-major offset for the permuted dims.
//
//xpose:hotpath
func (pl *PermutePlanner[T]) Execute(data []T) error {
	pp := pl.pp
	if len(data) != pp.size {
		return lengthErr(len(data), pp.size)
	}
	if len(pp.steps) == 0 {
		if pp.cyc != nil {
			cycleApply(pp.cyc, data)
		}
		return nil
	}
	for i := range pl.pls {
		if pp.steps[i].slabs == 1 {
			if err := pl.pls[i].Execute(data); err != nil {
				return err
			}
			continue
		}
		pl.executeSlabs(i, data)
	}
	return nil
}

// executeSlabs runs one multi-slab pass, parallelizing over slabs on the
// shared pool (each slab's engine is single-worker, so dispatches never
// nest). Split out of Execute to keep the hot path closure-free.
func (pl *PermutePlanner[T]) executeSlabs(i int, data []T) {
	st := pl.pp.steps[i]
	p := pl.pls[i]
	stride := st.stride
	run := func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			// Execute only fails on a length mismatch, which the plan's
			// slab geometry excludes.
			if err := p.Execute(data[k*stride : (k+1)*stride]); err != nil {
				panic(err)
			}
		}
	}
	if parallel.Workers(pl.pp.workers) > 1 {
		parallel.Shared().For(st.slabs, pl.pp.workers, run)
	} else {
		parallel.For(st.slabs, pl.pp.workers, run)
	}
}

// Plan returns the underlying permutation plan.
func (pl *PermutePlanner[T]) Plan() *PermutePlan { return pl.pp }

// String describes the planner.
func (pl *PermutePlanner[T]) String() string { return pl.pp.String() }

// --- Cached entry point ---

// PermuteAxes permutes the axes of the row-major tensor held in data, in
// place: data holds a rank-k array with the given dims, and afterwards
// holds the array whose axis j is source axis perm[j] (the
// numpy.transpose convention), in row-major order of the permuted dims.
// PermuteAxes(data, dims, [1,0]) of a rank-2 tensor is exactly
// Transpose(data, dims[0], dims[1]).
//
// Calls route through a process-wide planner cache keyed by dims, perm,
// options and element type, like TransposeWith; callers wanting explicit
// control over plan lifetime should hold a PermutePlanner.
//
//xpose:hotpath
func PermuteAxes[T any](data []T, dims, perm []int, opts ...Options) error {
	o := Options{}
	if len(opts) > 0 {
		o = opts[0]
	}
	pl, err := permPlannerFor[T](dims, perm, o)
	if err != nil {
		return err
	}
	return pl.Execute(data)
}

// permKey identifies one cached permutation planner. Dims and perm enter
// in their canonical string forms' raw spelling (the exact dims/perm the
// caller passed), so distinct raw shapes that share a canonical form get
// distinct planners — their Execute length checks differ.
type permKey struct {
	dims, perm string
	opts       Options
	typ        reflect.Type
}

var permCache struct {
	mu    sync.RWMutex
	m     map[permKey]any
	order []permKey
}

var (
	permCacheHits      = stats.Default().Counter("perm_cache_hits")
	permCacheMisses    = stats.Default().Counter("perm_cache_misses")
	permCacheEvictions = stats.Default().Counter("perm_cache_evictions")
)

// flushPermCache drops every cached permutation planner; called with the
// 2D flush whenever the wisdom table mutates.
func flushPermCache() {
	permCache.mu.Lock()
	permCache.m = nil
	permCache.order = nil
	permCache.mu.Unlock()
}

// permPlannerFor returns the cached permutation planner for
// (dims, perm, o, T), building and inserting it on first use.
func permPlannerFor[T any](dims, perm []int, o Options) (*PermutePlanner[T], error) {
	key := permKey{
		dims: tensor.Shape(dims).String(),
		perm: tensor.Perm(perm).String(),
		opts: o,
		typ:  reflect.TypeFor[T](),
	}
	permCache.mu.RLock()
	v, ok := permCache.m[key]
	permCache.mu.RUnlock()
	if ok {
		permCacheHits.Inc()
		return v.(*PermutePlanner[T]), nil
	}
	permCacheMisses.Inc()
	pl, err := NewPermutePlanner[T](dims, perm, o)
	if err != nil {
		return nil, err
	}
	permCache.mu.Lock()
	defer permCache.mu.Unlock()
	if v, ok := permCache.m[key]; ok {
		return v.(*PermutePlanner[T]), nil
	}
	if permCache.m == nil {
		permCache.m = make(map[permKey]any)
	}
	for len(permCache.order) >= plannerCacheCap {
		delete(permCache.m, permCache.order[0])
		permCache.order = permCache.order[1:]
		permCacheEvictions.Inc()
	}
	permCache.m[key] = pl
	permCache.order = append(permCache.order, key)
	return pl, nil
}
