package tune

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable()
	t.Store(Key{Rows: 1000, Cols: 8, ElemSize: 8, MaxWorkers: 4},
		Decision{Variant: "skinny", C2R: true, Workers: 2, GBps: 12.5})
	t.Store(Key{Rows: 512, Cols: 512, ElemSize: 4, MaxWorkers: 1},
		Decision{Variant: "cache-aware", C2R: false, Workers: 1, BlockW: 32, GBps: 3.25})
	t.Store(Key{Rows: 96, Cols: 120, ElemSize: 8, MaxWorkers: 8},
		Decision{Variant: "scatter", C2R: true, Workers: 8})
	return t
}

func TestWisdomRoundTrip(t *testing.T) {
	tbl := sampleTable()
	var buf bytes.Buffer
	if err := tbl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Equal(got) {
		t.Fatalf("round trip changed the table:\nwant %+v\ngot  %+v", tbl, got)
	}
	// Deterministic serialization: saving the reloaded table reproduces
	// the bytes.
	var buf2 bytes.Buffer
	if err := got.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("serialization is not deterministic")
	}
}

func TestWisdomCorruptInputs(t *testing.T) {
	cases := map[string]string{
		"garbage":         "not json at all",
		"wrong type":      `[1, 2, 3]`,
		"missing version": `{"entries": []}`,
		"bad shape":       `{"version":1,"entries":[{"rows":-4,"cols":8,"elem_size":8,"max_workers":1,"variant":"skinny","c2r":true,"workers":1}]}`,
		"bad variant":     `{"version":1,"entries":[{"rows":4,"cols":8,"elem_size":8,"max_workers":1,"variant":"warp-shuffle","c2r":true,"workers":1}]}`,
		"bad workers":     `{"version":1,"entries":[{"rows":4,"cols":8,"elem_size":8,"max_workers":1,"variant":"skinny","c2r":true,"workers":0}]}`,
		"unknown field":   `{"version":1,"entries":[],"blessed":true}`,
	}
	for name, raw := range cases {
		_, err := Load(strings.NewReader(raw))
		if err == nil {
			t.Errorf("%s: Load accepted corrupt input", name)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v is not ErrCorrupt", name, err)
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a *FormatError", name, err)
		}
	}
}

func TestWisdomUnknownVersionSkipped(t *testing.T) {
	// A future format version — even one whose entries would not decode
	// today — must read as an empty table, not an error.
	raw := `{"version": 99, "entries": [{"novel_field": {"x": 1}}], "machine": "quantum"}`
	tbl, err := Load(strings.NewReader(raw))
	if err != nil {
		t.Fatalf("unknown version must not be fatal: %v", err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("unknown version must load empty, got %d entries", tbl.Len())
	}
}

func TestWisdomMerge(t *testing.T) {
	base := sampleTable()
	k := Key{Rows: 1000, Cols: 8, ElemSize: 8, MaxWorkers: 4}
	fresh := NewTable()
	fresh.Store(k, Decision{Variant: "cache-aware", C2R: false, Workers: 4})
	fresh.Store(Key{Rows: 7, Cols: 7, ElemSize: 2, MaxWorkers: 2},
		Decision{Variant: "gather", C2R: true, Workers: 2})

	base.Merge(fresh)
	if base.Len() != 4 {
		t.Fatalf("merged table has %d entries, want 4", base.Len())
	}
	d, ok := base.Lookup(k)
	if !ok || d.Variant != "cache-aware" {
		t.Fatalf("merge must overwrite collisions with incoming entries, got %+v", d)
	}
}

func FuzzWisdomRoundTrip(f *testing.F) {
	var valid bytes.Buffer
	if err := sampleTable().Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{"version":1,"entries":[]}`))
	f.Add([]byte(`{"version":42,"entries":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"version":1,"entries":[{"rows":1,"cols":1,"elem_size":1,"max_workers":1,"variant":"gather","c2r":false,"workers":1}]}`))
	f.Add([]byte("\x00\x01\x02"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		tbl, err := Load(bytes.NewReader(raw))
		if err != nil {
			// Every rejection must be the typed corruption error, never a
			// panic or an untyped failure.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load(%q) returned non-typed error %v", raw, err)
			}
			return
		}
		// Whatever loads must round-trip exactly.
		var buf bytes.Buffer
		if err := tbl.Save(&buf); err != nil {
			t.Fatalf("Save after Load(%q): %v", raw, err)
		}
		again, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reload after Load(%q): %v", raw, err)
		}
		if !tbl.Equal(again) {
			t.Fatalf("round trip changed table for input %q", raw)
		}
	})
}
