// Package tune is the calibrating autotuner of the transposition
// library: for one shape / element size / worker budget it times the
// real candidate space — pass pipeline (scatter, gather, cache-aware)
// vs. the skinny banded specialization, C2R vs. R2C direction, worker
// counts and cache-aware sub-row granularities — on short repeatable
// measurement runs with outlier-robust statistics, and records the
// winner in a versioned wisdom table (wisdom.go) that the public
// Planner consults before falling back to the paper's static
// heuristics.
//
// The search is staged rather than exhaustive, the FFTW-wisdom pattern
// scaled to this candidate space: stage 1 races every (direction,
// pipeline) pair at the full worker budget, stage 2 sweeps the worker
// ladder for the winning pipeline, and stage 3 sweeps the cache-aware
// sub-row width when the winner uses one. Each candidate is measured as
// the median of several samples, each sample batched to a minimum wall
// time, so scheduler noise and one-off cache effects do not promote a
// loser.
package tune

import (
	"errors"
	"fmt"
	"time"
	"unsafe"

	"inplace/internal/core"
	"inplace/internal/cr"
	"inplace/internal/mathutil"
	"inplace/internal/parallel"
	"inplace/internal/stats"
)

// Candidate is one point of the search space.
type Candidate struct {
	C2R     bool         // pipeline direction
	Variant core.Variant // pass structure
	Workers int          // goroutines
	BlockW  int          // cache-aware sub-row width, 0 = engine default
}

func (c Candidate) String() string {
	dir := "R2C"
	if c.C2R {
		dir = "C2R"
	}
	return fmt.Sprintf("%s/%v/w%d/b%d", dir, c.Variant, c.Workers, c.BlockW)
}

// Config bounds a tuning run. The zero value gets sensible defaults; a
// smoke configuration (Smoke) caps every knob for CI.
type Config struct {
	// MaxWorkers is the worker budget; 0 means GOMAXPROCS. The budget is
	// part of the wisdom key.
	MaxWorkers int
	// Reps is the number of timed samples per candidate (median taken);
	// 0 means 5.
	Reps int
	// MinSample is the minimum wall time of one sample: runs are batched
	// until a sample takes at least this long, so timer granularity and
	// per-call jitter amortize away. 0 means 1ms.
	MinSample time.Duration
	// MaxCandidate caps the total measurement time of one candidate;
	// remaining reps are dropped (the median is taken over what was
	// collected). 0 means 80ms.
	MaxCandidate time.Duration
	// BlockWidths is the stage-3 sweep for cache-aware winners; 0 entries
	// mean the engine default. nil means {0, 16, 32}.
	BlockWidths []int
	// Cost, when non-nil, replaces wall-clock measurement with a
	// deterministic ns/op estimate. Tests use it to force decisions (for
	// example, a shape where measurement and heuristic disagree) without
	// depending on host timing.
	Cost func(Candidate) float64
}

func (c Config) withDefaults() Config {
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.MinSample <= 0 {
		c.MinSample = time.Millisecond
	}
	if c.MaxCandidate <= 0 {
		c.MaxCandidate = 80 * time.Millisecond
	}
	if c.BlockWidths == nil {
		c.BlockWidths = []int{0, 16, 32}
	}
	return c
}

// Smoke returns a configuration with every knob capped for fast CI
// smoke runs: single rep, microsecond-scale samples, tight per-candidate
// budget. Decisions from a smoke run are noisy by construction; the
// point is exercising the full tuner code path cheaply.
func Smoke() Config {
	return Config{
		Reps:         1,
		MinSample:    50 * time.Microsecond,
		MaxCandidate: 2 * time.Millisecond,
		BlockWidths:  []int{0},
	}
}

// HeuristicCandidate returns the choice the static planner heuristic
// would make for the shape under the given budget: the cache-aware
// pipeline in the direction with the shorter internal columns, all
// workers, default sub-row width. The tuner seeds its search with it so
// a tuned process can never regress below the heuristic by more than
// measurement noise — if nothing beats it, it wins.
func HeuristicCandidate(rows, cols, maxWorkers int) Candidate {
	return Candidate{
		C2R:     rows <= cols,
		Variant: core.CacheAware,
		Workers: parallel.Workers(maxWorkers),
	}
}

// ErrShape reports non-positive tuning dimensions.
var ErrShape = errors.New("tune: rows and cols must be positive")

// ErrOverflow reports tuning dimensions whose product rows*cols does
// not fit in int.
var ErrOverflow = errors.New("tune: rows*cols overflows int")

// TuneFor measures the candidate space for transposing rows×cols
// matrices of T and returns the winning decision. It allocates one
// rows*cols buffer of T for the duration of the call.
func TuneFor[T any](rows, cols int, cfg Config) (Decision, error) {
	if rows <= 0 || cols <= 0 {
		return Decision{}, fmt.Errorf("%w (got %dx%d)", ErrShape, rows, cols)
	}
	size, ok := mathutil.CheckedMul(rows, cols)
	if !ok {
		return Decision{}, fmt.Errorf("%w (got %dx%d)", ErrOverflow, rows, cols)
	}
	cfg = cfg.withDefaults()
	budget := parallel.Workers(cfg.MaxWorkers)

	m := &measurer[T]{
		rows: rows,
		cols: cols,
		cfg:  cfg,
		// The two directions transpose through mutually-inverse plans of
		// swapped shapes; both are built once and shared by every
		// candidate.
		planC2R: cr.NewPlan(rows, cols),
		planR2C: cr.NewPlan(cols, rows),
		costs:   make(map[Candidate]float64),
	}
	if cfg.Cost == nil {
		m.data = make([]T, size)
	}

	// Stage 1: direction × pipeline at full budget. The heuristic's own
	// choice is always in this set.
	best := HeuristicCandidate(rows, cols, budget)
	bestCost := m.cost(best)
	for _, c2r := range []bool{true, false} {
		plan := m.plan(c2r)
		for _, v := range core.Variants() {
			if v == core.Skinny && !core.SkinnyViable(plan) {
				continue // engine would silently run cache-aware: not distinct
			}
			cand := Candidate{C2R: c2r, Variant: v, Workers: budget}
			if cost := m.cost(cand); cost < bestCost {
				best, bestCost = cand, cost
			}
		}
	}

	// Stage 2: worker ladder for the winning pipeline — powers of two up
	// to the budget, plus the budget itself.
	for w := 1; w <= budget; w *= 2 {
		cand := best
		cand.Workers = w
		if cost := m.cost(cand); cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	{
		cand := best
		cand.Workers = budget
		if cost := m.cost(cand); cost < bestCost {
			best, bestCost = cand, cost
		}
	}

	// Stage 3: cache-aware sub-row width. Only the cache-aware pipeline
	// consumes it (the skinny permute spans whole rows, scatter/gather
	// use no sub-row tiling).
	if best.Variant == core.CacheAware {
		for _, bw := range cfg.BlockWidths {
			cand := best
			cand.BlockW = bw
			if cost := m.cost(cand); cost < bestCost {
				best, bestCost = cand, cost
			}
		}
	}

	var elem T
	d := Decision{
		Variant: best.Variant.String(),
		C2R:     best.C2R,
		Workers: best.Workers,
		BlockW:  best.BlockW,
	}
	if bestCost > 0 {
		bytes := 2 * float64(rows) * float64(cols) * float64(unsafe.Sizeof(elem))
		d.GBps = bytes / bestCost // ns/op and GB/s share the 1e9 factor
	}
	return d, nil
}

// measurer times candidates for one shape, memoizing by candidate so
// the staged search never measures the same point twice.
type measurer[T any] struct {
	rows, cols int
	cfg        Config
	data       []T
	planC2R    *cr.Plan
	planR2C    *cr.Plan
	costs      map[Candidate]float64
}

func (m *measurer[T]) plan(c2r bool) *cr.Plan {
	if c2r {
		return m.planC2R
	}
	return m.planR2C
}

// cost returns the candidate's cost in ns per transposition (median of
// the configured samples), or the injected estimate.
func (m *measurer[T]) cost(c Candidate) float64 {
	if v, ok := m.costs[c]; ok {
		return v
	}
	var v float64
	if m.cfg.Cost != nil {
		v = m.cfg.Cost(c)
	} else {
		v = m.measure(c)
	}
	m.costs[c] = v
	return v
}

func (m *measurer[T]) measure(c Candidate) float64 {
	opts := core.Opts{Workers: c.Workers, Variant: c.Variant, BlockW: c.BlockW}
	if parallel.Workers(c.Workers) > 1 {
		opts.Pool = parallel.Shared()
	}
	eng := core.NewEngine[T](core.NewSchedule(m.plan(c.C2R), opts))
	run := func() {
		// The pipelines are data-independent permutations, so timing does
		// not care that successive runs keep permuting the buffer.
		if c.C2R {
			eng.C2R(m.data)
		} else {
			eng.R2C(m.data)
		}
	}
	run() // warm the scratch arena and the lazy cycle decomposition

	samples := Measure(run, MeasureOpts{
		Reps:      m.cfg.Reps,
		MinSample: m.cfg.MinSample,
		MaxTotal:  m.cfg.MaxCandidate,
	})
	return stats.Median(samples)
}
