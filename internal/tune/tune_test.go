package tune

import (
	"testing"

	"inplace/internal/core"
)

// costPreferring returns a deterministic cost function that makes
// exactly the candidates matching pred cheapest.
func costPreferring(pred func(Candidate) bool) func(Candidate) float64 {
	return func(c Candidate) float64 {
		if pred(c) {
			return 1
		}
		return 1000
	}
}

func TestTuneForFollowsMeasurement(t *testing.T) {
	// 120x96 is square-ish and non-coprime: all four variants and both
	// directions are live candidates. Force the measurement to prefer a
	// choice the static heuristic (C2R cache-aware) would never make.
	cfg := Config{
		MaxWorkers: 1,
		Cost: costPreferring(func(c Candidate) bool {
			return !c.C2R && c.Variant == core.Scatter
		}),
	}
	d, err := TuneFor[uint64](120, 96, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Variant != "scatter" || d.C2R {
		t.Fatalf("tuner ignored measurement: got %+v, want R2C scatter", d)
	}
}

func TestTuneForWorkerLadder(t *testing.T) {
	cfg := Config{
		MaxWorkers: 8,
		Cost: func(c Candidate) float64 {
			// Cheapest at exactly 2 workers, otherwise proportional to the
			// distance — the staged sweep must land on 2.
			if c.Workers == 2 {
				return 1
			}
			return 10 + float64(c.Workers)
		},
	}
	d, err := TuneFor[uint64](256, 256, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Workers != 2 {
		t.Fatalf("worker sweep picked %d workers, want 2 (%+v)", d.Workers, d)
	}
}

func TestTuneForBlockWidthSweep(t *testing.T) {
	cfg := Config{
		MaxWorkers: 1,
		Cost: func(c Candidate) float64 {
			if c.Variant != core.CacheAware {
				return 1000
			}
			if c.BlockW == 16 {
				return 1
			}
			return 10
		},
	}
	d, err := TuneFor[uint64](256, 256, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Variant != "cache-aware" || d.BlockW != 16 {
		t.Fatalf("block sweep got %+v, want cache-aware blockw=16", d)
	}
}

func TestTuneForSkinnyGatedByViability(t *testing.T) {
	// A square shape is never skinny-viable; even a cost function that
	// would make skinny free must not select it, because the engine
	// would silently run cache-aware instead.
	cfg := Config{
		MaxWorkers: 1,
		Cost:       costPreferring(func(c Candidate) bool { return c.Variant == core.Skinny }),
	}
	d, err := TuneFor[uint64](128, 128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Variant == "skinny" {
		t.Fatalf("tuner selected skinny for a non-skinny shape: %+v", d)
	}

	// A genuinely skinny shape keeps it in the candidate set.
	d, err = TuneFor[uint64](4096, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Variant != "skinny" {
		t.Fatalf("tuner dropped skinny for a skinny shape: %+v", d)
	}
}

func TestTuneForRealMeasurementSmoke(t *testing.T) {
	// An actual wall-clock run at smoke settings: the decision must be
	// structurally valid whatever the host timing says.
	d, err := TuneFor[uint64](96, 64, Smoke())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.validate(); err != nil {
		t.Fatalf("smoke decision invalid: %v (%+v)", err, d)
	}
	if d.GBps <= 0 {
		t.Fatalf("smoke decision has no throughput: %+v", d)
	}
}

func TestTuneForRejectsBadShape(t *testing.T) {
	if _, err := TuneFor[uint64](0, 8, Config{}); err == nil {
		t.Error("TuneFor(0, 8) must fail")
	}
	if _, err := TuneFor[uint64](8, -1, Config{}); err == nil {
		t.Error("TuneFor(8, -1) must fail")
	}
}

func TestHeuristicCandidateMirrorsPlanner(t *testing.T) {
	// rows <= cols → C2R, otherwise R2C; always cache-aware.
	c := HeuristicCandidate(100, 200, 1)
	if !c.C2R || c.Variant != core.CacheAware {
		t.Fatalf("HeuristicCandidate(100, 200) = %+v, want C2R cache-aware", c)
	}
	c = HeuristicCandidate(200, 100, 1)
	if c.C2R {
		t.Fatalf("HeuristicCandidate(200, 100) = %+v, want R2C", c)
	}
}
