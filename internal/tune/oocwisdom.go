package tune

import (
	"fmt"
	"sort"
)

// Out-of-core wisdom: measured decisions for the ooc engine's schedule
// knobs (segment size, pipeline depth, transform workers). These live in
// the same wisdom file as the in-memory decisions, under a separate
// "ooc" section, because the identities differ: an out-of-core decision
// is keyed by the memory budget class in addition to the shape — the
// best segment size under a 64 MiB budget says nothing about the best
// one under 1 GiB.

// OOCKey identifies one out-of-core tuning problem. The budget enters as
// its binary order of magnitude (floor(log2(bytes))): decisions within a
// factor of two of budget transfer well, finer bucketing just fragments
// the table.
type OOCKey struct {
	Rows       int `json:"rows"`
	Cols       int `json:"cols"`
	ElemSize   int `json:"elem_size"`
	BudgetLog2 int `json:"budget_log2"`
}

func (k OOCKey) String() string {
	return fmt.Sprintf("%dx%d/%dB/2^%dB", k.Rows, k.Cols, k.ElemSize, k.BudgetLog2)
}

// BudgetLog2 buckets a byte budget for OOCKey: the position of its
// highest set bit (so 64 MiB -> 26, and anything in [64 MiB, 128 MiB)
// shares a bucket).
func BudgetLog2(budget int64) int {
	l := 0
	for budget > 1 {
		budget >>= 1
		l++
	}
	return l
}

func (k OOCKey) validate() error {
	if k.Rows <= 0 || k.Cols <= 0 || k.ElemSize <= 0 || k.BudgetLog2 < 1 || k.BudgetLog2 > 62 {
		return &FormatError{Reason: fmt.Sprintf("invalid ooc key %v", k)}
	}
	return nil
}

// OOCDecision is a measured-optimal out-of-core schedule for one OOCKey.
type OOCDecision struct {
	SegmentBytes int64   `json:"segment_bytes"`
	Depth        int     `json:"depth"`
	Workers      int     `json:"workers"`
	GBps         float64 `json:"gbps,omitempty"` // winning throughput, for provenance
}

func (d OOCDecision) validate() error {
	if d.SegmentBytes <= 0 || d.Depth <= 0 || d.Workers <= 0 {
		return &FormatError{Reason: fmt.Sprintf("invalid ooc decision %+v", d)}
	}
	return nil
}

// LookupOOC returns the out-of-core decision recorded for k, if any.
func (t *Table) LookupOOC(k OOCKey) (OOCDecision, bool) {
	d, ok := t.ooc[k]
	return d, ok
}

// StoreOOC records d as the out-of-core decision for k.
func (t *Table) StoreOOC(k OOCKey, d OOCDecision) { t.ooc[k] = d }

// OOCLen returns the number of recorded out-of-core decisions.
func (t *Table) OOCLen() int { return len(t.ooc) }

// OOCKeys returns the out-of-core keys in deterministic (sorted) order.
func (t *Table) OOCKeys() []OOCKey {
	ks := make([]OOCKey, 0, len(t.ooc))
	for k := range t.ooc {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.Rows != b.Rows {
			return a.Rows < b.Rows
		}
		if a.Cols != b.Cols {
			return a.Cols < b.Cols
		}
		if a.ElemSize != b.ElemSize {
			return a.ElemSize < b.ElemSize
		}
		return a.BudgetLog2 < b.BudgetLog2
	})
	return ks
}
