package tune

import (
	"fmt"
	"sort"

	"inplace/internal/tensor"
)

// Axis-permutation wisdom: measured decisions for the rank-generic
// PermuteAxes planner. These live in the same wisdom file as the 2D and
// out-of-core decisions, under a separate "perm" section, because the
// identity differs again: a permutation decision is keyed by the
// canonical (shape, perm) pair — the normal form after stripping unit
// axes and collapsing fused runs — so every raw rank-k problem that
// reduces to the same batched passes shares one entry.

// PermKey identifies one axis-permutation tuning problem. Dims and Perm
// are the canonical forms rendered by tensor.Shape.String ("8x1024x16")
// and tensor.Perm.String ("0,2,1"); string form keeps the key comparable
// and JSON-friendly across ranks.
type PermKey struct {
	Dims       string `json:"dims"`
	Perm       string `json:"perm"`
	ElemSize   int    `json:"elem_size"`
	MaxWorkers int    `json:"max_workers"`
}

func (k PermKey) String() string {
	return fmt.Sprintf("%s/%s/%dB/w%d", k.Dims, k.Perm, k.ElemSize, k.MaxWorkers)
}

func (k PermKey) validate() error {
	s, err := tensor.ParseShape(k.Dims)
	if err != nil {
		return &FormatError{Reason: fmt.Sprintf("invalid perm key %v", k), Err: err}
	}
	if _, err := tensor.ParsePerm(k.Perm, len(s)); err != nil {
		return &FormatError{Reason: fmt.Sprintf("invalid perm key %v", k), Err: err}
	}
	if k.ElemSize <= 0 || k.MaxWorkers <= 0 {
		return &FormatError{Reason: fmt.Sprintf("invalid perm key %v", k)}
	}
	return nil
}

// PermDecision is a measured-optimal strategy for one PermKey: which
// factorization (or the cycle fallback) to run and with how many
// workers. GBps records the winning measurement for provenance.
type PermDecision struct {
	Strategy string  `json:"strategy"` // tensor.Strategy* name
	Workers  int     `json:"workers"`
	GBps     float64 `json:"gbps,omitempty"`
}

func (d PermDecision) validate() error {
	if !tensor.ValidStrategy(d.Strategy) {
		return &FormatError{Reason: fmt.Sprintf("unknown perm strategy %q", d.Strategy)}
	}
	if d.Workers <= 0 {
		return &FormatError{Reason: fmt.Sprintf("invalid perm decision %+v", d)}
	}
	return nil
}

// LookupPerm returns the permutation decision recorded for k, if any.
func (t *Table) LookupPerm(k PermKey) (PermDecision, bool) {
	d, ok := t.perm[k]
	return d, ok
}

// StorePerm records d as the permutation decision for k.
func (t *Table) StorePerm(k PermKey, d PermDecision) { t.perm[k] = d }

// PermLen returns the number of recorded permutation decisions.
func (t *Table) PermLen() int { return len(t.perm) }

// PermKeys returns the permutation keys in deterministic (sorted) order.
func (t *Table) PermKeys() []PermKey {
	ks := make([]PermKey, 0, len(t.perm))
	for k := range t.perm {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.Dims != b.Dims {
			return a.Dims < b.Dims
		}
		if a.Perm != b.Perm {
			return a.Perm < b.Perm
		}
		if a.ElemSize != b.ElemSize {
			return a.ElemSize < b.ElemSize
		}
		return a.MaxWorkers < b.MaxWorkers
	})
	return ks
}
