package tune

import (
	"fmt"
	"sort"
)

// Tile-store wisdom: measured decisions for the columnar store's ingest
// knobs (chunk rows, transform workers). These live in the same wisdom
// file as the transpose decisions, under a separate "store" section,
// because the identity differs once more: a store decision is keyed by
// the record schema — field count and element width — plus the row
// count's binary magnitude. The best chunk height for a 16-field
// 4-byte-element schema transfers across datasets of similar size
// regardless of their exact row counts, so rows enter as floor(log2)
// just as the out-of-core budget does.

// StoreKey identifies one tile-store tuning problem.
type StoreKey struct {
	Fields   int `json:"fields"`
	ElemSize int `json:"elem_size"`
	RowsLog2 int `json:"rows_log2"`
}

func (k StoreKey) String() string {
	return fmt.Sprintf("%df/%dB/2^%drows", k.Fields, k.ElemSize, k.RowsLog2)
}

func (k StoreKey) validate() error {
	if k.Fields <= 0 || k.ElemSize <= 0 || k.RowsLog2 < 0 || k.RowsLog2 > 62 {
		return &FormatError{Reason: fmt.Sprintf("invalid store key %v", k)}
	}
	return nil
}

// StoreDecision is a measured-optimal ingest configuration for one
// StoreKey.
type StoreDecision struct {
	ChunkRows int     `json:"chunk_rows"`
	Workers   int     `json:"workers"`
	GBps      float64 `json:"gbps,omitempty"` // winning ingest throughput, for provenance
}

func (d StoreDecision) validate() error {
	if d.ChunkRows <= 0 || d.Workers <= 0 {
		return &FormatError{Reason: fmt.Sprintf("invalid store decision %+v", d)}
	}
	return nil
}

// LookupStore returns the tile-store decision recorded for k, if any.
func (t *Table) LookupStore(k StoreKey) (StoreDecision, bool) {
	d, ok := t.store[k]
	return d, ok
}

// StoreStore records d as the tile-store decision for k.
func (t *Table) StoreStore(k StoreKey, d StoreDecision) { t.store[k] = d }

// StoreLen returns the number of recorded tile-store decisions.
func (t *Table) StoreLen() int { return len(t.store) }

// StoreKeys returns the tile-store keys in deterministic (sorted) order.
func (t *Table) StoreKeys() []StoreKey {
	ks := make([]StoreKey, 0, len(t.store))
	for k := range t.store {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.Fields != b.Fields {
			return a.Fields < b.Fields
		}
		if a.ElemSize != b.ElemSize {
			return a.ElemSize < b.ElemSize
		}
		return a.RowsLog2 < b.RowsLog2
	})
	return ks
}
