package tune

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func permTable() *Table {
	t := NewTable()
	t.StorePerm(
		PermKey{Dims: "8x1024x16", Perm: "0,2,1", ElemSize: 4, MaxWorkers: 8},
		PermDecision{Strategy: "greedy", Workers: 4, GBps: 12.5},
	)
	t.StorePerm(
		PermKey{Dims: "64x128", Perm: "1,0", ElemSize: 8, MaxWorkers: 1},
		PermDecision{Strategy: "inverse", Workers: 1},
	)
	t.StorePerm(
		PermKey{Dims: "5x7x11", Perm: "2,1,0", ElemSize: 1, MaxWorkers: 2},
		PermDecision{Strategy: "cycle", Workers: 1, GBps: 0.9},
	)
	return t
}

func TestPermWisdomRoundTrip(t *testing.T) {
	tab := permTable()
	// Mix in 2D and OOC entries so all three sections coexist in one file.
	tab.Store(Key{Rows: 64, Cols: 128, ElemSize: 4, MaxWorkers: 4},
		Decision{Variant: "scatter", C2R: true, Workers: 2})
	tab.StoreOOC(OOCKey{Rows: 1 << 14, Cols: 1 << 14, ElemSize: 8, BudgetLog2: 26},
		OOCDecision{SegmentBytes: 1 << 22, Depth: 2, Workers: 4})

	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !got.Equal(tab) {
		t.Fatalf("round trip lost entries: got %d perm, want %d", got.PermLen(), tab.PermLen())
	}

	// Determinism: identical tables serialize identically.
	var buf2 bytes.Buffer
	if err := got.Save(&buf2); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("serialization is not deterministic")
	}
}

// A v1 table written before the perm section existed must load cleanly
// with zero perm entries — the new key is optional, not a format bump.
func TestPermWisdomVersionSkew(t *testing.T) {
	old := `{
  "version": 1,
  "entries": [
    {"rows": 64, "cols": 128, "elem_size": 4, "max_workers": 4,
     "variant": "scatter", "c2r": true, "workers": 2}
  ]
}`
	tab, err := Load(strings.NewReader(old))
	if err != nil {
		t.Fatalf("Load v1 table without perm section: %v", err)
	}
	if tab.PermLen() != 0 {
		t.Fatalf("PermLen = %d, want 0", tab.PermLen())
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}

	// And the other direction: a future-versioned file carrying a perm
	// section this reader can't interpret reads as empty, not corrupt.
	future := `{"version": 99, "perm": [{"dims": "??", "whatever": true}]}`
	tab, err = Load(strings.NewReader(future))
	if err != nil {
		t.Fatalf("Load future version: %v", err)
	}
	if tab.Len() != 0 || tab.PermLen() != 0 {
		t.Fatal("future version should load as empty table")
	}
}

func TestPermWisdomValidation(t *testing.T) {
	bad := []string{
		// Non-canonical garbage dims.
		`{"version": 1, "perm": [{"dims": "0x4", "perm": "1,0", "elem_size": 4, "max_workers": 1, "strategy": "greedy", "workers": 1}]}`,
		// Perm not matching rank.
		`{"version": 1, "perm": [{"dims": "2x3x4", "perm": "1,0", "elem_size": 4, "max_workers": 1, "strategy": "greedy", "workers": 1}]}`,
		// Unknown strategy.
		`{"version": 1, "perm": [{"dims": "2x3", "perm": "1,0", "elem_size": 4, "max_workers": 1, "strategy": "warp", "workers": 1}]}`,
		// Zero workers.
		`{"version": 1, "perm": [{"dims": "2x3", "perm": "1,0", "elem_size": 4, "max_workers": 1, "strategy": "greedy", "workers": 0}]}`,
	}
	for i, in := range bad {
		if _, err := Load(strings.NewReader(in)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestPermWisdomMergeClone(t *testing.T) {
	a := permTable()
	b := NewTable()
	k := PermKey{Dims: "8x1024x16", Perm: "0,2,1", ElemSize: 4, MaxWorkers: 8}
	b.StorePerm(k, PermDecision{Strategy: "cycle", Workers: 1}) // overwrites
	a.Merge(b)
	if d, _ := a.LookupPerm(k); d.Strategy != "cycle" {
		t.Fatalf("Merge did not overwrite: %+v", d)
	}
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("Clone not equal")
	}
	c.StorePerm(PermKey{Dims: "2x2", Perm: "1,0", ElemSize: 1, MaxWorkers: 1},
		PermDecision{Strategy: "greedy", Workers: 1})
	if c.Equal(a) {
		t.Fatal("Clone shares state with original")
	}
}
