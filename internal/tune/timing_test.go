package tune

import (
	"testing"
	"time"
)

func TestMeasureOptsDefaults(t *testing.T) {
	o := MeasureOpts{}.withDefaults()
	if o.Reps != 5 || o.MinSample != time.Millisecond || o.MaxTotal != 80*time.Millisecond {
		t.Fatalf("zero-value defaults wrong: %+v", o)
	}
	// Explicit values pass through untouched.
	o = MeasureOpts{Reps: 3, MinSample: time.Microsecond, MaxTotal: time.Second}.withDefaults()
	if o.Reps != 3 || o.MinSample != time.Microsecond || o.MaxTotal != time.Second {
		t.Fatalf("explicit opts rewritten: %+v", o)
	}
}

func TestMeasureSampleCountAndPositivity(t *testing.T) {
	calls := 0
	run := func() { calls++; time.Sleep(50 * time.Microsecond) }
	samples := Measure(run, MeasureOpts{Reps: 4, MinSample: 100 * time.Microsecond, MaxTotal: time.Second})
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	for i, s := range samples {
		if s <= 0 {
			t.Fatalf("sample %d not positive: %v", i, s)
		}
	}
	if calls < 4 {
		t.Fatalf("run called only %d times", calls)
	}
}

// A MaxTotal shorter than the work still yields at least one sample —
// the gate can always form a verdict.
func TestMeasureBudgetCapStillSamples(t *testing.T) {
	run := func() { time.Sleep(2 * time.Millisecond) }
	samples := Measure(run, MeasureOpts{Reps: 50, MinSample: time.Microsecond, MaxTotal: 5 * time.Millisecond})
	if len(samples) == 0 {
		t.Fatal("no samples under a tight budget")
	}
	if len(samples) >= 50 {
		t.Fatalf("budget cap ignored: %d samples", len(samples))
	}
}

// Batch calibration amortizes sub-granularity work: per-call samples of
// a trivial function must come out far below MinSample, proving the
// batching divided by iters.
func TestMeasureCalibratesBatches(t *testing.T) {
	x := 0
	run := func() { x++ }
	samples := Measure(run, MeasureOpts{Reps: 3, MinSample: time.Millisecond, MaxTotal: 100 * time.Millisecond})
	for _, s := range samples {
		if s > float64(100*time.Microsecond) {
			t.Fatalf("per-call sample %vns way above a trivial call; batching broken", s)
		}
	}
}
