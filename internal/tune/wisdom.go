package tune

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"inplace/internal/core"
)

// WisdomVersion is the on-disk format version. Readers skip files with a
// different version (measurement semantics may have changed between
// versions, so stale decisions are worth less than re-tuning) instead of
// failing, so mixed-version deployments degrade to the static heuristic
// rather than erroring.
const WisdomVersion = 1

// ErrCorrupt is the sentinel wrapped by every wisdom decoding failure;
// errors.Is(err, ErrCorrupt) distinguishes a damaged file from I/O
// errors.
var ErrCorrupt = errors.New("tune: corrupt wisdom")

// FormatError is the typed error returned for syntactically or
// semantically invalid wisdom input. It wraps ErrCorrupt.
type FormatError struct {
	Reason string
	Err    error // underlying decode error, may be nil
}

func (e *FormatError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("tune: corrupt wisdom: %s: %v", e.Reason, e.Err)
	}
	return "tune: corrupt wisdom: " + e.Reason
}

func (e *FormatError) Unwrap() error { return ErrCorrupt }

// Key identifies one tuning problem, mirroring the planner cache key:
// the (order-normalized) shape, the element size in bytes, and the
// worker budget the tuner was allowed to spend. Decisions measured under
// one budget do not transfer to another (the worker sweep saturates
// differently), so the budget is part of the identity.
type Key struct {
	Rows       int `json:"rows"`
	Cols       int `json:"cols"`
	ElemSize   int `json:"elem_size"`
	MaxWorkers int `json:"max_workers"`
}

func (k Key) String() string {
	return fmt.Sprintf("%dx%d/%dB/w%d", k.Rows, k.Cols, k.ElemSize, k.MaxWorkers)
}

func (k Key) validate() error {
	if k.Rows <= 0 || k.Cols <= 0 || k.ElemSize <= 0 || k.MaxWorkers <= 0 {
		return &FormatError{Reason: fmt.Sprintf("invalid key %v", k)}
	}
	return nil
}

// Decision is a measured-optimal execution strategy for one Key: which
// pass structure to run, in which direction, with how many workers and
// what sub-row width. GBps records the winning measurement for
// provenance and for staleness checks by consumers.
type Decision struct {
	Variant string  `json:"variant"`           // core.Variant.String() name
	C2R     bool    `json:"c2r"`               // true: C2R pipeline, false: R2C
	Workers int     `json:"workers"`           // measured-best worker count
	BlockW  int     `json:"block_w,omitempty"` // cache-aware sub-row width, 0 = engine default
	GBps    float64 `json:"gbps,omitempty"`    // throughput of the winning candidate
}

// CoreVariant resolves the serialized variant name.
func (d Decision) CoreVariant() (core.Variant, bool) { return core.ParseVariant(d.Variant) }

func (d Decision) validate() error {
	if _, ok := d.CoreVariant(); !ok {
		return &FormatError{Reason: fmt.Sprintf("unknown variant %q", d.Variant)}
	}
	if d.Workers <= 0 || d.BlockW < 0 {
		return &FormatError{Reason: fmt.Sprintf("invalid decision %+v", d)}
	}
	return nil
}

// Table is a wisdom table: the accumulated measured decisions of an
// autotuning run (or several, merged). The zero value is not usable;
// call NewTable. A Table is not safe for concurrent mutation; callers
// that share one across goroutines (the package-level wisdom store in
// the public API) serialize access themselves.
type Table struct {
	m     map[Key]Decision
	ooc   map[OOCKey]OOCDecision
	perm  map[PermKey]PermDecision
	store map[StoreKey]StoreDecision
}

// NewTable returns an empty wisdom table.
func NewTable() *Table {
	return &Table{
		m:     make(map[Key]Decision),
		ooc:   make(map[OOCKey]OOCDecision),
		perm:  make(map[PermKey]PermDecision),
		store: make(map[StoreKey]StoreDecision),
	}
}

// Lookup returns the decision recorded for k, if any.
func (t *Table) Lookup(k Key) (Decision, bool) {
	d, ok := t.m[k]
	return d, ok
}

// Store records d as the decision for k, replacing any earlier entry.
func (t *Table) Store(k Key, d Decision) { t.m[k] = d }

// Len returns the number of recorded decisions.
func (t *Table) Len() int { return len(t.m) }

// Keys returns the table's keys in deterministic (sorted) order.
func (t *Table) Keys() []Key {
	ks := make([]Key, 0, len(t.m))
	for k := range t.m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.Rows != b.Rows {
			return a.Rows < b.Rows
		}
		if a.Cols != b.Cols {
			return a.Cols < b.Cols
		}
		if a.ElemSize != b.ElemSize {
			return a.ElemSize < b.ElemSize
		}
		return a.MaxWorkers < b.MaxWorkers
	})
	return ks
}

// Merge copies every entry of other into t, overwriting collisions:
// the incoming table is assumed fresher (cmd/xposetune merges new
// measurements over an existing file this way).
func (t *Table) Merge(other *Table) {
	for k, d := range other.m {
		t.m[k] = d
	}
	for k, d := range other.ooc {
		t.ooc[k] = d
	}
	for k, d := range other.perm {
		t.perm[k] = d
	}
	for k, d := range other.store {
		t.store[k] = d
	}
}

// Clone returns a deep copy of t.
func (t *Table) Clone() *Table {
	c := NewTable()
	c.Merge(t)
	return c
}

// Equal reports whether two tables hold identical entries.
func (t *Table) Equal(other *Table) bool {
	if len(t.m) != len(other.m) || len(t.ooc) != len(other.ooc) ||
		len(t.perm) != len(other.perm) || len(t.store) != len(other.store) {
		return false
	}
	for k, d := range t.m {
		if od, ok := other.m[k]; !ok || od != d {
			return false
		}
	}
	for k, d := range t.ooc {
		if od, ok := other.ooc[k]; !ok || od != d {
			return false
		}
	}
	for k, d := range t.perm {
		if od, ok := other.perm[k]; !ok || od != d {
			return false
		}
	}
	for k, d := range t.store {
		if od, ok := other.store[k]; !ok || od != d {
			return false
		}
	}
	return true
}

// wisdomFile is the on-disk envelope.
type wisdomFile struct {
	Version int              `json:"version"`
	Entries []wisdomEntry    `json:"entries"`
	OOC     []oocFileEntry   `json:"ooc,omitempty"`
	Perm    []permFileEntry  `json:"perm,omitempty"`
	Store   []storeFileEntry `json:"store,omitempty"`
}

type wisdomEntry struct {
	Key
	Decision
}

type oocFileEntry struct {
	OOCKey
	OOCDecision
}

type permFileEntry struct {
	PermKey
	PermDecision
}

type storeFileEntry struct {
	StoreKey
	StoreDecision
}

// Save writes the table to w as versioned JSON with entries in
// deterministic key order, so identical tables serialize identically
// (the round-trip property the fuzz harness asserts).
func (t *Table) Save(w io.Writer) error {
	f := wisdomFile{Version: WisdomVersion}
	for _, k := range t.Keys() {
		f.Entries = append(f.Entries, wisdomEntry{Key: k, Decision: t.m[k]})
	}
	for _, k := range t.OOCKeys() {
		f.OOC = append(f.OOC, oocFileEntry{OOCKey: k, OOCDecision: t.ooc[k]})
	}
	for _, k := range t.PermKeys() {
		f.Perm = append(f.Perm, permFileEntry{PermKey: k, PermDecision: t.perm[k]})
	}
	for _, k := range t.StoreKeys() {
		f.Store = append(f.Store, storeFileEntry{StoreKey: k, StoreDecision: t.store[k]})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Load reads a wisdom table from r.
//
//   - Syntactically or semantically invalid input (bad JSON, impossible
//     shapes, unknown variants) is rejected with a *FormatError wrapping
//     ErrCorrupt.
//   - A well-formed file with an unknown version is skipped, not fatal:
//     Load returns an empty table and nil error, so old processes reading
//     new wisdom (or vice versa) fall back to the static heuristic.
func Load(r io.Reader) (*Table, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Probe the version tolerantly first: a future version may carry
	// fields this reader has never heard of, and that must read as
	// "skip", not "corrupt".
	var probe struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, &FormatError{Reason: "decoding", Err: err}
	}
	if probe.Version == nil {
		return nil, &FormatError{Reason: "missing version"}
	}
	if *probe.Version != WisdomVersion {
		return NewTable(), nil
	}
	var f wisdomFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, &FormatError{Reason: "decoding", Err: err}
	}
	t := NewTable()
	for _, e := range f.Entries {
		if err := e.Key.validate(); err != nil {
			return nil, err
		}
		if err := e.Decision.validate(); err != nil {
			return nil, err
		}
		t.Store(e.Key, e.Decision)
	}
	for _, e := range f.OOC {
		if err := e.OOCKey.validate(); err != nil {
			return nil, err
		}
		if err := e.OOCDecision.validate(); err != nil {
			return nil, err
		}
		t.StoreOOC(e.OOCKey, e.OOCDecision)
	}
	for _, e := range f.Perm {
		if err := e.PermKey.validate(); err != nil {
			return nil, err
		}
		if err := e.PermDecision.validate(); err != nil {
			return nil, err
		}
		t.StorePerm(e.PermKey, e.PermDecision)
	}
	for _, e := range f.Store {
		if err := e.StoreKey.validate(); err != nil {
			return nil, err
		}
		if err := e.StoreDecision.validate(); err != nil {
			return nil, err
		}
		t.StoreStore(e.StoreKey, e.StoreDecision)
	}
	return t, nil
}
