package tune

import "time"

// The tuner's robust wall-clock measurement loop, exported so other
// harnesses (cmd/benchorch's orchestrator runs in particular) measure
// with the same discipline the autotuner trusts its decisions to:
// batch until a sample is long enough for the timer, repeat for a
// bounded number of samples under a total budget, and let the caller
// summarize with the robust statistics of internal/stats.

// MeasureOpts bounds one robust measurement. The zero value gets the
// tuner's defaults.
type MeasureOpts struct {
	// Reps is the target number of samples; 0 means 5.
	Reps int
	// MinSample is the minimum wall time of one sample: run is batched
	// until a sample takes at least this long, so timer granularity and
	// per-call jitter amortize away. 0 means 1ms.
	MinSample time.Duration
	// MaxTotal caps the total measurement time; remaining reps are
	// dropped once it is exceeded. 0 means 80ms.
	MaxTotal time.Duration
}

func (o MeasureOpts) withDefaults() MeasureOpts {
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.MinSample <= 0 {
		o.MinSample = time.Millisecond
	}
	if o.MaxTotal <= 0 {
		o.MaxTotal = 80 * time.Millisecond
	}
	return o
}

// Measure times run and returns per-call nanosecond samples, at least
// one and at most o.Reps. The caller is expected to have warmed run
// (first-call effects like lazy plan decomposition belong outside the
// measured region) and to reduce the samples robustly — the tuner takes
// stats.Median, the bench orchestrator keeps the whole set.
func Measure(run func(), o MeasureOpts) []float64 {
	o = o.withDefaults()
	start := time.Now()
	// Calibrate the per-sample batch size against MinSample.
	iters := 1
	d := TimeRuns(run, 1)
	for d < o.MinSample && iters < 1<<20 {
		iters *= 2
		d = TimeRuns(run, iters)
	}
	samples := []float64{float64(d.Nanoseconds()) / float64(iters)}
	for len(samples) < o.Reps && time.Since(start) < o.MaxTotal {
		d = TimeRuns(run, iters)
		samples = append(samples, float64(d.Nanoseconds())/float64(iters))
	}
	return samples
}

// TimeRuns returns the wall time of iters back-to-back calls of run.
func TimeRuns(run func(), iters int) time.Duration {
	start := time.Now()
	for i := 0; i < iters; i++ {
		run()
	}
	return time.Since(start)
}
