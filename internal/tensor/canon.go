package tensor

// Canonicalize reduces an axis permutation to its minimal normal form:
// size-1 axes are stripped (a unit axis contributes nothing to the
// linear layout, wherever it sits), and every run of axes that the
// permutation keeps adjacent and in order is collapsed into one axis
// whose extent is the run's product. The returned (shape, perm) pair
// describes the identical flat permutation of the identical buffer with
// the smallest possible rank; a permutation that only shuffles unit
// axes, or only relabels collapsed runs, canonicalizes to the identity.
//
// The collapse is what makes the factored execution cheap: NHWC→NCHW
// (rank 4) canonicalizes to (N, H·W, C) with perm (0,2,1), which a
// single batched 2D transpose realizes — H and W stay fused exactly as
// Theorem 7 fuses the interior of a slab.
//
// The input shape must already be validated; Canonicalize performs no
// overflow checks of its own (collapsed products divide the proven
// total size).
func Canonicalize(s Shape, p Perm) (Shape, Perm) {
	// Pass 1: strip unit axes, renumbering the survivors in source order.
	newID := make([]int, len(s))
	var dims Shape
	for i, d := range s {
		if d == 1 {
			newID[i] = -1
			continue
		}
		newID[i] = len(dims)
		dims = append(dims, d)
	}
	var perm Perm
	for _, a := range p {
		if newID[a] >= 0 {
			perm = append(perm, newID[a])
		}
	}

	// Pass 2: collapse runs that are consecutive in both the source
	// order and the output order. Walking the output order, a run
	// extends while the next output axis is the next source axis.
	k := len(perm)
	if k == 0 {
		return Shape{}, Perm{}
	}
	type group struct{ start, end int } // source-axis interval [start, end]
	var groups []group
	for j := 0; j < k; {
		g := group{start: perm[j], end: perm[j]}
		j++
		for j < k && perm[j] == g.end+1 {
			g.end = perm[j]
			j++
		}
		groups = append(groups, g)
	}

	// Renumber groups by source position, so the collapsed shape stays
	// in source order and the collapsed perm lists groups in output
	// order. Groups partition the source axes into disjoint intervals,
	// so ordering by start index is a total order.
	bySource := make([]int, len(dims)) // source axis -> group index in output order
	for gi, g := range groups {
		for a := g.start; a <= g.end; a++ {
			bySource[a] = gi
		}
	}
	srcOrder := make([]int, 0, len(groups)) // group indices in source order
	for a := 0; a < len(dims); {
		gi := bySource[a]
		srcOrder = append(srcOrder, gi)
		a = groups[gi].end + 1
	}
	rank := make([]int, len(groups)) // group index -> collapsed source axis id
	cshape := make(Shape, len(groups))
	for pos, gi := range srcOrder {
		rank[gi] = pos
		prod := 1
		for a := groups[gi].start; a <= groups[gi].end; a++ {
			prod *= dims[a]
		}
		cshape[pos] = prod
	}
	// groups was built walking the output order, so group j's collapsed
	// source id is the canonical perm entry for output position j.
	cperm := make(Perm, len(groups))
	for j := range groups {
		cperm[j] = rank[j]
	}
	return cshape, cperm
}
