package tensor

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// refPermute is the naive out-of-place reference: result[j-coords] =
// src[source coords], with result axis j being source axis p[j].
func refPermute(src []int, s Shape, p Perm) []int {
	srcStrides, ok := Strides(s)
	if !ok {
		panic("ref: stride overflow")
	}
	dstStrides, ok := Strides(Permuted(s, p))
	if !ok {
		panic("ref: dst stride overflow")
	}
	out := make([]int, len(src))
	coord := make([]int, len(s))
	for idx := range src {
		rem := idx
		for i := range s {
			coord[i] = rem / srcStrides[i]
			rem %= srcStrides[i]
		}
		d := 0
		for j, a := range p {
			d += coord[a] * dstStrides[j]
		}
		out[d] = src[idx]
	}
	return out
}

// applySteps executes a factorization with a trivial per-slab
// out-of-place transpose, validating the Step geometry independently of
// the real engine.
func applySteps(data []int, steps []Step) {
	for _, st := range steps {
		slab := st.Rows * st.Cols
		tmp := make([]int, slab)
		for k := 0; k < st.Slabs; k++ {
			s := data[k*slab : (k+1)*slab]
			for i := 0; i < st.Rows; i++ {
				for j := 0; j < st.Cols; j++ {
					tmp[j*st.Rows+i] = s[i*st.Cols+j]
				}
			}
			copy(s, tmp)
		}
	}
}

func seq(n int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = i
	}
	return v
}

func allPerms(k int) []Perm {
	if k == 0 {
		return []Perm{{}}
	}
	var out []Perm
	var rec func(rest []int, acc Perm)
	rec = func(rest []int, acc Perm) {
		if len(rest) == 0 {
			out = append(out, acc.Clone())
			return
		}
		for i, a := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(next, append(acc, a))
		}
	}
	rec(seq(k), nil)
	return out
}

// Exhaustive check over small shapes and every permutation: the
// canonical form describes the same flat permutation, and both
// factorizations of the canonical form realize it.
func TestCanonicalizeAndFactorExhaustive(t *testing.T) {
	shapes := []Shape{
		{2, 3}, {3, 2}, {1, 4}, {4, 1},
		{2, 3, 4}, {2, 1, 3}, {1, 1, 5}, {3, 3, 3},
		{2, 3, 2, 2}, {1, 2, 1, 3}, {2, 2, 2, 2},
		{2, 3, 1, 2, 2},
	}
	for _, s := range shapes {
		size, err := s.Validate()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		for _, p := range allPerms(len(s)) {
			want := refPermute(seq(size), s, p)

			cs, cp, err := canonPair(s, p)
			if err != nil {
				t.Fatalf("%v %v: %v", s, p, err)
			}
			gotCanon := refPermute(seq(size), cs, cp)
			if !reflect.DeepEqual(gotCanon, want) {
				t.Fatalf("%v %v: canonical (%v, %v) computes a different flat permutation", s, p, cs, cp)
			}

			for name, steps := range map[string][]Step{
				"greedy":  FactorGreedy(cs, cp),
				"inverse": FactorInverse(cs, cp),
			} {
				data := seq(size)
				applySteps(data, steps)
				if !reflect.DeepEqual(data, want) {
					t.Fatalf("%v %v [%s over (%v, %v)]: factored result wrong\nsteps=%v\ngot  %v\nwant %v",
						s, p, name, cs, cp, steps, data, want)
				}
				if cp.IsIdentity() && len(steps) != 0 {
					t.Fatalf("%v %v [%s]: identity canonical form factored into %d steps", s, p, name, len(steps))
				}
				if !cp.IsIdentity() && len(steps) > len(cs)-1 {
					t.Fatalf("%v %v [%s]: %d steps exceeds the k-1 bound for rank %d", s, p, name, len(steps), len(cs))
				}
			}
		}
	}
}

func canonPair(s Shape, p Perm) (Shape, Perm, error) {
	if _, err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if err := p.Validate(len(s)); err != nil {
		return nil, nil, err
	}
	cs, cp := Canonicalize(s, p)
	return cs, cp, nil
}

func TestCanonicalizeNormalForms(t *testing.T) {
	cases := []struct {
		s        Shape
		p        Perm
		wantS    Shape
		wantP    Perm
		identity bool
	}{
		// NHWC -> NCHW: H and W stay fused; one batched transpose.
		{Shape{8, 32, 32, 16}, Perm{0, 3, 1, 2}, Shape{8, 1024, 16}, Perm{0, 2, 1}, false},
		// NCHW -> NHWC, the inverse orientation.
		{Shape{8, 16, 32, 32}, Perm{0, 2, 3, 1}, Shape{8, 16, 1024}, Perm{0, 2, 1}, false},
		// Identity collapses to a single axis.
		{Shape{2, 3, 4}, Perm{0, 1, 2}, Shape{24}, Perm{0}, true},
		// Unit axes vanish wherever the permutation puts them.
		{Shape{1, 5, 1, 7}, Perm{3, 0, 1, 2}, Shape{5, 7}, Perm{1, 0}, false},
		// All-unit shapes canonicalize to rank 0.
		{Shape{1, 1, 1}, Perm{2, 0, 1}, Shape{}, Perm{}, true},
		// Plain 2D transpose is already canonical.
		{Shape{6, 7}, Perm{1, 0}, Shape{6, 7}, Perm{1, 0}, false},
	}
	for _, c := range cases {
		gs, gp := Canonicalize(c.s, c.p)
		if !reflect.DeepEqual(gs, c.wantS) || !reflect.DeepEqual(gp, c.wantP) {
			t.Errorf("Canonicalize(%v, %v) = (%v, %v), want (%v, %v)", c.s, c.p, gs, gp, c.wantS, c.wantP)
		}
		if gp.IsIdentity() != c.identity {
			t.Errorf("Canonicalize(%v, %v): identity = %v, want %v", c.s, c.p, gp.IsIdentity(), c.identity)
		}
	}
}

func TestNHWCFactorsToOnePass(t *testing.T) {
	cs, cp := Canonicalize(Shape{8, 32, 32, 16}, Perm{0, 3, 1, 2})
	steps := FactorGreedy(cs, cp)
	if len(steps) != 1 {
		t.Fatalf("NHWC->NCHW canonical form factored into %d passes, want 1: %v", len(steps), steps)
	}
	want := Step{Slabs: 8, Rows: 1024, Cols: 16}
	if steps[0] != want {
		t.Fatalf("NHWC->NCHW step = %+v, want %+v", steps[0], want)
	}
}

func TestValidation(t *testing.T) {
	if _, err := (Shape{2, 0, 3}).Validate(); !errors.Is(err, ErrShape) {
		t.Errorf("zero dim: err = %v, want ErrShape", err)
	}
	if _, err := (Shape{math.MaxInt, 2}).Validate(); !errors.Is(err, ErrOverflow) {
		t.Errorf("overflow: err = %v, want ErrOverflow", err)
	}
	if err := (Perm{0, 2}).Validate(2); !errors.Is(err, ErrPerm) {
		t.Errorf("out of range: err = %v, want ErrPerm", err)
	}
	if err := (Perm{0, 0}).Validate(2); !errors.Is(err, ErrPerm) {
		t.Errorf("duplicate: err = %v, want ErrPerm", err)
	}
	if err := (Perm{0}).Validate(2); !errors.Is(err, ErrPerm) {
		t.Errorf("short: err = %v, want ErrPerm", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	s, err := ParseShape("2x3x4")
	if err != nil || s.String() != "2x3x4" {
		t.Fatalf("ParseShape: %v, %v", s, err)
	}
	p, err := ParsePerm("2,0,1", 3)
	if err != nil || p.String() != "2,0,1" {
		t.Fatalf("ParsePerm: %v, %v", p, err)
	}
	if _, err := ParseShape("2xax4"); !errors.Is(err, ErrShape) {
		t.Errorf("bad shape: err = %v, want ErrShape", err)
	}
	if _, err := ParsePerm("0,1,3", 3); !errors.Is(err, ErrPerm) {
		t.Errorf("bad perm: err = %v, want ErrPerm", err)
	}
}

func TestInverseComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		k := 2 + rng.Intn(4)
		s := make(Shape, k)
		for i := range s {
			s[i] = 1 + rng.Intn(5)
		}
		p := Perm(rng.Perm(k))
		size, _ := s.Validate()
		once := refPermute(seq(size), s, p)
		back := refPermute(once, Permuted(s, p), p.Inverse())
		if !reflect.DeepEqual(back, seq(size)) {
			t.Fatalf("%v %v: inverse composition is not the identity", s, p)
		}
	}
}

func TestCostAndFloor(t *testing.T) {
	one := []Step{{Slabs: 8, Rows: 1024, Cols: 16}}
	two := []Step{{Slabs: 1, Rows: 64, Cols: 2048}, {Slabs: 16, Rows: 64, Cols: 128}}
	if Cost(one) >= Cost(two) {
		t.Errorf("Cost: one pass %v should be cheaper than two %v", Cost(one), Cost(two))
	}
	if got := ScratchFloor(one, 8); got != 2*1024*8 {
		t.Errorf("ScratchFloor = %d, want %d", got, 2*1024*8)
	}
	if got := ScratchFloor(nil, 8); got != 0 {
		t.Errorf("ScratchFloor(nil) = %d, want 0", got)
	}
}

func TestValidStrategy(t *testing.T) {
	for _, s := range []string{StrategyGreedy, StrategyInverse, StrategyCycle} {
		if !ValidStrategy(s) {
			t.Errorf("ValidStrategy(%q) = false", s)
		}
	}
	if ValidStrategy("bogus") {
		t.Error(`ValidStrategy("bogus") = true`)
	}
}
