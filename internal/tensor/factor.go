package tensor

// Factorization of a canonical axis permutation into batched 2D
// transpositions.
//
// The primitive available from the 2D engine is the suffix group
// exchange: with the buffer laid out row-major over axis order
// (L..., A..., B...), transposing each contiguous (ΠA)×(ΠB) slab in
// place — one slab per combination of the leading L axes — yields the
// order (L..., B..., A...). Leading axes become an outer slab loop and
// the interiors of both groups are preserved, which is exactly the slab
// structure the paper's Theorem 7 exploits for the 2D passes
// themselves. A sequence of such exchanges realizes any permutation;
// which sequence is cheapest depends on the shape, so two symmetric
// factorizations are produced and a cost model picks.

// Step is one batched 2D pass: for each of Slabs consecutive contiguous
// slabs of Rows*Cols elements, transpose the row-major Rows×Cols slab
// in place (the slab afterwards holds its row-major Cols×Rows
// transpose).
type Step struct {
	Slabs int
	Rows  int
	Cols  int
}

// FactorGreedy factors the permutation front to back: repeatedly find
// the first output position whose axis is not yet in place and rotate
// the current suffix so the wanted axis (and any following axes that
// already continue the target order) lands there. Each rotation is one
// Step; at least one output position is fixed per step, so a canonical
// rank-k permutation factors into at most k-1 passes.
//
// The shape and perm must be canonical (see Canonicalize): on canonical
// input no rotation is ever degenerate, so every emitted Step moves
// data.
func FactorGreedy(s Shape, p Perm) []Step {
	k := len(s)
	cur := make([]int, k) // current axis order, as source-axis ids
	for i := range cur {
		cur[i] = i
	}
	var steps []Step
	for {
		// First mismatched output position.
		q := 0
		for q < k && cur[q] == p[q] {
			q++
		}
		if q == k {
			return steps
		}
		// Locate the wanted axis in the current order.
		j := q + 1
		for cur[j] != p[q] {
			j++
		}
		// Rotate the suffix cur[q:] at split j: one batched transpose of
		// (Π cur[q:j]) × (Π cur[j:]) per leading slab.
		slabs, a, b := 1, 1, 1
		for _, ax := range cur[:q] {
			slabs *= s[ax]
		}
		for _, ax := range cur[q:j] {
			a *= s[ax]
		}
		for _, ax := range cur[j:] {
			b *= s[ax]
		}
		steps = append(steps, Step{Slabs: slabs, Rows: a, Cols: b})
		rotated := make([]int, 0, k-q)
		rotated = append(rotated, cur[j:]...)
		rotated = append(rotated, cur[q:j]...)
		copy(cur[q:], rotated)
	}
}

// FactorInverse factors the permutation through its inverse: the greedy
// factorization of p⁻¹ (on the permuted shape) maps the result layout
// back to the source layout, so running those steps inverted and in
// reverse order maps source to result. The inverse of a batched A×B
// transpose is the batched B×A transpose over the same slab structure.
// The two factorizations generally differ in pass shapes and slab
// counts, which is what gives the cost model a real choice.
func FactorInverse(s Shape, p Perm) []Step {
	back := FactorGreedy(Permuted(s, p), p.Inverse())
	steps := make([]Step, len(back))
	for i, st := range back {
		steps[len(back)-1-i] = Step{Slabs: st.Slabs, Rows: st.Cols, Cols: st.Rows}
	}
	return steps
}

// stepOverhead is the cost model's per-slab charge in element-move
// units: dispatching one more 2D transpose costs roughly a schedule
// lookup plus a cold cache line or two, so factorizations that shred
// the tensor into many tiny slabs pay for it against factorizations
// that move the same bytes in fewer, larger passes.
const stepOverhead = 256

// Cost estimates a factorization's execution cost in element moves:
// every pass reads and writes the full tensor once (2·size per step),
// plus the per-slab dispatch overhead.
func Cost(steps []Step) float64 {
	total := 0.0
	for _, st := range steps {
		elems := float64(st.Slabs) * float64(st.Rows) * float64(st.Cols)
		total += 2*elems + float64(st.Slabs)*stepOverhead
	}
	return total
}

// ScratchFloor returns the factored plan's auxiliary-space floor in
// bytes: the 2D engine needs O(max(rows, cols)) scratch elements per
// slab pass (the paper's bound made literal, doubled as the public OOC
// floor documents), and the factored executor runs one pass at a time,
// so the floor is the worst step's.
func ScratchFloor(steps []Step, elemSize int) int {
	floor := 0
	for _, st := range steps {
		long := st.Rows
		if st.Cols > long {
			long = st.Cols
		}
		if b := 2 * long * elemSize; b > floor {
			floor = b
		}
	}
	return floor
}

// Strategy names for the permutation planner, shared with the wisdom
// table (tune.PermDecision.Strategy) and the tuner's candidate set.
const (
	// StrategyGreedy is the front-to-back suffix-rotation factorization.
	StrategyGreedy = "greedy"
	// StrategyInverse is the factorization through the inverse
	// permutation, run backwards.
	StrategyInverse = "inverse"
	// StrategyCycle is the O(1)-auxiliary-space cycle-leader fallback in
	// the spirit of the reversal-method low-memory tensor permutations:
	// no scratch at all, at the cost of O(n·L) index work.
	StrategyCycle = "cycle"
)

// ValidStrategy reports whether s names a planner strategy.
func ValidStrategy(s string) bool {
	switch s {
	case StrategyGreedy, StrategyInverse, StrategyCycle:
		return true
	}
	return false
}
