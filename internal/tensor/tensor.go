// Package tensor provides the rank-generic index algebra under the
// public PermuteAxes API: validated Shape and Perm types, overflow-
// guarded row-major stride math, a canonicalizer that reduces any
// rank-k axis permutation to a minimal normal form, and factorizations
// of that normal form into sequences of batched 2D transpositions that
// the paper's three-pass engine executes per slab.
//
// The reduction is the generalization the paper's Theorem 7 hints at:
// just as the 2D decomposition works because every pass permutes whole
// slabs (rows or columns) whose interior layout is preserved, a rank-k
// permutation decomposes into passes that each exchange two contiguous
// axis groups of a suffix, leaving the leading axes as an outer slab
// loop and the group interiors untouched. Each such exchange is exactly
// an in-place 2D transpose of (group A size) × (group B size) applied
// independently to every leading slab.
package tensor

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"inplace/internal/mathutil"
)

// ErrShape reports a shape with a non-positive dimension.
var ErrShape = errors.New("tensor: dimensions must be positive")

// ErrOverflow reports a shape whose element count does not fit in int.
var ErrOverflow = errors.New("tensor: shape size overflows int")

// ErrPerm reports an axis list that is not a permutation of 0..rank-1.
var ErrPerm = errors.New("tensor: perm is not a permutation of the axes")

// Shape is the dimension list of a rank-k tensor, outermost axis first
// (row-major semantics throughout).
type Shape []int

// Validate checks every dimension is positive and the element count
// fits in int, returning the count.
func (s Shape) Validate() (size int, err error) {
	size = 1
	for _, d := range s {
		if d <= 0 {
			return 0, fmt.Errorf("%w (got %v)", ErrShape, s)
		}
		var ok bool
		size, ok = mathutil.CheckedMul(size, d)
		if !ok {
			return 0, fmt.Errorf("%w (got %v)", ErrOverflow, s)
		}
	}
	return size, nil
}

// Size returns the element count of a shape already proven valid.
func (s Shape) Size() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

// String formats the shape as "2x3x4" ("scalar" for rank 0).
func (s Shape) String() string {
	if len(s) == 0 {
		return "scalar"
	}
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, "x")
}

// ParseShape parses a "2x3x4" dimension list.
func ParseShape(spec string) (Shape, error) {
	parts := strings.Split(strings.TrimSpace(spec), "x")
	s := make(Shape, 0, len(parts))
	for _, p := range parts {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("%w (bad dims %q)", ErrShape, spec)
		}
		s = append(s, d)
	}
	if _, err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Strides returns the row-major strides of the shape (stride[i] is the
// linear distance between consecutive indices of axis i), and reports
// whether every stride product fits in int. A valid shape's strides
// always fit, since the largest stride is bounded by the size.
func Strides(s Shape) ([]int, bool) {
	k := len(s)
	st := make([]int, k)
	acc := 1
	for i := k - 1; i >= 0; i-- {
		st[i] = acc
		var ok bool
		acc, ok = mathutil.CheckedMul(acc, s[i])
		if !ok {
			return nil, false
		}
	}
	return st, true
}

// Perm is an axis permutation in the numpy.transpose convention: axis j
// of the result is axis Perm[j] of the input.
type Perm []int

// Validate checks p is a permutation of 0..rank-1.
func (p Perm) Validate(rank int) error {
	if len(p) != rank {
		return fmt.Errorf("%w (rank %d, got %d axes)", ErrPerm, rank, len(p))
	}
	seen := make([]bool, rank)
	for _, a := range p {
		if a < 0 || a >= rank || seen[a] {
			return fmt.Errorf("%w (got %v)", ErrPerm, []int(p))
		}
		seen[a] = true
	}
	return nil
}

// IsIdentity reports whether p maps every axis to itself.
func (p Perm) IsIdentity() bool {
	for j, a := range p {
		if a != j {
			return false
		}
	}
	return true
}

// Inverse returns the inverse permutation: Inverse()[p[j]] == j.
func (p Perm) Inverse() Perm {
	inv := make(Perm, len(p))
	for j, a := range p {
		inv[a] = j
	}
	return inv
}

// Clone returns a copy of the permutation.
func (p Perm) Clone() Perm { return append(Perm(nil), p...) }

// String formats the permutation as "2,0,1" ("id" for rank 0).
func (p Perm) String() string {
	if len(p) == 0 {
		return "id"
	}
	parts := make([]string, len(p))
	for i, a := range p {
		parts[i] = strconv.Itoa(a)
	}
	return strings.Join(parts, ",")
}

// ParsePerm parses a "2,0,1" axis list and validates it against rank.
func ParsePerm(spec string, rank int) (Perm, error) {
	parts := strings.Split(strings.TrimSpace(spec), ",")
	p := make(Perm, 0, len(parts))
	for _, s := range parts {
		a, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("%w (bad perm %q)", ErrPerm, spec)
		}
		p = append(p, a)
	}
	if err := p.Validate(rank); err != nil {
		return nil, err
	}
	return p, nil
}

// Permuted returns the shape after applying the permutation: result
// dimension j is s[p[j]].
func Permuted(s Shape, p Perm) Shape {
	out := make(Shape, len(p))
	for j, a := range p {
		out[j] = s[a]
	}
	return out
}
