// Package tilestore is a chunked columnar dataset store built on the
// repository's transpose machinery. A dataset holds Rows fixed-width
// records of Fields fields; ingest accepts the records row-major (the
// Array-of-Structures layout every producer naturally emits) and runs
// the paper's skinny AoS→SoA specialization (Theorem 7) on each chunk,
// so every column lands contiguous on disk. Scans and projections then
// read coalesced column segments — the storage analogue of the
// memory-coalescing argument the transpose kernels make — through a
// capacity-bounded block cache, verifying the CRC64 frame every
// segment is stored under.
//
// Durability follows the xposed spill registry's meta state machine:
// the data file is written first, and meta.json flips atomically from
// "ingesting" to "sealed" only after everything below it is synced. A
// kill at any earlier point leaves a dataset that Open refuses — to a
// reader the dataset is either absent or fully valid, never torn.
package tilestore

import (
	"fmt"
	"os"

	"inplace/internal/ooc"
	"inplace/internal/stats"
)

// DefaultCacheBytes is the block-cache capacity used when
// Options.CacheBytes is zero: 32 MiB.
const DefaultCacheBytes int64 = 32 << 20

// DefaultMemBudget is the ingest scratch ceiling used when
// Options.MemBudget is zero: 256 MiB, the same default as the
// out-of-core engine.
const DefaultMemBudget int64 = 256 << 20

// Engine supplies typed in-memory AoS↔SoA transposition for chunks
// that fit the memory budget. count is the record count of the chunk,
// fields and elem the schema's field count and element width; data is
// the chunk's count*fields*elem bytes, converted in place. A func may
// return ErrEngineElem to decline an element width, in which case the
// store falls back to its built-in path (the out-of-core panel
// pipeline on an in-memory backend), which permutes opaque records of
// any width. A zero Engine always uses the built-in path.
//
// The public inplace package injects an Engine that routes through its
// planner cache and wisdom tables, so repeated chunks of one shape
// share a plan.
type Engine struct {
	AOSToSOA func(data []byte, count, fields, elem int) error
	SOAToAOS func(data []byte, count, fields, elem int) error
}

// Options parameterizes a dataset handle.
type Options struct {
	// CacheBytes is the block-cache capacity in bytes; 0 means
	// DefaultCacheBytes, raised to one full segment when the schema's
	// segments are larger. An explicit capacity below one segment is
	// rejected with ErrCacheBudget.
	CacheBytes int64

	// MemBudget is the ingest scratch ceiling in bytes; 0 means
	// DefaultMemBudget. Chunks whose AoS image exceeds it are spilled
	// through the out-of-core panel pipeline instead of being
	// transposed resident.
	MemBudget int64

	// Workers is the transform parallelism inside the built-in and
	// spill transpose paths; 0 means GOMAXPROCS.
	Workers int

	// Engine optionally supplies typed in-memory transposition; see
	// Engine.
	Engine Engine

	// Label namespaces the dataset's counters on the stats registry
	// (store_<label>_*); "" derives it from the directory base name.
	Label string

	// Registry receives the dataset's counters; nil means
	// stats.Default().
	Registry *stats.Registry
}

// Dataset is an open dataset handle: either an ingest handle (Create/
// OpenIngest until Seal) or a sealed read handle (Open). Read handles
// are safe for concurrent use; ingest handles are not.
type Dataset struct {
	dir string
	g   geom
	f   *os.File

	state     int
	cache     *blockCache
	ctr       *meters
	engine    Engine
	memBudget int64
	workers   int

	nextChunk int    // ingest cursor
	scratch   []byte // ingest chunk buffer (resident path only)
}

// Create initializes a new dataset directory: the data-file header is
// written and meta.json is persisted in the ingesting state. The
// returned handle accepts Ingest calls and must be sealed (normally by
// Ingest itself) before any Open sees the dataset.
func Create(dir string, s Schema, opts Options) (*Dataset, error) {
	g, err := newGeom(s)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(dataPath(dir), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	d, err := newDataset(dir, g, f, stateIngesting, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	h := g.encodeHeader()
	if err := d.writeAt(h[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if err := writeMeta(dir, d.meta(stateIngesting)); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// OpenIngest reopens a created-but-unsealed dataset to continue (or
// restart) its ingest. Ingest always rewrites from the first chunk —
// partially written segments from a previous attempt are simply
// overwritten, and nothing becomes visible until Seal.
func OpenIngest(dir string, opts Options) (*Dataset, error) {
	m, g, err := openValidated(dir)
	if err != nil {
		return nil, err
	}
	if m.State != stateIngesting {
		return nil, stateErr("ingest", m.State)
	}
	f, err := os.OpenFile(dataPath(dir), os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	d, err := newDataset(dir, g, f, stateIngesting, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// Open opens a sealed dataset for reading. Unsealed datasets fail with
// ErrNotSealed; a missing meta file surfaces the fs.ErrNotExist from
// the filesystem, so callers distinguish "absent" from "torn".
func Open(dir string, opts Options) (*Dataset, error) {
	m, g, err := openValidated(dir)
	if err != nil {
		return nil, err
	}
	if m.State != stateSealed {
		return nil, fmt.Errorf("%w: state %d", ErrNotSealed, m.State)
	}
	f, err := os.OpenFile(dataPath(dir), os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, err
	} else if fi.Size() != g.dataBytes {
		f.Close()
		return nil, fmt.Errorf("%w: data file holds %d bytes, schema requires %d",
			ErrCorruptChunk, fi.Size(), g.dataBytes)
	}
	d, err := newDataset(dir, g, f, stateSealed, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// openValidated loads the meta file and cross-checks it against the
// data-file header: both describe the same geometry or the dataset is
// rejected.
func openValidated(dir string) (metaFile, geom, error) {
	m, g, err := readMeta(dir)
	if err != nil {
		return metaFile{}, geom{}, err
	}
	hf, err := os.Open(dataPath(dir))
	if err != nil {
		return metaFile{}, geom{}, err
	}
	defer hf.Close()
	var h [hdrSize]byte
	if _, err := hf.ReadAt(h[:], 0); err != nil {
		return metaFile{}, geom{}, headerErr("unreadable data header")
	}
	hg, err := decodeHeader(h[:])
	if err != nil {
		return metaFile{}, geom{}, err
	}
	if hg.s != g.s || hg.gen != g.gen {
		return metaFile{}, geom{}, headerErr("meta and data header disagree")
	}
	return m, g, nil
}

// newDataset assembles a handle and validates the cache configuration
// against the schema's segment size.
func newDataset(dir string, g geom, f *os.File, state int, opts Options) (*Dataset, error) {
	capacity := opts.CacheBytes
	segFloor := int64(g.segBytes)
	if capacity == 0 {
		capacity = DefaultCacheBytes
		if capacity < segFloor {
			capacity = segFloor
		}
	}
	if capacity < segFloor {
		return nil, cacheBudgetErr(capacity, segFloor)
	}
	budget := opts.MemBudget
	if budget <= 0 {
		budget = DefaultMemBudget
	}
	ctr := newMeters(opts.Registry, sanitizeLabel(opts.Label, dir))
	return &Dataset{
		dir:       dir,
		g:         g,
		f:         f,
		state:     state,
		cache:     newBlockCache(capacity, ctr),
		ctr:       ctr,
		engine:    opts.Engine,
		memBudget: budget,
		workers:   opts.Workers,
	}, nil
}

func (d *Dataset) meta(state int) metaFile {
	return metaFile{
		Magic:      "xtile",
		Version:    formatVersion,
		Rows:       d.g.s.Rows,
		Fields:     d.g.s.Fields,
		ElemSize:   d.g.s.ElemSize,
		ChunkRows:  d.g.s.ChunkRows,
		Generation: d.g.gen,
		State:      state,
		DataBytes:  d.g.dataBytes,
	}
}

// Schema returns the dataset's (normalized) schema.
func (d *Dataset) Schema() Schema { return d.g.s }

// Chunks returns the dataset's chunk count.
func (d *Dataset) Chunks() int { return d.g.chunks }

// Sealed reports whether the handle reads a sealed dataset.
func (d *Dataset) Sealed() bool { return d.state == stateSealed }

// Stats snapshots this handle's counters.
func (d *Dataset) Stats() Stats { return d.ctr.snapshot() }

// CacheResidentBytes reports the block cache's current footprint.
func (d *Dataset) CacheResidentBytes() int64 { return d.cache.residentBytes() }

// Close releases the handle. An unsealed dataset stays in the
// ingesting state — invisible to Open — until a later OpenIngest
// completes it or the directory is removed.
func (d *Dataset) Close() error {
	if d.f == nil {
		return nil
	}
	err := d.f.Close()
	d.f = nil
	return err
}

// readAt is the metered backend read: every byte a projection or scan
// pulls from storage is accounted here, which is what lets the
// selftest prove a projection touches fewer bytes than a scan.
func (d *Dataset) readAt(p []byte, off int64) error {
	n, err := d.f.ReadAt(p, off)
	d.ctr.readOps.inc()
	d.ctr.bytesRead.add(uint64(n))
	if err != nil {
		return fmt.Errorf("tilestore: read %d bytes at %d: %w", len(p), off, err)
	}
	return nil
}

// writeAt is the metered backend write.
func (d *Dataset) writeAt(p []byte, off int64) error {
	n, err := d.f.WriteAt(p, off)
	d.ctr.writeOps.inc()
	d.ctr.bytesWritten.add(uint64(n))
	if err != nil {
		return fmt.Errorf("tilestore: write %d bytes at %d: %w", len(p), off, err)
	}
	return nil
}

// block returns the verified payload of (chunk, col), from cache when
// resident, loading and validating it from the backend otherwise. The
// frame's identity fields and payload length are checked against the
// schema-derived expectation before any byte is trusted, and the
// payload checksum closes the loop.
func (d *Dataset) block(chunk, col int) ([]byte, error) {
	key := blockKey{chunk: chunk, col: col}
	if buf, ok := d.cache.get(key); ok {
		return buf, nil
	}
	payload := d.g.segPayload(chunk)
	off := d.g.segOff(chunk, col)
	var hdr [ooc.FrameHeaderSize]byte
	if err := d.readAt(hdr[:], off); err != nil {
		return nil, err
	}
	fr, ok := ooc.ParseFrame(hdr[:])
	if !ok {
		return nil, corruptErr(chunk, col, "frame header checksum mismatch")
	}
	if err := d.checkFrame(fr, chunk, col, payload); err != nil {
		return nil, err
	}
	buf := make([]byte, payload)
	if err := d.readAt(buf, off+ooc.FrameHeaderSize); err != nil {
		return nil, err
	}
	if sum := ooc.Checksum(buf); sum != fr.PayloadSum {
		return nil, corruptSumErr(chunk, col, fr.PayloadSum, sum)
	}
	return d.cache.put(key, buf), nil
}

// checkFrame validates a decoded segment frame against its expected
// identity. The decoded payload length is compared to the
// schema-derived size — never used for allocation or indexing — so a
// corrupted length can reject the segment but not inflate a buffer.
func (d *Dataset) checkFrame(fr ooc.Frame, chunk, col, payload int) error {
	switch {
	case fr.Kind != segKind:
		return corruptErr(chunk, col, "not a segment frame")
	case fr.Tag != uint32(col) || fr.Unit != uint64(chunk):
		return corruptErr(chunk, col, "frame identity mismatch")
	case fr.Gen != d.g.gen:
		return corruptErr(chunk, col, "frame generation mismatch")
	case fr.PayloadLen != uint64(payload):
		return corruptErr(chunk, col, "frame payload length mismatch")
	}
	return nil
}

// Verify re-reads every segment of the dataset and checks its frame
// and payload checksum, without populating the cache: the integrity
// scan behind xposestore verify and the selftest's kill/recover check.
func (d *Dataset) Verify() error {
	if fi, err := d.f.Stat(); err != nil {
		return err
	} else if fi.Size() != d.g.dataBytes {
		return fmt.Errorf("%w: data file holds %d bytes, schema requires %d",
			ErrCorruptChunk, fi.Size(), d.g.dataBytes)
	}
	var hdr [ooc.FrameHeaderSize]byte
	for c := 0; c < d.g.chunks; c++ {
		payload := d.g.segPayload(c)
		for col := 0; col < d.g.s.Fields; col++ {
			off := d.g.segOff(c, col)
			if err := d.readAt(hdr[:], off); err != nil {
				return err
			}
			fr, ok := ooc.ParseFrame(hdr[:])
			if !ok {
				return corruptErr(c, col, "frame header checksum mismatch")
			}
			if err := d.checkFrame(fr, c, col, payload); err != nil {
				return err
			}
			sum, err := ooc.ChecksumRange(d.f, off+ooc.FrameHeaderSize, int64(payload))
			d.ctr.readOps.inc()
			d.ctr.bytesRead.add(uint64(payload))
			if err != nil {
				return fmt.Errorf("tilestore: verifying chunk %d column %d: %w", c, col, err)
			}
			if sum != fr.PayloadSum {
				return corruptSumErr(c, col, fr.PayloadSum, sum)
			}
		}
	}
	return nil
}
