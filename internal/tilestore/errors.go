package tilestore

import (
	"errors"
	"fmt"
)

// The typed error taxonomy of the tile store. Every failure surfaced by
// Create/Open/Ingest/Project/Scan/Verify wraps exactly one of these
// sentinels, so callers branch with errors.Is instead of string
// matching; the cold-path constructor helpers keep the fmt machinery
// out of the read loops (the same pattern as internal/ooc's errors.go).

// ErrBadSchema reports an invalid dataset schema: non-positive
// dimensions, products that overflow, a decoded header whose fields
// fail validation or disagree with the meta file, or a magic/version/
// checksum mismatch in the dataset header itself.
var ErrBadSchema = errors.New("tilestore: invalid dataset schema")

// ErrCorruptChunk reports a column segment whose frame header or
// payload bytes fail checksum validation, carry the wrong identity
// (chunk, column or generation), or fall outside the data file: the
// storage returned different bytes than were durably written.
var ErrCorruptChunk = errors.New("tilestore: corrupt chunk segment")

// ErrColumnRange reports a projection column outside [0, fields) or a
// row range outside [0, rows) / with lo >= hi.
var ErrColumnRange = errors.New("tilestore: column or row range out of bounds")

// ErrCacheBudget reports a block-cache capacity below one column
// segment: no projection could ever be served, so the configuration is
// rejected at open time instead of failing every read.
var ErrCacheBudget = errors.New("tilestore: cache capacity below one column segment")

// ErrNotSealed reports an Open of a dataset whose meta state machine
// never reached sealed: an ingest was killed (or abandoned) before the
// atomic commit, so the dataset is treated as absent.
var ErrNotSealed = errors.New("tilestore: dataset was not sealed (ingest incomplete)")

// ErrLength reports a caller buffer whose length does not match the
// requested projection or scan geometry.
var ErrLength = errors.New("tilestore: buffer length does not match request")

// ErrSealed reports an Ingest into a dataset that is already sealed,
// or a read from one that is not.
var ErrSealed = errors.New("tilestore: operation does not match dataset state")

// ErrEngineElem is returned by an injected Engine transpose to decline
// an element width it has no typed kernel for; the store falls back to
// its built-in out-of-core path, which permutes opaque records of any
// width.
var ErrEngineElem = errors.New("tilestore: engine does not support element width")

// --- Cold-path error constructors ---

func schemaErr(reason string, s Schema) error {
	return fmt.Errorf("%w: %s (rows=%d fields=%d elem=%d chunk_rows=%d)",
		ErrBadSchema, reason, s.Rows, s.Fields, s.ElemSize, s.ChunkRows)
}

func headerErr(reason string) error {
	return fmt.Errorf("%w: %s", ErrBadSchema, reason)
}

func corruptErr(chunk, col int, reason string) error {
	return fmt.Errorf("%w: chunk %d column %d: %s", ErrCorruptChunk, chunk, col, reason)
}

func corruptSumErr(chunk, col int, want, got uint64) error {
	return fmt.Errorf("%w: chunk %d column %d payload checksum %016x, frame recorded %016x",
		ErrCorruptChunk, chunk, col, got, want)
}

func noColumnsErr() error {
	return fmt.Errorf("%w: empty column list", ErrColumnRange)
}

func colRangeErr(col, fields int) error {
	return fmt.Errorf("%w: column %d of %d", ErrColumnRange, col, fields)
}

func rowRangeErr(lo, hi, rows int) error {
	return fmt.Errorf("%w: rows [%d, %d) of %d", ErrColumnRange, lo, hi, rows)
}

func cacheBudgetErr(capacity, segBytes int64) error {
	return fmt.Errorf("%w: capacity %d bytes, segment %d bytes", ErrCacheBudget, capacity, segBytes)
}

func lengthErr(got, want int) error {
	return fmt.Errorf("%w: len %d, want %d", ErrLength, got, want)
}

func stateErr(op string, state int) error {
	return fmt.Errorf("%w: %s on dataset in state %d", ErrSealed, op, state)
}
