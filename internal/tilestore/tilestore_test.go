package tilestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"inplace/internal/stats"
)

// makeAoS builds a deterministic row-major AoS image: every byte is a
// mix of its element index and position, so any misplaced element is
// visible and runs are reproducible.
func makeAoS(rows, fields, elem int) []byte {
	buf := make([]byte, rows*fields*elem)
	for r := 0; r < rows; r++ {
		for f := 0; f < fields; f++ {
			for b := 0; b < elem; b++ {
				i := (r*fields+f)*elem + b
				buf[i] = byte(uint32(r*2654435761+f*40503+b*97) >> 3)
				_ = i
			}
		}
	}
	return buf
}

// oracleProject computes the expected projection straight from the AoS
// image.
func oracleProject(aos []byte, fields, elem int, cols []int, lo, hi int) []byte {
	out := make([]byte, 0, (hi-lo)*len(cols)*elem)
	for r := lo; r < hi; r++ {
		for _, c := range cols {
			off := (r*fields + c) * elem
			out = append(out, aos[off:off+elem]...)
		}
	}
	return out
}

// buildDataset creates, ingests and reopens a dataset from aos.
func buildDataset(t *testing.T, s Schema, aos []byte, opts Options) (*Dataset, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ds")
	d, err := Create(dir, s, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := d.Ingest(bytes.NewReader(aos)); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rd, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { rd.Close() })
	return rd, dir
}

func TestRoundTrip(t *testing.T) {
	for _, s := range []Schema{
		{Rows: 1, Fields: 1, ElemSize: 1, ChunkRows: 1},
		{Rows: 7, Fields: 3, ElemSize: 2, ChunkRows: 4},     // uneven last chunk
		{Rows: 64, Fields: 5, ElemSize: 3, ChunkRows: 16},   // odd elem width
		{Rows: 100, Fields: 16, ElemSize: 4, ChunkRows: 32}, // selftest shape
		{Rows: 33, Fields: 2, ElemSize: 8, ChunkRows: 50},   // ChunkRows clamped
		{Rows: 24, Fields: 7, ElemSize: 16, ChunkRows: 8},
	} {
		t.Run(fmt.Sprintf("r%df%de%dc%d", s.Rows, s.Fields, s.ElemSize, s.ChunkRows), func(t *testing.T) {
			aos := makeAoS(s.Rows, s.Fields, s.ElemSize)
			d, _ := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})

			// Full scan reproduces the ingested rows bit-exactly.
			got := make([]byte, len(aos))
			if err := d.ScanRows(got, 0, s.Rows); err != nil {
				t.Fatalf("ScanRows: %v", err)
			}
			if !bytes.Equal(got, aos) {
				t.Fatal("full scan does not match ingested AoS image")
			}

			// Projections of assorted column sets and row windows match
			// the oracle.
			for _, tc := range []struct {
				cols   []int
				lo, hi int
			}{
				{[]int{0}, 0, s.Rows},
				{[]int{s.Fields - 1}, 0, 1},
				{[]int{0, s.Fields - 1}, s.Rows / 3, s.Rows},
				{[]int{s.Fields / 2}, s.Rows / 2, s.Rows/2 + 1},
			} {
				want := oracleProject(aos, s.Fields, s.ElemSize, tc.cols, tc.lo, tc.hi)
				got := make([]byte, len(want))
				if err := d.Project(got, tc.cols, tc.lo, tc.hi); err != nil {
					t.Fatalf("Project(%v, %d, %d): %v", tc.cols, tc.lo, tc.hi, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("Project(%v, %d, %d) mismatch", tc.cols, tc.lo, tc.hi)
				}
			}

			if err := d.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
		})
	}
}

// TestSpillPath forces every chunk through the out-of-core spill
// pipeline by shrinking the memory budget below one chunk, and checks
// the result is bit-identical to the resident path.
func TestSpillPath(t *testing.T) {
	s := Schema{Rows: 96, Fields: 6, ElemSize: 4, ChunkRows: 32}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)

	reg := stats.NewRegistry()
	resident, _ := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})
	spilled, dir := buildDataset(t, s, aos, Options{
		MemBudget: 64, // far below one chunk: every chunk spills
		Registry:  reg,
	})

	// The ingest handle is closed inside buildDataset; its spill count
	// survives on the shared registry (label derives from the dir base).
	if got := reg.Counter("store_ds_spills").Load(); got == 0 {
		t.Fatal("expected spills with a 64-byte budget, counter is zero")
	}
	if _, err := os.Stat(filepath.Join(dir, spillFileName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("spill scratch file survived ingest: %v", err)
	}

	a := make([]byte, len(aos))
	b := make([]byte, len(aos))
	if err := resident.ScanRows(a, 0, s.Rows); err != nil {
		t.Fatalf("resident scan: %v", err)
	}
	if err := spilled.ScanRows(b, 0, s.Rows); err != nil {
		t.Fatalf("spilled scan: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("spilled ingest produced different rows than resident ingest")
	}
	if !bytes.Equal(a, aos) {
		t.Fatal("scan does not match ingested image")
	}
}

// TestEngineFallback checks both engine contracts: a typed engine that
// accepts the width is used, and one that declines with ErrEngineElem
// falls back to the built-in path with identical results.
func TestEngineFallback(t *testing.T) {
	s := Schema{Rows: 40, Fields: 4, ElemSize: 4, ChunkRows: 16}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)

	decline := Engine{
		AOSToSOA: func([]byte, int, int, int) error { return ErrEngineElem },
		SOAToAOS: func([]byte, int, int, int) error { return ErrEngineElem },
	}
	used := 0
	naive := Engine{
		AOSToSOA: func(data []byte, count, fields, elem int) error {
			used++
			out := make([]byte, len(data))
			for r := 0; r < count; r++ {
				for f := 0; f < fields; f++ {
					copy(out[(f*count+r)*elem:], data[(r*fields+f)*elem:(r*fields+f+1)*elem])
				}
			}
			copy(data, out)
			return nil
		},
	}

	base, _ := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})
	declined, _ := buildDataset(t, s, aos, Options{Engine: decline, Registry: stats.NewRegistry()})
	typed, _ := buildDataset(t, s, aos, Options{Engine: naive, Registry: stats.NewRegistry()})
	if used == 0 {
		t.Fatal("typed engine was never invoked")
	}

	want := make([]byte, len(aos))
	if err := base.ScanRows(want, 0, s.Rows); err != nil {
		t.Fatalf("base scan: %v", err)
	}
	for name, d := range map[string]*Dataset{"declined": declined, "typed": typed} {
		got := make([]byte, len(aos))
		if err := d.ScanRows(got, 0, s.Rows); err != nil {
			t.Fatalf("%s scan: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s engine path diverged from builtin", name)
		}
	}
}

// TestEngineErrorPropagates checks a non-sentinel engine failure aborts
// the ingest instead of silently falling back.
func TestEngineErrorPropagates(t *testing.T) {
	boom := errors.New("kernel fault")
	s := Schema{Rows: 8, Fields: 2, ElemSize: 4, ChunkRows: 8}
	dir := filepath.Join(t.TempDir(), "ds")
	d, err := Create(dir, s, Options{
		Engine:   Engine{AOSToSOA: func([]byte, int, int, int) error { return boom }},
		Registry: stats.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer d.Close()
	err = d.Ingest(bytes.NewReader(makeAoS(s.Rows, s.Fields, s.ElemSize)))
	if !errors.Is(err, boom) {
		t.Fatalf("Ingest error = %v, want wrapped engine fault", err)
	}
}

// TestMetaStateMachine exercises the absent-or-fully-valid property:
// a dataset whose ingest never sealed is refused by Open with
// ErrNotSealed, and OpenIngest can complete it later.
func TestMetaStateMachine(t *testing.T) {
	s := Schema{Rows: 20, Fields: 3, ElemSize: 4, ChunkRows: 8}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)
	dir := filepath.Join(t.TempDir(), "ds")
	opts := Options{Registry: stats.NewRegistry()}

	d, err := Create(dir, s, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Abandon before ingest completes — the simulated kill.
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := Open(dir, opts); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("Open of unsealed dataset = %v, want ErrNotSealed", err)
	}

	// A later ingest attempt completes the dataset.
	rd, err := OpenIngest(dir, opts)
	if err != nil {
		t.Fatalf("OpenIngest: %v", err)
	}
	if err := rd.Ingest(bytes.NewReader(aos)); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := rd.Verify(); err != nil {
		t.Fatalf("Verify after reingest: %v", err)
	}
	rd.Close()

	rd2, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open after seal: %v", err)
	}
	defer rd2.Close()
	if _, err := OpenIngest(dir, opts); !errors.Is(err, ErrSealed) {
		t.Fatalf("OpenIngest of sealed dataset = %v, want ErrSealed", err)
	}

	// A truncated reader must leave the dataset unsealed.
	dir2 := filepath.Join(t.TempDir(), "short")
	d2, err := Create(dir2, s, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer d2.Close()
	if err := d2.Ingest(bytes.NewReader(aos[:len(aos)/2])); err == nil {
		t.Fatal("Ingest of truncated input succeeded")
	}
	if _, err := Open(dir2, opts); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("Open after failed ingest = %v, want ErrNotSealed", err)
	}
}

// TestCacheBehavior checks hit/miss accounting, the capacity bound, and
// eviction under pressure.
func TestCacheBehavior(t *testing.T) {
	s := Schema{Rows: 64, Fields: 8, ElemSize: 4, ChunkRows: 16} // 4 chunks × 8 cols, 64 B segments
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)

	t.Run("warm scans hit", func(t *testing.T) {
		d, _ := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})
		buf := make([]byte, len(aos))
		const scans = 16
		for i := 0; i < scans; i++ {
			if err := d.ScanRows(buf, 0, s.Rows); err != nil {
				t.Fatalf("scan %d: %v", i, err)
			}
		}
		st := d.Stats()
		blocks := uint64(4 * 8)
		if st.CacheMisses != blocks {
			t.Fatalf("misses = %d, want %d (one cold pass)", st.CacheMisses, blocks)
		}
		if st.CacheHits != blocks*(scans-1) {
			t.Fatalf("hits = %d, want %d", st.CacheHits, blocks*(scans-1))
		}
		rate := float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
		if rate <= 0.9 {
			t.Fatalf("hit rate %.3f, want > 0.9", rate)
		}
	})

	t.Run("tight capacity evicts and stays bounded", func(t *testing.T) {
		// Room for exactly 4 segments out of 32.
		d, _ := buildDataset(t, s, aos, Options{CacheBytes: 4 * 64, Registry: stats.NewRegistry()})
		buf := make([]byte, len(aos))
		for i := 0; i < 3; i++ {
			if err := d.ScanRows(buf, 0, s.Rows); err != nil {
				t.Fatalf("scan %d: %v", i, err)
			}
		}
		if got := d.CacheResidentBytes(); got > 4*64 {
			t.Fatalf("resident %d bytes exceeds %d capacity", got, 4*64)
		}
		if st := d.Stats(); st.CacheEvictions == 0 {
			t.Fatal("no evictions under 8x cache pressure")
		}
	})

	t.Run("capacity below one segment rejected", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "ds")
		_, err := Create(dir, s, Options{CacheBytes: 63, Registry: stats.NewRegistry()})
		if !errors.Is(err, ErrCacheBudget) {
			t.Fatalf("Create with 63-byte cache = %v, want ErrCacheBudget", err)
		}
	})
}

// TestConcurrentReaders hammers one sealed dataset from many goroutines
// mixing projections and scans; run under -race this is the
// concurrent-reader safety check for the block cache.
func TestConcurrentReaders(t *testing.T) {
	s := Schema{Rows: 128, Fields: 6, ElemSize: 8, ChunkRows: 32}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)
	// Tight cache so readers race insertions against evictions too.
	d, _ := buildDataset(t, s, aos, Options{CacheBytes: 3 * 32 * 8, Registry: stats.NewRegistry()})

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cols := []int{g % s.Fields, (g + 3) % s.Fields}
			proj := make([]byte, s.Rows*len(cols)*s.ElemSize)
			rows := make([]byte, s.Rows*s.Fields*s.ElemSize)
			want := oracleProject(aos, s.Fields, s.ElemSize, cols, 0, s.Rows)
			for i := 0; i < 50; i++ {
				if err := d.Project(proj, cols, 0, s.Rows); err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(proj, want) {
					errCh <- errors.New("concurrent projection mismatch")
					return
				}
				if g == 0 {
					if err := d.ScanRows(rows, 0, s.Rows); err != nil {
						errCh <- err
						return
					}
					if !bytes.Equal(rows, aos) {
						errCh <- errors.New("concurrent scan mismatch")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestProjectionReadsFewerBytes asserts the core columnar property on
// the backend byte counters: a cold 3-of-16-column projection reads
// strictly fewer bytes than a cold full scan of the same rows.
func TestProjectionReadsFewerBytes(t *testing.T) {
	s := Schema{Rows: 256, Fields: 16, ElemSize: 4, ChunkRows: 64}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)

	scanned, _ := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})
	full := make([]byte, len(aos))
	if err := scanned.ScanRows(full, 0, s.Rows); err != nil {
		t.Fatalf("scan: %v", err)
	}
	scanBytes := scanned.Stats().BytesRead

	projected, _ := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})
	cols := []int{1, 7, 14}
	proj := make([]byte, s.Rows*len(cols)*s.ElemSize)
	if err := projected.Project(proj, cols, 0, s.Rows); err != nil {
		t.Fatalf("project: %v", err)
	}
	projBytes := projected.Stats().BytesRead

	if projBytes >= scanBytes {
		t.Fatalf("projection read %d bytes, full scan %d: columnar layout is not paying off", projBytes, scanBytes)
	}
	if !bytes.Equal(proj, oracleProject(aos, s.Fields, s.ElemSize, cols, 0, s.Rows)) {
		t.Fatal("projection mismatch")
	}
}

// TestRegistryCounters checks the double-booked counters surface on the
// shared registry under the store_<label>_ namespace.
func TestRegistryCounters(t *testing.T) {
	reg := stats.NewRegistry()
	s := Schema{Rows: 16, Fields: 2, ElemSize: 4, ChunkRows: 8}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)
	d, _ := buildDataset(t, s, aos, Options{Label: "My-DS", Registry: reg})
	buf := make([]byte, len(aos))
	if err := d.ScanRows(buf, 0, s.Rows); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if got := reg.Counter("store_my_ds_scans").Load(); got != 1 {
		t.Fatalf("registry scans counter = %d, want 1", got)
	}
	if got := reg.Counter("store_my_ds_segments_written").Load(); got != uint64(d.Chunks()*s.Fields) {
		t.Fatalf("registry segments counter = %d, want %d", got, d.Chunks()*s.Fields)
	}
	if d.Stats().Scans != 1 {
		t.Fatalf("handle scans counter = %d, want 1", d.Stats().Scans)
	}
}
