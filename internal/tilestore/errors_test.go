package tilestore

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"inplace/internal/stats"
)

// The sentinel matrix: every refusal the package can issue is reachable
// and wraps exactly the documented sentinel, so errors.Is is a stable
// contract. One entry per (operation, misuse) pair.
func TestErrorSentinels(t *testing.T) {
	s := Schema{Rows: 32, Fields: 4, ElemSize: 4, ChunkRows: 16}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)
	d, _ := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})
	dst := func(n int) []byte { return make([]byte, n) }

	cases := []struct {
		name string
		err  error
		want error
	}{
		{"schema zero rows", func() error {
			_, err := Create(filepath.Join(t.TempDir(), "x"), Schema{Fields: 1, ElemSize: 1, ChunkRows: 1}, Options{Registry: stats.NewRegistry()})
			return err
		}(), ErrBadSchema},
		{"schema negative field", func() error {
			_, err := newGeom(Schema{Rows: 1, Fields: -1, ElemSize: 1, ChunkRows: 1})
			return err
		}(), ErrBadSchema},
		{"schema overflow", func() error {
			_, err := newGeom(Schema{Rows: 1 << 40, Fields: 1 << 40, ElemSize: 1 << 20, ChunkRows: 1})
			return err
		}(), ErrBadSchema},
		{"project column high", d.Project(dst(32*4), []int{4}, 0, 32), ErrColumnRange},
		{"project column negative", d.Project(dst(32*4), []int{-1}, 0, 32), ErrColumnRange},
		{"project no columns", d.Project(dst(0), nil, 0, 32), ErrColumnRange},
		{"project rows inverted", d.Project(dst(0), []int{0}, 8, 8), ErrColumnRange},
		{"project rows past end", d.Project(dst(4), []int{0}, 32, 33), ErrColumnRange},
		{"scan rows negative", d.ScanRows(dst(16), -1, 0), ErrColumnRange},
		{"project short buffer", d.Project(dst(1), []int{0}, 0, 32), ErrLength},
		{"scan long buffer", d.ScanRows(dst(s.Rows*s.Fields*s.ElemSize+1), 0, s.Rows), ErrLength},
		{"cache below segment", func() error {
			_, err := Open(datasetDir(t, s, aos), Options{CacheBytes: 1, Registry: stats.NewRegistry()})
			return err
		}(), ErrCacheBudget},
		{"ingest sealed", d.Ingest(bytes.NewReader(aos)), ErrSealed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.err == nil {
				t.Fatal("operation unexpectedly succeeded")
			}
			if !errors.Is(tc.err, tc.want) {
				t.Fatalf("error %v does not wrap %v", tc.err, tc.want)
			}
		})
	}

	// Sentinels are distinct: no Is-relationship across the taxonomy.
	sentinels := []error{ErrBadSchema, ErrCorruptChunk, ErrColumnRange, ErrCacheBudget, ErrNotSealed, ErrLength, ErrSealed, ErrEngineElem}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel identity broken between %v and %v", a, b)
			}
		}
	}
}

// datasetDir builds a sealed dataset and returns its directory.
func datasetDir(t *testing.T, s Schema, aos []byte) string {
	t.Helper()
	d, dir := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})
	d.Close()
	return dir
}
