package tilestore

import (
	"path/filepath"
	"strings"

	"inplace/internal/stats"
)

// Per-dataset metering. Every counter exists twice: a private
// stats.Counter owned by the Dataset (the precise per-handle surface
// that Stats() snapshots and the selftest asserts on) and a named
// counter on the shared registry under store_<label>_*, so exporters —
// the xposed /stats endpoint, cmd/xposestore stats — enumerate every
// dataset's cache and I/O traffic alongside the planner-cache and
// out-of-core metrics without knowing who owns them. Two datasets
// opened with the same label share the registry counters (registry
// names are stable handles, the usual registry semantics) but never
// the per-handle ones.

// meter is one double-booked counter.
type meter struct {
	own stats.Counter
	reg *stats.Counter
}

func (m *meter) inc() {
	m.own.Inc()
	m.reg.Inc()
}

func (m *meter) add(n uint64) {
	m.own.Add(n)
	m.reg.Add(n)
}

func (m *meter) load() uint64 { return m.own.Load() }

// meters is the full per-dataset counter set.
type meters struct {
	cacheHits      meter
	cacheMisses    meter
	cacheEvictions meter

	bytesRead    meter
	readOps      meter
	bytesWritten meter
	writeOps     meter

	chunksIngested  meter
	spills          meter
	segmentsWritten meter

	projections meter
	scans       meter
}

// newMeters wires every meter's registry half under store_<label>_*.
func newMeters(reg *stats.Registry, label string) *meters {
	if reg == nil {
		reg = stats.Default()
	}
	p := "store_" + label + "_"
	m := &meters{}
	for _, w := range []struct {
		name string
		m    *meter
	}{
		{"cache_hits", &m.cacheHits},
		{"cache_misses", &m.cacheMisses},
		{"cache_evictions", &m.cacheEvictions},
		{"bytes_read", &m.bytesRead},
		{"read_ops", &m.readOps},
		{"bytes_written", &m.bytesWritten},
		{"write_ops", &m.writeOps},
		{"chunks_ingested", &m.chunksIngested},
		{"spills", &m.spills},
		{"segments_written", &m.segmentsWritten},
		{"projections", &m.projections},
		{"scans", &m.scans},
	} {
		w.m.reg = reg.Counter(p + w.name)
	}
	return m
}

// Stats is a frozen snapshot of one dataset handle's counters.
type Stats struct {
	// CacheHits, CacheMisses and CacheEvictions meter the block cache:
	// hits serve projections without touching the backend.
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64

	// BytesRead/ReadOps and BytesWritten/WriteOps count data-file
	// backend traffic. A projection of k of n columns reads ~k/n of a
	// full scan's bytes — the coalesced-column payoff, asserted by the
	// xposestore selftest.
	BytesRead    uint64
	ReadOps      uint64
	BytesWritten uint64
	WriteOps     uint64

	// ChunksIngested counts chunks transposed on ingest; Spills counts
	// those routed through the out-of-core panel pipeline because they
	// exceeded the memory budget; SegmentsWritten counts framed column
	// segments landed on disk.
	ChunksIngested  uint64
	Spills          uint64
	SegmentsWritten uint64

	// Projections and Scans count read calls served.
	Projections uint64
	Scans       uint64
}

func (m *meters) snapshot() Stats {
	return Stats{
		CacheHits:       m.cacheHits.load(),
		CacheMisses:     m.cacheMisses.load(),
		CacheEvictions:  m.cacheEvictions.load(),
		BytesRead:       m.bytesRead.load(),
		ReadOps:         m.readOps.load(),
		BytesWritten:    m.bytesWritten.load(),
		WriteOps:        m.writeOps.load(),
		ChunksIngested:  m.chunksIngested.load(),
		Spills:          m.spills.load(),
		SegmentsWritten: m.segmentsWritten.load(),
		Projections:     m.projections.load(),
		Scans:           m.scans.load(),
	}
}

// sanitizeLabel maps an arbitrary dataset path or label onto the
// registry's snake_case namespace.
func sanitizeLabel(label, dir string) string {
	if label == "" {
		label = filepath.Base(filepath.Clean(dir))
	}
	var b strings.Builder
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "dataset"
	}
	return b.String()
}
