package tilestore

// The read paths. Projection is the operation the columnar layout
// exists for: because ingest made every column contiguous on disk, a
// projection of k of n columns touches only the k segments it needs —
// reading ~k/n of the bytes a full scan pays, the storage analogue of
// the coalesced-access argument behind the in-memory kernels. Scans go
// the other way: they gather all columns of a chunk and run the inverse
// skinny transpose (SoA→AoS) to hand rows back in the layout callers
// write.
//
// Project on cache-resident chunks is allocation-free: the hot loop is
// map lookups, atomic counter bumps and fixed-width copies, with every
// error path behind a cold constructor.
//
// Index products in the chunk loops are proven at open time: geometry
// construction CheckedMul-verifies rows×rowBytes (= dataBytes) and
// chunkRows×rowBytes, and every product below is over factors bounded
// by those (row counts ≤ rows, byte widths ≤ rowBytes).

import "inplace/internal/mathutil"

// Project gathers columns cols of rows [rowLo, rowHi) into dst as
// row-major records of len(cols) fields — the projected AoS image.
// dst must hold exactly (rowHi-rowLo)*len(cols)*ElemSize bytes. Only
// the segments covering the requested columns and chunks are read;
// each is checksum-verified once on load and served from the block
// cache thereafter. Safe for concurrent use on a sealed dataset.
func (d *Dataset) Project(dst []byte, cols []int, rowLo, rowHi int) error {
	if d.state != stateSealed {
		return stateErr("project", d.state)
	}
	if len(cols) == 0 {
		return noColumnsErr()
	}
	for _, col := range cols {
		if col < 0 || col >= d.g.s.Fields {
			return colRangeErr(col, d.g.s.Fields)
		}
	}
	if rowLo < 0 || rowHi > d.g.s.Rows || rowLo >= rowHi {
		return rowRangeErr(rowLo, rowHi, d.g.s.Rows)
	}
	e := d.g.s.ElemSize
	outRow := len(cols) * e
	want, ok := mathutil.CheckedMul(rowHi-rowLo, outRow)
	if !ok || len(dst) != want {
		return lengthErr(len(dst), want)
	}
	d.ctr.projections.inc()

	for c := rowLo / d.g.s.ChunkRows; c < d.g.chunks; c++ {
		base := c * d.g.s.ChunkRows
		if base >= rowHi {
			break
		}
		llo := max(rowLo, base) - base
		lhi := min(rowHi, base+d.g.rowsIn(c)) - base
		for ci, col := range cols {
			seg, err := d.block(c, col)
			if err != nil {
				return err
			}
			// Strided scatter: column values are contiguous in seg,
			// interleaved every outRow bytes in dst.
			do := (base+llo-rowLo)*outRow + ci*e
			for so := llo * e; so < lhi*e; so += e {
				copy(dst[do:do+e], seg[so:so+e])
				do += outRow
			}
		}
	}
	return nil
}

// ScanRows reads full records [rowLo, rowHi) into dst as row-major AoS
// — the inverse of ingest. dst must hold exactly
// (rowHi-rowLo)*Fields*ElemSize bytes. Per chunk, every column slice is
// gathered contiguously (a bulk copy per segment, not a per-element
// walk) and the chunk's region of dst is then converted SoA→AoS in
// place through the same engine that built the segments.
func (d *Dataset) ScanRows(dst []byte, rowLo, rowHi int) error {
	if d.state != stateSealed {
		return stateErr("scan", d.state)
	}
	if rowLo < 0 || rowHi > d.g.s.Rows || rowLo >= rowHi {
		return rowRangeErr(rowLo, rowHi, d.g.s.Rows)
	}
	e := d.g.s.ElemSize
	want, ok := mathutil.CheckedMul(rowHi-rowLo, d.g.rowBytes)
	if !ok || len(dst) != want {
		return lengthErr(len(dst), want)
	}
	d.ctr.scans.inc()

	for c := rowLo / d.g.s.ChunkRows; c < d.g.chunks; c++ {
		base := c * d.g.s.ChunkRows
		if base >= rowHi {
			break
		}
		llo := max(rowLo, base) - base
		lhi := min(rowHi, base+d.g.rowsIn(c)) - base
		n := lhi - llo
		region := dst[(base+llo-rowLo)*d.g.rowBytes : (base+lhi-rowLo)*d.g.rowBytes]
		for f := 0; f < d.g.s.Fields; f++ {
			seg, err := d.block(c, f)
			if err != nil {
				return err
			}
			copy(region[f*n*e:(f+1)*n*e], seg[llo*e:lhi*e])
		}
		if err := d.soaToAOS(region, n); err != nil {
			return err
		}
	}
	return nil
}
