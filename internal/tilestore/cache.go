package tilestore

import "sync"

// The block cache between the storage backend and readers. A block is
// one verified column-segment payload — immutable once loaded, because
// a sealed dataset never changes — so the cache can hand the same
// byte slice to any number of concurrent readers without copies or
// reference counting: eviction merely drops the cache's reference, and
// a reader still holding the slice keeps the bytes alive.
//
// Eviction is the clock (second-chance) policy: every hit sets the
// block's referenced bit, and the hand sweeps the ring clearing bits
// until it finds an unreferenced victim. Clock gives LRU-like scan
// resistance at one bit per block and O(1) amortized eviction, the
// usual trade storage engines make for their buffer pools.

// blockKey identifies one column segment.
type blockKey struct {
	chunk int
	col   int
}

// cacheBlock is one resident segment payload plus its clock bit.
type cacheBlock struct {
	key blockKey
	buf []byte
	ref bool
}

// blockCache is a capacity-bounded map of resident blocks. All state is
// guarded by mu; the critical sections are pointer work only (no I/O,
// no allocation on the hit path), so contention stays low even with
// many concurrent readers.
type blockCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	blocks   map[blockKey]*cacheBlock
	ring     []*cacheBlock
	hand     int

	hits, misses, evictions *meter
}

func newBlockCache(capacity int64, m *meters) *blockCache {
	return &blockCache{
		capacity:  capacity,
		blocks:    make(map[blockKey]*cacheBlock),
		hits:      &m.cacheHits,
		misses:    &m.cacheMisses,
		evictions: &m.cacheEvictions,
	}
}

// get returns the cached payload for key, marking it recently used.
func (c *blockCache) get(key blockKey) ([]byte, bool) {
	c.mu.Lock()
	b, ok := c.blocks[key]
	if ok {
		b.ref = true
		c.mu.Unlock()
		c.hits.inc()
		return b.buf, true
	}
	c.mu.Unlock()
	c.misses.inc()
	return nil, false
}

// put inserts a freshly loaded payload, evicting clock victims until it
// fits, and returns the canonical resident slice: when a concurrent
// reader raced the same miss and inserted first, the earlier block
// wins and the loser's copy is dropped.
func (c *blockCache) put(key blockKey, buf []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.blocks[key]; ok {
		b.ref = true
		return b.buf
	}
	need := int64(len(buf))
	for c.used+need > c.capacity && len(c.ring) > 0 {
		c.evictOne()
	}
	b := &cacheBlock{key: key, buf: buf, ref: true}
	c.blocks[key] = b
	c.ring = append(c.ring, b)
	c.used += need
	return buf
}

// evictOne advances the clock hand to the first unreferenced block and
// drops it. Called with mu held and a non-empty ring.
func (c *blockCache) evictOne() {
	for {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		b := c.ring[c.hand]
		if b.ref {
			b.ref = false
			c.hand++
			continue
		}
		// Swap-remove keeps the ring dense; the hand stays put so the
		// element swapped in is examined next sweep.
		last := len(c.ring) - 1
		c.ring[c.hand] = c.ring[last]
		c.ring[last] = nil
		c.ring = c.ring[:last]
		delete(c.blocks, b.key)
		c.used -= int64(len(b.buf))
		c.evictions.inc()
		return
	}
}

// residentBytes reports the cache's current payload footprint.
func (c *blockCache) residentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
