package tilestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"inplace/internal/stats"
)

// The corruption matrix: flip every single byte of a small dataset's
// data file, one at a time, and demand that opening + fully reading the
// dataset either still succeeds (a flip in the unused header pad) or
// fails with a typed sentinel — never a panic, never a silent wrong
// answer. This is the end-to-end guarantee the per-frame checksums buy.
func TestCorruptionMatrix(t *testing.T) {
	s := Schema{Rows: 6, Fields: 2, ElemSize: 2, ChunkRows: 4}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)
	_, dir := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})

	pristine, err := os.ReadFile(filepath.Join(dir, dataFileName))
	if err != nil {
		t.Fatal(err)
	}

	// readAll opens the dataset and drives every read path.
	readAll := func(dir string) (err error) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on corrupted dataset: %v", r)
			}
		}()
		d, err := Open(dir, Options{Registry: stats.NewRegistry()})
		if err != nil {
			return err
		}
		defer d.Close()
		if err := d.Verify(); err != nil {
			return err
		}
		buf := make([]byte, len(aos))
		if err := d.ScanRows(buf, 0, s.Rows); err != nil {
			return err
		}
		if !bytes.Equal(buf, aos) {
			t.Fatal("corrupted dataset read back wrong bytes without an error")
		}
		return nil
	}

	meta, err := os.ReadFile(filepath.Join(dir, metaFileName))
	if err != nil {
		t.Fatal(err)
	}
	corrupted := filepath.Join(t.TempDir(), "corrupt")
	if err := os.MkdirAll(corrupted, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(corrupted, metaFileName), meta, 0o644); err != nil {
		t.Fatal(err)
	}
	for i := range pristine {
		mutated := append([]byte(nil), pristine...)
		mutated[i] ^= 0xA5
		if err := os.WriteFile(filepath.Join(corrupted, dataFileName), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		// Every byte is covered: the dataset header's CRC spans its pad,
		// and each segment is under its frame's header or payload CRC.
		readErr := readAll(corrupted)
		if readErr == nil {
			t.Fatalf("flip of byte %d went undetected", i)
		}
		if !errors.Is(readErr, ErrBadSchema) && !errors.Is(readErr, ErrCorruptChunk) {
			t.Fatalf("flip of byte %d produced untyped error: %v", i, readErr)
		}
	}
}

// TestTruncatedDataFile checks a sealed dataset whose data file lost
// its tail is rejected with ErrCorruptChunk at open.
func TestTruncatedDataFile(t *testing.T) {
	s := Schema{Rows: 16, Fields: 2, ElemSize: 4, ChunkRows: 8}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)
	_, dir := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})

	path := filepath.Join(dir, dataFileName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-1); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Registry: stats.NewRegistry()}); !errors.Is(err, ErrCorruptChunk) {
		t.Fatalf("Open of truncated dataset = %v, want ErrCorruptChunk", err)
	}
}

// TestMetaTampering checks a meta file that disagrees with the data
// header is rejected even when both are individually self-consistent.
func TestMetaTampering(t *testing.T) {
	s := Schema{Rows: 16, Fields: 2, ElemSize: 4, ChunkRows: 8}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)
	_, dirA := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})

	s2 := Schema{Rows: 16, Fields: 4, ElemSize: 2, ChunkRows: 8}
	_, dirB := buildDataset(t, s2, makeAoS(s2.Rows, s2.Fields, s2.ElemSize), Options{Registry: stats.NewRegistry()})

	// Swap B's (valid, sealed) meta under A's data file.
	metaB, err := os.ReadFile(filepath.Join(dirB, metaFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirA, metaFileName), metaB, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dirA, Options{Registry: stats.NewRegistry()}); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("Open with foreign meta = %v, want ErrBadSchema", err)
	}
}
