package tilestore

import (
	"bytes"
	"path/filepath"
	"testing"

	"inplace/internal/stats"
)

// FuzzTilestore is the differential fuzzer: an arbitrary schema and
// seed drive a full create/ingest/scan/project cycle, and every byte
// read back is checked against the trivial in-memory AoS oracle. The
// fuzzer owns the schema-normalization corner cases (clamped chunk
// rows, one-row datasets, odd element widths, budgets that force the
// spill path) that table-driven tests enumerate only pointwise.
func FuzzTilestore(f *testing.F) {
	f.Add(7, 3, 2, 4, uint8(0), false)
	f.Add(1, 1, 1, 1, uint8(1), false)
	f.Add(50, 5, 4, 16, uint8(2), false)
	f.Add(33, 2, 8, 50, uint8(3), true)
	f.Add(24, 7, 3, 8, uint8(4), true)
	f.Fuzz(func(t *testing.T, rows, fields, elem, chunkRows int, seed uint8, spill bool) {
		// Clamp to a tractable region; invalid shapes must be rejected
		// cleanly by Create rather than skipped here.
		if rows > 200 || fields > 24 || elem > 16 || chunkRows > 300 {
			t.Skip("shape too large for fuzz budget")
		}
		s := Schema{Rows: rows, Fields: fields, ElemSize: elem, ChunkRows: chunkRows}
		opts := Options{Registry: stats.NewRegistry()}
		if spill {
			opts.MemBudget = 1 // force every chunk through the ooc spill path
		}
		dir := filepath.Join(t.TempDir(), "ds")
		d, err := Create(dir, s, opts)
		if rows <= 0 || fields <= 0 || elem <= 0 || chunkRows <= 0 {
			if err == nil {
				t.Fatal("Create accepted an invalid schema")
			}
			return
		}
		if err != nil {
			t.Fatalf("Create(%+v): %v", s, err)
		}

		aos := makeAoS(rows, fields, elem)
		for i := range aos {
			aos[i] ^= seed
		}
		if err := d.Ingest(bytes.NewReader(aos)); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		d.Close()

		rd, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer rd.Close()

		got := make([]byte, len(aos))
		if err := rd.ScanRows(got, 0, rows); err != nil {
			t.Fatalf("ScanRows: %v", err)
		}
		if !bytes.Equal(got, aos) {
			t.Fatal("scan differs from oracle")
		}

		// A derived projection: columns and row window depend on the
		// fuzzed shape so the space is explored without extra inputs.
		cols := []int{int(seed) % fields, (int(seed) + fields/2) % fields}
		lo := int(seed) % rows
		hi := lo + 1 + (rows-lo-1)/2
		want := oracleProject(aos, fields, elem, cols, lo, hi)
		proj := make([]byte, len(want))
		if err := rd.Project(proj, cols, lo, hi); err != nil {
			t.Fatalf("Project(%v, %d, %d): %v", cols, lo, hi, err)
		}
		if !bytes.Equal(proj, want) {
			t.Fatal("projection differs from oracle")
		}
		if err := rd.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}
	})
}
