package tilestore

import (
	"bytes"
	"testing"

	"inplace/internal/stats"
)

// TestProjectWarmZeroAllocs pins the hot-path contract: once every
// touched segment is cache-resident, Project performs zero allocations
// per call — the loop is map lookups, atomic counter bumps and
// fixed-width copies into the caller's buffer.
func TestProjectWarmZeroAllocs(t *testing.T) {
	s := Schema{Rows: 256, Fields: 16, ElemSize: 4, ChunkRows: 64}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)
	d, _ := buildDataset(t, s, aos, Options{Registry: stats.NewRegistry()})

	cols := []int{1, 7, 14}
	dst := make([]byte, s.Rows*len(cols)*s.ElemSize)
	// Warm the cache.
	if err := d.Project(dst, cols, 0, s.Rows); err != nil {
		t.Fatalf("warmup Project: %v", err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		if err := d.Project(dst, cols, 0, s.Rows); err != nil {
			t.Errorf("Project: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Project allocates %.1f objects per call, want 0", allocs)
	}
	if !bytes.Equal(dst, oracleProject(aos, s.Fields, s.ElemSize, cols, 0, s.Rows)) {
		t.Fatal("projection mismatch")
	}
}
