package tilestore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"inplace/internal/ooc"
)

// Ingest: row-major AoS records stream in, checksummed column segments
// land on disk. Each chunk is one skinny AoS→SoA transpose — count
// records × fields columns, the Theorem-7 specialization — run either
// through the injected typed engine (the planner-cache path the public
// package wires) or through the built-in fallback. Chunks whose AoS
// image exceeds the memory budget never become resident at all: they
// spill to a scratch file and the out-of-core panel pipeline transposes
// them there within the budget, after which the columns stream into the
// data file with an incremental checksum.

// spillFileName is the scratch file a spilled chunk transposes in.
// Transient: removed after every spill, ignored by Open.
const spillFileName = "spill.tmp"

// copyBufSize is the streaming-copy granularity of the spill path.
const copyBufSize = 1 << 20

// Ingest consumes exactly Rows records (Rows*Fields*ElemSize bytes) of
// row-major AoS data from r, converts each chunk to columnar segments,
// and seals the dataset. On success the handle becomes a sealed read
// handle; on failure — including a truncated reader — the dataset stays
// in the ingesting state and remains invisible to Open.
func (d *Dataset) Ingest(r io.Reader) error {
	if d.state != stateIngesting {
		return stateErr("ingest", d.state)
	}
	for c := 0; c < d.g.chunks; c++ {
		count := d.g.rowsIn(c)
		chunkBytes := count * d.g.rowBytes
		var err error
		if int64(chunkBytes) <= d.memBudget {
			err = d.ingestResident(c, count, chunkBytes, r)
		} else {
			err = d.ingestSpilled(c, count, chunkBytes, r)
		}
		if err != nil {
			return err
		}
		d.ctr.chunksIngested.inc()
	}
	return d.seal()
}

// seal is the commit point: the data file is synced, then meta.json
// flips atomically to sealed. Everything before the flip is invisible;
// everything after it is durable.
func (d *Dataset) seal() error {
	if err := d.f.Sync(); err != nil {
		return err
	}
	if err := writeMeta(d.dir, d.meta(stateSealed)); err != nil {
		return err
	}
	d.state = stateSealed
	return nil
}

// ingestResident handles a chunk that fits the memory budget: read it
// whole, transpose in place, write the column segments out of the
// resulting SoA image.
func (d *Dataset) ingestResident(c, count, chunkBytes int, r io.Reader) error {
	if d.scratch == nil {
		d.scratch = make([]byte, d.g.chunkMem)
	}
	buf := d.scratch[:chunkBytes]
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("tilestore: reading chunk %d: %w", c, err)
	}
	if err := d.aosToSOA(buf, count); err != nil {
		return fmt.Errorf("tilestore: transposing chunk %d: %w", c, err)
	}
	colBytes := count * d.g.s.ElemSize
	var hdr [ooc.FrameHeaderSize]byte
	for f := 0; f < d.g.s.Fields; f++ {
		payload := buf[f*colBytes : (f+1)*colBytes]
		off := d.g.segOff(c, f)
		ooc.PutFrame(hdr[:], d.segFrame(c, f, ooc.Checksum(payload)))
		if err := d.writeAt(hdr[:], off); err != nil {
			return err
		}
		if err := d.writeAt(payload, off+ooc.FrameHeaderSize); err != nil {
			return err
		}
		d.ctr.segmentsWritten.inc()
	}
	return nil
}

// ingestSpilled handles a chunk larger than the memory budget: stream
// its AoS bytes to a scratch file, transpose there through the
// out-of-core panel pipeline, then stream each column — checksumming
// incrementally — into its segment.
func (d *Dataset) ingestSpilled(c, count, chunkBytes int, r io.Reader) (err error) {
	d.ctr.spills.inc()
	path := filepath.Join(d.dir, spillFileName)
	sf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		sf.Close()
		if rmErr := os.Remove(path); err == nil && rmErr != nil {
			err = rmErr
		}
	}()
	if _, err := io.CopyN(sf, r, int64(chunkBytes)); err != nil {
		return fmt.Errorf("tilestore: spilling chunk %d: %w", c, err)
	}
	// The panel pipeline's scratch floor is two minimum-width panels;
	// a budget below it is raised, never rejected — the spill already
	// committed to out-of-core execution.
	budget := d.memBudget
	if floor := 2 * int64(max(count, d.g.s.Fields)) * int64(d.g.s.ElemSize); budget < floor {
		budget = floor
	}
	if _, err := ooc.Run(sf, ooc.Config{
		Rows:     count,
		Cols:     d.g.s.Fields,
		ElemSize: d.g.s.ElemSize,
		Budget:   budget,
		Workers:  d.workers,
	}); err != nil {
		return fmt.Errorf("tilestore: spill transpose of chunk %d: %w", c, err)
	}
	colBytes := count * d.g.s.ElemSize
	copyBuf := make([]byte, min(colBytes, copyBufSize))
	var hdr [ooc.FrameHeaderSize]byte
	for f := 0; f < d.g.s.Fields; f++ {
		srcOff := int64(f) * int64(colBytes)
		segOff := d.g.segOff(c, f)
		dstOff := segOff + ooc.FrameHeaderSize
		var sum uint64
		for done := 0; done < colBytes; {
			n := min(colBytes-done, len(copyBuf))
			if _, err := sf.ReadAt(copyBuf[:n], srcOff+int64(done)); err != nil {
				return fmt.Errorf("tilestore: reading spilled chunk %d: %w", c, err)
			}
			sum = ooc.ChecksumUpdate(sum, copyBuf[:n])
			if err := d.writeAt(copyBuf[:n], dstOff+int64(done)); err != nil {
				return err
			}
			done += n
		}
		ooc.PutFrame(hdr[:], d.segFrame(c, f, sum))
		if err := d.writeAt(hdr[:], segOff); err != nil {
			return err
		}
		d.ctr.segmentsWritten.inc()
	}
	return nil
}

// segFrame builds the frame header for (chunk c, column f); the payload
// length comes from the schema geometry, never from the caller.
func (d *Dataset) segFrame(c, f int, sum uint64) ooc.Frame {
	return ooc.Frame{
		Kind:       segKind,
		Tag:        uint32(f),
		Unit:       uint64(c),
		PayloadLen: uint64(d.g.rowsIn(c) * d.g.s.ElemSize),
		PayloadSum: sum,
		Gen:        d.g.gen,
	}
}

// aosToSOA converts one resident chunk in place: count records of
// Fields×ElemSize become Fields contiguous columns. The injected engine
// runs first; a nil engine or an ErrEngineElem decline falls back to
// the built-in path — the out-of-core pipeline over an in-memory
// backend, which handles records of any element width.
func (d *Dataset) aosToSOA(buf []byte, count int) error {
	if fn := d.engine.AOSToSOA; fn != nil {
		err := fn(buf, count, d.g.s.Fields, d.g.s.ElemSize)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrEngineElem) {
			return err
		}
	}
	return d.builtinTranspose(buf, count, d.g.s.Fields)
}

// soaToAOS is the inverse conversion used by row scans.
func (d *Dataset) soaToAOS(buf []byte, count int) error {
	if fn := d.engine.SOAToAOS; fn != nil {
		err := fn(buf, count, d.g.s.Fields, d.g.s.ElemSize)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrEngineElem) {
			return err
		}
	}
	return d.builtinTranspose(buf, d.g.s.Fields, count)
}

// builtinTranspose transposes a rows×cols element matrix held in buf
// through the panel pipeline over an in-memory backend. A budget of
// twice the buffer always clears the pipeline's two-panel floor, so the
// schedule degenerates to a single resident segment pair.
func (d *Dataset) builtinTranspose(buf []byte, rows, cols int) error {
	_, err := ooc.Run(&byteBackend{b: buf}, ooc.Config{
		Rows:     rows,
		Cols:     cols,
		ElemSize: d.g.s.ElemSize,
		Budget:   2 * int64(len(buf)),
		Workers:  d.workers,
	})
	return err
}

// byteBackend adapts a fixed byte slice to the pipeline's Backend
// interface. The pipeline touches disjoint ranges from its stages, so
// no locking is needed over the shared slice.
type byteBackend struct {
	b []byte
}

func (m *byteBackend) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(m.b)) {
		return 0, io.EOF
	}
	n := copy(p, m.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *byteBackend) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > int64(len(m.b)) {
		return 0, fmt.Errorf("tilestore: write [%d, %d) outside %d-byte buffer: %w",
			off, off+int64(len(p)), len(m.b), io.ErrShortWrite)
	}
	return copy(m.b[off:], p), nil
}
