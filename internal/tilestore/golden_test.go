package tilestore

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"inplace/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// TestGoldenFormat pins the v1 on-disk format: ingesting a fixed input
// must reproduce the committed data.tile and meta.json byte for byte.
// Any layout, checksum, generation or header change breaks this test —
// which is the point: the format is a compatibility promise, and
// changing it requires bumping formatVersion and regenerating the
// fixture deliberately with -update.
func TestGoldenFormat(t *testing.T) {
	s := Schema{Rows: 50, Fields: 5, ElemSize: 4, ChunkRows: 16}
	aos := makeAoS(s.Rows, s.Fields, s.ElemSize)

	dir := filepath.Join(t.TempDir(), "golden")
	d, err := Create(dir, s, Options{Registry: stats.NewRegistry()})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := d.Ingest(bytes.NewReader(aos)); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	d.Close()

	for _, name := range []string{dataFileName, metaFileName} {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", "golden_v1_"+name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s diverged from golden fixture: the on-disk format changed without a version bump", name)
		}
	}

	// And the committed fixture itself must open and verify: golden
	// bytes written by an older build stay readable.
	if *update {
		return
	}
	fixtureDir := filepath.Join(t.TempDir(), "fixture")
	if err := os.MkdirAll(fixtureDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{dataFileName, metaFileName} {
		raw, err := os.ReadFile(filepath.Join("testdata", "golden_v1_"+name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(fixtureDir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := Open(fixtureDir, Options{Registry: stats.NewRegistry()})
	if err != nil {
		t.Fatalf("Open of golden fixture: %v", err)
	}
	defer rd.Close()
	if err := rd.Verify(); err != nil {
		t.Fatalf("Verify of golden fixture: %v", err)
	}
	got := make([]byte, len(aos))
	if err := rd.ScanRows(got, 0, s.Rows); err != nil {
		t.Fatalf("ScanRows of golden fixture: %v", err)
	}
	if !bytes.Equal(got, aos) {
		t.Fatal("golden fixture scans back different rows")
	}
}
