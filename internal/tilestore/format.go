package tilestore

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"os"
	"path/filepath"

	"inplace/internal/mathutil"
	"inplace/internal/ooc"
)

// The on-disk format. A dataset is a directory holding two files:
//
//	data.tile — a 64-byte checksummed header followed by the column
//	            segments, chunk-major: chunk 0's segments for columns
//	            0..fields-1, then chunk 1's, and so on. Every segment
//	            is one ooc.Frame (48-byte checksummed header carrying
//	            the column, chunk, generation and payload checksum)
//	            followed by the column's values for that chunk,
//	            contiguous — the SoA layout the skinny AoS→SoA
//	            transpose produces on ingest.
//	meta.json — the commit point, written atomically (tmp + rename)
//	            by the same meta-state-machine pattern as the xposed
//	            spill registry: state "ingesting" at create, "sealed"
//	            only after every segment is durably on disk. A dataset
//	            whose meta is absent or not sealed does not exist as
//	            far as Open is concerned, which is what makes a
//	            mid-ingest kill leave either nothing or a fully valid
//	            dataset.
//
// Every offset is computable from the schema alone (all chunks are
// chunkRows tall except a possibly shorter last one), so there is no
// segment directory to keep consistent: the frame headers are pure
// verification, not lookup structure.

const (
	dataMagic     = "XTILEv1\n"
	formatVersion = 1
	hdrSize       = 64

	dataFileName = "data.tile"
	metaFileName = "meta.json"

	// segKind is the frame kind of a column segment. Stable on-disk value.
	segKind = 1
)

// Meta states. Persisted in meta.json; the numeric values are format,
// do not renumber.
const (
	stateIngesting = 0
	stateSealed    = 1
)

// Schema describes a dataset: Rows records of Fields fields, each field
// ElemSize bytes, stored in chunks of ChunkRows records. ChunkRows
// values larger than Rows are clamped to one chunk at validation.
type Schema struct {
	Rows      int
	Fields    int
	ElemSize  int
	ChunkRows int
}

// geom is a validated schema with every derived size proven
// overflow-free once, so the read and write paths index with plain
// arithmetic on trusted values.
type geom struct {
	s Schema

	chunks   int // number of chunks
	lastRows int // rows in the final chunk (1..ChunkRows)

	rowBytes  int   // Fields*ElemSize: one AoS record
	segBytes  int   // ChunkRows*ElemSize: full-chunk segment payload
	lastSeg   int   // lastRows*ElemSize
	chunkMem  int   // ChunkRows*rowBytes: one resident AoS chunk
	chunkDisk int64 // on-disk bytes of a full chunk (frames included)
	dataBytes int64 // total data.tile size
	gen       uint64
}

// newGeom validates s (clamping ChunkRows to Rows) and derives the
// proven byte geometry.
func newGeom(s Schema) (geom, error) {
	if s.Rows <= 0 || s.Fields <= 0 || s.ElemSize <= 0 || s.ChunkRows <= 0 {
		return geom{}, schemaErr("all dimensions must be positive", s)
	}
	if s.ChunkRows > s.Rows {
		s.ChunkRows = s.Rows
	}
	g := geom{s: s}
	var ok bool
	if g.rowBytes, ok = mathutil.CheckedMul(s.Fields, s.ElemSize); !ok {
		return geom{}, schemaErr("record byte size overflows int", s)
	}
	if g.segBytes, ok = mathutil.CheckedMul(s.ChunkRows, s.ElemSize); !ok {
		return geom{}, schemaErr("segment byte size overflows int", s)
	}
	if g.chunkMem, ok = mathutil.CheckedMul(s.ChunkRows, g.rowBytes); !ok {
		return geom{}, schemaErr("chunk byte size overflows int", s)
	}
	if _, ok = mathutil.CheckedMul(s.Rows, g.rowBytes); !ok {
		return geom{}, schemaErr("dataset byte size overflows int", s)
	}
	g.chunks = (s.Rows + s.ChunkRows - 1) / s.ChunkRows
	g.lastRows = s.Rows - (g.chunks-1)*s.ChunkRows
	g.lastSeg = g.lastRows * s.ElemSize

	// Frame overhead: Fields headers per chunk. Guard the grand total —
	// payload bytes were proven above, the headers ride on top.
	frames, ok := mathutil.CheckedMul(g.chunks, s.Fields)
	if !ok {
		return geom{}, schemaErr("frame count overflows int", s)
	}
	overhead, ok := mathutil.CheckedMul(frames, ooc.FrameHeaderSize)
	if !ok {
		return geom{}, schemaErr("frame overhead overflows int", s)
	}
	perChunk, ok := mathutil.CheckedMul(s.Fields, ooc.FrameHeaderSize+g.segBytes)
	if !ok {
		return geom{}, schemaErr("chunk disk size overflows int", s)
	}
	g.chunkDisk = int64(perChunk)
	g.dataBytes = hdrSize + int64(g.chunks-1)*g.chunkDisk +
		int64(s.Fields)*int64(ooc.FrameHeaderSize+g.lastSeg)
	if g.dataBytes > int64(math.MaxInt64)-int64(overhead) {
		return geom{}, schemaErr("data file size overflows", s)
	}
	g.gen = g.generation()
	return g, nil
}

// rowsIn returns the record count of chunk c.
func (g *geom) rowsIn(c int) int {
	if c == g.chunks-1 {
		return g.lastRows
	}
	return g.s.ChunkRows
}

// segPayload returns the payload byte size of any segment of chunk c.
func (g *geom) segPayload(c int) int {
	if c == g.chunks-1 {
		return g.lastSeg
	}
	return g.segBytes
}

// chunkOff returns the data-file offset of chunk c's first segment.
func (g *geom) chunkOff(c int) int64 {
	return hdrSize + int64(c)*g.chunkDisk
}

// segOff returns the data-file offset of the frame header of (chunk c,
// column f).
func (g *geom) segOff(c, f int) int64 {
	return g.chunkOff(c) + int64(f)*int64(ooc.FrameHeaderSize+g.segPayload(c))
}

// encodeHeader renders the 64-byte data-file header.
func (g *geom) encodeHeader() [hdrSize]byte {
	var h [hdrSize]byte
	copy(h[0:8], dataMagic)
	binary.LittleEndian.PutUint32(h[8:12], formatVersion)
	binary.LittleEndian.PutUint32(h[12:16], uint32(g.s.ElemSize))
	binary.LittleEndian.PutUint64(h[16:24], uint64(g.s.Rows))
	binary.LittleEndian.PutUint64(h[24:32], uint64(g.s.Fields))
	binary.LittleEndian.PutUint64(h[32:40], uint64(g.s.ChunkRows))
	binary.LittleEndian.PutUint64(h[40:48], g.gen)
	binary.LittleEndian.PutUint64(h[56:64], ooc.Checksum(h[0:56]))
	return h
}

// generation derives the dataset generation deterministically from the
// schema: the checksum of the header's identity bytes. Segments carry
// it in their frames, so a segment of one geometry can never be
// mistaken for a segment of another — and determinism keeps ingest
// byte-reproducible (the golden-fixture property).
func (g *geom) generation() uint64 {
	var h [48]byte
	copy(h[0:8], dataMagic)
	binary.LittleEndian.PutUint32(h[8:12], formatVersion)
	binary.LittleEndian.PutUint32(h[12:16], uint32(g.s.ElemSize))
	binary.LittleEndian.PutUint64(h[16:24], uint64(g.s.Rows))
	binary.LittleEndian.PutUint64(h[24:32], uint64(g.s.Fields))
	binary.LittleEndian.PutUint64(h[32:40], uint64(g.s.ChunkRows))
	return ooc.Checksum(h[:40])
}

// u64Dim converts a decoded unsigned dimension to int, rejecting values
// that do not fit: every header field is bounds-checked before any
// arithmetic or allocation trusts it.
func u64Dim(v uint64) (int, bool) {
	if v == 0 || v > uint64(math.MaxInt/2) {
		return 0, false
	}
	return int(v), true
}

// decodeHeader validates a data-file header and reconstructs the
// geometry.
func decodeHeader(h []byte) (geom, error) {
	if len(h) != hdrSize {
		return geom{}, headerErr("short header")
	}
	if string(h[0:8]) != dataMagic {
		return geom{}, headerErr("bad magic")
	}
	if got := binary.LittleEndian.Uint64(h[56:64]); got != ooc.Checksum(h[0:56]) {
		return geom{}, headerErr("header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(h[8:12]); v != formatVersion {
		return geom{}, headerErr("unsupported format version")
	}
	elem, ok := u64Dim(uint64(binary.LittleEndian.Uint32(h[12:16])))
	if !ok {
		return geom{}, headerErr("element size out of range")
	}
	rows, ok := u64Dim(binary.LittleEndian.Uint64(h[16:24]))
	if !ok {
		return geom{}, headerErr("row count out of range")
	}
	fields, ok := u64Dim(binary.LittleEndian.Uint64(h[24:32]))
	if !ok {
		return geom{}, headerErr("field count out of range")
	}
	chunkRows, ok := u64Dim(binary.LittleEndian.Uint64(h[32:40]))
	if !ok {
		return geom{}, headerErr("chunk rows out of range")
	}
	g, err := newGeom(Schema{Rows: rows, Fields: fields, ElemSize: elem, ChunkRows: chunkRows})
	if err != nil {
		return geom{}, err
	}
	if gen := binary.LittleEndian.Uint64(h[40:48]); gen != g.gen {
		return geom{}, headerErr("generation does not match schema")
	}
	return g, nil
}

// metaFile is the persisted dataset description and commit state.
type metaFile struct {
	Magic      string `json:"magic"`
	Version    int    `json:"version"`
	Rows       int    `json:"rows"`
	Fields     int    `json:"fields"`
	ElemSize   int    `json:"elem_size"`
	ChunkRows  int    `json:"chunk_rows"`
	Generation uint64 `json:"generation"`
	State      int    `json:"state"`
	DataBytes  int64  `json:"data_bytes"`
}

func metaPath(dir string) string { return filepath.Join(dir, metaFileName) }
func dataPath(dir string) string { return filepath.Join(dir, dataFileName) }

// writeMeta persists m atomically: tmp file, sync, rename. A kill at
// any point leaves either the previous meta or the new one, never a
// torn file.
func writeMeta(dir string, m metaFile) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	path := metaPath(dir)
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(raw); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readMeta loads and validates the meta file against the recomputed
// geometry. The returned geom is derived from the meta's own schema, so
// a caller still has to cross-check it against the data header.
func readMeta(dir string) (metaFile, geom, error) {
	raw, err := os.ReadFile(metaPath(dir))
	if err != nil {
		return metaFile{}, geom{}, err
	}
	var m metaFile
	if err := json.Unmarshal(raw, &m); err != nil {
		return metaFile{}, geom{}, headerErr("meta is not valid JSON")
	}
	if m.Magic != "xtile" || m.Version != formatVersion {
		return metaFile{}, geom{}, headerErr("meta magic or version mismatch")
	}
	g, err := newGeom(Schema{Rows: m.Rows, Fields: m.Fields, ElemSize: m.ElemSize, ChunkRows: m.ChunkRows})
	if err != nil {
		return metaFile{}, geom{}, err
	}
	if m.Generation != g.gen {
		return metaFile{}, geom{}, headerErr("meta generation does not match schema")
	}
	if m.DataBytes != g.dataBytes {
		return metaFile{}, geom{}, headerErr("meta data size does not match schema")
	}
	if m.State != stateIngesting && m.State != stateSealed {
		return metaFile{}, geom{}, headerErr("unknown meta state")
	}
	return m, g, nil
}
