package bench

import "inplace/internal/mathutil"

// gridBuf allocates an m×n element buffer after proving the product fits
// in int. Every benchmark shape funnels through it, so the
// indexoverflow analyzer sees one guarded allocation per harness
// function instead of a raw dimension product.
func gridBuf[T any](m, n int) []T {
	size, ok := mathutil.CheckedMul(m, n)
	if !ok {
		panic("bench: shape overflows int")
	}
	return make([]T, size)
}
