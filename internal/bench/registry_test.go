package bench

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

// Register must reject broken descriptors at init time. All rejected
// registrations panic before insertion, so the global registry is
// untouched (the duplicate case reuses an already-registered id).
func TestRegisterRejectsInvalidDescriptors(t *testing.T) {
	run := func(Config) []Result { return nil }
	before := len(IDs())
	mustPanic(t, "empty id", func() {
		Register(Experiment{Title: "t", Series: []string{"s"}, Run: run})
	})
	mustPanic(t, "nil run", func() {
		Register(Experiment{ID: "zz-bad", Title: "t", Series: []string{"s"}})
	})
	mustPanic(t, "empty title", func() {
		Register(Experiment{ID: "zz-bad", Series: []string{"s"}, Run: run})
	})
	mustPanic(t, "no series", func() {
		Register(Experiment{ID: "zz-bad", Title: "t", Run: run})
	})
	mustPanic(t, "duplicate id", func() {
		Register(Experiment{ID: "fig1", Title: "t", Series: []string{"s"}, Run: run})
	})
	if after := len(IDs()); after != before {
		t.Fatalf("rejected registrations mutated the registry: %d -> %d ids", before, after)
	}
	mustPanic(t, "MustGet unknown", func() { MustGet("zz-missing") })
}

// The enumeration is the paper's artifact order, stable across calls,
// and covers exactly the registered set.
func TestEnumerationOrderStable(t *testing.T) {
	ids := IDs()
	if len(ids) != len(paperOrder) {
		t.Fatalf("registry has %d experiments, paper order lists %d: %v", len(ids), len(paperOrder), ids)
	}
	for i, id := range ids {
		if id != paperOrder[i] {
			t.Fatalf("enumeration order diverged at %d: got %v", i, ids)
		}
		if _, ok := Get(id); !ok {
			t.Fatalf("enumerated id %q not gettable", id)
		}
	}
	again := IDs()
	for i := range ids {
		if again[i] != ids[i] {
			t.Fatal("enumeration order not stable across calls")
		}
	}
}

// Every descriptor must name at least the Series its Run actually emits
// at tiny scale, and declared axis columns must appear in the CSV
// headers they describe.
func TestDescriptorsMatchEmittedResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short")
	}
	cfg := Config{Scale: TinyScale, Workers: 2, Seed: 1}
	for _, e := range All() {
		declared := make(map[string]bool, len(e.Series))
		for _, s := range e.Series {
			declared[s] = true
		}
		for _, r := range e.Run(cfg) {
			if !declared[r.Name] {
				t.Errorf("%s emits undeclared result %q (declared: %v)", e.ID, r.Name, e.Series)
			}
			if r.CSV == "" {
				continue
			}
			header, _, ok := parseCSV(r.CSV)
			if !ok {
				t.Errorf("%s result %q: unparsable CSV", e.ID, r.Name)
				continue
			}
			cols := make(map[string]bool, len(header))
			for _, h := range header {
				cols[h] = true
			}
			for _, a := range e.Axes {
				if !cols[a] {
					t.Errorf("%s result %q: declared axis %q missing from CSV header %v", e.ID, r.Name, a, header)
				}
			}
		}
	}
}

// Two runs with the same Config must agree: Deterministic experiments
// reproduce their full output byte for byte, and measured experiments
// reproduce their structure — result names, CSV headers, row counts and
// every seeded axis-column value — with only the measured columns free
// to differ. Runs at tiny scale so it stays in -short.
func TestSameSeedSameOutput(t *testing.T) {
	cfg := Config{Scale: TinyScale, Workers: 2, Seed: 7}
	for _, e := range All() {
		a, b := e.Run(cfg), e.Run(cfg)
		if len(a) != len(b) {
			t.Errorf("%s: %d results then %d results", e.ID, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i].Name != b[i].Name {
				t.Errorf("%s: result %d named %q then %q", e.ID, i, a[i].Name, b[i].Name)
				continue
			}
			if e.Deterministic {
				if a[i].Text != b[i].Text || a[i].CSV != b[i].CSV {
					t.Errorf("%s: deterministic experiment output differs between runs (result %q)", e.ID, a[i].Name)
				}
				continue
			}
			checkStructureEqual(t, e, a[i], b[i])
		}
	}
}

// checkStructureEqual asserts the seed-determined skeleton of a measured
// result: identical CSV header, row count and axis-column values.
func checkStructureEqual(t *testing.T, e Experiment, a, b Result) {
	t.Helper()
	if (a.CSV == "") != (b.CSV == "") {
		t.Errorf("%s result %q: CSV presence differs between runs", e.ID, a.Name)
		return
	}
	if a.CSV == "" {
		return
	}
	ha, ca, oka := parseCSV(a.CSV)
	hb, cb, okb := parseCSV(b.CSV)
	if !oka || !okb {
		t.Errorf("%s result %q: unparsable CSV", e.ID, a.Name)
		return
	}
	if strings.Join(ha, ",") != strings.Join(hb, ",") {
		t.Errorf("%s result %q: headers differ: %v vs %v", e.ID, a.Name, ha, hb)
		return
	}
	axis := make(map[string]bool, len(e.Axes))
	for _, ax := range e.Axes {
		axis[ax] = true
	}
	for i, col := range ha {
		if len(ca[i]) != len(cb[i]) {
			t.Errorf("%s result %q col %q: %d rows then %d rows", e.ID, a.Name, col, len(ca[i]), len(cb[i]))
			continue
		}
		if !axis[col] {
			continue
		}
		for j := range ca[i] {
			if ca[i][j] != cb[i][j] {
				t.Errorf("%s result %q: axis %q row %d differs: %v vs %v — workload not seed-deterministic",
					e.ID, a.Name, col, j, ca[i][j], cb[i][j])
				break
			}
		}
	}
}

// The orchestrator inherits determinism for series captures: running the
// same preset and seed twice must produce identical experiment names and,
// for deterministic registry experiments, identical sample sets.
func TestRunPresetStructureDeterministic(t *testing.T) {
	p := Preset{
		Name: "test-det", Scale: TinyScale, Workers: []int{1}, BudgetDivs: []int{4},
		Reps: 1, Experiments: []string{"locality"},
	}
	onlySeries := func(name string) bool { return strings.HasPrefix(name, "exp:") }
	a := RunPreset(p, 7, onlySeries, nil)
	b := RunPreset(p, 7, onlySeries, nil)
	if len(a.Experiments) == 0 {
		t.Fatal("preset captured no series")
	}
	if len(a.Experiments) != len(b.Experiments) {
		t.Fatalf("%d experiments then %d", len(a.Experiments), len(b.Experiments))
	}
	for i := range a.Experiments {
		ea, eb := a.Experiments[i], b.Experiments[i]
		if ea.Name != eb.Name || ea.Kind != eb.Kind {
			t.Fatalf("experiment %d: %q/%q then %q/%q", i, ea.Name, ea.Kind, eb.Name, eb.Kind)
		}
		// locality is a deterministic model: full sample equality.
		if len(ea.Series) != len(eb.Series) {
			t.Fatalf("%s: %d series then %d", ea.Name, len(ea.Series), len(eb.Series))
		}
		for j := range ea.Series {
			sa, sb := ea.Series[j], eb.Series[j]
			if sa.Name != sb.Name || len(sa.Samples) != len(sb.Samples) {
				t.Fatalf("%s series %q vs %q: shape differs", ea.Name, sa.Name, sb.Name)
			}
			for k := range sa.Samples {
				if sa.Samples[k] != sb.Samples[k] {
					t.Fatalf("%s series %q sample %d: %v vs %v", ea.Name, sa.Name, k, sa.Samples[k], sb.Samples[k])
				}
			}
		}
	}
}
