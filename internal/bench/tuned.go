package bench

import (
	"fmt"
	"strings"

	"inplace"
)

func init() {
	Register(Experiment{
		ID: "tuned", Title: "measured (wisdom) vs heuristic plan selection",
		Axes: []string{"m", "n"}, Unit: "GB/s", Series: []string{"tuned"},
		Run: Tuned,
	})
}

// tunedShapes returns the shape set the tuned experiment races: a mix
// of near-square (direction/variant crossover territory), skinny AoS
// (cycle-following territory) and wide shapes, scaled to the workload
// preset.
func tunedShapes(s Scale) [][2]int {
	switch s {
	case TinyScale:
		return [][2]int{{48, 48}, {512, 6}, {32, 96}}
	case LargeScale:
		return [][2]int{{3000, 3000}, {4_000_000, 8}, {512, 8192}, {2048, 96}}
	case PaperScale:
		return [][2]int{{5000, 5000}, {10_000_000, 8}, {1000, 25000}, {4096, 96}}
	default:
		return [][2]int{{768, 768}, {400_000, 8}, {256, 2048}, {1024, 48}}
	}
}

// Tuned races the static heuristic against the autotuner's measured
// decision, per shape: the wisdom-vs-heuristic comparison the paper's
// per-shape performance landscapes (Figures 4–5) motivate. With
// cfg.Tune set the experiment tunes in-process (cmd/benchsuite -tune);
// otherwise it uses whatever wisdom the process has already loaded, and
// shapes without wisdom simply report 1.0x.
func Tuned(cfg Config) []Result {
	const reps = 5
	var b strings.Builder
	var csvRows [][]float64
	fmt.Fprintf(&b, "Tuned: measured (wisdom) vs heuristic plan selection, %d reps median\n", reps)
	for _, sh := range tunedShapes(cfg.Scale) {
		m, n := sh[0], sh[1]
		if cfg.Tune {
			tc := inplace.TuneConfig{Workers: cfg.Workers, Fast: cfg.Scale == TinyScale}
			if _, err := inplace.TuneElem(m, n, 8, tc); err != nil {
				panic(err)
			}
		}
		data := gridBuf[uint64](m, n)
		FillSeq(data)

		measure := func(o inplace.Options) float64 {
			pl, err := inplace.NewPlanner[uint64](m, n, o)
			if err != nil {
				panic(err)
			}
			if err := pl.Execute(data); err != nil { // warm arena + cycles
				panic(err)
			}
			var tps []float64
			for r := 0; r < reps; r++ {
				d := Time(func() {
					if err := pl.Execute(data); err != nil {
						panic(err)
					}
				})
				tps = append(tps, ThroughputGBps(m, n, 8, d))
			}
			return Median(tps)
		}

		heur := measure(inplace.Options{Workers: cfg.Workers, Tuning: inplace.WisdomOff})
		tuned := measure(inplace.Options{Workers: cfg.Workers})
		pl, err := inplace.NewPlanner[uint64](m, n, inplace.Options{Workers: cfg.Workers})
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "%10dx%-8d heuristic %8.2f GB/s   tuned %8.2f GB/s  (%.2fx)  -> %s\n",
			m, n, heur, tuned, tuned/heur, pl.String())
		csvRows = append(csvRows, []float64{float64(m), float64(n), heur, tuned})
	}
	return []Result{{
		Name: "tuned",
		Text: b.String(),
		CSV:  CSV([]string{"m", "n", "heuristic_gbps", "tuned_gbps"}, csvRows),
	}}
}
