package bench

import (
	"fmt"
	"strings"

	"inplace/internal/cr"
	"inplace/internal/gpumodel"
	"inplace/internal/gpusim"
)

func init() {
	Register(Experiment{
		ID: "gpusim", Title: "executed GPU kernels on simulated hardware vs the analytic model",
		Axes: []string{"m", "n"}, Unit: "GB/s", Series: []string{"gpusim"},
		Deterministic: true,
		Run:           GPUSim,
	})
}

// GPUSim executes the paper's GPU kernels on the simulated device
// (internal/gpusim) for a set of representative shapes and places the
// counted-transaction bandwidth next to the analytic model's prediction
// (internal/gpumodel). The executed numbers land in the paper's measured
// range and additionally expose the §4.6 alignment sensitivity the
// analytic model averages away: when a row's byte size divides the
// 128-byte line, every sub-row move is aligned and fully coalesced
// (e.g. n = 4000), while odd row sizes split each sub-row across two
// lines (the paper: "it may span two cache-lines if it is not aligned").
// Fully deterministic.
func GPUSim(cfg Config) []Result {
	shapes := [][2]int{
		{1500, 1000}, // small-n band: rows stage on chip
		{1200, 1800}, // bulk, composite
		{1201, 1801}, // bulk, coprime (skips the pre-rotation)
		{997, 1021},  // primes: awkward for tiled baselines, fine here
		{4000, 250},  // skinny-ish
		{250, 4000},  // wide
	}
	if cfg.Scale == TinyScale {
		shapes = shapes[:2]
	}
	dev := gpumodel.K20c()
	var b strings.Builder
	b.WriteString("Executed GPU kernels on simulated hardware vs the analytic model [GB/s]\n")
	fmt.Fprintf(&b, "%12s %12s %12s %12s\n", "shape", "executed", "analytic", "efficiency")
	var rows [][]float64
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		d := gpusim.NewK20c()
		data := gridBuf[uint64](m, n)
		FillSeq(data)
		d.C2R(data, cr.NewPlan(m, n))
		executed := d.Throughput(m, n, 8)
		analytic := dev.Estimate(m, n, 8, true)
		eff := d.Mem.Stats().Efficiency
		fmt.Fprintf(&b, "%12s %12.1f %12.1f %11.0f%%\n",
			fmt.Sprintf("%dx%d", m, n), executed, analytic, eff*100)
		rows = append(rows, []float64{float64(m), float64(n), executed, analytic, eff})
	}
	b.WriteString("\nThe executed kernels move the data for real (verified against the CPU\n")
	b.WriteString("engines) while every warp access is coalesced and charged by the memory\n")
	b.WriteString("model; the analytic model prices the same pass structure in closed form\n")
	b.WriteString("with an averaged sub-row efficiency. The efficiency column shows the\n")
	b.WriteString("paper's §4.6 alignment effect: shapes whose rows divide the cache line\n")
	b.WriteString("coalesce perfectly, odd shapes split every sub-row across two lines.\n")
	return []Result{{
		Name: "gpusim",
		Text: b.String(),
		CSV:  CSV([]string{"m", "n", "executed_gbps", "analytic_gbps", "efficiency"}, rows),
	}}
}
