// Package bench is the measurement harness that regenerates the paper's
// evaluation: seeded workload generators, wall-clock throughput
// measurement (Equation 37), order statistics, and the text renderings
// (histograms, heatmaps, tables, CSV series) used by cmd/benchsuite and
// the Go benchmarks in bench_test.go.
package bench

import (
	"fmt"
	"math"
	"strings"

	"inplace/internal/stats"
)

// The order statistics live in internal/stats so the autotuner
// (internal/tune) can share them without importing the full harness;
// these forwarders keep the historical bench API.

// Median returns the median of xs (the paper's summary statistic for
// Figures 3, 6 and 7). It returns NaN for an empty slice.
func Median(xs []float64) float64 { return stats.Median(xs) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. NaN for empty input.
func Percentile(xs []float64, p float64) float64 { return stats.Percentile(xs, p) }

// Mean returns the arithmetic mean of xs, NaN for empty input.
func Mean(xs []float64) float64 { return stats.Mean(xs) }

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (min, max float64) { return stats.MinMax(xs) }

// Histogram bins xs into `bins` equal-width bins over [lo, hi] and
// returns the counts. Values outside the range clamp to the end bins.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	if bins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// RenderHistogram draws a horizontal ASCII histogram of xs with the
// median marked, in the style of the paper's Figures 3, 6 and 7.
func RenderHistogram(title string, xs []float64, lo, hi float64, bins, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (n=%d, median=%.3g, max=%.3g)\n", title, len(xs), Median(xs), Percentile(xs, 100))
	counts := Histogram(xs, lo, hi, bins)
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	med := Median(xs)
	w := (hi - lo) / float64(bins)
	for i, c := range counts {
		binLo := lo + float64(i)*w
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		marker := " "
		if !math.IsNaN(med) && med >= binLo && med < binLo+w {
			marker = "*"
		}
		fmt.Fprintf(&b, "%10.3g %s|%s%s  %d\n", binLo, marker, strings.Repeat("#", bar), strings.Repeat(" ", width-bar), c)
	}
	return b.String()
}

// RenderHeatmap draws the (m, n) performance landscape of Figures 4–5 as
// an ASCII shade grid: rows are m (top = small), columns are n, shading
// by throughput relative to the grid's range.
func RenderHeatmap(title string, ms, ns []int, grid [][]float64) string {
	shades := []byte(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range grid {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (%.3g .. %.3g GB/s; shade ' '=slowest '@'=fastest)\n", title, lo, hi)
	fmt.Fprintf(&b, "%8s ", "m \\ n")
	for _, n := range ns {
		fmt.Fprintf(&b, "%5d", n)
	}
	b.WriteByte('\n')
	for i, m := range ms {
		fmt.Fprintf(&b, "%8d ", m)
		for j := range ns {
			v := grid[i][j]
			s := 0
			if hi > lo {
				s = int((v - lo) / (hi - lo) * float64(len(shades)-1))
			}
			if s < 0 {
				s = 0
			}
			if s >= len(shades) {
				s = len(shades) - 1
			}
			b.WriteString(fmt.Sprintf("    %c", shades[s]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Row is one labeled measurement in a summary table.
type Row struct {
	Label string
	Value float64
	Unit  string
}

// RenderTable formats rows in the style of the paper's Tables 1 and 2.
func RenderTable(title string, rows []Row) string {
	var b strings.Builder
	width := len(title)
	for _, r := range rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s  %s\n", width, title, "")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", width+16))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %10.3f %s\n", width, r.Label, r.Value, r.Unit)
	}
	return b.String()
}

// CSV renders a simple comma-separated table with a header. Commas
// inside column names (the Figure 3 method labels) would desync the
// header from the float rows, so they are rewritten to semicolons — the
// emitted text stays parseable by any naive comma splitter.
func CSV(header []string, rows [][]float64) string {
	var b strings.Builder
	for i, h := range header {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strings.ReplaceAll(h, ",", ";"))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
