package bench

import (
	"fmt"
	"os"
	"strings"

	"inplace"
)

func init() {
	Register(Experiment{
		ID: "ooc", Title: "out-of-core engine budget sweep on a temp file",
		Axes: []string{"budget_bytes"}, Unit: "GB/s", Series: []string{"ooc"},
		Run: OOC,
	})
}

// memFile is a fixed-size in-memory Storage for the micro suite: it
// isolates the engine's scheduling and kernel cost from disk noise.
type memFile struct{ b []byte }

func (m *memFile) ReadAt(p []byte, off int64) (int, error)  { return copy(p, m.b[off:]), nil }
func (m *memFile) WriteAt(p []byte, off int64) (int, error) { return copy(m.b[off:], p), nil }

// oocShape returns the matrix measured by the ooc experiment at each
// scale (8-byte elements).
func oocShape(s Scale) (rows, cols int) {
	switch s {
	case TinyScale:
		return 128, 96
	case SmallScale:
		return 1024, 768
	case LargeScale:
		return 4096, 3072
	default: // PaperScale
		return 8192, 6144
	}
}

// OOC measures the out-of-core engine's budget sensitivity: one matrix,
// transposed in place on a temp file under a sweep of scratch budgets
// from a small fraction of the file up to fully in core, with the
// in-memory engine on the same shape as the ceiling. Reported per
// budget: effective data throughput (bytes moved across the backend per
// wall second), backend call count after write-combining, and the
// prefetch hit rate of the pipeline.
func OOC(cfg Config) []Result {
	const elem = 8
	rows, cols := oocShape(cfg.Scale)
	fileBytes := int64(rows) * int64(cols) * elem

	f, err := os.CreateTemp("", "benchsuite-ooc-*")
	if err != nil {
		panic(err)
	}
	defer os.Remove(f.Name())
	defer f.Close()

	data := gridBuf[uint64](rows, cols)
	FillSeq(data)
	raw := make([]byte, fileBytes)
	for i, v := range data {
		for b := 0; b < 8; b++ {
			raw[i*8+b] = byte(v >> (8 * b))
		}
	}
	if _, err := f.WriteAt(raw, 0); err != nil {
		panic(err)
	}

	// In-memory ceiling on the same shape.
	dMem := Time(func() {
		mustTranspose(data, rows, cols, inplace.Options{Workers: cfg.Workers})
	})
	memGBps := ThroughputGBps(rows, cols, elem, dMem)

	type point struct {
		label  string
		budget int64
	}
	sweep := []point{
		{"1/64 file", fileBytes / 64},
		{"1/16 file", fileBytes / 16},
		{"1/4 file", fileBytes / 4},
		{"in core", 2 * fileBytes},
	}

	var b strings.Builder
	fmt.Fprintf(&b, "OOC: out-of-core transposition, %dx%d (%d-byte elements, %.1f MiB file), %d workers\n",
		rows, cols, elem, float64(fileBytes)/(1<<20), cfg.workers())
	fmt.Fprintf(&b, "  %-12s %12s %12s %12s %12s\n", "budget", "bytes", "GB/s", "backend ops", "prefetch hit")

	var csvRows [][]float64
	shape := rows // alternates with cols as the file flips orientation
	other := cols
	for _, p := range sweep {
		floor, err := inplace.OOCMinBudget(shape, other, elem)
		if err != nil {
			panic(err)
		}
		budget := p.budget
		if budget < floor {
			budget = floor
		}
		var st inplace.OOCStats
		d := Time(func() {
			st, err = inplace.TransposeFile(f, shape, other, elem, inplace.OOCOptions{
				Budget: budget, Workers: cfg.Workers,
			})
			if err != nil {
				panic(err)
			}
		})
		// The file now holds the transpose; the next sweep point
		// transposes it back.
		shape, other = other, shape

		secs := d.Seconds()
		if secs <= 0 {
			secs = 1e-9
		}
		gbps := float64(st.BytesRead+st.BytesWritten) / secs / 1e9
		ops := st.ReadOps + st.WriteOps
		hitRate := 1.0
		if tot := st.PrefetchHits + st.PrefetchMisses; tot > 0 {
			hitRate = float64(st.PrefetchHits) / float64(tot)
		}
		fmt.Fprintf(&b, "  %-12s %12d %12.2f %12d %11.0f%%\n", p.label, budget, gbps, ops, hitRate*100)
		csvRows = append(csvRows, []float64{float64(budget), gbps, float64(ops), hitRate})
	}
	fmt.Fprintf(&b, "  %-12s %12d %12.2f %12s %12s\n", "in-memory", fileBytes, memGBps, "-", "-")

	return []Result{{
		Name: "ooc",
		Text: b.String(),
		CSV:  CSV([]string{"budget_bytes", "gbps", "backend_ops", "prefetch_hit_rate"}, csvRows),
	}}
}
