package bench

import (
	"fmt"
	"runtime"
	"time"

	"inplace"
	"inplace/internal/benchfmt"
	"inplace/internal/mathutil"
	"inplace/internal/stats"
	"inplace/internal/tune"
)

// The micro suite is the machine-readable bench trajectory: a fixed set
// of named micro-experiments whose ns/op, GB/s and allocs/op land in the
// versioned BENCH envelope (internal/benchfmt). cmd/benchorch enumerates
// the matrix per preset and `benchorch compare` gates regressions
// against a committed baseline; cmd/benchsuite's -bench-json writes the
// same envelope, so the repo-root BENCH_PR*.json files form a comparable
// history instead of living only in scrollback.

// MicroCase is one named micro benchmark: an m×n matrix of elem-byte
// elements transposed once per op (the throughput normalization), with
// the setup (buffers, planners, warm-up state) built by Prep outside the
// measured region.
type MicroCase struct {
	Name      string
	M, N      int
	ElemBytes int
	Prep      func() func() // returns the per-op body
	Cleanup   func()        // optional: releases Prep's resources (temp dirs, handles)
}

// microDims fixes the micro shape families at one workload scale. The
// families mirror the library's specializations: a bulk cache-aware
// shape measured cold and warm, the skinny banded shape, the cached
// ad-hoc path, a batch, the out-of-core engine and the AoS conversion.
type microDims struct {
	coldM, coldN     int // planning on the critical path
	warmM, warmN     int // steady-state cache-aware Execute
	skinnyM, skinnyN int // skinny banded specialization
	cachedM, cachedN int // plan-cache hit + Execute
	batchCount       int // batched transpose
	batchM, batchN   int
	oocM, oocN       int // out-of-core engine, memory-backed
	aosM, aosN       int // AoS -> SoA conversion

	storeRows, storeFields, storeProj, storeChunk int // tile-store warm projection

	permN, permH, permW, permC int // NHWC<->NCHW axis-permutation round trip
}

func dimsFor(scale Scale) microDims {
	switch scale {
	case TinyScale:
		return microDims{
			coldM: 64, coldN: 48,
			warmM: 96, warmN: 64,
			skinnyM: 8192, skinnyN: 8,
			cachedM: 48, cachedN: 64,
			batchCount: 16, batchM: 24, batchN: 16,
			oocM: 64, oocN: 48,
			aosM: 20000, aosN: 4,
			storeRows: 2048, storeFields: 16, storeProj: 3, storeChunk: 512,
			permN: 2, permH: 8, permW: 8, permC: 4,
		}
	case LargeScale, PaperScale:
		return microDims{
			coldM: 512, coldN: 384,
			warmM: 1024, warmN: 768,
			skinnyM: 400000, skinnyN: 8,
			cachedM: 384, cachedN: 512,
			batchCount: 64, batchM: 96, batchN: 64,
			oocM: 512, oocN: 384,
			aosM: 500000, aosN: 4,
			storeRows: 32768, storeFields: 16, storeProj: 3, storeChunk: 4096,
			permN: 8, permH: 48, permW: 48, permC: 16,
		}
	default: // SmallScale: the dims of the historical micro suite
		return microDims{
			coldM: 256, coldN: 192,
			warmM: 512, warmN: 384,
			skinnyM: 100000, skinnyN: 8,
			cachedM: 192, cachedN: 256,
			batchCount: 64, batchM: 48, batchN: 32,
			oocM: 256, oocN: 192,
			aosM: 200000, aosN: 4,
			storeRows: 8192, storeFields: 16, storeProj: 3, storeChunk: 1024,
			permN: 4, permH: 32, permW: 32, permC: 8,
		}
	}
}

// MicroMatrix enumerates the micro suite at one scale over the preset's
// axes: every shape family at every worker count, and the out-of-core
// family additionally at every scratch-budget divisor (budget =
// file/div, clamped to the engine floor). Case names are fully
// axis-qualified — family, dims, _w<workers> and _b<divisor> — so two
// reports compare series by name only when every axis matches.
func MicroMatrix(scale Scale, workers []int, budgetDivs []int) []MicroCase {
	d := dimsFor(scale)
	if len(workers) == 0 {
		workers = []int{1}
	}
	if len(budgetDivs) == 0 {
		budgetDivs = []int{4}
	}
	var cases []MicroCase
	for _, w := range workers {
		w := w
		cases = append(cases,
			MicroCase{
				Name: fmt.Sprintf("transpose_cold_%dx%d_w%d", d.coldM, d.coldN, w),
				M:    d.coldM, N: d.coldN, ElemBytes: 8,
				Prep: func() func() {
					data := gridBuf[uint64](d.coldM, d.coldN)
					FillSeq(data)
					return func() {
						// Planning on the critical path: schedule + arena +
						// cycles rebuilt every op.
						pl, err := inplace.NewPlanner[uint64](d.coldM, d.coldN, inplace.Options{Workers: w})
						if err != nil {
							panic(err)
						}
						if err := pl.Execute(data); err != nil {
							panic(err)
						}
					}
				},
			},
			MicroCase{
				Name: fmt.Sprintf("planner_warm_cacheaware_%dx%d_w%d", d.warmM, d.warmN, w),
				M:    d.warmM, N: d.warmN, ElemBytes: 8,
				Prep: warmPlanner(d.warmM, d.warmN, inplace.Options{Workers: w, Method: inplace.CacheAware}),
			},
			MicroCase{
				Name: fmt.Sprintf("planner_warm_skinny_%dx%d_w%d", d.skinnyM, d.skinnyN, w),
				M:    d.skinnyM, N: d.skinnyN, ElemBytes: 8,
				Prep: warmPlanner(d.skinnyM, d.skinnyN, inplace.Options{
					Workers: w, Method: inplace.SkinnyMethod, Direction: inplace.ForceC2R,
				}),
			},
			MicroCase{
				Name: fmt.Sprintf("transpose_cached_%dx%d_w%d", d.cachedM, d.cachedN, w),
				M:    d.cachedM, N: d.cachedN, ElemBytes: 8,
				Prep: func() func() {
					data := gridBuf[uint64](d.cachedM, d.cachedN)
					FillSeq(data)
					return func() {
						// The cached-planner ad-hoc path: plannerFor hit +
						// Execute.
						if err := inplace.TransposeWith(data, d.cachedM, d.cachedN, inplace.Options{Workers: w}); err != nil {
							panic(err)
						}
					}
				},
			},
			MicroCase{
				Name: fmt.Sprintf("transpose_batch_%dof%dx%d_w%d", d.batchCount, d.batchM, d.batchN, w),
				M:    d.batchCount * d.batchM, N: d.batchN, ElemBytes: 8,
				Prep: func() func() {
					data := gridBuf[uint64](d.batchCount*d.batchM, d.batchN)
					FillSeq(data)
					return func() {
						if err := inplace.TransposeBatch(data, d.batchCount, d.batchM, d.batchN, inplace.Options{Workers: w}); err != nil {
							panic(err)
						}
					}
				},
			},
			MicroCase{
				Name: fmt.Sprintf("permute_nhwc_%dx%dx%dx%d_w%d", d.permN, d.permH, d.permW, d.permC, w),
				M:    d.permN * d.permH * d.permW, N: d.permC, ElemBytes: 8,
				Prep: func() func() {
					// One op is the NHWC->NCHW round trip on warm planners,
					// so the buffer's layout is invariant across ops.
					nhwc := []int{d.permN, d.permH, d.permW, d.permC}
					nchw := []int{d.permN, d.permC, d.permH, d.permW}
					fwd, err := inplace.NewPermutePlanner[uint64](nhwc, []int{0, 3, 1, 2}, inplace.Options{Workers: w})
					if err != nil {
						panic(err)
					}
					inv, err := inplace.NewPermutePlanner[uint64](nchw, []int{0, 2, 3, 1}, inplace.Options{Workers: w})
					if err != nil {
						panic(err)
					}
					data := make([]uint64, d.permN*d.permH*d.permW*d.permC)
					FillSeq(data)
					if err := fwd.Execute(data); err != nil {
						panic(err)
					}
					if err := inv.Execute(data); err != nil {
						panic(err)
					}
					return func() {
						if err := fwd.Execute(data); err != nil {
							panic(err)
						}
						if err := inv.Execute(data); err != nil {
							panic(err)
						}
					}
				},
			},
			MicroCase{
				Name: fmt.Sprintf("aos_to_soa_%dx%d_w%d", d.aosM, d.aosN, w),
				M:    d.aosM, N: d.aosN, ElemBytes: 8,
				Prep: func() func() {
					data := gridBuf[uint64](d.aosM, d.aosN)
					FillSeq(data)
					return func() {
						if err := inplace.AOSToSOA(data, d.aosM, d.aosN, inplace.Options{Workers: w}); err != nil {
							panic(err)
						}
					}
				},
			},
		)
		cases = append(cases, tilestoreMicroCase(d, w))
		for _, div := range budgetDivs {
			div := div
			cases = append(cases, MicroCase{
				Name: fmt.Sprintf("ooc_membacked_%dx%d_w%d_b%d", d.oocM, d.oocN, w, div),
				M:    d.oocM, N: d.oocN, ElemBytes: 8,
				Prep: func() func() {
					// The out-of-core engine on a memory backend: schedule,
					// pipeline and panel kernels without disk noise. The
					// shape alternates each op as the backend flips
					// orientation.
					nbytes, ok := mathutil.CheckedMul(len(gridBuf[byte](d.oocM, d.oocN)), 8)
					if !ok {
						panic("bench: ooc micro shape overflows int")
					}
					mf := &memFile{b: make([]byte, nbytes)}
					rows, cols := d.oocM, d.oocN
					budget := int64(len(mf.b)) / int64(div)
					return func() {
						if _, err := inplace.TransposeFile(mf, rows, cols, 8, inplace.OOCOptions{
							Budget: budget, Workers: w,
						}); err != nil {
							panic(err)
						}
						rows, cols = cols, rows
					}
				},
			})
		}
	}
	return cases
}

// warmPlanner builds the planner and warms its arena outside the
// measured region, so the case reports the steady-state Execute.
func warmPlanner(rows, cols int, o inplace.Options) func() func() {
	return func() func() {
		pl, err := inplace.NewPlanner[uint64](rows, cols, o)
		if err != nil {
			panic(err)
		}
		data := gridBuf[uint64](rows, cols)
		FillSeq(data)
		if err := pl.Execute(data); err != nil {
			panic(err)
		}
		return func() {
			if err := pl.Execute(data); err != nil {
				panic(err)
			}
		}
	}
}

// MeasureMicro measures one case with the tuner's robust timing loop
// (internal/tune.Measure) plus an exact allocation count, and returns
// the envelope experiment: legacy median scalars plus the full ns/op and
// GB/s sample series with their summaries.
func MeasureMicro(c MicroCase, opts tune.MeasureOpts) benchfmt.Experiment {
	if c.Cleanup != nil {
		defer c.Cleanup()
	}
	body := c.Prep()
	body() // warm: lazy cycle decompositions, arenas, pool spin-up
	allocs, allocBytes := allocsPerOp(body, 2)

	nsSamples := tune.Measure(body, opts)
	bytes := 2 * float64(c.M) * float64(c.N) * float64(c.ElemBytes)
	gbSamples := make([]float64, len(nsSamples))
	for i, ns := range nsSamples {
		gbSamples[i] = bytes / ns // ns/op and GB/s share the 1e9 factor
	}
	medNs := stats.Median(nsSamples)
	return benchfmt.Experiment{
		Name:        c.Name,
		Kind:        benchfmt.KindMicro,
		NsPerOp:     medNs,
		GBps:        bytes / medNs,
		AllocsPerOp: allocs,
		BytesPerOp:  allocBytes,
		Series: []benchfmt.Series{
			{Name: "ns_per_op", Unit: "ns/op", Samples: nsSamples, Summary: stats.Summarize(nsSamples)},
			{Name: "gbps", Unit: "GB/s", HigherIsBetter: true, Samples: gbSamples, Summary: stats.Summarize(gbSamples)},
		},
	}
}

// allocsPerOp counts heap allocations and allocated bytes per call of
// body, testing.AllocsPerRun-style: GOMAXPROCS pinned to 1 so no
// concurrent goroutine pollutes the counters, body warmed by the caller,
// runs calls averaged (an even count so cases that flip orientation each
// op average both directions).
func allocsPerOp(body func(), runs int) (allocs, bytes int64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		body()
	}
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs-before.Mallocs) / int64(runs),
		int64(after.TotalAlloc-before.TotalAlloc) / int64(runs)
}

// Micro runs the default micro matrix for cfg (the benchsuite
// -bench-json path: single-worker plus the configured parallel budget,
// quarter-file OOC budget) and returns the envelope report.
func Micro(cfg Config) benchfmt.Report {
	workers := []int{1}
	if w := cfg.workers(); w > 1 {
		workers = append(workers, w)
	}
	rep := benchfmt.New("micro-"+cfg.Scale.String(), 5, cfg.Seed)
	opts := tune.MeasureOpts{Reps: 5, MinSample: time.Millisecond, MaxTotal: 200 * time.Millisecond}
	for _, c := range MicroMatrix(cfg.Scale, workers, []int{4}) {
		rep.Experiments = append(rep.Experiments, MeasureMicro(c, opts))
	}
	return rep
}
