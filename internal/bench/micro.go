package bench

import (
	"encoding/json"
	"runtime"
	"testing"

	"inplace"
)

// The micro suite is the machine-readable bench trajectory: a fixed set
// of named micro-experiments measured with testing.Benchmark so every
// run reports comparable ns/op, GB/s and allocs/op. cmd/benchsuite
// serializes the report to BENCH_PR2.json at the repo root; successive
// PRs regenerate it, so the numbers form a history instead of living
// only in scrollback.

// MicroResult is one micro-experiment measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	GBps        float64 `json:"gbps"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
}

// MicroReport is the full serialized artifact.
type MicroReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []MicroResult `json:"experiments"`
}

// JSON renders the report with stable formatting.
func (r MicroReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// microCase is one named benchmark body transposing an m×n matrix of
// 8-byte elements per op (the throughput normalization).
type microCase struct {
	name string
	m, n int
	prep func() func() // returns the per-op body
}

func microCases(workers int) []microCase {
	return []microCase{
		{
			// Planning on the critical path: schedule + arena + cycles
			// rebuilt every op.
			name: "transpose_cold_256x192", m: 256, n: 192,
			prep: func() func() {
				data := make([]uint64, 256*192)
				FillSeq(data)
				return func() {
					pl, err := inplace.NewPlanner[uint64](256, 192, inplace.Options{Workers: 1})
					if err != nil {
						panic(err)
					}
					if err := pl.Execute(data); err != nil {
						panic(err)
					}
				}
			},
		},
		{
			name: "planner_warm_cacheaware_512x384_w1", m: 512, n: 384,
			prep: warmPlanner(512, 384, inplace.Options{Workers: 1, Method: inplace.CacheAware}),
		},
		{
			name: "planner_warm_cacheaware_512x384_parallel", m: 512, n: 384,
			prep: warmPlanner(512, 384, inplace.Options{Workers: workers, Method: inplace.CacheAware}),
		},
		{
			name: "planner_warm_skinny_100000x8_w1", m: 100000, n: 8,
			prep: warmPlanner(100000, 8, inplace.Options{
				Workers: 1, Method: inplace.SkinnyMethod, Direction: inplace.ForceC2R,
			}),
		},
		{
			// The cached-planner ad-hoc path: plannerFor hit + Execute.
			name: "transpose_cached_192x256", m: 192, n: 256,
			prep: func() func() {
				data := make([]uint64, 192*256)
				FillSeq(data)
				return func() {
					if err := inplace.Transpose(data, 192, 256); err != nil {
						panic(err)
					}
				}
			},
		},
		{
			name: "transpose_batch_64of48x32", m: 64 * 48, n: 32,
			prep: func() func() {
				data := make([]uint64, 64*48*32)
				FillSeq(data)
				return func() {
					if err := inplace.TransposeBatch(data, 64, 48, 32); err != nil {
						panic(err)
					}
				}
			},
		},
		{
			// The out-of-core engine on a memory backend under a quarter
			// budget: schedule, pipeline and panel kernels without disk
			// noise. The shape alternates each op as the backend flips
			// orientation.
			name: "ooc_membacked_256x192_budget_quarter", m: 256, n: 192,
			prep: func() func() {
				mf := &memFile{b: make([]byte, 256*192*8)}
				rows, cols := 256, 192
				budget := int64(len(mf.b) / 4)
				return func() {
					if _, err := inplace.TransposeFile(mf, rows, cols, 8, inplace.OOCOptions{
						Budget: budget, Workers: 1,
					}); err != nil {
						panic(err)
					}
					rows, cols = cols, rows
				}
			},
		},
		{
			name: "aos_to_soa_200000x4", m: 200000, n: 4,
			prep: func() func() {
				data := make([]uint64, 200000*4)
				FillSeq(data)
				return func() {
					if err := inplace.AOSToSOA(data, 200000, 4); err != nil {
						panic(err)
					}
				}
			},
		},
	}
}

// warmPlanner builds the planner and warms its arena outside the
// measured region, so the case reports the steady-state Execute.
func warmPlanner(rows, cols int, o inplace.Options) func() func() {
	return func() func() {
		pl, err := inplace.NewPlanner[uint64](rows, cols, o)
		if err != nil {
			panic(err)
		}
		data := gridBuf[uint64](rows, cols)
		FillSeq(data)
		if err := pl.Execute(data); err != nil {
			panic(err)
		}
		return func() {
			if err := pl.Execute(data); err != nil {
				panic(err)
			}
		}
	}
}

// Micro runs the micro suite and returns the report.
func Micro(cfg Config) MicroReport {
	rep := MicroReport{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, c := range microCases(cfg.workers()) {
		c := c
		r := testing.Benchmark(func(b *testing.B) {
			body := c.prep()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body()
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		bytes := 2 * float64(c.m) * float64(c.n) * 8
		rep.Results = append(rep.Results, MicroResult{
			Name:        c.name,
			NsPerOp:     ns,
			GBps:        bytes / ns, // ns/op and GB/s share the 1e9 factor
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return rep
}
