package bench

import (
	"fmt"
	"strings"

	"inplace/internal/memsim"
	"inplace/internal/simd"
)

func init() {
	Register(Experiment{
		ID: "fig8", Title: "modeled unit-stride AoS store/copy bandwidth vs structure size",
		Axes: []string{"struct_bytes"}, Unit: "GB/s", Series: []string{"fig8a", "fig8b"},
		Deterministic: true,
		Run:           Fig8,
	})
	Register(Experiment{
		ID: "fig9", Title: "modeled random AoS scatter/gather bandwidth vs structure size",
		Axes: []string{"struct_bytes"}, Unit: "GB/s", Series: []string{"fig9a", "fig9b"},
		Deterministic: true,
		Run:           Fig9,
	})
}

// Figures 8 and 9: Array-of-Structures vector memory accesses on the
// modeled SIMD processor. For each structure size the simulated warp
// performs the access pattern with each strategy over the modeled memory,
// and the bandwidth follows from the coalescing/instruction model
// (internal/memsim). Results are deterministic.

// simdStructWords lists the structure sizes swept (in 64-bit words;
// 8..64 bytes, the x-axis of Figures 8 and 9).
func simdStructWords(s Scale) []int {
	if s == TinyScale {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 3, 4, 5, 6, 7, 8}
}

// simdWarpIters returns how many warps of accesses to simulate per point.
func simdWarpIters(s Scale) int {
	switch s {
	case TinyScale:
		return 8
	case PaperScale:
		return 2048
	default:
		return 256
	}
}

type accessPattern int

const (
	patternUnitStride accessPattern = iota
	patternRandom
)

type accessOp int

const (
	opLoad accessOp = iota
	opStore
	opCopy
)

func (o accessOp) String() string {
	switch o {
	case opLoad:
		return "load"
	case opStore:
		return "store"
	default:
		return "copy"
	}
}

// simulateAccess runs `iters` warps of the given AoS access over a
// modeled memory and returns the effective bandwidth in GB/s.
func simulateAccess(kind simd.AccessKind, op accessOp, pattern accessPattern, K, iters int, seed int64) float64 {
	const W = 32
	mem := memsim.New(memsim.K20c())
	w := simd.NewWarp(W, K, mem)
	plan := simd.PlanFor(w)
	nStructs := W * iters * 2
	src := gridBuf[uint64](nStructs, K)
	dst := gridBuf[uint64](nStructs, K)
	for i := range src {
		src[i] = uint64(i)
	}
	rng := NewRNG(seed)
	idx := make([]int, W)
	for it := 0; it < iters; it++ {
		switch pattern {
		case patternUnitStride:
			base := (it * W) % (nStructs - W + 1)
			for l := range idx {
				idx[l] = base + l
			}
		case patternRandom:
			for l := range idx {
				idx[l] = rng.Intn(nStructs)
			}
		}
		load := func() {
			switch kind {
			case simd.AccessC2R:
				simd.CoalescedLoad(w, plan, src, idx)
			case simd.AccessDirect:
				simd.DirectLoad(w, src, idx)
			case simd.AccessVector:
				simd.VectorLoad(w, src, idx)
			}
		}
		store := func() {
			switch kind {
			case simd.AccessC2R:
				simd.CoalescedStore(w, plan, dst, idx)
			case simd.AccessDirect:
				simd.DirectStore(w, dst, idx)
			case simd.AccessVector:
				simd.VectorStore(w, dst, idx)
			}
		}
		switch op {
		case opLoad:
			load()
		case opStore:
			store()
		case opCopy:
			load()
			store()
		}
	}
	return mem.Stats().EffectiveGBps
}

func simdSeries(cfg Config, op accessOp, pattern accessPattern) (words []int, series map[simd.AccessKind][]float64) {
	words = simdStructWords(cfg.Scale)
	iters := simdWarpIters(cfg.Scale)
	series = map[simd.AccessKind][]float64{}
	for _, kind := range []simd.AccessKind{simd.AccessC2R, simd.AccessDirect, simd.AccessVector} {
		for _, K := range words {
			bw := simulateAccess(kind, op, pattern, K, iters, cfg.Seed+int64(K))
			series[kind] = append(series[kind], bw)
		}
	}
	return words, series
}

func renderSeries(name, title string, words []int, series map[simd.AccessKind][]float64) Result {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%12s %10s %10s %10s\n", "struct[B]", "C2R", "Direct", "Vector")
	var rows [][]float64
	for i, K := range words {
		fmt.Fprintf(&b, "%12d %10.1f %10.1f %10.1f\n",
			K*8, series[simd.AccessC2R][i], series[simd.AccessDirect][i], series[simd.AccessVector][i])
		rows = append(rows, []float64{float64(K * 8),
			series[simd.AccessC2R][i], series[simd.AccessDirect][i], series[simd.AccessVector][i]})
	}
	last := len(words) - 1
	fmt.Fprintf(&b, "max C2R/Direct ratio: %.1fx\n",
		series[simd.AccessC2R][last]/series[simd.AccessDirect][last])
	return Result{Name: name, Text: b.String(),
		CSV: CSV([]string{"struct_bytes", "c2r_gbps", "direct_gbps", "vector_gbps"}, rows)}
}

// Fig8 models unit-stride AoS accesses: (a) store bandwidth and (b)
// copy (load+store) bandwidth versus structure size.
func Fig8(cfg Config) []Result {
	words, stores := simdSeries(cfg, opStore, patternUnitStride)
	_, copies := simdSeries(cfg, opCopy, patternUnitStride)
	return []Result{
		renderSeries("fig8a", "Fig8a: unit-stride AoS store bandwidth [GB/s] on modeled K20c", words, stores),
		renderSeries("fig8b", "Fig8b: unit-stride AoS copy bandwidth [GB/s] on modeled K20c", words, copies),
	}
}

// Fig9 models random AoS accesses: (a) scatter (store) and (b) gather
// (load) bandwidth versus structure size.
func Fig9(cfg Config) []Result {
	words, scatters := simdSeries(cfg, opStore, patternRandom)
	_, gathers := simdSeries(cfg, opLoad, patternRandom)
	return []Result{
		renderSeries("fig9a", "Fig9a: random AoS scatter bandwidth [GB/s] on modeled K20c", words, scatters),
		renderSeries("fig9b", "Fig9b: random AoS gather bandwidth [GB/s] on modeled K20c", words, gathers),
	}
}
