package bench

import (
	"fmt"
	"runtime"
	"time"

	"inplace"
	"inplace/internal/baseline"
)

// Config parameterizes an experiment run.
type Config struct {
	Scale   Scale
	Workers int // 0 = GOMAXPROCS
	Seed    int64
	// Tune makes the "tuned" experiment run the autotuner in-process
	// (cmd/benchsuite -tune); without it the experiment relies on wisdom
	// already loaded via -wisdom, if any.
	Tune bool
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is one rendered artifact of an experiment: a text block for the
// console and an optional CSV for plotting.
type Result struct {
	Name string // e.g. "fig3"
	Text string
	CSV  string // empty if the artifact has no series form
}

func init() {
	Register(Experiment{
		ID: "fig3", Title: "CPU in-place transposition throughput histograms",
		Unit: "GB/s", Series: []string{"fig3"},
		Run: Fig3,
	})
	Register(Experiment{
		ID: "table1", Title: "median CPU throughput per contender",
		Axes: []string{"method"}, Unit: "GB/s", Series: []string{"table1"},
		Run: Table1,
	})
	Register(Experiment{
		ID: "fig4", Title: "C2R performance landscape over the (m, n) grid",
		Axes: []string{"m", "n"}, Unit: "GB/s", Series: []string{"fig4", "fig4model"},
		Run: Fig4,
	})
	Register(Experiment{
		ID: "fig5", Title: "R2C performance landscape over the (m, n) grid",
		Axes: []string{"m", "n"}, Unit: "GB/s", Series: []string{"fig5", "fig5model"},
		Run: Fig5,
	})
	Register(Experiment{
		ID: "fig6", Title: "GPU-class contender throughput histograms",
		Unit: "GB/s", Series: []string{"fig6"},
		Run: Fig6,
	})
	Register(Experiment{
		ID: "table2", Title: "median GPU-class throughput per contender",
		Axes: []string{"method"}, Unit: "GB/s", Series: []string{"table2"},
		Run: Table2,
	})
	Register(Experiment{
		ID: "fig7", Title: "AoS to SoA in-place conversion throughput",
		Axes: []string{"count", "fields"}, Unit: "GB/s", Series: []string{"fig7"},
		Run: Fig7,
	})
}

// --- Figure 3 / Table 1: CPU in-place transposition throughput ---

// cpuMethods returns the four labeled CPU contenders of Figure 3.
func cpuMethods(workers int) []struct {
	Label string
	Run   func(data []uint64, m, n int)
} {
	return []struct {
		Label string
		Run   func(data []uint64, m, n int)
	}{
		{"MKL-alike (cycle following)", func(data []uint64, m, n int) {
			baseline.CycleFollowBits(data, m, n)
		}},
		{"C2R/R2C heuristic, 1 worker", func(data []uint64, m, n int) {
			mustTranspose(data, m, n, inplace.Options{Method: inplace.CacheAware, Workers: 1})
		}},
		{fmt.Sprintf("C2R/R2C heuristic, parallel (%d workers)", workers), func(data []uint64, m, n int) {
			mustTranspose(data, m, n, inplace.Options{Method: inplace.CacheAware, Workers: workers})
		}},
		{"Gustavson-style (tiled)", func(data []uint64, m, n int) {
			baseline.Gustavson(data, m, n, baseline.GustavsonOpts{Workers: workers})
		}},
	}
}

func mustTranspose[T any](data []T, m, n int, o inplace.Options) {
	if err := inplace.TransposeWith(data, m, n, o); err != nil {
		panic(err)
	}
}

// memoized sample sets: Figure 3 and Table 1 (and Figure 6 and Table 2)
// summarize the same run, so the sweep executes once per configuration.
var (
	cpuMemo = map[Config]memoEntry{}
	gpuMemo = map[Config]memoEntry{}
)

type memoEntry struct {
	labels  []string
	samples [][]float64
}

// runCPU measures all Figure 3 contenders over the Table 1 workload and
// returns per-method throughput samples.
func runCPU(cfg Config) (labels []string, samples [][]float64) {
	if e, ok := cpuMemo[cfg]; ok {
		return e.labels, e.samples
	}
	defer func() { cpuMemo[cfg] = memoEntry{labels, samples} }()
	w := CPUWorkload(cfg.Scale)
	rng := NewRNG(cfg.Seed + 3)
	methods := cpuMethods(cfg.workers())
	samples = make([][]float64, len(methods))
	for s := 0; s < w.Samples; s++ {
		m := w.Dim.Rand(rng)
		n := w.Dim.Rand(rng)
		data := gridBuf[uint64](m, n)
		for mi, method := range methods {
			FillSeq(data)
			d := Time(func() { method.Run(data, m, n) })
			samples[mi] = append(samples[mi], ThroughputGBps(m, n, 8, d))
		}
	}
	for _, m := range methods {
		labels = append(labels, m.Label)
	}
	return labels, samples
}

// Fig3 renders the CPU throughput histograms.
func Fig3(cfg Config) []Result {
	labels, samples := runCPU(cfg)
	var out []Result
	var csvRows [][]float64
	for i := range samples[0] {
		row := make([]float64, len(samples))
		for j := range samples {
			row[j] = samples[j][i]
		}
		csvRows = append(csvRows, row)
	}
	text := ""
	for i, lab := range labels {
		_, max := MinMax(samples[i])
		text += RenderHistogram("Fig3: "+lab+" [GB/s]", samples[i], 0, max*1.05+1e-9, 20, 40) + "\n"
	}
	out = append(out, Result{Name: "fig3", Text: text, CSV: CSV(labels, csvRows)})
	return out
}

// Table1 renders the median-throughput summary of the same workload.
func Table1(cfg Config) []Result {
	labels, samples := runCPU(cfg)
	rows := make([]Row, len(labels))
	var csvRows [][]float64
	for i, lab := range labels {
		rows[i] = Row{Label: lab, Value: Median(samples[i]), Unit: "GB/s"}
		csvRows = append(csvRows, []float64{float64(i), Median(samples[i])})
	}
	text := RenderTable("Table 1: median in-place transposition throughput (64-bit elements)", rows)
	ratio := rows[1].Value / rows[0].Value
	text += fmt.Sprintf("\ndecomposition (1 worker) vs MKL-alike speedup: %.2fx (paper: 336/67 = 5.0x)\n", ratio)
	return []Result{{Name: "table1", Text: text, CSV: CSV([]string{"method", "median_gbps"}, csvRows)}}
}

// --- Figures 4 and 5: C2R / R2C performance landscapes ---

func landscape(cfg Config, useC2R bool) (ms, ns []int, grid [][]float64) {
	dims := LandscapeGrid(cfg.Scale)
	grid = make([][]float64, len(dims))
	dirOpt := inplace.ForceR2C
	if useC2R {
		dirOpt = inplace.ForceC2R
	}
	for i, m := range dims {
		grid[i] = make([]float64, len(dims))
		for j, n := range dims {
			data := gridBuf[uint64](m, n)
			FillSeq(data)
			o := inplace.Options{Method: inplace.CacheAware, Workers: cfg.workers(), Direction: dirOpt}
			d := Time(func() { mustTranspose(data, m, n, o) })
			grid[i][j] = ThroughputGBps(m, n, 8, d)
		}
	}
	return dims, dims, grid
}

// Fig4 sweeps the C2R algorithm over the (m, n) grid, measured on the
// host and modeled for the paper's K20c.
func Fig4(cfg Config) []Result {
	ms, ns, grid := landscape(cfg, true)
	out := landscapeResult("fig4", "Fig4: C2R performance landscape, measured on host [GB/s]", ms, ns, grid)
	out = append(out, modeledLandscape("fig4model",
		"Fig4 (model): C2R landscape on modeled K20c, paper's [1000,25000] grid [GB/s]", true))
	return out
}

// Fig5 sweeps the R2C algorithm over the same grid.
func Fig5(cfg Config) []Result {
	ms, ns, grid := landscape(cfg, false)
	out := landscapeResult("fig5", "Fig5: R2C performance landscape, measured on host [GB/s]", ms, ns, grid)
	out = append(out, modeledLandscape("fig5model",
		"Fig5 (model): R2C landscape on modeled K20c, paper's [1000,25000] grid [GB/s]", false))
	return out
}

func landscapeResult(name, title string, ms, ns []int, grid [][]float64) []Result {
	var rows [][]float64
	for i, m := range ms {
		for j, n := range ns {
			rows = append(rows, []float64{float64(m), float64(n), grid[i][j]})
		}
	}
	return []Result{{
		Name: name,
		Text: RenderHeatmap(title, ms, ns, grid),
		CSV:  CSV([]string{"m", "n", "gbps"}, rows),
	}}
}

// --- Figure 6 / Table 2: GPU-class contenders ---

func runGPU(cfg Config) (labels []string, samples [][]float64) {
	if e, ok := gpuMemo[cfg]; ok {
		return e.labels, e.samples
	}
	defer func() { gpuMemo[cfg] = memoEntry{labels, samples} }()
	w := GPUWorkload(cfg.Scale)
	rng := NewRNG(cfg.Seed + 6)
	workers := cfg.workers()
	labels = []string{"Sung-style (float)", "C2R (float)", "C2R (double)"}
	samples = make([][]float64, 3)
	for s := 0; s < w.Samples; s++ {
		m := w.Dim.Rand(rng)
		n := w.Dim.Rand(rng)

		f32 := gridBuf[uint32](m, n)
		FillSeq(f32)
		d := Time(func() { baseline.Sung32(f32, m, n, baseline.SungOpts{Workers: workers}) })
		samples[0] = append(samples[0], ThroughputGBps(m, n, 4, d))

		FillSeq(f32)
		d = Time(func() { mustTranspose(f32, m, n, inplace.Options{Workers: workers}) })
		samples[1] = append(samples[1], ThroughputGBps(m, n, 4, d))

		f64 := gridBuf[uint64](m, n)
		FillSeq(f64)
		d = Time(func() { mustTranspose(f64, m, n, inplace.Options{Workers: workers}) })
		samples[2] = append(samples[2], ThroughputGBps(m, n, 8, d))
	}
	return labels, samples
}

// Fig6 renders the histograms of the GPU-class comparison.
func Fig6(cfg Config) []Result {
	labels, samples := runGPU(cfg)
	text := ""
	for i, lab := range labels {
		_, max := MinMax(samples[i])
		text += RenderHistogram("Fig6: "+lab+" [GB/s]", samples[i], 0, max*1.05+1e-9, 20, 40) + "\n"
	}
	var csvRows [][]float64
	for i := range samples[0] {
		csvRows = append(csvRows, []float64{samples[0][i], samples[1][i], samples[2][i]})
	}
	return []Result{{Name: "fig6", Text: text, CSV: CSV(labels, csvRows)}}
}

// Table2 renders the median summary of the same workload.
func Table2(cfg Config) []Result {
	labels, samples := runGPU(cfg)
	rows := make([]Row, len(labels))
	var csvRows [][]float64
	for i, lab := range labels {
		rows[i] = Row{Label: lab, Value: Median(samples[i]), Unit: "GB/s"}
		csvRows = append(csvRows, []float64{float64(i), Median(samples[i])})
	}
	text := RenderTable("Table 2: median in-place transposition throughput (heuristic C2R/R2C)", rows)
	text += fmt.Sprintf("\nC2R (float) vs Sung-style speedup: %.2fx (paper: 14.23/5.33 = 2.7x)\n",
		rows[1].Value/rows[0].Value)
	text += modeledTable2(cfg)
	return []Result{{Name: "table2", Text: text, CSV: CSV([]string{"method", "median_gbps"}, csvRows)}}
}

// --- Figure 7: AoS -> SoA conversion throughput ---

// Fig7 measures the skinny-engine Array-of-Structures to
// Structure-of-Arrays conversion over random structure sizes and counts.
func Fig7(cfg Config) []Result {
	samples, fieldsR, countR := AoSWorkload(cfg.Scale)
	rng := NewRNG(cfg.Seed + 7)
	var tps []float64
	var csvRows [][]float64
	for s := 0; s < samples; s++ {
		fields := fieldsR.Rand(rng)
		count := countR.Rand(rng)
		data := gridBuf[uint64](count, fields)
		FillSeq(data)
		var d time.Duration
		d = Time(func() {
			if err := inplace.AOSToSOA(data, count, fields, inplace.Options{Workers: cfg.workers()}); err != nil {
				panic(err)
			}
		})
		tp := ThroughputGBps(count, fields, 8, d)
		tps = append(tps, tp)
		csvRows = append(csvRows, []float64{float64(count), float64(fields), tp})
	}
	_, max := MinMax(tps)
	text := RenderHistogram("Fig7: AoS->SoA in-place conversion [GB/s]", tps, 0, max*1.05+1e-9, 20, 40)
	text += fmt.Sprintf("\nmedian %.3f GB/s, max %.3f GB/s (paper: median 34.3, max 51 on K20c)\n",
		Median(tps), Percentile(tps, 100))
	text += modeledFig7(cfg)
	return []Result{{Name: "fig7", Text: text, CSV: CSV([]string{"count", "fields", "gbps"}, csvRows)}}
}
