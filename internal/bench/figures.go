package bench

import (
	"fmt"
	"strings"

	"inplace/internal/core"
	"inplace/internal/cr"
	"inplace/internal/layout"
)

func init() {
	Register(Experiment{
		ID: "fig1", Title: "C2R and R2C permutation demo (3x8)",
		Series: []string{"fig1"}, Deterministic: true,
		Run: Fig1,
	})
	Register(Experiment{
		ID: "fig2", Title: "stage-by-stage C2R transpose demo (4x8)",
		Series: []string{"fig2"}, Deterministic: true,
		Run: Fig2,
	})
}

// Fig1 reproduces the paper's Figure 1: the C2R and R2C permutations of
// a 3×8 array.
func Fig1(Config) []Result {
	m, n := 3, 8
	rowMajor := gridBuf[int](m, n)
	for i := range rowMajor {
		rowMajor[i] = i
	}
	// The right-hand matrix of Figure 1 holds 0..23 in column-major
	// reading order; applying C2R to it yields the row-major matrix.
	colMajorish := gridBuf[int](m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			colMajorish[i*n+j] = i + j*m
		}
	}
	var b strings.Builder
	b.WriteString("Fig1: C2R and R2C transpositions, m=3, n=8\n\n")
	b.WriteString("Rows-to-Columns source (values in row-major reading order):\n")
	b.WriteString(layout.NewMatrix(rowMajor, m, n, layout.RowMajor).String())
	after := append([]int(nil), rowMajor...)
	core.R2C(after, cr.NewPlan(m, n), core.Opts{})
	// Viewed as 3×8 again (the paper redraws it with the same shape):
	b.WriteString("\nAfter R2C (values now in column reading order):\n")
	b.WriteString(layout.NewMatrix(after, m, n, layout.RowMajor).String())
	matches := true
	for i := range after {
		if after[i] != colMajorish[i] {
			matches = false
		}
	}
	fmt.Fprintf(&b, "\nmatches the paper's right-hand matrix: %v\n", matches)
	back := append([]int(nil), after...)
	core.C2R(back, cr.NewPlan(m, n), core.Opts{})
	restored := true
	for i := range back {
		if back[i] != rowMajor[i] {
			restored = false
		}
	}
	b.WriteString("\nC2R restores the original:\n")
	b.WriteString(layout.NewMatrix(back, m, n, layout.RowMajor).String())
	fmt.Fprintf(&b, "restored: %v\n", restored)
	return []Result{{Name: "fig1", Text: b.String()}}
}

// Fig2 reproduces Figure 2: the three stages of the in-place C2R
// transpose of a 4×8 array, shown — as in the paper — with the buffer
// drawn in its column-major reading order.
func Fig2(Config) []Result {
	m, n := 4, 8
	p := cr.NewPlan(m, n)
	data := gridBuf[int](m, n)
	for i := range data {
		data[i] = i
	}
	var b strings.Builder
	draw := func(title string, x []int) {
		b.WriteString(title + "\n")
		// The paper draws the linear buffer as a column-major 4×8 view.
		b.WriteString(layout.NewMatrix(x, m, n, layout.ColMajor).String())
		b.WriteString("\n")
	}
	b.WriteString("Fig2: C2R transpose of a 4x8 matrix, stage by stage\n\n")
	draw("initial (linear 0..31, drawn column-major as in the paper):", data)

	// The paper runs the stages with column-major indexing of the buffer
	// — by Theorem 7 the final permutation is the same as with row-major
	// indexing (internal/core's choice); only the intermediate states
	// differ. Element (i, j) lives at offset i + j*m.
	at := func(x []int, i, j int) int { return x[i+j*m] }
	set := func(x []int, i, j, v int) { x[i+j*m] = v }

	// Stage 1: column rotation (gather r_j).
	stage := append([]int(nil), data...)
	tmp := make([]int, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			tmp[i] = at(stage, p.RGather(i, j), j)
		}
		for i := 0; i < m; i++ {
			set(stage, i, j, tmp[i])
		}
	}
	draw("after column rotation (eq. 23):", stage)

	// Stage 2: row shuffle (scatter d').
	rowTmp := make([]int, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			rowTmp[p.DPrime(i, j)] = at(stage, i, j)
		}
		for j := 0; j < n; j++ {
			set(stage, i, j, rowTmp[j])
		}
	}
	draw("after row shuffle (eq. 24):", stage)

	// Stage 3: column shuffle (gather s').
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			tmp[i] = at(stage, p.SPrime(i, j), j)
		}
		for i := 0; i < m; i++ {
			set(stage, i, j, tmp[i])
		}
	}
	draw("after column shuffle (eq. 26) — the transpose, linearized:", stage)

	want := gridBuf[int](m, n)
	core.OutOfPlace(want, data, m, n)
	match := true
	for i := range want {
		if want[i] != stage[i] {
			match = false
		}
	}
	fmt.Fprintf(&b, "matches out-of-place transpose: %v\n", match)
	return []Result{{Name: "fig2", Text: b.String()}}
}
