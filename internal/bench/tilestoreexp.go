package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"inplace"
	"inplace/internal/mathutil"
)

// aosBuf allocates a rows×fields record image of elem-byte elements,
// panicking on int overflow (bench shapes are preset-bounded).
func aosBuf(rows, fields, elem int) []byte {
	rf, ok := mathutil.CheckedMul(rows, fields)
	if !ok {
		panic("bench: tilestore shape overflows int")
	}
	n, ok := mathutil.CheckedMul(rf, elem)
	if !ok {
		panic("bench: tilestore shape overflows int")
	}
	return make([]byte, n)
}

func init() {
	Register(Experiment{
		ID: "tilestore", Title: "columnar tile store: projection width × cache sweep",
		Axes: []string{"rows", "fields", "proj_cols", "cache_bytes"}, Unit: "GB/s", Series: []string{"tilestore"},
		Run: Tilestore,
	})
}

// tilestoreShape returns the dataset measured by the tilestore
// experiment at each scale (4-byte elements; fields swept separately).
func tilestoreShape(s Scale) (rows, chunkRows int) {
	switch s {
	case TinyScale:
		return 4096, 512
	case SmallScale:
		return 16384, 2048
	case LargeScale:
		return 65536, 8192
	default: // PaperScale
		return 131072, 16384
	}
}

// Tilestore measures the columnar store's read side: datasets of two
// field widths are built on a temp directory, then projections of
// increasing column width — through to the full-scan degenerate case —
// are driven under a tight and a roomy block cache. Reported per point:
// warm projection throughput (projected bytes per wall second), the
// block-cache hit rate over the passes, and the fraction of a full
// scan's backend bytes the projection's cold pass touched (the
// coalesced-column payoff; 1.0 for the scan itself).
func Tilestore(cfg Config) []Result {
	const elem = 4
	rows, chunkRows := tilestoreShape(cfg.Scale)
	const passes = 8

	scratch, err := os.MkdirTemp("", "benchsuite-tilestore-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(scratch)

	var b strings.Builder
	fmt.Fprintf(&b, "Tilestore: columnar projection, %d rows (4-byte elements, chunk height %d), %d workers\n",
		rows, chunkRows, cfg.workers())
	fmt.Fprintf(&b, "  %-26s %12s %12s %12s\n", "config", "GB/s", "cache hit", "scan-byte frac")

	var csvRows [][]float64
	for _, fields := range []int{8, 16} {
		dir := filepath.Join(scratch, fmt.Sprintf("ds-%d", fields))
		aos := aosBuf(rows, fields, elem)
		fillAoS(aos)
		ds, err := inplace.CreateDataset(dir, rows, fields, elem, inplace.DatasetOptions{
			ChunkRows: chunkRows, Workers: cfg.Workers, Label: "bench",
		})
		if err != nil {
			panic(err)
		}
		if err := ds.Ingest(newByteReader(aos)); err != nil {
			panic(err)
		}
		ds.Close()

		// Cold full-scan bytes: the denominator of the payoff column.
		probe, err := inplace.OpenDataset(dir, inplace.DatasetOptions{Label: "bench"})
		if err != nil {
			panic(err)
		}
		full := aosBuf(rows, fields, elem)
		if err := probe.Scan(full, 0, rows); err != nil {
			panic(err)
		}
		scanBytes := probe.Stats().BytesRead
		probe.Close()

		segBytes := int64(chunkRows * elem)
		for _, proj := range []int{1, fields / 4, fields} {
			cols := make([]int, proj)
			for i := range cols {
				cols[i] = (i * fields) / proj // spread across the record
			}
			for _, cache := range []struct {
				label string
				bytes int64
			}{
				{"tight", 2 * segBytes}, // two segments: every pass re-reads
				{"roomy", 0},            // store default: everything resident
			} {
				d, err := inplace.OpenDataset(dir, inplace.DatasetOptions{
					CacheBytes: cache.bytes, Workers: cfg.Workers, Label: "bench",
				})
				if err != nil {
					panic(err)
				}
				dst := aosBuf(rows, proj, elem)
				// Cold pass: populates the cache and counts the backend
				// bytes the projection actually needs.
				if err := d.Project(dst, cols, 0, rows); err != nil {
					panic(err)
				}
				coldBytes := d.Stats().BytesRead

				dur := Time(func() {
					for p := 0; p < passes; p++ {
						if err := d.Project(dst, cols, 0, rows); err != nil {
							panic(err)
						}
					}
				})
				st := d.Stats()
				d.Close()

				secs := dur.Seconds() / passes
				if secs <= 0 {
					secs = 1e-9
				}
				gbps := float64(len(dst)) / secs / 1e9
				hitRate := 0.0
				if tot := st.CacheHits + st.CacheMisses; tot > 0 {
					hitRate = float64(st.CacheHits) / float64(tot)
				}
				frac := 0.0
				if scanBytes > 0 {
					frac = float64(coldBytes) / float64(scanBytes)
				}
				fmt.Fprintf(&b, "  %2df proj %2d/%2d %-6s %10.2f %11.0f%% %13.2f\n",
					fields, proj, fields, cache.label, gbps, hitRate*100, frac)
				csvRows = append(csvRows, []float64{
					float64(rows), float64(fields), float64(proj),
					float64(resolveCache(cache.bytes, segBytes)),
					gbps, hitRate, frac,
				})
			}
		}
	}

	return []Result{{
		Name: "tilestore",
		Text: b.String(),
		CSV: CSV([]string{"rows", "fields", "proj_cols", "cache_bytes",
			"gbps", "cache_hit_rate", "scan_byte_frac"}, csvRows),
	}}
}

// resolveCache mirrors the store's capacity defaulting for the CSV axis
// (0 means the 32 MiB default, raised to one segment).
func resolveCache(requested, segBytes int64) int64 {
	if requested != 0 {
		return requested
	}
	c := int64(32 << 20)
	if c < segBytes {
		c = segBytes
	}
	return c
}

// tilestoreMicroCase is the micro-suite member: a warm 3-column
// projection on a fully cache-resident dataset — the store's zero-alloc
// hot path, so allocs/op lands in the envelope alongside ns/op.
func tilestoreMicroCase(d microDims, w int) MicroCase {
	const elem = 4
	var dir string
	var ds *inplace.Dataset
	return MicroCase{
		Name: fmt.Sprintf("tilestore_project_%dx%d_p%d_w%d", d.storeRows, d.storeFields, d.storeProj, w),
		M:    d.storeRows, N: d.storeProj, ElemBytes: elem,
		Prep: func() func() {
			var err error
			dir, err = os.MkdirTemp("", "benchsuite-tilestore-micro-*")
			if err != nil {
				panic(err)
			}
			aos := aosBuf(d.storeRows, d.storeFields, elem)
			fillAoS(aos)
			path := filepath.Join(dir, "ds")
			wr, err := inplace.CreateDataset(path, d.storeRows, d.storeFields, elem, inplace.DatasetOptions{
				ChunkRows: d.storeChunk, Workers: w, Label: "micro",
			})
			if err != nil {
				panic(err)
			}
			if err := wr.Ingest(newByteReader(aos)); err != nil {
				panic(err)
			}
			wr.Close()
			ds, err = inplace.OpenDataset(path, inplace.DatasetOptions{Workers: w, Label: "micro"})
			if err != nil {
				panic(err)
			}
			cols := make([]int, d.storeProj)
			for i := range cols {
				cols[i] = (i * d.storeFields) / d.storeProj
			}
			dst := aosBuf(d.storeRows, d.storeProj, elem)
			return func() {
				if err := ds.Project(dst, cols, 0, d.storeRows); err != nil {
					panic(err)
				}
			}
		},
		Cleanup: func() {
			if ds != nil {
				ds.Close()
			}
			if dir != "" {
				os.RemoveAll(dir)
			}
		},
	}
}

// fillAoS writes a deterministic, position-dependent byte pattern
// (FillSeq is typed for word-sized elements; the store ingests bytes).
func fillAoS(b []byte) {
	for i := range b {
		b[i] = byte(uint32(i)*2654435761>>7 + uint32(i))
	}
}

// newByteReader is a minimal io.Reader over a byte slice (avoids
// importing bytes just for ingest plumbing).
func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

type byteReader struct {
	b []byte
	n int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.n >= len(r.b) {
		return 0, os.ErrDeadlineExceeded // never reached: ingest reads exactly len(b)
	}
	n := copy(p, r.b[r.n:])
	r.n += n
	return n, nil
}
