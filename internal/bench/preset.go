package bench

import (
	"time"

	"inplace/internal/tune"
)

// Preset is one named point of the orchestrator's run matrix: a workload
// scale, the worker-count and scratch-budget axes the micro suite is
// enumerated over, the measurement discipline (repetitions and timing
// caps fed to internal/tune's robust loop), and the registry experiments
// whose CSV series the run additionally captures.
type Preset struct {
	Name        string
	Scale       Scale
	Workers     []int // worker-count axis (0 entries mean GOMAXPROCS)
	BudgetDivs  []int // out-of-core scratch-budget axis: budget = file/div
	Reps        int   // timed samples per case
	MinSample   time.Duration
	MaxCase     time.Duration // total timing budget per case
	Experiments []string      // registry experiment ids captured as series
}

// MeasureOpts returns the preset's timing discipline for internal/tune.
func (p Preset) MeasureOpts() tune.MeasureOpts {
	return tune.MeasureOpts{Reps: p.Reps, MinSample: p.MinSample, MaxTotal: p.MaxCase}
}

// presets is the named matrix. quick is the CI gate: tiny shapes, one
// worker, seconds of wall clock end to end. small/medium/large scale the
// shapes, sweep more of the worker and budget axes and capture the
// deterministic model experiments alongside.
var presets = []Preset{
	{
		Name:  "quick",
		Scale: TinyScale, Workers: []int{1}, BudgetDivs: []int{4},
		Reps: 5, MinSample: 250 * time.Microsecond, MaxCase: 25 * time.Millisecond,
	},
	{
		Name:  "small",
		Scale: SmallScale, Workers: []int{1, 0}, BudgetDivs: []int{4},
		Reps: 5, MinSample: time.Millisecond, MaxCase: 150 * time.Millisecond,
	},
	{
		Name:  "medium",
		Scale: SmallScale, Workers: []int{1, 2, 0}, BudgetDivs: []int{16, 4, 1},
		Reps: 7, MinSample: 2 * time.Millisecond, MaxCase: 400 * time.Millisecond,
		Experiments: []string{"locality", "permute", "tilestore"},
	},
	{
		Name:  "large",
		Scale: LargeScale, Workers: []int{1, 0}, BudgetDivs: []int{16, 4},
		Reps: 5, MinSample: 5 * time.Millisecond, MaxCase: time.Second,
		Experiments: []string{"locality", "gpusim", "permute", "tilestore"},
	},
}

// Presets returns the named presets in definition order.
func Presets() []Preset {
	return append([]Preset(nil), presets...)
}

// LookupPreset resolves a preset by name.
func LookupPreset(name string) (Preset, bool) {
	for _, p := range presets {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}
