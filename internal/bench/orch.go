package bench

import (
	"strconv"
	"strings"

	"inplace/internal/benchfmt"
	"inplace/internal/stats"
)

// The orchestrator runner behind cmd/benchorch: enumerate a preset's
// micro matrix, measure every case with the tuner's robust timing loop,
// capture the preset's registry experiments as series, and return the
// versioned envelope.

// RunPreset executes preset p with the given seed and returns the
// report. match filters case and experiment-series names (nil = run
// everything); progress, when non-nil, is called with each case name
// before it is measured so CLIs can narrate long runs.
func RunPreset(p Preset, seed int64, match func(string) bool, progress func(string)) benchfmt.Report {
	if match == nil {
		match = func(string) bool { return true }
	}
	if progress == nil {
		progress = func(string) {}
	}
	rep := benchfmt.New(p.Name, p.Reps, seed)
	opts := p.MeasureOpts()
	for _, c := range MicroMatrix(p.Scale, p.Workers, p.BudgetDivs) {
		if !match(c.Name) {
			continue
		}
		progress(c.Name)
		rep.Experiments = append(rep.Experiments, MeasureMicro(c, opts))
	}
	cfg := Config{Scale: p.Scale, Seed: seed}
	for _, id := range p.Experiments {
		exp := MustGet(id)
		for _, res := range exp.Run(cfg) {
			name := "exp:" + id + ":" + res.Name
			if res.CSV == "" || !match(name) {
				continue
			}
			if e, ok := seriesExperiment(name, exp, res.CSV); ok {
				progress(name)
				rep.Experiments = append(rep.Experiments, e)
			}
		}
	}
	return rep
}

// seriesExperiment converts one experiment Result's CSV into an envelope
// entry: every measured (non-axis) column becomes a series whose samples
// are the column values. Axis columns — the seeded workload inputs named
// by the registry descriptor — are identification, not measurement, so
// they are skipped.
func seriesExperiment(name string, exp Experiment, csv string) (benchfmt.Experiment, bool) {
	header, cols, ok := parseCSV(csv)
	if !ok {
		return benchfmt.Experiment{}, false
	}
	axis := make(map[string]bool, len(exp.Axes))
	for _, a := range exp.Axes {
		axis[a] = true
	}
	e := benchfmt.Experiment{Name: name, Kind: benchfmt.KindSeries}
	for i, col := range header {
		if axis[col] || len(cols[i]) == 0 {
			continue
		}
		e.Series = append(e.Series, benchfmt.Series{
			Name:           col,
			Unit:           exp.Unit,
			HigherIsBetter: exp.Unit == "GB/s",
			Samples:        cols[i],
			Summary:        stats.Summarize(cols[i]),
		})
	}
	return e, len(e.Series) > 0
}

// parseCSV parses the harness's own CSV rendering (header line, float
// rows) into per-column sample slices.
func parseCSV(csv string) (header []string, cols [][]float64, ok bool) {
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 2 {
		return nil, nil, false
	}
	header = strings.Split(lines[0], ",")
	cols = make([][]float64, len(header))
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return nil, nil, false
		}
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, nil, false
			}
			cols[i] = append(cols[i], v)
		}
	}
	return header, cols, true
}
