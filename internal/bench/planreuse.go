package bench

import (
	"fmt"

	"inplace"
)

func init() {
	Register(Experiment{
		ID: "planreuse", Title: "warm vs cold Planner throughput over the AoS workload",
		Axes: []string{"count", "fields"}, Unit: "GB/s", Series: []string{"planreuse"},
		Run: PlanReuse,
	})
}

// PlanReuse measures the Planner API's amortization claim over the
// AoS-like workload where planning cost matters most: for each sampled
// shape, the same transpose runs cold (a fresh Planner per call, putting
// the schedule construction, scratch allocation and cycle decomposition
// on the critical path) and warm (one prebuilt Planner executed
// repeatedly, which after warm-up allocates nothing). Reported is the
// per-shape throughput pair and the distribution of warm/cold speedups.
func PlanReuse(cfg Config) []Result {
	samples, fieldsR, countR := AoSWorkload(cfg.Scale)
	rng := NewRNG(cfg.Seed + 11)
	o := inplace.Options{Workers: cfg.Workers, Method: inplace.SkinnyMethod, Direction: inplace.ForceC2R}
	var speedups []float64
	var csvRows [][]float64
	for s := 0; s < samples; s++ {
		fields := fieldsR.Rand(rng)
		count := countR.Rand(rng)
		data := gridBuf[uint64](count, fields)
		FillSeq(data)

		dCold := Time(func() {
			pl, err := inplace.NewPlanner[uint64](count, fields, o)
			if err != nil {
				panic(err)
			}
			if err := pl.Execute(data); err != nil {
				panic(err)
			}
		})

		pl, err := inplace.NewPlanner[uint64](count, fields, o)
		if err != nil {
			panic(err)
		}
		if err := pl.Execute(data); err != nil { // warm the arena
			panic(err)
		}
		dWarm := Time(func() {
			if err := pl.Execute(data); err != nil {
				panic(err)
			}
		})

		cold := ThroughputGBps(count, fields, 8, dCold)
		warm := ThroughputGBps(count, fields, 8, dWarm)
		speedups = append(speedups, warm/cold)
		csvRows = append(csvRows, []float64{float64(count), float64(fields), cold, warm})
	}
	_, max := MinMax(speedups)
	text := RenderHistogram("PlanReuse: warm/cold Planner speedup [x]", speedups, 0, max*1.05+1e-9, 20, 40)
	text += fmt.Sprintf("\nmedian warm/cold speedup: %.2fx over %d AoS-like shapes\n",
		Median(speedups), samples)
	return []Result{{
		Name: "planreuse",
		Text: text,
		CSV:  CSV([]string{"count", "fields", "cold_gbps", "warm_gbps"}, csvRows),
	}}
}
