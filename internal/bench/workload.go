package bench

import (
	"math/rand"
	"time"
)

// ThroughputGBps implements Equation 37: an ideal transpose reads and
// writes every element once, so throughput = 2*m*n*elemSize / time.
func ThroughputGBps(m, n, elemSize int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	bytes := 2 * float64(m) * float64(n) * float64(elemSize)
	return bytes / d.Seconds() / 1e9
}

// Time runs f once and returns its wall-clock duration.
func Time(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// Scale selects a workload size preset. The paper's exact ranges are
// impractical on a laptop-class host (hundreds of megabytes per sample,
// thousands of samples), so the default preset shrinks the ranges while
// preserving the comparisons; PaperScale reproduces the published ranges.
type Scale int

// Workload presets.
const (
	// TinyScale is for harness self-tests.
	TinyScale Scale = iota
	// SmallScale is the default laptop-class preset: matrices beyond a
	// typical 8–32 MB last-level cache.
	SmallScale
	// LargeScale uses matrices of hundreds of megabytes — past even very
	// large (virtualized) last-level caches — with fewer samples. The
	// out-of-cache comparisons of Figures 3 and 6 need this scale on
	// hosts with unusually big caches.
	LargeScale
	// PaperScale uses the ranges from the paper's evaluation.
	PaperScale
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case TinyScale:
		return "tiny"
	case SmallScale:
		return "small"
	case LargeScale:
		return "large"
	case PaperScale:
		return "paper"
	default:
		return "Scale(?)"
	}
}

// ParseScale maps a flag value to a Scale.
func ParseScale(s string) (Scale, bool) {
	switch s {
	case "tiny":
		return TinyScale, true
	case "small", "":
		return SmallScale, true
	case "large":
		return LargeScale, true
	case "paper":
		return PaperScale, true
	default:
		return SmallScale, false
	}
}

// SizeRange is a half-open interval of matrix dimensions.
type SizeRange struct{ Lo, Hi int }

// Rand draws a dimension uniformly from the range.
func (r SizeRange) Rand(rng *rand.Rand) int {
	if r.Hi <= r.Lo+1 {
		return r.Lo
	}
	return r.Lo + rng.Intn(r.Hi-r.Lo)
}

// Workload describes one experiment's sampling plan.
type Workload struct {
	Samples int
	Dim     SizeRange // both m and n drawn from this range
}

// CPUWorkload returns the Figure 3 / Table 1 sampling plan: the paper
// used 1000 matrices with m, n ∈ [1000, 10000).
func CPUWorkload(s Scale) Workload {
	switch s {
	case TinyScale:
		return Workload{Samples: 6, Dim: SizeRange{16, 64}}
	case LargeScale:
		return Workload{Samples: 14, Dim: SizeRange{4000, 9000}}
	case PaperScale:
		return Workload{Samples: 1000, Dim: SizeRange{1000, 10000}}
	default:
		return Workload{Samples: 60, Dim: SizeRange{1000, 2500}}
	}
}

// GPUWorkload returns the Figure 6 / Table 2 sampling plan: the paper
// used matrices with m, n ∈ [1000, 20000).
func GPUWorkload(s Scale) Workload {
	switch s {
	case TinyScale:
		return Workload{Samples: 6, Dim: SizeRange{16, 64}}
	case LargeScale:
		return Workload{Samples: 12, Dim: SizeRange{5000, 11000}}
	case PaperScale:
		return Workload{Samples: 2500, Dim: SizeRange{1000, 20000}}
	default:
		return Workload{Samples: 48, Dim: SizeRange{1000, 3000}}
	}
}

// LandscapeGrid returns the Figure 4/5 sweep grid: the paper sampled
// m, n ∈ [1000, 25000].
func LandscapeGrid(s Scale) []int {
	switch s {
	case TinyScale:
		return []int{16, 32, 64}
	case LargeScale:
		return []int{512, 1024, 1536, 2048, 2560, 3072, 3584, 4096}
	case PaperScale:
		g := make([]int, 0, 25)
		for d := 1000; d <= 25000; d += 1000 {
			g = append(g, d)
		}
		return g
	default:
		return []int{128, 192, 256, 384, 512, 640, 768, 896, 1024, 1280, 1536, 1792}
	}
}

// AoSWorkload returns the Figure 7 sampling plan: structure sizes in
// [2, 32) elements and structure counts in [1e4, 1e7).
func AoSWorkload(s Scale) (samples int, fields SizeRange, count SizeRange) {
	switch s {
	case TinyScale:
		return 6, SizeRange{2, 8}, SizeRange{256, 1024}
	case LargeScale:
		return 20, SizeRange{2, 32}, SizeRange{500_000, 4_000_000}
	case PaperScale:
		return 10000, SizeRange{2, 32}, SizeRange{10_000, 10_000_000}
	default:
		return 160, SizeRange{2, 32}, SizeRange{50_000, 500_000}
	}
}

// FillSeq fills data with a deterministic non-repeating pattern.
func FillSeq[T ~uint32 | ~uint64 | ~float32 | ~float64](data []T) {
	for i := range data {
		data[i] = T(i)
	}
}

// NewRNG returns the experiment RNG for a given experiment id, so every
// experiment is reproducible independently.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
