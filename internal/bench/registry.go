package bench

import (
	"fmt"
	"sort"
)

// The experiment registry. Each experiment file registers a
// self-describing descriptor from its init function — id, title, the
// workload axes its series sweep, the unit of the measured values, the
// Result names it emits and whether the output is fully deterministic —
// so cmd/benchsuite and cmd/benchorch can enumerate, select and diff
// experiments without hard-coding what each one produces.

// Experiment describes one registered experiment.
type Experiment struct {
	// ID is the experiment's stable identifier (the -run token).
	ID string
	// Title is a one-line description for listings.
	Title string
	// Axes names the workload-input columns of the emitted CSVs (the
	// swept parameters, e.g. "m", "n"). Axis columns are seeded-RNG
	// deterministic; the remaining columns are measurements.
	Axes []string
	// Unit is the unit of the measured series ("" for demos).
	Unit string
	// Series lists the Result names the experiment emits, in order.
	Series []string
	// Deterministic marks experiments whose full output (text and CSV)
	// is a pure function of Config — models and simulators, not
	// wall-clock measurements.
	Deterministic bool
	// Run executes the experiment.
	Run func(Config) []Result
}

var (
	registry = map[string]Experiment{}
	// paperOrder fixes the enumeration order: the paper's artifact order
	// followed by this implementation's own experiments.
	paperOrder = []string{
		"fig1", "fig2", "fig3", "table1", "fig4", "fig5",
		"fig6", "table2", "fig7", "fig8", "fig9", "locality", "gpusim",
		"planreuse", "tuned", "ooc", "permute", "tilestore",
	}
)

// Register adds e to the registry. It panics on invalid or duplicate
// descriptors — registration happens from init functions, so a broken
// descriptor is a programming error, not a runtime condition.
func Register(e Experiment) {
	switch {
	case e.ID == "":
		panic("bench: Register with empty ID")
	case e.Run == nil:
		panic("bench: Register " + e.ID + " with nil Run")
	case e.Title == "":
		panic("bench: Register " + e.ID + " with empty Title")
	case len(e.Series) == 0:
		panic("bench: Register " + e.ID + " with no Series")
	}
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the descriptor registered under id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment in paper order; experiments
// outside the canonical order (none today) sort after it by id.
func All() []Experiment {
	rank := make(map[string]int, len(paperOrder))
	for i, id := range paperOrder {
		rank[id] = i
	}
	es := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		ri, iKnown := rank[es[i].ID]
		rj, jKnown := rank[es[j].ID]
		switch {
		case iKnown && jKnown:
			return ri < rj
		case iKnown:
			return true
		case jKnown:
			return false
		default:
			return es[i].ID < es[j].ID
		}
	})
	return es
}

// IDs returns the registered experiment ids in enumeration order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// MustGet returns the descriptor for id, panicking on unknown ids; the
// orchestrator uses it for preset-listed experiments that must exist.
func MustGet(id string) Experiment {
	e, ok := registry[id]
	if !ok {
		panic(fmt.Sprintf("bench: unknown experiment %q", id))
	}
	return e
}
