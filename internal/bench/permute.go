package bench

import (
	"fmt"

	"inplace"
	"inplace/internal/mathutil"
)

func init() {
	Register(Experiment{
		ID: "permute", Title: "NHWC↔NCHW axis-permutation throughput sweep",
		Axes: []string{"n", "h", "w", "c"}, Unit: "GB/s", Series: []string{"permute"},
		Run: Permute,
	})
}

// permuteShapes fixes the NHWC sweep per scale. The lists are literal —
// no RNG — so the axis columns are identical across seeds and runs and
// two envelopes compare series point by point.
func permuteShapes(scale Scale) [][4]int {
	switch scale {
	case TinyScale:
		return [][4]int{{2, 8, 8, 4}, {2, 6, 6, 8}}
	case LargeScale, PaperScale:
		return [][4]int{{8, 64, 64, 16}, {16, 48, 48, 32}, {4, 128, 128, 8}, {8, 96, 96, 24}}
	default: // SmallScale
		return [][4]int{{4, 32, 32, 8}, {8, 16, 16, 16}, {2, 64, 64, 4}, {16, 24, 24, 12}}
	}
}

// Permute measures the rank-generic PermuteAxes on the tensor-layout
// workload the ROADMAP names as the gateway scenario: NHWC→NCHW and the
// inverse NCHW→NHWC, per shape, with warm planners (the canonical form
// collapses H·W, so each direction is one batched 2D pass — the
// experiment is the paper's three-pass engine driven through the rank-4
// API). Reported per shape is the throughput of both directions.
func Permute(cfg Config) []Result {
	o := inplace.Options{Workers: cfg.Workers}
	var csvRows [][]float64
	text := "Permute: NHWC<->NCHW via PermuteAxes (warm planners, uint32 elements)\n"
	for _, sh := range permuteShapes(cfg.Scale) {
		n, h, w, c := sh[0], sh[1], sh[2], sh[3]
		nhwc := []int{n, h, w, c}
		nchw := []int{n, c, h, w}
		fwd, err := inplace.NewPermutePlanner[uint32](nhwc, []int{0, 3, 1, 2}, o)
		if err != nil {
			panic(err)
		}
		inv, err := inplace.NewPermutePlanner[uint32](nchw, []int{0, 2, 3, 1}, o)
		if err != nil {
			panic(err)
		}
		nh, ok1 := mathutil.CheckedMul(n, h)
		wc, ok2 := mathutil.CheckedMul(w, c)
		size, ok3 := mathutil.CheckedMul(nh, wc)
		if !ok1 || !ok2 || !ok3 {
			panic("bench: permute shape overflows int")
		}
		data := make([]uint32, size)
		FillSeq(data)
		// Warm both arenas; the pair of executions is also the round trip
		// that returns the buffer to NHWC for the timed runs.
		if err := fwd.Execute(data); err != nil {
			panic(err)
		}
		if err := inv.Execute(data); err != nil {
			panic(err)
		}
		dFwd := Time(func() {
			if err := fwd.Execute(data); err != nil {
				panic(err)
			}
		})
		dInv := Time(func() {
			if err := inv.Execute(data); err != nil {
				panic(err)
			}
		})
		fwdG := ThroughputGBps(n*h*w, c, 4, dFwd)
		invG := ThroughputGBps(n*h*w, c, 4, dInv)
		text += fmt.Sprintf("  %dx%dx%dx%d  fwd %6.2f GB/s  inv %6.2f GB/s  (%s)\n",
			n, h, w, c, fwdG, invG, fwd.Plan().Strategy())
		csvRows = append(csvRows, []float64{
			float64(n), float64(h), float64(w), float64(c), fwdG, invG,
		})
	}
	return []Result{{
		Name: "permute",
		Text: text,
		CSV:  CSV([]string{"n", "h", "w", "c", "fwd_gbps", "inv_gbps"}, csvRows),
	}}
}
