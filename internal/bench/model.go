package bench

import (
	"fmt"

	"inplace/internal/gpumodel"
)

// Modeled companions to the measured experiments: the analytic K20c
// model (internal/gpumodel) regenerates the paper's landscapes and
// medians at the published ranges, independent of the benchmark host.

// modeledLandscape renders the Figure 4/5 landscape from the analytic
// model over the paper's full [1000, 25000] grid.
func modeledLandscape(name, title string, useC2R bool) Result {
	dev := gpumodel.K20c()
	var dims []int
	for d := 1000; d <= 25000; d += 2000 {
		dims = append(dims, d)
	}
	grid := make([][]float64, len(dims))
	var rows [][]float64
	for i, m := range dims {
		grid[i] = make([]float64, len(dims))
		for j, n := range dims {
			v := dev.Estimate(m, n, 8, useC2R)
			grid[i][j] = v
			rows = append(rows, []float64{float64(m), float64(n), v})
		}
	}
	return Result{
		Name: name,
		Text: RenderHeatmap(title, dims, dims, grid),
		CSV:  CSV([]string{"m", "n", "gbps"}, rows),
	}
}

// modeledTable2 summarizes the analytic model over the paper's Figure 6
// workload.
func modeledTable2(cfg Config) string {
	dev := gpumodel.K20c()
	rng := NewRNG(cfg.Seed + 62)
	var double, float []float64
	for s := 0; s < 800; s++ {
		m := 1000 + rng.Intn(19000)
		n := 1000 + rng.Intn(19000)
		double = append(double, dev.EstimateHeuristic(m, n, 8))
		float = append(float, dev.EstimateHeuristic(m, n, 4))
	}
	return fmt.Sprintf(
		"Analytic K20c model over the paper's ranges: C2R (float) median %.1f GB/s (paper 14.23), C2R (double) median %.1f GB/s (paper 19.53)\n",
		Median(float), Median(double))
}

// modeledFig7 summarizes the analytic skinny model over the paper's
// Figure 7 workload.
func modeledFig7(cfg Config) string {
	dev := gpumodel.K20c()
	rng := NewRNG(cfg.Seed + 71)
	var tps []float64
	for s := 0; s < 2000; s++ {
		fields := 2 + rng.Intn(30)
		count := 10_000 + rng.Intn(9_990_000)
		tps = append(tps, dev.EstimateSkinny(count, fields, 8))
	}
	return fmt.Sprintf(
		"Analytic K20c model over the paper's ranges: median %.1f GB/s (paper 34.3), fast cache-resident regime %.1f GB/s (paper max 51)\n",
		Median(tps), dev.EstimateSkinny(12_000, 12, 8))
}
