package bench

import (
	"fmt"
	"strings"

	"inplace/internal/baseline"
	"inplace/internal/cachesim"
)

func init() {
	Register(Experiment{
		ID: "locality", Title: "modeled DRAM line traffic per element",
		Axes: []string{"m", "n"}, Unit: "miss/elem", Series: []string{"locality"},
		Deterministic: true,
		Run:           Locality,
	})
}

// Locality replays the address traces of the transposition algorithms
// through a set-associative LRU cache model and reports DRAM line
// traffic (misses) per element. This is the architecture-independent
// form of the paper's Table 1/Table 2 argument: traditional cycle
// following touches one line per element at random, while the
// decomposition's passes stream whole lines, so the decomposition causes
// a fraction of the traffic even though it moves each element three
// times. The numbers are fully deterministic.
func Locality(cfg Config) []Result {
	type shape struct{ m, n int }
	shapes := []shape{{640, 544}, {1000, 1024}, {997, 1021}} // composite, pow2-ish, prime
	if cfg.Scale == TinyScale {
		shapes = shapes[:1]
	}
	const elemBytes = 8
	const cacheKB, lineB, ways = 512, 64, 8

	var b strings.Builder
	fmt.Fprintf(&b, "Locality model: DRAM line traffic per element (%dKB %d-way cache, %dB lines)\n",
		cacheKB, ways, lineB)
	fmt.Fprintf(&b, "%12s %14s %14s %14s %10s\n", "shape", "cycle-follow", "decomposed", "sung-style", "cf/c2r")
	var rows [][]float64
	for _, sh := range shapes {
		elems := float64(sh.m * sh.n)

		cf := cachesim.New(cacheKB<<10, lineB, ways)
		cachesim.TraceCycleFollow(cf, sh.m, sh.n, elemBytes)
		_, cfMiss, _ := cf.Stats()

		c2r := cachesim.New(cacheKB<<10, lineB, ways)
		cachesim.TraceC2R(c2r, sh.m, sh.n, elemBytes, 8)
		_, c2rMiss, _ := c2r.Stats()

		sung := cachesim.New(cacheKB<<10, lineB, ways)
		a := baseline.TileDim(sh.m, 72)
		cachesim.TraceSung(sung, sh.m, sh.n, elemBytes, a)
		_, sungMiss, _ := sung.Stats()

		fmt.Fprintf(&b, "%12s %14.3f %14.3f %14.3f %10.2fx\n",
			fmt.Sprintf("%dx%d", sh.m, sh.n),
			float64(cfMiss)/elems, float64(c2rMiss)/elems, float64(sungMiss)/elems,
			float64(cfMiss)/float64(c2rMiss))
		rows = append(rows, []float64{float64(sh.m), float64(sh.n),
			float64(cfMiss) / elems, float64(c2rMiss) / elems, float64(sungMiss) / elems})
	}
	b.WriteString("\nLower is better. The decomposition's streamed passes cause roughly half\n")
	b.WriteString("the traffic of cycle following on every shape, despite touching each\n")
	b.WriteString("element three times. The Sung-style tiled transposition is efficient on\n")
	b.WriteString("conveniently factorable shapes but collapses to element-wise cycle\n")
	b.WriteString("following on awkward (e.g. prime) dimensions — the behaviour behind the\n")
	b.WriteString("paper's Figure 6 — while the decomposition is shape-insensitive.\n")
	return []Result{{
		Name: "locality",
		Text: b.String(),
		CSV:  CSV([]string{"m", "n", "cf_miss_per_elem", "c2r_miss_per_elem", "sung_miss_per_elem"}, rows),
	}}
}
