package bench

import (
	"math"
	"strings"
	"testing"
	"time"

	"inplace/internal/simd"
)

func TestMedianAndPercentiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Median(xs) != 3 {
		t.Fatalf("median = %f", Median(xs))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("percentile endpoints wrong")
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Fatalf("interpolated median = %f", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("median of empty must be NaN")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("mean of empty must be NaN")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax = %f %f", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatal("minmax of empty must be NaN")
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0, 0.5, 1.5, 2.5, 9.9, -5, 50}, 0, 10, 10)
	if counts[0] != 3 { // 0, 0.5 and clamped -5
		t.Fatalf("bin0 = %d", counts[0])
	}
	if counts[9] != 2 { // 9.9 and clamped 50
		t.Fatalf("bin9 = %d", counts[9])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 7 {
		t.Fatalf("total = %d", total)
	}
}

func TestThroughputEquation37(t *testing.T) {
	// 2*m*n*s bytes per transpose: 1000x1000x8B in 16ms = 1 GB/s.
	got := ThroughputGBps(1000, 1000, 8, 16*time.Millisecond)
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("throughput = %f, want 1.0", got)
	}
	if ThroughputGBps(10, 10, 8, 0) != 0 {
		t.Fatal("zero duration must yield 0")
	}
}

func TestScaleParsing(t *testing.T) {
	for s, want := range map[string]Scale{"tiny": TinyScale, "small": SmallScale, "paper": PaperScale, "": SmallScale} {
		got, ok := ParseScale(s)
		if !ok || got != want {
			t.Fatalf("ParseScale(%q) = %v,%v", s, got, ok)
		}
	}
	if _, ok := ParseScale("bogus"); ok {
		t.Fatal("bogus scale must fail")
	}
	for _, s := range []Scale{TinyScale, SmallScale, PaperScale} {
		if s.String() == "Scale(?)" {
			t.Fatal("scale has no name")
		}
	}
}

func TestWorkloadPresets(t *testing.T) {
	for _, s := range []Scale{TinyScale, SmallScale, PaperScale} {
		if w := CPUWorkload(s); w.Samples <= 0 || w.Dim.Lo <= 0 || w.Dim.Hi <= w.Dim.Lo {
			t.Fatalf("cpu workload %v invalid: %+v", s, w)
		}
		if w := GPUWorkload(s); w.Samples <= 0 {
			t.Fatalf("gpu workload %v invalid", s)
		}
		if g := LandscapeGrid(s); len(g) < 3 {
			t.Fatalf("landscape grid %v too small", s)
		}
		if n, f, c := AoSWorkload(s); n <= 0 || f.Lo < 2 || c.Lo <= 0 {
			t.Fatalf("aos workload %v invalid", s)
		}
	}
	// Paper preset must match the published ranges.
	if w := CPUWorkload(PaperScale); w.Samples != 1000 || w.Dim.Lo != 1000 || w.Dim.Hi != 10000 {
		t.Fatalf("paper cpu workload wrong: %+v", w)
	}
}

func TestSizeRangeRand(t *testing.T) {
	rng := NewRNG(1)
	r := SizeRange{10, 20}
	for i := 0; i < 100; i++ {
		v := r.Rand(rng)
		if v < 10 || v >= 20 {
			t.Fatalf("rand size %d out of range", v)
		}
	}
	if (SizeRange{5, 5}).Rand(rng) != 5 {
		t.Fatal("degenerate range must return Lo")
	}
}

// The figure demos must verify their own output.
func TestFig1SelfCheck(t *testing.T) {
	res := Fig1(Config{})
	if len(res) != 1 || !strings.Contains(res[0].Text, "matches the paper's right-hand matrix: true") {
		t.Fatalf("fig1 self-check failed:\n%s", res[0].Text)
	}
	if !strings.Contains(res[0].Text, "restored: true") {
		t.Fatalf("fig1 round trip failed:\n%s", res[0].Text)
	}
}

func TestFig2SelfCheck(t *testing.T) {
	res := Fig2(Config{})
	if len(res) != 1 || !strings.Contains(res[0].Text, "matches out-of-place transpose: true") {
		t.Fatalf("fig2 self-check failed:\n%s", res[0].Text)
	}
	// The published intermediate states, drawn column-major:
	// after rotation the first column is 0,1,2,3 and the third 9,10,11,8.
	if !strings.Contains(res[0].Text, "9\t13\t18\t22\t27\t31") {
		t.Fatalf("fig2 rotation stage does not match the paper:\n%s", res[0].Text)
	}
}

// Every registered experiment must run at tiny scale and produce
// non-empty text.
func TestAllExperimentsTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short")
	}
	cfg := Config{Scale: TinyScale, Workers: 2, Seed: 1}
	for _, e := range All() {
		results := e.Run(cfg)
		if len(results) == 0 {
			t.Fatalf("experiment %q produced no results", e.ID)
		}
		for _, r := range results {
			if r.Name == "" || r.Text == "" {
				t.Fatalf("experiment %q produced empty result", e.ID)
			}
		}
	}
}

// The Figure 8 model must preserve the paper's headline shape: C2R
// sustains near-model-peak bandwidth at every structure size while
// direct access degrades markedly by 64 bytes.
func TestFig8Shape(t *testing.T) {
	cfg := Config{Scale: SmallScale, Seed: 1}
	words, stores := simdSeries(cfg, opStore, patternUnitStride)
	last := len(words) - 1
	c2r := stores[simd.AccessC2R][last]
	direct := stores[simd.AccessDirect][last]
	if c2r < 150 {
		t.Fatalf("C2R store bandwidth %f too low", c2r)
	}
	if ratio := c2r / direct; ratio < 8 {
		t.Fatalf("C2R/direct store ratio %f too small for 64B structs", ratio)
	}
}

func TestRenderHelpers(t *testing.T) {
	h := RenderHistogram("t", []float64{1, 2, 3}, 0, 4, 4, 10)
	if !strings.Contains(h, "median=2") {
		t.Fatalf("histogram missing median: %s", h)
	}
	hm := RenderHeatmap("t", []int{1, 2}, []int{3, 4}, [][]float64{{1, 2}, {3, 4}})
	if !strings.Contains(hm, "m \\ n") {
		t.Fatalf("heatmap missing axes: %s", hm)
	}
	tb := RenderTable("t", []Row{{Label: "a", Value: 1.5, Unit: "GB/s"}})
	if !strings.Contains(tb, "1.500 GB/s") {
		t.Fatalf("table missing row: %s", tb)
	}
	csv := CSV([]string{"a", "b"}, [][]float64{{1, 2}})
	if csv != "a,b\n1,2\n" {
		t.Fatalf("csv wrong: %q", csv)
	}
}
