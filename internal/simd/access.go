package simd

import (
	"inplace/internal/cr"
	"inplace/internal/mathutil"
	"inplace/internal/memsim"
)

// Array-of-Structures access strategies (§6.2, Figures 8–9). Each
// strategy makes every lane of the warp load or store one K-word
// structure, identified by a per-lane structure index (unit-stride
// accesses use consecutive indices; random accesses arbitrary ones).
// After a load, register r of lane l holds word r of lane l's structure;
// stores write from the same layout.
//
//   - Coalesced*: the paper's mechanism. The warp reads/writes the
//     structures' words in K coalesced row passes (lane l covering word
//     r*W+l of the warp's 32×K-word working set, so consecutive lanes
//     touch consecutive words) and transposes in registers with
//     R2C/C2R. Structure indices are exchanged between lanes with one
//     shuffle per pass.
//   - Direct*: compiler-generated element-wise access. Lane l walks its
//     own structure a word at a time: addresses within one instruction
//     are strided by K words, destroying coalescing as K grows.
//   - Vector*: the hardware's fixed 128-bit vector loads/stores. Halves
//     the instruction count of Direct but keeps the stride.
type AccessKind int

// Access strategy identifiers used by the benchmark harness.
const (
	AccessC2R AccessKind = iota
	AccessDirect
	AccessVector
)

// String names the access kind as in the paper's figure legends.
func (k AccessKind) String() string {
	switch k {
	case AccessC2R:
		return "C2R"
	case AccessDirect:
		return "Direct"
	case AccessVector:
		return "Vector"
	default:
		return "Access(?)"
	}
}

// CoalescedLoad loads idx[l]'s structure into lane l via coalesced row
// passes followed by the in-register R2C transpose. idx must have W
// entries; data is a word-addressed AoS buffer of K-word structures.
//
//xpose:hotpath
func CoalescedLoad(w *Warp, p *cr.Plan, data []uint64, idx []int) {
	K, W := w.K, w.W
	divK := mathutil.NewDivider(K)
	for r := 0; r < K; r++ {
		base := r * W
		w.LoadRow(r, data, func(l int) int {
			v := base + l // virtual word within the warp's working set
			q, rem := divK.DivMod(v)
			return idx[q]*K + rem
		})
		w.mem.ALU(1) // index exchange shuffle for this pass
	}
	R2CRegisters(w, p)
}

// CoalescedStore stores lane l's structure to idx[l] via the in-register
// C2R transpose followed by coalesced row passes.
//
//xpose:hotpath
func CoalescedStore(w *Warp, p *cr.Plan, data []uint64, idx []int) {
	K, W := w.K, w.W
	divK := mathutil.NewDivider(K)
	C2RRegisters(w, p)
	for r := 0; r < K; r++ {
		base := r * W
		w.StoreRow(r, data, func(l int) int {
			v := base + l
			q, rem := divK.DivMod(v)
			return idx[q]*K + rem
		})
		w.mem.ALU(1)
	}
	// Restore the lane-held layout so repeated stores observe the same
	// register state (the hardware equivalent keeps values in registers;
	// the cost of the restore is not charged).
	restore(w, p)
}

// DirectLoad loads each lane's structure with per-element accesses:
// one warp instruction per structure word, addresses strided by K words.
func DirectLoad(w *Warp, data []uint64, idx []int) {
	for r := 0; r < w.K; r++ {
		r := r
		w.LoadRow(r, data, func(l int) int { return idx[l]*w.K + r })
	}
}

// DirectStore stores each lane's structure with per-element accesses.
func DirectStore(w *Warp, data []uint64, idx []int) {
	for r := 0; r < w.K; r++ {
		r := r
		w.StoreRow(r, data, func(l int) int { return idx[l]*w.K + r })
	}
}

// VectorLoad loads each lane's structure with 128-bit vector accesses,
// plus one trailing 64-bit access when K is odd.
func VectorLoad(w *Warp, data []uint64, idx []int) {
	r := 0
	for ; r+1 < w.K; r += 2 {
		r := r
		w.LoadRowVector(r, data, func(l int) int { return idx[l]*w.K + r })
	}
	if r < w.K {
		r := r
		w.LoadRow(r, data, func(l int) int { return idx[l]*w.K + r })
	}
}

// VectorStore stores each lane's structure with 128-bit vector accesses.
func VectorStore(w *Warp, data []uint64, idx []int) {
	r := 0
	for ; r+1 < w.K; r += 2 {
		r := r
		w.StoreRowVector(r, data, func(l int) int { return idx[l]*w.K + r })
	}
	if r < w.K {
		r := r
		w.StoreRow(r, data, func(l int) int { return idx[l]*w.K + r })
	}
}

// restore undoes C2RRegisters without charging instructions, used to keep
// register state consistent across repeated modeled stores.
func restore(w *Warp, p *cr.Plan) {
	saved := w.mem
	w.mem = memsim.New(saved.Config())
	R2CRegisters(w, p)
	w.mem = saved
}
