// Package simd simulates the SIMD processor of the paper's Section 6: a
// warp of W lanes, each holding K registers, with a lane-shuffle
// instruction, a select-based branch-free barrel rotator, and
// compile-time register renaming. The in-register C2R/R2C transposes
// built from these primitives let the warp perform arbitrary-length
// vector (Array-of-Structures) memory accesses at full coalescing
// efficiency, without any on-chip scratch memory — the paper's
// coalesced_ptr<T> mechanism.
//
// The simulator moves real data (so every transpose is checkable
// element-for-element) while charging each primitive's instruction and
// memory-transaction cost to a memsim.Memory, from which the Figure 8–9
// bandwidth model is derived.
package simd

import (
	"fmt"

	"inplace/internal/memsim"
)

// Warp models W SIMD lanes with K registers each. Register r of lane l is
// regs[r][l]: the register file is a K×W array, on which row operations
// are lane shuffles and column operations are lane-local register moves —
// exactly the correspondence §6.2 exploits.
type Warp struct {
	W, K int
	regs [][]uint64
	mem  *memsim.Memory

	// scratch
	addrs []int64
	tmp   []uint64
}

// NewWarp creates a warp of w lanes with k registers per lane, charging
// costs to mem.
func NewWarp(w, k int, mem *memsim.Memory) *Warp {
	if w <= 0 || k <= 0 {
		panic("simd: warp dimensions must be positive")
	}
	regs := make([][]uint64, k)
	for r := range regs {
		regs[r] = make([]uint64, w)
	}
	return &Warp{W: w, K: k, regs: regs, mem: mem, addrs: make([]int64, w), tmp: make([]uint64, w)}
}

// Mem returns the memory model the warp charges to.
func (w *Warp) Mem() *memsim.Memory { return w.mem }

// Reg returns register r as a slice indexed by lane (shared storage).
func (w *Warp) Reg(r int) []uint64 { return w.regs[r] }

// Set writes v into register r of lane l without charging instructions
// (test setup).
func (w *Warp) Set(r, l int, v uint64) { w.regs[r][l] = v }

// Get reads register r of lane l without charging instructions.
func (w *Warp) Get(r, l int) uint64 { return w.regs[r][l] }

// Shfl performs the warp shuffle on register r: afterwards lane l holds
// the value lane src(l) held before. One warp instruction plus idxCost
// instructions for computing the source lane indices.
func (w *Warp) Shfl(r int, src func(lane int) int, idxCost int) {
	row := w.regs[r]
	copy(w.tmp, row)
	for l := 0; l < w.W; l++ {
		s := src(l)
		if s < 0 || s >= w.W {
			panic(fmt.Sprintf("simd: shuffle source %d out of range", s))
		}
		row[l] = w.tmp[s]
	}
	w.mem.ALU(1 + idxCost)
}

// RotateLanes rotates each lane's register column up by a lane-dependent
// amount: afterwards register r of lane l holds what register
// (r + amount(l)) mod K held before. The rotation is performed as a
// branch-free barrel rotator (§6.2.2): ceil(log2 K) static steps, each
// conditionally moving all K registers with select instructions, so
// divergent per-lane amounts cost no serialization. Charges
// K·ceil(log2 K) selects plus one instruction for the amount computation.
func (w *Warp) RotateLanes(amount func(lane int) int) {
	if w.K == 1 {
		return
	}
	steps := 0
	for s := 1; s < w.K; s <<= 1 {
		steps++
	}
	// Simulate the result exactly; the barrel decomposition is
	// value-equivalent to a single rotation per lane.
	col := make([]uint64, w.K)
	for l := 0; l < w.W; l++ {
		amt := amount(l) % w.K
		if amt < 0 {
			amt += w.K
		}
		for r := 0; r < w.K; r++ {
			col[r] = w.regs[(r+amt)%w.K][l]
		}
		for r := 0; r < w.K; r++ {
			w.regs[r][l] = col[r]
		}
	}
	w.mem.ALU(w.K*steps + 1)
}

// RenameRows applies a static register renaming (§6.2.3): afterwards
// register r holds what register perm(r) held before, identically in
// every lane. Performed by the compiler in the original, so it charges
// no instructions.
func (w *Warp) RenameRows(perm func(r int) int) {
	old := make([][]uint64, w.K)
	copy(old, w.regs)
	for r := 0; r < w.K; r++ {
		p := perm(r)
		if p < 0 || p >= w.K {
			panic(fmt.Sprintf("simd: rename source %d out of range", p))
		}
		w.regs[r] = old[p]
	}
}

// LoadRow issues one coalesced warp load into register r: lane l reads
// the 64-bit word at word index addr(l) of data (negative = inactive).
func (w *Warp) LoadRow(r int, data []uint64, addr func(lane int) int) {
	row := w.regs[r]
	for l := 0; l < w.W; l++ {
		a := addr(l)
		if a < 0 {
			w.addrs[l] = -1
			continue
		}
		w.addrs[l] = int64(a) * 8
		row[l] = data[a]
	}
	w.mem.ALU(1) // address computation
	w.mem.Load(w.addrs, 8)
}

// StoreRow issues one coalesced warp store from register r: lane l
// writes its value to word index addr(l) of data (negative = inactive).
func (w *Warp) StoreRow(r int, data []uint64, addr func(lane int) int) {
	row := w.regs[r]
	for l := 0; l < w.W; l++ {
		a := addr(l)
		if a < 0 {
			w.addrs[l] = -1
			continue
		}
		w.addrs[l] = int64(a) * 8
		data[a] = row[l]
	}
	w.mem.ALU(1)
	w.mem.Store(w.addrs, 8)
}

// LoadRowVector issues one warp load of 16-byte vectors: lane l reads
// words addr(l) and addr(l)+1 into registers r and r+1.
func (w *Warp) LoadRowVector(r int, data []uint64, addr func(lane int) int) {
	lo, hi := w.regs[r], w.regs[r+1]
	for l := 0; l < w.W; l++ {
		a := addr(l)
		if a < 0 {
			w.addrs[l] = -1
			continue
		}
		w.addrs[l] = int64(a) * 8
		lo[l] = data[a]
		hi[l] = data[a+1]
	}
	w.mem.ALU(1)
	w.mem.Load(w.addrs, 16)
}

// StoreRowVector issues one warp store of 16-byte vectors from registers
// r and r+1.
func (w *Warp) StoreRowVector(r int, data []uint64, addr func(lane int) int) {
	lo, hi := w.regs[r], w.regs[r+1]
	for l := 0; l < w.W; l++ {
		a := addr(l)
		if a < 0 {
			w.addrs[l] = -1
			continue
		}
		w.addrs[l] = int64(a) * 8
		data[a] = lo[l]
		data[a+1] = hi[l]
	}
	w.mem.ALU(1)
	w.mem.Store(w.addrs, 16)
}
