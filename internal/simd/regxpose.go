package simd

import "inplace/internal/cr"

// In-register C2R and R2C transposes (§6.2). The warp's register file is
// a K×W array (K registers = rows, W lanes = columns): row shuffles map
// to the shfl instruction, dynamic column rotations to the per-lane
// barrel rotator, and the static row permutation to compile-time register
// renaming. No on-chip scratch memory is touched.

// PlanFor returns the decomposition plan for a warp's register array.
func PlanFor(w *Warp) *cr.Plan { return cr.NewPlan(w.K, w.W) }

// shflIdxCost approximates the per-shuffle index arithmetic after the
// §6.2.4 simplifications: with n = W fixed by the architecture and
// m = K static, the d' and d'^{-1} evaluations strength-reduce to a
// couple of multiply-add-select operations per lane.
const shflIdxCost = 2

// C2RRegisters performs the in-place C2R transpose of the K×W register
// array: afterwards the array holds its C2R permutation, i.e. lane-held
// structures become the coalesced row layout. Pass the plan from PlanFor
// (cacheable across calls, as the dimensions are static per §6.2.4).
//
//xpose:hotpath
func C2RRegisters(w *Warp, p *cr.Plan) {
	if p.M != w.K || p.N != w.W {
		panic("simd: plan does not match warp shape")
	}
	if !p.Coprime {
		w.RotateLanes(func(l int) int { return p.Rot(l) })
	}
	for r := 0; r < w.K; r++ {
		r := r
		w.Shfl(r, func(l int) int { return p.DPrimeInv(r, l) }, shflIdxCost)
	}
	w.RotateLanes(func(l int) int { return l })
	w.RenameRows(p.Q)
}

// R2CRegisters performs the in-place R2C transpose of the register
// array, the inverse of C2RRegisters: a coalesced row layout becomes
// lane-held structures.
//
//xpose:hotpath
func R2CRegisters(w *Warp, p *cr.Plan) {
	if p.M != w.K || p.N != w.W {
		panic("simd: plan does not match warp shape")
	}
	w.RenameRows(p.QInv)
	w.RotateLanes(func(l int) int { return -l })
	for r := 0; r < w.K; r++ {
		r := r
		w.Shfl(r, func(l int) int { return p.DPrime(r, l) }, shflIdxCost)
	}
	if !p.Coprime {
		w.RotateLanes(func(l int) int { return -p.Rot(l) })
	}
}
