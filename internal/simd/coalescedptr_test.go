package simd

import (
	"testing"

	"inplace/internal/memsim"
)

func TestCoalescedPtrRoundTrip(t *testing.T) {
	const W, K, structs = 32, 5, 160
	mem := memsim.New(memsim.K20c())
	w := NewWarp(W, K, mem)
	data := make([]uint64, structs*K)
	for i := range data {
		data[i] = uint64(i)
	}
	ptr := NewCoalescedPtr(w, data)
	if ptr.Len() != structs {
		t.Fatalf("Len = %d, want %d", ptr.Len(), structs)
	}

	idx := make([]int, W)
	for l := range idx {
		idx[l] = 3*l + 1 // distinct, strided
	}
	ptr.Load(idx)
	for l := 0; l < W; l++ {
		for r := 0; r < K; r++ {
			if got := w.Get(r, l); got != uint64(idx[l]*K+r) {
				t.Fatalf("load: lane %d reg %d = %d", l, r, got)
			}
		}
	}

	// Modify in registers and store to different slots.
	for l := 0; l < W; l++ {
		for r := 0; r < K; r++ {
			w.Set(r, l, uint64(9000+l*K+r))
		}
	}
	dst := make([]int, W)
	for l := range dst {
		dst[l] = 3*l + 2
	}
	ptr.Store(dst)
	for l := 0; l < W; l++ {
		for r := 0; r < K; r++ {
			if got := data[dst[l]*K+r]; got != uint64(9000+l*K+r) {
				t.Fatalf("store: struct %d word %d = %d", dst[l], r, got)
			}
		}
	}
	// Untouched structures stay intact.
	if data[0] != 0 || data[K*(structs-1)] != uint64(K*(structs-1)) {
		t.Fatal("store disturbed unrelated structures")
	}
}

func TestCoalescedPtrEfficiency(t *testing.T) {
	const W, K = 32, 8
	mem := memsim.New(memsim.K20c())
	w := NewWarp(W, K, mem)
	data := make([]uint64, 1024*K)
	ptr := NewCoalescedPtr(w, data)
	idx := make([]int, W)
	for base := 0; base+W <= 1024; base += W {
		for l := range idx {
			idx[l] = base + l
		}
		ptr.Load(idx)
	}
	if s := mem.Stats(); s.Efficiency < 0.999 {
		t.Fatalf("unit-stride coalesced_ptr loads must be fully coalesced, got %f", s.Efficiency)
	}
}

func TestCoalescedPtrBadLength(t *testing.T) {
	mem := memsim.New(memsim.K20c())
	w := NewWarp(32, 3, mem)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for misaligned buffer")
		}
	}()
	NewCoalescedPtr(w, make([]uint64, 10))
}
