package simd

import "inplace/internal/cr"

// CoalescedPtr is the Go analogue of the paper's Figure 10 interface:
//
//	coalesced_ptr<T> c_ptr(ptr);
//	T loaded = *c_ptr;  // load and R2C transpose
//	*c_ptr = value;     // C2R transpose and store
//
// Wrapping an Array-of-Structures pointer, every dereference routes
// through the warp-cooperative in-register transpose, so each lane's
// structure access is fully coalesced with no on-chip scratch memory.
// Because the warp shape (K words per structure, W lanes) is static, the
// decomposition plan is computed once at construction (§6.2.4).
type CoalescedPtr struct {
	warp *Warp
	plan *cr.Plan
	data []uint64 // word-addressed AoS of K-word structures
}

// NewCoalescedPtr wraps a word-addressed AoS buffer of structures with
// w.K words each for warp-cooperative access.
func NewCoalescedPtr(w *Warp, data []uint64) *CoalescedPtr {
	if len(data)%w.K != 0 {
		panic("simd: AoS buffer length is not a multiple of the structure size")
	}
	return &CoalescedPtr{warp: w, plan: PlanFor(w), data: data}
}

// Len returns the number of structures in the buffer.
func (c *CoalescedPtr) Len() int { return len(c.data) / c.warp.K }

// Load dereferences the pointer for the whole warp: lane l receives
// structure idx[l] in its registers (register r = word r). Equivalent to
// `T loaded = *c_ptr` executed by every lane.
func (c *CoalescedPtr) Load(idx []int) {
	CoalescedLoad(c.warp, c.plan, c.data, idx)
}

// Store writes each lane's registers to structure idx[l]. Equivalent to
// `*c_ptr = value` executed by every lane. Structure indices must be
// distinct within the warp, as concurrent lane stores to one structure
// are unordered on the modeled hardware too.
func (c *CoalescedPtr) Store(idx []int) {
	CoalescedStore(c.warp, c.plan, c.data, idx)
}
