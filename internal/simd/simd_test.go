package simd

import (
	"math/rand"
	"testing"

	"inplace/internal/cr"
	"inplace/internal/memsim"
)

func newTestWarp(w, k int) *Warp {
	return NewWarp(w, k, memsim.New(memsim.K20c()))
}

func fillAoS(nStructs, k int) []uint64 {
	data := make([]uint64, nStructs*k)
	for i := range data {
		data[i] = uint64(i) * 1000003
	}
	return data
}

func TestWarpConstruction(t *testing.T) {
	w := newTestWarp(32, 4)
	if w.W != 32 || w.K != 4 {
		t.Fatalf("warp dims wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid warp")
		}
	}()
	newTestWarp(0, 4)
}

func TestShfl(t *testing.T) {
	w := newTestWarp(8, 1)
	for l := 0; l < 8; l++ {
		w.Set(0, l, uint64(l))
	}
	w.Shfl(0, func(l int) int { return (l + 3) % 8 }, 2)
	for l := 0; l < 8; l++ {
		if w.Get(0, l) != uint64((l+3)%8) {
			t.Fatalf("shfl wrong at lane %d", l)
		}
	}
	if s := w.Mem().Stats(); s.ALU != 3 {
		t.Fatalf("shfl ALU = %d, want 3", s.ALU)
	}
}

func TestRotateLanes(t *testing.T) {
	w := newTestWarp(4, 8)
	for r := 0; r < 8; r++ {
		for l := 0; l < 4; l++ {
			w.Set(r, l, uint64(100*l+r))
		}
	}
	w.RotateLanes(func(l int) int { return l }) // lane l rotates by l
	for r := 0; r < 8; r++ {
		for l := 0; l < 4; l++ {
			want := uint64(100*l + (r+l)%8)
			if w.Get(r, l) != want {
				t.Fatalf("rotate wrong at r=%d l=%d: got %d want %d", r, l, w.Get(r, l), want)
			}
		}
	}
	// Barrel cost: K=8 -> 3 steps × 8 registers + 1 = 25 ALU.
	if s := w.Mem().Stats(); s.ALU != 25 {
		t.Fatalf("rotate ALU = %d, want 25", s.ALU)
	}
	// Negative amounts are normalized.
	w2 := newTestWarp(2, 4)
	for r := 0; r < 4; r++ {
		w2.Set(r, 0, uint64(r))
	}
	w2.RotateLanes(func(l int) int { return -1 })
	for r := 0; r < 4; r++ {
		if w2.Get(r, 0) != uint64((r+3)%4) {
			t.Fatalf("negative rotate wrong at r=%d", r)
		}
	}
}

func TestRenameRowsZeroCost(t *testing.T) {
	w := newTestWarp(4, 4)
	for r := 0; r < 4; r++ {
		for l := 0; l < 4; l++ {
			w.Set(r, l, uint64(10*r+l))
		}
	}
	perm := []int{2, 0, 3, 1}
	w.RenameRows(func(r int) int { return perm[r] })
	for r := 0; r < 4; r++ {
		for l := 0; l < 4; l++ {
			if w.Get(r, l) != uint64(10*perm[r]+l) {
				t.Fatalf("rename wrong at r=%d l=%d", r, l)
			}
		}
	}
	if s := w.Mem().Stats(); s.ALU != 0 {
		t.Fatalf("rename charged %d instructions, want 0", s.ALU)
	}
}

// The in-register transposes must be exact inverses and must realize the
// C2R permutation of the K×W register array, for every K the hardware
// motivates (1..16 registers) and several warp widths.
func TestInRegisterTransposeExhaustive(t *testing.T) {
	for _, W := range []int{2, 3, 4, 8, 16, 32} {
		for K := 1; K <= 16; K++ {
			w := newTestWarp(W, K)
			p := PlanFor(w)
			// Fill with the linear pattern: register r lane l = r*W + l.
			for r := 0; r < K; r++ {
				for l := 0; l < W; l++ {
					w.Set(r, l, uint64(r*W+l))
				}
			}
			C2RRegisters(w, p)
			// C2R of a K×W row-major array equals its transpose
			// linearization: position (r,l) must hold value l*K + r's ...
			// via the linearization theorem: new[r*W+l] = old at
			// row-major transpose linearization.
			for r := 0; r < K; r++ {
				for l := 0; l < W; l++ {
					lin := r*W + l
					want := uint64((lin%K)*W + lin/K)
					if got := w.Get(r, l); got != want {
						t.Fatalf("W=%d K=%d: C2R wrong at r=%d l=%d: got %d want %d", W, K, r, l, got, want)
					}
				}
			}
			R2CRegisters(w, p)
			for r := 0; r < K; r++ {
				for l := 0; l < W; l++ {
					if w.Get(r, l) != uint64(r*W+l) {
						t.Fatalf("W=%d K=%d: R2C did not invert C2R at r=%d l=%d", W, K, r, l)
					}
				}
			}
		}
	}
}

func TestPlanMismatchPanics(t *testing.T) {
	w := newTestWarp(8, 4)
	bad := cr.NewPlan(3, 8)
	for _, f := range []func(){
		func() { C2RRegisters(w, bad) },
		func() { R2CRegisters(w, bad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for mismatched plan")
				}
			}()
			f()
		}()
	}
}

// CoalescedLoad must deliver each lane its structure, for unit-stride and
// random indices alike, matching DirectLoad's result.
func TestLoadStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, K := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		W := 32
		nStructs := 256
		data := fillAoS(nStructs, K)

		for trial := 0; trial < 4; trial++ {
			idx := make([]int, W)
			if trial == 0 {
				for l := range idx {
					idx[l] = 17 + l // unit stride
				}
			} else {
				for l := range idx {
					idx[l] = rng.Intn(nStructs)
				}
			}
			wc := newTestWarp(W, K)
			p := PlanFor(wc)
			CoalescedLoad(wc, p, data, idx)
			wd := newTestWarp(W, K)
			DirectLoad(wd, data, idx)
			wv := newTestWarp(W, K)
			VectorLoad(wv, data, idx)
			for r := 0; r < K; r++ {
				for l := 0; l < W; l++ {
					want := data[idx[l]*K+r]
					if wc.Get(r, l) != want {
						t.Fatalf("K=%d trial=%d: coalesced load wrong at r=%d l=%d", K, trial, r, l)
					}
					if wd.Get(r, l) != want {
						t.Fatalf("K=%d: direct load wrong at r=%d l=%d", K, r, l)
					}
					if wv.Get(r, l) != want {
						t.Fatalf("K=%d: vector load wrong at r=%d l=%d", K, r, l)
					}
				}
			}
		}
	}
}

// Stores must round-trip: store via each strategy, reload directly.
func TestStoreStrategiesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, K := range []int{1, 2, 3, 4, 8} {
		W := 32
		nStructs := 128
		idx := make([]int, W)
		for l := range idx {
			idx[l] = rng.Intn(nStructs)
		}
		// Distinct indices required for a meaningful round-trip.
		seen := map[int]bool{}
		next := 0
		for l := range idx {
			for seen[idx[l]] {
				idx[l] = next
				next++
			}
			seen[idx[l]] = true
		}
		for name, store := range map[string]func(w *Warp, data []uint64){
			"coalesced": func(w *Warp, data []uint64) { CoalescedStore(w, PlanFor(w), data, idx) },
			"direct":    func(w *Warp, data []uint64) { DirectStore(w, data, idx) },
			"vector":    func(w *Warp, data []uint64) { VectorStore(w, data, idx) },
		} {
			w := newTestWarp(W, K)
			for r := 0; r < K; r++ {
				for l := 0; l < W; l++ {
					w.Set(r, l, uint64(1_000_000+r*W+l))
				}
			}
			data := make([]uint64, nStructs*K)
			store(w, data)
			// Register state must be preserved by the store.
			for r := 0; r < K; r++ {
				for l := 0; l < W; l++ {
					if w.Get(r, l) != uint64(1_000_000+r*W+l) {
						t.Fatalf("%s K=%d: store clobbered registers", name, K)
					}
				}
			}
			rd := newTestWarp(W, K)
			DirectLoad(rd, data, idx)
			for r := 0; r < K; r++ {
				for l := 0; l < W; l++ {
					if rd.Get(r, l) != uint64(1_000_000+r*W+l) {
						t.Fatalf("%s K=%d: round trip wrong at r=%d l=%d", name, K, r, l)
					}
				}
			}
		}
	}
}

// The model must rank the strategies the way Figure 8 does: coalesced
// C2R accesses beat vector accesses, which beat direct accesses, and the
// gap grows with structure size.
func TestUnitStrideBandwidthOrdering(t *testing.T) {
	W := 32
	nStructs := 4096
	ratioAtK := map[int]float64{}
	for _, K := range []int{2, 4, 8} {
		data := fillAoS(nStructs, K)
		idx := make([]int, W)

		bw := func(f func(w *Warp)) float64 {
			w := newTestWarp(W, K)
			for warpStart := 0; warpStart+W <= nStructs; warpStart += W {
				for l := range idx {
					idx[l] = warpStart + l
				}
				f(w)
			}
			return w.Mem().Stats().EffectiveGBps
		}
		c2r := bw(func(w *Warp) { CoalescedLoad(w, PlanFor(w), data, idx) })
		direct := bw(func(w *Warp) { DirectLoad(w, data, idx) })
		vector := bw(func(w *Warp) { VectorLoad(w, data, idx) })
		// At exactly 16-byte structures the hardware vector load is
		// itself fully coalesced and matches C2R (the paper notes this
		// crossover); beyond it C2R must win outright.
		if K == 2 {
			if !(c2r >= vector*0.99 && vector > direct) {
				t.Fatalf("K=2: ordering violated: c2r=%.1f vector=%.1f direct=%.1f", c2r, vector, direct)
			}
		} else if !(c2r > vector && vector > direct) {
			t.Fatalf("K=%d: ordering violated: c2r=%.1f vector=%.1f direct=%.1f", K, c2r, vector, direct)
		}
		ratioAtK[K] = c2r / direct
	}
	if !(ratioAtK[8] > ratioAtK[4] && ratioAtK[4] > ratioAtK[2]) {
		t.Fatalf("gap does not grow with struct size: %v", ratioAtK)
	}
}

// Random-access gathers must improve with structure size for the
// cooperative C2R strategy (Figure 9) while direct stays flat and low.
func TestRandomAccessConvergence(t *testing.T) {
	W := 32
	nStructs := 8192
	rng := rand.New(rand.NewSource(33))
	c2rBW := map[int]float64{}
	for _, K := range []int{1, 4, 8} {
		data := fillAoS(nStructs, K)
		w := newTestWarp(W, K)
		p := PlanFor(w)
		idx := make([]int, W)
		for iter := 0; iter < 64; iter++ {
			for l := range idx {
				idx[l] = rng.Intn(nStructs)
			}
			CoalescedLoad(w, p, data, idx)
		}
		c2rBW[K] = w.Mem().Stats().EffectiveGBps
	}
	if !(c2rBW[8] > c2rBW[4] && c2rBW[4] > c2rBW[1]) {
		t.Fatalf("random C2R gather does not improve with struct size: %v", c2rBW)
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessC2R.String() != "C2R" || AccessDirect.String() != "Direct" || AccessVector.String() != "Vector" {
		t.Fatal("access kind names wrong")
	}
	if AccessKind(9).String() != "Access(?)" {
		t.Fatal("unknown access kind name wrong")
	}
}
