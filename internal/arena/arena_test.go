package arena

import (
	"sync"
	"testing"
)

type testFrame struct {
	buf []int
}

func TestPoolRecyclesFrames(t *testing.T) {
	built := 0
	p := NewPool(func() *testFrame {
		built++
		return &testFrame{buf: make([]int, 16)}
	})
	f1 := p.Get()
	if built != 1 {
		t.Fatalf("built = %d after first Get, want 1", built)
	}
	f1.buf[0] = 42
	// Under the race detector sync.Pool deliberately drops a fraction
	// of Puts, so recycling is probabilistic there; retry until a Put
	// survives. Without -race the first round recycles.
	recycled := false
	f := f1
	for i := 0; i < 100 && !recycled; i++ {
		p.Put(f)
		got := p.Get()
		recycled = got == f
		f = got
	}
	if !recycled {
		t.Error("Get after Put never recycled the frame")
	}
	p.Put(f)
}

func TestPoolConcurrentGetPut(t *testing.T) {
	p := NewPool(func() *testFrame { return &testFrame{buf: make([]int, 64)} })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f := p.Get()
				for j := range f.buf {
					f.buf[j] = g
				}
				for j := range f.buf {
					if f.buf[j] != g {
						t.Errorf("frame shared between goroutines")
						return
					}
				}
				p.Put(f)
			}
		}(g)
	}
	wg.Wait()
}

func TestPoolZeroAllocSteadyState(t *testing.T) {
	p := NewPool(func() *testFrame { return &testFrame{buf: make([]int, 1024)} })
	// Prime the pool.
	p.Put(p.Get())
	allocs := testing.AllocsPerRun(100, func() {
		f := p.Get()
		f.buf[0]++
		p.Put(f)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f times per run, want 0", allocs)
	}
}

func TestSlab(t *testing.T) {
	bufs := Slab[int](3, 5)
	if len(bufs) != 3 {
		t.Fatalf("len = %d, want 3", len(bufs))
	}
	for i, b := range bufs {
		if len(b) != 5 {
			t.Fatalf("buf %d len = %d, want 5", i, len(b))
		}
		for j := range b {
			b[j] = i*100 + j
		}
	}
	// Full-capacity slices: appending to one buffer must not clobber the
	// next (the slab is split with three-index slicing).
	bufs[0] = append(bufs[0], -1)
	if bufs[1][0] != 100 {
		t.Error("append to buf 0 clobbered buf 1")
	}
	if got := Slab[int](0, 5); got != nil {
		t.Errorf("Slab(0, 5) = %v, want nil", got)
	}
	if got := Slab[int](2, 0); got != nil {
		t.Errorf("Slab(2, 0) = %v, want nil", got)
	}
}
