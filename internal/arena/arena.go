// Package arena provides recycled scratch storage for the transposition
// engines. The decomposition's auxiliary-space bound is O(max(m, n)) per
// execution lane, but allocating that scratch on every call dominates the
// cost of transposing the small and skinny shapes the paper targets
// (§6.1). An arena sizes the scratch once — from the plan — and recycles
// it across executions through a sync.Pool, so a reused plan reaches a
// zero-allocation steady state while concurrent executions still each get
// private buffers.
package arena

import (
	"sync"

	"inplace/internal/mathutil"
)

// Pool recycles pre-sized scratch frames of type F across executions.
// Get returns a private frame (freshly built by the constructor only when
// the pool is empty); Put returns it for reuse. A frame must not be used
// after Put. The zero Pool is not ready; use NewPool.
//
// Frames hold only scratch state, so losing one to a garbage collection
// (sync.Pool semantics) is always safe — the next Get rebuilds.
type Pool[F any] struct {
	pool sync.Pool
}

// NewPool returns a Pool whose empty-pool Get builds a frame with build.
func NewPool[F any](build func() *F) *Pool[F] {
	p := &Pool[F]{}
	p.pool.New = func() any { return build() }
	return p
}

// Get hands out a frame for one execution. The frame is either recycled
// from a finished execution or newly built; its contents are unspecified
// scratch and must be fully written before being read.
func (p *Pool[F]) Get() *F {
	return p.pool.Get().(*F)
}

// Put recycles a frame. The caller must not retain any reference into it.
func (p *Pool[F]) Put(f *F) {
	p.pool.Put(f)
}

// Slab allocates one backing array of count*size elements and returns it
// split into count equal buffers. Band sweeps and per-worker scratch use
// a slab so that an execution state costs one allocation per buffer kind
// instead of one per worker or chunk.
func Slab[T any](count, size int) [][]T {
	if count <= 0 || size <= 0 {
		return nil
	}
	total, ok := mathutil.CheckedMul(count, size)
	if !ok {
		panic("arena: slab size overflows int")
	}
	backing := make([]T, total)
	bufs := make([][]T, count)
	for i := range bufs {
		bufs[i] = backing[i*size : (i+1)*size : (i+1)*size]
	}
	return bufs
}
