package mathutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGCDBasics(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 7, 7},
		{7, 0, 7},
		{1, 1, 1},
		{12, 8, 4},
		{8, 12, 4},
		{25000, 17500, 2500},
		{-12, 8, 4},
		{12, -8, 4},
		{-12, -8, 4},
		{1, 999999937, 1},
		{2 * 3 * 5 * 7, 3 * 7 * 11, 21},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		g := GCD(int(a), int(b))
		if a == 0 && b == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		return int(a)%g == 0 && int(b)%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtGCDBezout(t *testing.T) {
	f := func(a, b uint16) bool {
		if a == 0 && b == 0 {
			return true
		}
		g, x, y := ExtGCD(int(a), int(b))
		return int(a)*x+int(b)*y == g && g == GCD(int(a), int(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModInverse(t *testing.T) {
	for y := 1; y <= 60; y++ {
		for x := 1; x <= 60; x++ {
			inv, ok := ModInverse(x, y)
			if GCD(x, y) != 1 {
				if ok {
					t.Fatalf("ModInverse(%d,%d) reported ok for non-coprime args", x, y)
				}
				continue
			}
			if !ok {
				t.Fatalf("ModInverse(%d,%d) failed for coprime args", x, y)
			}
			if y == 1 {
				if inv != 0 {
					t.Fatalf("ModInverse(%d,1) = %d, want 0", x, inv)
				}
				continue
			}
			if inv < 0 || inv >= y {
				t.Fatalf("ModInverse(%d,%d) = %d out of range", x, y, inv)
			}
			if x*inv%y != 1 {
				t.Fatalf("ModInverse(%d,%d) = %d, product %d mod %d != 1", x, y, inv, x*inv, y)
			}
		}
	}
}

func TestModInverseNegativeAndLargeX(t *testing.T) {
	inv, ok := ModInverse(-3, 7) // -3 ≡ 4 (mod 7), inverse of 4 is 2
	if !ok || inv != 2 {
		t.Fatalf("ModInverse(-3,7) = %d,%v want 2,true", inv, ok)
	}
	inv, ok = ModInverse(10, 7) // 10 ≡ 3, inverse 5
	if !ok || inv != 5 {
		t.Fatalf("ModInverse(10,7) = %d,%v want 5,true", inv, ok)
	}
	if _, ok := ModInverse(4, 0); ok {
		t.Fatal("ModInverse(4,0) must fail")
	}
}

func TestDividerSmallExhaustive(t *testing.T) {
	for d := 1; d <= 128; d++ {
		v := NewDivider(d)
		for x := 0; x <= 4096; x++ {
			if got, want := v.Div(x), x/d; got != want {
				t.Fatalf("Divider(%d).Div(%d) = %d, want %d", d, x, got, want)
			}
			if got, want := v.Mod(x), x%d; got != want {
				t.Fatalf("Divider(%d).Mod(%d) = %d, want %d", d, x, got, want)
			}
		}
	}
}

func TestDividerRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20000; trial++ {
		d := 1 + rng.Intn(1<<26)
		x := rng.Intn(1 << 50)
		v := NewDivider(d)
		q, r := v.DivMod(x)
		if q != x/d || r != x%d {
			t.Fatalf("Divider(%d).DivMod(%d) = (%d,%d), want (%d,%d)", d, x, q, r, x/d, x%d)
		}
	}
}

func TestDividerHugeDividends(t *testing.T) {
	// Exercise the fallback path guard: dividends near 2^62.
	for _, d := range []int{3, 7, 11, 25000, 1<<31 - 1, 1<<40 + 9} {
		v := NewDivider(d)
		for _, x := range []int{0, 1, d - 1, d, d + 1, 1<<62 - 1, 1 << 61, 1<<62 - d} {
			if got, want := v.Div(x), x/d; got != want {
				t.Fatalf("Divider(%d).Div(%d) = %d, want %d", d, x, got, want)
			}
			if got, want := v.Mod(x), x%d; got != want {
				t.Fatalf("Divider(%d).Mod(%d) = %d, want %d", d, x, got, want)
			}
		}
	}
}

func TestDividerPosMod(t *testing.T) {
	v := NewDivider(7)
	for x := -6; x < 40; x++ {
		want := ((x % 7) + 7) % 7
		if got := v.PosMod(x); got != want {
			t.Fatalf("PosMod(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestNewDividerPanics(t *testing.T) {
	for _, d := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDivider(%d) did not panic", d)
				}
			}()
			NewDivider(d)
		}()
	}
}

func TestDividerPowersOfTwo(t *testing.T) {
	for s := 0; s < 40; s++ {
		d := 1 << s
		v := NewDivider(d)
		for _, x := range []int{0, 1, d - 1, d, d + 1, 3*d + 5, 1<<62 - 1} {
			if x < 0 {
				continue
			}
			if got, want := v.Div(x), x/d; got != want {
				t.Fatalf("Divider(2^%d).Div(%d) = %d, want %d", s, x, got, want)
			}
		}
	}
}

func BenchmarkDividerDiv(b *testing.B) {
	v := NewDivider(25007)
	s := 0
	for i := 0; i < b.N; i++ {
		s += v.Div(i)
	}
	sink = s
}

func BenchmarkHardwareDiv(b *testing.B) {
	d := 25007
	s := 0
	for i := 0; i < b.N; i++ {
		s += i / d
	}
	sink = s
}

var sink int
