package mathutil

import (
	"math"
	"math/rand"
	"testing"
)

// edgeDivisors spans the divisor range the modreduce analyzer's suggested
// Divider replacements must be proven equivalent over: 1, powers of two up
// to 2^31, power-of-two neighbours (the worst cases for the multiply-high
// reciprocal), and math.MaxInt32-adjacent values.
func edgeDivisors() []int {
	ds := []int{1, 2, 3, 5, 6, 7, 9, 10, 11, 63, 64, 65, 1000, 1 << 16, 1<<16 + 1, 1<<16 - 1}
	for sh := 17; sh <= 31; sh++ {
		ds = append(ds, 1<<sh-1, 1<<sh, 1<<sh+1)
	}
	ds = append(ds, math.MaxInt32-2, math.MaxInt32-1, math.MaxInt32, math.MaxInt32+1, math.MaxInt32+2)
	return ds
}

// edgeDividends returns the dividend edge set for divisor d across the
// full uint32 range: values around 0, d, multiples of d, and the uint32
// boundary.
func edgeDividends(d int) []int {
	xs := []int{0, 1, 2, d - 1, d, d + 1, 2*d - 1, 2 * d, 2*d + 1,
		math.MaxInt32 - 1, math.MaxInt32, math.MaxInt32 + 1,
		1<<32 - 2, 1<<32 - 1, 1 << 32}
	if half := d / 2; half > 0 {
		xs = append(xs, half-1, half, half+1)
	}
	out := xs[:0]
	for _, x := range xs {
		if x >= 0 {
			out = append(out, x)
		}
	}
	return out
}

func TestDividerUint32EdgeRange(t *testing.T) {
	for _, d := range edgeDivisors() {
		v := NewDivider(d)
		if v.D() != d {
			t.Fatalf("NewDivider(%d).D() = %d", d, v.D())
		}
		for _, x := range edgeDividends(d) {
			if got, want := v.Div(x), x/d; got != want {
				t.Fatalf("Divider(%d).Div(%d) = %d, want %d", d, x, got, want)
			}
			if got, want := v.Mod(x), x%d; got != want {
				t.Fatalf("Divider(%d).Mod(%d) = %d, want %d", d, x, got, want)
			}
			q, r := v.DivMod(x)
			if q != x/d || r != x%d {
				t.Fatalf("Divider(%d).DivMod(%d) = (%d,%d), want (%d,%d)", d, x, q, r, x/d, x%d)
			}
		}
	}
}

func TestDividerUint32RandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1ea7))
	for _, d := range edgeDivisors() {
		v := NewDivider(d)
		for i := 0; i < 2000; i++ {
			x := int(rng.Uint64() & math.MaxUint32)
			if v.Div(x) != x/d || v.Mod(x) != x%d {
				t.Fatalf("Divider(%d) disagrees with hardware at x=%d: (%d,%d) want (%d,%d)",
					d, x, v.Div(x), v.Mod(x), x/d, x%d)
			}
		}
	}
}

func TestDividerSMod(t *testing.T) {
	for _, d := range []int{1, 2, 3, 7, 64, 1000, math.MaxInt32} {
		v := NewDivider(d)
		xs := []int{0, 1, d - 1, d, d + 1, -1, -d + 1, -d, -d - 1, -2*d - 3,
			math.MaxInt32, -math.MaxInt32, 1<<40 + 7, -(1<<40 + 7)}
		for _, x := range xs {
			want := ((x % d) + d) % d
			if got := v.SMod(x); got != want {
				t.Fatalf("Divider(%d).SMod(%d) = %d, want %d", d, x, got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		d := 1 + rng.Intn(1<<20)
		x := rng.Int() - rng.Int()
		want := ((x % d) + d) % d
		if got := NewDivider(d).SMod(x); got != want {
			t.Fatalf("Divider(%d).SMod(%d) = %d, want %d", d, x, got, want)
		}
	}
}

func TestCheckedMul(t *testing.T) {
	cases := []struct {
		a, b, want int
		ok         bool
	}{
		{0, 0, 0, true},
		{0, math.MaxInt, 0, true},
		{math.MaxInt, 0, 0, true},
		{1, math.MaxInt, math.MaxInt, true},
		{math.MaxInt, 1, math.MaxInt, true},
		{2, math.MaxInt/2 + 1, 0, false},
		{math.MaxInt/2 + 1, 2, 0, false},
		{2, math.MaxInt / 2, math.MaxInt - 1, true},
		{3, math.MaxInt / 3, math.MaxInt / 3 * 3, true},
		{1 << 31, 1 << 31, 1 << 62, true},
		{1 << 32, 1 << 31, 0, false},
		{-1, 4, 0, false},
		{4, -1, 0, false},
		{math.MaxInt, math.MaxInt, 0, false},
	}
	for _, c := range cases {
		got, ok := CheckedMul(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CheckedMul(%d,%d) = (%d,%v), want (%d,%v)", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}
