// Package mathutil provides the integer arithmetic substrate used by the
// in-place transposition algorithm: greatest common divisors, modular
// multiplicative inverses, and strength-reduced division by invariant
// integers (paper §4.4, after Warren's "Hacker's Delight").
//
// All index arithmetic in the transposition kernels reduces to repeated
// division and modulus by a handful of invariant denominators (m, n, a, b,
// c).  Divider converts those into a multiply-high and a shift, amortizing
// the reciprocal computation across the whole transpose exactly as the
// paper describes.
package mathutil

import "math/bits"

// GCD returns the greatest common divisor of a and b.
// GCD(0, 0) is defined as 0.
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ExtGCD returns g = gcd(a, b) along with Bézout coefficients x, y such
// that a*x + b*y = g.
func ExtGCD(a, b int) (g, x, y int) {
	if b == 0 {
		return a, 1, 0
	}
	g, x1, y1 := ExtGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// ModInverse returns the modular multiplicative inverse of x modulo y,
// i.e. the unique v in [0, y) with (x*v) mod y == 1, and ok reporting
// whether the inverse exists (x and y must be coprime, y >= 1).
//
// By convention ModInverse(x, 1) = 0, ok = true: modulo 1 every product is
// congruent to 0, which is the representative the paper's Equations 31 and
// 34 rely on when a or b equals 1.
func ModInverse(x, y int) (inv int, ok bool) {
	if y < 1 {
		return 0, false
	}
	if y == 1 {
		return 0, true
	}
	x %= y
	if x < 0 {
		x += y
	}
	g, v, _ := ExtGCD(x, y)
	if g != 1 {
		return 0, false
	}
	v %= y
	if v < 0 {
		v += y
	}
	return v, true
}

// Divider performs strength-reduced unsigned division and modulus by a
// fixed positive divisor (paper §4.4).  The divisor's fixed-point
// reciprocal is computed once; each Div is then a 64x64->128 multiply and
// a shift, and each Mod an additional multiply and subtract.
//
// The fast path is exact for every dividend up to Divider.limit, which for
// all divisors arising from matrix dimensions far exceeds m*n; dividends
// beyond the limit (possible only for pathological divisors near 2^63)
// fall back to hardware division, preserving correctness unconditionally.
type Divider struct {
	d     uint64 // divisor
	magic uint64 // ceil(2^64 / d) for the multiply-high path
	shift uint   // log2(d) when d is a power of two
	limit uint64 // largest dividend for which the fast path is exact
	pow2  bool
}

// NewDivider returns a Divider for divisor d. It panics if d <= 0, since a
// transposition plan never divides by a non-positive dimension.
func NewDivider(d int) Divider {
	if d <= 0 {
		panic("mathutil: NewDivider requires a positive divisor")
	}
	ud := uint64(d)
	if ud&(ud-1) == 0 {
		return Divider{d: ud, shift: uint(bits.TrailingZeros64(ud)), pow2: true, limit: ^uint64(0)}
	}
	// magic = floor(2^64/d) + 1; excess e = magic*d - 2^64 lies in (0, d].
	// floor(x/d) == hi64(magic*x) exactly for all x with x*e < 2^64.
	magic := ^uint64(0)/ud + 1
	e := magic * ud // wraps: equals magic*d - 2^64
	return Divider{d: ud, magic: magic, limit: (^uint64(0)) / e}
}

// D returns the divisor.
func (v Divider) D() int { return int(v.d) }

// Div returns x / v.d for non-negative x.
func (v Divider) Div(x int) int {
	ux := uint64(x)
	if v.pow2 {
		return int(ux >> v.shift)
	}
	if ux <= v.limit {
		hi, _ := bits.Mul64(v.magic, ux)
		return int(hi)
	}
	return int(ux / v.d)
}

// Mod returns x % v.d for non-negative x.
func (v Divider) Mod(x int) int {
	return x - v.Div(x)*int(v.d)
}

// DivMod returns (x / v.d, x % v.d) for non-negative x.
func (v Divider) DivMod(x int) (q, r int) {
	q = v.Div(x)
	return q, x - q*int(v.d)
}

// PosMod returns x mod d in [0, d), accepting negative x whose magnitude
// is less than d (the only negative operands the index maps produce).
func (v Divider) PosMod(x int) int {
	if x >= 0 {
		return v.Mod(x)
	}
	return x + int(v.d)
}

// SMod returns the floor modulus x mod d in [0, d) for any int x,
// including negative x of arbitrary magnitude. It is the strength-reduced
// replacement for the `((x % d) + d) % d` normalization idiom that the
// rotation-amount paths use on raw amounts.
func (v Divider) SMod(x int) int {
	if x >= 0 {
		return v.Mod(x)
	}
	r := v.Mod(-x)
	if r == 0 {
		return 0
	}
	return int(v.d) - r
}

// CheckedMul returns a*b and reports whether the product of two
// non-negative operands fits in int without overflow. It is the guard the
// public validation paths use before trusting rows*cols-shaped index
// algebra; negative operands report ok = false, as no shape or length is
// ever negative.
func CheckedMul(a, b int) (int, bool) {
	if a < 0 || b < 0 {
		return 0, false
	}
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}
