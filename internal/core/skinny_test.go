package core

import (
	"math/rand"
	"testing"

	"inplace/internal/cr"
)

// Oracle for the band sweeps: apply the same per-row source function
// out of place.
func bandOracleForward(data []int, m, n, band int, src func(br *bandReader[int], i int, tmp []int)) []int {
	snapshot := append([]int(nil), data...)
	out := make([]int, len(data))
	br := &bandReader[int]{data: snapshot, n: n, m: m, lo: 0, hi: m, band: band, forward: true}
	// With lo=0, hi=m on an immutable snapshot, read() resolves
	// in-range rows directly; wrapped rows need the wrap buffer.
	br.wrap = snapshot[:imin(band, m)*n]
	tmp := make([]int, n)
	for i := 0; i < m; i++ {
		src(br, i, tmp)
		copy(out[i*n:i*n+n], tmp)
	}
	return out
}

func bandOracleBackward(data []int, m, n, band int, src func(br *bandReader[int], i int, tmp []int)) []int {
	snapshot := append([]int(nil), data...)
	out := make([]int, len(data))
	br := &bandReader[int]{data: snapshot, n: n, m: m, lo: 0, hi: m, band: band, forward: false}
	if band > 0 {
		br.wrap = snapshot[(m-band)*n:]
	}
	tmp := make([]int, n)
	for i := 0; i < m; i++ {
		src(br, i, tmp)
		copy(out[i*n:i*n+n], tmp)
	}
	return out
}

func imin(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// The parallel in-place band sweeps must match the out-of-place oracle
// for arbitrary banded source functions.
func TestBandSweepsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 120; trial++ {
		m := 8 + rng.Intn(200)
		n := 1 + rng.Intn(12)
		band := rng.Intn(imin(n+3, m-1))
		workers := 1 + rng.Intn(6)

		// Random banded gather: each (i, j) pulls from a random delta in
		// [0, band] and a random column.
		deltas := make([]int, n)
		cols := make([]int, n)
		for j := range deltas {
			if band > 0 {
				deltas[j] = rng.Intn(band + 1)
			}
			cols[j] = rng.Intn(n)
		}
		fwd := func(br *bandReader[int], i int, tmp []int) {
			for j := 0; j < n; j++ {
				tmp[j] = br.read(i+deltas[j], cols[j])
			}
		}
		data := seqSlice(m * n)
		want := bandOracleForward(data, m, n, band, fwd)
		bandForward(data, m, n, band, workers, fwd)
		if !equalSlices(data, want) {
			t.Fatalf("trial %d: forward sweep m=%d n=%d band=%d workers=%d wrong", trial, m, n, band, workers)
		}

		bwd := func(br *bandReader[int], i int, tmp []int) {
			for j := 0; j < n; j++ {
				tmp[j] = br.read(i-deltas[j], cols[j])
			}
		}
		data = seqSlice(m * n)
		want = bandOracleBackward(data, m, n, band, bwd)
		bandBackward(data, m, n, band, workers, bwd)
		if !equalSlices(data, want) {
			t.Fatalf("trial %d: backward sweep m=%d n=%d band=%d workers=%d wrong", trial, m, n, band, workers)
		}
	}
}

// The skinny fused passes must agree with the unfused general pipeline
// on every viable shape (cross-engine equivalence at scale).
func TestSkinnyEquivalentToGather(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		m := 4*n + 1 + rng.Intn(3000)
		plan := cr.NewPlan(m, n)
		if !skinnyViable(plan) {
			t.Fatalf("%dx%d should be viable", m, n)
		}
		a := make([]int, m*n)
		for i := range a {
			a[i] = rng.Int()
		}
		b := append([]int(nil), a...)
		C2R(a, plan, Opts{Variant: Skinny, Workers: 3})
		C2R(b, plan, Opts{Variant: Gather, Workers: 1})
		if !equalSlices(a, b) {
			t.Fatalf("%dx%d: skinny C2R differs from gather", m, n)
		}
		R2C(a, plan, Opts{Variant: Skinny, Workers: 4})
		R2C(b, plan, Opts{Variant: Gather, Workers: 1})
		if !equalSlices(a, b) {
			t.Fatalf("%dx%d: skinny R2C differs from gather", m, n)
		}
	}
}

// skinnyViable boundaries.
func TestSkinnyViability(t *testing.T) {
	if skinnyViable(cr.NewPlan(10, 8)) {
		t.Error("10x8 must not be viable (band*4 >= m)")
	}
	if !skinnyViable(cr.NewPlan(64, 8)) {
		t.Error("64x8 must be viable")
	}
	if skinnyViable(cr.NewPlan(1_000_000, skinnyMaxBand+2)) {
		t.Error("band above skinnyMaxBand must not be viable")
	}
	// Non-viable shapes still transpose correctly via the fallback.
	m, n := 10, 8
	plan := cr.NewPlan(m, n)
	data := seqSlice(m * n)
	want := make([]int, m*n)
	OutOfPlace(want, data, m, n)
	C2R(data, plan, Opts{Variant: Skinny})
	if !equalSlices(data, want) {
		t.Fatal("skinny fallback wrong")
	}
}

// Workers exceeding the chunkable row count must degrade gracefully.
func TestBandSweepWorkerExcess(t *testing.T) {
	m, n := 40, 8
	plan := cr.NewPlan(m, n)
	for _, workers := range []int{1, 7, 39, 40, 41, 1000} {
		data := seqSlice(m * n)
		want := make([]int, m*n)
		OutOfPlace(want, data, m, n)
		C2R(data, plan, Opts{Variant: Skinny, Workers: workers})
		if !equalSlices(data, want) {
			t.Fatalf("workers=%d: wrong result", workers)
		}
	}
}
