package core

import (
	"fmt"

	"inplace/internal/arena"
	"inplace/internal/cr"
	"inplace/internal/mathutil"
)

// Engine binds a Schedule to an element type: it owns the recycled
// scratch states and the prebuilt band-sweep row functions, and executes
// the C2R/R2C pipelines with zero steady-state allocations. One Engine
// may execute concurrently on distinct buffers; each execution draws a
// private state from the arena.
type Engine[T any] struct {
	s      *Schedule
	states *arena.Pool[execState[T]]

	// Skinny band-sweep row producers, built once per engine so
	// executions do not re-capture the plan constants.
	c2r1, c2r2, r2c2, r2c3 bandRowFunc[T]

	// Kernel func values, materialized once: instantiating a generic
	// function value inside a generic method builds a dictionary-bound
	// funcval on the heap per use, which would break the zero-allocation
	// steady state.
	kRotate        func([]T, int, int, func(int) int, mathutil.Divider, []T, int, int)
	kPermuteNaive  func([]T, int, int, func(int) int, []T, int, int)
	kColShuffle    func([]T, *cr.Plan, []T, int, int)
	kRowScatter    func([]T, *cr.Plan, []T, int, int)
	kRowGather     func([]T, *cr.Plan, []T, int, int)
	kRowScatterInc func([]T, *cr.Plan, []T, int, int)
	kRowGatherD    func([]T, *cr.Plan, []T, int, int)
	kRowGatherDInc func([]T, *cr.Plan, []T, int, int)
}

// NewEngine builds the typed half of an execution plan.
func NewEngine[T any](s *Schedule) *Engine[T] {
	e := &Engine[T]{s: s}
	e.states = arena.NewPool(func() *execState[T] { return newExecState[T](s) })
	if s.Opts.Variant == Skinny && s.skinnyOK {
		e.c2r1 = skinnyC2RPass1[T](s.Plan)
		e.c2r2 = skinnyC2RPass2[T](s.Plan)
		e.r2c2 = skinnyR2CPass2[T](s.Plan)
		e.r2c3 = skinnyR2CPass3[T](s.Plan)
	}
	e.kRotate = rotateColumnsGatherRange[T]
	e.kPermuteNaive = rowPermuteGatherNaiveRange[T]
	e.kColShuffle = columnShuffleGatherRange[T]
	e.kRowScatter = rowShuffleScatterRange[T]
	e.kRowGather = rowShuffleGatherRange[T]
	e.kRowScatterInc = rowShuffleScatterIncRange[T]
	e.kRowGatherD = rowShuffleGatherDRange[T]
	e.kRowGatherDInc = rowShuffleGatherDIncRange[T]
	return e
}

// Schedule returns the shared untyped half of the plan.
func (e *Engine[T]) Schedule() *Schedule { return e.s }

// badLenMsg builds the buffer-length panic message. Kept out of line so
// the hot entry points contain no fmt machinery.
func badLenMsg(op string, n int, p *cr.Plan) string {
	return fmt.Sprintf("core: %s buffer length %d does not match %v", op, n, p)
}

// C2R performs the in-place C2R transposition of the flat row-major
// m×n array described by the schedule's plan (see the package-level C2R).
//
//xpose:hotpath
func (e *Engine[T]) C2R(data []T) {
	if len(data) != e.s.Plan.Size {
		panic(badLenMsg("C2R", len(data), e.s.Plan))
	}
	st := e.states.Get()
	defer e.states.Put(st)
	switch e.s.Opts.Variant {
	case Scatter:
		e.c2rScatter(data, st)
	case Gather:
		e.c2rGather(data, st)
	case CacheAware:
		e.c2rCacheAware(data, st)
	case Skinny:
		e.c2rSkinny(data, st)
	default:
		panic("core: unknown variant " + e.s.Opts.Variant.String())
	}
}

// R2C performs the in-place R2C transposition, the exact inverse of C2R.
//
//xpose:hotpath
func (e *Engine[T]) R2C(data []T) {
	if len(data) != e.s.Plan.Size {
		panic(badLenMsg("R2C", len(data), e.s.Plan))
	}
	st := e.states.Get()
	defer e.states.Put(st)
	switch e.s.Opts.Variant {
	case Scatter:
		e.r2cScatter(data, st)
	case Gather:
		e.r2cGather(data, st)
	case CacheAware:
		e.r2cCacheAware(data, st)
	case Skinny:
		e.r2cSkinny(data, st)
	default:
		panic("core: unknown variant " + e.s.Opts.Variant.String())
	}
}

// --- Pipelines (the pass compositions previously hard-wired into the
// one-shot entry points) ---

// c2rScatter is Algorithm 1: pre-rotate (if gcd > 1), scatter row
// shuffle, gather column shuffle.
func (e *Engine[T]) c2rScatter(data []T, st *execState[T]) {
	if !e.s.Plan.Coprime {
		e.rotatePass(data, st, e.s.rotFn)
	}
	e.rowPass(data, st, e.kRowScatter)
	e.colPass(data, st, e.kColShuffle)
}

// c2rGather is the gather-only formulation (§5.1): the row shuffle uses
// the closed-form inverse d'^{-1} so every pass is a gather.
func (e *Engine[T]) c2rGather(data []T, st *execState[T]) {
	if !e.s.Plan.Coprime {
		e.rotatePass(data, st, e.s.rotFn)
	}
	e.rowPass(data, st, e.kRowGather)
	e.colPass(data, st, e.kColShuffle)
}

// r2cScatter inverts Algorithm 1 pass by pass: the column shuffle
// s' = p∘q inverts as a q^{-1} row permute followed by a p^{-1} rotation,
// the row shuffle inverts as a gather with d', and the pre-rotation
// inverts as a gather with r^{-1} (§4.3).
func (e *Engine[T]) r2cScatter(data []T, st *execState[T]) {
	e.colFnPass(data, st, e.kPermuteNaive, e.s.qInvFn)
	e.rotatePass(data, st, e.s.negIDFn)
	e.rowPass(data, st, e.kRowGatherD)
	if !e.s.Plan.Coprime {
		e.rotatePass(data, st, e.s.negRotFn)
	}
}

// r2cGather matches r2cScatter; the R2C direction is naturally
// gather-only (§4.3), so the two variants coincide structurally.
func (e *Engine[T]) r2cGather(data []T, st *execState[T]) {
	e.r2cScatter(data, st)
}

// c2rCacheAware composes the C2R transpose from cache-aware passes: the
// §5.2 GPU formulation. The column shuffle is factored into the rotation
// p_j and row permutation q (Equations 32–33).
func (e *Engine[T]) c2rCacheAware(data []T, st *execState[T]) {
	if !e.s.Plan.Coprime {
		e.rotateGroups(data, st, e.s.rotFn)
	}
	e.rowPass(data, st, e.kRowScatterInc)
	e.rotateGroups(data, st, e.s.idFn)
	e.rowPermute(data, st, e.s.qCycles(), e.s.blockW, e.s.boundsGroups)
}

// r2cCacheAware inverts the cache-aware C2R pass by pass (§4.3).
func (e *Engine[T]) r2cCacheAware(data []T, st *execState[T]) {
	e.rowPermute(data, st, e.s.qInvCycles(), e.s.blockW, e.s.boundsGroups)
	e.rotateGroups(data, st, e.s.negIDFn)
	e.rowPass(data, st, e.kRowGatherDInc)
	if !e.s.Plan.Coprime {
		e.rotateGroups(data, st, e.s.negRotFn)
	}
}

// c2rSkinny performs the C2R transpose with the skinny pass structure
// (§6.1): fused pre-rotation + row shuffle, the p_j rotation, then the
// whole-row permutation q — the first two as forward band sweeps.
func (e *Engine[T]) c2rSkinny(data []T, st *execState[T]) {
	if !e.s.skinnyOK {
		e.c2rCacheAware(data, st)
		return
	}
	e.bandSweep(data, st, true, e.s.bandPre, e.s.boundsBandPre, st.savedPre, e.c2r1)
	e.bandSweep(data, st, true, e.s.bandRot, e.s.boundsBandRot, st.savedRot, e.c2r2)
	e.rowPermute(data, st, e.s.qCycles(), e.s.Plan.N, e.s.oneGroup)
}

// r2cSkinny inverts c2rSkinny pass by pass with backward band sweeps.
func (e *Engine[T]) r2cSkinny(data []T, st *execState[T]) {
	if !e.s.skinnyOK {
		e.r2cCacheAware(data, st)
		return
	}
	e.rowPermute(data, st, e.s.qInvCycles(), e.s.Plan.N, e.s.oneGroup)
	e.bandSweep(data, st, false, e.s.bandRot, e.s.boundsBandRot, st.savedRot, e.r2c2)
	e.bandSweep(data, st, false, e.s.bandPre, e.s.boundsBandPre, st.savedPre, e.r2c3)
}

// --- Pass drivers ---
//
// Each driver runs a range kernel over a precomputed chunk partition.
// The single-chunk case calls the kernel directly: no closure is built,
// which together with the arena-backed frames makes sequential
// executions allocation-free in steady state. Multi-chunk dispatch goes
// through the schedule (persistent pool or spawned goroutines); the
// chunk index doubles as the scratch frame index.

// rowPass runs a row-shuffle kernel over all M rows with n-element
// scratch.
func (e *Engine[T]) rowPass(data []T, st *execState[T], kern func([]T, *cr.Plan, []T, int, int)) {
	s := e.s
	bounds := s.boundsM
	if len(bounds) == 2 {
		kern(data, s.Plan, st.frames[0].elems(s.Plan.N), bounds[0], bounds[1])
		return
	}
	s.dispatch(bounds, func(w, lo, hi int) {
		kern(data, s.Plan, st.frames[w].elems(s.Plan.N), lo, hi)
	})
}

// colPass runs a column kernel over all N columns with m-element
// scratch.
func (e *Engine[T]) colPass(data []T, st *execState[T], kern func([]T, *cr.Plan, []T, int, int)) {
	s := e.s
	bounds := s.boundsN
	if len(bounds) == 2 {
		kern(data, s.Plan, st.frames[0].elems(s.Plan.M), bounds[0], bounds[1])
		return
	}
	s.dispatch(bounds, func(w, lo, hi int) {
		kern(data, s.Plan, st.frames[w].elems(s.Plan.M), lo, hi)
	})
}

// colFnPass runs a column kernel parameterized by an index function
// (row permutation) over all N columns.
func (e *Engine[T]) colFnPass(data []T, st *execState[T], kern func([]T, int, int, func(int) int, []T, int, int), f func(int) int) {
	s := e.s
	m, n := s.Plan.M, s.Plan.N
	bounds := s.boundsN
	if len(bounds) == 2 {
		kern(data, m, n, f, st.frames[0].elems(m), bounds[0], bounds[1])
		return
	}
	s.dispatch(bounds, func(w, lo, hi int) {
		kern(data, m, n, f, st.frames[w].elems(m), lo, hi)
	})
}

// rotatePass runs the naive column-rotation kernel, which additionally
// takes the plan's strength-reduced divider for m, over all N columns.
func (e *Engine[T]) rotatePass(data []T, st *execState[T], f func(int) int) {
	s := e.s
	m, n := s.Plan.M, s.Plan.N
	divM := s.Plan.DivM()
	bounds := s.boundsN
	if len(bounds) == 2 {
		e.kRotate(data, m, n, f, divM, st.frames[0].elems(m), bounds[0], bounds[1])
		return
	}
	s.dispatch(bounds, func(w, lo, hi int) {
		e.kRotate(data, m, n, f, divM, st.frames[w].elems(m), lo, hi)
	})
}

// rotateGroups runs the cache-aware coarse/fine column rotation over all
// column groups.
func (e *Engine[T]) rotateGroups(data []T, st *execState[T], amount func(int) int) {
	s := e.s
	m, n := s.Plan.M, s.Plan.N
	if m <= 1 || n == 0 {
		return
	}
	divM := s.Plan.DivM()
	bounds := s.boundsGroups
	if len(bounds) == 2 {
		rotateGroupsRange(data, m, n, amount, divM, s.blockW, &st.frames[0], bounds[0], bounds[1])
		return
	}
	s.dispatch(bounds, func(w, glo, ghi int) {
		rotateGroupsRange(data, m, n, amount, divM, s.blockW, &st.frames[w], glo, ghi)
	})
}

// rowPermute applies one of the schedule's cached row permutations by
// whole-sub-row cycle following (§4.7): wide matrices parallelize across
// the groupBounds column groups, narrow ones across cycles.
func (e *Engine[T]) rowPermute(data []T, st *execState[T], cy *cycles, blockW int, groupBounds []int) {
	s := e.s
	m, n := s.Plan.M, s.Plan.N
	if m <= 1 || n == 0 || len(cy.leaders) == 0 {
		return
	}
	if n >= s.workers*blockW || len(cy.leaders) == 1 {
		w := min(blockW, n)
		if len(groupBounds) == 2 {
			rowPermuteWideRange(data, n, blockW, cy.p, cy.leaders, cy.lengths, st.frames[0].spareBuf(w), groupBounds[0], groupBounds[1])
			return
		}
		s.dispatch(groupBounds, func(wk, glo, ghi int) {
			rowPermuteWideRange(data, n, blockW, cy.p, cy.leaders, cy.lengths, st.frames[wk].spareBuf(w), glo, ghi)
		})
		return
	}
	bounds := cy.bounds
	if len(bounds) == 2 {
		rowPermuteNarrowRange(data, n, cy.p, cy.leaders, cy.lengths, st.frames[0].elems(n), bounds[0], bounds[1])
		return
	}
	s.dispatch(bounds, func(wk, lo, hi int) {
		rowPermuteNarrowRange(data, n, cy.p, cy.leaders, cy.lengths, st.frames[wk].elems(n), lo, hi)
	})
}

// bandSweep runs one skinny band sweep over all M rows, snapshotting the
// inter-chunk bands into the state's recycled slabs first.
func (e *Engine[T]) bandSweep(data []T, st *execState[T], forward bool, band int, bounds []int, saved [][]T, row bandRowFunc[T]) {
	s := e.s
	m, n := s.Plan.M, s.Plan.N
	nchunks := len(bounds) - 1
	snapshotBands(data, n, band, forward, bounds, saved)
	if nchunks == 1 {
		fr := &st.frames[0]
		fr.br = bandReader[T]{data: data, n: n, m: m, lo: bounds[0], hi: bounds[1], band: band, forward: forward}
		fr.br.outside, fr.br.wrap = bandNeighbors(saved, band, nchunks, 0, forward)
		bandChunkRange(&fr.br, data, n, forward, row, fr.elems(n), bounds[0], bounds[1])
		return
	}
	s.dispatch(bounds, func(w, lo, hi int) {
		fr := &st.frames[w]
		fr.br = bandReader[T]{data: data, n: n, m: m, lo: lo, hi: hi, band: band, forward: forward}
		fr.br.outside, fr.br.wrap = bandNeighbors(saved, band, nchunks, w, forward)
		bandChunkRange(&fr.br, data, n, forward, row, fr.elems(n), lo, hi)
	})
}

// --- Execution state ---

// execState is the private scratch of one execution: a frame per worker
// slot plus the band-snapshot slabs of the skinny sweeps. States are
// recycled through the engine's arena, so their buffers grow to their
// steady-state sizes on first use and are reused thereafter.
type execState[T any] struct {
	frames   []frame[T]
	savedPre [][]T // skinny pass snapshots, band c-1, one per chunk
	savedRot [][]T // skinny pass snapshots, band n-1, one per chunk
}

func newExecState[T any](s *Schedule) *execState[T] {
	st := &execState[T]{frames: make([]frame[T], s.workers)}
	if s.Opts.Variant == Skinny && s.skinnyOK {
		st.savedPre = arena.Slab[T](s.nchunksPre, s.bandPre*s.Plan.N)
		st.savedRot = arena.Slab[T](s.nchunksRot, s.bandRot*s.Plan.N)
	}
	return st
}

// frame is the per-worker scratch of one execution: the O(max(m,n))
// permute-through buffer, the sub-row spare, the fine-phase head band
// and the rotation index arrays, plus an inline band reader. Buffers
// grow on demand and keep their capacity across recycled executions.
type frame[T any] struct {
	tmp   []T
	spare []T
	saved []T
	am    []int
	res   []int
	br    bandReader[T]
}

// elems returns the frame's n-element permute-through buffer, growing it
// if this execution needs more than any before.
func (fr *frame[T]) elems(n int) []T {
	if cap(fr.tmp) < n {
		fr.tmp = make([]T, n)
	}
	return fr.tmp[:n]
}

// spareBuf returns the frame's sub-row spare of at least n elements.
func (fr *frame[T]) spareBuf(n int) []T {
	if cap(fr.spare) < n {
		fr.spare = make([]T, n)
	}
	return fr.spare[:n]
}

// savedBuf returns the frame's fine-phase head-band buffer of at least n
// elements, growing it if this execution needs more than any before.
func (fr *frame[T]) savedBuf(n int) []T {
	if cap(fr.saved) < n {
		fr.saved = make([]T, n)
	}
	return fr.saved[:n]
}

// idx returns the frame's rotation amount/residual arrays of at least n
// ints.
func (fr *frame[T]) idx(n int) (am, res []int) {
	if cap(fr.am) < n {
		fr.am = make([]int, n)
	}
	if cap(fr.res) < n {
		fr.res = make([]int, n)
	}
	return fr.am[:n], fr.res[:n]
}
