// Package core implements the in-place transposition engines of the
// paper: the sequential Algorithm 1 (scatter-based), the gather-only
// parallel CPU formulation (§5.1), the cache-aware formulation with
// coarse/fine rotations and cycle-following row permutes (§4.6, §4.7,
// §5.2), and the skinny specialization for AoS↔SoA conversion (§6.1).
//
// All engines operate on a flat slice holding a row-major m×n array and
// permute it so that afterwards the same slice holds the row-major n×m
// transpose (Theorem 1: the C2R permutation, applied with row-major
// indexing, linearizes the transpose). The R2C engines apply the exact
// inverse permutation.
package core

import "inplace/internal/mathutil"

// OutOfPlace writes the transpose of the row-major m×n array src into
// dst (row-major n×m) and is the correctness oracle for every in-place
// engine. dst and src must not alias.
func OutOfPlace[T any](dst, src []T, m, n int) {
	mn, ok := mathutil.CheckedMul(m, n)
	if !ok || len(src) != mn || len(dst) != mn {
		panic("core: OutOfPlace length mismatch")
	}
	for i := 0; i < m; i++ {
		row := src[i*n : i*n+n]
		for j, v := range row {
			dst[j*m+i] = v
		}
	}
}

// GatherC2R materializes the out-of-place C2R permutation of Equation 11:
// dst[i*n+j] = src at (s(i,j), c(i,j)). Used by tests to validate that
// the in-place pipeline realizes exactly this permutation.
func GatherC2R[T any](dst, src []T, m, n int) {
	mn, ok := mathutil.CheckedMul(m, n)
	if !ok || len(src) != mn || len(dst) != mn {
		panic("core: GatherC2R length mismatch")
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			l := i*n + j
			s, c := l%m, l/m
			dst[l] = src[s*n+c]
		}
	}
}

// GatherR2C materializes the out-of-place R2C permutation of Equation 12:
// dst[i*n+j] = src at (t(i,j), d(i,j)). It is the inverse of GatherC2R.
func GatherR2C[T any](dst, src []T, m, n int) {
	mn, ok := mathutil.CheckedMul(m, n)
	if !ok || len(src) != mn || len(dst) != mn {
		panic("core: GatherR2C length mismatch")
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			l := i + j*m
			dst[i*n+j] = src[(l/n)*n+l%n]
		}
	}
}
