package core

import (
	"math/rand"
	"testing"

	"inplace/internal/cr"
)

var allVariants = []Variant{Scatter, Gather, CacheAware, Skinny}

func seqSlice(n int) []int {
	x := make([]int, n)
	for i := range x {
		x[i] = i
	}
	return x
}

func equalSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOutOfPlaceOracle(t *testing.T) {
	src := seqSlice(6) // 2x3: [[0 1 2], [3 4 5]]
	dst := make([]int, 6)
	OutOfPlace(dst, src, 2, 3)
	want := []int{0, 3, 1, 4, 2, 5}
	if !equalSlices(dst, want) {
		t.Fatalf("OutOfPlace = %v, want %v", dst, want)
	}
}

func TestOutOfPlacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	OutOfPlace(make([]int, 5), make([]int, 6), 2, 3)
}

// Theorem 1: the C2R gather's row-major linearization equals the
// transpose's row-major linearization.
func TestTheorem1GatherC2REqualsTranspose(t *testing.T) {
	for m := 1; m <= 16; m++ {
		for n := 1; n <= 16; n++ {
			src := seqSlice(m * n)
			viaGather := make([]int, m*n)
			viaTranspose := make([]int, m*n)
			GatherC2R(viaGather, src, m, n)
			OutOfPlace(viaTranspose, src, m, n)
			if !equalSlices(viaGather, viaTranspose) {
				t.Fatalf("m=%d n=%d: C2R gather != transpose\n%v\n%v", m, n, viaGather, viaTranspose)
			}
		}
	}
}

// GatherR2C inverts GatherC2R.
func TestGatherR2CInvertsC2R(t *testing.T) {
	for m := 1; m <= 16; m++ {
		for n := 1; n <= 16; n++ {
			src := seqSlice(m * n)
			mid := make([]int, m*n)
			back := make([]int, m*n)
			GatherC2R(mid, src, m, n)
			GatherR2C(back, mid, m, n)
			if !equalSlices(back, src) {
				t.Fatalf("m=%d n=%d: R2C did not invert C2R", m, n)
			}
		}
	}
}

// Every engine variant must realize the transposition for every shape.
func TestC2RAllVariantsExhaustive(t *testing.T) {
	for _, v := range allVariants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			for m := 1; m <= 24; m++ {
				for n := 1; n <= 24; n++ {
					plan := cr.NewPlan(m, n)
					data := seqSlice(m * n)
					want := make([]int, m*n)
					OutOfPlace(want, data, m, n)
					C2R(data, plan, Opts{Variant: v, Workers: 1})
					if !equalSlices(data, want) {
						t.Fatalf("m=%d n=%d: C2R %v wrong\n got %v\nwant %v", m, n, v, data, want)
					}
				}
			}
		})
	}
}

// R2C with plan (m, n) transposes a row-major n×m array into m×n.
func TestR2CAllVariantsExhaustive(t *testing.T) {
	for _, v := range allVariants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			for m := 1; m <= 24; m++ {
				for n := 1; n <= 24; n++ {
					plan := cr.NewPlan(m, n)
					data := seqSlice(m * n) // row-major n×m input
					want := make([]int, m*n)
					OutOfPlace(want, data, n, m)
					R2C(data, plan, Opts{Variant: v, Workers: 1})
					if !equalSlices(data, want) {
						t.Fatalf("m=%d n=%d: R2C %v wrong\n got %v\nwant %v", m, n, v, data, want)
					}
				}
			}
		})
	}
}

// R2C must invert C2R exactly, variant by variant and across variants.
func TestR2CInvertsC2RAcrossVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(40)
		n := 1 + rng.Intn(40)
		plan := cr.NewPlan(m, n)
		orig := make([]int, m*n)
		for i := range orig {
			orig[i] = rng.Int()
		}
		vc := allVariants[rng.Intn(len(allVariants))]
		vr := allVariants[rng.Intn(len(allVariants))]
		data := append([]int(nil), orig...)
		C2R(data, plan, Opts{Variant: vc})
		R2C(data, plan, Opts{Variant: vr})
		if !equalSlices(data, orig) {
			t.Fatalf("m=%d n=%d: R2C(%v) did not invert C2R(%v)", m, n, vr, vc)
		}
	}
}

// Parallel execution must agree with sequential for every variant.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, v := range allVariants {
		for trial := 0; trial < 25; trial++ {
			m := 1 + rng.Intn(80)
			n := 1 + rng.Intn(80)
			plan := cr.NewPlan(m, n)
			seqData := make([]int, m*n)
			for i := range seqData {
				seqData[i] = rng.Int()
			}
			parData := append([]int(nil), seqData...)
			C2R(seqData, plan, Opts{Variant: v, Workers: 1})
			C2R(parData, plan, Opts{Variant: v, Workers: 7})
			if !equalSlices(seqData, parData) {
				t.Fatalf("m=%d n=%d %v: parallel C2R differs from sequential", m, n, v)
			}
			R2C(seqData, plan, Opts{Variant: v, Workers: 1})
			R2C(parData, plan, Opts{Variant: v, Workers: 5})
			if !equalSlices(seqData, parData) {
				t.Fatalf("m=%d n=%d %v: parallel R2C differs from sequential", m, n, v)
			}
		}
	}
}

// Skinny shapes large enough to trigger the banded sweeps (rather than
// the general fallback) must still be exact.
func TestSkinnyBandedPath(t *testing.T) {
	shapes := [][2]int{
		{4096, 2}, {4097, 3}, {5000, 4}, {6000, 7}, {4100, 8},
		{9973, 5}, {8192, 16}, {7777, 31}, {5120, 32}, {4099, 24},
	}
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		plan := cr.NewPlan(m, n)
		if !skinnyViable(plan) {
			t.Fatalf("shape %dx%d should be skinny-viable", m, n)
		}
		data := seqSlice(m * n)
		want := make([]int, m*n)
		OutOfPlace(want, data, m, n)
		C2R(data, plan, Opts{Variant: Skinny, Workers: 4})
		if !equalSlices(data, want) {
			t.Fatalf("%dx%d: skinny C2R wrong", m, n)
		}
		R2C(data, plan, Opts{Variant: Skinny, Workers: 4})
		orig := seqSlice(m * n)
		if !equalSlices(data, orig) {
			t.Fatalf("%dx%d: skinny R2C did not invert", m, n)
		}
	}
}

// The cache-aware variant with tiny and odd block widths must stay exact.
func TestCacheAwareBlockWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, bw := range []int{1, 2, 3, 5, 8, 13, 64} {
		for trial := 0; trial < 10; trial++ {
			m := 1 + rng.Intn(60)
			n := 1 + rng.Intn(60)
			plan := cr.NewPlan(m, n)
			data := seqSlice(m * n)
			want := make([]int, m*n)
			OutOfPlace(want, data, m, n)
			C2R(data, plan, Opts{Variant: CacheAware, BlockW: bw, Workers: 3})
			if !equalSlices(data, want) {
				t.Fatalf("m=%d n=%d bw=%d: cache-aware C2R wrong", m, n, bw)
			}
			R2C(data, plan, Opts{Variant: CacheAware, BlockW: bw, Workers: 3})
			if !equalSlices(data, seqSlice(m*n)) {
				t.Fatalf("m=%d n=%d bw=%d: cache-aware R2C wrong", m, n, bw)
			}
		}
	}
}

// Degenerate shapes: single row, single column, single element, square.
func TestDegenerateShapes(t *testing.T) {
	for _, v := range allVariants {
		for _, sh := range [][2]int{{1, 1}, {1, 17}, {17, 1}, {8, 8}, {1, 2}, {2, 1}} {
			m, n := sh[0], sh[1]
			plan := cr.NewPlan(m, n)
			data := seqSlice(m * n)
			want := make([]int, m*n)
			OutOfPlace(want, data, m, n)
			C2R(data, plan, Opts{Variant: v})
			if !equalSlices(data, want) {
				t.Fatalf("%dx%d %v: degenerate C2R wrong: %v", m, n, v, data)
			}
		}
	}
}

func TestEngineLengthPanics(t *testing.T) {
	plan := cr.NewPlan(3, 4)
	for _, f := range []func(){
		func() { C2R(make([]int, 11), plan, Opts{}) },
		func() { R2C(make([]int, 13), plan, Opts{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on bad buffer length")
				}
			}()
			f()
		}()
	}
}

func TestUnknownVariantPanics(t *testing.T) {
	plan := cr.NewPlan(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unknown variant")
		}
	}()
	C2R(make([]int, 4), plan, Opts{Variant: Variant(99)})
}

func TestVariantString(t *testing.T) {
	want := map[Variant]string{
		Scatter: "scatter", Gather: "gather",
		CacheAware: "cache-aware", Skinny: "skinny",
		Variant(42): "Variant(42)",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("Variant(%d).String() = %q, want %q", int(v), v.String(), s)
		}
	}
}

// Different element types: the engines are generic.
func TestGenericElementTypes(t *testing.T) {
	m, n := 5, 8
	plan := cr.NewPlan(m, n)

	f := make([]float64, m*n)
	for i := range f {
		f[i] = float64(i) * 1.5
	}
	wantF := make([]float64, m*n)
	OutOfPlace(wantF, f, m, n)
	C2R(f, plan, Opts{Variant: Gather})
	for i := range f {
		if f[i] != wantF[i] {
			t.Fatalf("float64 transpose wrong at %d", i)
		}
	}

	type pair struct{ a, b int32 }
	ps := make([]pair, m*n)
	for i := range ps {
		ps[i] = pair{int32(i), int32(-i)}
	}
	wantP := make([]pair, m*n)
	OutOfPlace(wantP, ps, m, n)
	C2R(ps, plan, Opts{Variant: CacheAware})
	for i := range ps {
		if ps[i] != wantP[i] {
			t.Fatalf("struct transpose wrong at %d", i)
		}
	}
}
