package core

import (
	"fmt"

	"inplace/internal/cr"
	"inplace/internal/parallel"
)

// Variant selects an execution strategy for the in-place transposition
// engines. All variants compute the identical permutation; they differ in
// pass structure and memory access patterns.
type Variant int

const (
	// Scatter is Algorithm 1 verbatim: gather pre-rotation, scatter row
	// shuffle, gather column shuffle.
	Scatter Variant = iota
	// Gather is the gather-only formulation of §4.2/§5.1 using the
	// closed-form inverse d'^{-1}: the parallel CPU implementation.
	Gather
	// CacheAware is the §5.2 formulation: gather-only row shuffle plus
	// cache-aware coarse/fine column rotations and a cycle-following
	// whole-sub-row row permute.
	CacheAware
	// Skinny is the §6.1 specialization for matrices with a very small
	// column count: fused band gathers and whole-row cycle following.
	Skinny
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Scatter:
		return "scatter"
	case Gather:
		return "gather"
	case CacheAware:
		return "cache-aware"
	case Skinny:
		return "skinny"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Variants lists every execution strategy, in declaration order. The
// autotuner iterates this to enumerate its candidate space.
func Variants() []Variant { return []Variant{Scatter, Gather, CacheAware, Skinny} }

// ParseVariant maps a Variant.String() name back to the variant, for
// deserializing wisdom tables and CLI flags.
func ParseVariant(s string) (Variant, bool) {
	for _, v := range Variants() {
		if v.String() == s {
			return v, true
		}
	}
	return 0, false
}

// SkinnyViable reports whether the banded skinny formulation (§6.1)
// applies to plan's shape: the look-ahead bands must be short enough to
// snapshot and the matrix tall enough to amortize them. When it is
// false, an engine with Variant Skinny silently runs the cache-aware
// pipeline, so a tuner should not treat Skinny as a distinct candidate.
func SkinnyViable(p *cr.Plan) bool { return skinnyViable(p) }

// Opts configures an engine invocation.
type Opts struct {
	// Workers is the number of goroutines to use; 0 means GOMAXPROCS.
	Workers int
	// Variant selects the pass structure; the zero value is Scatter
	// (Algorithm 1).
	Variant Variant
	// BlockW is the sub-row width (in elements) used by the cache-aware
	// passes; 0 selects a width spanning a 64-byte cache line of 8-byte
	// elements.
	BlockW int
	// Pool, when non-nil, dispatches parallel chunks onto a persistent
	// worker pool instead of spawning goroutines per pass. Engines never
	// nest dispatches, as the pool requires.
	Pool *parallel.Pool
}

// DefaultBlockW is the default cache-aware sub-row width: eight elements
// span a 64-byte cache line of 64-bit values.
const DefaultBlockW = 8

func (o Opts) blockW() int {
	if o.BlockW > 0 {
		return o.BlockW
	}
	return DefaultBlockW
}

// C2R performs the in-place C2R transposition of the flat row-major
// m×n array described by plan: afterwards data holds the row-major n×m
// transpose (Theorem 1). len(data) must equal plan.M*plan.N.
//
// One-shot form: builds a Schedule and Engine per call. Callers that
// transpose repeatedly should hold an Engine (via the public Planner)
// and amortize that work instead.
func C2R[T any](data []T, plan *cr.Plan, o Opts) {
	NewEngine[T](NewSchedule(plan, o)).C2R(data)
}

// R2C performs the in-place R2C transposition, the exact inverse of C2R:
// if data holds a row-major n×m array, R2C with an m×n plan leaves data
// holding the row-major m×n transpose.
func R2C[T any](data []T, plan *cr.Plan, o Opts) {
	NewEngine[T](NewSchedule(plan, o)).R2C(data)
}
