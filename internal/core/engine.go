package core

import (
	"fmt"

	"inplace/internal/cr"
)

// Variant selects an execution strategy for the in-place transposition
// engines. All variants compute the identical permutation; they differ in
// pass structure and memory access patterns.
type Variant int

const (
	// Scatter is Algorithm 1 verbatim: gather pre-rotation, scatter row
	// shuffle, gather column shuffle.
	Scatter Variant = iota
	// Gather is the gather-only formulation of §4.2/§5.1 using the
	// closed-form inverse d'^{-1}: the parallel CPU implementation.
	Gather
	// CacheAware is the §5.2 formulation: gather-only row shuffle plus
	// cache-aware coarse/fine column rotations and a cycle-following
	// whole-sub-row row permute.
	CacheAware
	// Skinny is the §6.1 specialization for matrices with a very small
	// column count: fused band gathers and whole-row cycle following.
	Skinny
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Scatter:
		return "scatter"
	case Gather:
		return "gather"
	case CacheAware:
		return "cache-aware"
	case Skinny:
		return "skinny"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Opts configures an engine invocation.
type Opts struct {
	// Workers is the number of goroutines to use; 0 means GOMAXPROCS.
	Workers int
	// Variant selects the pass structure; the zero value is Scatter
	// (Algorithm 1).
	Variant Variant
	// BlockW is the sub-row width (in elements) used by the cache-aware
	// passes; 0 selects a width spanning a 64-byte cache line of 8-byte
	// elements.
	BlockW int
}

// DefaultBlockW is the default cache-aware sub-row width: eight elements
// span a 64-byte cache line of 64-bit values.
const DefaultBlockW = 8

func (o Opts) blockW() int {
	if o.BlockW > 0 {
		return o.BlockW
	}
	return DefaultBlockW
}

// C2R performs the in-place C2R transposition of the flat row-major
// m×n array described by plan: afterwards data holds the row-major n×m
// transpose (Theorem 1). len(data) must equal plan.M*plan.N.
func C2R[T any](data []T, plan *cr.Plan, o Opts) {
	if len(data) != plan.M*plan.N {
		panic(fmt.Sprintf("core: C2R buffer length %d does not match %v", len(data), plan))
	}
	switch o.Variant {
	case Scatter:
		c2rScatter(data, plan, o)
	case Gather:
		c2rGather(data, plan, o)
	case CacheAware:
		c2rCacheAware(data, plan, o)
	case Skinny:
		c2rSkinny(data, plan, o)
	default:
		panic("core: unknown variant " + o.Variant.String())
	}
}

// R2C performs the in-place R2C transposition, the exact inverse of C2R:
// if data holds a row-major n×m array, R2C with an m×n plan leaves data
// holding the row-major m×n transpose.
func R2C[T any](data []T, plan *cr.Plan, o Opts) {
	if len(data) != plan.M*plan.N {
		panic(fmt.Sprintf("core: R2C buffer length %d does not match %v", len(data), plan))
	}
	switch o.Variant {
	case Scatter:
		r2cScatter(data, plan, o)
	case Gather:
		r2cGather(data, plan, o)
	case CacheAware:
		r2cCacheAware(data, plan, o)
	case Skinny:
		r2cSkinny(data, plan, o)
	default:
		panic("core: unknown variant " + o.Variant.String())
	}
}

// c2rScatter is Algorithm 1: pre-rotate (if gcd > 1), scatter row
// shuffle, gather column shuffle.
func c2rScatter[T any](data []T, p *cr.Plan, o Opts) {
	if !p.Coprime {
		rotateColumnsGather(data, p.M, p.N, p.Rot, o.Workers)
	}
	rowShuffleScatter(data, p, o.Workers)
	columnShuffleGather(data, p, o.Workers)
}

// c2rGather is the gather-only formulation (§5.1): the row shuffle uses
// the closed-form inverse d'^{-1} so every pass is a gather.
func c2rGather[T any](data []T, p *cr.Plan, o Opts) {
	if !p.Coprime {
		rotateColumnsGather(data, p.M, p.N, p.Rot, o.Workers)
	}
	rowShuffleGather(data, p, o.Workers)
	columnShuffleGather(data, p, o.Workers)
}

// r2cScatter inverts Algorithm 1 pass by pass: the column shuffle
// s' = p∘q inverts as a q^{-1} row permute followed by a p^{-1} rotation,
// the row shuffle inverts as a gather with d', and the pre-rotation
// inverts as a gather with r^{-1} (§4.3).
func r2cScatter[T any](data []T, p *cr.Plan, o Opts) {
	rowPermuteGatherNaive(data, p.M, p.N, p.QInv, o.Workers)
	rotateColumnsGather(data, p.M, p.N, func(j int) int { return -j }, o.Workers)
	rowShuffleGatherD(data, p, o.Workers)
	if !p.Coprime {
		rotateColumnsGather(data, p.M, p.N, func(j int) int { return -p.Rot(j) }, o.Workers)
	}
}

// r2cGather matches r2cScatter; the R2C direction is naturally
// gather-only (§4.3), so the two variants coincide structurally.
func r2cGather[T any](data []T, p *cr.Plan, o Opts) {
	r2cScatter(data, p, o)
}
