package core

import (
	"sync"

	"inplace/internal/cr"
	"inplace/internal/parallel"
	"inplace/internal/perm"
)

// Schedule is the element-type-independent half of a reusable execution
// plan: everything the engines can precompute from the shape and options
// alone. Building one per call reproduces the old cold path; a Planner
// builds it once so repeated executions skip the chunk partitioning, the
// rotation-amount closures, and — the expensive part for skinny shapes —
// the cycle decomposition of the shared row permutation q.
type Schedule struct {
	Plan *cr.Plan
	Opts Opts

	blockW  int
	workers int
	pool    *parallel.Pool

	// Chunk partitions for every pass family, precomputed with the
	// resolved worker count so chunk index == scratch frame index.
	boundsM      []int // row passes over [0, M)
	boundsN      []int // column passes over [0, N)
	boundsGroups []int // cache-aware passes over column groups
	oneGroup     []int // the skinny row permute's single column group

	// Skinny banded path (§6.1).
	skinnyOK         bool
	bandPre, bandRot int   // look-ahead bands: c-1 and n-1
	boundsBandPre    []int // band sweeps over [0, M), minChunk c-1
	boundsBandRot    []int // band sweeps over [0, M), minChunk n-1
	nchunksPre       int
	nchunksRot       int

	// Rotation-amount and permutation closures, built once so executions
	// do not re-box plan methods.
	rotFn, negRotFn func(int) int
	idFn, negIDFn   func(int) int
	qFn, qInvFn     func(int) int

	// Cycle descriptors of q and q⁻¹ (§4.7), computed on first use by
	// the direction that needs them and then shared by every execution.
	qc2r, qr2c cycles
}

// cycles caches one row permutation in one-line notation together with
// its cycle leaders and a chunk partition over those leaders for the
// narrow-matrix parallelization of the cycle-following row permute.
type cycles struct {
	once    sync.Once
	p       perm.P
	leaders []int
	lengths []int
	bounds  []int
}

// NewSchedule resolves options against a plan: worker count, block
// width, chunk partitions, closure table and scratch sizing. It performs
// no per-element work besides the O(workers) partitions; the O(M) cycle
// decompositions are deferred to first use.
func NewSchedule(plan *cr.Plan, o Opts) *Schedule {
	s := &Schedule{
		Plan:    plan,
		Opts:    o,
		blockW:  o.blockW(),
		workers: parallel.Workers(o.Workers),
		pool:    o.Pool,
	}
	m, n := plan.M, plan.N
	s.boundsM = parallel.Bounds(m, s.workers, 1)
	s.boundsN = parallel.Bounds(n, s.workers, 1)
	groups := (n + s.blockW - 1) / s.blockW
	s.boundsGroups = parallel.Bounds(groups, s.workers, 1)
	s.oneGroup = []int{0, 1}

	s.skinnyOK = skinnyViable(plan)
	if s.skinnyOK {
		s.bandPre = plan.C - 1
		s.bandRot = n - 1
		s.boundsBandPre = parallel.Bounds(m, s.workers, max(s.bandPre, 1))
		s.boundsBandRot = parallel.Bounds(m, s.workers, max(s.bandRot, 1))
		s.nchunksPre = len(s.boundsBandPre) - 1
		s.nchunksRot = len(s.boundsBandRot) - 1
	}

	s.rotFn = plan.Rot
	s.negRotFn = func(j int) int { return -plan.Rot(j) }
	s.idFn = identityAmount
	s.negIDFn = negIdentityAmount
	s.qFn = plan.Q
	s.qInvFn = plan.QInv
	return s
}

func identityAmount(j int) int    { return j }
func negIdentityAmount(j int) int { return -j }

// qCycles returns the cycle descriptors of q, computing them on first
// use. Safe for concurrent executions.
func (s *Schedule) qCycles() *cycles { return s.cyc(&s.qc2r, s.qFn) }

// qInvCycles returns the cycle descriptors of q⁻¹.
func (s *Schedule) qInvCycles() *cycles { return s.cyc(&s.qr2c, s.qInvFn) }

func (s *Schedule) cyc(c *cycles, f func(int) int) *cycles {
	c.once.Do(func() {
		c.p = perm.FromFunc(s.Plan.M, f)
		c.leaders, c.lengths = c.p.Leaders()
		c.bounds = parallel.Bounds(len(c.leaders), s.workers, 1)
	})
	return c
}

// dispatch runs body over the chunks of bounds: on the persistent pool
// when the schedule has one, otherwise on freshly spawned goroutines.
// Callers handle the single-chunk case themselves (calling the kernel
// directly keeps the sequential path free of closure allocations).
func (s *Schedule) dispatch(bounds []int, body func(worker, lo, hi int)) {
	if s.pool != nil {
		s.pool.ForBounds(bounds, body)
		return
	}
	parallel.ForBounds(bounds, body)
}
