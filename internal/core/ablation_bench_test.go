package core

import (
	"fmt"
	"testing"

	"inplace/internal/cr"
)

// Ablation benchmarks for the design choices called out in DESIGN.md §5.
// Each pair isolates one optimization of the paper's Section 4 so its
// effect can be measured in isolation.

func benchC2RVariant(b *testing.B, v Variant, m, n, workers int) {
	plan := cr.NewPlan(m, n)
	data := make([]uint64, m*n)
	for i := range data {
		data[i] = uint64(i)
	}
	b.SetBytes(int64(2 * m * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		C2R(data, plan, Opts{Variant: v, Workers: workers})
	}
}

// Gather-only vs scatter row shuffle (§4.2): the two formulations of
// Algorithm 1's middle pass.
func BenchmarkAblationGatherVsScatter(b *testing.B) {
	for _, sh := range [][2]int{{512, 512}, {384, 768}} {
		b.Run(fmt.Sprintf("scatter-%dx%d", sh[0], sh[1]), func(b *testing.B) {
			benchC2RVariant(b, Scatter, sh[0], sh[1], 1)
		})
		b.Run(fmt.Sprintf("gather-%dx%d", sh[0], sh[1]), func(b *testing.B) {
			benchC2RVariant(b, Gather, sh[0], sh[1], 1)
		})
	}
}

// Cache-aware coarse/fine rotation + cycle-following row permute (§4.6,
// §4.7) vs the naive per-column passes.
func BenchmarkAblationCacheAwareColumnOps(b *testing.B) {
	for _, sh := range [][2]int{{768, 768}, {1024, 512}} {
		b.Run(fmt.Sprintf("naive-%dx%d", sh[0], sh[1]), func(b *testing.B) {
			benchC2RVariant(b, Gather, sh[0], sh[1], 1)
		})
		b.Run(fmt.Sprintf("cacheaware-%dx%d", sh[0], sh[1]), func(b *testing.B) {
			benchC2RVariant(b, CacheAware, sh[0], sh[1], 1)
		})
	}
}

// Skinny fused band sweeps (§6.1) vs the general engines on AoS shapes.
func BenchmarkAblationSkinny(b *testing.B) {
	m, n := 100_000, 8
	for _, v := range []Variant{Gather, CacheAware, Skinny} {
		b.Run(v.String(), func(b *testing.B) {
			benchC2RVariant(b, v, m, n, 1)
		})
	}
}

// Rotation primitives (§4.6): per-element strided rotation vs whole
// sub-row chunk rotation with analytic cycles.
func BenchmarkAblationRotate(b *testing.B) {
	m, n := 2048, 512
	data := make([]uint64, m*n)
	b.Run("naive-per-column", func(b *testing.B) {
		b.SetBytes(int64(2 * m * n * 8))
		for i := 0; i < b.N; i++ {
			rotateColumnsGather(data, m, n, func(j int) int { return j }, 1)
		}
	})
	b.Run("coarse-fine", func(b *testing.B) {
		b.SetBytes(int64(2 * m * n * 8))
		for i := 0; i < b.N; i++ {
			rotateColumnsCacheAware(data, m, n, func(j int) int { return j }, DefaultBlockW, 1)
		}
	})
}

// Row permutation (§4.7): per-column gather vs whole-sub-row cycle
// following.
func BenchmarkAblationRowPermute(b *testing.B) {
	m, n := 2048, 512
	plan := cr.NewPlan(m, n)
	data := make([]uint64, m*n)
	b.Run("naive-per-column", func(b *testing.B) {
		b.SetBytes(int64(2 * m * n * 8))
		for i := 0; i < b.N; i++ {
			rowPermuteGatherNaive(data, m, n, plan.Q, 1)
		}
	})
	b.Run("cycle-following", func(b *testing.B) {
		b.SetBytes(int64(2 * m * n * 8))
		for i := 0; i < b.N; i++ {
			rowPermuteCycles(data, m, n, plan.Q, DefaultBlockW, 1)
		}
	})
}

// Sub-row width of the cache-aware column operations (§4.6): one cache
// line is the paper's choice; wider blocks trade fine-phase band size for
// fewer, longer moves.
func BenchmarkAblationBlockW(b *testing.B) {
	m, n := 1024, 1024
	for _, bw := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("bw%d", bw), func(b *testing.B) {
			plan := cr.NewPlan(m, n)
			data := make([]uint64, m*n)
			b.SetBytes(int64(2 * m * n * 8))
			for i := 0; i < b.N; i++ {
				C2R(data, plan, Opts{Variant: CacheAware, BlockW: bw, Workers: 1})
			}
		})
	}
}

// Parallel scaling of the decomposed passes (perfect load balance claim):
// compare 1 worker against GOMAXPROCS workers.
func BenchmarkAblationWorkers(b *testing.B) {
	for _, w := range []int{1, 0} {
		name := "gomaxprocs"
		if w == 1 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			benchC2RVariant(b, CacheAware, 1024, 768, w)
		})
	}
}
