package core

import (
	"inplace/internal/cr"
	"inplace/internal/mathutil"
	"inplace/internal/parallel"
)

// This file implements the §6.1 specialization for skinny matrices — the
// shapes produced by Array-of-Structures ↔ Structure-of-Arrays
// conversion, where one dimension (the structure size) is tiny and the
// other (the element count) is huge.
//
// With n small, every column operation of the decomposition only ever
// reaches a bounded number of rows ahead of (or behind) the row being
// written: the pre-rotation looks ahead at most c-1 rows and the p_j
// rotation at most n-1 rows. Each pass therefore becomes a single
// in-place sweep over a sliding band of at most n rows — the entire
// working set of a step fits in cache (the paper's "all column operations
// in on-chip memory") — and the pre-rotation fuses with the row shuffle
// into one pass. The remaining whole-row permutation q moves contiguous
// n-element rows along its cycles.
//
// All inner loops run on incremental index arithmetic: the d' scatter
// destination and the rotation amounts advance by constant steps per
// column, so the sweeps perform no division at all (a stronger form of
// the paper's §4.4 strength reduction, available because the skinny
// passes visit indices in order).

// skinnyMaxBand bounds the look-ahead band for which the fused sweeps are
// used; beyond it (or when the band would reach a sizable fraction of m)
// the general gather engine takes over.
const skinnyMaxBand = 512

// skinnyViable reports whether the banded sweeps apply to the plan.
func skinnyViable(p *cr.Plan) bool {
	band := p.N - 1
	return band <= skinnyMaxBand && band*4 < p.M
}

// bandRowFunc produces destination row i of a band sweep into tmp,
// reading sources through the band reader.
type bandRowFunc[T any] func(br *bandReader[T], i int, tmp []T)

// skinnyC2RPass1 is the fused pre-rotation + row shuffle of the C2R
// transpose: a forward band sweep scattering
// tmp[d'_i(j)] = in[(i + ⌊j/b⌋) mod m][j] with look-ahead c-1. For each
// destination row i the scatter destination
// d'_i(j) = (srcRowMod + j*m) mod n and the source row i + ⌊j/b⌋ both
// advance incrementally in j.
//
//xpose:hotpath
func skinnyC2RPass1[T any](p *cr.Plan) bandRowFunc[T] {
	m, n, b := p.M, p.N, p.B
	mModN := m % n
	return func(br *bandReader[T], i int, tmp []T) {
		jb := 0     // j mod b
		jm := 0     // (j*m) mod n
		sr := i     // unreduced source row i + ⌊j/b⌋
		srMod := i  // source row mod m
		dm := i % n // source row mod m, reduced mod n
		for j := 0; j < n; j++ {
			d := dm + jm // ((i+⌊j/b⌋) mod m + j*m) mod n, both terms < n
			if d >= n {
				d -= n
			}
			tmp[d] = br.read(sr, j)
			// advance to j+1
			jm += mModN
			if jm >= n {
				jm -= n
			}
			jb++
			if jb == b {
				jb = 0
				sr++
				srMod++
				dm++
				if srMod == m {
					srMod = 0
					dm = 0
				} else if dm == n {
					dm = 0
				}
			}
		}
	}
}

// skinnyC2RPass2 is the p_j rotation as a forward band sweep with
// look-ahead n-1: out[i][j] = in[(i+j) mod m][j].
//
//xpose:hotpath
func skinnyC2RPass2[T any](p *cr.Plan) bandRowFunc[T] {
	n := p.N
	return func(br *bandReader[T], i int, tmp []T) {
		for j := 0; j < n; j++ {
			tmp[j] = br.read(i+j, j)
		}
	}
}

// skinnyR2CPass2 is the p^{-1} rotation as a backward band sweep with
// look-behind n-1: out[i][j] = in[(i-j) mod m][j].
//
//xpose:hotpath
func skinnyR2CPass2[T any](p *cr.Plan) bandRowFunc[T] {
	n := p.N
	return func(br *bandReader[T], i int, tmp []T) {
		for j := 0; j < n; j++ {
			tmp[j] = br.read(i-j, j)
		}
	}
}

// skinnyR2CPass3 is the fused row shuffle + inverse pre-rotation: a
// backward band sweep gathering
// out[i][j] = in[(i - ⌊j/b⌋) mod m][(i + j*m) mod n] (substituting
// r = i - ⌊j/b⌋ into d'_r(j) collapses the rotation term, so the source
// column needs no inverse map at all). The source column advances
// incrementally; the source row decrements every b columns.
//
//xpose:hotpath
func skinnyR2CPass3[T any](p *cr.Plan) bandRowFunc[T] {
	m, n, b := p.M, p.N, p.B
	mModN := m % n
	return func(br *bandReader[T], i int, tmp []T) {
		jb := 0
		jm := i % n // (i + j*m) mod n at j = 0
		sr := i     // unreduced source row i - rot
		for j := 0; j < n; j++ {
			tmp[j] = br.read(sr, jm)
			jm += mModN
			if jm >= n {
				jm -= n
			}
			jb++
			if jb == b {
				jb = 0
				sr--
			}
		}
	}
}

// bandReader resolves banded row reads for one chunk of a sweep: rows
// inside the chunk come from the live buffer, rows beyond its end (or
// before its start, for backward sweeps) from the pre-pass snapshots.
type bandReader[T any] struct {
	data    []T
	n       int
	m       int
	lo, hi  int
	band    int
	forward bool
	outside []T // ahead (forward) or behind (backward) snapshot
	wrap    []T // snapshot for the wrap-around band
}

// read returns element (sr mod m, col) as it was before the sweep began
// overwriting rows outside the caller's frontier. sr is the unreduced row
// index: within [i, i+band] for forward sweeps, [i-band, i] for backward.
//
//xpose:hotpath
func (br *bandReader[T]) read(sr, col int) T {
	if br.forward {
		if sr < br.hi {
			return br.data[sr*br.n+col]
		}
		if sr < br.m {
			// outside holds rows [hi, hi+band).
			return br.outside[(sr-br.hi)*br.n+col]
		}
		// wrap holds rows [0, band).
		return br.wrap[(sr-br.m)*br.n+col]
	}
	if sr >= br.lo {
		return br.data[sr*br.n+col]
	}
	if sr >= 0 {
		// outside holds rows [lo-band, lo).
		return br.outside[(sr-br.lo+br.band)*br.n+col]
	}
	// wrap holds rows [m-band, m); actual row is sr+m.
	return br.wrap[(sr+br.band)*br.n+col]
}

// bandChunkRange sweeps rows [lo, hi) of one chunk (upward when forward,
// downward otherwise), calling row(br, i, tmp) to produce each
// destination row into tmp before copying it over row i. br must already
// be initialized for the chunk; tmp must hold at least n elements.
//
//xpose:hotpath
func bandChunkRange[T any](br *bandReader[T], data []T, n int, forward bool, row bandRowFunc[T], tmp []T, lo, hi int) {
	if forward {
		for i := lo; i < hi; i++ {
			row(br, i, tmp)
			copy(data[i*n:i*n+n], tmp)
		}
		return
	}
	for i := hi - 1; i >= lo; i-- {
		row(br, i, tmp)
		copy(data[i*n:i*n+n], tmp)
	}
}

// snapshotBands copies, for every chunk of bounds, the band of rows the
// neighbouring chunk will overwrite before the sweep reaches them: the
// band at each chunk's start for forward sweeps (its predecessor reads
// ahead into it, and saved[0] doubles as the wrap-around band), or the
// band below each chunk's end for backward sweeps (saved[nchunks-1]
// doubles as the wrap-around band). saved[k] must hold band*n elements.
//
//xpose:hotpath
func snapshotBands[T any](data []T, n, band int, forward bool, bounds []int, saved [][]T) {
	if band <= 0 {
		return
	}
	for k := 0; k+1 < len(bounds); k++ {
		if forward {
			copy(saved[k], data[bounds[k]*n:(bounds[k]+band)*n])
		} else {
			copy(saved[k], data[(bounds[k+1]-band)*n:bounds[k+1]*n])
		}
	}
}

// bandNeighbors resolves, for chunk w of a sweep over nchunks chunks,
// which snapshots serve out-of-chunk reads: the adjacent chunk's band and
// the wrap-around band.
func bandNeighbors[T any](saved [][]T, band, nchunks, w int, forward bool) (outside, wrap []T) {
	if band <= 0 {
		return nil, nil
	}
	if forward {
		if w+1 < nchunks {
			outside = saved[w+1]
		}
		return outside, saved[0]
	}
	if w > 0 {
		outside = saved[w-1]
	}
	return outside, saved[nchunks-1]
}

// bandForward sweeps rows 0..m-1 upward in parallel chunks. Sources must
// satisfy i <= srcRow <= i+band (mod m); every chunk snapshots the band
// at its successor's start (and the global head for the wrap-around)
// before the sweep begins. One-shot form allocating its own snapshots and
// scratch; the Engine path reuses arena buffers instead.
func bandForward[T any](data []T, m, n, band, workers int, row bandRowFunc[T]) {
	bandSweepOneShot(data, m, n, band, workers, true, row)
}

// bandBackward sweeps rows m-1..0 downward in parallel chunks. Sources
// must satisfy i-band <= srcRow <= i (mod m); every chunk snapshots the
// band just below its start (its predecessor's tail; the global tail for
// the wrap-around).
func bandBackward[T any](data []T, m, n, band, workers int, row bandRowFunc[T]) {
	bandSweepOneShot(data, m, n, band, workers, false, row)
}

func bandSweepOneShot[T any](data []T, m, n, band, workers int, forward bool, row bandRowFunc[T]) {
	if band < 0 {
		band = 0
	}
	minChunk := band
	if minChunk < 1 {
		minChunk = 1
	}
	bounds := parallel.Bounds(m, workers, minChunk)
	nchunks := len(bounds) - 1
	var saved [][]T
	if band > 0 {
		bandElems, ok := mathutil.CheckedMul(band, n)
		if !ok {
			panic("core: band snapshot size overflows int")
		}
		saved = make([][]T, nchunks)
		for k := range saved {
			saved[k] = make([]T, bandElems)
		}
		snapshotBands(data, n, band, forward, bounds, saved)
	}
	parallel.ForBounds(bounds, func(w, lo, hi int) {
		br := &bandReader[T]{data: data, n: n, m: m, lo: lo, hi: hi, band: band, forward: forward}
		br.outside, br.wrap = bandNeighbors(saved, band, nchunks, w, forward)
		bandChunkRange(br, data, n, forward, row, make([]T, n), lo, hi)
	})
}
