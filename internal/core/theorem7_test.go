package core

import (
	"testing"

	"inplace/internal/cr"
)

// c2rColMajorIndexed runs Algorithm 1 addressing the buffer with
// column-major indexing (element (i,j) at offset i + j*m) instead of the
// row-major indexing the engines use.
func c2rColMajorIndexed(data []int, p *cr.Plan) {
	m, n := p.M, p.N
	at := func(i, j int) int { return data[i+j*m] }
	set := func(i, j, v int) { data[i+j*m] = v }
	colTmp := make([]int, m)
	rowTmp := make([]int, n)
	if !p.Coprime {
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				colTmp[i] = at(p.RGather(i, j), j)
			}
			for i := 0; i < m; i++ {
				set(i, j, colTmp[i])
			}
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			rowTmp[p.DPrime(i, j)] = at(i, j)
		}
		for j := 0; j < n; j++ {
			set(i, j, rowTmp[j])
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			colTmp[i] = at(p.SPrime(i, j), j)
		}
		for i := 0; i < m; i++ {
			set(i, j, colTmp[i])
		}
	}
}

// Theorem 7: the linearization assumed while performing the C2R
// transpose does not affect the permutation it induces — running the
// three passes with column-major indexing yields the same linear result
// as the row-major engines, even though every intermediate state
// differs.
func TestTheorem7LinearizationIndependence(t *testing.T) {
	for m := 1; m <= 20; m++ {
		for n := 1; n <= 20; n++ {
			p := cr.NewPlan(m, n)
			rowIndexed := seqSlice(m * n)
			colIndexed := seqSlice(m * n)
			C2R(rowIndexed, p, Opts{Variant: Scatter})
			c2rColMajorIndexed(colIndexed, p)
			if !equalSlices(rowIndexed, colIndexed) {
				t.Fatalf("m=%d n=%d: linearization changed the permutation\nrow-indexed %v\ncol-indexed %v",
					m, n, rowIndexed, colIndexed)
			}
		}
	}
}

// The intermediate states genuinely differ (the theorem is not vacuous):
// for the paper's 4×8 example, the buffers after the rotation pass
// disagree between the two linearizations.
func TestTheorem7IntermediatesDiffer(t *testing.T) {
	m, n := 4, 8
	p := cr.NewPlan(m, n)
	rowIndexed := seqSlice(m * n)
	rotateColumnsGather(rowIndexed, m, n, p.Rot, 1)
	colIndexed := seqSlice(m * n)
	colTmp := make([]int, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			colTmp[i] = colIndexed[p.RGather(i, j)+j*m]
		}
		for i := 0; i < m; i++ {
			colIndexed[i+j*m] = colTmp[i]
		}
	}
	if equalSlices(rowIndexed, colIndexed) {
		t.Fatal("intermediate states should differ between linearizations")
	}
}
