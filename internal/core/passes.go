package core

import (
	"inplace/internal/cr"
	"inplace/internal/mathutil"
	"inplace/internal/parallel"
)

// This file implements the elementary permutation passes of Algorithm 1
// and its gather-only variant (§4.2, §4.3, §5.1). Each pass permutes the
// flat row-major m×n buffer along rows or columns only; engines compose
// passes into full C2R/R2C transpositions.
//
// Every pass is written as a range kernel over [lo, hi) taking its
// O(max(m,n)) scratch from the caller, so the same code serves both the
// legacy one-shot entry points (which allocate scratch per call) and the
// reusable Engine (which draws scratch from a recycled arena and reaches
// a zero-allocation steady state).

// rotateColumnsGatherRange applies a per-column rotation as a gather for
// columns [lo, hi): column j becomes col'[i] = col[(i + amount(j)) mod m].
// This is the naive formulation; see cacheaware.go for the coarse/fine
// version. divM is the plan's strength-reduced divider for m, so the
// per-column amount normalization performs no hardware division; tmp must
// hold at least m elements.
//
//xpose:hotpath
func rotateColumnsGatherRange[T any](data []T, m, n int, amount func(j int) int, divM mathutil.Divider, tmp []T, lo, hi int) {
	for j := lo; j < hi; j++ {
		r := divM.SMod(amount(j))
		if r == 0 {
			continue
		}
		for i := 0; i < m; i++ {
			src := i + r
			if src >= m {
				src -= m
			}
			tmp[i] = data[src*n+j]
		}
		for i := 0; i < m; i++ {
			data[i*n+j] = tmp[i]
		}
	}
}

// rotateColumnsGather is the one-shot parallel form of the naive column
// rotation, kept for the ablation harness and pass-level tests.
func rotateColumnsGather[T any](data []T, m, n int, amount func(j int) int, workers int) {
	divM := mathutil.NewDivider(m)
	parallel.For(n, workers, func(_, lo, hi int) {
		rotateColumnsGatherRange(data, m, n, amount, divM, make([]T, m), lo, hi)
	})
}

// rowShuffleScatterRange is the row shuffle of Algorithm 1 for rows
// [lo, hi): each row i is scattered through tmp with indices d'_i(j)
// (Equation 24). tmp must hold at least n elements.
//
//xpose:hotpath
func rowShuffleScatterRange[T any](data []T, p *cr.Plan, tmp []T, lo, hi int) {
	n := p.N
	for i := lo; i < hi; i++ {
		row := data[i*n : i*n+n]
		for j, v := range row {
			tmp[p.DPrime(i, j)] = v
		}
		copy(row, tmp[:n])
	}
}

// rowShuffleGatherRange is the gather formulation of the row shuffle
// using the closed-form inverse d'^{-1}_i (Equation 31), preferred on
// hardware where gathers outperform scatters (§4.2).
//
//xpose:hotpath
func rowShuffleGatherRange[T any](data []T, p *cr.Plan, tmp []T, lo, hi int) {
	n := p.N
	for i := lo; i < hi; i++ {
		row := data[i*n : i*n+n]
		for j := range tmp[:n] {
			tmp[j] = row[p.DPrimeInv(i, j)]
		}
		copy(row, tmp[:n])
	}
}

// rowShuffleScatterIncRange is rowShuffleScatterRange with fully
// incremental index arithmetic: walking j in order, the scatter
// destination d'_i(j) = ((i + ⌊j/b⌋) mod m + j*m) mod n advances by
// constant steps (j*m mod n grows by m mod n; the rotation term bumps
// every b columns), so the inner loop performs no division at all — the
// strongest form of the §4.4 strength reduction, available to passes
// that visit indices in order.
//
//xpose:hotpath
func rowShuffleScatterIncRange[T any](data []T, p *cr.Plan, tmp []T, lo, hi int) {
	m, n := p.M, p.N
	mModN := m % n
	divN := p.DivN()
	b := p.B
	for i := lo; i < hi; i++ {
		row := data[i*n : i*n+n]
		jb := 0           // j mod b
		jm := 0           // (j*m) mod n
		srMod := i        // (i + ⌊j/b⌋) mod m
		dm := divN.Mod(i) // srMod mod n
		for j := 0; j < n; j++ {
			d := dm + jm
			if d >= n {
				d -= n
			}
			tmp[d] = row[j]
			jm += mModN
			if jm >= n {
				jm -= n
			}
			jb++
			if jb == b {
				jb = 0
				srMod++
				dm++
				if srMod == m {
					srMod = 0
					dm = 0
				} else if dm == n {
					dm = 0
				}
			}
		}
		copy(row, tmp[:n])
	}
}

// rowShuffleScatterInc is the one-shot parallel form, kept for the
// pass-level profiling entry points.
func rowShuffleScatterInc[T any](data []T, p *cr.Plan, workers int) {
	parallel.For(p.M, workers, func(_, lo, hi int) {
		rowShuffleScatterIncRange(data, p, make([]T, p.N), lo, hi)
	})
}

// rowShuffleGatherDRange gathers each row with d'_i directly; because
// gathering with a permutation's forward map applies its inverse, this is
// the row shuffle of the R2C transpose (§4.3).
//
//xpose:hotpath
func rowShuffleGatherDRange[T any](data []T, p *cr.Plan, tmp []T, lo, hi int) {
	n := p.N
	for i := lo; i < hi; i++ {
		row := data[i*n : i*n+n]
		for j := range tmp[:n] {
			tmp[j] = row[p.DPrime(i, j)]
		}
		copy(row, tmp[:n])
	}
}

// rowShuffleGatherDIncRange is rowShuffleGatherDRange with the same
// incremental index arithmetic as rowShuffleScatterIncRange: the R2C row
// shuffle gathers through d'_i, whose values advance by constant steps
// in j.
//
//xpose:hotpath
func rowShuffleGatherDIncRange[T any](data []T, p *cr.Plan, tmp []T, lo, hi int) {
	m, n := p.M, p.N
	mModN := m % n
	divN := p.DivN()
	b := p.B
	for i := lo; i < hi; i++ {
		row := data[i*n : i*n+n]
		jb := 0
		jm := 0
		srMod := i
		dm := divN.Mod(i)
		for j := 0; j < n; j++ {
			d := dm + jm
			if d >= n {
				d -= n
			}
			tmp[j] = row[d]
			jm += mModN
			if jm >= n {
				jm -= n
			}
			jb++
			if jb == b {
				jb = 0
				srMod++
				dm++
				if srMod == m {
					srMod = 0
					dm = 0
				} else if dm == n {
					dm = 0
				}
			}
		}
		copy(row, tmp[:n])
	}
}

// columnShuffleGatherRange applies the C2R column shuffle as a direct
// gather with s'_j (Equation 26), the single-pass formulation of
// Algorithm 1, for columns [lo, hi). tmp must hold at least m elements.
//
//xpose:hotpath
func columnShuffleGatherRange[T any](data []T, p *cr.Plan, tmp []T, lo, hi int) {
	m, n := p.M, p.N
	for j := lo; j < hi; j++ {
		for i := 0; i < m; i++ {
			tmp[i] = data[p.SPrime(i, j)*n+j]
		}
		for i := 0; i < m; i++ {
			data[i*n+j] = tmp[i]
		}
	}
}

// rowPermuteGatherNaiveRange permutes whole rows, out[i] = in[permf(i)],
// by gathering column-by-column over columns [lo, hi). The cache-aware
// engine replaces this with whole-sub-row cycle following (§4.7). tmp
// must hold at least m elements.
//
//xpose:hotpath
func rowPermuteGatherNaiveRange[T any](data []T, m, n int, permf func(i int) int, tmp []T, lo, hi int) {
	for j := lo; j < hi; j++ {
		for i := 0; i < m; i++ {
			tmp[i] = data[permf(i)*n+j]
		}
		for i := 0; i < m; i++ {
			data[i*n+j] = tmp[i]
		}
	}
}

// rowPermuteGatherNaive is the one-shot parallel form, kept for the
// ablation harness.
func rowPermuteGatherNaive[T any](data []T, m, n int, permf func(i int) int, workers int) {
	parallel.For(n, workers, func(_, lo, hi int) {
		rowPermuteGatherNaiveRange(data, m, n, permf, make([]T, m), lo, hi)
	})
}
