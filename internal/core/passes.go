package core

import (
	"inplace/internal/cr"
	"inplace/internal/parallel"
)

// This file implements the elementary permutation passes of Algorithm 1
// and its gather-only variant (§4.2, §4.3, §5.1). Each pass permutes the
// flat row-major m×n buffer along rows or columns only; engines compose
// passes into full C2R/R2C transpositions.
//
// Column passes parallelize over columns and row passes over rows; each
// worker permutes through its own O(max(m,n)) scratch buffer, preserving
// the paper's auxiliary-storage bound per execution lane.

// scratch hands each worker a zeroed-on-demand buffer of size max(m, n).
type scratch[T any] struct {
	bufs [][]T
}

func newScratch[T any](workers, size int) *scratch[T] {
	s := &scratch[T]{bufs: make([][]T, workers)}
	for i := range s.bufs {
		s.bufs[i] = make([]T, size)
	}
	return s
}

// rotateColumnsGather applies a per-column rotation as a gather:
// column j becomes col'[i] = col[(i + amount(j)) mod m]. This is the
// naive formulation; see cacheaware.go for the coarse/fine version.
func rotateColumnsGather[T any](data []T, m, n int, amount func(j int) int, workers int) {
	sc := newScratch[T](parallel.Workers(workers), m)
	parallel.For(n, workers, func(w, lo, hi int) {
		tmp := sc.bufs[w]
		for j := lo; j < hi; j++ {
			r := amount(j) % m
			if r < 0 {
				r += m
			}
			if r == 0 {
				continue
			}
			for i := 0; i < m; i++ {
				src := i + r
				if src >= m {
					src -= m
				}
				tmp[i] = data[src*n+j]
			}
			for i := 0; i < m; i++ {
				data[i*n+j] = tmp[i]
			}
		}
	})
}

// rowShuffleScatter is the row shuffle of Algorithm 1: each row i is
// scattered through a temporary vector with indices d'_i(j) (Equation 24).
func rowShuffleScatter[T any](data []T, p *cr.Plan, workers int) {
	m, n := p.M, p.N
	sc := newScratch[T](parallel.Workers(workers), n)
	parallel.For(m, workers, func(w, lo, hi int) {
		tmp := sc.bufs[w]
		for i := lo; i < hi; i++ {
			row := data[i*n : i*n+n]
			for j, v := range row {
				tmp[p.DPrime(i, j)] = v
			}
			copy(row, tmp[:n])
		}
	})
}

// rowShuffleGather is the gather formulation of the row shuffle using the
// closed-form inverse d'^{-1}_i (Equation 31), preferred on hardware where
// gathers outperform scatters (§4.2).
func rowShuffleGather[T any](data []T, p *cr.Plan, workers int) {
	m, n := p.M, p.N
	sc := newScratch[T](parallel.Workers(workers), n)
	parallel.For(m, workers, func(w, lo, hi int) {
		tmp := sc.bufs[w]
		for i := lo; i < hi; i++ {
			row := data[i*n : i*n+n]
			for j := range tmp[:n] {
				tmp[j] = row[p.DPrimeInv(i, j)]
			}
			copy(row, tmp[:n])
		}
	})
}

// rowShuffleScatterInc is rowShuffleScatter with fully incremental index
// arithmetic: walking j in order, the scatter destination
// d'_i(j) = ((i + ⌊j/b⌋) mod m + j*m) mod n advances by constant steps
// (j*m mod n grows by m mod n; the rotation term bumps every b columns),
// so the inner loop performs no division at all — the strongest form of
// the §4.4 strength reduction, available to passes that visit indices in
// order.
func rowShuffleScatterInc[T any](data []T, p *cr.Plan, workers int) {
	m, n := p.M, p.N
	mModN := m % n
	b := p.B
	sc := newScratch[T](parallel.Workers(workers), n)
	parallel.For(m, workers, func(w, lo, hi int) {
		tmp := sc.bufs[w]
		for i := lo; i < hi; i++ {
			row := data[i*n : i*n+n]
			jb := 0     // j mod b
			jm := 0     // (j*m) mod n
			srMod := i  // (i + ⌊j/b⌋) mod m
			dm := i % n // srMod mod n
			for j := 0; j < n; j++ {
				d := dm + jm
				if d >= n {
					d -= n
				}
				tmp[d] = row[j]
				jm += mModN
				if jm >= n {
					jm -= n
				}
				jb++
				if jb == b {
					jb = 0
					srMod++
					dm++
					if srMod == m {
						srMod = 0
						dm = 0
					} else if dm == n {
						dm = 0
					}
				}
			}
			copy(row, tmp[:n])
		}
	})
}

// rowShuffleGatherD gathers each row with d'_i directly; because gathering
// with a permutation's forward map applies its inverse, this is the row
// shuffle of the R2C transpose (§4.3).
func rowShuffleGatherD[T any](data []T, p *cr.Plan, workers int) {
	m, n := p.M, p.N
	sc := newScratch[T](parallel.Workers(workers), n)
	parallel.For(m, workers, func(w, lo, hi int) {
		tmp := sc.bufs[w]
		for i := lo; i < hi; i++ {
			row := data[i*n : i*n+n]
			for j := range tmp[:n] {
				tmp[j] = row[p.DPrime(i, j)]
			}
			copy(row, tmp[:n])
		}
	})
}

// rowShuffleGatherDInc is rowShuffleGatherD with the same incremental
// index arithmetic as rowShuffleScatterInc: the R2C row shuffle gathers
// through d'_i, whose values advance by constant steps in j.
func rowShuffleGatherDInc[T any](data []T, p *cr.Plan, workers int) {
	m, n := p.M, p.N
	mModN := m % n
	b := p.B
	sc := newScratch[T](parallel.Workers(workers), n)
	parallel.For(m, workers, func(w, lo, hi int) {
		tmp := sc.bufs[w]
		for i := lo; i < hi; i++ {
			row := data[i*n : i*n+n]
			jb := 0
			jm := 0
			srMod := i
			dm := i % n
			for j := 0; j < n; j++ {
				d := dm + jm
				if d >= n {
					d -= n
				}
				tmp[j] = row[d]
				jm += mModN
				if jm >= n {
					jm -= n
				}
				jb++
				if jb == b {
					jb = 0
					srMod++
					dm++
					if srMod == m {
						srMod = 0
						dm = 0
					} else if dm == n {
						dm = 0
					}
				}
			}
			copy(row, tmp[:n])
		}
	})
}

// columnShuffleGather applies the C2R column shuffle as a direct gather
// with s'_j (Equation 26), the single-pass formulation of Algorithm 1.
func columnShuffleGather[T any](data []T, p *cr.Plan, workers int) {
	m, n := p.M, p.N
	sc := newScratch[T](parallel.Workers(workers), m)
	parallel.For(n, workers, func(w, lo, hi int) {
		tmp := sc.bufs[w]
		for j := lo; j < hi; j++ {
			for i := 0; i < m; i++ {
				tmp[i] = data[p.SPrime(i, j)*n+j]
			}
			for i := 0; i < m; i++ {
				data[i*n+j] = tmp[i]
			}
		}
	})
}

// rowPermuteGatherNaive permutes whole rows, out[i] = in[perm(i)], by
// gathering column-by-column. The cache-aware engine replaces this with
// whole-sub-row cycle following (§4.7).
func rowPermuteGatherNaive[T any](data []T, m, n int, perm func(i int) int, workers int) {
	sc := newScratch[T](parallel.Workers(workers), m)
	parallel.For(n, workers, func(w, lo, hi int) {
		tmp := sc.bufs[w]
		for j := lo; j < hi; j++ {
			for i := 0; i < m; i++ {
				tmp[i] = data[perm(i)*n+j]
			}
			for i := 0; i < m; i++ {
				data[i*n+j] = tmp[i]
			}
		}
	})
}
