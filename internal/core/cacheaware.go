package core

import (
	"inplace/internal/cr"
	"inplace/internal/mathutil"
	"inplace/internal/parallel"
	"inplace/internal/perm"
)

// This file implements the cache-aware column operations of §4.6 and
// §4.7. Column rotations are split into a coarse phase — rotating whole
// cache-line-wide sub-rows by a per-group common amount via the analytic
// rotation cycles — and a fine phase that applies the small residual
// rotations with a single forward sweep over bounded-lookahead bands.
// The row permute moves whole sub-rows along precomputed cycles of q.
//
// Like passes.go, the work is written as range kernels drawing scratch
// from a caller-provided frame, shared between the legacy one-shot
// functions and the zero-allocation Engine path.

// rotateGroupsRange rotates column j up by amount(j) for every column of
// the groups [glo, ghi), processing groups of up to blockW adjacent
// columns together: a coarse whole-sub-row rotation by a group-common
// amount followed by a fine forward sweep applying the bounded
// residuals. divM is the plan's strength-reduced divider for m, so the
// per-column amount normalization performs no hardware division. Groups
// are independent, so any chunk of groups can run in parallel with any
// other.
//
//xpose:hotpath
func rotateGroupsRange[T any](data []T, m, n int, amount func(j int) int, divM mathutil.Divider, blockW int, fr *frame[T], glo, ghi int) {
	am, res := fr.idx(blockW)
	spare := fr.spareBuf(blockW)
	for g := glo; g < ghi; g++ {
		j0 := g * blockW
		j1 := j0 + blockW
		if j1 > n {
			j1 = n
		}
		w := j1 - j0
		for j := j0; j < j1; j++ {
			am[j-j0] = divM.SMod(amount(j))
		}
		// Pick the coarse amount so that every residual
		// (am - k) mod m stays below the band bound. The paper's
		// rotation amount functions are monotone across a group, so
		// either endpoint works; fall back to per-column rotation
		// otherwise (only possible for degenerate tiny m).
		band := 0
		ok := false
		var k int
		for _, cand := range [2]int{am[0], am[w-1]} {
			k = cand
			band = 0
			ok = true
			for jj := 0; jj < w; jj++ {
				r := am[jj] - k
				if r < 0 {
					r += m
				}
				res[jj] = r
				if r > band {
					band = r
				}
			}
			if band < m && band <= 2*blockW {
				break
			}
			ok = false
		}
		if !ok {
			// Degenerate group: rotate each column independently.
			for jj := 0; jj < w; jj++ {
				perm.RotateStrided(data, j0+jj, n, m, am[jj])
			}
			continue
		}
		if k != 0 {
			perm.RotateChunksStrided(data, j0, n, w, m, k, spare)
		}
		if band == 0 {
			continue
		}
		// Fine phase: forward sweep, out[i][j] = in[(i+res)%m][j].
		// Writing row i only consumes rows >= i, except wrapped reads
		// near the bottom, which come from the saved head band.
		saved := fr.savedBuf(band * w)
		for r := 0; r < band; r++ {
			copy(saved[r*w:r*w+w], data[r*n+j0:r*n+j1])
		}
		for i := 0; i < m; i++ {
			row := data[i*n+j0 : i*n+j1]
			for jj := 0; jj < w; jj++ {
				sr := i + res[jj]
				if sr < m {
					row[jj] = data[sr*n+j0+jj]
				} else {
					row[jj] = saved[(sr-m)*w+jj]
				}
			}
		}
	}
}

// rotateColumnsCacheAware is the one-shot parallel form of the
// coarse/fine rotation, kept for the ablation harness and the pass-level
// profiling entry points.
func rotateColumnsCacheAware[T any](data []T, m, n int, amount func(j int) int, blockW, workers int) {
	if m <= 1 || n == 0 {
		return
	}
	divM := mathutil.NewDivider(m)
	groups := (n + blockW - 1) / blockW
	parallel.For(groups, workers, func(_, glo, ghi int) {
		rotateGroupsRange(data, m, n, amount, divM, blockW, new(frame[T]), glo, ghi)
	})
}

// rowPermuteWideRange permutes whole rows, out[i] = in[p[i]], for the
// column groups [glo, ghi): every group of up to blockW adjacent columns
// walks all cycles over its own column range with whole-sub-row moves
// (§4.7). spare must hold at least min(blockW, n) elements.
//
//xpose:hotpath
func rowPermuteWideRange[T any](data []T, n, blockW int, p perm.P, leaders, lengths []int, spare []T, glo, ghi int) {
	for g := glo; g < ghi; g++ {
		j0 := g * blockW
		j1 := j0 + blockW
		if j1 > n {
			j1 = n
		}
		perm.GatherChunksStrided(data, j0, n, j1-j0, p, leaders, lengths, spare)
	}
}

// rowPermuteNarrowRange permutes whole rows for the cycles led by
// leaders[lo:hi], each worker moving full n-element rows. spare must
// hold at least n elements.
//
//xpose:hotpath
func rowPermuteNarrowRange[T any](data []T, n int, p perm.P, leaders, lengths []int, spare []T, lo, hi int) {
	perm.GatherChunksStrided(data, 0, n, n, p, leaders[lo:hi], lengths[lo:hi], spare)
}

// rowPermuteCycles permutes whole rows, out[i] = in[permf(i)], by
// following the cycles of the permutation with whole-sub-row moves
// (§4.7). Wide matrices parallelize across column groups; narrow ones
// across cycles. One-shot form: recomputes the cycle decomposition per
// call; the Engine path uses the schedule's cached descriptors instead.
func rowPermuteCycles[T any](data []T, m, n int, permf func(i int) int, blockW, workers int) {
	if m <= 1 || n == 0 {
		return
	}
	p := perm.FromFunc(m, permf)
	leaders, lengths := p.Leaders()
	if len(leaders) == 0 {
		return
	}
	nw := parallel.Workers(workers)
	if n >= nw*blockW || len(leaders) == 1 {
		// Wide: split columns into groups; every worker walks all cycles
		// over its own column range.
		groups := (n + blockW - 1) / blockW
		parallel.For(groups, workers, func(_, glo, ghi int) {
			rowPermuteWideRange(data, n, blockW, p, leaders, lengths, make([]T, blockW), glo, ghi)
		})
		return
	}
	// Narrow: distribute whole cycles across workers; each moves full
	// rows.
	parallel.For(len(leaders), workers, func(_, lo, hi int) {
		rowPermuteNarrowRange(data, n, p, leaders, lengths, make([]T, n), lo, hi)
	})
}

// Pass entry points exported for pass-level profiling and the ablation
// harness in cmd and bench code.

// PassRotatePre runs the C2R pre-rotation pass in isolation.
func PassRotatePre[T any](data []T, p *cr.Plan, blockW, workers int) {
	rotateColumnsCacheAware(data, p.M, p.N, p.Rot, blockW, workers)
}

// PassRowShuffle runs the C2R row shuffle pass in isolation.
func PassRowShuffle[T any](data []T, p *cr.Plan, workers int) {
	rowShuffleScatterInc(data, p, workers)
}

// PassRotateP runs the column-shuffle rotation component in isolation.
func PassRotateP[T any](data []T, p *cr.Plan, blockW, workers int) {
	rotateColumnsCacheAware(data, p.M, p.N, identityAmount, blockW, workers)
}

// PassRowPermute runs the column-shuffle row-permutation component in
// isolation.
func PassRowPermute[T any](data []T, p *cr.Plan, blockW, workers int) {
	rowPermuteCycles(data, p.M, p.N, p.Q, blockW, workers)
}
