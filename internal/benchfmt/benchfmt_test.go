package benchfmt

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inplace/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden testdata files")

// sample builds a small but fully populated current-version report.
func sample() Report {
	r := New("quick", 5, 2014)
	// Pin the environment so the golden bytes are host-independent.
	r.Env = Env{GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, NumCPU: 4}
	r.GoVersion = r.Env.GoVersion
	r.GOMAXPROCS = r.Env.GOMAXPROCS
	ns := []float64{100, 110, 105, 102, 108}
	gb := []float64{1.5, 1.4, 1.45, 1.48, 1.42}
	r.Experiments = []Experiment{
		{
			Name: "transpose_cold_64x48_w1", Kind: KindMicro,
			NsPerOp: 105, GBps: 1.45, AllocsPerOp: 0, BytesPerOp: 0,
			Series: []Series{
				{Name: "ns_per_op", Unit: "ns/op", Samples: ns, Summary: stats.Summarize(ns)},
				{Name: "gbps", Unit: "GB/s", HigherIsBetter: true, Samples: gb, Summary: stats.Summarize(gb)},
			},
		},
		{
			Name: "exp:locality:locality_misses", Kind: KindSeries,
			Series: []Series{
				{Name: "misses", Unit: "miss/elem", Samples: []float64{0.5, 0.25}, Summary: stats.Summarize([]float64{0.5, 0.25})},
			},
		},
	}
	return r
}

// Encode → Decode → Encode must be byte-identical: the envelope is a
// canonical serialization, so baselines diff cleanly under git.
func TestRoundTripByteIdentical(t *testing.T) {
	var first bytes.Buffer
	if err := Encode(&first, sample()); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := Encode(&second, dec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
	}
}

// The checked-in golden file pins the on-disk schema: decoding it and
// re-encoding must reproduce its exact bytes, so any accidental schema
// drift (field rename, ordering change, indentation change) fails here
// instead of corrupting the BENCH_PR*.json trajectory.
func TestGoldenFileStable(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := WriteFile(path, sample()); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := Encode(&got, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("golden file does not round-trip byte-identically; schema drifted?\ngot:\n%s", got.Bytes())
	}
	if rep.Version != 1 || rep.Preset != "quick" || rep.Seed != 2014 {
		t.Fatalf("golden header wrong: %+v", rep)
	}
}

// Unknown fields from a newer writer must be ignored, not rejected.
func TestDecodeToleratesUnknownFields(t *testing.T) {
	in := `{
  "version": 1,
  "future_top_level": {"nested": true},
  "go_version": "go1.99",
  "gomaxprocs": 1,
  "env": {"go_version": "go1.99", "goos": "plan9", "goarch": "riscv", "gomaxprocs": 1, "num_cpu": 1, "future_env": 7},
  "experiments": [
    {"name": "x", "ns_per_op": 1, "gbps": 2, "allocs_per_op": 0, "alloc_bytes_per_op": 0, "future_exp_field": "yes"}
  ]
}`
	rep, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatalf("unknown fields rejected: %v", err)
	}
	if e, ok := rep.Find("x"); !ok || e.GBps != 2 {
		t.Fatalf("known fields lost alongside unknown ones: %+v", rep)
	}
}

// Version skew is tolerated in both directions: a missing version field
// is the legacy (version 0) micro-report schema, and versions newer than
// this reader decode best-effort.
func TestDecodeVersionSkew(t *testing.T) {
	legacy := `{"go_version": "go1.22", "gomaxprocs": 2, "experiments": [{"name": "old", "ns_per_op": 5, "gbps": 1, "allocs_per_op": 3, "alloc_bytes_per_op": 64}]}`
	rep, err := Decode(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy report rejected: %v", err)
	}
	if rep.Version != 0 {
		t.Fatalf("missing version decoded as %d, want 0", rep.Version)
	}
	if e, ok := rep.Find("old"); !ok || e.AllocsPerOp != 3 {
		t.Fatalf("legacy experiment lost: %+v", rep)
	}

	newer := `{"version": 99, "go_version": "go9", "gomaxprocs": 1, "env": {}, "experiments": [{"name": "n", "ns_per_op": 1, "gbps": 1, "allocs_per_op": 0, "alloc_bytes_per_op": 0}]}`
	rep, err = Decode(strings.NewReader(newer))
	if err != nil {
		t.Fatalf("newer version rejected: %v", err)
	}
	if rep.Version != 99 {
		t.Fatalf("version not preserved: %d", rep.Version)
	}
}

// The repo root's historical BENCH_PR*.json trajectory files must keep
// loading through this decoder forever.
func TestDecodeLegacyTrajectoryFiles(t *testing.T) {
	for _, name := range []string{"BENCH_PR2.json", "BENCH_PR5.json"} {
		path := filepath.Join("..", "..", name)
		if _, err := os.Stat(path); err != nil {
			t.Skipf("%s not present: %v", name, err)
		}
		rep, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Version != 0 {
			t.Errorf("%s: legacy file decoded as version %d", name, rep.Version)
		}
		if len(rep.Experiments) == 0 || rep.GoVersion == "" {
			t.Errorf("%s: legacy payload lost: %+v", name, rep)
		}
	}
}

// Every decode failure must wrap ErrCorrupt and carry the diagnostic in
// its message, mirroring internal/ooc's error-constructor matrix.
func TestDecodeCorruptMatrix(t *testing.T) {
	cases := []struct {
		name     string
		in       string
		contains []string
	}{
		{"syntax", `{"version": 1,`, []string{"decoding"}},
		{"wrong type", `[1, 2, 3]`, []string{"decoding"}},
		{"negative version", `{"version": -1, "go_version": "g", "gomaxprocs": 1, "env": {}, "experiments": []}`, []string{"negative version", "-1"}},
		{"negative reps", `{"version": 1, "reps": -2, "go_version": "g", "gomaxprocs": 1, "env": {}, "experiments": []}`, []string{"negative reps"}},
		{"empty experiment name", `{"version": 1, "go_version": "g", "gomaxprocs": 1, "env": {}, "experiments": [{"name": "", "ns_per_op": 1, "gbps": 1, "allocs_per_op": 0, "alloc_bytes_per_op": 0}]}`, []string{"empty name"}},
		{"duplicate experiment", `{"version": 1, "go_version": "g", "gomaxprocs": 1, "env": {}, "experiments": [{"name": "a", "ns_per_op": 1, "gbps": 1, "allocs_per_op": 0, "alloc_bytes_per_op": 0}, {"name": "a", "ns_per_op": 1, "gbps": 1, "allocs_per_op": 0, "alloc_bytes_per_op": 0}]}`, []string{"duplicate experiment", `"a"`}},
		{"unknown kind", `{"version": 1, "go_version": "g", "gomaxprocs": 1, "env": {}, "experiments": [{"name": "a", "kind": "macro", "ns_per_op": 1, "gbps": 1, "allocs_per_op": 0, "alloc_bytes_per_op": 0}]}`, []string{"unknown kind", "macro"}},
		{"negative allocs", `{"version": 1, "go_version": "g", "gomaxprocs": 1, "env": {}, "experiments": [{"name": "a", "ns_per_op": 1, "gbps": 1, "allocs_per_op": -1, "alloc_bytes_per_op": 0}]}`, []string{"negative alloc"}},
		{"empty series name", `{"version": 1, "go_version": "g", "gomaxprocs": 1, "env": {}, "experiments": [{"name": "a", "ns_per_op": 1, "gbps": 1, "allocs_per_op": 0, "alloc_bytes_per_op": 0, "series": [{"name": "", "unit": "u", "summary": {"n": 0, "mean": 0, "trimmed_mean": 0, "median": 0, "mad": 0, "min": 0, "max": 0, "ci_lo": 0, "ci_hi": 0}}]}]}`, []string{"series with empty name"}},
		{"duplicate series", `{"version": 1, "go_version": "g", "gomaxprocs": 1, "env": {}, "experiments": [{"name": "a", "ns_per_op": 1, "gbps": 1, "allocs_per_op": 0, "alloc_bytes_per_op": 0, "series": [{"name": "s", "unit": "u", "summary": {"n": 0, "mean": 0, "trimmed_mean": 0, "median": 0, "mad": 0, "min": 0, "max": 0, "ci_lo": 0, "ci_hi": 0}}, {"name": "s", "unit": "u", "summary": {"n": 0, "mean": 0, "trimmed_mean": 0, "median": 0, "mad": 0, "min": 0, "max": 0, "ci_lo": 0, "ci_hi": 0}}]}]}`, []string{"duplicate series", `"s"`}},
		{"summary/sample mismatch", `{"version": 1, "go_version": "g", "gomaxprocs": 1, "env": {}, "experiments": [{"name": "a", "ns_per_op": 1, "gbps": 1, "allocs_per_op": 0, "alloc_bytes_per_op": 0, "series": [{"name": "s", "unit": "u", "samples": [1, 2, 3], "summary": {"n": 2, "mean": 0, "trimmed_mean": 0, "median": 0, "mad": 0, "min": 0, "max": 0, "ci_lo": 0, "ci_hi": 0}}]}]}`, []string{"n=2", "3 samples"}},
	}
	for _, c := range cases {
		_, err := Decode(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: decode accepted corrupt input", c.name)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: %v does not wrap ErrCorrupt", c.name, err)
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: %v is not a *FormatError", c.name, err)
		}
		for _, want := range c.contains {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: %q missing %q", c.name, err.Error(), want)
			}
		}
	}
}

// Encode refuses to produce a file its own Decode would reject.
func TestEncodeRejectsInvalid(t *testing.T) {
	r := sample()
	r.Experiments[0].Name = ""
	err := Encode(&bytes.Buffer{}, r)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("encode of invalid report: err = %v, want ErrCorrupt", err)
	}
}

func TestFindHelpers(t *testing.T) {
	r := sample()
	if _, ok := r.Find("nope"); ok {
		t.Error("Find found a missing experiment")
	}
	e, ok := r.Find("transpose_cold_64x48_w1")
	if !ok {
		t.Fatal("Find missed an existing experiment")
	}
	if s, ok := e.FindSeries("gbps"); !ok || !s.HigherIsBetter {
		t.Fatalf("FindSeries wrong: %+v ok=%v", s, ok)
	}
	if _, ok := e.FindSeries("nope"); ok {
		t.Error("FindSeries found a missing series")
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	want := sample()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Preset != want.Preset || len(got.Experiments) != len(want.Experiments) {
		t.Fatalf("file round trip lost data: %+v", got)
	}
}
