// Package benchfmt defines the versioned BENCH JSON envelope shared by
// every benchmark producer and consumer in the repository: cmd/benchorch
// writes it, `benchorch compare` diffs two of them, cmd/benchsuite's
// -bench-json delegates to it, and the checked-in BENCH_PR*.json
// trajectory files at the repo root are instances of it.
//
// The schema extends the historical micro-report layout (go_version,
// gomaxprocs, experiments[] with ns_per_op / gbps / allocs_per_op /
// alloc_bytes_per_op) with a format version, an environment fingerprint,
// the run's preset / seed / repetition count, and per-series sample sets
// with robust summary statistics (internal/stats). Decoding is tolerant
// where staleness is harmless — unknown fields and newer versions are
// accepted, and the legacy version-less files still load — but
// structurally invalid input is rejected with a *FormatError wrapping
// ErrCorrupt, mirroring internal/tune's wisdom loader.
package benchfmt

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"

	"inplace/internal/stats"
)

// Version is the current envelope format version. Version 0 denotes the
// legacy micro reports that predate the version field (BENCH_PR2.json,
// BENCH_PR5.json); they decode with the legacy fields populated and no
// series. Newer versions than this decode best-effort: fields this
// reader knows keep their meaning, unknown ones are ignored.
const Version = 1

// ErrCorrupt is the sentinel wrapped by every decode failure;
// errors.Is(err, ErrCorrupt) distinguishes a damaged report from I/O
// errors.
var ErrCorrupt = errors.New("benchfmt: corrupt bench report")

// FormatError is the typed error returned for syntactically or
// semantically invalid envelope input. It wraps ErrCorrupt.
type FormatError struct {
	Reason string
	Err    error // underlying decode error, may be nil
}

func (e *FormatError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("benchfmt: corrupt bench report: %s: %v", e.Reason, e.Err)
	}
	return "benchfmt: corrupt bench report: " + e.Reason
}

func (e *FormatError) Unwrap() error { return ErrCorrupt }

func corrupt(format string, args ...any) error {
	return &FormatError{Reason: fmt.Sprintf(format, args...)}
}

// Env fingerprints the machine and toolchain a report was measured on.
// compare uses it to annotate cross-host diffs (alloc counts transfer
// across hosts, wall-clock throughput does not).
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// HostEnv returns the fingerprint of the running process.
func HostEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Equal reports whether two fingerprints describe the same environment.
func (e Env) Equal(o Env) bool { return e == o }

// Series is one measured sample set of an experiment: a named metric in
// one unit, with the raw samples (optional — fixtures and compact
// baselines may carry only the digest) and their robust summary.
type Series struct {
	Name string `json:"name"`
	Unit string `json:"unit"`
	// HigherIsBetter orients the compare gate: true for throughput
	// (GB/s), false for latency (ns/op) or counts.
	HigherIsBetter bool          `json:"higher_is_better"`
	Samples        []float64     `json:"samples,omitempty"`
	Summary        stats.Summary `json:"summary"`
}

// Experiment kinds.
const (
	// KindMicro marks a micro-suite measurement whose alloc counts are a
	// hard invariant (the zero-alloc steady state). Legacy entries with
	// an empty kind are treated as micro.
	KindMicro = "micro"
	// KindSeries marks a registry-experiment capture: informational
	// series with no alloc semantics.
	KindSeries = "series"
)

// Experiment is one named measurement of a report. The scalar fields are
// the historical micro-report schema (medians of the series, kept so the
// BENCH_PR*.json trajectory stays one format); Series carries the full
// per-metric sample digests.
type Experiment struct {
	Name        string   `json:"name"`
	Kind        string   `json:"kind,omitempty"` // KindMicro ("" legacy) or KindSeries
	NsPerOp     float64  `json:"ns_per_op"`
	GBps        float64  `json:"gbps"`
	AllocsPerOp int64    `json:"allocs_per_op"`
	BytesPerOp  int64    `json:"alloc_bytes_per_op"`
	Series      []Series `json:"series,omitempty"`
}

// FindSeries returns the experiment's series with the given name.
func (e Experiment) FindSeries(name string) (Series, bool) {
	for _, s := range e.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// Report is the envelope.
type Report struct {
	Version int    `json:"version"`
	Preset  string `json:"preset,omitempty"`
	Reps    int    `json:"reps,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	// GoVersion and GOMAXPROCS mirror Env for the legacy readers of the
	// original micro-report schema.
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Env         Env          `json:"env"`
	Experiments []Experiment `json:"experiments"`
}

// New returns an empty current-version report stamped with the host
// fingerprint.
func New(preset string, reps int, seed int64) Report {
	env := HostEnv()
	return Report{
		Version:    Version,
		Preset:     preset,
		Reps:       reps,
		Seed:       seed,
		GoVersion:  env.GoVersion,
		GOMAXPROCS: env.GOMAXPROCS,
		Env:        env,
	}
}

// Find returns the report's experiment with the given name.
func (r Report) Find(name string) (Experiment, bool) {
	for _, e := range r.Experiments {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

func (r Report) validate() error {
	if r.Version < 0 {
		return corrupt("negative version %d", r.Version)
	}
	if r.Reps < 0 {
		return corrupt("negative reps %d", r.Reps)
	}
	seen := make(map[string]bool, len(r.Experiments))
	for _, e := range r.Experiments {
		if e.Name == "" {
			return corrupt("experiment with empty name")
		}
		if seen[e.Name] {
			return corrupt("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		switch e.Kind {
		case "", KindMicro, KindSeries:
		default:
			return corrupt("experiment %q: unknown kind %q", e.Name, e.Kind)
		}
		if e.AllocsPerOp < 0 || e.BytesPerOp < 0 {
			return corrupt("experiment %q: negative alloc counters", e.Name)
		}
		if math.IsNaN(e.NsPerOp) || math.IsNaN(e.GBps) {
			return corrupt("experiment %q: NaN scalar", e.Name)
		}
		names := make(map[string]bool, len(e.Series))
		for _, s := range e.Series {
			if s.Name == "" {
				return corrupt("experiment %q: series with empty name", e.Name)
			}
			if names[s.Name] {
				return corrupt("experiment %q: duplicate series %q", e.Name, s.Name)
			}
			names[s.Name] = true
			if s.Summary.N < 0 {
				return corrupt("experiment %q series %q: negative sample count", e.Name, s.Name)
			}
			if len(s.Samples) > 0 && s.Summary.N != len(s.Samples) {
				return corrupt("experiment %q series %q: summary n=%d but %d samples",
					e.Name, s.Name, s.Summary.N, len(s.Samples))
			}
		}
	}
	return nil
}

// Encode writes the report as deterministically formatted JSON: the same
// Report value always serializes to the same bytes (the round-trip
// property the envelope tests pin). Invalid reports are rejected with a
// *FormatError so a producer can never write a file its own Decode would
// refuse.
func Encode(w io.Writer, r Report) error {
	if err := r.validate(); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return &FormatError{Reason: "encoding", Err: err}
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// Decode reads an envelope from r.
//
//   - Syntactically invalid JSON and structurally invalid reports (empty
//     or duplicate experiment names, negative counters, sample/summary
//     mismatches) are rejected with a *FormatError wrapping ErrCorrupt.
//   - Unknown fields are ignored: a newer writer may extend the schema
//     without breaking this reader.
//   - A missing version field is the legacy micro-report format and
//     decodes as Version 0; versions newer than Version decode
//     best-effort with the fields this reader understands.
func Decode(r io.Reader) (Report, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return Report{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return Report{}, &FormatError{Reason: "decoding", Err: err}
	}
	if err := rep.validate(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// ReadFile decodes the envelope at path.
func ReadFile(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	return Decode(f)
}

// WriteFile encodes the report to path.
func WriteFile(path string, r Report) error {
	var buf bytes.Buffer
	if err := Encode(&buf, r); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
