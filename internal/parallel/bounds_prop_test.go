package parallel

import (
	"math/rand"
	"testing"
)

// checkBoundsInvariants asserts the full Bounds contract for one input:
//
//  1. The partition is contiguous and covers exactly [0, n) (or is the
//     empty [0, 0] partition for n <= 0).
//  2. Every chunk is non-empty, and at least minChunk wide — except that
//     n < minChunk yields one chunk covering everything.
//  3. The chunk count never exceeds the resolved worker count: the
//     engines index per-worker scratch frames by chunk number, so a
//     partition with more chunks than workers would read out of range.
func checkBoundsInvariants(t *testing.T, n, workers, minChunk int) {
	t.Helper()
	bounds := Bounds(n, workers, minChunk)
	if len(bounds) < 2 {
		t.Fatalf("Bounds(%d, %d, %d) = %v: want at least one chunk", n, workers, minChunk, bounds)
	}
	if bounds[0] != 0 {
		t.Fatalf("Bounds(%d, %d, %d) = %v: does not start at 0", n, workers, minChunk, bounds)
	}
	if n <= 0 {
		if len(bounds) != 2 || bounds[1] != 0 {
			t.Fatalf("Bounds(%d, %d, %d) = %v: want [0 0]", n, workers, minChunk, bounds)
		}
		return
	}
	if last := bounds[len(bounds)-1]; last != n {
		t.Fatalf("Bounds(%d, %d, %d) = %v: does not end at n", n, workers, minChunk, bounds)
	}
	mc := minChunk
	if mc < 1 {
		mc = 1
	}
	nchunks := len(bounds) - 1
	for k := 0; k < nchunks; k++ {
		size := bounds[k+1] - bounds[k]
		if size <= 0 {
			t.Fatalf("Bounds(%d, %d, %d) = %v: empty chunk %d", n, workers, minChunk, bounds, k)
		}
		if size < mc && nchunks > 1 {
			t.Fatalf("Bounds(%d, %d, %d) = %v: chunk %d narrower than minChunk", n, workers, minChunk, bounds, k)
		}
	}
	if nchunks > Workers(workers) {
		t.Fatalf("Bounds(%d, %d, %d) = %v: %d chunks exceed %d workers",
			n, workers, minChunk, bounds, nchunks, Workers(workers))
	}
}

func TestBoundsEdgeCases(t *testing.T) {
	cases := []struct{ n, workers, minChunk int }{
		{0, 4, 1},       // empty range
		{0, 0, 0},       // empty range, defaulted workers and minChunk
		{-3, 4, 2},      // negative range
		{5, 4, 10},      // minChunk > n: one chunk
		{10, 100, 3},    // workers > n/minChunk: clamped
		{10, 3, 3},      // tail shorter than minChunk: merged
		{1, 1, 1},       // singleton
		{1, 64, 512},    // singleton with huge minChunk
		{7, 7, 1},       // one item per worker
		{8, 7, 1},       // one spare item
		{512, 4, 512},   // minChunk == n
		{513, 4, 512},   // minChunk barely < n: tail must merge
		{1 << 20, 0, 1}, // GOMAXPROCS workers
	}
	for _, c := range cases {
		checkBoundsInvariants(t, c.n, c.workers, c.minChunk)
	}
}

func TestBoundsPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for iter := 0; iter < 20000; iter++ {
		n := rng.Intn(1 << 14)
		if iter%7 == 0 {
			n = rng.Intn(4) // stress tiny ranges
		}
		workers := rng.Intn(66) - 1 // includes -1 and 0 (defaulted)
		minChunk := rng.Intn(600) - 2
		checkBoundsInvariants(t, n, workers, minChunk)
	}
}
