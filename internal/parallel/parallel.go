// Package parallel provides the chunked parallel-for primitive used to
// distribute the decomposition's independent row and column permutations
// across goroutines. Because every row (and every column) permutation of
// the decomposed transpose is independent with identical cost, a static
// contiguous partition gives the perfect load balance the paper notes.
package parallel

import (
	"runtime"
	"sync"
)

// Workers returns the effective worker count: w if positive, otherwise
// GOMAXPROCS.
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Bounds partitions [0, n) into at most `workers` contiguous chunks and
// returns the boundaries as lo offsets terminated by n, so chunk k is
// [bounds[k], bounds[k+1]). Every chunk has at least minChunk items —
// a short tail is merged into the preceding chunk — except when
// n < minChunk, in which case a single chunk covers everything.
//
// The skinny band-gather kernels rely on the minimum-size guarantee: a
// chunk must be at least as wide as the band it reads ahead, so that each
// read lands either in the reader's own chunk or in the saved prefix of
// the immediately following one.
func Bounds(n, workers, minChunk int) []int {
	if n <= 0 {
		return []int{0, 0}
	}
	if minChunk < 1 {
		minChunk = 1
	}
	workers = Workers(workers)
	if maxW := n / minChunk; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		return []int{0, n}
	}
	chunk := (n + workers - 1) / workers
	if chunk < minChunk {
		chunk = minChunk
	}
	bounds := make([]int, 0, workers+1)
	for lo := 0; lo < n; lo += chunk {
		bounds = append(bounds, lo)
	}
	// Merge a short tail into the previous chunk.
	if last := bounds[len(bounds)-1]; len(bounds) > 1 && n-last < minChunk {
		bounds = bounds[:len(bounds)-1]
	}
	return append(bounds, n)
}

// ForBounds invokes body(worker, lo, hi) concurrently for each chunk of a
// Bounds partition and blocks until all complete. With a single chunk the
// body runs on the calling goroutine, keeping sequential benchmarks free
// of scheduling noise.
func ForBounds(bounds []int, body func(worker, lo, hi int)) {
	nchunks := len(bounds) - 1
	if nchunks <= 0 || bounds[nchunks] == bounds[0] {
		return
	}
	if nchunks == 1 {
		body(0, bounds[0], bounds[1])
		return
	}
	var wg sync.WaitGroup
	wg.Add(nchunks)
	for w := 0; w < nchunks; w++ {
		go func(w int) {
			defer wg.Done()
			body(w, bounds[w], bounds[w+1])
		}(w)
	}
	wg.Wait()
}

// For divides [0, n) across at most `workers` goroutines and invokes
// body(worker, lo, hi) per chunk, blocking until all complete.
func For(n, workers int, body func(worker, lo, hi int)) {
	ForBounds(Bounds(n, workers, 1), body)
}
