package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolForBoundsCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 5, 64, 1000} {
		for _, w := range []int{1, 3, 8, 0} {
			hits := make([]int32, n)
			p.ForBounds(Bounds(n, w, 1), func(worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d hit %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestPoolMatchesSpawningForBounds(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	n := 100000
	var pooled, spawned int64
	bounds := Bounds(n, 8, 1)
	p.ForBounds(bounds, func(worker, lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&pooled, local)
	})
	ForBounds(bounds, func(worker, lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&spawned, local)
	})
	if pooled != spawned {
		t.Fatalf("pooled sum %d != spawned sum %d", pooled, spawned)
	}
}

func TestPoolSingleChunkRunsOnCaller(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	ran := false
	p.ForBounds([]int{0, 10}, func(worker, lo, hi int) {
		if worker != 0 || lo != 0 || hi != 10 {
			t.Errorf("single chunk got worker=%d [%d,%d)", worker, lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("body never ran")
	}
	p.ForBounds([]int{0, 0}, func(worker, lo, hi int) {
		t.Error("body ran for empty bounds")
	})
}

// Many goroutines dispatching onto one pool concurrently: chunks may
// overflow the dispatch buffer and run inline, but every index must still
// be covered exactly once per call.
func TestPoolConcurrentCallers(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				n := 999
				var total int64
				p.ForBounds(Bounds(n, 8, 1), func(worker, lo, hi int) {
					var local int64
					for i := lo; i < hi; i++ {
						local += int64(i)
					}
					atomic.AddInt64(&total, local)
				})
				if want := int64(n) * int64(n-1) / 2; total != want {
					t.Errorf("total = %d, want %d", total, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPoolWorkerIndicesWithinFrameRange(t *testing.T) {
	// Chunk indices double as scratch-frame indices in the engines, so
	// they must stay below the chunk count of the bounds partition.
	p := NewPool(4)
	defer p.Close()
	bounds := Bounds(100, 4, 1)
	nchunks := len(bounds) - 1
	seen := make([]int32, nchunks)
	p.ForBounds(bounds, func(worker, lo, hi int) {
		if worker < 0 || worker >= nchunks {
			t.Errorf("worker index %d outside [0,%d)", worker, nchunks)
			return
		}
		atomic.AddInt32(&seen[worker], 1)
	})
	for w, c := range seen {
		if c != 1 {
			t.Fatalf("worker index %d used %d times", w, c)
		}
	}
}

func TestSharedPoolSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared() returned distinct pools")
	}
	var total int64
	Shared().ForBounds(Bounds(1000, 0, 1), func(worker, lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 1000 {
		t.Fatalf("shared pool covered %d of 1000", total)
	}
}
