package parallel

import (
	"sync"
)

// Pool is a persistent set of worker goroutines for the chunked
// parallel-for primitive. Spawning a goroutine per chunk per call is
// cheap for one large transposition but dominates the hot path when a
// reused plan transposes small or skinny arrays at high rates; a Pool
// parks its workers on a channel between calls so repeated executions
// amortize the spawn cost to zero.
//
// Bodies dispatched onto a Pool must not themselves dispatch onto the
// same Pool: tasks are drained only by the parked workers, so nested
// dispatch can deadlock. The engines never nest — passes run one after
// another and batch inner loops run sequentially.
type Pool struct {
	workers int
	tasks   chan poolTask

	closeOnce sync.Once
}

type poolTask struct {
	body           func(worker, lo, hi int)
	worker, lo, hi int
	wg             *sync.WaitGroup
}

// NewPool starts a pool of Workers(workers) parked goroutines.
func NewPool(workers int) *Pool {
	workers = Workers(workers)
	p := &Pool{
		workers: workers,
		// Oversized buffer: ForBounds dispatches at most Workers(w)
		// chunks per call, and concurrent callers that overflow the
		// buffer run their chunks inline instead of blocking.
		//xpose:allow indexoverflow -- workers is clamped to GOMAXPROCS by Workers
		tasks: make(chan poolTask, 4*workers),
	}
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

// Workers returns the number of goroutines the pool parks.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) run() {
	for t := range p.tasks {
		t.body(t.worker, t.lo, t.hi)
		t.wg.Done()
	}
}

// ForBounds invokes body(worker, lo, hi) for each chunk of a Bounds
// partition, like the package-level ForBounds, but on the pool's parked
// workers instead of freshly spawned goroutines. The calling goroutine
// runs the first chunk itself, and runs any chunk that does not fit the
// dispatch buffer inline, so a call always makes progress regardless of
// pool load. With a single chunk the body runs on the calling goroutine
// with no synchronization at all.
func (p *Pool) ForBounds(bounds []int, body func(worker, lo, hi int)) {
	nchunks := len(bounds) - 1
	if nchunks <= 0 || bounds[nchunks] == bounds[0] {
		return
	}
	if nchunks == 1 {
		body(0, bounds[0], bounds[1])
		return
	}
	var wg sync.WaitGroup
	wg.Add(nchunks - 1)
	for w := 1; w < nchunks; w++ {
		t := poolTask{body: body, worker: w, lo: bounds[w], hi: bounds[w+1], wg: &wg}
		select {
		case p.tasks <- t:
		default:
			t.body(t.worker, t.lo, t.hi)
			wg.Done()
		}
	}
	body(0, bounds[0], bounds[1])
	wg.Wait()
}

// For divides [0, n) across at most `workers` chunks and runs them on the
// pool, blocking until all complete.
func (p *Pool) For(n, workers int, body func(worker, lo, hi int)) {
	p.ForBounds(Bounds(n, workers, 1), body)
}

// Close terminates the pool's workers. Dispatching after Close panics.
// Close is idempotent and must not race with ForBounds calls.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.tasks) })
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide persistent pool, sized to GOMAXPROCS
// and started on first use. It is never closed: idle workers are parked
// on a channel receive and cost nothing. The plan-reuse execution path
// and the batch layer dispatch through it so that every transposition in
// the process amortizes goroutine spawn against the same worker set.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(0) })
	return sharedPool
}
