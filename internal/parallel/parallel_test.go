package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatal("Workers(4) != 4")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(0) != GOMAXPROCS")
	}
	if Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(-3) != GOMAXPROCS")
	}
}

func checkBounds(t *testing.T, bounds []int, n, minChunk int) {
	t.Helper()
	if bounds[0] != 0 || bounds[len(bounds)-1] != n {
		t.Fatalf("bounds %v do not span [0,%d)", bounds, n)
	}
	for k := 0; k+1 < len(bounds); k++ {
		size := bounds[k+1] - bounds[k]
		if size <= 0 {
			t.Fatalf("bounds %v contain empty chunk", bounds)
		}
		if n >= minChunk && size < minChunk {
			t.Fatalf("bounds %v: chunk %d smaller than minChunk %d", bounds, k, minChunk)
		}
	}
}

func TestBoundsProperties(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 16, 100, 101, 1000} {
		for _, w := range []int{1, 2, 3, 4, 7, 8, 16, 0} {
			for _, mc := range []int{1, 2, 3, 5, 8, 50} {
				bounds := Bounds(n, w, mc)
				if n == 0 {
					if len(bounds) != 2 || bounds[0] != 0 || bounds[1] != 0 {
						t.Fatalf("Bounds(0,...) = %v", bounds)
					}
					continue
				}
				checkBounds(t, bounds, n, mc)
				if got, max := len(bounds)-1, Workers(w); got > max {
					t.Fatalf("Bounds(%d,%d,%d) = %v has %d chunks, worker cap %d", n, w, mc, bounds, got, max)
				}
			}
		}
	}
}

func TestBoundsSingleWhenTiny(t *testing.T) {
	bounds := Bounds(3, 8, 10) // n < minChunk
	if len(bounds) != 2 || bounds[1] != 3 {
		t.Fatalf("Bounds tiny = %v", bounds)
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000} {
		for _, w := range []int{1, 3, 8, 0} {
			hits := make([]int32, n)
			For(n, w, func(worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d hit %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestForWorkerIndicesDistinct(t *testing.T) {
	seen := make(map[int]bool)
	var n int32
	For(100, 4, func(worker, lo, hi int) {
		atomic.AddInt32(&n, 1)
		_ = worker
	})
	For(100, 1, func(worker, lo, hi int) {
		if worker != 0 {
			t.Errorf("single worker index = %d", worker)
		}
		if lo != 0 || hi != 100 {
			t.Errorf("single worker range = [%d,%d)", lo, hi)
		}
		seen[worker] = true
	})
	if !seen[0] {
		t.Fatal("body never ran")
	}
}

func TestForBoundsParallelSum(t *testing.T) {
	n := 100000
	var total int64
	ForBounds(Bounds(n, 8, 1), func(worker, lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&total, local)
	})
	want := int64(n) * int64(n-1) / 2
	if total != want {
		t.Fatalf("parallel sum = %d, want %d", total, want)
	}
}

func TestForEmpty(t *testing.T) {
	ran := false
	For(0, 4, func(worker, lo, hi int) { ran = true })
	if ran {
		t.Fatal("body ran for empty range")
	}
	ForBounds([]int{0, 0}, func(worker, lo, hi int) { ran = true })
	if ran {
		t.Fatal("body ran for empty bounds")
	}
}
