package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"inplace/internal/stats"
)

func TestAdmitImmediate(t *testing.T) {
	a := newAdmitter(1000, time.Second, 8, stats.NewRegistry())
	rel, err := a.Admit(600)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if got := a.InFlight(); got != 600 {
		t.Fatalf("InFlight = %d, want 600", got)
	}
	rel()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

func TestAdmitTooLarge(t *testing.T) {
	a := newAdmitter(1000, time.Second, 8, stats.NewRegistry())
	if _, err := a.Admit(1001); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestAdmitQueuesAndGrantsFIFO(t *testing.T) {
	a := newAdmitter(100, 5*time.Second, 8, stats.NewRegistry())
	rel, err := a.Admit(100)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Stagger so queue order is deterministic.
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			r, err := a.Admit(100)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}(i)
	}
	close(start)
	time.Sleep(120 * time.Millisecond) // let all three enqueue
	rel()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order = %v, want FIFO [0 1 2]", order)
		}
	}
}

func TestAdmitShedsOnDeadline(t *testing.T) {
	a := newAdmitter(100, 30*time.Millisecond, 8, stats.NewRegistry())
	rel, err := a.Admit(100)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer rel()
	_, err = a.Admit(50)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", shed.RetryAfter)
	}
}

func TestAdmitShedsOnFullQueue(t *testing.T) {
	a := newAdmitter(100, time.Second, 1, stats.NewRegistry())
	rel, _ := a.Admit(100)
	defer rel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Occupies the single queue slot until the budget frees.
		if r, err := a.Admit(10); err == nil {
			r()
		}
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := a.Admit(10); err == nil {
		t.Fatal("expected shed with full queue")
	} else {
		var shed *ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("err = %v, want *ShedError", err)
		}
	}
	rel()
	<-done
}

// TestAdmitBudgetNeverExceeded hammers the controller from many
// goroutines and asserts the invariant the /stats peak is meant to
// prove: the in-flight sum never passes the budget.
func TestAdmitBudgetNeverExceeded(t *testing.T) {
	const budget = 1 << 20
	reg := stats.NewRegistry()
	a := newAdmitter(budget, 2*time.Second, 256, reg)
	var wg sync.WaitGroup
	var maxSeen atomic.Int64
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cost := int64(1+i%7) * (budget / 16)
			for k := 0; k < 50; k++ {
				rel, err := a.Admit(cost)
				if err != nil {
					continue
				}
				if cur := a.InFlight(); cur > budget {
					maxSeen.Store(cur)
				}
				rel()
			}
		}(i)
	}
	wg.Wait()
	if over := maxSeen.Load(); over != 0 {
		t.Fatalf("in-flight reached %d, budget %d", over, budget)
	}
	if peak := reg.Level("server_inflight_bytes").Peak(); peak > budget {
		t.Fatalf("level peak %d exceeds budget %d", peak, budget)
	}
	if got := a.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", got)
	}
}

// TestAdmitGrantBeatsTimer pins the deadline/grant race: a release
// racing the timer must yield exactly one outcome, and a granted
// waiter must not also shed.
func TestAdmitGrantBeatsTimer(t *testing.T) {
	for round := 0; round < 50; round++ {
		a := newAdmitter(100, time.Millisecond, 8, stats.NewRegistry())
		rel, err := a.Admit(100)
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		got := make(chan error, 1)
		go func() {
			r, err := a.Admit(100)
			if err == nil {
				r()
			}
			got <- err
		}()
		time.Sleep(time.Millisecond) // land release near the deadline
		rel()
		err = <-got
		if err != nil {
			var shed *ShedError
			if !errors.As(err, &shed) {
				t.Fatalf("round %d: err = %v, want nil or *ShedError", round, err)
			}
		}
		// Either way the ledger must drain to zero.
		deadline := time.Now().Add(time.Second)
		for a.InFlight() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: ledger did not drain: %d", round, a.InFlight())
			}
			time.Sleep(time.Millisecond)
		}
	}
}
