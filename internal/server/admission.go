package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"inplace/internal/stats"
)

// The admission controller bounds the total bytes the daemon holds in
// flight. Its cost model is the paper's auxiliary-space theorem made
// operational: an in-memory job costs its payload plus the
// decomposition's scratch floor of 2·max(rows,cols)·elemSize bytes
// (the O(max(m,n)) bound of Catanzaro et al., the exact scratch a
// worst-case pass needs resident), and a spilled job costs only its
// out-of-core resident budget — the same floor, raised to the
// configured segment-pipeline budget — because its payload lives on
// disk. Because every cost is exact rather than heuristic, the ledger
// is a hard guarantee: the sum of admitted costs never exceeds the
// configured budget, which /stats exposes as the in-flight level and
// its peak.
//
// Jobs that do not fit immediately wait in FIFO order up to a deadline;
// beyond the deadline (or when the queue itself is full) the job is
// shed with a typed retry-after error. FIFO grant order means one large
// job cannot be starved by a stream of small ones.

// ShedError is returned when admission control rejects a job under
// load. RetryAfter is the controller's suggested backoff.
type ShedError struct {
	RetryAfter time.Duration
}

// Error describes the shed.
func (e *ShedError) Error() string {
	return fmt.Sprintf("server: admission shed, retry after %v", e.RetryAfter)
}

// ErrTooLarge reports a job whose admission cost exceeds the entire
// in-flight budget: it can never be admitted, so retrying is pointless.
var ErrTooLarge = errors.New("server: job exceeds the admission budget")

// admitter is the in-flight byte ledger.
type admitter struct {
	budget   int64
	maxWait  time.Duration
	maxQueue int

	mu       sync.Mutex
	inflight int64
	queue    []*waiter
	queued   int // live (non-canceled) waiters in queue

	admitted *stats.Counter
	shed     *stats.Counter
	inflLvl  *stats.Level
	queueLvl *stats.Level
}

type waiter struct {
	cost     int64
	ready    chan struct{}
	granted  bool
	canceled bool
}

// newAdmitter wires a controller to its registry metrics.
func newAdmitter(budget int64, maxWait time.Duration, maxQueue int, reg *stats.Registry) *admitter {
	a := &admitter{
		budget:   budget,
		maxWait:  maxWait,
		maxQueue: maxQueue,
		admitted: reg.Counter("server_admitted"),
		shed:     reg.Counter("server_shed"),
		inflLvl:  reg.Level("server_inflight_bytes"),
		queueLvl: reg.Level("server_queue_depth"),
	}
	reg.Gauge("server_inflight_budget_bytes").Observe(uint64(budget))
	return a
}

// Admit blocks until cost bytes fit under the budget or the deadline
// passes, returning a release func on success. Exactly one of release
// and err is non-nil.
func (a *admitter) Admit(cost int64) (release func(), err error) {
	if cost <= 0 {
		cost = 1
	}
	if cost > a.budget {
		return nil, fmt.Errorf("%w (cost %d > budget %d)", ErrTooLarge, cost, a.budget)
	}
	a.mu.Lock()
	if a.queued == 0 && a.inflight+cost <= a.budget {
		a.grantLockedDirect(cost)
		a.mu.Unlock()
		return func() { a.release(cost) }, nil
	}
	if a.maxQueue > 0 && a.queued >= a.maxQueue {
		a.shed.Inc()
		a.mu.Unlock()
		return nil, &ShedError{RetryAfter: a.retryAfter()}
	}
	w := &waiter{cost: cost, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.queued++
	a.queueLvl.Add(1)
	a.mu.Unlock()

	t := time.NewTimer(a.maxWait)
	defer t.Stop()
	select {
	case <-w.ready:
		return func() { a.release(cost) }, nil
	case <-t.C:
	}
	// Deadline passed — but a grant may have raced the timer. Decide
	// under the lock: granted wins, otherwise cancel in place (the
	// grant loop skips canceled waiters lazily).
	a.mu.Lock()
	if w.granted {
		a.mu.Unlock()
		return func() { a.release(cost) }, nil
	}
	w.canceled = true
	a.queued--
	a.queueLvl.Add(-1)
	a.shed.Inc()
	a.mu.Unlock()
	return nil, &ShedError{RetryAfter: a.retryAfter()}
}

// grantLockedDirect accounts an immediate admission. Caller holds mu.
func (a *admitter) grantLockedDirect(cost int64) {
	a.inflight += cost
	a.inflLvl.Add(cost)
	a.admitted.Inc()
}

// release returns cost bytes to the budget and grants queued waiters in
// FIFO order while they fit.
func (a *admitter) release(cost int64) {
	a.mu.Lock()
	a.inflight -= cost
	a.inflLvl.Add(-cost)
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked pops the queue head while the budget covers it. Caller
// holds mu.
func (a *admitter) grantLocked() {
	for len(a.queue) > 0 {
		w := a.queue[0]
		if w.canceled {
			a.queue = a.queue[1:]
			continue
		}
		if a.inflight+w.cost > a.budget {
			return
		}
		a.queue = a.queue[1:]
		a.queued--
		a.queueLvl.Add(-1)
		a.inflight += w.cost
		a.inflLvl.Add(w.cost)
		a.admitted.Inc()
		w.granted = true
		close(w.ready)
	}
}

// retryAfter suggests a backoff: the queue deadline, floored at 1ms so
// a zero-wait controller still hands clients a usable hint.
func (a *admitter) retryAfter() time.Duration {
	if a.maxWait < time.Millisecond {
		return time.Millisecond
	}
	return a.maxWait
}

// InFlight returns the currently admitted bytes (for tests).
func (a *admitter) InFlight() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}
