// Package server implements xposed, the transpose service daemon: a
// TCP server speaking the internal/server/wire protocol that runs
// client matrices through the process planner cache. One daemon
// multiplexes many clients over three shared resources — the planner
// cache (concurrent same-shape requests reuse one plan), the admission
// budget (total in-flight bytes are bounded by the paper's exact
// scratch cost model), and the coalescer (small same-shape jobs batch
// into single TransposeBatch calls). Jobs too large for memory spill
// through the out-of-core engine with a journaled temp file and are
// resumable by token across disconnects and daemon restarts.
package server

import (
	"bufio"
	"errors"
	"hash/crc64"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"inplace"
	"inplace/internal/mathutil"
	"inplace/internal/server/wire"
	"inplace/internal/stats"
)

// errBadElem covers every invalid-geometry failure on the data plane:
// non-positive dimensions, an unsupported element width, or a product
// that overflows. The wire layer reports it as CodeBadShape.
var errBadElem = errors.New("server: invalid shape or element width")

// errBadSequence reports a frame the protocol state machine cannot
// accept; the connection is closed because the stream position is no
// longer trustworthy.
var errBadSequence = errors.New("server: protocol sequence violation")

// crcTab is the CRC64-ECMA table used for result checksums.
var crcTab = crc64.MakeTable(crc64.ECMA)

// bufPool recycles data-plane buffers. It stores *[]byte (never bare
// slices) so Put does not box a new header allocation per cycle.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0)
		return &b
	},
}

// getBuf returns a pooled buffer of length n.
func getBuf(n int) *[]byte {
	p := bufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

// putBuf recycles a buffer obtained from getBuf.
func putBuf(p *[]byte) { bufPool.Put(p) }

// Config parameterizes a Server. The zero value is usable (spilling
// disabled); every limit has a production default.
type Config struct {
	// SpillDir is where jobs larger than MemJobLimit keep their
	// payload, journal and meta files. Empty disables spilling: jobs
	// that cannot run in memory are rejected with CodeTooLarge.
	SpillDir string

	// MaxInFlightBytes is the admission budget: the sum of the exact
	// per-job costs (payload + the decomposition's scratch floor for
	// in-memory jobs, the out-of-core resident budget for spilled
	// ones) never exceeds it. Default 1 GiB.
	MaxInFlightBytes int64

	// MemJobLimit is the per-job in-memory payload ceiling; larger
	// jobs spill. Default 64 MiB.
	MemJobLimit int64

	// OOCBudget is the resident scratch budget handed to the
	// out-of-core engine for spilled jobs, raised to the shape's
	// 2·max(rows,cols)·elem floor when necessary. Default 64 MiB.
	OOCBudget int64

	// MaxWait bounds how long an unadmitted job queues before it is
	// shed. Default 2s.
	MaxWait time.Duration

	// MaxQueue bounds the admission queue depth; beyond it jobs shed
	// immediately. Default 256.
	MaxQueue int

	// CoalesceWindow is how long the first small job of a shape waits
	// for companions before its batch executes. Default 200µs;
	// negative disables coalescing.
	CoalesceWindow time.Duration

	// CoalesceLimit is the per-job payload ceiling for coalescing
	// eligibility. Default 32 KiB.
	CoalesceLimit int64

	// CoalesceMax caps jobs per batch; a full batch executes without
	// waiting out the window. Default 64.
	CoalesceMax int

	// MaxData is the negotiated data-frame payload ceiling. Default
	// wire.DefaultMaxData.
	MaxData int

	// Registry receives the server's metrics; nil allocates a private
	// one. /stats merges it with the process-wide default registry.
	Registry *stats.Registry

	// wrapSpill, when non-nil, wraps the storage backend of every
	// spilled run. It exists for fault-injection tests: a wrapper that
	// fails after N writes simulates a mid-run crash without killing
	// the test process.
	wrapSpill func(inplace.Storage) inplace.Storage
}

// withDefaults resolves zero fields to production defaults.
func (c Config) withDefaults() Config {
	if c.MaxInFlightBytes <= 0 {
		c.MaxInFlightBytes = 1 << 30
	}
	if c.MemJobLimit <= 0 {
		c.MemJobLimit = 64 << 20
	}
	if c.OOCBudget <= 0 {
		c.OOCBudget = 64 << 20
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Second
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.CoalesceWindow == 0 {
		c.CoalesceWindow = 200 * time.Microsecond
	}
	if c.CoalesceLimit <= 0 {
		c.CoalesceLimit = 32 << 10
	}
	if c.CoalesceMax <= 0 {
		c.CoalesceMax = 64
	}
	if c.MaxData <= 0 {
		c.MaxData = wire.DefaultMaxData
	}
	if c.Registry == nil {
		c.Registry = stats.NewRegistry()
	}
	return c
}

// Server is one xposed daemon instance.
type Server struct {
	cfg    Config
	reg    *stats.Registry
	adm    *admitter
	coal   *coalescer
	spills *spillRegistry

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	jobs             *stats.Counter
	jobsInMem        *stats.Counter
	jobsSpilled      *stats.Counter
	coalescedBatches *stats.Counter
	coalescedJobs    *stats.Counter
	resumes          *stats.Counter
	bytesIn          *stats.Counter
	bytesOut         *stats.Counter
	protoErrs        *stats.Counter
	connLvl          *stats.Level
}

// New builds a server from cfg, adopting any spilled jobs already
// present in the spill directory (the crash-recovery path).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   cfg.Registry,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	s.adm = newAdmitter(cfg.MaxInFlightBytes, cfg.MaxWait, cfg.MaxQueue, s.reg)
	if cfg.CoalesceWindow > 0 {
		s.coal = newCoalescer(cfg.CoalesceWindow, cfg.CoalesceMax, s.execBatch)
	}
	if cfg.SpillDir != "" {
		sp, err := openSpillRegistry(cfg.SpillDir)
		if err != nil {
			return nil, err
		}
		s.spills = sp
	}
	s.jobs = s.reg.Counter("server_jobs")
	s.jobsInMem = s.reg.Counter("server_jobs_inmem")
	s.jobsSpilled = s.reg.Counter("server_jobs_spilled")
	s.coalescedBatches = s.reg.Counter("server_coalesced_batches")
	s.coalescedJobs = s.reg.Counter("server_coalesced_jobs")
	s.resumes = s.reg.Counter("server_resumes")
	s.bytesIn = s.reg.Counter("server_bytes_in")
	s.bytesOut = s.reg.Counter("server_bytes_out")
	s.protoErrs = s.reg.Counter("server_proto_errors")
	s.connLvl = s.reg.Level("server_connections")
	return s, nil
}

// SpilledJobs returns how many spilled jobs the server currently
// tracks (zero when spilling is disabled).
func (s *Server) SpilledJobs() int {
	if s.spills == nil {
		return 0
	}
	return s.spills.count()
}

// Serve accepts connections on ln until ln fails or the server closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// Close stops accepting, closes every live connection and waits for
// the handlers to drain. Spilled jobs keep their files and remain
// resumable by a future server over the same spill directory.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Snapshot under the lock, close outside it: Close on a TLS or
	// otherwise buffered connection can block on the peer, and the
	// handler cleanup paths need s.mu to deregister themselves.
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// handleConn runs one session: handshake, then a loop of job
// exchanges until the peer disconnects or violates the protocol.
func (s *Server) handleConn(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.connLvl.Add(-1)
		s.wg.Done()
	}()
	s.connLvl.Add(1)

	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var hdr [wire.HeaderLen]byte
	var ctrl [wire.MaxControlFrame]byte

	// Handshake: exactly one Hello, answered with the session limits.
	t, n, err := wire.ReadHeader(br, &hdr, s.cfg.MaxData)
	if err != nil || t != wire.TypeHello {
		s.protoErrs.Inc()
		return
	}
	if err := wire.ReadPayload(br, ctrl[:n]); err != nil {
		s.protoErrs.Inc()
		return
	}
	var hello wire.Hello
	if err := hello.Unmarshal(ctrl[:n]); err != nil || hello.Version != wire.Version {
		s.protoErrs.Inc()
		s.writeError(bw, &hdr, wire.CodeBadSequence, 0, "unsupported hello")
		return
	}
	ack := wire.HelloAck{
		Version:  wire.Version,
		MaxData:  uint32(s.cfg.MaxData),
		MemLimit: uint64(s.cfg.MemJobLimit),
		Budget:   uint64(s.cfg.MaxInFlightBytes),
	}
	var ackBuf [wire.HelloAckLen]byte
	ack.Marshal(&ackBuf)
	if wire.WriteFrame(bw, &hdr, wire.TypeHelloAck, ackBuf[:]) != nil || bw.Flush() != nil {
		return
	}

	for {
		t, n, err := wire.ReadHeader(br, &hdr, s.cfg.MaxData)
		if err != nil {
			// io.EOF at a frame boundary is a clean goodbye; anything
			// else is a torn or hostile stream.
			if err != io.EOF {
				s.protoErrs.Inc()
			}
			return
		}
		if n > len(ctrl) && t != wire.TypeData {
			s.protoErrs.Inc()
			return
		}
		switch t {
		case wire.TypeJob:
			if err := wire.ReadPayload(br, ctrl[:n]); err != nil {
				s.protoErrs.Inc()
				return
			}
			var job wire.Job
			if err := job.Unmarshal(ctrl[:n]); err != nil {
				s.protoErrs.Inc()
				return
			}
			if err := s.serveJob(br, bw, &hdr, job); err != nil {
				s.protoErrs.Inc()
				return
			}
		case wire.TypeResume:
			if err := wire.ReadPayload(br, ctrl[:n]); err != nil {
				s.protoErrs.Inc()
				return
			}
			var rsm wire.Resume
			if err := rsm.Unmarshal(ctrl[:n]); err != nil {
				s.protoErrs.Inc()
				return
			}
			if err := s.serveResume(br, bw, &hdr, rsm); err != nil {
				s.protoErrs.Inc()
				return
			}
		default:
			s.protoErrs.Inc()
			s.writeError(bw, &hdr, wire.CodeBadSequence, 0, "unexpected frame")
			return
		}
	}
}

// jobGeom is a validated job geometry.
type jobGeom struct {
	rows, cols, elem int
	total            int64 // payload bytes
	floor            int64 // 2·max(rows,cols)·elem, the paper's scratch bound
}

// checkJob validates wire geometry into a jobGeom.
func checkJob(rows, cols uint64, elem uint32) (jobGeom, error) {
	const maxDim = 1 << 31
	if rows == 0 || cols == 0 || rows > maxDim || cols > maxDim {
		return jobGeom{}, errBadElem
	}
	switch elem {
	case 1, 2, 4, 8:
	default:
		return jobGeom{}, errBadElem
	}
	g := jobGeom{rows: int(rows), cols: int(cols), elem: int(elem)}
	size, ok := mathutil.CheckedMul(g.rows, g.cols)
	if !ok {
		return jobGeom{}, errBadElem
	}
	total, ok := mathutil.CheckedMul(size, g.elem)
	if !ok {
		return jobGeom{}, errBadElem
	}
	g.total = int64(total)
	long := g.rows
	if g.cols > long {
		long = g.cols
	}
	g.floor = 2 * int64(long) * int64(g.elem)
	return g, nil
}

// spillCost is the admission cost of a spilled job: the out-of-core
// engine's resident budget (its payload lives on disk).
func (s *Server) spillCost(g jobGeom) int64 {
	b := s.cfg.OOCBudget
	if g.floor > b {
		b = g.floor
	}
	return b
}

// admitOrReport runs admission for cost and reports failures to the
// client as typed Error frames. ok is false when the job was rejected
// (the connection stays usable).
func (s *Server) admitOrReport(bw *bufio.Writer, hdr *[wire.HeaderLen]byte, cost int64) (release func(), ok bool, err error) {
	release, aerr := s.adm.Admit(cost)
	if aerr == nil {
		return release, true, nil
	}
	var shed *ShedError
	switch {
	case errors.As(aerr, &shed):
		return nil, false, s.writeError(bw, hdr, wire.CodeShed, shed.RetryAfter, aerr.Error())
	case errors.Is(aerr, ErrTooLarge):
		return nil, false, s.writeError(bw, hdr, wire.CodeTooLarge, 0, aerr.Error())
	default:
		return nil, false, s.writeError(bw, hdr, wire.CodeInternal, 0, aerr.Error())
	}
}

// serveJob runs one fresh job exchange. A nil return means the
// connection is still frame-aligned and usable; an error closes it.
func (s *Server) serveJob(br *bufio.Reader, bw *bufio.Writer, hdr *[wire.HeaderLen]byte, job wire.Job) error {
	s.jobs.Inc()
	g, gerr := checkJob(job.Rows, job.Cols, job.Elem)
	if gerr != nil {
		return s.writeError(bw, hdr, wire.CodeBadShape, 0, gerr.Error())
	}

	memCost := g.total + g.floor
	spill := job.Flags&wire.FlagSpill != 0 ||
		g.total > s.cfg.MemJobLimit ||
		memCost > s.cfg.MaxInFlightBytes
	if spill && s.spills == nil {
		return s.writeError(bw, hdr, wire.CodeTooLarge, 0, "server: spilling disabled, job too large for memory")
	}

	if !spill {
		return s.serveMemJob(br, bw, hdr, job.Token, g, memCost)
	}
	return s.serveSpillJob(br, bw, hdr, job.Token, g)
}

// serveMemJob is the in-memory data plane: admit, upload, transpose
// (coalesced when small), stream back.
func (s *Server) serveMemJob(br *bufio.Reader, bw *bufio.Writer, hdr *[wire.HeaderLen]byte, token uint64, g jobGeom, cost int64) error {
	release, ok, werr := s.admitOrReport(bw, hdr, cost)
	if !ok {
		return werr
	}
	defer release()
	s.jobsInMem.Inc()

	if err := s.sendAccept(bw, hdr, token, wire.ModeMemory, 0); err != nil {
		return err
	}

	bufp := getBuf(int(g.total))
	defer putBuf(bufp)
	buf := (*bufp)[:g.total]
	off := int64(0)
	if err := s.recvData(br, g.total, func(p []byte) error {
		copy(buf[off:], p)
		off += int64(len(p))
		return nil
	}); err != nil {
		return err
	}

	var xerr error
	if s.coal != nil && g.total <= s.cfg.CoalesceLimit {
		xerr = s.coal.submit(coalesceKey{rows: g.rows, cols: g.cols, elem: g.elem}, buf)
	} else {
		xerr = transposeMem(buf, g.rows, g.cols, g.elem)
	}
	if xerr != nil {
		code := wire.CodeInternal
		if errors.Is(xerr, errBadElem) {
			code = wire.CodeBadShape
		}
		return s.writeError(bw, hdr, code, 0, xerr.Error())
	}

	return s.sendResult(bw, hdr, token, wire.ModeMemory, crc64.Checksum(buf, crcTab), func(yield func([]byte) error) error {
		for off := int64(0); off < g.total; off += int64(s.cfg.MaxData) {
			end := off + int64(s.cfg.MaxData)
			if end > g.total {
				end = g.total
			}
			if err := yield(buf[off:end]); err != nil {
				return err
			}
		}
		return nil
	})
}

// serveSpillJob is the out-of-core data plane for a fresh job: the
// payload streams to a journaled temp file and the exchange is
// resumable by token from any interruption point.
func (s *Server) serveSpillJob(br *bufio.Reader, bw *bufio.Writer, hdr *[wire.HeaderLen]byte, token uint64, g jobGeom) error {
	j, ok := s.spills.create(token, g.rows, g.cols, g.elem, g.total)
	if !ok {
		return s.writeError(bw, hdr, wire.CodeBusy, 0, "server: token already in use")
	}
	defer j.releaseOwner()
	if err := s.spills.persistMeta(j); err != nil {
		s.spills.remove(token)
		return s.writeError(bw, hdr, wire.CodeInternal, 0, err.Error())
	}

	release, admitted, werr := s.admitOrReport(bw, hdr, s.spillCost(g))
	if !admitted {
		s.spills.remove(token)
		return werr
	}
	defer release()
	s.jobsSpilled.Inc()

	if err := s.sendAccept(bw, hdr, token, wire.ModeSpill, 0); err != nil {
		return err
	}
	return s.driveSpill(br, bw, hdr, j)
}

// serveResume reattaches a client to a spilled job, picking up the
// upload, the transform, or the download wherever it stopped.
func (s *Server) serveResume(br *bufio.Reader, bw *bufio.Writer, hdr *[wire.HeaderLen]byte, rsm wire.Resume) error {
	s.jobs.Inc()
	if s.spills == nil {
		return s.writeError(bw, hdr, wire.CodeUnknownToken, 0, "server: spilling disabled")
	}
	g, gerr := checkJob(rsm.Rows, rsm.Cols, rsm.Elem)
	if gerr != nil {
		return s.writeError(bw, hdr, wire.CodeBadShape, 0, gerr.Error())
	}
	j := s.spills.lookup(rsm.Token)
	if j == nil {
		return s.writeError(bw, hdr, wire.CodeUnknownToken, 0, "server: no spilled state for token")
	}
	j.mu.Lock()
	match := j.meta.Rows == g.rows && j.meta.Cols == g.cols && j.meta.Elem == g.elem
	j.mu.Unlock()
	if !match {
		return s.writeError(bw, hdr, wire.CodeBadShape, 0, "server: resume geometry does not match token")
	}
	if !j.acquire() {
		return s.writeError(bw, hdr, wire.CodeBusy, 0, "server: token owned by another connection")
	}
	defer j.releaseOwner()

	release, admitted, werr := s.admitOrReport(bw, hdr, s.spillCost(g))
	if !admitted {
		return werr
	}
	defer release()
	s.resumes.Inc()

	offset := j.receivedBytes()
	if j.state() != spillUploading {
		offset = j.total
	}
	if err := s.sendAccept(bw, hdr, rsm.Token, wire.ModeSpill, uint64(offset)); err != nil {
		return err
	}
	return s.driveSpill(br, bw, hdr, j)
}

// driveSpill advances a spilled job from its current state to
// completion: finish the upload, run (or resume) the out-of-core
// transform, then stream the result back and retire the token.
func (s *Server) driveSpill(br *bufio.Reader, bw *bufio.Writer, hdr *[wire.HeaderLen]byte, j *spillJob) error {
	token := j.meta.Token

	if j.state() == spillUploading {
		if err := s.recvSpillUpload(br, j); err != nil {
			return err
		}
		if err := s.spills.setState(j, spillReady); err != nil {
			return s.writeError(bw, hdr, wire.CodeInternal, 0, err.Error())
		}
	}

	if st := j.state(); st == spillReady || st == spillRunning {
		if err := s.runSpill(j); err != nil {
			// The journal survives: the job stays resumable.
			return s.writeError(bw, hdr, wire.CodeInternal, 0, err.Error())
		}
		if err := s.spills.setState(j, spillDone); err != nil {
			return s.writeError(bw, hdr, wire.CodeInternal, 0, err.Error())
		}
	}

	if err := s.sendSpillResult(bw, hdr, j); err != nil {
		// Disconnect mid-download: state stays done, the client can
		// Resume and re-download.
		return err
	}
	s.spills.remove(token)
	return nil
}

// recvSpillUpload streams the remaining payload bytes into the job's
// data file, starting at the contiguous received prefix.
func (s *Server) recvSpillUpload(br *bufio.Reader, j *spillJob) error {
	token := j.meta.Token
	f, err := os.OpenFile(s.spills.datPath(token), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	off := j.receivedBytes()
	return s.recvData(br, j.total-off, func(p []byte) error {
		if _, err := f.WriteAt(p, off); err != nil {
			return err
		}
		off += int64(len(p))
		j.addReceived(int64(len(p)))
		return nil
	})
}

// runSpill executes the out-of-core transform for a complete payload,
// resuming from the journal when a previous attempt got far enough to
// commit journal state.
func (s *Server) runSpill(j *spillJob) error {
	token := j.meta.Token
	resume := false
	if j.state() == spillRunning {
		if fi, err := os.Stat(s.spills.jrnPath(token)); err == nil && fi.Size() > 0 {
			resume = true
		}
	}
	if err := s.spills.setState(j, spillRunning); err != nil {
		return err
	}
	data, err := os.OpenFile(s.spills.datPath(token), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer data.Close()
	jrn, err := os.OpenFile(s.spills.jrnPath(token), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer jrn.Close()

	var backend inplace.Storage = data
	if s.cfg.wrapSpill != nil {
		backend = s.cfg.wrapSpill(data)
	}
	long := j.meta.Rows
	if j.meta.Cols > long {
		long = j.meta.Cols
	}
	_, err = inplace.TransposeFile(backend, j.meta.Rows, j.meta.Cols, j.meta.Elem, inplace.OOCOptions{
		Budget:  s.spillCost(jobGeom{floor: 2 * int64(long) * int64(j.meta.Elem)}),
		Journal: jrn,
		Resume:  resume,
	})
	return err
}

// sendSpillResult checksums the transposed file and streams it back.
func (s *Server) sendSpillResult(bw *bufio.Writer, hdr *[wire.HeaderLen]byte, j *spillJob) error {
	token := j.meta.Token
	f, err := os.Open(s.spills.datPath(token))
	if err != nil {
		return s.writeError(bw, hdr, wire.CodeInternal, 0, err.Error())
	}
	defer f.Close()

	chunkp := getBuf(s.cfg.MaxData)
	defer putBuf(chunkp)
	chunk := *chunkp

	h := crc64.New(crcTab)
	for off := int64(0); off < j.total; {
		n := int64(len(chunk))
		if off+n > j.total {
			n = j.total - off
		}
		if _, err := f.ReadAt(chunk[:n], off); err != nil {
			return s.writeError(bw, hdr, wire.CodeInternal, 0, err.Error())
		}
		h.Write(chunk[:n])
		off += n
	}

	return s.sendResult(bw, hdr, token, wire.ModeSpill, h.Sum64(), func(yield func([]byte) error) error {
		for off := int64(0); off < j.total; {
			n := int64(len(chunk))
			if off+n > j.total {
				n = j.total - off
			}
			if _, err := f.ReadAt(chunk[:n], off); err != nil {
				return err
			}
			if err := yield(chunk[:n]); err != nil {
				return err
			}
			off += n
		}
		return nil
	})
}

// recvData reads exactly total payload bytes from Data frames, handing
// each chunk to sink. Any failure desynchronizes the stream, so the
// caller must close the connection.
func (s *Server) recvData(br *bufio.Reader, total int64, sink func([]byte) error) error {
	if total <= 0 {
		return nil
	}
	chunkp := getBuf(s.cfg.MaxData)
	defer putBuf(chunkp)
	chunk := *chunkp
	var hdr [wire.HeaderLen]byte
	remaining := total
	for remaining > 0 {
		t, n, err := wire.ReadHeader(br, &hdr, s.cfg.MaxData)
		if err != nil {
			return err
		}
		if t != wire.TypeData || n == 0 || int64(n) > remaining {
			return errBadSequence
		}
		if err := wire.ReadPayload(br, chunk[:n]); err != nil {
			return err
		}
		if err := sink(chunk[:n]); err != nil {
			return err
		}
		remaining -= int64(n)
		s.bytesIn.Add(uint64(n))
	}
	return nil
}

// sendAccept writes an Accept frame and flushes.
func (s *Server) sendAccept(bw *bufio.Writer, hdr *[wire.HeaderLen]byte, token uint64, mode uint8, offset uint64) error {
	var b [wire.AcceptLen]byte
	wire.Accept{Token: token, Mode: mode, Offset: offset}.Marshal(&b)
	if err := wire.WriteFrame(bw, hdr, wire.TypeAccept, b[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// sendResult writes the Result header, streams the payload chunks the
// stream callback yields, closes with Done and flushes.
func (s *Server) sendResult(bw *bufio.Writer, hdr *[wire.HeaderLen]byte, token uint64, mode uint8, crc uint64, stream func(yield func([]byte) error) error) error {
	var b [wire.ResultLen]byte
	wire.Result{Token: token, Mode: mode, CRC: crc}.Marshal(&b)
	if err := wire.WriteFrame(bw, hdr, wire.TypeResult, b[:]); err != nil {
		return err
	}
	err := stream(func(p []byte) error {
		if err := wire.WriteFrame(bw, hdr, wire.TypeData, p); err != nil {
			return err
		}
		s.bytesOut.Add(uint64(len(p)))
		return nil
	})
	if err != nil {
		return err
	}
	if err := wire.WriteFrame(bw, hdr, wire.TypeDone, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// writeError reports a typed failure to the client and flushes. The
// connection stays frame-aligned: an Error replaces Accept or Result
// in the exchange.
func (s *Server) writeError(bw *bufio.Writer, hdr *[wire.HeaderLen]byte, code uint16, retry time.Duration, msg string) error {
	payload := wire.ErrorMsg{
		Code:             code,
		RetryAfterMillis: uint32(retry / time.Millisecond),
		Msg:              msg,
	}.AppendMarshal(nil)
	if err := wire.WriteFrame(bw, hdr, wire.TypeError, payload); err != nil {
		return err
	}
	return bw.Flush()
}

// execBatch is the coalescer's executor: members of one group share a
// shape, so their payloads concatenate into a single TransposeBatch
// call on the shared planner. A group of one skips the staging copies.
func (s *Server) execBatch(key coalesceKey, members []*coMember) {
	if len(members) == 1 {
		members[0].err <- transposeMem(members[0].data, key.rows, key.cols, key.elem)
		return
	}
	s.coalescedBatches.Inc()
	s.coalescedJobs.Add(uint64(len(members)))
	per := len(members[0].data)
	stagingp := getBuf(per * len(members))
	staging := (*stagingp)[:per*len(members)]
	for i, m := range members {
		copy(staging[i*per:], m.data)
	}
	err := transposeBatchMem(staging, len(members), key.rows, key.cols, key.elem)
	if err == nil {
		for i, m := range members {
			copy(m.data, staging[i*per:(i+1)*per])
		}
	}
	putBuf(stagingp)
	for _, m := range members {
		m.err <- err
	}
}
