package server

import (
	"net/http"

	"inplace/internal/stats"
)

// The HTTP shim is the daemon's observability plane, deliberately
// separate from the binary data port: /stats returns every counter in
// the process as deterministic JSON (sorted keys, so equal states
// produce byte-identical responses and consumers can diff them
// textually), /healthz answers liveness probes.

// StatsSnapshot merges the process-wide registry (planner cache
// traffic, out-of-core volume) with this server's own metrics into one
// frozen snapshot.
func (s *Server) StatsSnapshot() stats.Snapshot {
	return stats.Merge(stats.Default().Snapshot(), s.reg.Snapshot())
}

// Handler returns the HTTP shim: GET /stats and GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		b, err := s.StatsSnapshot().Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}
