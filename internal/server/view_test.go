package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"unsafe"
)

// refTranspose computes the expected byte image of transposing a
// row-major rows×cols matrix of elem-byte records, element by element.
func refTranspose(raw []byte, rows, cols, elem int) []byte {
	out := make([]byte, len(raw))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			src := (r*cols + c) * elem
			dst := (c*rows + r) * elem
			copy(out[dst:dst+elem], raw[src:src+elem])
		}
	}
	return out
}

func fillPattern(n int) []byte {
	b := make([]byte, n)
	x := uint32(0x9E3779B9)
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
	return b
}

func TestTransposeMemAllWidths(t *testing.T) {
	for _, elem := range []int{1, 2, 4, 8} {
		for _, shape := range [][2]int{{1, 1}, {3, 5}, {7, 7}, {16, 9}, {33, 41}} {
			rows, cols := shape[0], shape[1]
			raw := fillPattern(rows * cols * elem)
			want := refTranspose(raw, rows, cols, elem)
			if err := transposeMem(raw, rows, cols, elem); err != nil {
				t.Fatalf("elem %d %dx%d: %v", elem, rows, cols, err)
			}
			if !bytes.Equal(raw, want) {
				t.Fatalf("elem %d %dx%d: transpose mismatch", elem, rows, cols)
			}
		}
	}
}

func TestTransposeBatchMemMatchesSingles(t *testing.T) {
	const count, rows, cols, elem = 5, 6, 4, 4
	per := rows * cols * elem
	raw := fillPattern(count * per)
	want := make([]byte, 0, len(raw))
	for i := 0; i < count; i++ {
		want = append(want, refTranspose(raw[i*per:(i+1)*per], rows, cols, elem)...)
	}
	if err := transposeBatchMem(raw, count, rows, cols, elem); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatal("batch transpose mismatch")
	}
}

// TestCopyTransposeMatchesViewPath pins the misaligned-fallback
// equivalence claim: the copy path and the view path produce identical
// bytes for the same input.
func TestCopyTransposeMatchesViewPath(t *testing.T) {
	const rows, cols, elem = 9, 13, 4
	raw := fillPattern(rows * cols * elem)
	viaView := append([]byte(nil), raw...)
	if err := transposeMem(viaView, rows, cols, elem); err != nil {
		t.Fatalf("view path: %v", err)
	}
	viaCopy := append([]byte(nil), raw...)
	if err := copyTranspose[uint32](viaCopy, 1, rows, cols); err != nil {
		t.Fatalf("copy path: %v", err)
	}
	if !bytes.Equal(viaView, viaCopy) {
		t.Fatal("copy fallback diverges from view path")
	}
}

func TestViewAlignment(t *testing.T) {
	// Build the byte buffer over a []uint64 backing so the base
	// pointer is 8-aligned by construction (a bare make([]byte, n) can
	// land anywhere, e.g. on the stack at odd offsets — which is
	// exactly why view checks).
	words := make([]uint64, 9)
	backing := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), 72)
	if _, ok := view[uint64](backing[:64]); !ok {
		t.Fatal("aligned 64-byte buffer should view as []uint64")
	}
	if _, ok := view[uint64](backing[1 : 1+32]); ok {
		t.Fatal("misaligned buffer must not view as []uint64")
	}
	if _, ok := view[uint32](backing[:3]); ok {
		t.Fatal("length not divisible by element size must not view")
	}
}

func TestCheckGeomRejects(t *testing.T) {
	cases := []struct {
		name                    string
		raw                     int
		count, rows, cols, elem int
	}{
		{"zero rows", 0, 1, 0, 4, 4},
		{"zero cols", 0, 1, 4, 0, 4},
		{"zero count", 16, 0, 2, 2, 4},
		{"length mismatch", 15, 1, 2, 2, 4},
		{"overflow", 8, 1, 1 << 31, 1 << 31, 8},
	}
	for _, c := range cases {
		if err := checkGeom(make([]byte, c.raw), c.count, c.rows, c.cols, c.elem); !errors.Is(err, errBadElem) {
			t.Fatalf("%s: err = %v, want errBadElem", c.name, err)
		}
	}
}

func TestTransposeMemRejectsBadElem(t *testing.T) {
	if err := transposeMem(make([]byte, 12), 2, 2, 3); !errors.Is(err, errBadElem) {
		t.Fatalf("elem 3: err = %v, want errBadElem", err)
	}
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	raw := fillPattern(24)
	v := make([]uint32, 6)
	decodeElems(v, raw)
	for i := range v {
		if v[i] != binary.LittleEndian.Uint32(raw[4*i:]) {
			t.Fatalf("decode[%d] mismatch", i)
		}
	}
	out := make([]byte, 24)
	encodeElems(out, v)
	if !bytes.Equal(out, raw) {
		t.Fatal("encode(decode(x)) != x")
	}
}
