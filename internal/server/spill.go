package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"inplace/internal/mathutil"
)

// Spilled jobs live in the spill directory as three files per token:
// <token>.dat (the payload, transposed in place by the out-of-core
// engine), <token>.jrn (the engine's crash-safe journal) and
// <token>.meta (geometry and progress state as JSON, written
// atomically). The registry mirrors the directory in memory; opening a
// registry rescans it, which is what makes a spilled job survive a
// daemon kill: a new server over the same directory readopts every
// token, and a client's Resume picks up exactly where the upload or the
// journaled transform stopped.

// Spill progress states. Persisted in the meta file; the numeric values
// are format, do not renumber.
const (
	spillUploading = 0 // payload partially received
	spillReady     = 1 // payload complete, transform not started
	spillRunning   = 2 // transform started; the journal governs resume
	spillDone      = 3 // transform complete, result in the .dat file
)

// spillMeta is the persisted description of one spilled job.
type spillMeta struct {
	Token uint64 `json:"token"`
	Rows  int    `json:"rows"`
	Cols  int    `json:"cols"`
	Elem  int    `json:"elem"`
	State int    `json:"state"`
}

// spillJob is the in-memory handle of one spilled job. busy guards
// single-connection ownership: a token can be driven by at most one
// connection at a time.
type spillJob struct {
	mu       sync.Mutex
	busy     bool
	meta     spillMeta
	received int64 // contiguous payload bytes durably in the .dat file
	total    int64
}

// acquire claims connection ownership; false when another connection
// holds the token.
func (j *spillJob) acquire() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.busy {
		return false
	}
	j.busy = true
	return true
}

// releaseOwner returns connection ownership.
func (j *spillJob) releaseOwner() {
	j.mu.Lock()
	j.busy = false
	j.mu.Unlock()
}

// spillRegistry indexes the spill directory.
type spillRegistry struct {
	dir  string
	mu   sync.Mutex
	jobs map[uint64]*spillJob
}

// openSpillRegistry creates the directory if needed and adopts every
// existing meta file in it.
func openSpillRegistry(dir string) (*spillRegistry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	r := &spillRegistry{dir: dir, jobs: make(map[uint64]*spillJob)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".meta") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var m spillMeta
		if json.Unmarshal(raw, &m) != nil || m.Rows <= 0 || m.Cols <= 0 || m.Elem <= 0 {
			continue
		}
		size, ok := mathutil.CheckedMul(m.Rows, m.Cols)
		if !ok {
			continue
		}
		total, ok := mathutil.CheckedMul(size, m.Elem)
		if !ok {
			continue
		}
		j := &spillJob{meta: m, total: int64(total)}
		if fi, err := os.Stat(r.datPath(m.Token)); err == nil {
			// Uploads append sequentially, so the file size is exactly
			// the contiguous received prefix.
			j.received = fi.Size()
			if j.received > j.total {
				j.received = j.total
			}
		}
		r.jobs[m.Token] = j
	}
	return r, nil
}

func (r *spillRegistry) datPath(token uint64) string {
	return filepath.Join(r.dir, fmt.Sprintf("%016x.dat", token))
}

func (r *spillRegistry) jrnPath(token uint64) string {
	return filepath.Join(r.dir, fmt.Sprintf("%016x.jrn", token))
}

func (r *spillRegistry) metaPath(token uint64) string {
	return filepath.Join(r.dir, fmt.Sprintf("%016x.meta", token))
}

// create registers a fresh spilled job, already acquired by the caller.
// ok is false when the token is already registered.
func (r *spillRegistry) create(token uint64, rows, cols, elem int, total int64) (*spillJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.jobs[token]; exists {
		return nil, false
	}
	j := &spillJob{
		busy:  true,
		meta:  spillMeta{Token: token, Rows: rows, Cols: cols, Elem: elem, State: spillUploading},
		total: total,
	}
	r.jobs[token] = j
	return j, true
}

// lookup returns the job registered under token, if any.
func (r *spillRegistry) lookup(token uint64) *spillJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[token]
}

// count returns the number of registered spilled jobs (for /stats).
func (r *spillRegistry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// remove forgets a token and deletes its files; called after the result
// has been streamed back successfully.
func (r *spillRegistry) remove(token uint64) {
	r.mu.Lock()
	delete(r.jobs, token)
	r.mu.Unlock()
	os.Remove(r.datPath(token))
	os.Remove(r.jrnPath(token))
	os.Remove(r.metaPath(token))
}

// persistMeta writes the job's meta file atomically (tmp + rename), so
// a kill mid-write leaves the previous state, never a torn file.
func (r *spillRegistry) persistMeta(j *spillJob) error {
	j.mu.Lock()
	m := j.meta
	j.mu.Unlock()
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	path := r.metaPath(m.Token)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// setState transitions the job's persisted state.
func (r *spillRegistry) setState(j *spillJob, state int) error {
	j.mu.Lock()
	j.meta.State = state
	j.mu.Unlock()
	return r.persistMeta(j)
}

// state reads the job's current state.
func (j *spillJob) state() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.meta.State
}

// addReceived advances the contiguous received prefix.
func (j *spillJob) addReceived(n int64) int64 {
	j.mu.Lock()
	j.received += n
	r := j.received
	j.mu.Unlock()
	return r
}

// receivedBytes reads the contiguous received prefix.
func (j *spillJob) receivedBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.received
}
