package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCoalescerBatchesSameShape(t *testing.T) {
	var batches atomic.Int64
	var jobs atomic.Int64
	c := newCoalescer(20*time.Millisecond, 64, func(key coalesceKey, members []*coMember) {
		batches.Add(1)
		jobs.Add(int64(len(members)))
		for _, m := range members {
			m.err <- nil
		}
	})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.submit(coalesceKey{rows: 4, cols: 4, elem: 4}, make([]byte, 64)); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := jobs.Load(); got != n {
		t.Fatalf("jobs executed = %d, want %d", got, n)
	}
	if got := batches.Load(); got >= n {
		t.Fatalf("batches = %d, want coalescing below %d", got, n)
	}
}

func TestCoalescerFullGroupFiresEarly(t *testing.T) {
	fired := make(chan int, 4)
	// A window long enough that only the full-group path can fire
	// within the test.
	c := newCoalescer(10*time.Second, 2, func(key coalesceKey, members []*coMember) {
		fired <- len(members)
		for _, m := range members {
			m.err <- nil
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.submit(coalesceKey{rows: 2, cols: 2, elem: 1}, make([]byte, 4))
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("full group did not fire before the window")
	}
	if got := <-fired; got != 2 {
		t.Fatalf("group size = %d, want 2", got)
	}
}

func TestCoalescerSeparatesShapes(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[coalesceKey]int)
	c := newCoalescer(10*time.Millisecond, 64, func(key coalesceKey, members []*coMember) {
		mu.Lock()
		seen[key] += len(members)
		mu.Unlock()
		for _, m := range members {
			m.err <- nil
		}
	})
	var wg sync.WaitGroup
	shapes := []coalesceKey{{2, 3, 4}, {3, 2, 4}, {2, 3, 8}}
	for _, k := range shapes {
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(k coalesceKey) {
				defer wg.Done()
				c.submit(k, make([]byte, k.rows*k.cols*k.elem))
			}(k)
		}
	}
	wg.Wait()
	for _, k := range shapes {
		if seen[k] != 3 {
			t.Fatalf("shape %+v executed %d jobs, want 3", k, seen[k])
		}
	}
}

// TestCoalescerTimerVsFullRace hammers the two trigger paths to prove
// the fired flag picks exactly one executor per group: every member
// gets exactly one error send, so submit never hangs or panics.
func TestCoalescerTimerVsFullRace(t *testing.T) {
	c := newCoalescer(time.Microsecond, 2, func(key coalesceKey, members []*coMember) {
		for _, m := range members {
			m.err <- nil
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.submit(coalesceKey{rows: 1, cols: 1, elem: 1}, make([]byte, 1)); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("a submit hung: a group fired twice or not at all")
	}
}
