package server

import (
	"encoding/binary"
	"unsafe"

	"inplace"
	"inplace/internal/mathutil"
)

// The data plane receives matrices as raw bytes but the in-memory
// engine is typed. When the payload buffer is naturally aligned for the
// element width — always true for buffers this package allocates — the
// bytes are reinterpreted in place (zero copy, zero allocation); a
// misaligned buffer falls back to a cold copy through a typed scratch
// slice. Either way the result bytes are identical: the transpose
// permutes opaque fixed-size records, so the load/store byte order
// cancels out.

// view reinterprets raw as a []T when the base pointer is aligned for T
// and the length divides evenly.
func view[T any](raw []byte) ([]T, bool) {
	var t T
	sz := int(unsafe.Sizeof(t))
	if len(raw) == 0 || len(raw)%sz != 0 {
		return nil, false
	}
	if uintptr(unsafe.Pointer(&raw[0]))%uintptr(unsafe.Alignof(t)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&raw[0])), len(raw)/sz), true
}

// transposeMem transposes the row-major rows×cols matrix of elem-byte
// elements held in raw, in place, through the process planner cache
// (so concurrent requests for one shape share a plan).
func transposeMem(raw []byte, rows, cols, elem int) error {
	if err := checkGeom(raw, 1, rows, cols, elem); err != nil {
		return err
	}
	switch elem {
	case 1:
		return inplace.Transpose(raw, rows, cols)
	case 2:
		if v, ok := view[uint16](raw); ok {
			return inplace.Transpose(v, rows, cols)
		}
		return copyTranspose[uint16](raw, 1, rows, cols)
	case 4:
		if v, ok := view[uint32](raw); ok {
			return inplace.Transpose(v, rows, cols)
		}
		return copyTranspose[uint32](raw, 1, rows, cols)
	case 8:
		if v, ok := view[uint64](raw); ok {
			return inplace.Transpose(v, rows, cols)
		}
		return copyTranspose[uint64](raw, 1, rows, cols)
	default:
		return errBadElem
	}
}

// transposeBatchMem transposes count back-to-back rows×cols matrices
// held in raw through one TransposeBatch call: the coalescer's engine.
func transposeBatchMem(raw []byte, count, rows, cols, elem int) error {
	if err := checkGeom(raw, count, rows, cols, elem); err != nil {
		return err
	}
	switch elem {
	case 1:
		return inplace.TransposeBatch(raw, count, rows, cols)
	case 2:
		if v, ok := view[uint16](raw); ok {
			return inplace.TransposeBatch(v, count, rows, cols)
		}
		return copyTranspose[uint16](raw, count, rows, cols)
	case 4:
		if v, ok := view[uint32](raw); ok {
			return inplace.TransposeBatch(v, count, rows, cols)
		}
		return copyTranspose[uint32](raw, count, rows, cols)
	case 8:
		if v, ok := view[uint64](raw); ok {
			return inplace.TransposeBatch(v, count, rows, cols)
		}
		return copyTranspose[uint64](raw, count, rows, cols)
	default:
		return errBadElem
	}
}

// checkGeom proves count*rows*cols*elem matches the payload without
// overflow before any index arithmetic trusts the products.
func checkGeom(raw []byte, count, rows, cols, elem int) error {
	if count <= 0 || rows <= 0 || cols <= 0 {
		return errBadElem
	}
	size, ok := mathutil.CheckedMul(rows, cols)
	if !ok {
		return errBadElem
	}
	bytes, ok := mathutil.CheckedMul(size, elem)
	if !ok {
		return errBadElem
	}
	total, ok := mathutil.CheckedMul(bytes, count)
	if !ok || len(raw) != total {
		return errBadElem
	}
	return nil
}

// copyTranspose is the cold misaligned-buffer fallback: decode into a
// typed scratch slice, transpose (batched when count > 1), re-encode.
func copyTranspose[T uint16 | uint32 | uint64](raw []byte, count, rows, cols int) error {
	var t T
	sz := int(unsafe.Sizeof(t))
	// checkGeom has already proven len(raw) = count*rows*cols*sz.
	n := len(raw) / sz
	v := make([]T, n)
	decodeElems(v, raw)
	var err error
	if count > 1 {
		err = inplace.TransposeBatch(v, count, rows, cols)
	} else {
		err = inplace.Transpose(v, rows, cols)
	}
	if err != nil {
		return err
	}
	encodeElems(raw, v)
	return nil
}

// decodeElems loads raw into v, element by element. Cold: only the
// misaligned-buffer fallback comes through here, so it is deliberately
// not a //xpose:hotpath region.
func decodeElems[T uint16 | uint32 | uint64](v []T, raw []byte) {
	var t T
	switch unsafe.Sizeof(t) {
	case 2:
		for i := range v {
			v[i] = T(binary.LittleEndian.Uint16(raw[2*i:]))
		}
	case 4:
		for i := range v {
			v[i] = T(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	default:
		for i := range v {
			v[i] = T(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	}
}

// encodeElems stores v back into raw, element by element. Cold, like
// decodeElems.
func encodeElems[T uint16 | uint32 | uint64](raw []byte, v []T) {
	var t T
	switch unsafe.Sizeof(t) {
	case 2:
		for i := range v {
			binary.LittleEndian.PutUint16(raw[2*i:], uint16(v[i]))
		}
	case 4:
		for i := range v {
			binary.LittleEndian.PutUint32(raw[4*i:], uint32(v[i]))
		}
	default:
		for i := range v {
			binary.LittleEndian.PutUint64(raw[8*i:], uint64(v[i]))
		}
	}
}
