package server

import (
	"sync"
	"time"
)

// The coalescer batches small same-shape jobs into single
// TransposeBatch calls: the paper's §6.2.4 amortization (static
// dimensions ⇒ index computation paid once) applied across requests.
// The first job of a shape opens a group and arms a short window timer;
// companions arriving inside the window join the group. When the window
// closes (or the group fills), the whole group executes as one batch on
// the shared planner, so N small jobs cost one plan lookup and one
// worker-pool dispatch instead of N.

// coalesceKey groups jobs that can share one batch call.
type coalesceKey struct {
	rows, cols, elem int
}

// coMember is one job waiting inside a group. data is the job's payload
// (transposed in place); err receives the batch outcome exactly once.
type coMember struct {
	data []byte
	err  chan error
}

// coGroup is one open batch window.
type coGroup struct {
	members []*coMember
	timer   *time.Timer
	fired   bool
}

// coalescer collects same-shape jobs into groups and hands full or
// expired groups to exec.
type coalescer struct {
	window  time.Duration
	maxJobs int
	exec    func(key coalesceKey, members []*coMember)

	mu     sync.Mutex
	groups map[coalesceKey]*coGroup
}

func newCoalescer(window time.Duration, maxJobs int, exec func(coalesceKey, []*coMember)) *coalescer {
	return &coalescer{
		window:  window,
		maxJobs: maxJobs,
		exec:    exec,
		groups:  make(map[coalesceKey]*coGroup),
	}
}

// submit enrolls a payload in its shape's open group (opening one if
// needed) and blocks until the group executes. The payload is
// transposed in place on success.
func (c *coalescer) submit(key coalesceKey, data []byte) error {
	m := &coMember{data: data, err: make(chan error, 1)}
	c.mu.Lock()
	g := c.groups[key]
	if g == nil {
		g = &coGroup{}
		c.groups[key] = g
		// Rebind for the timer closure: the group, not the map slot,
		// identifies the batch.
		grp := g
		g.timer = time.AfterFunc(c.window, func() { c.run(key, grp) })
	}
	g.members = append(g.members, m)
	full := len(g.members) >= c.maxJobs
	c.mu.Unlock()
	if full {
		c.run(key, g)
	}
	return <-m.err
}

// run detaches and executes a group. The timer path and the full-group
// path can race here; the fired flag (under the lock) picks exactly one
// winner.
func (c *coalescer) run(key coalesceKey, g *coGroup) {
	c.mu.Lock()
	if g.fired {
		c.mu.Unlock()
		return
	}
	g.fired = true
	if c.groups[key] == g {
		delete(c.groups, key)
	}
	members := g.members
	c.mu.Unlock()
	if g.timer != nil {
		g.timer.Stop()
	}
	c.exec(key, members)
}
