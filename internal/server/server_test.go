package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"inplace"
	"inplace/client"
	"inplace/internal/server/wire"
	"inplace/internal/stats"
)

// startServer launches a server on an ephemeral port and returns it
// with its address; the cleanup closes it.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func randBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestRoundTripShapes(t *testing.T) {
	_, addr := startServer(t, Config{SpillDir: t.TempDir(), MemJobLimit: 1 << 20})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	for _, elem := range []int{1, 2, 4, 8} {
		for _, shape := range [][2]int{{1, 1}, {5, 3}, {64, 64}, {127, 33}, {16, 1024}} {
			rows, cols := shape[0], shape[1]
			data := randBytes(rows*cols*elem, int64(rows*1000+cols*10+elem))
			want := refTransposeBytes(data, rows, cols, elem)
			if err := cl.Transpose(data, rows, cols, elem); err != nil {
				t.Fatalf("%dx%d elem %d: %v", rows, cols, elem, err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("%dx%d elem %d: transpose mismatch", rows, cols, elem)
			}
		}
	}
}

func TestForcedSpillRoundTrip(t *testing.T) {
	srv, addr := startServer(t, Config{SpillDir: t.TempDir(), OOCBudget: 64 << 10})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	const rows, cols, elem = 128, 256, 8
	data := randBytes(rows*cols*elem, 7)
	want := refTransposeBytes(data, rows, cols, elem)
	mode, err := cl.TransposeToken(client.NewToken(), data, rows, cols, elem, wire.FlagSpill)
	if err != nil {
		t.Fatalf("spilled transpose: %v", err)
	}
	if mode != wire.ModeSpill {
		t.Fatalf("mode = %d, want ModeSpill", mode)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("spilled transpose mismatch")
	}
	if got := srv.reg.Counter("server_jobs_spilled").Load(); got != 1 {
		t.Fatalf("server_jobs_spilled = %d, want 1", got)
	}
	if got := srv.SpilledJobs(); got != 0 {
		t.Fatalf("spill registry holds %d jobs after completion, want 0", got)
	}
}

func TestBadShapeAndUnknownToken(t *testing.T) {
	_, addr := startServer(t, Config{SpillDir: t.TempDir()})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	var remote *client.RemoteError
	if _, err := cl.TransposeToken(1, make([]byte, 12), 2, 2, 3, 0); !errors.As(err, &remote) || remote.Code != wire.CodeBadShape {
		t.Fatalf("elem 3: err = %v, want RemoteError CodeBadShape", err)
	}
	// The connection survives a typed error: the next job works.
	data := randBytes(16, 3)
	want := refTransposeBytes(data, 2, 2, 4)
	if err := cl.Transpose(data, 2, 2, 4); err != nil {
		t.Fatalf("job after typed error: %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("transpose mismatch after typed error")
	}
	if err := cl.Resume(0xABCD, make([]byte, 16), 2, 2, 4); !errors.As(err, &remote) || remote.Code != wire.CodeUnknownToken {
		t.Fatalf("unknown token: err = %v, want RemoteError CodeUnknownToken", err)
	}
}

func TestShedUnderPressure(t *testing.T) {
	// Budget fits exactly one job; the second must queue and shed on
	// the short deadline.
	const rows, cols, elem = 64, 64, 8
	total := int64(rows * cols * elem)
	cost := total + 2*64*8
	_, addr := startServer(t, Config{
		MaxInFlightBytes: cost,
		MaxWait:          50 * time.Millisecond,
		MaxQueue:         4,
		CoalesceWindow:   -1,
	})

	// Hold the budget with a job whose upload stalls.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if err := rawHandshake(conn); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	var hdr [wire.HeaderLen]byte
	var job [wire.JobLen]byte
	wire.Job{Token: 1, Rows: rows, Cols: cols, Elem: elem}.Marshal(&job)
	if err := wire.WriteFrame(conn, &hdr, wire.TypeJob, job[:]); err != nil {
		t.Fatalf("job: %v", err)
	}
	if _, _, err := readControl(conn); err != nil {
		t.Fatalf("accept: %v", err)
	}
	// Budget is now held; a second client must shed.
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial 2: %v", err)
	}
	defer cl.Close()
	var shed *client.ShedError
	if err := cl.Transpose(make([]byte, total), rows, cols, elem); !errors.As(err, &shed) {
		t.Fatalf("err = %v, want *client.ShedError", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", shed.RetryAfter)
	}
}

// TestDemo64Clients is the acceptance demo as a test: 64 concurrent
// clients hammer repeated shapes, and the /stats HTTP endpoint proves
// a >90% plan-cache hit-rate delta and an in-flight peak bounded by
// the budget.
func TestDemo64Clients(t *testing.T) {
	reg := stats.NewRegistry()
	srv, addr := startServer(t, Config{
		SpillDir:         t.TempDir(),
		MaxInFlightBytes: 32 << 20,
		Registry:         reg,
	})
	before := stats.Default().Snapshot()

	const clients = 64
	const jobsPer = 6
	const rows, cols, elem = 80, 112, 4
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl, err := client.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			for j := 0; j < jobsPer; j++ {
				data := randBytes(rows*cols*elem, seed*100+int64(j))
				want := refTransposeBytes(data, rows, cols, elem)
				if err := cl.Transpose(data, rows, cols, elem); err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(data, want) {
					errc <- fmt.Errorf("client %d job %d: mismatch", seed, j)
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Scrape the merged snapshot over HTTP, as a real operator would.
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var snap stats.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}

	hits := float64(snap.Counters["planner_cache_hits"] - before.Counters["planner_cache_hits"])
	misses := float64(snap.Counters["planner_cache_misses"] - before.Counters["planner_cache_misses"])
	if hits+misses == 0 {
		t.Fatal("no planner cache traffic recorded")
	}
	if rate := hits / (hits + misses); rate <= 0.9 {
		t.Fatalf("plan-cache hit rate %.3f, want > 0.9 (hits %v, misses %v)", rate, hits, misses)
	}
	infl := snap.Levels["server_inflight_bytes"]
	budget := snap.Gauges["server_inflight_budget_bytes"]
	if infl.Peak == 0 || infl.Peak > budget {
		t.Fatalf("in-flight peak %d, want in (0, %d]", infl.Peak, budget)
	}
	if got := snap.Counters["server_jobs"]; got != clients*jobsPer {
		t.Fatalf("server_jobs = %d, want %d", got, clients*jobsPer)
	}
}

// flakyStorage fails WriteAt once a shared failure budget is consumed,
// simulating a crash in the middle of an out-of-core run. Reads always
// succeed, so the journaled resume can replay.
type flakyStorage struct {
	inner      inplace.Storage
	writesLeft *atomic.Int32
}

func (f flakyStorage) ReadAt(p []byte, off int64) (int, error) {
	return f.inner.ReadAt(p, off)
}

func (f flakyStorage) WriteAt(p []byte, off int64) (int, error) {
	if f.writesLeft.Add(-1) < 0 {
		return 0, errors.New("flaky: injected backend failure")
	}
	return f.inner.WriteAt(p, off)
}

// TestSpillKillResumeAcrossRestart is the crash-safety demo: a spilled
// job's out-of-core run dies mid-flight (injected backend failure),
// the daemon is killed, and a fresh daemon over the same spill
// directory resumes the journaled run to the bit-exact result.
func TestSpillKillResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const rows, cols, elem = 256, 256, 8
	data := randBytes(rows*cols*elem, 99)
	want := refTransposeBytes(data, rows, cols, elem)
	token := client.NewToken()

	var writesLeft atomic.Int32
	writesLeft.Store(3) // let the run commit a little progress, then die
	cfg := Config{
		SpillDir:  dir,
		OOCBudget: 64 << 10,
		wrapSpill: func(s inplace.Storage) inplace.Storage {
			return flakyStorage{inner: s, writesLeft: &writesLeft}
		},
	}
	srv, addr := startServer(t, cfg)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	upload := append([]byte(nil), data...)
	_, err = cl.TransposeToken(token, upload, rows, cols, elem, wire.FlagSpill)
	var remote *client.RemoteError
	if !errors.As(err, &remote) || remote.Code != wire.CodeInternal {
		t.Fatalf("faulted run: err = %v, want RemoteError CodeInternal", err)
	}
	cl.Close()
	if err := srv.Close(); err != nil { // the forced kill
		t.Fatalf("Close: %v", err)
	}

	// Restart over the same directory with the fault healed.
	writesLeft.Store(1 << 30)
	srv2, addr2 := startServer(t, cfg)
	if got := srv2.SpilledJobs(); got != 1 {
		t.Fatalf("restarted server adopted %d spilled jobs, want 1", got)
	}
	cl2, err := client.Dial(addr2)
	if err != nil {
		t.Fatalf("Dial 2: %v", err)
	}
	defer cl2.Close()
	got := append([]byte(nil), data...)
	if err := cl2.Resume(token, got, rows, cols, elem); err != nil {
		t.Fatalf("resume after restart: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed result does not match reference")
	}
	if got := srv2.reg.Counter("server_resumes").Load(); got != 1 {
		t.Fatalf("server_resumes = %d, want 1", got)
	}
	if got := srv2.SpilledJobs(); got != 0 {
		t.Fatalf("spill registry holds %d jobs after resume, want 0", got)
	}
}

// TestResumeBusyToken proves single-connection token ownership: while
// one connection drives a spilled job, a second Resume for the token is
// rejected with CodeBusy.
func TestResumeBusyToken(t *testing.T) {
	_, addr := startServer(t, Config{SpillDir: t.TempDir(), OOCBudget: 64 << 10})
	const rows, cols, elem = 128, 128, 8
	data := randBytes(rows*cols*elem, 5)
	token := client.NewToken()

	// Start the job raw and stall after a partial upload so the token
	// stays owned.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if err := rawHandshake(conn); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	var hdr [wire.HeaderLen]byte
	var job [wire.JobLen]byte
	wire.Job{Token: token, Rows: rows, Cols: cols, Elem: elem, Flags: wire.FlagSpill}.Marshal(&job)
	if err := wire.WriteFrame(conn, &hdr, wire.TypeJob, job[:]); err != nil {
		t.Fatalf("job: %v", err)
	}
	if _, _, err := readControl(conn); err != nil {
		t.Fatalf("accept: %v", err)
	}
	if err := wire.WriteFrame(conn, &hdr, wire.TypeData, data[:4096]); err != nil {
		t.Fatalf("partial data: %v", err)
	}

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial 2: %v", err)
	}
	defer cl.Close()
	var remote *client.RemoteError
	if err := cl.Resume(token, append([]byte(nil), data...), rows, cols, elem); !errors.As(err, &remote) || remote.Code != wire.CodeBusy {
		t.Fatalf("busy resume: err = %v, want RemoteError CodeBusy", err)
	}
}

// rawHandshake performs the Hello/HelloAck exchange on a bare conn.
func rawHandshake(conn net.Conn) error {
	var hdr [wire.HeaderLen]byte
	var hello [wire.HelloLen]byte
	wire.Hello{Version: wire.Version}.Marshal(&hello)
	if err := wire.WriteFrame(conn, &hdr, wire.TypeHello, hello[:]); err != nil {
		return err
	}
	_, _, err := readControl(conn)
	return err
}

// readControl reads one control frame from a bare conn.
func readControl(conn net.Conn) (wire.Type, []byte, error) {
	var hdr [wire.HeaderLen]byte
	t, n, err := wire.ReadHeader(conn, &hdr, wire.DefaultMaxData)
	if err != nil {
		return 0, nil, err
	}
	buf := make([]byte, n)
	if err := wire.ReadPayload(conn, buf); err != nil {
		return 0, nil, err
	}
	return t, buf, nil
}

// refTransposeBytes computes the expected byte image of transposing a
// row-major rows×cols matrix of elem-byte records.
func refTransposeBytes(raw []byte, rows, cols, elem int) []byte {
	out := make([]byte, len(raw))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			copy(out[(c*rows+r)*elem:(c*rows+r+1)*elem], raw[(r*cols+c)*elem:(r*cols+c+1)*elem])
		}
	}
	return out
}
