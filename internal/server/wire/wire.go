// Package wire defines the length-prefixed binary protocol the xposed
// daemon speaks on its TCP data port, shared by the server
// (internal/server) and the client package (inplace/client).
//
// Every frame is a 5-byte header — payload length as a big-endian
// uint32 followed by a one-byte message type — and then exactly that
// many payload bytes. Control messages have fixed payload layouts
// (big-endian throughout); TypeData frames carry raw matrix bytes and
// are the only frames allowed to approach the negotiated size limit.
// The framing is deliberately stateless: any frame can be decoded with
// the 5 header bytes and a size bound, so a torn connection fails with
// ErrTruncated rather than a desynchronized stream.
//
// A session is: client sends Hello, server answers HelloAck (with its
// negotiated data-frame ceiling and admission limits), then any number
// of job exchanges. A job exchange is Job (or Resume) → Accept or
// Error → Data* upload → Result → Data* download → Done. Error frames
// may replace Accept (admission shed, invalid shape) and abort the
// exchange without poisoning the connection.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic opens every Hello payload: "XPSD".
const Magic uint32 = 0x58505344

// Version is the protocol version this package speaks. Hello carries
// the client's version; the server rejects mismatches with ErrBadVersion
// rather than guessing at frame layouts.
const Version uint16 = 1

// HeaderLen is the fixed frame-header size: uint32 payload length plus
// one type byte.
const HeaderLen = 5

// MaxControlFrame bounds every non-Data payload. Control messages are
// tens of bytes; anything larger is a corrupt or hostile stream.
const MaxControlFrame = 1 << 12

// DefaultMaxData is the data-frame payload ceiling a server announces
// when its config does not override it.
const DefaultMaxData = 1 << 20

// Type identifies a frame.
type Type uint8

// Frame types. The values are wire format; never renumber.
const (
	TypeHello    Type = 1  // client → server session open
	TypeHelloAck Type = 2  // server → client limits
	TypeJob      Type = 3  // client → server job header
	TypeAccept   Type = 4  // server → client admission grant
	TypeData     Type = 5  // either direction, raw matrix bytes
	TypeResult   Type = 6  // server → client job outcome header
	TypeDone     Type = 7  // server → client end of result stream
	TypeResume   Type = 8  // client → server reattach to a spilled job
	TypeError    Type = 15 // server → client typed failure
)

// Job execution modes, carried in Accept and Result.
const (
	// ModeMemory: the job runs through the in-memory planner cache
	// (possibly coalesced into a batch).
	ModeMemory uint8 = 0
	// ModeSpill: the job spills through the out-of-core engine with a
	// journaled temp file; it is resumable by token after a disconnect.
	ModeSpill uint8 = 1
)

// Job flags.
const (
	// FlagSpill forces the out-of-core path regardless of size.
	FlagSpill uint32 = 1 << 0
)

// Error codes carried by TypeError frames.
const (
	// CodeShed: admission control timed out or overflowed its queue;
	// RetryAfterMillis says when to try again. The connection stays
	// usable.
	CodeShed uint16 = 1
	// CodeTooLarge: the job cannot fit the server's admission budget at
	// all; retrying will not help.
	CodeTooLarge uint16 = 2
	// CodeBadShape: rows/cols/elem are invalid (non-positive, product
	// overflow, or an unsupported element width).
	CodeBadShape uint16 = 3
	// CodeUnknownToken: Resume named a token the server has no spilled
	// state for.
	CodeUnknownToken uint16 = 4
	// CodeBusy: the token's spilled state is owned by another live
	// connection.
	CodeBusy uint16 = 5
	// CodeBadSequence: a frame arrived that the protocol state machine
	// cannot accept; the server closes the connection.
	CodeBadSequence uint16 = 6
	// CodeInternal: the job failed server-side (I/O error, engine
	// failure). Spilled jobs keep their journal and remain resumable.
	CodeInternal uint16 = 7
)

// Typed framing failures. Decoders wrap exactly one of these, so both
// ends branch with errors.Is.
var (
	// ErrTruncated: the stream ended inside a frame header or payload.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrFrameTooLarge: a header announced a payload beyond the bound
	// for its type.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrUnknownType: a header carried a type this version does not know.
	ErrUnknownType = errors.New("wire: unknown frame type")
	// ErrBadFrame: a control payload has the wrong length or contents
	// for its type.
	ErrBadFrame = errors.New("wire: malformed frame payload")
	// ErrBadMagic: a Hello payload did not open with Magic.
	ErrBadMagic = errors.New("wire: bad hello magic")
	// ErrBadVersion: the peer speaks an incompatible protocol version.
	ErrBadVersion = errors.New("wire: protocol version mismatch")
)

// Cold-path error constructors, keeping fmt off the framing hot path.
func truncatedErr(cause error) error {
	return fmt.Errorf("%w: %v", ErrTruncated, cause)
}

func tooLargeErr(t Type, n, limit int) error {
	return fmt.Errorf("%w: type %d payload %d > %d", ErrFrameTooLarge, t, n, limit)
}

func unknownTypeErr(t Type) error {
	return fmt.Errorf("%w: %d", ErrUnknownType, t)
}

func badFrameErr(t Type, got, want int) error {
	return fmt.Errorf("%w: type %d payload %d bytes, want %d", ErrBadFrame, t, got, want)
}

// PutHeader encodes a frame header for a payload of n bytes.
//
//xpose:hotpath
func PutHeader(b *[HeaderLen]byte, t Type, n int) {
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	b[4] = byte(t)
}

// ParseHeader decodes a frame header.
//
//xpose:hotpath
func ParseHeader(b *[HeaderLen]byte) (Type, int) {
	return Type(b[4]), int(binary.BigEndian.Uint32(b[:4]))
}

// maxPayload returns the size bound for a frame type. Data frames get
// the caller's negotiated ceiling; control frames are bounded tightly.
func maxPayload(t Type, maxData int) (int, error) {
	switch t {
	case TypeData:
		if maxData < MaxControlFrame {
			maxData = MaxControlFrame
		}
		return maxData, nil
	case TypeHello, TypeHelloAck, TypeJob, TypeAccept, TypeResult, TypeDone, TypeResume, TypeError:
		return MaxControlFrame, nil
	default:
		return 0, unknownTypeErr(t)
	}
}

// ReadHeader reads and validates one frame header. A clean EOF on the
// first header byte returns io.EOF (the peer closed between frames);
// EOF anywhere else is ErrTruncated. The announced length is checked
// against the type's bound (maxData for Data frames) before any
// payload is read, so a hostile length cannot force an allocation.
func ReadHeader(r io.Reader, hdr *[HeaderLen]byte, maxData int) (Type, int, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, 0, io.EOF
		}
		return 0, 0, truncatedErr(err)
	}
	t, n := ParseHeader(hdr)
	limit, err := maxPayload(t, maxData)
	if err != nil {
		return 0, 0, err
	}
	if n > limit {
		return 0, 0, tooLargeErr(t, n, limit)
	}
	return t, n, nil
}

// ReadPayload fills buf with a frame payload announced by ReadHeader.
func ReadPayload(r io.Reader, buf []byte) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		return truncatedErr(err)
	}
	return nil
}

// WriteFrame writes one complete frame.
func WriteFrame(w io.Writer, hdr *[HeaderLen]byte, t Type, payload []byte) error {
	PutHeader(hdr, t, len(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// --- Control message layouts ---

// HelloLen is the Hello payload size: magic u32, version u16.
const HelloLen = 6

// Hello opens a session.
type Hello struct {
	Version uint16
}

// Marshal encodes into b.
func (m Hello) Marshal(b *[HelloLen]byte) {
	binary.BigEndian.PutUint32(b[0:4], Magic)
	binary.BigEndian.PutUint16(b[4:6], m.Version)
}

// Unmarshal decodes from p, validating length and magic.
func (m *Hello) Unmarshal(p []byte) error {
	if len(p) != HelloLen {
		return badFrameErr(TypeHello, len(p), HelloLen)
	}
	if binary.BigEndian.Uint32(p[0:4]) != Magic {
		return ErrBadMagic
	}
	m.Version = binary.BigEndian.Uint16(p[4:6])
	return nil
}

// HelloAckLen is the HelloAck payload size: version u16, maxData u32,
// memLimit u64, budget u64.
const HelloAckLen = 22

// HelloAck answers a Hello with the server's negotiated limits.
type HelloAck struct {
	Version  uint16
	MaxData  uint32 // data-frame payload ceiling for this session
	MemLimit uint64 // per-job in-memory ceiling; larger jobs spill
	Budget   uint64 // total in-flight admission budget in bytes
}

// Marshal encodes into b.
func (m HelloAck) Marshal(b *[HelloAckLen]byte) {
	binary.BigEndian.PutUint16(b[0:2], m.Version)
	binary.BigEndian.PutUint32(b[2:6], m.MaxData)
	binary.BigEndian.PutUint64(b[6:14], m.MemLimit)
	binary.BigEndian.PutUint64(b[14:22], m.Budget)
}

// Unmarshal decodes from p.
func (m *HelloAck) Unmarshal(p []byte) error {
	if len(p) != HelloAckLen {
		return badFrameErr(TypeHelloAck, len(p), HelloAckLen)
	}
	m.Version = binary.BigEndian.Uint16(p[0:2])
	m.MaxData = binary.BigEndian.Uint32(p[2:6])
	m.MemLimit = binary.BigEndian.Uint64(p[6:14])
	m.Budget = binary.BigEndian.Uint64(p[14:22])
	return nil
}

// JobLen is the Job payload size: token u64, rows u64, cols u64,
// elem u32, flags u32.
const JobLen = 32

// Job announces one transposition: a row-major Rows×Cols matrix of
// Elem-byte elements, Rows*Cols*Elem payload bytes to follow on accept.
type Job struct {
	Token      uint64
	Rows, Cols uint64
	Elem       uint32
	Flags      uint32
}

// Marshal encodes into b.
func (m Job) Marshal(b *[JobLen]byte) {
	binary.BigEndian.PutUint64(b[0:8], m.Token)
	binary.BigEndian.PutUint64(b[8:16], m.Rows)
	binary.BigEndian.PutUint64(b[16:24], m.Cols)
	binary.BigEndian.PutUint32(b[24:28], m.Elem)
	binary.BigEndian.PutUint32(b[28:32], m.Flags)
}

// Unmarshal decodes from p.
func (m *Job) Unmarshal(p []byte) error {
	if len(p) != JobLen {
		return badFrameErr(TypeJob, len(p), JobLen)
	}
	m.Token = binary.BigEndian.Uint64(p[0:8])
	m.Rows = binary.BigEndian.Uint64(p[8:16])
	m.Cols = binary.BigEndian.Uint64(p[16:24])
	m.Elem = binary.BigEndian.Uint32(p[24:28])
	m.Flags = binary.BigEndian.Uint32(p[28:32])
	return nil
}

// ResumeLen is the Resume payload size: token u64, rows u64, cols u64,
// elem u32.
const ResumeLen = 28

// Resume reattaches to a spilled job after a disconnect. The geometry
// is repeated so the server can verify the token refers to the same
// job the client thinks it does.
type Resume struct {
	Token      uint64
	Rows, Cols uint64
	Elem       uint32
}

// Marshal encodes into b.
func (m Resume) Marshal(b *[ResumeLen]byte) {
	binary.BigEndian.PutUint64(b[0:8], m.Token)
	binary.BigEndian.PutUint64(b[8:16], m.Rows)
	binary.BigEndian.PutUint64(b[16:24], m.Cols)
	binary.BigEndian.PutUint32(b[24:28], m.Elem)
}

// Unmarshal decodes from p.
func (m *Resume) Unmarshal(p []byte) error {
	if len(p) != ResumeLen {
		return badFrameErr(TypeResume, len(p), ResumeLen)
	}
	m.Token = binary.BigEndian.Uint64(p[0:8])
	m.Rows = binary.BigEndian.Uint64(p[8:16])
	m.Cols = binary.BigEndian.Uint64(p[16:24])
	m.Elem = binary.BigEndian.Uint32(p[24:28])
	return nil
}

// AcceptLen is the Accept payload size: token u64, mode u8, offset u64.
const AcceptLen = 17

// Accept grants admission. Offset is how many payload bytes the server
// already holds durably (always 0 for a fresh job; the upload resume
// point after a Resume): the client starts its Data stream there.
type Accept struct {
	Token  uint64
	Mode   uint8
	Offset uint64
}

// Marshal encodes into b.
func (m Accept) Marshal(b *[AcceptLen]byte) {
	binary.BigEndian.PutUint64(b[0:8], m.Token)
	b[8] = m.Mode
	binary.BigEndian.PutUint64(b[9:17], m.Offset)
}

// Unmarshal decodes from p.
func (m *Accept) Unmarshal(p []byte) error {
	if len(p) != AcceptLen {
		return badFrameErr(TypeAccept, len(p), AcceptLen)
	}
	m.Token = binary.BigEndian.Uint64(p[0:8])
	m.Mode = p[8]
	m.Offset = binary.BigEndian.Uint64(p[9:17])
	return nil
}

// ResultLen is the Result payload size: token u64, mode u8, crc u64.
const ResultLen = 17

// Result announces a completed job; CRC is the CRC64-ECMA of the
// transposed payload about to stream back in Data frames.
type Result struct {
	Token uint64
	Mode  uint8
	CRC   uint64
}

// Marshal encodes into b.
func (m Result) Marshal(b *[ResultLen]byte) {
	binary.BigEndian.PutUint64(b[0:8], m.Token)
	b[8] = m.Mode
	binary.BigEndian.PutUint64(b[9:17], m.CRC)
}

// Unmarshal decodes from p.
func (m *Result) Unmarshal(p []byte) error {
	if len(p) != ResultLen {
		return badFrameErr(TypeResult, len(p), ResultLen)
	}
	m.Token = binary.BigEndian.Uint64(p[0:8])
	m.Mode = p[8]
	m.CRC = binary.BigEndian.Uint64(p[9:17])
	return nil
}

// errorFixedLen is the fixed prefix of an Error payload: code u16,
// retryAfterMillis u32, message length u16.
const errorFixedLen = 8

// ErrorMsg is a typed failure. RetryAfterMillis is meaningful only for
// CodeShed: the admission controller's suggested backoff.
type ErrorMsg struct {
	Code             uint16
	RetryAfterMillis uint32
	Msg              string
}

// AppendMarshal appends the encoded payload to b and returns it.
func (m ErrorMsg) AppendMarshal(b []byte) []byte {
	if len(m.Msg) > MaxControlFrame-errorFixedLen {
		m.Msg = m.Msg[:MaxControlFrame-errorFixedLen]
	}
	var fix [errorFixedLen]byte
	binary.BigEndian.PutUint16(fix[0:2], m.Code)
	binary.BigEndian.PutUint32(fix[2:6], m.RetryAfterMillis)
	binary.BigEndian.PutUint16(fix[6:8], uint16(len(m.Msg)))
	b = append(b, fix[:]...)
	return append(b, m.Msg...)
}

// Unmarshal decodes from p.
func (m *ErrorMsg) Unmarshal(p []byte) error {
	if len(p) < errorFixedLen {
		return badFrameErr(TypeError, len(p), errorFixedLen)
	}
	m.Code = binary.BigEndian.Uint16(p[0:2])
	m.RetryAfterMillis = binary.BigEndian.Uint32(p[2:6])
	n := int(binary.BigEndian.Uint16(p[6:8]))
	if len(p) != errorFixedLen+n {
		return badFrameErr(TypeError, len(p), errorFixedLen+n)
	}
	m.Msg = string(p[errorFixedLen:])
	return nil
}
