package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"testing"
)

// frameBytes builds one complete frame as it crosses the wire.
func frameBytes(t Type, payload []byte) []byte {
	var hdr [HeaderLen]byte
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &hdr, t, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// goldenFrames pins the exact wire encoding of every control message.
// These bytes are protocol: a change here is a protocol version bump.
func goldenFrames() []struct {
	name   string
	frame  []byte
	golden string
} {
	var hello [HelloLen]byte
	Hello{Version: 1}.Marshal(&hello)
	var ack [HelloAckLen]byte
	HelloAck{Version: 1, MaxData: 1 << 20, MemLimit: 1 << 26, Budget: 1 << 30}.Marshal(&ack)
	var job [JobLen]byte
	Job{Token: 0xDEADBEEFCAFEF00D, Rows: 1000, Cols: 64, Elem: 8, Flags: FlagSpill}.Marshal(&job)
	var acc [AcceptLen]byte
	Accept{Token: 0xDEADBEEFCAFEF00D, Mode: ModeSpill, Offset: 4096}.Marshal(&acc)
	var res [ResultLen]byte
	Result{Token: 7, Mode: ModeMemory, CRC: 0x0123456789ABCDEF}.Marshal(&res)
	var rsm [ResumeLen]byte
	Resume{Token: 0xDEADBEEFCAFEF00D, Rows: 1000, Cols: 64, Elem: 8}.Marshal(&rsm)
	errPayload := ErrorMsg{Code: CodeShed, RetryAfterMillis: 250, Msg: "try later"}.AppendMarshal(nil)

	return []struct {
		name   string
		frame  []byte
		golden string
	}{
		{"hello", frameBytes(TypeHello, hello[:]),
			"0000000601" + "5850534400" + "01"},
		{"helloack", frameBytes(TypeHelloAck, ack[:]),
			"0000001602" + "0001" + "00100000" + "0000000004000000" + "0000000040000000"},
		{"job", frameBytes(TypeJob, job[:]),
			"0000002003" + "deadbeefcafef00d" + "00000000000003e8" + "0000000000000040" + "00000008" + "00000001"},
		{"accept", frameBytes(TypeAccept, acc[:]),
			"0000001104" + "deadbeefcafef00d" + "01" + "0000000000001000"},
		{"data", frameBytes(TypeData, []byte{0xAA, 0xBB, 0xCC}),
			"0000000305" + "aabbcc"},
		{"result", frameBytes(TypeResult, res[:]),
			"0000001106" + "0000000000000007" + "00" + "0123456789abcdef"},
		{"done", frameBytes(TypeDone, nil),
			"0000000007"},
		{"resume", frameBytes(TypeResume, rsm[:]),
			"0000001c08" + "deadbeefcafef00d" + "00000000000003e8" + "0000000000000040" + "00000008"},
		{"error", frameBytes(TypeError, errPayload),
			"000000110f" + "0001" + "000000fa" + "0009" + hex.EncodeToString([]byte("try later"))},
	}
}

func TestGoldenFrameEncoding(t *testing.T) {
	for _, g := range goldenFrames() {
		want, err := hex.DecodeString(g.golden)
		if err != nil {
			t.Fatalf("%s: bad golden hex: %v", g.name, err)
		}
		if !bytes.Equal(g.frame, want) {
			t.Errorf("%s frame = %x, want %x", g.name, g.frame, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, g := range goldenFrames() {
		r := bytes.NewReader(g.frame)
		var hdr [HeaderLen]byte
		typ, n, err := ReadHeader(r, &hdr, 1<<20)
		if err != nil {
			t.Fatalf("%s: ReadHeader: %v", g.name, err)
		}
		payload := make([]byte, n)
		if err := ReadPayload(r, payload); err != nil {
			t.Fatalf("%s: ReadPayload: %v", g.name, err)
		}
		switch typ {
		case TypeHello:
			var m Hello
			if err := m.Unmarshal(payload); err != nil || m.Version != 1 {
				t.Errorf("hello decode = %+v, %v", m, err)
			}
		case TypeHelloAck:
			var m HelloAck
			if err := m.Unmarshal(payload); err != nil || m.Budget != 1<<30 || m.MaxData != 1<<20 {
				t.Errorf("helloack decode = %+v, %v", m, err)
			}
		case TypeJob:
			var m Job
			if err := m.Unmarshal(payload); err != nil || m.Rows != 1000 || m.Cols != 64 || m.Elem != 8 || m.Flags != FlagSpill {
				t.Errorf("job decode = %+v, %v", m, err)
			}
		case TypeAccept:
			var m Accept
			if err := m.Unmarshal(payload); err != nil || m.Mode != ModeSpill || m.Offset != 4096 {
				t.Errorf("accept decode = %+v, %v", m, err)
			}
		case TypeResult:
			var m Result
			if err := m.Unmarshal(payload); err != nil || m.CRC != 0x0123456789ABCDEF {
				t.Errorf("result decode = %+v, %v", m, err)
			}
		case TypeResume:
			var m Resume
			if err := m.Unmarshal(payload); err != nil || m.Token != 0xDEADBEEFCAFEF00D || m.Elem != 8 {
				t.Errorf("resume decode = %+v, %v", m, err)
			}
		case TypeError:
			var m ErrorMsg
			if err := m.Unmarshal(payload); err != nil || m.Code != CodeShed || m.RetryAfterMillis != 250 || m.Msg != "try later" {
				t.Errorf("error decode = %+v, %v", m, err)
			}
		}
	}
}

// TestTruncationMatrix cuts every golden frame at every byte boundary
// and checks the decode path fails with the typed truncation error —
// except a cut at offset 0, which is a clean EOF between frames.
func TestTruncationMatrix(t *testing.T) {
	for _, g := range goldenFrames() {
		for cut := 0; cut < len(g.frame); cut++ {
			r := bytes.NewReader(g.frame[:cut])
			var hdr [HeaderLen]byte
			typ, n, err := ReadHeader(r, &hdr, 1<<20)
			if cut == 0 {
				if err != io.EOF {
					t.Fatalf("%s cut 0: err = %v, want io.EOF", g.name, err)
				}
				continue
			}
			if cut < HeaderLen {
				if !errors.Is(err, ErrTruncated) {
					t.Fatalf("%s cut %d: header err = %v, want ErrTruncated", g.name, cut, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s cut %d: unexpected header err %v", g.name, cut, err)
			}
			payload := make([]byte, n)
			if err := ReadPayload(r, payload); !errors.Is(err, ErrTruncated) {
				t.Fatalf("%s cut %d: payload err = %v, want ErrTruncated (type %d, n %d)", g.name, cut, err, typ, n)
			}
		}
	}
}

// TestCorruptFrames exercises the malformed-input taxonomy: every
// corruption maps to exactly one typed sentinel.
func TestCorruptFrames(t *testing.T) {
	readHeader := func(frame []byte) error {
		var hdr [HeaderLen]byte
		_, _, err := ReadHeader(bytes.NewReader(frame), &hdr, 1<<20)
		return err
	}

	t.Run("unknown type", func(t *testing.T) {
		if err := readHeader(frameBytes(Type(0x63), nil)); !errors.Is(err, ErrUnknownType) {
			t.Fatalf("err = %v, want ErrUnknownType", err)
		}
	})
	t.Run("oversize control frame", func(t *testing.T) {
		var hdr [HeaderLen]byte
		PutHeader(&hdr, TypeJob, MaxControlFrame+1)
		if err := readHeader(hdr[:]); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("oversize data frame", func(t *testing.T) {
		var hdr [HeaderLen]byte
		PutHeader(&hdr, TypeData, 1<<21)
		var h2 [HeaderLen]byte
		if _, _, err := ReadHeader(bytes.NewReader(hdr[:]), &h2, 1<<20); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		var b [HelloLen]byte
		Hello{Version: Version}.Marshal(&b)
		b[0] = 'Y'
		var m Hello
		if err := m.Unmarshal(b[:]); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("short control payloads", func(t *testing.T) {
		cases := []struct {
			name string
			dec  func([]byte) error
			size int
		}{
			{"hello", func(p []byte) error { var m Hello; return m.Unmarshal(p) }, HelloLen},
			{"helloack", func(p []byte) error { var m HelloAck; return m.Unmarshal(p) }, HelloAckLen},
			{"job", func(p []byte) error { var m Job; return m.Unmarshal(p) }, JobLen},
			{"accept", func(p []byte) error { var m Accept; return m.Unmarshal(p) }, AcceptLen},
			{"result", func(p []byte) error { var m Result; return m.Unmarshal(p) }, ResultLen},
			{"resume", func(p []byte) error { var m Resume; return m.Unmarshal(p) }, ResumeLen},
			{"error", func(p []byte) error { var m ErrorMsg; return m.Unmarshal(p) }, errorFixedLen},
		}
		for _, c := range cases {
			for _, n := range []int{0, 1, c.size - 1, c.size + 1} {
				if n < 0 {
					continue
				}
				if err := c.dec(make([]byte, n)); !errors.Is(err, ErrBadFrame) {
					// A zero payload of exactly c.size decodes fine; only
					// wrong sizes must fail. (The +1 case also covers the
					// error message-length mismatch.)
					if n != c.size {
						t.Fatalf("%s with %d bytes: err = %v, want ErrBadFrame", c.name, n, err)
					}
				}
			}
		}
	})
	t.Run("error message length mismatch", func(t *testing.T) {
		p := ErrorMsg{Code: CodeInternal, Msg: "boom"}.AppendMarshal(nil)
		var m ErrorMsg
		if err := m.Unmarshal(p[:len(p)-1]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
}

func TestErrorMsgTruncatesOversizeMessage(t *testing.T) {
	long := make([]byte, MaxControlFrame*2)
	for i := range long {
		long[i] = 'x'
	}
	p := ErrorMsg{Code: CodeInternal, Msg: string(long)}.AppendMarshal(nil)
	if len(p) > MaxControlFrame {
		t.Fatalf("oversize error payload not truncated: %d bytes", len(p))
	}
	var m ErrorMsg
	if err := m.Unmarshal(p); err != nil {
		t.Fatalf("truncated-message payload does not decode: %v", err)
	}
}
