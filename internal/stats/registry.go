package stats

import (
	"encoding/json"
	"sync"
)

// Registry is a named index of the package's metering primitives:
// cumulative Counters, high-water Gauges and up/down Levels. Components
// register (or lazily create) their metrics under stable snake_case
// names, and Snapshot freezes the whole registry into a deterministic
// JSON-encodable value — the backing of the xposed daemon's /stats
// endpoint and of any other exporter that wants every counter in the
// process without knowing who owns them.
//
// A Registry is safe for concurrent use. Metric handles returned by
// Counter, Gauge and Level are stable: every call with the same name
// returns the same underlying metric, so hot paths resolve their
// handles once at construction and update them lock-free afterwards.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	levels   map[string]*Level
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// defaultRegistry carries the process-wide metrics: the planner cache
// and the out-of-core engine register here.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Library-internal metrics
// (planner cache traffic, cumulative out-of-core volume) live on it;
// servers typically keep their own Registry for per-instance metrics
// and Merge the two snapshots when exporting.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the high-water gauge registered under name, creating it
// on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Level returns the up/down level registered under name, creating it on
// first use.
func (r *Registry) Level(name string) *Level {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.levels == nil {
		r.levels = make(map[string]*Level)
	}
	l, ok := r.levels[name]
	if !ok {
		l = &Level{}
		r.levels[name] = l
	}
	return l
}

// LevelSnapshot is the frozen state of one Level: its current value and
// the peak it ever reached.
type LevelSnapshot struct {
	Value int64  `json:"value"`
	Peak  uint64 `json:"peak"`
}

// Snapshot is a frozen, JSON-encodable view of a registry. Map-keyed
// encoding through encoding/json sorts keys, so the same metric values
// always produce byte-identical JSON — consumers can diff /stats
// responses textually.
type Snapshot struct {
	Counters map[string]uint64        `json:"counters"`
	Gauges   map[string]uint64        `json:"gauges"`
	Levels   map[string]LevelSnapshot `json:"levels"`
}

// Snapshot freezes every registered metric. The maps are fresh copies;
// mutating them does not touch the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]uint64, len(r.gauges)),
		Levels:   make(map[string]LevelSnapshot, len(r.levels)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, l := range r.levels {
		s.Levels[name] = LevelSnapshot{Value: l.Load(), Peak: l.Peak()}
	}
	return s
}

// Merge combines two snapshots into one. Names are expected to be
// disjoint (registries namespace their metrics with prefixes); on a
// clash the entry from b wins.
func Merge(a, b Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]uint64, len(a.Counters)+len(b.Counters)),
		Gauges:   make(map[string]uint64, len(a.Gauges)+len(b.Gauges)),
		Levels:   make(map[string]LevelSnapshot, len(a.Levels)+len(b.Levels)),
	}
	for _, s := range []Snapshot{a, b} {
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range s.Levels {
			out.Levels[k] = v
		}
	}
	return out
}

// Encode renders the snapshot as indented JSON. The encoding is
// deterministic: encoding/json writes map keys in sorted order, so
// equal snapshots produce byte-identical output.
func (s Snapshot) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
