package stats

import "sync/atomic"

// Counter is a cumulative, concurrency-safe event counter: the shared
// metering primitive of the in-memory planner cache and the out-of-core
// engine. The zero value is ready to use. Counters only grow; consumers
// meter a workload by snapshotting before and after and differencing.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a concurrency-safe high-water-mark gauge: Set records a
// candidate value and keeps the maximum ever seen. The out-of-core
// engine uses it for peak resident scratch accounting.
type Gauge struct {
	v atomic.Uint64
}

// Observe records x, keeping the running maximum.
func (g *Gauge) Observe(x uint64) {
	for {
		cur := g.v.Load()
		if x <= cur || g.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Load returns the maximum observed value.
func (g *Gauge) Load() uint64 { return g.v.Load() }

// Level is a concurrency-safe up/down gauge with an attached high-water
// mark: Add moves the current value and records the peak ever reached.
// The admission controller meters in-flight bytes and queue depth with
// it — the current value bounds admission decisions, the peak proves
// after the fact that a configured budget was never exceeded. The zero
// value is ready to use.
type Level struct {
	v    atomic.Int64
	peak Gauge
}

// Add moves the level by delta (negative to release) and returns the
// new value, recording positive values into the peak mark.
func (l *Level) Add(delta int64) int64 {
	n := l.v.Add(delta)
	if n > 0 {
		l.peak.Observe(uint64(n))
	}
	return n
}

// Load returns the current value.
func (l *Level) Load() int64 { return l.v.Load() }

// Peak returns the highest value the level ever reached.
func (l *Level) Peak() uint64 { return l.peak.Load() }
