package stats

import "sync/atomic"

// Counter is a cumulative, concurrency-safe event counter: the shared
// metering primitive of the in-memory planner cache and the out-of-core
// engine. The zero value is ready to use. Counters only grow; consumers
// meter a workload by snapshotting before and after and differencing.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a concurrency-safe high-water-mark gauge: Set records a
// candidate value and keeps the maximum ever seen. The out-of-core
// engine uses it for peak resident scratch accounting.
type Gauge struct {
	v atomic.Uint64
}

// Observe records x, keeping the running maximum.
func (g *Gauge) Observe(x uint64) {
	for {
		cur := g.v.Load()
		if x <= cur || g.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Load returns the maximum observed value.
func (g *Gauge) Load() uint64 { return g.v.Load() }
