package stats

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1000+8*5 {
		t.Fatalf("Counter = %d, want %d", got, 8*1000+8*5)
	}
}

func TestGaugeHighWater(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for j := uint64(0); j < 100; j++ {
				g.Observe(base + j)
			}
		}(uint64(i * 1000))
	}
	wg.Wait()
	if got := g.Load(); got != 7*1000+99 {
		t.Fatalf("Gauge high-water = %d, want %d", got, 7*1000+99)
	}
	g.Observe(1) // lower observation must not regress the mark
	if got := g.Load(); got != 7*1000+99 {
		t.Fatalf("Gauge regressed to %d", got)
	}
}
