package stats

import (
	"bytes"
	"sync"
	"testing"
)

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits")
	c2 := r.Counter("hits")
	if c1 != c2 {
		t.Fatal("Counter returned distinct handles for one name")
	}
	if g1, g2 := r.Gauge("peak"), r.Gauge("peak"); g1 != g2 {
		t.Fatal("Gauge returned distinct handles for one name")
	}
	if l1, l2 := r.Level("depth"), r.Level("depth"); l1 != l2 {
		t.Fatal("Level returned distinct handles for one name")
	}
	// Distinct names are distinct metrics even across kinds.
	if r.Counter("hits") == r.Counter("misses") {
		t.Fatal("distinct counter names share a handle")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("b").Inc()
	r.Gauge("g").Observe(7)
	l := r.Level("l")
	l.Add(5)
	l.Add(-2)

	s := r.Snapshot()
	if s.Counters["a"] != 3 || s.Counters["b"] != 1 {
		t.Fatalf("counter snapshot = %v", s.Counters)
	}
	if s.Gauges["g"] != 7 {
		t.Fatalf("gauge snapshot = %v", s.Gauges)
	}
	if s.Levels["l"] != (LevelSnapshot{Value: 3, Peak: 5}) {
		t.Fatalf("level snapshot = %v", s.Levels)
	}

	// The snapshot is a copy: later updates do not leak in.
	r.Counter("a").Inc()
	if s.Counters["a"] != 3 {
		t.Fatal("snapshot aliased the live registry")
	}
}

func TestSnapshotEncodeDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		// Insertion order differs run to run via map iteration, but the
		// encoding must not.
		for _, n := range []string{"zeta", "alpha", "mid"} {
			r.Counter(n).Add(uint64(len(n)))
			r.Gauge(n + "_peak").Observe(uint64(len(n)))
			r.Level(n + "_lvl").Add(int64(len(n)))
		}
		return r.Snapshot()
	}
	a, err := build().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("encodings differ:\n%s\n---\n%s", a, b)
	}
	// Sorted keys: alpha before mid before zeta.
	if i, j := bytes.Index(a, []byte(`"alpha"`)), bytes.Index(a, []byte(`"zeta"`)); i < 0 || j < 0 || i > j {
		t.Fatalf("keys not sorted in %s", a)
	}
}

func TestMerge(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("lib_hits").Add(2)
	rb.Counter("server_jobs").Add(9)
	rb.Level("server_inflight").Add(4)
	m := Merge(ra.Snapshot(), rb.Snapshot())
	if m.Counters["lib_hits"] != 2 || m.Counters["server_jobs"] != 9 {
		t.Fatalf("merged counters = %v", m.Counters)
	}
	if m.Levels["server_inflight"].Value != 4 {
		t.Fatalf("merged levels = %v", m.Levels)
	}
}

func TestLevelConcurrent(t *testing.T) {
	var l Level
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Add(3)
				l.Add(-3)
			}
		}()
	}
	wg.Wait()
	if got := l.Load(); got != 0 {
		t.Fatalf("Level after balanced adds = %d, want 0", got)
	}
	if p := l.Peak(); p < 3 || p > 24 {
		t.Fatalf("Level peak = %d, want within [3, 24]", p)
	}
}
