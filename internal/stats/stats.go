// Package stats provides the order statistics shared by the measurement
// harness (internal/bench) and the autotuner (internal/tune): medians,
// percentiles and range summaries that stay robust to the scheduling
// outliers of short wall-clock samples.
package stats

import (
	"math"
	"sort"
)

// Median returns the median of xs. It returns NaN for an empty slice.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
