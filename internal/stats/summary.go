package stats

import (
	"math"
	"sort"
)

// Robust per-series digests for the benchmark envelope (internal/benchfmt)
// and the compare gate (cmd/benchorch): short wall-clock sample sets carry
// scheduler outliers, so the summaries lean on trimmed means and
// MAD-scaled confidence intervals rather than raw means and standard
// deviations.

// Summary digests one sample series. The zero value is the summary of an
// empty series: every field is zero (never NaN), so summaries always
// serialize cleanly as JSON.
type Summary struct {
	N           int     `json:"n"`
	Mean        float64 `json:"mean"`
	TrimmedMean float64 `json:"trimmed_mean"`
	Median      float64 `json:"median"`
	MAD         float64 `json:"mad"`
	Min         float64 `json:"min"`
	Max         float64 `json:"max"`
	CILo        float64 `json:"ci_lo"`
	CIHi        float64 `json:"ci_hi"`
}

// trimFrac is the per-tail trim fraction of the envelope's trimmed mean:
// 20% off each end, the conventional midsummary that survives the one or
// two descheduled samples a short benchmark run collects.
const trimFrac = 0.2

// ciZ is the 95% normal quantile used by MedianCI.
const ciZ = 1.96

// madToSigma rescales a MAD to a normal-consistent standard deviation
// (1 / Phi^-1(3/4)).
const madToSigma = 1.4826

// Summarize digests xs. An empty series yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	min, max := MinMax(xs)
	lo, hi := MedianCI(xs, ciZ)
	return Summary{
		N:           len(xs),
		Mean:        Mean(xs),
		TrimmedMean: TrimmedMean(xs, trimFrac),
		Median:      Median(xs),
		MAD:         MAD(xs),
		Min:         min,
		Max:         max,
		CILo:        lo,
		CIHi:        hi,
	}
}

// TrimmedMean returns the mean of xs after dropping floor(frac*n) samples
// from each end of the sorted order. The trim is clamped so at least one
// sample always survives; NaN for empty input.
func TrimmedMean(xs []float64, frac float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if frac < 0 {
		frac = 0
	}
	k := int(frac * float64(n))
	if 2*k >= n {
		k = (n - 1) / 2
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, x := range s[k : n-k] {
		sum += x
	}
	return sum / float64(n-2*k)
}

// MAD returns the median absolute deviation from the median, the
// envelope's robust spread measure. NaN for empty input, 0 for a single
// sample.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// MedianCI returns a normal-approximation confidence interval for the
// median: median ± z·1.4826·MAD/sqrt(n). With all samples equal (MAD 0)
// the interval collapses to a point, so consumers pair it with a relative
// noise floor. NaN bounds for empty input.
func MedianCI(xs []float64, z float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	med := Median(xs)
	half := z * madToSigma * MAD(xs) / math.Sqrt(float64(len(xs)))
	return med - half, med + half
}
