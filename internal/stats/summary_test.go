package stats

import (
	"encoding/json"
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestTrimmedMeanHandComputed(t *testing.T) {
	// n=5, frac=0.2 drops one sample from each end: mean(2,3,4) = 3,
	// the 100 outlier gone.
	approx(t, "trimmed([1,2,3,4,100], .2)", TrimmedMean([]float64{1, 2, 3, 4, 100}, 0.2), 3, 1e-12)
	// n=4, frac=0.25 drops one per end: mean(2,3) = 2.5.
	approx(t, "trimmed([1,2,3,4], .25)", TrimmedMean([]float64{4, 1, 3, 2}, 0.25), 2.5, 1e-12)
	// No trim when frac*n rounds to zero.
	approx(t, "trimmed([1,2,3,4], .2)", TrimmedMean([]float64{1, 2, 3, 4}, 0.2), 2.5, 1e-12)
	// The trim clamps so one sample survives: frac 0.5 on n=3 keeps the
	// median.
	approx(t, "trimmed([1,2,30], .5)", TrimmedMean([]float64{1, 2, 30}, 0.5), 2, 1e-12)
	// Single sample survives any frac.
	approx(t, "trimmed([5], .4)", TrimmedMean([]float64{5}, 0.4), 5, 1e-12)
	// Negative frac behaves as no trim.
	approx(t, "trimmed([1,3], -1)", TrimmedMean([]float64{1, 3}, -1), 2, 1e-12)
	if !math.IsNaN(TrimmedMean(nil, 0.2)) {
		t.Error("trimmed mean of empty must be NaN")
	}
}

func TestMADHandComputed(t *testing.T) {
	// median 3, |devs| = [2,1,0,1,97], median dev = 1.
	approx(t, "MAD([1,2,3,4,100])", MAD([]float64{1, 2, 3, 4, 100}), 1, 1e-12)
	// All equal: zero spread.
	approx(t, "MAD([7,7,7])", MAD([]float64{7, 7, 7}), 0, 1e-12)
	// Single sample: zero, not NaN.
	approx(t, "MAD([42])", MAD([]float64{42}), 0, 1e-12)
	if !math.IsNaN(MAD(nil)) {
		t.Error("MAD of empty must be NaN")
	}
	// MAD must not mutate its input ordering assumptions: unsorted input.
	approx(t, "MAD([4,1,3,100,2])", MAD([]float64{4, 1, 3, 100, 2}), 1, 1e-12)
}

func TestMedianCIHandComputed(t *testing.T) {
	// xs = [2,4,6]: median 4, MAD 2, half-width = z*1.4826*2/sqrt(3).
	lo, hi := MedianCI([]float64{2, 4, 6}, 1.96)
	wantHalf := 1.96 * 1.4826 * 2 / math.Sqrt(3)
	approx(t, "ci lo", lo, 4-wantHalf, 1e-12)
	approx(t, "ci hi", hi, 4+wantHalf, 1e-12)

	// Single sample: the interval collapses to the point.
	lo, hi = MedianCI([]float64{9}, 1.96)
	if lo != 9 || hi != 9 {
		t.Errorf("single-sample CI = [%v, %v], want [9, 9]", lo, hi)
	}

	// Empty: NaN bounds.
	lo, hi = MedianCI(nil, 1.96)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("empty CI = [%v, %v], want NaNs", lo, hi)
	}
}

func TestSummarizeHandComputed(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 {
		t.Fatalf("n = %d", s.N)
	}
	approx(t, "mean", s.Mean, 22, 1e-12)
	approx(t, "median", s.Median, 3, 1e-12)
	approx(t, "trimmed", s.TrimmedMean, 3, 1e-12)
	approx(t, "mad", s.MAD, 1, 1e-12)
	approx(t, "min", s.Min, 1, 1e-12)
	approx(t, "max", s.Max, 100, 1e-12)
	wantHalf := 1.96 * 1.4826 * 1 / math.Sqrt(5)
	approx(t, "ci lo", s.CILo, 3-wantHalf, 1e-12)
	approx(t, "ci hi", s.CIHi, 3+wantHalf, 1e-12)
}

// The empty summary is the zero value — no NaNs — so it always
// marshals as JSON (the envelope's requirement).
func TestSummarizeEmptyIsJSONSafe(t *testing.T) {
	s := Summarize(nil)
	if s != (Summary{}) {
		t.Fatalf("empty summary not zero: %+v", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("empty summary does not marshal: %v", err)
	}
}

func TestSummarizeSingleSample(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Median != 3.5 || s.TrimmedMean != 3.5 ||
		s.MAD != 0 || s.Min != 3.5 || s.Max != 3.5 || s.CILo != 3.5 || s.CIHi != 3.5 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}
