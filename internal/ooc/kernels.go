package ooc

// The panel gather kernels. Each pass of the out-of-core schedule is a
// pure gather from a resident source panel into a resident destination
// panel — never in place — so the pipeline can overlap the backend I/O
// of neighbouring segments with the transform, and the source panel
// doubles as the journal's undo image for free.
//
// The kernels operate on raw bytes with a runtime element size, because
// the backend is untyped storage; the element size is invariant across
// the run, so each kernel carries a specialized inner loop for the
// dominant 8-byte case (the compiler turns the constant-length copy
// into a single load/store pair) and a generic loop for everything
// else. All index algebra comes from the cr.Plan the schedule resolved,
// including its strength-reduced dividers.

// rotPanel applies a per-column rotation gather to panel columns
// [lo, hi): dst column j becomes src column j shifted down by the
// pass's rotation amount, modulo m (Equations 23, 32, 35 and 36,
// depending on op). g is the panel geometry; the panel is row-packed
// with g.ext columns per row.
//
//xpose:hotpath
func (s *schedule) rotPanel(dst, src []byte, g unitGeom, op passOp, lo, hi int) {
	m, w, e := s.m, g.ext, s.elem
	divM := s.plan.DivM()
	for jj := lo; jj < hi; jj++ {
		j := g.lo + jj
		var amt int
		switch op {
		case opRotPre:
			amt = s.plan.Rot(j)
		case opRotNegPre:
			amt = -s.plan.Rot(j)
		case opRotID:
			amt = j
		default: // opRotNegID
			amt = -j
		}
		r := divM.SMod(amt)
		if r == 0 {
			// Unrotated column: straight copy.
			if e == 8 {
				for i := 0; i < m; i++ {
					o := (i*w + jj) * 8
					copy(dst[o:o+8], src[o:o+8])
				}
			} else {
				for i := 0; i < m; i++ {
					o := (i*w + jj) * e
					copy(dst[o:o+e], src[o:o+e])
				}
			}
			continue
		}
		if e == 8 {
			for i := 0; i < m; i++ {
				si := i + r
				if si >= m {
					si -= m
				}
				do := (i*w + jj) * 8
				so := (si*w + jj) * 8
				copy(dst[do:do+8], src[so:so+8])
			}
		} else {
			for i := 0; i < m; i++ {
				si := i + r
				if si >= m {
					si -= m
				}
				do := (i*w + jj) * e
				so := (si*w + jj) * e
				copy(dst[do:do+e], src[so:so+e])
			}
		}
	}
}

// permPanel applies the shared row permutation to panel rows [lo, hi):
// dst row i is src row q(i) (opPermQ, Equation 33) or q⁻¹(i)
// (opPermQInv, Equation 34). Because the permutation is identical for
// every column, a panel of any width permutes independently — this is
// the §4.7 whole-sub-row row permute with the sub-row width set to the
// segment width.
//
//xpose:hotpath
func (s *schedule) permPanel(dst, src []byte, g unitGeom, op passOp, lo, hi int) {
	rb := g.ext * s.elem
	if op == opPermQ {
		for i := lo; i < hi; i++ {
			qi := s.plan.Q(i)
			copy(dst[i*rb:(i+1)*rb], src[qi*rb:qi*rb+rb])
		}
		return
	}
	for i := lo; i < hi; i++ {
		qi := s.plan.QInv(i)
		copy(dst[i*rb:(i+1)*rb], src[qi*rb:qi*rb+rb])
	}
}

// shufflePanel applies the row shuffle to panel rows [lo, hi): each
// resident row (global row index g.lo+ii) is gathered through the
// closed-form inverse d'^{-1} for C2R (opShuffleC2R, Equation 31) or
// through d' for R2C (opShuffleR2C, Equation 24). Horizontal panels
// hold g.ext full rows of n elements.
//
//xpose:hotpath
func (s *schedule) shufflePanel(dst, src []byte, g unitGeom, op passOp, lo, hi int) {
	n, e := s.n, s.elem
	c2r := op == opShuffleC2R
	for ii := lo; ii < hi; ii++ {
		gi := g.lo + ii
		rowOff := ii * n
		if e == 8 {
			for j := 0; j < n; j++ {
				var sj int
				if c2r {
					sj = s.plan.DPrimeInv(gi, j)
				} else {
					sj = s.plan.DPrime(gi, j)
				}
				do := (rowOff + j) * 8
				so := (rowOff + sj) * 8
				copy(dst[do:do+8], src[so:so+8])
			}
		} else {
			for j := 0; j < n; j++ {
				var sj int
				if c2r {
					sj = s.plan.DPrimeInv(gi, j)
				} else {
					sj = s.plan.DPrime(gi, j)
				}
				do := (rowOff + j) * e
				so := (rowOff + sj) * e
				copy(dst[do:do+e], src[so:so+e])
			}
		}
	}
}

// transform runs the pass's gather for one resident panel, splitting
// the independent dimension (columns for rotations, rows for the row
// permute and the row shuffle) across the worker pool.
func (s *schedule) transform(p pass, g unitGeom, dst, src []byte, pf parallelFor) {
	switch p.op {
	case opRotPre, opRotNegPre, opRotID, opRotNegID:
		pf(g.ext, func(lo, hi int) { s.rotPanel(dst, src, g, p.op, lo, hi) })
	case opPermQ, opPermQInv:
		pf(s.m, func(lo, hi int) { s.permPanel(dst, src, g, p.op, lo, hi) })
	default: // opShuffleC2R, opShuffleR2C
		pf(g.ext, func(lo, hi int) { s.shufflePanel(dst, src, g, p.op, lo, hi) })
	}
}

// parallelFor splits [0, n) across workers and blocks until every chunk
// ran. The runner provides either an inline implementation (one worker)
// or a dispatch onto the shared persistent pool.
type parallelFor func(n int, body func(lo, hi int))
