package ooc

import (
	"io"

	"inplace/internal/cr"
	"inplace/internal/mathutil"
	"inplace/internal/parallel"
)

// Backend is the storage a matrix is transposed on: random-access reads
// and writes, with no seek state shared between the pipeline stages.
// *os.File satisfies it; so does any object store adapter exposing
// ranged reads and writes.
type Backend interface {
	io.ReaderAt
	io.WriterAt
}

// syncer is the optional durability upgrade of a Backend or Journal
// backend. When the data backend implements it, the engine syncs written
// segments before committing them to the journal, making the commit
// record a true write-ahead barrier.
type syncer interface {
	Sync() error
}

// Config parameterizes one out-of-core transposition.
type Config struct {
	// Rows, Cols and ElemSize describe the row-major matrix on the
	// backend: Rows*Cols elements of ElemSize bytes each.
	Rows, Cols, ElemSize int

	// Budget is the scratch-memory ceiling in bytes. The engine sizes
	// its segment schedule so that all resident panels together stay
	// within it; the floor is 2*max(Rows,Cols)*ElemSize (one source and
	// one destination panel of minimum width — the decomposition's
	// O(max(m,n)) auxiliary bound made literal).
	Budget int64

	// Workers is the transform parallelism within a resident panel;
	// 0 means GOMAXPROCS. Workers dispatch onto the process-wide
	// persistent pool (internal/parallel.Shared).
	Workers int

	// Depth is the pipeline depth: how many segments may be in flight
	// across the prefetch/transform/write stages at once. 0 picks 3
	// (one per stage), degraded automatically when the budget is tight.
	Depth int

	// SegmentBytes overrides the derived segment size; 0 derives it
	// from Budget and Depth. Values below the schedule floor are
	// raised; values that would burst the budget shrink the depth.
	SegmentBytes int64

	// Dir forces the C2R (DirC2R) or R2C (DirR2C) formulation; DirAuto
	// applies the shape heuristic of the in-memory planner.
	Dir Dir

	// Journal enables crash-safe progress: undo images and segment
	// commits are appended to it, making an interrupted run resumable.
	// Nil disables journaling (and resume) entirely.
	Journal Backend

	// Resume replays the journal instead of starting fresh: committed
	// segments are skipped, in-flight segments are rolled back from
	// their undo images and re-executed. Requires Journal.
	Resume bool

	// Verify re-reads every segment of the final pass after completion
	// and checks it against the checksum committed in the journal,
	// failing with ErrCorruptSegment on mismatch. Requires Journal.
	Verify bool

	// Retries is how many times a failed or short backend call is
	// re-issued before the run fails with ErrShortRead/ErrShortWrite.
	// 0 means 2.
	Retries int
}

// Dir selects the permutation pipeline.
type Dir int

const (
	// DirAuto picks C2R when rows <= cols, R2C otherwise — the same
	// shorter-internal-columns heuristic as the in-memory planner.
	DirAuto Dir = iota
	// DirC2R forces the C2R pipeline.
	DirC2R
	// DirR2C forces the R2C pipeline.
	DirR2C
)

func (c Config) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 2
}

// passKind distinguishes the two panel orientations of the schedule.
type passKind uint8

const (
	// passVertical reads/writes column panels: full-height slabs of
	// consecutive columns, one strided span per matrix row.
	passVertical passKind = iota
	// passHorizontal reads/writes row panels: contiguous runs of
	// consecutive full rows, a single span.
	passHorizontal
)

// passOp identifies the gather a pass applies to each resident panel.
// The numeric values are stable: they are part of the journal's schedule
// fingerprint.
type passOp uint8

const (
	opRotPre     passOp = iota + 1 // column j rotated by +⌊j/b⌋ (Eq. 23)
	opRotID                        // column j rotated by +j (Eq. 32)
	opRotNegID                     // column j rotated by -j (Eq. 35)
	opRotNegPre                    // column j rotated by -⌊j/b⌋ (Eq. 36)
	opShuffleC2R                   // row i gathered through d'^{-1}_i (Eq. 31)
	opShuffleR2C                   // row i gathered through d'_i (Eq. 24)
	opPermQ                        // row i gathered from row q(i) (Eq. 33)
	opPermQInv                     // row i gathered from row q^{-1}(i) (Eq. 34)
)

// pass is one file-scope permutation pass: a panel orientation, a
// gather, and a unit count derived from the panel width.
type pass struct {
	kind  passKind
	op    passOp
	units int
}

// schedule is the resolved execution plan of one out-of-core run: the
// cr.Plan index algebra, the byte geometry, the budget-derived panel
// widths and the pass sequence. It is the exact out-of-core analogue of
// the in-memory Schedule: the three-pass decomposition (pre-rotation,
// row shuffle, column shuffle factored into rotation and row permute)
// lifted from cache blocks to storage segments, which Theorem 7's
// linearization independence makes legal.
type schedule struct {
	plan *cr.Plan
	elem int
	c2r  bool

	// m and n are the pass geometry: the buffer is interpreted as an
	// m×n row-major grid for every pass, in both directions (the
	// decomposition never changes the linearization mid-run).
	m, n int

	vw int // vertical panel width in columns (>= 1)
	hh int // horizontal panel height in rows (>= 1)

	unitBytes int64 // largest panel byte size; ring buffers are this big
	depth     int
	workers   int

	passes []pass

	identity bool // degenerate shapes: the transpose is a no-op
}

// minBudget returns the schedule floor for a shape: one source and one
// destination panel of minimum width.
func minBudget(rows, cols, elem int) (int64, bool) {
	maxDim := rows
	if cols > maxDim {
		maxDim = cols
	}
	per, ok := mathutil.CheckedMul(maxDim, elem)
	if !ok {
		return 0, false
	}
	floor, ok := mathutil.CheckedMul(per, 2)
	if !ok {
		return 0, false
	}
	return int64(floor), true
}

// newSchedule validates a config and derives the segment schedule.
func newSchedule(cfg Config) (*schedule, error) {
	rows, cols, elem := cfg.Rows, cfg.Cols, cfg.ElemSize
	if rows <= 0 || cols <= 0 || elem <= 0 {
		return nil, shapeErr(rows, cols, elem)
	}
	size, ok := mathutil.CheckedMul(rows, cols)
	if !ok {
		return nil, overflowErr(rows, cols)
	}
	if _, ok := mathutil.CheckedMul(size, elem); !ok {
		return nil, overflowErr(rows, cols)
	}

	s := &schedule{elem: elem, workers: parallel.Workers(cfg.Workers)}

	if rows == 1 || cols == 1 {
		// A 1×n or m×1 matrix is its own transpose linearization.
		s.identity = true
		return s, nil
	}

	switch cfg.Dir {
	case DirC2R:
		s.c2r = true
	case DirR2C:
		s.c2r = false
	default:
		s.c2r = rows <= cols
	}
	if s.c2r {
		s.plan = cr.NewPlan(rows, cols)
	} else {
		s.plan = cr.NewPlan(cols, rows)
	}
	s.m, s.n = s.plan.M, s.plan.N

	floor, ok := minBudget(rows, cols, elem)
	if !ok {
		return nil, overflowErr(rows, cols)
	}
	if cfg.Budget < floor {
		return nil, budgetErr(cfg.Budget, floor)
	}

	// Resolve depth and segment size against the budget: 2*depth
	// panels are resident at once (a source/destination pair per
	// in-flight segment), so segBytes <= budget/(2*depth). When the
	// budget cannot hold a full pipeline of minimum-width panels, the
	// depth degrades toward sequential execution instead of failing.
	depth := cfg.Depth
	if depth <= 0 {
		depth = 3
	}
	panelFloor := floor / 2 // one panel of minimum width
	for depth > 1 && cfg.Budget/int64(2*depth) < panelFloor {
		depth--
	}
	seg := cfg.SegmentBytes
	if seg <= 0 {
		seg = cfg.Budget / int64(2*depth)
	}
	if seg < panelFloor {
		seg = panelFloor
	}
	for depth > 1 && seg > cfg.Budget/int64(2*depth) {
		depth--
	}
	if seg > cfg.Budget/2 {
		seg = cfg.Budget / 2
	}
	s.depth = depth

	// Panel widths from the segment size. Both divisions are exact
	// integer floors and both floors are >= 1 by the budget check.
	s.vw = clampDim(seg/int64(s.m*elem), s.n)
	s.hh = clampDim(seg/int64(s.n*elem), s.m)

	vBytes := int64(s.m) * int64(s.vw) * int64(elem)
	hBytes := int64(s.hh) * int64(s.n) * int64(elem)
	s.unitBytes = vBytes
	if hBytes > s.unitBytes {
		s.unitBytes = hBytes
	}

	vUnits := (s.n + s.vw - 1) / s.vw
	hUnits := (s.m + s.hh - 1) / s.hh

	if s.c2r {
		if !s.plan.Coprime {
			s.passes = append(s.passes, pass{passVertical, opRotPre, vUnits})
		}
		s.passes = append(s.passes,
			pass{passHorizontal, opShuffleC2R, hUnits},
			pass{passVertical, opRotID, vUnits},
			pass{passVertical, opPermQ, vUnits},
		)
	} else {
		s.passes = append(s.passes,
			pass{passVertical, opPermQInv, vUnits},
			pass{passVertical, opRotNegID, vUnits},
			pass{passHorizontal, opShuffleR2C, hUnits},
		)
		if !s.plan.Coprime {
			s.passes = append(s.passes, pass{passVertical, opRotNegPre, vUnits})
		}
	}
	return s, nil
}

// Validate resolves the full segment schedule for cfg without running
// it, surfacing every configuration error Run would.
func Validate(cfg Config) error {
	_, err := newSchedule(cfg)
	if err == nil && cfg.Journal == nil && (cfg.Resume || cfg.Verify) {
		return ErrNoJournal
	}
	return err
}

// MinBudget returns the smallest legal Config.Budget for a shape:
// 2*max(rows,cols)*elem bytes (one source and one destination panel of
// minimum width). ok is false when that product overflows.
func MinBudget(rows, cols, elem int) (int64, bool) {
	if rows <= 0 || cols <= 0 || elem <= 0 {
		return 0, false
	}
	return minBudget(rows, cols, elem)
}

// clampDim clamps a panel width derived from the segment size to [1, max].
func clampDim(w int64, max int) int {
	if w < 1 {
		return 1
	}
	if w > int64(max) {
		return max
	}
	return int(w)
}

// unitGeom describes one unit of one pass: the panel's position and
// extent in the pass geometry.
type unitGeom struct {
	kind passKind
	lo   int // first column (vertical) or first row (horizontal)
	ext  int // columns (vertical) or rows (horizontal) in this panel
}

// unit returns the geometry of unit u of pass p.
func (s *schedule) unit(p pass, u int) unitGeom {
	if p.kind == passVertical {
		lo := u * s.vw
		ext := s.vw
		if lo+ext > s.n {
			ext = s.n - lo
		}
		return unitGeom{kind: passVertical, lo: lo, ext: ext}
	}
	lo := u * s.hh
	ext := s.hh
	if lo+ext > s.m {
		ext = s.m - lo
	}
	return unitGeom{kind: passHorizontal, lo: lo, ext: ext}
}

// bytes returns the panel byte size of a unit.
func (s *schedule) bytes(g unitGeom) int {
	if g.kind == passVertical {
		return s.m * g.ext * s.elem
	}
	return g.ext * s.n * s.elem
}

// spans invokes fn for each contiguous backend span of a unit, with the
// span's backend offset, its offset inside the panel buffer, and its
// length, merging adjacent spans (write-combining): a vertical panel
// covering every column collapses to one span, and a horizontal panel is
// a single span by construction.
func (s *schedule) spans(g unitGeom, fn func(off int64, bufOff, n int) error) error {
	e := int64(s.elem)
	if g.kind == passHorizontal {
		return fn(int64(g.lo)*int64(s.n)*e, 0, g.ext*s.n*s.elem)
	}
	if g.ext == s.n {
		// Full-width vertical panel: rows are adjacent on the backend.
		return fn(0, 0, s.m*s.n*s.elem)
	}
	rowBytes := g.ext * s.elem
	for i := 0; i < s.m; i++ {
		off := (int64(i)*int64(s.n) + int64(g.lo)) * e
		if err := fn(off, i*rowBytes, rowBytes); err != nil {
			return err
		}
	}
	return nil
}
