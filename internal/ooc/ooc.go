// Package ooc transposes row-major matrices that live on storage rather
// than in memory: any io.ReaderAt+io.WriterAt backend, under a caller-
// specified scratch-memory budget.
//
// The engine is the paper's three-pass C2R/R2C decomposition lifted
// from cache blocks to storage segments. Every pass of the in-memory
// cache-aware pipeline — column pre-rotation, row shuffle, the column
// shuffle factored into a column rotation and a shared row permutation
// (Equations 23–35) — touches the flat buffer along only one axis, so
// each becomes a schedule of independent panels: vertical panels
// (full-height column slabs) for the rotation and row-permute passes,
// horizontal panels (runs of full rows) for the row shuffle. Theorem 7's
// linearization independence is what makes the segment boundaries
// arbitrary: the permutation algebra never couples two panels of the
// same pass. A panel of minimum width is one full column or one full
// row, so the budget floor is 2·max(m,n) elements — the decomposition's
// O(max(m,n)) auxiliary bound, made literal as a hard memory ceiling.
//
// Each pass runs as a three-stage pipeline: an async prefetch reader
// fills source panels, transform workers gather them into destination
// panels on the process-wide worker pool, and a double-buffered writer
// puts panels back with adjacent spans combined into single backend
// calls. With an optional journal, every segment write is preceded by a
// durable undo image and followed by a checksummed commit record, so a
// run killed at any point resumes to the bit-identical result.
package ooc

import (
	"fmt"
	"hash/crc64"
	"sync"

	"inplace/internal/arena"
	"inplace/internal/parallel"
)

// Run transposes the row-major cfg.Rows×cfg.Cols matrix of
// cfg.ElemSize-byte elements stored on data, in place on the backend,
// within cfg.Budget bytes of resident scratch. Afterwards data holds
// the row-major Cols×Rows transpose.
func Run(data Backend, cfg Config) (_ Stats, err error) {
	sched, err := newSchedule(cfg)
	if err != nil {
		return Stats{}, err
	}
	if cfg.Journal == nil && (cfg.Resume || cfg.Verify) {
		return Stats{}, fmt.Errorf("%w (resume=%v verify=%v)", ErrNoJournal, cfg.Resume, cfg.Verify)
	}
	if sched.identity {
		// 1×n and m×1 matrices transpose to themselves linearly.
		return Stats{}, nil
	}

	r := &runner{cfg: cfg, sched: sched, data: data}
	// Fold this run's counters into the process-wide registry aggregates
	// on every exit path (identity no-ops and config errors excluded).
	defer func() { r.ctr.publish(err != nil) }()
	r.pf = func(n int, body func(lo, hi int)) { body(0, n) }
	if sched.workers > 1 {
		pool := parallel.Shared()
		workers := sched.workers
		r.pf = func(n int, body func(lo, hi int)) {
			pool.For(n, workers, func(_, lo, hi int) { body(lo, hi) })
		}
	}

	// The buffer ring: one source/destination pair per in-flight
	// segment. This plus per-pass bookkeeping is the engine's entire
	// resident footprint.
	bufs := arena.Slab[byte](2*sched.depth, int(sched.unitBytes))
	r.pairs = make(chan *pair, sched.depth)
	for i := 0; i < sched.depth; i++ {
		r.pairs <- &pair{src: bufs[2*i], dst: bufs[2*i+1]}
	}
	r.ctr.peakResident.Observe(uint64(2*sched.depth) * uint64(sched.unitBytes))

	st := &resumeState{committed: map[int]bool{}, intents: map[int]intent{}, finalSums: map[int]uint64{}}
	finalPass := len(sched.passes) - 1
	if cfg.Journal != nil {
		g := sched.geom(cfg.Rows, cfg.Cols)
		if cfg.Resume {
			r.jrn, st, err = openJournal(cfg.Journal, g, finalPass, &r.ctr)
		} else {
			r.jrn, err = newJournal(cfg.Journal, g, &r.ctr)
		}
		if err != nil {
			return r.ctr.snapshot(0), err
		}
	}

	if len(st.intents) > 0 {
		if err := r.restoreIntents(sched.passes[st.donePasses], st); err != nil {
			return r.ctr.snapshot(0), err
		}
	}

	sums := st.finalSums
	for pi := st.donePasses; pi < len(sched.passes); pi++ {
		var skip map[int]bool
		if pi == st.donePasses {
			skip = st.committed
		}
		var passSums map[int]uint64
		if pi == finalPass && r.jrn != nil {
			passSums = sums
		}
		if err := r.runPass(pi, sched.passes[pi], skip, passSums); err != nil {
			return r.ctr.snapshot(pi), err
		}
		if r.jrn != nil {
			if s, ok := r.data.(syncer); ok {
				_ = s.Sync()
			}
			if err := r.jrn.passDone(pi); err != nil {
				return r.ctr.snapshot(pi), err
			}
		}
	}

	if cfg.Verify {
		if err := r.verifyFinal(sched.passes[finalPass], sums); err != nil {
			return r.ctr.snapshot(len(sched.passes)), err
		}
	}
	return r.ctr.snapshot(len(sched.passes)), nil
}

// runner is the per-run execution state.
type runner struct {
	cfg   Config
	sched *schedule
	data  Backend
	jrn   *journal
	ctr   counters
	pairs chan *pair
	pf    parallelFor
}

// pair is one in-flight segment's buffers: the prefetched source panel
// (which doubles as the journal undo image) and the gathered
// destination panel.
type pair struct {
	src, dst []byte
}

// work is one segment moving through the pipeline.
type work struct {
	u  int
	g  unitGeom
	pr *pair
}

// runPass executes one pass's segment schedule through the three-stage
// pipeline. skip marks units the journal proved committed; sums, when
// non-nil, collects the per-unit checksums of the final pass.
func (r *runner) runPass(pi int, p pass, skip map[int]bool, sums map[int]uint64) error {
	toT := make(chan *work, r.sched.depth)
	toW := make(chan *work, r.sched.depth)
	done := make(chan struct{})
	var failErr error
	var failOnce sync.Once
	fail := func(err error) {
		// First failure wins; closing done stops the producer.
		failOnce.Do(func() {
			failErr = err
			close(done)
		})
	}

	var readerDone, writerDone = make(chan struct{}), make(chan struct{})

	// Stage 1: prefetch reader.
	go func() {
		defer close(readerDone)
		defer close(toT)
		for u := 0; u < p.units; u++ {
			if skip[u] {
				r.ctr.segmentsSkipped.Inc()
				continue
			}
			g := r.sched.unit(p, u)
			var pr *pair
			select {
			case pr = <-r.pairs:
			case <-done:
				return
			}
			if err := r.readUnit(g, pr.src[:r.sched.bytes(g)]); err != nil {
				r.pairs <- pr
				fail(err)
				return
			}
			select {
			case toT <- &work{u: u, g: g, pr: pr}:
			case <-done:
				r.pairs <- pr
				return
			}
		}
	}()

	// Stage 3: double-buffered writer. It keeps draining after a
	// failure so the transform stage never blocks on a full channel.
	go func() {
		defer close(writerDone)
		for w := range toW {
			select {
			case <-done:
				r.pairs <- w.pr
				continue
			default:
			}
			if err := r.writeOne(pi, w, sums); err != nil {
				fail(err)
			}
			r.pairs <- w.pr
		}
	}()

	// Stage 2: transform, on the calling goroutine, fanning each panel
	// across the worker pool.
	for {
		var w *work
		var ok bool
		select {
		case w, ok = <-toT:
			if ok {
				r.ctr.prefetchHits.Inc()
			}
		default:
			r.ctr.prefetchMisses.Inc()
			w, ok = <-toT
		}
		if !ok {
			break
		}
		nb := r.sched.bytes(w.g)
		r.sched.transform(p, w.g, w.pr.dst[:nb], w.pr.src[:nb], r.pf)
		r.ctr.segmentsTransformed.Inc()
		toW <- w
	}
	close(toW)
	<-readerDone
	<-writerDone
	return failErr
}

// writeOne journals the undo image, writes the transformed panel back,
// and commits it with its checksum.
func (r *runner) writeOne(pi int, w *work, sums map[int]uint64) error {
	nb := r.sched.bytes(w.g)
	if r.jrn != nil {
		if err := r.jrn.intent(pi, w.u, w.pr.src[:nb]); err != nil {
			return err
		}
	}
	if err := r.writeUnit(w.g, w.pr.dst[:nb]); err != nil {
		return err
	}
	if r.jrn != nil {
		sum := crc64.Checksum(w.pr.dst[:nb], crcTab)
		if sums != nil {
			sums[w.u] = sum
		}
		if err := r.jrn.commit(pi, w.u, sum); err != nil {
			return err
		}
	}
	return nil
}

// restoreIntents rolls back the in-flight segments of an interrupted
// pass from their journal undo images, returning the matrix to the
// exact pre-segment state so re-execution reproduces the committed
// result.
func (r *runner) restoreIntents(p pass, st *resumeState) error {
	pr := <-r.pairs
	defer func() { r.pairs <- pr }()
	for u, it := range st.intents {
		g := r.sched.unit(p, u)
		nb := r.sched.bytes(g)
		if it.payloadLen != int64(nb) {
			return fmt.Errorf("%w: undo image for unit %d is %d bytes, want %d", ErrJournalCorrupt, u, it.payloadLen, nb)
		}
		if err := r.readFull(r.cfg.Journal, pr.src[:nb], it.payloadOff); err != nil {
			return err
		}
		if err := r.writeUnit(g, pr.src[:nb]); err != nil {
			return err
		}
		r.ctr.segmentsRestored.Inc()
	}
	return nil
}

// verifyFinal re-reads every segment of the final pass and checks it
// against the checksum committed in the journal.
func (r *runner) verifyFinal(p pass, sums map[int]uint64) error {
	pr := <-r.pairs
	defer func() { r.pairs <- pr }()
	for u := 0; u < p.units; u++ {
		g := r.sched.unit(p, u)
		nb := r.sched.bytes(g)
		want, ok := sums[u]
		if !ok {
			return fmt.Errorf("%w: no commit checksum for final-pass unit %d", ErrJournalCorrupt, u)
		}
		if err := r.readUnit(g, pr.src[:nb]); err != nil {
			return err
		}
		if got := crc64.Checksum(pr.src[:nb], crcTab); got != want {
			return corruptSegmentErr(len(r.sched.passes)-1, u, want, got)
		}
	}
	return nil
}
