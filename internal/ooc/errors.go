package ooc

import (
	"errors"
	"fmt"
)

// The typed I/O error taxonomy of the out-of-core engine. Every failure
// surfaced by Run wraps exactly one of these sentinels, so callers
// branch with errors.Is instead of string matching, and the cold-path
// constructor helpers keep the fmt machinery out of the annotated hot
// loops (the same pattern as the root package's shapeErr/overflowErr).

// ErrShortRead reports a backend ReadAt that returned fewer bytes than
// requested (with or without its own error) after the configured
// retries were exhausted.
var ErrShortRead = errors.New("ooc: short read")

// ErrShortWrite reports a backend WriteAt that accepted fewer bytes
// than requested after the configured retries were exhausted.
var ErrShortWrite = errors.New("ooc: short write")

// ErrCorruptSegment reports a segment whose bytes do not match the
// checksum the journal recorded at commit time: the storage below the
// backend returned different data than was durably written.
var ErrCorruptSegment = errors.New("ooc: corrupt segment")

// ErrBudget reports a memory budget below the decomposition's floor:
// every pass needs at least one full row and one full column of the
// matrix resident, so the budget must cover 2*max(rows,cols) elements
// (a source and a destination panel of minimum width).
var ErrBudget = errors.New("ooc: memory budget below 2*max(rows,cols) elements")

// ErrJournalMismatch reports a resume journal whose recorded geometry
// (shape, element size, direction or segment schedule) does not match
// the requested run; resuming with it would corrupt the matrix.
var ErrJournalMismatch = errors.New("ooc: journal does not match this run")

// ErrJournalCorrupt reports a journal whose header fails validation.
// Torn or corrupt trailing records are not an error — they are the
// expected shape of a crash and are discarded — but a damaged header
// means the journal cannot be trusted at all.
var ErrJournalCorrupt = errors.New("ooc: corrupt journal")

// ErrNoJournal reports a resume requested without a journal to resume
// from.
var ErrNoJournal = errors.New("ooc: resume requires a journal")

// --- Cold-path error constructors ---

// shortReadErr wraps ErrShortRead with the failing span.
func shortReadErr(off int64, want, got int, cause error) error {
	if cause != nil {
		return fmt.Errorf("%w: %d of %d bytes at offset %d: %v", ErrShortRead, got, want, off, cause)
	}
	return fmt.Errorf("%w: %d of %d bytes at offset %d", ErrShortRead, got, want, off)
}

// shortWriteErr wraps ErrShortWrite with the failing span.
func shortWriteErr(off int64, want, got int, cause error) error {
	if cause != nil {
		return fmt.Errorf("%w: %d of %d bytes at offset %d: %v", ErrShortWrite, got, want, off, cause)
	}
	return fmt.Errorf("%w: %d of %d bytes at offset %d", ErrShortWrite, got, want, off)
}

// corruptSegmentErr wraps ErrCorruptSegment with the failing unit.
func corruptSegmentErr(pass, unit int, want, got uint64) error {
	return fmt.Errorf("%w: pass %d unit %d checksum %016x, journal recorded %016x", ErrCorruptSegment, pass, unit, got, want)
}

// budgetErr wraps ErrBudget with the shortfall.
func budgetErr(budget, floor int64) error {
	return fmt.Errorf("%w (budget %d bytes, floor %d bytes)", ErrBudget, budget, floor)
}

// ErrShape reports a non-positive dimension or element size.
var ErrShape = errors.New("ooc: invalid shape")

// ErrOverflow reports a shape whose byte size does not fit in int.
var ErrOverflow = errors.New("ooc: matrix byte size overflows int")

// shapeErr wraps ErrShape with the offending shape.
func shapeErr(rows, cols, elem int) error {
	return fmt.Errorf("%w: rows=%d cols=%d elemSize=%d (all must be positive)", ErrShape, rows, cols, elem)
}

// overflowErr wraps ErrOverflow with the offending shape.
func overflowErr(rows, cols int) error {
	return fmt.Errorf("%w: rows=%d cols=%d", ErrOverflow, rows, cols)
}

// mismatchErr wraps ErrJournalMismatch with the differing field.
func mismatchErr(field string, journal, run int64) error {
	return fmt.Errorf("%w: %s is %d in the journal, %d in the run", ErrJournalMismatch, field, journal, run)
}
