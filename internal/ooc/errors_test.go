package ooc

import (
	"errors"
	"strings"
	"testing"
)

// Every cold-path constructor must wrap its sentinel so callers branch
// with errors.Is, and must carry the diagnostic payload in the message.
func TestErrorConstructorsWrapSentinels(t *testing.T) {
	cause := errors.New("backend says no")
	cases := []struct {
		err      error
		sentinel error
		contains []string
	}{
		{shortReadErr(4096, 512, 100, cause), ErrShortRead, []string{"100 of 512", "4096", "backend says no"}},
		{shortReadErr(0, 8, 0, nil), ErrShortRead, []string{"0 of 8"}},
		{shortWriteErr(128, 64, 32, cause), ErrShortWrite, []string{"32 of 64", "128", "backend says no"}},
		{shortWriteErr(128, 64, 0, nil), ErrShortWrite, []string{"0 of 64"}},
		{corruptSegmentErr(2, 7, 0xdead, 0xbeef), ErrCorruptSegment, []string{"pass 2", "unit 7", "dead", "beef"}},
		{budgetErr(100, 4096), ErrBudget, []string{"100", "4096"}},
		{mismatchErr("rows", 64, 128), ErrJournalMismatch, []string{"rows", "64", "128"}},
		{shapeErr(0, 5, 8), ErrShape, []string{"rows=0", "cols=5"}},
		{overflowErr(1<<31, 1<<31), ErrOverflow, []string{"rows="}},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("%v does not wrap %v", c.err, c.sentinel)
		}
		for _, want := range c.contains {
			if !strings.Contains(c.err.Error(), want) {
				t.Errorf("%q missing %q", c.err.Error(), want)
			}
		}
	}
}

// The sentinels must be mutually distinct: errors.Is across different
// sentinels is always false.
func TestSentinelsDistinct(t *testing.T) {
	all := []error{ErrShortRead, ErrShortWrite, ErrCorruptSegment, ErrBudget,
		ErrJournalMismatch, ErrJournalCorrupt, ErrNoJournal, ErrShape, ErrOverflow}
	for i, a := range all {
		for j, b := range all {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("sentinel identity broken: all[%d] vs all[%d]", i, j)
			}
		}
	}
}
