package ooc

import "inplace/internal/stats"

// counters is the live metering surface of one run, built on the same
// internal/stats primitives the in-memory planner cache counters use.
// All fields are safe for concurrent update from the pipeline stages.
type counters struct {
	bytesRead    stats.Counter
	bytesWritten stats.Counter
	readOps      stats.Counter
	writeOps     stats.Counter
	retries      stats.Counter

	segmentsTransformed stats.Counter
	segmentsSkipped     stats.Counter // committed in the journal before this run
	segmentsRestored    stats.Counter // undo images replayed on resume

	prefetchHits   stats.Counter
	prefetchMisses stats.Counter

	journalBytes stats.Counter
	peakResident stats.Gauge
}

// Stats is the immutable snapshot of a run's counters that Run returns.
type Stats struct {
	// BytesRead and BytesWritten count data-backend I/O volume;
	// journal traffic is metered separately in JournalBytes.
	BytesRead    uint64
	BytesWritten uint64
	// ReadOps and WriteOps count backend calls after write-combining,
	// so ReadOps/BytesRead exposes the effective I/O granularity.
	ReadOps  uint64
	WriteOps uint64
	// Retries counts transient backend failures that were re-issued.
	Retries uint64

	// SegmentsTransformed counts units gathered by this run;
	// SegmentsSkipped counts units the journal proved already committed;
	// SegmentsRestored counts undo images replayed before re-execution.
	SegmentsTransformed uint64
	SegmentsSkipped     uint64
	SegmentsRestored    uint64

	// PrefetchHits counts transform-stage pulls satisfied without
	// waiting on the reader; PrefetchMisses counts stalls.
	PrefetchHits   uint64
	PrefetchMisses uint64

	// JournalBytes counts bytes appended to the journal (headers, undo
	// images and commit records).
	JournalBytes uint64

	// PeakResidentBytes is the high-water mark of scratch the engine
	// held at once: the buffer ring plus per-run bookkeeping. It never
	// exceeds the configured budget.
	PeakResidentBytes uint64

	// Passes is the number of permutation passes the schedule ran.
	Passes int
}

// Cumulative process-wide out-of-core metrics, registered on the
// default stats registry so exporters (the xposed /stats endpoint)
// enumerate them alongside the planner-cache counters. Per-run Stats
// snapshots stay the precise per-call surface; these aggregate across
// every run in the process.
var global = struct {
	runs, failures               *stats.Counter
	bytesRead, bytesWritten      *stats.Counter
	segsTransformed, segsSkipped *stats.Counter
	segsRestored, journalBytes   *stats.Counter
}{
	runs:            stats.Default().Counter("ooc_runs"),
	failures:        stats.Default().Counter("ooc_failures"),
	bytesRead:       stats.Default().Counter("ooc_bytes_read"),
	bytesWritten:    stats.Default().Counter("ooc_bytes_written"),
	segsTransformed: stats.Default().Counter("ooc_segments_transformed"),
	segsSkipped:     stats.Default().Counter("ooc_segments_skipped"),
	segsRestored:    stats.Default().Counter("ooc_segments_restored"),
	journalBytes:    stats.Default().Counter("ooc_journal_bytes"),
}

// publish folds one run's counters into the process-wide aggregates.
// Called exactly once per Run, on every exit path.
func (c *counters) publish(failed bool) {
	global.runs.Inc()
	if failed {
		global.failures.Inc()
	}
	global.bytesRead.Add(c.bytesRead.Load())
	global.bytesWritten.Add(c.bytesWritten.Load())
	global.segsTransformed.Add(c.segmentsTransformed.Load())
	global.segsSkipped.Add(c.segmentsSkipped.Load())
	global.segsRestored.Add(c.segmentsRestored.Load())
	global.journalBytes.Add(c.journalBytes.Load())
}

// snapshot freezes the counters into a Stats.
func (c *counters) snapshot(passes int) Stats {
	return Stats{
		BytesRead:           c.bytesRead.Load(),
		BytesWritten:        c.bytesWritten.Load(),
		ReadOps:             c.readOps.Load(),
		WriteOps:            c.writeOps.Load(),
		Retries:             c.retries.Load(),
		SegmentsTransformed: c.segmentsTransformed.Load(),
		SegmentsSkipped:     c.segmentsSkipped.Load(),
		SegmentsRestored:    c.segmentsRestored.Load(),
		PrefetchHits:        c.prefetchHits.Load(),
		PrefetchMisses:      c.prefetchMisses.Load(),
		JournalBytes:        c.journalBytes.Load(),
		PeakResidentBytes:   c.peakResident.Load(),
		Passes:              passes,
	}
}
