package ooc

import (
	"encoding/binary"
	"hash/crc64"
	"io"
)

// byteOrder is the endianness of every on-disk integer in this package.
var byteOrder = binary.LittleEndian

// Checksummed record framing, shared between the progress journal and
// the columnar tile store (internal/tilestore). A frame is a fixed
// 48-byte header followed by an arbitrary payload: the header carries
// the payload length and CRC64-ECMA checksum plus three caller-defined
// identity fields, and is itself closed by a CRC64 over its first 40
// bytes. A single flipped bit anywhere — header or payload — is
// therefore detectable without trusting any other byte of the file,
// which is what lets both consumers treat "first frame that fails
// validation" as the logical end (journal) or as corruption
// (tilestore segments).
//
// The byte layout is exactly the journal record format that shipped in
// PR 5; extracting it here changed no on-disk bytes.

// FrameHeaderSize is the fixed byte size of an encoded frame header.
const FrameHeaderSize = 48

// Frame is the decoded header of one checksummed record.
//
// Kind, Tag, Unit and Gen are caller-defined identity: the journal uses
// them as record kind, pass index, unit index and run generation; the
// tile store uses them as segment kind, column index, chunk index and
// dataset generation. PayloadLen and PayloadSum describe the payload
// that follows the header.
type Frame struct {
	Kind       byte
	Tag        uint32
	Unit       uint64
	PayloadLen uint64
	PayloadSum uint64
	Gen        uint64
}

// Checksum returns the CRC64-ECMA checksum of p, using the table shared
// by every checksummed structure in this package (journal records,
// segment commits, tile-store frames).
func Checksum(p []byte) uint64 { return crc64.Checksum(p, crcTab) }

// ChecksumUpdate folds p into a running checksum, so a payload can be
// summed incrementally while it streams past (start from 0; the result
// after the final piece equals Checksum over the concatenation).
func ChecksumUpdate(sum uint64, p []byte) uint64 { return crc64.Update(sum, crcTab, p) }

// PutFrame encodes f into dst, which must be at least FrameHeaderSize
// bytes. The final 8 bytes are the CRC64 of the preceding 40, so a
// parse round-trips if and only if no header byte was altered.
func PutFrame(dst []byte, f Frame) {
	_ = dst[FrameHeaderSize-1]
	dst[0] = f.Kind
	dst[1], dst[2], dst[3] = 0, 0, 0
	byteOrder.PutUint32(dst[4:8], f.Tag)
	byteOrder.PutUint64(dst[8:16], f.Unit)
	byteOrder.PutUint64(dst[16:24], f.PayloadLen)
	byteOrder.PutUint64(dst[24:32], f.PayloadSum)
	byteOrder.PutUint64(dst[32:40], f.Gen)
	byteOrder.PutUint64(dst[40:48], crc64.Checksum(dst[0:40], crcTab))
}

// ParseFrame decodes a frame header from src (at least FrameHeaderSize
// bytes). ok is false when the embedded header checksum does not match
// — a torn or corrupted header — in which case the returned Frame is
// zero and none of its fields may be trusted.
func ParseFrame(src []byte) (f Frame, ok bool) {
	_ = src[FrameHeaderSize-1]
	if byteOrder.Uint64(src[40:48]) != crc64.Checksum(src[0:40], crcTab) {
		return Frame{}, false
	}
	f.Kind = src[0]
	f.Tag = byteOrder.Uint32(src[4:8])
	f.Unit = byteOrder.Uint64(src[8:16])
	f.PayloadLen = byteOrder.Uint64(src[16:24])
	f.PayloadSum = byteOrder.Uint64(src[24:32])
	f.Gen = byteOrder.Uint64(src[32:40])
	return f, true
}

// ChecksumRange computes the CRC64-ECMA checksum of n bytes at off
// without holding the range resident: payload verification for frames
// too large to buffer.
func ChecksumRange(r io.ReaderAt, off, n int64) (uint64, error) {
	h := crc64.New(crcTab)
	if _, err := io.Copy(h, io.NewSectionReader(r, off, n)); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}
