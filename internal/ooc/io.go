package ooc

import "io"

// Retried, metered span I/O against the data backend. The io.ReaderAt /
// io.WriterAt contracts allow transient short counts only together with
// an error; the engine re-issues the full span a bounded number of
// times (Config.Retries) before surfacing the typed failure, so a
// flaky network or FUSE backend degrades to retries instead of a
// failed run.

// readFull reads len(p) bytes at off, retrying transient failures.
func (r *runner) readFull(b Backend, p []byte, off int64) error {
	var n int
	var err error
	for attempt := 0; attempt <= r.cfg.retries(); attempt++ {
		if attempt > 0 {
			r.ctr.retries.Inc()
		}
		n, err = b.ReadAt(p, off)
		r.ctr.readOps.Inc()
		r.ctr.bytesRead.Add(uint64(n))
		if n == len(p) && (err == nil || err == io.EOF) {
			return nil
		}
	}
	return shortReadErr(off, len(p), n, err)
}

// writeFull writes len(p) bytes at off, retrying transient failures.
func (r *runner) writeFull(b Backend, p []byte, off int64) error {
	var n int
	var err error
	for attempt := 0; attempt <= r.cfg.retries(); attempt++ {
		if attempt > 0 {
			r.ctr.retries.Inc()
		}
		n, err = b.WriteAt(p, off)
		r.ctr.writeOps.Inc()
		r.ctr.bytesWritten.Add(uint64(n))
		if n == len(p) && err == nil {
			return nil
		}
	}
	return shortWriteErr(off, len(p), n, err)
}

// readUnit fills buf with the panel bytes of g, one backend call per
// combined span.
func (r *runner) readUnit(g unitGeom, buf []byte) error {
	return r.sched.spans(g, func(off int64, bufOff, n int) error {
		return r.readFull(r.data, buf[bufOff:bufOff+n], off)
	})
}

// writeUnit writes buf back to the panel's backend spans.
func (r *runner) writeUnit(g unitGeom, buf []byte) error {
	return r.sched.spans(g, func(off int64, bufOff, n int) error {
		return r.writeFull(r.data, buf[bufOff:bufOff+n], off)
	})
}
