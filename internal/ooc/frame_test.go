package ooc

import (
	"bytes"
	"hash/crc64"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{
		Kind:       7,
		Tag:        0xdeadbeef,
		Unit:       1 << 40,
		PayloadLen: 4096,
		PayloadSum: 0x0123456789abcdef,
		Gen:        42,
	}
	var buf [FrameHeaderSize]byte
	PutFrame(buf[:], f)
	got, ok := ParseFrame(buf[:])
	if !ok {
		t.Fatal("ParseFrame rejected a freshly encoded header")
	}
	if got != f {
		t.Fatalf("round trip mismatch: got %+v, want %+v", got, f)
	}
}

func TestFrameDetectsEveryFlippedByte(t *testing.T) {
	var buf [FrameHeaderSize]byte
	PutFrame(buf[:], Frame{Kind: 1, Tag: 2, Unit: 3, PayloadLen: 4, PayloadSum: 5, Gen: 6})
	for i := range buf {
		corrupt := buf
		corrupt[i] ^= 0x40
		if _, ok := ParseFrame(corrupt[:]); ok {
			t.Fatalf("flip of byte %d went undetected", i)
		}
	}
}

func TestFrameReservedBytesZeroed(t *testing.T) {
	// PutFrame must fully overwrite dst, including the reserved pad
	// after Kind: encoding into a dirty buffer and a clean one must
	// produce identical bytes (the determinism the golden fixtures of
	// downstream formats rely on).
	var clean [FrameHeaderSize]byte
	dirty := [FrameHeaderSize]byte{1: 0xff, 2: 0xee, 3: 0xdd}
	f := Frame{Kind: 9, Tag: 8, Unit: 7, PayloadLen: 6, PayloadSum: 5, Gen: 4}
	PutFrame(clean[:], f)
	PutFrame(dirty[:], f)
	if !bytes.Equal(clean[:], dirty[:]) {
		t.Fatalf("encoding depends on prior dst contents:\n%x\n%x", clean, dirty)
	}
}

func TestChecksumMatchesReference(t *testing.T) {
	p := []byte("the quick brown fox jumps over the lazy dog")
	want := crc64.Checksum(p, crc64.MakeTable(crc64.ECMA))
	if got := Checksum(p); got != want {
		t.Fatalf("Checksum = %016x, want ECMA reference %016x", got, want)
	}
}

func TestChecksumRange(t *testing.T) {
	payload := make([]byte, 10000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	backing := append(append(make([]byte, 0, len(payload)+64), make([]byte, 32)...), payload...)
	r := bytes.NewReader(backing)
	got, err := ChecksumRange(r, 32, int64(len(payload)))
	if err != nil {
		t.Fatalf("ChecksumRange: %v", err)
	}
	if want := Checksum(payload); got != want {
		t.Fatalf("ChecksumRange = %016x, want %016x", got, want)
	}
	// A range running past EOF checksums only the available bytes
	// (io.Copy treats EOF as normal termination); the caller's recorded
	// checksum then mismatches, which is how torn journal payloads and
	// truncated segments are detected.
	short, err := ChecksumRange(r, 32, int64(len(backing)))
	if err != nil {
		t.Fatalf("ChecksumRange past EOF: %v", err)
	}
	if short != got {
		t.Fatalf("past-EOF range checksummed %016x, want the available-bytes checksum %016x", short, got)
	}
}
