package ooc

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"sync"
	"time"
)

// The progress journal: an append-only write-ahead log on any Backend.
// Before a transformed segment overwrites its backend region, the
// segment's original bytes (the source panel, which the pipeline already
// holds) are appended as an undo image; after the data write completes,
// a commit record with the transformed segment's CRC64 is appended.
// Pass boundaries get their own records. A crash therefore leaves the
// journal in one of three states per segment — untouched (re-execute),
// intent-only (roll back the undo image, then re-execute), or committed
// (skip) — and every state resumes to the identical final matrix.
//
// Torn trailing records are the expected shape of a crash: scanning
// stops at the first record whose header or payload checksum fails, or
// whose run identifier belongs to an older journal generation, and
// everything after is treated as never written.

const (
	journalMagic   = "XOOCJv1\n"
	journalVersion = 1
	headerSize     = 64
	recHeaderSize  = FrameHeaderSize
)

// Record kinds. Stable on-disk values.
const (
	recIntent   = 1 // payload: undo image of the segment's panel bytes
	recCommit   = 2 // payload: 8-byte CRC64 of the transformed panel
	recPassDone = 3 // payload: empty
)

var crcTab = crc64.MakeTable(crc64.ECMA)

// journal is an open journal with an append cursor. Appends are
// serialized by the pipeline's writer stage; the mutex guards against
// misuse if that ever changes.
type journal struct {
	b     Backend
	ctr   *counters
	runID uint64
	end   int64
	mu    sync.Mutex
}

// journalGeom is the schedule fingerprint persisted in the header; a
// resume must match it exactly or the unit boundaries would shift.
type journalGeom struct {
	rows, cols, elem int
	c2r              bool
	vw, hh           int
	passes           int
}

func (s *schedule) geom(rows, cols int) journalGeom {
	return journalGeom{rows: rows, cols: cols, elem: s.elem, c2r: s.c2r, vw: s.vw, hh: s.hh, passes: len(s.passes)}
}

// resumeState is what a journal scan recovers: how many passes are
// fully done, which units of the in-flight pass committed, the pending
// intents to roll back, and the per-unit checksums of the final pass
// (for Verify).
type resumeState struct {
	donePasses int
	committed  map[int]bool   // units of pass donePasses with commit records
	intents    map[int]intent // units of pass donePasses with intent but no commit
	finalSums  map[int]uint64 // unit -> CRC64, final pass only
}

type intent struct {
	payloadOff int64
	payloadLen int64
}

// newJournal starts a fresh journal generation on b: writes a new
// header (invalidating any previous generation's records via the run
// identifier) and returns the append-ready journal.
func newJournal(b Backend, g journalGeom, ctr *counters) (*journal, error) {
	j := &journal{b: b, ctr: ctr, runID: uint64(time.Now().UnixNano()), end: headerSize}
	var h [headerSize]byte
	copy(h[0:8], journalMagic)
	binary.LittleEndian.PutUint32(h[8:12], journalVersion)
	binary.LittleEndian.PutUint32(h[12:16], uint32(g.elem))
	binary.LittleEndian.PutUint64(h[16:24], uint64(g.rows))
	binary.LittleEndian.PutUint64(h[24:32], uint64(g.cols))
	var flags uint64
	if g.c2r {
		flags = 1
	}
	flags |= uint64(g.passes) << 8
	binary.LittleEndian.PutUint64(h[32:40], flags)
	binary.LittleEndian.PutUint64(h[40:48], uint64(g.vw)<<32|uint64(g.hh))
	binary.LittleEndian.PutUint64(h[48:56], j.runID)
	binary.LittleEndian.PutUint64(h[56:64], crc64.Checksum(h[0:56], crcTab))
	if _, err := b.WriteAt(h[:], 0); err != nil {
		return nil, fmt.Errorf("ooc: writing journal header: %w", err)
	}
	ctr.journalBytes.Add(headerSize)
	// Drop any stale generation's tail when the backend supports it;
	// the run identifier protects correctness either way.
	if t, ok := b.(interface{ Truncate(int64) error }); ok {
		_ = t.Truncate(headerSize)
	}
	j.syncJournal()
	return j, nil
}

// openJournal validates an existing journal against the expected
// geometry and scans it into a resumeState.
func openJournal(b Backend, g journalGeom, finalPass int, ctr *counters) (*journal, *resumeState, error) {
	var h [headerSize]byte
	if _, err := io.ReadFull(io.NewSectionReader(b, 0, headerSize), h[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: unreadable header: %v", ErrJournalCorrupt, err)
	}
	if string(h[0:8]) != journalMagic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrJournalCorrupt)
	}
	if got := binary.LittleEndian.Uint64(h[56:64]); got != crc64.Checksum(h[0:56], crcTab) {
		return nil, nil, fmt.Errorf("%w: header checksum mismatch", ErrJournalCorrupt)
	}
	if v := binary.LittleEndian.Uint32(h[8:12]); v != journalVersion {
		return nil, nil, fmt.Errorf("%w: version %d, want %d", ErrJournalCorrupt, v, journalVersion)
	}
	check := func(field string, got, want int64) error {
		if got != want {
			return mismatchErr(field, got, want)
		}
		return nil
	}
	flags := binary.LittleEndian.Uint64(h[32:40])
	vwhh := binary.LittleEndian.Uint64(h[40:48])
	jc2r := flags&1 != 0
	for _, c := range []struct {
		field     string
		got, want int64
	}{
		{"elem_size", int64(binary.LittleEndian.Uint32(h[12:16])), int64(g.elem)},
		{"rows", int64(binary.LittleEndian.Uint64(h[16:24])), int64(g.rows)},
		{"cols", int64(binary.LittleEndian.Uint64(h[24:32])), int64(g.cols)},
		{"passes", int64(flags >> 8), int64(g.passes)},
		{"segment_cols", int64(vwhh >> 32), int64(g.vw)},
		{"segment_rows", int64(vwhh & 0xffffffff), int64(g.hh)},
	} {
		if err := check(c.field, c.got, c.want); err != nil {
			return nil, nil, err
		}
	}
	if jc2r != g.c2r {
		return nil, nil, fmt.Errorf("%w: direction differs", ErrJournalMismatch)
	}

	j := &journal{b: b, ctr: ctr, runID: binary.LittleEndian.Uint64(h[48:56]), end: headerSize}
	st := &resumeState{committed: map[int]bool{}, intents: map[int]intent{}, finalSums: map[int]uint64{}}
	var rh [recHeaderSize]byte
	for {
		if _, err := io.ReadFull(io.NewSectionReader(b, j.end, recHeaderSize), rh[:]); err != nil {
			break // torn or absent record: logical end of journal
		}
		fr, ok := ParseFrame(rh[:])
		if !ok {
			break // torn header
		}
		if fr.Gen != j.runID {
			break // stale generation
		}
		kind := fr.Kind
		pass := int(fr.Tag)
		unit := int(fr.Unit)
		plen := int64(fr.PayloadLen)
		payloadOff := j.end + recHeaderSize
		if plen > 0 {
			sum, err := ChecksumRange(b, payloadOff, plen)
			if err != nil || sum != fr.PayloadSum {
				break // torn payload
			}
		}
		switch kind {
		case recPassDone:
			if pass == st.donePasses {
				st.donePasses++
				st.committed = map[int]bool{}
				st.intents = map[int]intent{}
			}
		case recIntent:
			if pass == st.donePasses {
				st.intents[unit] = intent{payloadOff: payloadOff, payloadLen: plen}
			}
		case recCommit:
			if pass == st.donePasses {
				st.committed[unit] = true
				delete(st.intents, unit)
			}
			if pass == finalPass {
				var sb [8]byte
				if _, err := io.ReadFull(io.NewSectionReader(b, payloadOff, 8), sb[:]); err == nil {
					st.finalSums[unit] = binary.LittleEndian.Uint64(sb[:])
				}
			}
		}
		j.end = payloadOff + plen
	}
	return j, st, nil
}

// append writes one record (header plus payload) at the cursor.
func (j *journal) append(kind byte, pass, unit int, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var rh [recHeaderSize]byte
	PutFrame(rh[:], Frame{
		Kind:       kind,
		Tag:        uint32(pass),
		Unit:       uint64(unit),
		PayloadLen: uint64(len(payload)),
		PayloadSum: crc64.Checksum(payload, crcTab),
		Gen:        j.runID,
	})
	//xpose:allow locksafe -- cursor reservation and record write are one atomic durability unit; concurrent appends must serialize through j.mu
	if _, err := j.b.WriteAt(rh[:], j.end); err != nil {
		return fmt.Errorf("ooc: journal append: %w", err)
	}
	if len(payload) > 0 {
		//xpose:allow locksafe -- payload write belongs to the same reserved record; releasing j.mu here would interleave records
		if _, err := j.b.WriteAt(payload, j.end+recHeaderSize); err != nil {
			return fmt.Errorf("ooc: journal append: %w", err)
		}
	}
	j.end += recHeaderSize + int64(len(payload))
	j.ctr.journalBytes.Add(uint64(recHeaderSize + len(payload)))
	return nil
}

// intent appends the undo image for a segment and makes it durable: the
// undo must reach the journal before the data region is overwritten.
func (j *journal) intent(pass, unit int, undo []byte) error {
	if err := j.append(recIntent, pass, unit, undo); err != nil {
		return err
	}
	j.syncJournal()
	return nil
}

// commit appends the post-write record carrying the transformed
// segment's checksum.
func (j *journal) commit(pass, unit int, sum uint64) error {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], sum)
	return j.append(recCommit, pass, unit, p[:])
}

// passDone appends the pass barrier record and makes the whole pass
// durable.
func (j *journal) passDone(pass int) error {
	if err := j.append(recPassDone, pass, 0, nil); err != nil {
		return err
	}
	j.syncJournal()
	return nil
}

// syncJournal flushes the journal backend when it supports it.
func (j *journal) syncJournal() {
	if s, ok := j.b.(syncer); ok {
		_ = s.Sync()
	}
}
