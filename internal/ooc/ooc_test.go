package ooc

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
)

// memBackend is a growable in-memory Backend (and journal backend) for
// tests.
type memBackend struct {
	mu sync.Mutex
	b  []byte
}

func (m *memBackend) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.b)) {
		return 0, io.EOF
	}
	n := copy(p, m.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memBackend) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(m.b)) {
		m.b = append(m.b, make([]byte, end-int64(len(m.b)))...)
	}
	return copy(m.b[off:], p), nil
}

func (m *memBackend) Truncate(n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < int64(len(m.b)) {
		m.b = m.b[:n]
	}
	return nil
}

// naiveTranspose is the bit-exact reference: out-of-place byte
// transpose of a rows×cols row-major matrix of e-byte elements.
func naiveTranspose(in []byte, rows, cols, e int) []byte {
	out := make([]byte, len(in))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			copy(out[(j*rows+i)*e:(j*rows+i+1)*e], in[(i*cols+j)*e:(i*cols+j+1)*e])
		}
	}
	return out
}

func randomMatrix(rng *rand.Rand, rows, cols, e int) []byte {
	b := make([]byte, rows*cols*e)
	rng.Read(b)
	return b
}

func TestRoundTrip(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{2, 3}, {3, 2}, {4, 6}, {6, 4}, {7, 5}, {5, 7}, {8, 8},
		{1, 9}, {9, 1}, {2, 2}, {13, 29}, {29, 13}, {32, 48}, {48, 32},
		{63, 65}, {96, 64}, {17, 1024}, {1024, 17},
	}
	elems := []int{1, 3, 8}
	rng := rand.New(rand.NewSource(5))
	for _, sh := range shapes {
		for _, e := range elems {
			floor, ok := minBudget(sh.rows, sh.cols, e)
			if !ok {
				t.Fatalf("minBudget overflow for %dx%d", sh.rows, sh.cols)
			}
			for _, budget := range []int64{floor, 2*floor + 7*int64(e), 64 * floor, 1 << 22} {
				for _, dir := range []Dir{DirAuto, DirC2R, DirR2C} {
					name := fmt.Sprintf("%dx%dx%d/b%d/dir%d", sh.rows, sh.cols, e, budget, dir)
					in := randomMatrix(rng, sh.rows, sh.cols, e)
					want := naiveTranspose(in, sh.rows, sh.cols, e)
					data := &memBackend{b: append([]byte(nil), in...)}
					stats, err := Run(data, Config{
						Rows: sh.rows, Cols: sh.cols, ElemSize: e,
						Budget: budget, Dir: dir,
					})
					if err != nil {
						t.Fatalf("%s: Run: %v", name, err)
					}
					if !bytes.Equal(data.b, want) {
						t.Fatalf("%s: result differs from reference", name)
					}
					if sh.rows > 1 && sh.cols > 1 {
						if got := int64(stats.PeakResidentBytes); got > budget {
							t.Fatalf("%s: peak resident %d exceeds budget %d", name, got, budget)
						}
						if stats.SegmentsTransformed == 0 {
							t.Fatalf("%s: no segments transformed", name)
						}
					}
				}
			}
		}
	}
}

func TestRoundTripWithJournalAndVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range []struct{ rows, cols int }{{16, 24}, {24, 16}, {31, 37}} {
		const e = 8
		in := randomMatrix(rng, sh.rows, sh.cols, e)
		want := naiveTranspose(in, sh.rows, sh.cols, e)
		data := &memBackend{b: append([]byte(nil), in...)}
		floor, _ := minBudget(sh.rows, sh.cols, e)
		stats, err := Run(data, Config{
			Rows: sh.rows, Cols: sh.cols, ElemSize: e,
			Budget:  4 * floor,
			Journal: &memBackend{},
			Verify:  true,
		})
		if err != nil {
			t.Fatalf("Run(%dx%d): %v", sh.rows, sh.cols, err)
		}
		if !bytes.Equal(data.b, want) {
			t.Fatalf("%dx%d: result differs from reference", sh.rows, sh.cols)
		}
		if stats.JournalBytes == 0 {
			t.Fatalf("%dx%d: journal never written", sh.rows, sh.cols)
		}
	}
}

// faultBackend wraps a memBackend and starts failing permanently after
// a fixed number of successful writes, tearing the failing write halfway
// — the observable shape of a process killed mid-I/O.
type faultBackend struct {
	*memBackend
	mu        sync.Mutex
	remaining int
	dead      bool
}

var errInjected = errors.New("injected fault")

func (f *faultBackend) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if f.dead || f.remaining <= 0 {
		f.dead = true
		f.mu.Unlock()
		if len(p) > 1 {
			n, _ := f.memBackend.WriteAt(p[:len(p)/2], off)
			return n, errInjected
		}
		return 0, errInjected
	}
	f.remaining--
	f.mu.Unlock()
	return f.memBackend.WriteAt(p, off)
}

func TestResumeAfterKill(t *testing.T) {
	const rows, cols, e = 23, 37, 8
	rng := rand.New(rand.NewSource(11))
	in := randomMatrix(rng, rows, cols, e)
	want := naiveTranspose(in, rows, cols, e)
	floor, _ := minBudget(rows, cols, e)

	var sawRestore, sawSkip bool
	for failAfter := 0; failAfter < 40; failAfter += 3 {
		data := &memBackend{b: append([]byte(nil), in...)}
		jrn := &memBackend{}
		cfg := Config{Rows: rows, Cols: cols, ElemSize: e, Budget: 4 * floor, Retries: 1}

		// First run against a backend that dies after failAfter writes.
		cfg.Journal = jrn
		fb := &faultBackend{memBackend: data, remaining: failAfter}
		if _, err := Run(fb, cfg); err == nil {
			t.Fatalf("failAfter=%d: expected injected failure, got success", failAfter)
		} else if !errors.Is(err, ErrShortWrite) {
			t.Fatalf("failAfter=%d: want ErrShortWrite, got %v", failAfter, err)
		}

		// Resume against the healthy backend.
		cfg.Resume = true
		cfg.Verify = true
		stats, err := Run(data, cfg)
		if err != nil {
			t.Fatalf("failAfter=%d: resume: %v", failAfter, err)
		}
		if !bytes.Equal(data.b, want) {
			t.Fatalf("failAfter=%d: resumed result differs from reference", failAfter)
		}
		sawRestore = sawRestore || stats.SegmentsRestored > 0
		sawSkip = sawSkip || stats.SegmentsSkipped > 0
	}
	if !sawRestore {
		t.Error("no run ever rolled back an intent — fault sweep too narrow")
	}
	if !sawSkip {
		t.Error("no run ever skipped a committed segment — fault sweep too narrow")
	}
}

func TestResumeJournalMismatch(t *testing.T) {
	const e = 8
	in := make([]byte, 16*24*e)
	data := &memBackend{b: append([]byte(nil), in...)}
	jrn := &memBackend{}
	floor, _ := minBudget(16, 24, e)
	cfg := Config{Rows: 16, Cols: 24, ElemSize: e, Budget: 4 * floor, Journal: jrn}
	if _, err := Run(data, cfg); err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	// Same journal, different shape: resume must refuse.
	bad := cfg
	bad.Rows, bad.Cols = 24, 16
	bad.Resume = true
	bad.Dir = DirC2R
	if _, err := Run(data, bad); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("want ErrJournalMismatch, got %v", err)
	}
	// Garbage header: corrupt.
	if _, err := Run(data, Config{Rows: 16, Cols: 24, ElemSize: e, Budget: 4 * floor,
		Journal: &memBackend{b: []byte("not a journal header at all, nope....")}, Resume: true}); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("want ErrJournalCorrupt, got %v", err)
	}
}

func TestConfigErrors(t *testing.T) {
	data := &memBackend{b: make([]byte, 6*8)}
	for _, tc := range []struct {
		name string
		cfg  Config
		want error
	}{
		{"zero rows", Config{Rows: 0, Cols: 3, ElemSize: 8, Budget: 1 << 20}, ErrShape},
		{"neg elem", Config{Rows: 2, Cols: 3, ElemSize: -1, Budget: 1 << 20}, ErrShape},
		{"budget floor", Config{Rows: 100, Cols: 200, ElemSize: 8, Budget: 100}, ErrBudget},
		{"resume sans journal", Config{Rows: 2, Cols: 3, ElemSize: 8, Budget: 1 << 20, Resume: true}, ErrNoJournal},
		{"verify sans journal", Config{Rows: 2, Cols: 3, ElemSize: 8, Budget: 1 << 20, Verify: true}, ErrNoJournal},
	} {
		if _, err := Run(data, tc.cfg); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}
