package ooc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// FuzzOOCRoundTrip drives the whole engine — schedule derivation,
// pipeline, journal, kill and resume — over fuzzer-chosen shapes,
// element sizes, budgets and fault points, asserting bit-exactness
// against the out-of-place reference every time. A crash at an
// arbitrary write count followed by a resume must converge to the same
// bytes as an uninterrupted run.
func FuzzOOCRoundTrip(f *testing.F) {
	f.Add(uint16(4), uint16(6), uint8(8), uint8(0), int64(1), uint16(3), uint8(0))
	f.Add(uint16(7), uint16(5), uint8(1), uint8(3), int64(2), uint16(0), uint8(1))
	f.Add(uint16(16), uint16(16), uint8(3), uint8(9), int64(3), uint16(40), uint8(2))
	f.Add(uint16(1), uint16(33), uint8(8), uint8(1), int64(4), uint16(9), uint8(0))
	f.Add(uint16(63), uint16(2), uint8(2), uint8(255), int64(5), uint16(77), uint8(1))
	f.Fuzz(func(t *testing.T, rowsIn, colsIn uint16, elemIn, budgetSel uint8, seed int64, failAfter uint16, dirSel uint8) {
		rows := int(rowsIn%96) + 1
		cols := int(colsIn%96) + 1
		elem := int(elemIn%9) + 1
		dir := Dir(dirSel % 3)

		floor, ok := minBudget(rows, cols, elem)
		if !ok {
			t.Skip()
		}
		// Budgets from the exact floor up to comfortably in-core.
		budget := floor + int64(budgetSel)*floor/8

		rng := rand.New(rand.NewSource(seed))
		in := make([]byte, rows*cols*elem)
		rng.Read(in)
		want := naiveTranspose(in, rows, cols, elem)

		cfg := Config{Rows: rows, Cols: cols, ElemSize: elem, Budget: budget, Dir: dir, Retries: 1}

		// Plain run, no journal.
		data := &memBackend{b: append([]byte(nil), in...)}
		st, err := Run(data, cfg)
		if err != nil {
			t.Fatalf("plain run: %v", err)
		}
		if !bytes.Equal(data.b, want) {
			t.Fatal("plain run differs from reference")
		}
		if int64(st.PeakResidentBytes) > budget {
			t.Fatalf("peak resident %d exceeds budget %d", st.PeakResidentBytes, budget)
		}

		// Journaled run killed after failAfter writes, then resumed.
		data = &memBackend{b: append([]byte(nil), in...)}
		cfg.Journal = &memBackend{}
		fb := &faultBackend{memBackend: data, remaining: int(failAfter)}
		if _, err := Run(fb, cfg); err == nil {
			// The quota outlasted the run: already complete and correct.
			if !bytes.Equal(data.b, want) {
				t.Fatal("uninterrupted journaled run differs from reference")
			}
			return
		} else if !errors.Is(err, ErrShortWrite) {
			t.Fatalf("killed run: want ErrShortWrite, got %v", err)
		}
		cfg.Resume = true
		cfg.Verify = true
		if _, err := Run(data, cfg); err != nil {
			t.Fatalf("resume: %v", err)
		}
		if !bytes.Equal(data.b, want) {
			t.Fatal("resumed run differs from reference")
		}
	})
}
