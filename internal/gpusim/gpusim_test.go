package gpusim

import (
	"testing"

	"inplace/internal/core"
	"inplace/internal/cr"
)

func seq(n int) []uint64 {
	x := make([]uint64, n)
	for i := range x {
		x[i] = uint64(i)
	}
	return x
}

// The simulated kernels must compute the exact transposition.
func TestDeviceC2RCorrectExhaustive(t *testing.T) {
	for m := 1; m <= 18; m++ {
		for n := 1; n <= 18; n++ {
			d := NewK20c()
			data := seq(m * n)
			want := make([]uint64, m*n)
			core.OutOfPlace(want, data, m, n)
			d.C2R(data, cr.NewPlan(m, n))
			for i := range data {
				if data[i] != want[i] {
					t.Fatalf("m=%d n=%d: wrong at %d", m, n, i)
				}
			}
		}
	}
}

func TestDeviceC2RCorrectLarger(t *testing.T) {
	for _, sh := range [][2]int{{97, 131}, {128, 96}, {300, 40}, {40, 300}, {256, 256}} {
		m, n := sh[0], sh[1]
		d := NewK20c()
		data := seq(m * n)
		want := make([]uint64, m*n)
		core.OutOfPlace(want, data, m, n)
		d.C2R(data, cr.NewPlan(m, n))
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("%dx%d: wrong at %d", m, n, i)
			}
		}
	}
}

func TestDevicePanicsOnBadLength(t *testing.T) {
	d := NewK20c()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.C2R(make([]uint64, 5), cr.NewPlan(2, 3))
}

// The counted-transaction bandwidth must land in the regime the paper
// measured: the executed kernels on a large matrix with on-chip rows
// should model tens of GB/s, far below raw copy speed and far above the
// uncoalesced floor.
func TestModeledThroughputRegime(t *testing.T) {
	m, n := 1200, 900
	d := NewK20c()
	data := seq(m * n)
	d.C2R(data, cr.NewPlan(m, n))
	bw := d.Throughput(m, n, 8)
	if bw < 8 || bw > 80 {
		t.Fatalf("modeled throughput %.1f GB/s outside the plausible K20c regime", bw)
	}
	stats := d.Mem.Stats()
	if stats.Efficiency < 0.3 {
		t.Fatalf("kernel coalescing efficiency %.2f implausibly low", stats.Efficiency)
	}
}

// The §4.5 on-chip row shuffle must beat the global-gather fallback: the
// same matrix transposed with a device whose register budget cannot hold
// a row models strictly lower bandwidth.
func TestOnChipRowShuffleAdvantage(t *testing.T) {
	m, n := 600, 1400
	onChip := NewK20c()
	dataA := seq(m * n)
	onChip.C2R(dataA, cr.NewPlan(m, n))

	spilled := NewK20c()
	spilled.OnChipRowElems = 64 // force the gather + temporary path
	dataB := seq(m * n)
	spilled.C2R(dataB, cr.NewPlan(m, n))

	for i := range dataA {
		if dataA[i] != dataB[i] {
			t.Fatal("both configurations must compute the same permutation")
		}
	}
	a := onChip.Throughput(m, n, 8)
	b := spilled.Throughput(m, n, 8)
	if a <= b*1.1 {
		t.Fatalf("on-chip staging %.1f GB/s must clearly beat spilled %.1f GB/s", a, b)
	}
}

// Coprime shapes skip the pre-rotation kernel and transpose faster.
func TestCoprimeFasterOnDevice(t *testing.T) {
	dc := NewK20c()
	dataC := seq(601 * 901) // coprime
	dc.C2R(dataC, cr.NewPlan(601, 901))
	cBW := dc.Throughput(601, 901, 8)

	dn := NewK20c()
	dataN := seq(600 * 900) // gcd 300
	dn.C2R(dataN, cr.NewPlan(600, 900))
	nBW := dn.Throughput(600, 900, 8)

	if cBW <= nBW {
		t.Fatalf("coprime %.1f GB/s must beat non-coprime %.1f GB/s", cBW, nBW)
	}
}

// The per-column fallback path rotates correctly and charges accesses.
func TestRotateSingleColumn(t *testing.T) {
	m, n := 10, 3
	d := NewK20c()
	data := seq(m * n)
	d.rotateSingleColumn(data, m, n, 1, 3)
	for i := 0; i < m; i++ {
		want := uint64(((i+3)%m)*n + 1)
		if data[i*n+1] != want {
			t.Fatalf("rotate wrong at row %d: got %d want %d", i, data[i*n+1], want)
		}
		// Other columns untouched.
		if data[i*n] != uint64(i*n) || data[i*n+2] != uint64(i*n+2) {
			t.Fatal("fallback disturbed other columns")
		}
	}
	if d.Mem.Stats().Transactions == 0 {
		t.Fatal("fallback must charge memory transactions")
	}
	// Zero rotation is free.
	before := d.Mem.Stats().Transactions
	d.rotateSingleColumn(data, m, n, 1, 0)
	if d.Mem.Stats().Transactions != before {
		t.Fatal("zero rotation must not touch memory")
	}
}

// Throughput of an untouched device is zero.
func TestThroughputZero(t *testing.T) {
	d := NewK20c()
	if d.Throughput(10, 10, 8) != 0 {
		t.Fatal("no accesses must model zero throughput")
	}
}
