// Package gpusim executes the paper's GPU implementation (§5.2) on
// simulated SIMD hardware: the three kernels of the decomposed C2R
// transposition — cache-aware column rotation, row shuffle (staged on
// chip when the row fits, as in §4.5), and the cycle-following row
// permute — run warp by warp against the coalescing memory model of
// internal/memsim, actually moving the data.
//
// Unlike internal/gpumodel, which predicts pass costs analytically, this
// simulator counts every warp-wide transaction the kernels issue, so the
// modeled bandwidth follows from the implementation's real access
// pattern; and because the kernels genuinely permute the buffer, their
// output is verified element-for-element against the CPU engines.
package gpusim

import (
	"fmt"

	"inplace/internal/cr"
	"inplace/internal/mathutil"
	"inplace/internal/memsim"
)

// Device describes the simulated processor.
type Device struct {
	// Mem is the memory model transactions are charged to.
	Mem *memsim.Memory
	// WarpSize is the number of lanes per warp (32 on the K20c).
	WarpSize int
	// OnChipRowElems is the largest row the row-shuffle kernel can stage
	// in the register file (§4.5).
	OnChipRowElems int
	// SubRowElems is the width of the sub-rows moved by the column
	// kernels (one 128-byte line of 64-bit elements).
	SubRowElems int
}

// NewK20c returns a device with the reproduction's K20c calibration.
func NewK20c() *Device {
	return &Device{
		Mem:            memsim.New(memsim.K20c()),
		WarpSize:       32,
		OnChipRowElems: 29440, // §4.5: rows of up to 29440 64-bit elements
		SubRowElems:    16,
	}
}

// loadSpan issues warp loads covering words [off, off+count) of data and
// returns them. Consecutive lanes read consecutive words, so the access
// is coalesced.
func (d *Device) loadSpan(data []uint64, off, count int, dst []uint64) {
	addrs := make([]int64, d.WarpSize)
	for base := 0; base < count; base += d.WarpSize {
		for l := 0; l < d.WarpSize; l++ {
			if base+l < count {
				addrs[l] = int64(off+base+l) * 8
				dst[base+l] = data[off+base+l]
			} else {
				addrs[l] = -1
			}
		}
		d.Mem.ALU(1)
		d.Mem.Load(addrs, 8)
	}
}

// storeSpan issues warp stores covering words [off, off+count) of data.
func (d *Device) storeSpan(data []uint64, off, count int, src []uint64) {
	addrs := make([]int64, d.WarpSize)
	for base := 0; base < count; base += d.WarpSize {
		for l := 0; l < d.WarpSize; l++ {
			if base+l < count {
				addrs[l] = int64(off+base+l) * 8
				data[off+base+l] = src[base+l]
			} else {
				addrs[l] = -1
			}
		}
		d.Mem.ALU(1)
		d.Mem.Store(addrs, 8)
	}
}

// gatherRow issues warp gathers: lane l of each warp reads word
// srcIdx(base+l) into dst[base+l]. The addresses are arbitrary, so the
// coalescer charges whatever the pattern costs.
func (d *Device) gatherRow(data []uint64, n int, srcIdx func(j int) int, dst []uint64) {
	addrs := make([]int64, d.WarpSize)
	for base := 0; base < n; base += d.WarpSize {
		for l := 0; l < d.WarpSize; l++ {
			if base+l < n {
				w := srcIdx(base + l)
				addrs[l] = int64(w) * 8
				dst[base+l] = data[w]
			} else {
				addrs[l] = -1
			}
		}
		d.Mem.ALU(3) // index arithmetic (strength-reduced d'^{-1})
		d.Mem.Load(addrs, 8)
	}
}

// C2R performs the in-place C2R transposition of the row-major m×n array
// on the device, charging every access to the memory model. The buffer
// afterwards holds the row-major n×m transpose.
func (d *Device) C2R(data []uint64, p *cr.Plan) {
	if len(data) != p.Size {
		panic(fmt.Sprintf("gpusim: buffer length %d does not match %v", len(data), p))
	}
	if !p.Coprime {
		d.rotateKernel(data, p, p.Rot)
	}
	d.rowShuffleKernel(data, p)
	d.rotateKernel(data, p, func(j int) int { return j })
	d.rowPermuteKernel(data, p)
}

// rotateKernel is the cache-aware column rotation (§4.6): groups of
// SubRowElems adjacent columns rotate together; the coarse amount moves
// whole sub-rows along analytic cycles and a fine forward sweep applies
// the bounded residuals.
func (d *Device) rotateKernel(data []uint64, p *cr.Plan, amount func(j int) int) {
	m, n := p.M, p.N
	if m <= 1 {
		return
	}
	bw := d.SubRowElems
	buf := make([]uint64, bw)
	buf2 := make([]uint64, bw)
	res := make([]int, bw)
	for j0 := 0; j0 < n; j0 += bw {
		j1 := j0 + bw
		if j1 > n {
			j1 = n
		}
		w := j1 - j0
		// Coarse amount and residuals (choose the endpoint that bounds
		// them, as in internal/core).
		k, band, ok := planGroup(m, j0, j1, amount, res)
		if !ok {
			// Degenerate tiny-m group: per-column rotation through
			// registers (reads and writes whole columns).
			for j := j0; j < j1; j++ {
				d.rotateSingleColumn(data, m, n, j, amount(j))
			}
			continue
		}
		if k != 0 {
			d.coarseRotate(data, m, n, j0, w, k, buf, buf2)
		}
		if band == 0 {
			continue
		}
		// Fine sweep: stream rows forward, each destination row gathers
		// from its residual band (the band stays in registers/L1, so
		// only one read and one write per row reach memory).
		bandElems, ok := mathutil.CheckedMul(band, w)
		if !ok {
			panic("gpusim: band buffer overflows int")
		}
		saved := make([]uint64, bandElems)
		for r := 0; r < band; r++ {
			copy(saved[r*w:r*w+w], data[r*n+j0:r*n+j0+w])
		}
		row := make([]uint64, w)
		for i := 0; i < m; i++ {
			for jj := 0; jj < w; jj++ {
				sr := i + res[jj]
				if sr < m {
					row[jj] = data[sr*n+j0+jj]
				} else {
					row[jj] = saved[(sr-m)*w+jj]
				}
			}
			// One streamed read of the incoming band row + one store.
			d.Mem.ALU(2)
			d.chargeSubRow(i, n, j0, w, false)
			d.chargeSubRow(i, n, j0, w, true)
			copy(data[i*n+j0:i*n+j0+w], row)
		}
	}
}

func (d *Device) rotateSingleColumn(data []uint64, m, n, j, amt int) {
	amt %= m
	if amt < 0 {
		amt += m
	}
	if amt == 0 {
		return
	}
	col := make([]uint64, m)
	addrs := make([]int64, d.WarpSize)
	for base := 0; base < m; base += d.WarpSize {
		for l := 0; l < d.WarpSize; l++ {
			if base+l < m {
				addrs[l] = int64((base+l)*n+j) * 8
			} else {
				addrs[l] = -1
			}
		}
		d.Mem.ALU(1)
		d.Mem.Load(addrs, 8)
		d.Mem.Store(addrs, 8)
	}
	for i := 0; i < m; i++ {
		col[i] = data[((i+amt)%m)*n+j]
	}
	for i := 0; i < m; i++ {
		data[i*n+j] = col[i]
	}
}

// coarseRotate moves whole sub-rows along the rotation's analytic cycles
// with one spare sub-row in registers (one load + one store per move).
func (d *Device) coarseRotate(data []uint64, m, n, j0, w, k int, buf, spare []uint64) {
	z := gcd(m, k)
	clen := m / z
	for y := 0; y < z; y++ {
		copy(buf[:w], data[y*n+j0:y*n+j0+w])
		d.chargeSubRow(y, n, j0, w, false)
		pos := y
		for s := 1; s < clen; s++ {
			next := pos + k
			if next >= m {
				next -= m
			}
			d.chargeSubRow(next, n, j0, w, false)
			d.chargeSubRow(pos, n, j0, w, true)
			d.Mem.ALU(1)
			copy(spare[:w], data[next*n+j0:next*n+j0+w])
			copy(data[pos*n+j0:pos*n+j0+w], spare[:w])
			pos = next
		}
		d.chargeSubRow(pos, n, j0, w, true)
		copy(data[pos*n+j0:pos*n+j0+w], buf[:w])
	}
}

// chargeSubRow charges one warp access covering the w-element sub-row at
// (i, j0).
func (d *Device) chargeSubRow(i, n, j0, w int, store bool) {
	addrs := make([]int64, d.WarpSize)
	for l := 0; l < d.WarpSize; l++ {
		if l < w {
			addrs[l] = int64(i*n+j0+l) * 8
		} else {
			addrs[l] = -1
		}
	}
	if store {
		d.Mem.Store(addrs, 8)
	} else {
		d.Mem.Load(addrs, 8)
	}
}

// rowShuffleKernel permutes every row by d'_i. Rows that fit on chip are
// read coalesced, shuffled in the register file and written coalesced
// (§4.5); longer rows gather through global memory with the closed-form
// inverse and round-trip through a temporary row.
func (d *Device) rowShuffleKernel(data []uint64, p *cr.Plan) {
	m, n := p.M, p.N
	tmp := make([]uint64, n)
	for i := 0; i < m; i++ {
		row := data[i*n : i*n+n]
		if n <= d.OnChipRowElems {
			d.loadSpan(data, i*n, n, tmp)
			// In-register permutation: conditional moves only.
			d.Mem.ALU((n + d.WarpSize - 1) / d.WarpSize * 2)
			out := make([]uint64, n)
			for j := 0; j < n; j++ {
				out[p.DPrime(i, j)] = tmp[j]
			}
			copy(tmp, out)
			d.storeSpan(data, i*n, n, tmp)
			continue
		}
		// Global gather with d'^{-1} into a temporary row, then copy
		// back (two extra streamed passes over the row).
		i := i
		d.gatherRow(data, n, func(j int) int { return i*n + p.DPrimeInv(i, j) }, tmp)
		d.storeSpan(data, i*n, n, tmp) // write into the temporary (modeled)
		d.loadSpan(data, i*n, n, tmp)  // read the temporary back
		d.storeSpan(data, i*n, n, tmp)
		copy(row, tmp[:n])
	}
}

// rowPermuteKernel applies the shared row permutation q by moving whole
// sub-rows along its cycles (§4.7).
func (d *Device) rowPermuteKernel(data []uint64, p *cr.Plan) {
	m, n := p.M, p.N
	if m <= 1 {
		return
	}
	q := make([]int, m)
	for i := range q {
		q[i] = p.Q(i)
	}
	visited := make([]bool, m)
	bw := d.SubRowElems
	buf := make([]uint64, bw)
	spare := make([]uint64, bw)
	for j0 := 0; j0 < n; j0 += bw {
		j1 := j0 + bw
		if j1 > n {
			j1 = n
		}
		w := j1 - j0
		for i := range visited {
			visited[i] = false
		}
		for start := 0; start < m; start++ {
			if visited[start] || q[start] == start {
				continue
			}
			copy(buf[:w], data[start*n+j0:start*n+j0+w])
			d.chargeSubRow(start, n, j0, w, false)
			pos := start
			for {
				visited[pos] = true
				next := q[pos]
				if next == start {
					break
				}
				d.chargeSubRow(next, n, j0, w, false)
				d.chargeSubRow(pos, n, j0, w, true)
				d.Mem.ALU(1)
				copy(spare[:w], data[next*n+j0:next*n+j0+w])
				copy(data[pos*n+j0:pos*n+j0+w], spare[:w])
				pos = next
			}
			d.chargeSubRow(pos, n, j0, w, true)
			copy(data[pos*n+j0:pos*n+j0+w], buf[:w])
		}
	}
}

// planGroup computes the coarse rotation amount and residuals for a
// column group, mirroring internal/core's candidate-endpoint choice.
func planGroup(m, j0, j1 int, amount func(j int) int, res []int) (k, band int, ok bool) {
	w := j1 - j0
	am := make([]int, w)
	for j := j0; j < j1; j++ {
		r := amount(j) % m
		if r < 0 {
			r += m
		}
		am[j-j0] = r
	}
	for _, cand := range []int{am[0], am[w-1]} {
		k = cand
		band = 0
		ok = true
		for jj := 0; jj < w; jj++ {
			r := am[jj] - k
			if r < 0 {
				r += m
			}
			res[jj] = r
			if r > band {
				band = r
			}
		}
		if band < m && band <= 2*w {
			return k, band, true
		}
		ok = false
	}
	return 0, 0, false
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Throughput returns the modeled bandwidth of everything charged so far
// for a transpose of m×n elements of the given size, by Equation 37's
// definition (2·m·n·s over the modeled time).
func (d *Device) Throughput(m, n, elemBytes int) float64 {
	s := d.Mem.Stats()
	t := s.DRAMTimeNs
	if s.IssueTimeNs > t {
		t = s.IssueTimeNs
	}
	if t == 0 {
		return 0
	}
	return 2 * float64(m) * float64(n) * float64(elemBytes) / t
}
