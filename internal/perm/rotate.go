package perm

import "inplace/internal/mathutil"

// RotGather returns the gather index for rotating a vector of length m up
// by r places: a rotated vector x' satisfies x'[i] = x[(i+r) mod m]
// (the paper's definition of column rotation, above Equation 23).
func RotGather(i, r, m int) int {
	v := i + r
	if v >= m {
		v -= m
	}
	return v
}

// Rotate rotates x up by r places in place using the three-reversal
// identity: afterwards x[i] = x_old[(i+r) mod len(x)]. r may be any
// integer; it is reduced modulo len(x).
func Rotate[T any](x []T, r int) {
	m := len(x)
	if m == 0 {
		return
	}
	r %= m
	if r < 0 {
		r += m
	}
	if r == 0 {
		return
	}
	reverse(x[:r])
	reverse(x[r:])
	reverse(x)
}

func reverse[T any](x []T) {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
}

// RotationCycleCount returns z = gcd(m, r), the number of cycles in the
// permutation that rotates m elements by r places (paper §4.6). Each cycle
// has length m/z.
func RotationCycleCount(m, r int) int {
	r %= m
	if r < 0 {
		r += m
	}
	if r == 0 {
		return m
	}
	return mathutil.GCD(m, r)
}

// RotationCycleElement evaluates the paper's analytic cycle formula
// l_y(x) = (y + x*(m-r)) mod m for cycle y ∈ [0, z) and step x ∈ [0, m/z).
// Following a cycle in increasing x visits exactly the positions whose
// values shift by r, so no cycle descriptors need precomputing.
func RotationCycleElement(y, x, m, r int) int {
	r %= m
	if r < 0 {
		r += m
	}
	return (y + x*(m-r)) % m
}

// RotateCycles rotates x up by r places in place by following the
// analytic rotation cycles with a single element of extra storage per
// cycle. It produces the same result as Rotate but moves each element
// exactly once, which is the access pattern the cache-aware coarse
// rotation uses on cache-line-wide sub-rows.
func RotateCycles[T any](x []T, r int) {
	m := len(x)
	if m == 0 {
		return
	}
	r %= m
	if r < 0 {
		r += m
	}
	if r == 0 {
		return
	}
	z := mathutil.GCD(m, r)
	clen := m / z
	for y := 0; y < z; y++ {
		// Position l_y(x) receives the value from l_y(x+1):
		// dest (y + x(m-r)) gathers from (y + (x+1)(m-r)) = dest - r mod m,
		// i.e. dest receives x_old[dest + r mod m] as required.
		tmp := x[y]
		pos := y
		for s := 1; s < clen; s++ {
			next := pos + r
			if next >= m {
				next -= m
			}
			x[pos] = x[next]
			pos = next
		}
		x[pos] = tmp
	}
}

// checkStridedBounds panics unless the strided geometry — w-element
// chunks at base, base+stride, ..., base+(count-1)*stride — stays within
// a buffer of n elements. The span product is overflow-checked, so the
// index algebra of the strided kernels can never wrap: this is the
// dominating guard the indexoverflow analyzer requires of the package's
// exported kernels.
func checkStridedBounds(n, base, stride, w, count int) {
	if count == 0 || w == 0 {
		return
	}
	if base < 0 || stride < 1 || w < 0 || count < 0 {
		panic("perm: invalid strided geometry")
	}
	span, ok := mathutil.CheckedMul(count-1, stride)
	// base + span + w <= n, rearranged so no intermediate can overflow.
	if !ok || span > n-w-base {
		panic("perm: strided geometry exceeds buffer")
	}
}

// RotateStrided rotates the strided vector x[off], x[off+stride], ...
// (count elements) up by r places in place via analytic cycles. It is the
// column-rotation primitive for row-major arrays, where column j of an
// m×n matrix is the stride-n vector starting at offset j.
//
//xpose:hotpath
func RotateStrided[T any](x []T, off, stride, count, r int) {
	if count == 0 {
		return
	}
	checkStridedBounds(len(x), off, stride, 1, count)
	r %= count
	if r < 0 {
		r += count
	}
	if r == 0 {
		return
	}
	z := mathutil.GCD(count, r)
	clen := count / z
	for y := 0; y < z; y++ {
		tmp := x[off+y*stride]
		pos := y
		for s := 1; s < clen; s++ {
			next := pos + r
			if next >= count {
				next -= count
			}
			x[off+pos*stride] = x[off+next*stride]
			pos = next
		}
		x[off+pos*stride] = tmp
	}
}

// RotateChunks treats x as count contiguous chunks of w elements each and
// rotates the chunk sequence up by r chunks in place via analytic cycles,
// moving whole chunks through a caller-provided spare buffer of at least w
// elements. This is the coarse cache-aware rotation of §4.6: when w spans
// a cache line, every move reads and writes a full line.
func RotateChunks[T any](x []T, w, count, r int, spare []T) {
	if count == 0 || w == 0 {
		return
	}
	wc, ok := mathutil.CheckedMul(w, count)
	if !ok || len(x) < wc {
		panic("perm: RotateChunks buffer too small")
	}
	if len(spare) < w {
		panic("perm: RotateChunks spare buffer too small")
	}
	r %= count
	if r < 0 {
		r += count
	}
	if r == 0 {
		return
	}
	z := mathutil.GCD(count, r)
	clen := count / z
	for y := 0; y < z; y++ {
		copy(spare, x[y*w:y*w+w])
		pos := y
		for s := 1; s < clen; s++ {
			next := pos + r
			if next >= count {
				next -= count
			}
			copy(x[pos*w:pos*w+w], x[next*w:next*w+w])
			pos = next
		}
		copy(x[pos*w:pos*w+w], spare[:w])
	}
}
