package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPerm(rng *rand.Rand, n int) P {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestIdentity(t *testing.T) {
	p := Identity(5)
	if !p.Valid() || !p.IsIdentity() {
		t.Fatalf("Identity(5) = %v", p)
	}
	if !Identity(0).IsIdentity() {
		t.Fatal("Identity(0) must be identity")
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		p    P
		want bool
	}{
		{P{}, true},
		{P{0}, true},
		{P{1, 0, 2}, true},
		{P{1, 1, 2}, false},
		{P{0, 3}, false},
		{P{-1, 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		p := randomPerm(rng, n)
		q := p.Inverse()
		if !p.Compose(q).IsIdentity() || !q.Compose(p).IsIdentity() {
			t.Fatalf("inverse failed for %v", p)
		}
	}
}

func TestInversePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inverse of non-permutation did not panic")
		}
	}()
	P{0, 0}.Inverse()
}

func TestComposeMatchesSequentialGather(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		p := randomPerm(rng, n)
		q := randomPerm(rng, n)
		src := make([]int, n)
		for i := range src {
			src[i] = rng.Int()
		}
		// gather with p, then gather with q
		mid := make([]int, n)
		out1 := make([]int, n)
		Gather(mid, src, p)
		Gather(out1, mid, q)
		// gather with p∘q in one step
		out2 := make([]int, n)
		Gather(out2, src, p.Compose(q))
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Fatalf("compose mismatch at %d", i)
			}
		}
	}
}

func TestGatherScatterInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		p := randomPerm(rng, n)
		src := make([]int, n)
		for i := range src {
			src[i] = i * 7
		}
		g := make([]int, n)
		back := make([]int, n)
		Gather(g, src, p)
		Scatter(back, g, p)
		for i := range src {
			if back[i] != src[i] {
				t.Fatalf("scatter did not invert gather at %d", i)
			}
		}
	}
}

func TestGatherInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		p := randomPerm(rng, n)
		x := make([]int, n)
		want := make([]int, n)
		for i := range x {
			x[i] = rng.Int()
		}
		Gather(want, x, p)
		var visited []bool
		if trial%2 == 0 {
			visited = make([]bool, n)
		}
		GatherInPlace(x, p, visited)
		for i := range x {
			if x[i] != want[i] {
				t.Fatalf("GatherInPlace mismatch n=%d trial=%d", n, trial)
			}
		}
	}
}

func TestGatherInPlaceReusedVisited(t *testing.T) {
	// The visited buffer must be cleared between uses.
	p := P{1, 0, 2}
	x := []int{10, 20, 30}
	visited := []bool{true, true, true} // stale
	GatherInPlace(x, p, visited)
	if x[0] != 20 || x[1] != 10 || x[2] != 30 {
		t.Fatalf("stale visited buffer not cleared: %v", x)
	}
}

func TestCycles(t *testing.T) {
	p := P{1, 2, 0, 3, 5, 4}
	cycles := p.Cycles()
	if len(cycles) != 3 {
		t.Fatalf("cycles = %v", cycles)
	}
	if len(cycles[0]) != 3 || cycles[0][0] != 0 {
		t.Fatalf("first cycle = %v", cycles[0])
	}
	if len(cycles[1]) != 1 || cycles[1][0] != 3 {
		t.Fatalf("second cycle = %v", cycles[1])
	}
	if len(cycles[2]) != 2 || cycles[2][0] != 4 {
		t.Fatalf("third cycle = %v", cycles[2])
	}
}

func TestLeadersBound(t *testing.T) {
	// Non-trivial cycle count is at most n/2 (paper §4.7).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(100)
		p := randomPerm(rng, n)
		leaders, lengths := p.Leaders()
		if len(leaders) != len(lengths) {
			t.Fatal("leaders/lengths length mismatch")
		}
		if len(leaders) > n/2 {
			t.Fatalf("n=%d: %d non-trivial cycles exceeds n/2", n, len(leaders))
		}
		total := 0
		for _, l := range lengths {
			if l < 2 {
				t.Fatalf("leader with trivial length %d", l)
			}
			total += l
		}
		if total > n {
			t.Fatalf("cycle lengths sum %d exceeds n=%d", total, n)
		}
	}
}

func TestCyclesCoverAllElements(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		p := randomPerm(rng, n)
		seen := make([]bool, n)
		for _, c := range p.Cycles() {
			for _, e := range c {
				if seen[e] {
					return false
				}
				seen[e] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
