// Package perm provides the permutation substrate for the decomposed
// transposition: permutation objects with composition, inversion and cycle
// decomposition, gather/scatter application, and slice rotation both by
// reversal and by the paper's analytic rotation cycles (§4.6).
package perm

import "fmt"

// P represents a permutation of [0, len(p)) in one-line notation:
// p[i] is the image of i. Used as a gather map, the permuted sequence is
// out[i] = in[p[i]]; as a scatter map, out[p[i]] = in[i].
type P []int

// Identity returns the identity permutation on n elements.
func Identity(n int) P {
	p := make(P, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// FromFunc builds a permutation of n elements from an index function.
// The result is not validated; call Valid if f is untrusted.
func FromFunc(n int, f func(int) int) P {
	p := make(P, n)
	for i := range p {
		p[i] = f(i)
	}
	return p
}

// Valid reports whether p is a bijection on [0, len(p)).
func (p P) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns the inverse permutation q with q[p[i]] = i.
// It panics if p is not a valid permutation.
func (p P) Inverse() P {
	q := make(P, len(p))
	for i := range q {
		q[i] = -1
	}
	for i, v := range p {
		if v < 0 || v >= len(p) || q[v] != -1 {
			panic("perm: Inverse of a non-permutation")
		}
		q[v] = i
	}
	return q
}

// Compose returns the composition r = p∘q, r[i] = p[q[i]]. Gathering with
// r is equivalent to gathering with p first and then with q, matching the
// composition rule in the paper's §4.2. Both arguments must have the same
// length.
func (p P) Compose(q P) P {
	if len(p) != len(q) {
		panic(fmt.Sprintf("perm: Compose length mismatch %d vs %d", len(p), len(q)))
	}
	r := make(P, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// Equal reports whether two permutations are identical.
func (p P) Equal(q P) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsIdentity reports whether p fixes every element.
func (p P) IsIdentity() bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// Cycles returns the cycle decomposition of p, with each cycle led by its
// smallest element and cycles ordered by leader. Fixed points are included
// as length-1 cycles.
func (p P) Cycles() [][]int {
	visited := make([]bool, len(p))
	var cycles [][]int
	for i := range p {
		if visited[i] {
			continue
		}
		cycle := []int{i}
		visited[i] = true
		for j := p[i]; j != i; j = p[j] {
			visited[j] = true
			cycle = append(cycle, j)
		}
		cycles = append(cycles, cycle)
	}
	return cycles
}

// Leaders returns, for each cycle of length > 1, its smallest element and
// the cycle length. This is the compact cycle descriptor the cache-aware
// row permute stores in its temporary buffer (paper §4.7): at most
// len(p)/2 non-trivial cycles exist, so the descriptors always fit in
// O(len(p)) auxiliary storage.
func (p P) Leaders() (leaders, lengths []int) {
	visited := make([]bool, len(p))
	for i := range p {
		if visited[i] {
			continue
		}
		visited[i] = true
		n := 1
		for j := p[i]; j != i; j = p[j] {
			visited[j] = true
			n++
		}
		if n > 1 {
			leaders = append(leaders, i)
			lengths = append(lengths, n)
		}
	}
	return leaders, lengths
}

// Gather applies p as a gather: dst[i] = src[p[i]]. dst and src must not
// alias and must have the same length as p.
func Gather[T any](dst, src []T, p P) {
	if len(dst) != len(p) || len(src) != len(p) {
		panic("perm: Gather length mismatch")
	}
	for i, v := range p {
		dst[i] = src[v]
	}
}

// Scatter applies p as a scatter: dst[p[i]] = src[i]. dst and src must not
// alias and must have the same length as p.
func Scatter[T any](dst, src []T, p P) {
	if len(dst) != len(p) || len(src) != len(p) {
		panic("perm: Scatter length mismatch")
	}
	for i, v := range p {
		dst[v] = src[i]
	}
}

// GatherInPlace permutes x in place so that afterwards x'[i] = x_old[p[i]],
// following the cycles of p with O(1) extra element storage plus a visited
// bitmap. This is the traditional cycle-following formulation the paper's
// decomposition avoids on the full mn-element permutation but reuses for
// the restricted row permute (§4.7).
func GatherInPlace[T any](x []T, p P, visited []bool) {
	if len(x) != len(p) {
		panic("perm: GatherInPlace length mismatch")
	}
	if visited == nil {
		visited = make([]bool, len(p))
	} else {
		if len(visited) < len(p) {
			panic("perm: visited buffer too small")
		}
		for i := range visited[:len(p)] {
			visited[i] = false
		}
	}
	for start := range p {
		if visited[start] || p[start] == start {
			continue
		}
		// Walk the cycle: position start receives x[p[start]], which
		// in turn receives x[p[p[start]]], and so on.
		tmp := x[start]
		i := start
		for {
			visited[i] = true
			next := p[i]
			if next == start {
				x[i] = tmp
				break
			}
			x[i] = x[next]
			i = next
		}
	}
}
