package perm

import "testing"

func TestFromFunc(t *testing.T) {
	p := FromFunc(5, func(i int) int { return (i + 2) % 5 })
	if !p.Valid() {
		t.Fatal("rotation map must be a permutation")
	}
	for i, v := range p {
		if v != (i+2)%5 {
			t.Fatalf("FromFunc wrong at %d", i)
		}
	}
	if len(FromFunc(0, func(i int) int { return i })) != 0 {
		t.Fatal("FromFunc(0) must be empty")
	}
}

func TestEqual(t *testing.T) {
	a := P{2, 0, 1}
	if !a.Equal(P{2, 0, 1}) {
		t.Fatal("identical permutations must be equal")
	}
	if a.Equal(P{0, 1, 2}) {
		t.Fatal("different permutations must not be equal")
	}
	if a.Equal(P{2, 0}) {
		t.Fatal("different lengths must not be equal")
	}
	if !Identity(4).Equal(Identity(4)) {
		t.Fatal("identities must be equal")
	}
}

func TestRotGather(t *testing.T) {
	// RotGather assumes i in [0,m) and r in [0,m): the sum wraps at most
	// once.
	for m := 1; m <= 10; m++ {
		for r := 0; r < m; r++ {
			for i := 0; i < m; i++ {
				if got, want := RotGather(i, r, m), (i+r)%m; got != want {
					t.Fatalf("RotGather(%d,%d,%d) = %d, want %d", i, r, m, got, want)
				}
			}
		}
	}
}

func TestComposeLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compose length mismatch must panic")
		}
	}()
	P{0, 1}.Compose(P{0})
}

func TestGatherScatterLengthPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"gather-dst":  func() { Gather(make([]int, 2), make([]int, 3), P{0, 1, 2}) },
		"gather-src":  func() { Gather(make([]int, 3), make([]int, 2), P{0, 1, 2}) },
		"scatter-dst": func() { Scatter(make([]int, 2), make([]int, 3), P{0, 1, 2}) },
		"in-place":    func() { GatherInPlace(make([]int, 2), P{0, 1, 2}, nil) },
		"visited":     func() { GatherInPlace(make([]int, 3), P{0, 1, 2}, make([]bool, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRotationCycleCountZeroRotation(t *testing.T) {
	if RotationCycleCount(7, 0) != 7 {
		t.Fatal("zero rotation has m fixed points")
	}
	if RotationCycleCount(7, 14) != 7 {
		t.Fatal("full-multiple rotation has m fixed points")
	}
	if RotationCycleCount(6, -2) != 2 {
		t.Fatal("negative rotation must normalize")
	}
}

func TestRotationCycleElementNegative(t *testing.T) {
	// Negative rotation amounts normalize before the formula applies.
	if got, want := RotationCycleElement(0, 1, 6, -2), (0+1*(6-4))%6; got != want {
		t.Fatalf("RotationCycleElement = %d, want %d", got, want)
	}
}
