package perm

import "inplace/internal/mathutil"

// RotateChunksStrided treats the strided sequence of sub-rows
// x[base+i*stride : base+i*stride+w] for i in [0, count) as a vector of
// chunks and rotates it up by r chunks in place via the analytic rotation
// cycles, moving whole sub-rows through the caller's spare buffer.
//
// This is the coarse phase of the cache-aware column rotation (§4.6): a
// group of w adjacent columns of a row-major m×n array is the chunk
// sequence with base = firstColumn, stride = n, count = m, and rotating it
// by the group's common amount moves cache-line-wide sub-rows instead of
// single strided elements.
//
//xpose:hotpath
func RotateChunksStrided[T any](x []T, base, stride, w, count, r int, spare []T) {
	if count == 0 || w == 0 {
		return
	}
	checkStridedBounds(len(x), base, stride, w, count)
	if len(spare) < w {
		panic("perm: RotateChunksStrided spare buffer too small")
	}
	r %= count
	if r < 0 {
		r += count
	}
	if r == 0 {
		return
	}
	z := mathutil.GCD(count, r)
	clen := count / z
	for y := 0; y < z; y++ {
		src := base + y*stride
		copy(spare, x[src:src+w])
		pos := y
		for s := 1; s < clen; s++ {
			next := pos + r
			if next >= count {
				next -= count
			}
			dst := base + pos*stride
			from := base + next*stride
			copy(x[dst:dst+w], x[from:from+w])
			pos = next
		}
		dst := base + pos*stride
		copy(x[dst:dst+w], spare[:w])
	}
}

// GatherChunksStrided permutes the strided sub-rows of x in place so that
// afterwards chunk i holds the old contents of chunk p[i], following the
// cycles described by the precomputed leaders and lengths (from
// P.Leaders). A single spare chunk buffer of at least w elements is
// needed.
//
// This is the cache-aware row permute of §4.7: all rows are permuted
// identically by q, so one set of cycle descriptors drives whole-sub-row
// moves for every column group.
//
//xpose:hotpath
func GatherChunksStrided[T any](x []T, base, stride, w int, p P, leaders, lengths []int, spare []T) {
	if w == 0 {
		return
	}
	checkStridedBounds(len(x), base, stride, w, len(p))
	if len(spare) < w {
		panic("perm: GatherChunksStrided spare buffer too small")
	}
	for ci, start := range leaders {
		n := lengths[ci]
		src := base + start*stride
		copy(spare, x[src:src+w])
		pos := start
		for s := 1; s < n; s++ {
			next := p[pos]
			dst := base + pos*stride
			from := base + next*stride
			copy(x[dst:dst+w], x[from:from+w])
			pos = next
		}
		dst := base + pos*stride
		copy(x[dst:dst+w], spare[:w])
	}
}
