package perm

import (
	"math/rand"
	"testing"

	"inplace/internal/mathutil"
)

func rotatedReference(x []int, r int) []int {
	m := len(x)
	out := make([]int, m)
	if m == 0 {
		return out
	}
	r %= m
	if r < 0 {
		r += m
	}
	for i := range out {
		out[i] = x[(i+r)%m]
	}
	return out
}

func seq(n int) []int {
	x := make([]int, n)
	for i := range x {
		x[i] = i
	}
	return x
}

func TestRotateMatchesReference(t *testing.T) {
	for m := 0; m <= 20; m++ {
		for r := -2 * m; r <= 2*m+3; r++ {
			x := seq(m)
			want := rotatedReference(x, r)
			Rotate(x, r)
			for i := range x {
				if x[i] != want[i] {
					t.Fatalf("Rotate(m=%d, r=%d) = %v, want %v", m, r, x, want)
				}
			}
		}
	}
}

func TestRotateCyclesMatchesRotate(t *testing.T) {
	for m := 0; m <= 24; m++ {
		for r := 0; r <= m+2; r++ {
			a := seq(m)
			b := seq(m)
			Rotate(a, r)
			RotateCycles(b, r)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("RotateCycles(m=%d, r=%d) = %v, want %v", m, r, b, a)
				}
			}
		}
	}
}

func TestRotationCycleFormula(t *testing.T) {
	// The analytic cycles l_y(x) = (y + x(m-r)) mod m must partition [0,m)
	// and stepping a cycle must advance source positions by +r.
	for m := 1; m <= 30; m++ {
		for r := 1; r < m; r++ {
			z := RotationCycleCount(m, r)
			if z != mathutil.GCD(m, r) {
				t.Fatalf("cycle count m=%d r=%d: got %d", m, r, z)
			}
			clen := m / z
			seen := make([]bool, m)
			for y := 0; y < z; y++ {
				for x := 0; x < clen; x++ {
					e := RotationCycleElement(y, x, m, r)
					if e < 0 || e >= m || seen[e] {
						t.Fatalf("m=%d r=%d: element %d repeated or out of range", m, r, e)
					}
					seen[e] = true
					// successor within the cycle differs by -r ≡ (m-r)
					next := RotationCycleElement(y, (x+1)%clen, m, r)
					if (e+(m-r))%m != next {
						t.Fatalf("m=%d r=%d: cycle step broken at y=%d x=%d", m, r, y, x)
					}
				}
			}
		}
	}
}

func TestRotateStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		count := 1 + rng.Intn(20)
		stride := 1 + rng.Intn(5)
		off := rng.Intn(4)
		r := rng.Intn(3 * count)
		x := seq(off + count*stride + 3)
		orig := append([]int(nil), x...)
		RotateStrided(x, off, stride, count, r)
		// strided positions must be rotated; all others untouched
		for i := 0; i < count; i++ {
			want := orig[off+((i+r)%count)*stride]
			if x[off+i*stride] != want {
				t.Fatalf("strided rotate wrong at %d (count=%d stride=%d off=%d r=%d)", i, count, stride, off, r)
			}
		}
		touched := make(map[int]bool)
		for i := 0; i < count; i++ {
			touched[off+i*stride] = true
		}
		for i := range x {
			if !touched[i] && x[i] != orig[i] {
				t.Fatalf("strided rotate disturbed offset %d", i)
			}
		}
	}
}

func TestRotateChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		w := 1 + rng.Intn(6)
		count := 1 + rng.Intn(16)
		r := rng.Intn(2 * count)
		x := seq(w * count)
		orig := append([]int(nil), x...)
		spare := make([]int, w)
		RotateChunks(x, w, count, r, spare)
		for i := 0; i < count; i++ {
			srcChunk := (i + r) % count
			for k := 0; k < w; k++ {
				if x[i*w+k] != orig[srcChunk*w+k] {
					t.Fatalf("chunk rotate wrong: chunk %d elem %d (w=%d count=%d r=%d)", i, k, w, count, r)
				}
			}
		}
	}
}

func TestRotateChunksStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		w := 1 + rng.Intn(5)
		count := 1 + rng.Intn(14)
		stride := w + rng.Intn(6) // stride >= w so chunks don't overlap
		base := rng.Intn(3)
		r := rng.Intn(2 * count)
		x := seq(base + count*stride + w)
		orig := append([]int(nil), x...)
		spare := make([]int, w)
		RotateChunksStrided(x, base, stride, w, count, r, spare)
		for i := 0; i < count; i++ {
			src := (i + r) % count
			for k := 0; k < w; k++ {
				if x[base+i*stride+k] != orig[base+src*stride+k] {
					t.Fatalf("strided chunk rotate wrong: chunk %d elem %d", i, k)
				}
			}
		}
	}
}

func TestGatherChunksStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		w := 1 + rng.Intn(5)
		count := 1 + rng.Intn(20)
		stride := w + rng.Intn(4)
		base := rng.Intn(3)
		p := randomPerm(rng, count)
		leaders, lengths := p.Leaders()
		x := seq(base + count*stride + w)
		orig := append([]int(nil), x...)
		spare := make([]int, w)
		GatherChunksStrided(x, base, stride, w, p, leaders, lengths, spare)
		for i := 0; i < count; i++ {
			src := p[i]
			for k := 0; k < w; k++ {
				if x[base+i*stride+k] != orig[base+src*stride+k] {
					t.Fatalf("chunk gather wrong: chunk %d elem %d p=%v", i, k, p)
				}
			}
		}
	}
}

func TestRotateEmptyAndSpares(t *testing.T) {
	Rotate([]int{}, 3)
	RotateCycles([]int{}, 3)
	RotateChunks([]int{}, 2, 0, 1, make([]int, 2))
	RotateChunksStrided([]int{}, 0, 1, 0, 0, 1, nil)

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("small spare", func() {
		RotateChunks(seq(6), 3, 2, 1, make([]int, 2))
	})
	mustPanic("small strided spare", func() {
		RotateChunksStrided(seq(6), 0, 3, 3, 2, 1, make([]int, 2))
	})
	mustPanic("small gather spare", func() {
		p := P{1, 0}
		l, n := p.Leaders()
		GatherChunksStrided(seq(6), 0, 3, 3, p, l, n, make([]int, 1))
	})
}

func BenchmarkRotateReversal(b *testing.B) {
	x := seq(1 << 16)
	b.SetBytes(int64(len(x) * 8))
	for i := 0; i < b.N; i++ {
		Rotate(x, 12345)
	}
}

func BenchmarkRotateCycles(b *testing.B) {
	x := seq(1 << 16)
	b.SetBytes(int64(len(x) * 8))
	for i := 0; i < b.N; i++ {
		RotateCycles(x, 12345)
	}
}
