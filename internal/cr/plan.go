// Package cr implements the index algebra of the C2R/R2C decomposition
// (paper Sections 3 and 4): the destination-column bijection d', its
// closed-form inverse, the pre- and post-rotation amounts, and the
// factorization of the column shuffle s' into a column rotation p and a
// row permutation q, together with all published inverses (Equations
// 22–36).
//
// A Plan captures an (m, n) shape once — gcd, cofactors, modular inverses
// and the fixed-point reciprocals used for arithmetic strength reduction
// (§4.4) — and is then shared by every kernel that transposes that shape.
package cr

import (
	"fmt"

	"inplace/internal/mathutil"
)

// Plan holds the shape-dependent constants of the decomposition for an
// m×n array: c = gcd(m, n), a = m/c, b = n/c, the modular multiplicative
// inverses a⁻¹ (mod b) and b⁻¹ (mod a), and strength-reduced dividers for
// every invariant denominator the index maps use.
type Plan struct {
	M, N    int // rows, columns
	Size    int // m*n, proven not to overflow int by NewPlan
	C       int // gcd(m, n)
	A, B    int // m/c, n/c
	AInvB   int // mmi(a, b): a * AInvB ≡ 1 (mod b); 0 when b == 1
	BInvA   int // mmi(b, a): b * BInvA ≡ 1 (mod a); 0 when a == 1
	Coprime bool

	divM, divN, divA, divB, divC mathutil.Divider
}

// NewPlan computes the constants for an m×n array. It panics if either
// dimension is non-positive: a transposition plan is meaningless for
// empty shapes, and the public API validates dimensions before planning.
func NewPlan(m, n int) *Plan {
	if m <= 0 || n <= 0 {
		panic(fmt.Sprintf("cr: invalid shape %dx%d", m, n))
	}
	size, ok := mathutil.CheckedMul(m, n)
	if !ok {
		panic(fmt.Sprintf("cr: shape %dx%d overflows int", m, n))
	}
	c := mathutil.GCD(m, n)
	a, b := m/c, n/c
	aInv, ok := mathutil.ModInverse(a, b)
	if !ok {
		panic("cr: a and b must be coprime") // unreachable: a=m/gcd, b=n/gcd
	}
	bInv, ok := mathutil.ModInverse(b, a)
	if !ok {
		panic("cr: b and a must be coprime") // unreachable
	}
	return &Plan{
		M: m, N: n, Size: size, C: c, A: a, B: b,
		AInvB: aInv, BInvA: bInv,
		Coprime: c == 1,
		divM:    mathutil.NewDivider(m),
		divN:    mathutil.NewDivider(n),
		divA:    mathutil.NewDivider(a),
		divB:    mathutil.NewDivider(b),
		divC:    mathutil.NewDivider(c),
	}
}

// Transposed returns the plan for the transposed shape (n×m).
func (p *Plan) Transposed() *Plan { return NewPlan(p.N, p.M) }

// DivM returns the strength-reduced divider for the row count m, for
// kernels that normalize rotation amounts modulo m without a hardware
// divide (§4.4).
func (p *Plan) DivM() mathutil.Divider { return p.divM }

// DivN returns the strength-reduced divider for the column count n.
func (p *Plan) DivN() mathutil.Divider { return p.divN }

// String summarizes the plan constants.
func (p *Plan) String() string {
	return fmt.Sprintf("Plan(%dx%d c=%d a=%d b=%d)", p.M, p.N, p.C, p.A, p.B)
}

// --- Pre-rotation (Equations 23 and 36) ---

// Rot returns the pre-rotation amount for column j: ⌊j/b⌋.
//
//xpose:hotpath
func (p *Plan) Rot(j int) int { return p.divB.Div(j) }

// RGather is Equation 23: during the C2R pre-rotation, element i of the
// rotated column j gathers from row (i + ⌊j/b⌋) mod m.
//
//xpose:hotpath
func (p *Plan) RGather(i, j int) int {
	v := i + p.divB.Div(j)
	if v >= p.M {
		v -= p.M
	}
	return v
}

// RInvGather is Equation 36: the R2C post-rotation gathers element i of
// column j from row (i - ⌊j/b⌋) mod m.
//
//xpose:hotpath
func (p *Plan) RInvGather(i, j int) int {
	v := i - p.divB.Div(j)
	if v < 0 {
		v += p.M
	}
	return v
}

// --- Row shuffle (Equations 22, 24 and 31) ---

// D is Equation 22: the destination column of element j in row i before
// the conflict-removing pre-rotation, d_i(j) = (i + j*m) mod n. It is
// periodic with period b (Lemma 1) and bijective only when gcd(m,n) = 1.
//
//xpose:hotpath
func (p *Plan) D(i, j int) int { return p.divN.Mod(i + j*p.M) }

// DPrime is Equation 24: the destination column of element j in row i
// after pre-rotation, d'_i(j) = ((i + ⌊j/b⌋) mod m + j*m) mod n. Theorem 3
// proves d'_i is a bijection on [0, n) for every fixed i.
//
//xpose:hotpath
func (p *Plan) DPrime(i, j int) int {
	r := i + p.divB.Div(j)
	if r >= p.M {
		r = p.divM.Mod(r)
	}
	return p.divN.Mod(r + j*p.M)
}

// F is the helper function of §4.2 used by the closed-form inverse of d':
//
//	f(i,j) = j + i(n-1)       if i - (j mod c) + c <= m
//	f(i,j) = j + i(n-1) + m   otherwise.
//
//xpose:hotpath
func (p *Plan) F(i, j int) int {
	v := j + i*(p.N-1)
	if i-p.divC.Mod(j)+p.C > p.M {
		v += p.M
	}
	return v
}

// DPrimeInv is Equation 31, the gather formulation of the row shuffle:
// d'^{-1}_i(j) = (a^{-1} ⌊f(i,j)/c⌋) mod b + (f(i,j) mod c) · b.
//
//xpose:hotpath
func (p *Plan) DPrimeInv(i, j int) int {
	f := p.F(i, j)
	q, r := p.divC.DivMod(f)
	return p.divB.Mod(p.AInvB*q) + r*p.B
}

// --- Column shuffle (Equations 26, 32–35) ---

// SPrime is Equation 26: the source row for element i of column j in the
// C2R column shuffle, s'_j(i) = (j + i*n - ⌊i/a⌋) mod m.
//
//xpose:hotpath
func (p *Plan) SPrime(i, j int) int {
	return p.divM.Mod(j + i*p.N - p.divA.Div(i))
}

// PJ is Equation 32: the column-rotation component of the column shuffle,
// p_j(i) = (i + j) mod m. Gathering with p_j then with q reproduces s'_j.
//
//xpose:hotpath
func (p *Plan) PJ(i, j int) int {
	v := i + j
	if v >= p.M {
		v = p.divM.Mod(v)
	}
	return v
}

// PJInv is Equation 35: the inverse rotation gather, (i - j) mod m.
// j ranges over columns and may exceed m, so the difference can be an
// arbitrarily negative multiple of m.
//
//xpose:hotpath
func (p *Plan) PJInv(i, j int) int {
	v := i - j
	if v >= 0 {
		if v >= p.M {
			v = p.divM.Mod(v)
		}
		return v
	}
	v = p.M - p.divM.Mod(-v)
	if v == p.M {
		v = 0
	}
	return v
}

// Q is Equation 33: the row-permutation component of the column shuffle,
// q(i) = (i*n - ⌊i/a⌋) mod m, applied identically to every column.
//
//xpose:hotpath
func (p *Plan) Q(i int) int {
	return p.divM.Mod(i*p.N - p.divA.Div(i))
}

// QInv is Equation 34: the closed-form inverse row permutation,
// q^{-1}(i) = (⌊(c-1+i)/c⌋ · b^{-1}) mod a + (((c-1)·i) mod c) · a.
//
//xpose:hotpath
func (p *Plan) QInv(i int) int {
	return p.divA.Mod(p.divC.Div(p.C-1+i)*p.BInvA) + p.divC.Mod((p.C-1)*i)*p.A
}
