package cr

import "testing"

// Ablation: arithmetic strength reduction (§4.4). The plan methods use
// fixed-point reciprocals; the Ref functions use hardware division. The
// benchmark loops walk (i, j) with wrapping counters so the harness adds
// no division of its own.

var benchSink int

func walk(b *testing.B, m, n int, f func(i, j int) int) {
	s, i, j := 0, 0, 0
	for k := 0; k < b.N; k++ {
		s += f(i, j)
		j++
		if j == n {
			j = 0
			i++
			if i == m {
				i = 0
			}
		}
	}
	benchSink = s
}

func BenchmarkAblationStrengthReductionDPrimeInv(b *testing.B) {
	p := NewPlan(4999, 7001)
	b.Run("strength-reduced", func(b *testing.B) {
		walk(b, p.M, p.N, p.DPrimeInv)
	})
	b.Run("hardware-div", func(b *testing.B) {
		walk(b, p.M, p.N, func(i, j int) int {
			return RefDPrimeInv(p.M, p.N, p.C, p.A, p.B, p.AInvB, i, j)
		})
	})
}

func BenchmarkAblationStrengthReductionSPrime(b *testing.B) {
	p := NewPlan(4999, 7001)
	b.Run("strength-reduced", func(b *testing.B) {
		walk(b, p.M, p.N, p.SPrime)
	})
	b.Run("hardware-div", func(b *testing.B) {
		walk(b, p.M, p.N, func(i, j int) int {
			return RefSPrime(p.M, p.N, p.C, p.A, p.B, i, j)
		})
	})
}

func BenchmarkPlanConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewPlan(1000+i%100, 2000+i%77)
		benchSink += p.C
	}
}
