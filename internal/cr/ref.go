package cr

// This file provides reference formulations of the index maps using plain
// hardware division and modulus. They serve two purposes: cross-checking
// the strength-reduced methods in tests, and quantifying the benefit of
// the paper's §4.4 arithmetic strength reduction in the ablation
// benchmarks.

// RefRGather is Equation 23 with plain arithmetic.
func RefRGather(m, n, c, a, b, i, j int) int { return (i + j/b) % m }

// RefRInvGather is Equation 36 with plain arithmetic.
func RefRInvGather(m, n, c, a, b, i, j int) int { return ((i-j/b)%m + m) % m }

// RefD is Equation 22 with plain arithmetic.
func RefD(m, n, i, j int) int { return (i + j*m) % n }

// RefDPrime is Equation 24 with plain arithmetic.
func RefDPrime(m, n, c, a, b, i, j int) int { return ((i+j/b)%m + j*m) % n }

// RefF is the §4.2 helper with plain arithmetic.
func RefF(m, n, c, i, j int) int {
	v := j + i*(n-1)
	if i-(j%c)+c > m {
		v += m
	}
	return v
}

// RefDPrimeInv is Equation 31 with plain arithmetic. aInv is mmi(a, b).
func RefDPrimeInv(m, n, c, a, b, aInv, i, j int) int {
	f := RefF(m, n, c, i, j)
	return (aInv*(f/c))%b + (f%c)*b
}

// RefSPrime is Equation 26 with plain arithmetic.
func RefSPrime(m, n, c, a, b, i, j int) int { return (j + i*n - i/a) % m }

// RefPJ is Equation 32 with plain arithmetic.
func RefPJ(m, i, j int) int { return (i + j) % m }

// RefPJInv is Equation 35 with plain arithmetic.
func RefPJInv(m, i, j int) int { return ((i-j)%m + m) % m }

// RefQ is Equation 33 with plain arithmetic.
func RefQ(m, n, a, i int) int { return (i*n - i/a) % m }

// RefQInv is Equation 34 with plain arithmetic. bInv is mmi(b, a).
func RefQInv(m, n, c, a, b, bInv, i int) int {
	return (((c-1+i)/c)*bInv)%a + (((c-1)*i)%c)*a
}
