package cr

import (
	"testing"
	"testing/quick"

	"inplace/internal/mathutil"
)

const exhaustiveDim = 26

func forAllShapes(t *testing.T, f func(t *testing.T, p *Plan)) {
	t.Helper()
	for m := 1; m <= exhaustiveDim; m++ {
		for n := 1; n <= exhaustiveDim; n++ {
			f(t, NewPlan(m, n))
		}
	}
	// A few asymmetric and larger shapes, including prime and
	// highly-composite dimensions.
	for _, sh := range [][2]int{
		{1, 97}, {97, 1}, {64, 48}, {48, 64}, {101, 103}, {100, 100},
		{3, 1024}, {1024, 3}, {120, 84}, {84, 120}, {255, 256}, {256, 255},
	} {
		f(t, NewPlan(sh[0], sh[1]))
	}
}

func TestPlanConstants(t *testing.T) {
	p := NewPlan(4, 8)
	if p.C != 4 || p.A != 1 || p.B != 2 {
		t.Fatalf("plan constants wrong: %v", p)
	}
	if p.AInvB != 1 { // mmi(1, 2) = 1
		t.Fatalf("AInvB = %d, want 1", p.AInvB)
	}
	if p.BInvA != 0 { // mmi(2, 1) = 0 by convention
		t.Fatalf("BInvA = %d, want 0", p.BInvA)
	}
	if p.Coprime {
		t.Fatal("4x8 must not be coprime")
	}
	if !NewPlan(3, 8).Coprime {
		t.Fatal("3x8 must be coprime")
	}
	tr := p.Transposed()
	if tr.M != 8 || tr.N != 4 {
		t.Fatalf("Transposed = %v", tr)
	}
	if p.String() != "Plan(4x8 c=4 a=1 b=2)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestNewPlanPanics(t *testing.T) {
	for _, sh := range [][2]int{{0, 3}, {3, 0}, {-1, 3}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%d,%d) did not panic", sh[0], sh[1])
				}
			}()
			NewPlan(sh[0], sh[1])
		}()
	}
}

func TestModularInverses(t *testing.T) {
	forAllShapes(t, func(t *testing.T, p *Plan) {
		if p.B > 1 && (p.A*p.AInvB)%p.B != 1 {
			t.Fatalf("%v: a*aInv mod b != 1", p)
		}
		if p.A > 1 && (p.B*p.BInvA)%p.A != 1 {
			t.Fatalf("%v: b*bInv mod a != 1", p)
		}
	})
}

// Lemma 1: d_i(j) is periodic with period b.
func TestLemma1Periodicity(t *testing.T) {
	forAllShapes(t, func(t *testing.T, p *Plan) {
		for i := 0; i < p.M; i++ {
			for j := 0; j+p.B < p.N; j++ {
				if p.D(i, j) != p.D(i, j+p.B) {
					t.Fatalf("%v: d_%d not periodic with b at j=%d", p, i, j)
				}
			}
		}
	})
}

// When m and n are coprime, d' degenerates to d (noted after Theorem 3).
func TestCoprimeDPrimeEqualsD(t *testing.T) {
	forAllShapes(t, func(t *testing.T, p *Plan) {
		if !p.Coprime {
			return
		}
		for i := 0; i < p.M; i++ {
			for j := 0; j < p.N; j++ {
				if p.DPrime(i, j) != p.D(i, j) {
					t.Fatalf("%v: coprime d' != d at (%d,%d)", p, i, j)
				}
			}
		}
	})
}

// Theorem 3: d'_i is a bijection on [0, n) for every fixed i.
func TestTheorem3DPrimeBijective(t *testing.T) {
	forAllShapes(t, func(t *testing.T, p *Plan) {
		seen := make([]bool, p.N)
		for i := 0; i < p.M; i++ {
			for k := range seen {
				seen[k] = false
			}
			for j := 0; j < p.N; j++ {
				v := p.DPrime(i, j)
				if v < 0 || v >= p.N || seen[v] {
					t.Fatalf("%v: d'_%d not bijective at j=%d (v=%d)", p, i, j, v)
				}
				seen[v] = true
			}
		}
	})
}

// Equation 31: d'^{-1} is the exact inverse of d'.
func TestDPrimeInverse(t *testing.T) {
	forAllShapes(t, func(t *testing.T, p *Plan) {
		for i := 0; i < p.M; i++ {
			for j := 0; j < p.N; j++ {
				if p.DPrimeInv(i, p.DPrime(i, j)) != j {
					t.Fatalf("%v: d'^{-1}(d'(%d)) != %d for row %d", p, j, j, i)
				}
				if p.DPrime(i, p.DPrimeInv(i, j)) != j {
					t.Fatalf("%v: d'(d'^{-1}(%d)) != %d for row %d", p, j, j, i)
				}
			}
		}
	})
}

// §4.2: the column shuffle factors as s'_j = p_j ∘ q.
func TestColumnShuffleFactorization(t *testing.T) {
	forAllShapes(t, func(t *testing.T, p *Plan) {
		for j := 0; j < p.N; j++ {
			for i := 0; i < p.M; i++ {
				if p.PJ(p.Q(i), j) != p.SPrime(i, j) {
					t.Fatalf("%v: p_j(q(%d)) != s'_%d(%d)", p, i, j, i)
				}
			}
		}
	})
}

// s'_j is a bijection on rows for every fixed column j.
func TestSPrimeBijective(t *testing.T) {
	forAllShapes(t, func(t *testing.T, p *Plan) {
		seen := make([]bool, p.M)
		for j := 0; j < p.N; j++ {
			for k := range seen {
				seen[k] = false
			}
			for i := 0; i < p.M; i++ {
				v := p.SPrime(i, j)
				if v < 0 || v >= p.M || seen[v] {
					t.Fatalf("%v: s'_%d not bijective at i=%d", p, j, i)
				}
				seen[v] = true
			}
		}
	})
}

// Equation 34: q^{-1} is the exact inverse of q.
func TestQInverse(t *testing.T) {
	forAllShapes(t, func(t *testing.T, p *Plan) {
		for i := 0; i < p.M; i++ {
			if p.QInv(p.Q(i)) != i {
				t.Fatalf("%v: q^{-1}(q(%d)) != %d", p, i, i)
			}
			if p.Q(p.QInv(i)) != i {
				t.Fatalf("%v: q(q^{-1}(%d)) != %d", p, i, i)
			}
		}
	})
}

// Equations 35 and 36: the rotation inverses undo the rotations.
func TestRotationInverses(t *testing.T) {
	forAllShapes(t, func(t *testing.T, p *Plan) {
		for j := 0; j < p.N; j++ {
			for i := 0; i < p.M; i++ {
				if p.PJInv(p.PJ(i, j), j) != i {
					t.Fatalf("%v: p^{-1}(p(%d)) != %d col %d", p, i, i, j)
				}
				if p.RInvGather(p.RGather(i, j), j) != i {
					t.Fatalf("%v: r^{-1}(r(%d)) != %d col %d", p, i, i, j)
				}
			}
		}
	})
}

// Rotation amounts are bounded: ⌊j/b⌋ < c <= m, so a single conditional
// correction suffices in RGather.
func TestRotBounds(t *testing.T) {
	forAllShapes(t, func(t *testing.T, p *Plan) {
		for j := 0; j < p.N; j++ {
			r := p.Rot(j)
			if r < 0 || r >= p.C || r >= p.M {
				t.Fatalf("%v: rot(%d) = %d out of range", p, j, r)
			}
		}
	})
}

// The strength-reduced methods must agree with the plain-arithmetic
// reference formulations everywhere.
func TestStrengthReducedMatchesReference(t *testing.T) {
	forAllShapes(t, func(t *testing.T, p *Plan) {
		m, n, c, a, b := p.M, p.N, p.C, p.A, p.B
		for i := 0; i < m; i++ {
			if p.Q(i) != RefQ(m, n, a, i) {
				t.Fatalf("%v: Q(%d) mismatch", p, i)
			}
			if p.QInv(i) != RefQInv(m, n, c, a, b, p.BInvA, i) {
				t.Fatalf("%v: QInv(%d) mismatch", p, i)
			}
			for j := 0; j < n; j++ {
				if p.RGather(i, j) != RefRGather(m, n, c, a, b, i, j) {
					t.Fatalf("%v: RGather(%d,%d) mismatch", p, i, j)
				}
				if p.RInvGather(i, j) != RefRInvGather(m, n, c, a, b, i, j) {
					t.Fatalf("%v: RInvGather(%d,%d) mismatch", p, i, j)
				}
				if p.D(i, j) != RefD(m, n, i, j) {
					t.Fatalf("%v: D(%d,%d) mismatch", p, i, j)
				}
				if p.DPrime(i, j) != RefDPrime(m, n, c, a, b, i, j) {
					t.Fatalf("%v: DPrime(%d,%d) mismatch", p, i, j)
				}
				if p.DPrimeInv(i, j) != RefDPrimeInv(m, n, c, a, b, p.AInvB, i, j) {
					t.Fatalf("%v: DPrimeInv(%d,%d) mismatch", p, i, j)
				}
				if p.SPrime(i, j) != RefSPrime(m, n, c, a, b, i, j) {
					t.Fatalf("%v: SPrime(%d,%d) mismatch", p, i, j)
				}
				if p.PJ(i, j) != RefPJ(m, i, j) {
					t.Fatalf("%v: PJ(%d,%d) mismatch", p, i, j)
				}
				if p.PJInv(i, j) != RefPJInv(m, i, j) {
					t.Fatalf("%v: PJInv(%d,%d) mismatch", p, i, j)
				}
			}
		}
	})
}

// Spot-check d' against the hand-computed 4×8 example used throughout the
// paper's Figure 2 (row i=1 computed in the design notes).
func TestDPrimeFigure2Row(t *testing.T) {
	p := NewPlan(4, 8)
	want := []int{1, 5, 2, 6, 3, 7, 0, 4}
	for j, w := range want {
		if got := p.DPrime(1, j); got != w {
			t.Fatalf("DPrime(1,%d) = %d, want %d", j, got, w)
		}
	}
	wantInv := []int{6, 0, 2, 4, 7, 1, 3, 5}
	for j, w := range wantInv {
		if got := p.DPrimeInv(1, j); got != w {
			t.Fatalf("DPrimeInv(1,%d) = %d, want %d", j, got, w)
		}
	}
}

// Property test over random larger shapes: every published inverse
// relation holds at random sample points.
func TestInversePropertiesRandomShapes(t *testing.T) {
	f := func(mRaw, nRaw uint16, iRaw, jRaw uint32) bool {
		m := int(mRaw%2000) + 1
		n := int(nRaw%2000) + 1
		p := NewPlan(m, n)
		i := int(iRaw) % m
		j := int(jRaw) % n
		if p.DPrimeInv(i, p.DPrime(i, j)) != j {
			return false
		}
		iq := int(iRaw) % m
		if p.QInv(p.Q(iq)) != iq {
			return false
		}
		if p.PJ(p.Q(iq), j) != p.SPrime(iq, j) {
			return false
		}
		if p.PJInv(p.PJ(iq, j), j) != iq {
			return false
		}
		return p.RInvGather(p.RGather(iq, j), j) == iq
	}
	cfg := &quick.Config{MaxCount: 3000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Lemma 2 for small shapes: x -> m*x mod n is injective on [0, b).
func TestLemma2Injective(t *testing.T) {
	for m := 1; m <= 40; m++ {
		for n := 1; n <= 40; n++ {
			b := n / mathutil.GCD(m, n)
			seen := map[int]bool{}
			for x := 0; x < b; x++ {
				v := m * x % n
				if seen[v] {
					t.Fatalf("m=%d n=%d: mx mod n collides on [0,b)", m, n)
				}
				seen[v] = true
			}
		}
	}
}

// Lemma 3 for small shapes: { h*m mod n : h in [0,b) } = { h*c : h in [0,b) }.
func TestLemma3SetEquality(t *testing.T) {
	for m := 1; m <= 40; m++ {
		for n := 1; n <= 40; n++ {
			c := mathutil.GCD(m, n)
			b := n / c
			s := map[int]bool{}
			for h := 0; h < b; h++ {
				s[h*m%n] = true
			}
			for h := 0; h < b; h++ {
				if !s[h*c] {
					t.Fatalf("m=%d n=%d: %d not in S", m, n, h*c)
				}
			}
			if len(s) != b {
				t.Fatalf("m=%d n=%d: |S| = %d, want %d", m, n, len(s), b)
			}
		}
	}
}
