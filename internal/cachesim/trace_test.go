package cachesim

import "testing"

// With a cache larger than the matrix, the Sung trace (like any full
// transposition) incurs exactly one compulsory miss per line.
func TestTraceSungCompulsoryMisses(t *testing.T) {
	m, n, eb := 96, 80, 8
	size := m * n * eb
	c := New(4*size, 64, 8)
	TraceSung(c, m, n, eb, 8) // a = 8 divides 96
	_, misses, _ := c.Stats()
	if want := int64(size / 64); misses != want {
		t.Fatalf("sung compulsory misses = %d, want %d", misses, want)
	}
}

// With no usable tile factor (a = 1) the Sung trace degenerates to
// element-wise cycle following: identical traffic.
func TestTraceSungDegeneratesToCycleFollow(t *testing.T) {
	m, n, eb := 97, 101, 8 // primes
	sung := New(256<<10, 64, 8)
	TraceSung(sung, m, n, eb, 1)
	_, sMiss, _ := sung.Stats()

	cf := New(256<<10, 64, 8)
	TraceCycleFollow(cf, m, n, eb)
	_, cMiss, _ := cf.Stats()

	if sMiss != cMiss {
		t.Fatalf("a=1 sung traffic %d must equal cycle-following %d", sMiss, cMiss)
	}
}

// A usable factor makes the Sung trace far cheaper than element
// cycle-following — the good-shape regime of Figure 6.
func TestTraceSungFactorHelps(t *testing.T) {
	// 7.7 MB matrix against a 1 MB cache: the matrix is far out of
	// cache but one 48×1000 panel is resident, the regime PTTWAC's
	// on-chip first step assumes.
	m, n, eb := 960, 1000, 8
	good := New(1<<20, 64, 8)
	TraceSung(good, m, n, eb, 48)
	_, gMiss, _ := good.Stats()

	bad := New(1<<20, 64, 8)
	TraceSung(bad, m, n, eb, 1)
	_, bMiss, _ := bad.Stats()

	if float64(bMiss) < 1.5*float64(gMiss) {
		t.Fatalf("factored sung (%d) should be much cheaper than degenerate (%d)", gMiss, bMiss)
	}
}

// An invalid factor (not dividing m) falls back to a = 1.
func TestTraceSungInvalidFactor(t *testing.T) {
	m, n, eb := 97, 50, 8
	a := New(64<<10, 64, 8)
	TraceSung(a, m, n, eb, 7) // 7 does not divide 97
	_, aMiss, _ := a.Stats()
	b := New(64<<10, 64, 8)
	TraceSung(b, m, n, eb, 1)
	_, bMiss, _ := b.Stats()
	if aMiss != bMiss {
		t.Fatalf("invalid factor must behave like a=1: %d vs %d", aMiss, bMiss)
	}
}

// Degenerate shapes produce no traffic (transpose is the identity).
func TestTraceDegenerateShapes(t *testing.T) {
	for _, tr := range []func(c *Cache){
		func(c *Cache) { TraceCycleFollow(c, 1, 50, 8) },
		func(c *Cache) { TraceSung(c, 50, 1, 8, 1) },
	} {
		c := New(64<<10, 64, 8)
		tr(c)
		if a, _, _ := c.Stats(); a != 0 {
			t.Fatalf("degenerate trace touched memory (%d accesses)", a)
		}
	}
}
