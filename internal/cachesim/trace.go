package cachesim

import (
	"inplace/internal/cr"
	"inplace/internal/mathutil"
	"inplace/internal/perm"
)

// Address traces of the in-place transposition algorithms, at element
// granularity (elemBytes per element). Each trace drives a Cache with
// exactly the loads and stores the corresponding implementation issues
// to the matrix buffer; per-worker scratch rows (which live in cache by
// construction) are excluded, matching the paper's §4.5 observation.

// TraceCycleFollow replays the traditional cycle-following transposition
// of an m×n array: every element is read at its position and written at
// its destination, in cycle order.
func TraceCycleFollow(c *Cache, m, n, elemBytes int) {
	if m <= 1 || n <= 1 {
		return
	}
	if _, ok := mathutil.CheckedMul(m, n); !ok {
		panic("cachesim: trace shape overflows int")
	}
	mn1 := m*n - 1
	visited := make([]bool, m*n)
	for start := 1; start < mn1; start++ {
		if visited[start] {
			continue
		}
		pos := start
		c.Access(int64(pos) * int64(elemBytes)) // read the displaced value
		for {
			visited[pos] = true
			dst := (pos * m) % mn1
			// swap: read the destination, write it.
			c.Access(int64(dst) * int64(elemBytes))
			c.Access(int64(dst) * int64(elemBytes))
			pos = dst
			if pos == start {
				break
			}
		}
	}
}

// TraceSung replays the Sung-style PTTWAC transposition: per-panel
// element-wise cycle following inside contiguous a×n panels, then
// segment-wise cycle following over the (m/a)×n grid of a-element
// segments, with a chosen by the factor heuristic (threshold 72).
func TraceSung(c *Cache, m, n, elemBytes, a int) {
	if m <= 1 || n <= 1 {
		return
	}
	if _, ok := mathutil.CheckedMul(m, n); !ok {
		panic("cachesim: m*n overflows int")
	}
	eb := int64(elemBytes)
	if a < 1 || m%a != 0 {
		a = 1
	}
	// Step 1: panel transposes (contiguous a*n element regions).
	if a > 1 {
		for pnl := 0; pnl < m/a; pnl++ {
			base := int64(pnl*a*n) * eb
			mn1 := a*n - 1
			visited := make([]bool, a*n)
			for start := 1; start < mn1; start++ {
				if visited[start] {
					continue
				}
				pos := start
				c.Access(base + int64(pos)*eb)
				for {
					visited[pos] = true
					dst := (pos * a) % mn1
					c.Access(base + int64(dst)*eb)
					c.Access(base + int64(dst)*eb)
					pos = dst
					if pos == start {
						break
					}
				}
			}
		}
	}
	// Step 2: segment cycle following over (m/a)×n segments.
	ma := m / a
	if ma == 1 {
		return
	}
	total := ma * n
	mn1 := total - 1
	visited := make([]bool, total)
	segBytes := a * elemBytes
	for start := 1; start < mn1; start++ {
		if visited[start] {
			continue
		}
		pos := start
		c.AccessRange(int64(pos)*int64(segBytes), segBytes)
		for {
			visited[pos] = true
			dst := (pos * ma) % mn1
			c.AccessRange(int64(dst)*int64(segBytes), segBytes)
			c.AccessRange(int64(dst)*int64(segBytes), segBytes)
			pos = dst
			if pos == start {
				break
			}
		}
	}
}

// TraceC2R replays the cache-aware decomposed C2R transposition: the
// coarse/fine column rotations, the streaming row shuffle, and the
// cycle-following whole-sub-row row permute, with sub-rows of blockW
// elements.
func TraceC2R(c *Cache, m, n, elemBytes, blockW int) {
	p := cr.NewPlan(m, n)
	eb := int64(elemBytes)
	addr := func(i, j int) int64 { return (int64(i)*int64(n) + int64(j)) * eb }

	rotate := func(amount func(j int) int) {
		for j0 := 0; j0 < n; j0 += blockW {
			j1 := j0 + blockW
			if j1 > n {
				j1 = n
			}
			w := j1 - j0
			k := amount(j0) % m
			if k < 0 {
				k += m
			}
			// Coarse: move whole sub-rows along the analytic cycles.
			if k != 0 {
				z := perm.RotationCycleCount(m, k)
				clen := m / z
				for y := 0; y < z; y++ {
					pos := y
					for s := 0; s < clen; s++ {
						c.AccessRange(addr(pos, j0), w*elemBytes) // read
						c.AccessRange(addr(pos, j0), w*elemBytes) // write
						pos += k
						if pos >= m {
							pos -= m
						}
					}
				}
			}
			// Fine: one streaming sweep when any residual is nonzero.
			residual := false
			for j := j0; j < j1; j++ {
				r := amount(j) % m
				if r < 0 {
					r += m
				}
				if r != k {
					residual = true
					break
				}
			}
			if residual {
				for i := 0; i < m; i++ {
					c.AccessRange(addr(i, j0), w*elemBytes) // read band
					c.AccessRange(addr(i, j0), w*elemBytes) // write row
				}
			}
		}
	}

	// Pass 1: pre-rotation (if gcd > 1).
	if !p.Coprime {
		rotate(p.Rot)
	}
	// Pass 2: row shuffle — each row read and rewritten in place.
	for i := 0; i < m; i++ {
		c.AccessRange(addr(i, 0), n*elemBytes)
		c.AccessRange(addr(i, 0), n*elemBytes)
	}
	// Pass 3a: the p_j rotation.
	rotate(func(j int) int { return j })
	// Pass 3b: row permute along the cycles of q, whole sub-rows.
	q := perm.FromFunc(m, p.Q)
	leaders, lengths := q.Leaders()
	for j0 := 0; j0 < n; j0 += blockW {
		j1 := j0 + blockW
		if j1 > n {
			j1 = n
		}
		w := j1 - j0
		for ci, start := range leaders {
			pos := start
			for s := 0; s < lengths[ci]; s++ {
				c.AccessRange(addr(pos, j0), w*elemBytes)
				c.AccessRange(addr(pos, j0), w*elemBytes)
				pos = q[pos]
			}
		}
	}
}
