// Package cachesim provides a small set-associative LRU cache model used
// to compare the memory locality of transposition algorithms
// deterministically. The paper's central practical claim — that
// traditional cycle following is slow because its data-dependent
// traversal defeats the cache, while the decomposition's row/column
// passes stream — is a statement about miss counts, which this model
// measures directly from each algorithm's address trace, independent of
// the benchmark host's memory system.
package cachesim

import "fmt"

// Cache models a set-associative cache with LRU replacement.
type Cache struct {
	lineBytes int
	sets      int
	ways      int
	// tags[set*ways+way]; lru[set*ways+way] holds a per-set clock.
	tags  []int64
	lru   []uint64
	clock uint64

	accesses, misses int64
}

// New builds a cache of the given total size, line size and
// associativity. Sizes must divide evenly.
func New(sizeBytes, lineBytes, ways int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic("cachesim: invalid geometry")
	}
	lines := sizeBytes / lineBytes
	if lines == 0 || lines%ways != 0 {
		panic("cachesim: size, line and ways do not divide")
	}
	sets := lines / ways
	c := &Cache{lineBytes: lineBytes, sets: sets, ways: ways,
		tags: make([]int64, lines), lru: make([]uint64, lines)}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Access touches the byte address and reports whether it hit.
func (c *Cache) Access(addr int64) bool {
	c.accesses++
	line := addr / int64(c.lineBytes)
	set := int(line % int64(c.sets))
	base := set * c.ways
	c.clock++
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.lru[base+w] = c.clock
			return true
		}
	}
	c.misses++
	victim := base
	for w := 1; w < c.ways; w++ {
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = line
	c.lru[victim] = c.clock
	return false
}

// AccessRange touches every line overlapped by [addr, addr+size).
func (c *Cache) AccessRange(addr int64, size int) {
	first := addr / int64(c.lineBytes)
	last := (addr + int64(size) - 1) / int64(c.lineBytes)
	for l := first; l <= last; l++ {
		c.Access(l * int64(c.lineBytes))
	}
}

// Stats reports accesses, misses and the miss ratio.
func (c *Cache) Stats() (accesses, misses int64, ratio float64) {
	r := 0.0
	if c.accesses > 0 {
		r = float64(c.misses) / float64(c.accesses)
	}
	return c.accesses, c.misses, r
}

// String summarizes the cache state.
func (c *Cache) String() string {
	a, m, r := c.Stats()
	return fmt.Sprintf("cache(%dB lines, %d sets, %d ways): %d accesses, %d misses (%.1f%%)",
		c.lineBytes, c.sets, c.ways, a, m, r*100)
}
