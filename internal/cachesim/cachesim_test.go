package cachesim

import "testing"

func TestCacheBasics(t *testing.T) {
	c := New(1024, 64, 2) // 16 lines, 8 sets, 2 ways
	if hit := c.Access(0); hit {
		t.Fatal("cold access must miss")
	}
	if hit := c.Access(8); !hit {
		t.Fatal("same-line access must hit")
	}
	if hit := c.Access(0); !hit {
		t.Fatal("repeat access must hit")
	}
	a, m, r := c.Stats()
	if a != 3 || m != 1 || r <= 0.3 || r >= 0.4 {
		t.Fatalf("stats = %d %d %f", a, m, r)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(128, 64, 2) // 2 lines, 1 set, 2 ways
	c.Access(0)          // line 0
	c.Access(64)         // line 1
	c.Access(0)          // refresh line 0
	c.Access(128)        // evicts line 1 (LRU)
	if !c.Access(0) {
		t.Fatal("line 0 must have survived")
	}
	if c.Access(64) {
		t.Fatal("line 1 must have been evicted")
	}
}

func TestCacheSetMapping(t *testing.T) {
	c := New(256, 64, 1) // 4 direct-mapped lines
	// Addresses 0 and 256 map to the same set and conflict.
	c.Access(0)
	c.Access(256)
	if c.Access(0) {
		t.Fatal("conflicting line must have been evicted")
	}
	// Addresses 0 and 64 map to different sets and coexist.
	c2 := New(256, 64, 1)
	c2.Access(0)
	c2.Access(64)
	if !c2.Access(0) {
		t.Fatal("different sets must not conflict")
	}
}

func TestAccessRange(t *testing.T) {
	c := New(1024, 64, 2)
	c.AccessRange(60, 8) // straddles lines 0 and 1
	a, m, _ := c.Stats()
	if a != 2 || m != 2 {
		t.Fatalf("straddling range: %d accesses %d misses", a, m)
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 64, 1) },
		func() { New(100, 64, 3) },
		func() { New(64, 128, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for invalid geometry")
				}
			}()
			f()
		}()
	}
}

// The traces must touch the whole matrix: a cache as large as the array
// misses exactly once per line for cycle following (compulsory misses
// only).
func TestTraceCompulsoryMisses(t *testing.T) {
	m, n, eb := 96, 80, 8
	size := m * n * eb
	c := New(2*size, 64, 8)
	TraceCycleFollow(c, m, n, eb)
	_, misses, _ := c.Stats()
	lines := int64(size / 64)
	if misses != lines {
		t.Fatalf("cycle-follow compulsory misses = %d, want %d", misses, lines)
	}
}

// The headline locality claim: with a realistically-sized cache much
// smaller than the matrix, the decomposed C2R transposition causes far
// less DRAM line traffic (absolute misses) than cycle following, even
// though it moves every element three times and the cycle follower only
// once. Miss counts are the right metric: every cycle-following miss
// fetches a 64-byte line for one 8-byte element, while the decomposed
// passes consume whole lines.
func TestDecompositionLocalityAdvantage(t *testing.T) {
	m, n, eb := 640, 544, 8 // ~2.8 MB matrix
	cache := func() *Cache { return New(256<<10, 64, 8) }

	cf := cache()
	TraceCycleFollow(cf, m, n, eb)
	_, cfMiss, _ := cf.Stats()

	c2r := cache()
	TraceC2R(c2r, m, n, eb, 8)
	_, c2rMiss, _ := c2r.Stats()

	if c2rMiss == 0 || cfMiss == 0 {
		t.Fatal("traces must generate misses")
	}
	if float64(cfMiss) < 1.5*float64(c2rMiss) {
		t.Fatalf("expected cycle-following to cause much more line traffic: cf=%d c2r=%d", cfMiss, c2rMiss)
	}
}

func TestCacheString(t *testing.T) {
	c := New(1024, 64, 2)
	c.Access(0)
	if c.String() == "" {
		t.Fatal("empty string")
	}
}
