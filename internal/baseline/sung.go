package baseline

import (
	"inplace/internal/mathutil"
	"inplace/internal/parallel"
)

// Sung-style in-place transposition (after I-J. Sung's dissertation and
// the PTTWAC algorithm line). The transposition of a row-major m×n array
// factors through a tiling of the row dimension by a factor a | m:
//
//	(m/a, a, n) --per-panel a×n transpose--> (m/a, n, a)
//	(m/a, n, a) --coarse transpose of a-element segments--> (n, m/a, a)
//
// Step 1 transposes each contiguous a×n panel independently (the
// barrier-synchronized on-chip stage of the original); step 2 transposes
// the coarse (m/a)×n matrix whose elements are contiguous a-element
// segments, by cycle following with one marker bit per segment — the
// O(mn)-bit auxiliary footprint the paper points out. The tile factor a
// comes from the factor heuristic described in the paper's §5.2
// (threshold t = 72); dimensions with no usable factors degrade to a = 1,
// i.e. plain element-wise cycle following, reproducing the published
// behaviour on inconvenient sizes.
//
// Like the original implementation, this baseline targets 32-bit
// elements; Sung32 fixes the element width accordingly.

// SungOpts configures the Sung-style baseline.
type SungOpts struct {
	// Threshold is the tile-size target of the factor heuristic; 0 means
	// 72, the value used in the paper's experiments.
	Threshold int
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
}

func (o SungOpts) threshold() int {
	if o.Threshold > 0 {
		return o.Threshold
	}
	return 72
}

// Sung32 transposes the row-major m×n array of 32-bit elements in place.
func Sung32(data []uint32, m, n int, o SungOpts) {
	mn, ok := mathutil.CheckedMul(m, n)
	if !ok || len(data) != mn {
		panic("baseline: Sung32 length mismatch")
	}
	if m == 1 || n == 1 {
		return
	}
	a := TileDim(m, o.threshold())
	ma := m / a

	// Step 1: transpose each a×n panel in place (contiguous panels,
	// independent, parallel). Marker bits are panel-local.
	if a > 1 {
		parallel.For(ma, o.Workers, func(w, lo, hi int) {
			for p := lo; p < hi; p++ {
				CycleFollowBits(data[p*a*n:(p+1)*a*n], a, n)
			}
		})
	}

	// Step 2: coarse transposition of the (m/a)×n grid of a-element
	// segments: a sequential index-only sweep over the marker bits
	// discovers one leader per cycle (no data is touched), then workers
	// follow disjoint cycles in parallel, moving whole segments. The
	// marker bits are the per-unit O(mn)-bit footprint of the original;
	// the leader list is a bounded extra the GPU original avoids by
	// intra-warp arbitration.
	if ma == 1 {
		return
	}
	total := ma * n
	mn1 := total - 1
	bits := make([]uint64, (total+63)/64)
	var leaders []int
	for s := 1; s < mn1; s++ {
		if bits[s>>6]&(1<<(s&63)) != 0 {
			continue
		}
		length := 0
		p := s
		for {
			bits[p>>6] |= 1 << (p & 63)
			length++
			p = (p * ma) % mn1
			if p == s {
				break
			}
		}
		if length > 1 {
			leaders = append(leaders, s)
		}
	}
	parallel.For(len(leaders), o.Workers, func(w, lo, hi int) {
		buf := make([]uint32, a)
		spare := make([]uint32, a)
		for li := lo; li < hi; li++ {
			s := leaders[li]
			copy(buf, data[s*a:(s+1)*a])
			pos := s
			for {
				dst := (pos * ma) % mn1
				dseg := data[dst*a : (dst+1)*a]
				copy(spare, dseg)
				copy(dseg, buf)
				buf, spare = spare, buf
				pos = dst
				if pos == s {
					break
				}
			}
		}
	})
}
