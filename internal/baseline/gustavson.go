package baseline

import (
	"inplace/internal/mathutil"
	"inplace/internal/parallel"
)

// Gustavson-style parallel cache-efficient in-place transposition
// (after Gustavson, Karlsson & Kågström, ACM TOMS 38(3), 2012).
//
// The pipeline mirrors the published structure: the array is packed into
// a tiled storage format, the tile grid is transposed by cycle following
// with whole contiguous tiles as the unit of movement, each tile is
// transposed internally, and the result is unpacked back to canonical
// row-major. Packing and unpacking overhead is part of the measured time,
// exactly as in the paper's comparison. Auxiliary storage is one row
// panel of height tm plus one tile — O(max(m,n)) for the constant tile
// size — matching the published bound ("arrays that are not conveniently
// tiled must be transformed through a packing and unpacking operation").
//
// Tile dimensions must divide the array dimensions; like the original, a
// factor-based heuristic picks them, and awkward (e.g. prime) dimensions
// degrade towards 1-wide tiles.

// GustavsonOpts configures the tiled baseline.
type GustavsonOpts struct {
	// Target is the tile-dimension target; factors of each dimension are
	// multiplied (smallest first) until they reach or exceed it. 0 means 32.
	Target int
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
}

func (o GustavsonOpts) target() int {
	if o.Target > 0 {
		return o.Target
	}
	return 32
}

// TileDim returns the factor-heuristic tile size for dimension d: prime
// factors are multiplied from the smallest upward for as long as the
// product stays within target. This is the §5.2 heuristic; the paper's
// worked examples (7200 → 32, 1800 → 72, 7223 → 31, 10368 → 64 at
// t = 72) show the product never exceeds the threshold, so dimensions
// with no small factors — primes in particular — degenerate to 1-wide
// tiles, reproducing the published behaviour on inconvenient sizes.
func TileDim(d, target int) int {
	if d <= 1 {
		return 1
	}
	t := 1
	rem := d
	for f := 2; f*f <= rem; f++ {
		for rem%f == 0 {
			if t*f > target {
				return t
			}
			t *= f
			rem /= f
		}
	}
	if rem > 1 && t*rem <= target {
		t *= rem
	}
	return t
}

// Gustavson transposes the row-major m×n array in place. After the call
// the slice holds the row-major n×m transpose.
func Gustavson[T any](data []T, m, n int, o GustavsonOpts) {
	mn, ok := mathutil.CheckedMul(m, n)
	if !ok || len(data) != mn {
		panic("baseline: Gustavson length mismatch")
	}
	if m == 1 || n == 1 {
		return
	}
	target := o.target()
	tm := TileDim(m, target)
	tn := TileDim(n, target)
	gm, gn := m/tm, n/tn // tile grid dimensions

	// Phase 1 — pack: row-major -> tiled format. Tile (I,J) becomes the
	// tm*tn contiguous elements starting at (I*gn+J)*tm*tn, itself stored
	// row-major. Processed panel by panel (tm rows at a time) through a
	// per-worker panel buffer.
	packPanels(data, n, tm, tn, gm, gn, o.Workers, false)

	// Phase 2 — transpose each tile in place (tile-local, contiguous)
	// and then move tiles along the cycles of the grid transposition.
	tileWords := tm * tn
	parallel.For(gm*gn, o.Workers, func(w, lo, hi int) {
		buf := make([]T, tileWords)
		for t := lo; t < hi; t++ {
			tile := data[t*tileWords : (t+1)*tileWords]
			copy(buf, tile)
			for i := 0; i < tm; i++ {
				for j := 0; j < tn; j++ {
					tile[j*tm+i] = buf[i*tn+j]
				}
			}
		}
	})
	permuteTiles(data, gm, gn, tileWords)

	// Phase 3 — unpack: tiled -> row-major for the transposed n×m array,
	// whose tiles are tn×tm in a gn×gm grid.
	packPanels(data, m, tn, tm, gn, gm, o.Workers, true)
}

// packPanels converts between row-major and tiled formats. With
// unpack=false it packs a (gm*tm)×(gn*tn) row-major array with row
// length rowLen=gn*tn into tile order; with unpack=true it performs the
// inverse. Each panel of tm rows maps onto a contiguous run of gn tiles,
// so panels convert independently through a per-worker buffer.
func packPanels[T any](data []T, rowLen, tm, tn, gm, gn, workers int, unpack bool) {
	panelWords := tm * rowLen
	parallel.For(gm, workers, func(w, plo, phi int) {
		buf := make([]T, panelWords)
		for p := plo; p < phi; p++ {
			panel := data[p*panelWords : (p+1)*panelWords]
			copy(buf, panel)
			if unpack {
				// buf holds gn tiles of tm×tn; write them row-major.
				for J := 0; J < gn; J++ {
					tile := buf[J*tm*tn:]
					for i := 0; i < tm; i++ {
						copy(panel[i*rowLen+J*tn:i*rowLen+J*tn+tn], tile[i*tn:i*tn+tn])
					}
				}
			} else {
				// buf holds tm row-major rows; write them tile by tile.
				for J := 0; J < gn; J++ {
					tile := panel[J*tm*tn:]
					for i := 0; i < tm; i++ {
						copy(tile[i*tn:i*tn+tn], buf[i*rowLen+J*tn:i*rowLen+J*tn+tn])
					}
				}
			}
		}
	})
}

// permuteTiles moves whole tiles along the cycles of the gm×gn grid
// transposition: the tile at grid slot L moves to slot (L*gm) mod
// (gm*gn-1). Marker bits identify unvisited cycles; moves are contiguous
// tileWords-element copies.
func permuteTiles[T any](data []T, gm, gn, tileWords int) {
	if gm <= 1 || gn <= 1 {
		return
	}
	total := gm * gn
	mn1 := total - 1
	bits := make([]uint64, (total+63)/64)
	buf := make([]T, tileWords)
	spare := make([]T, tileWords)
	for start := 1; start < mn1; start++ {
		if bits[start>>6]&(1<<(start&63)) != 0 {
			continue
		}
		copy(buf, data[start*tileWords:(start+1)*tileWords])
		pos := start
		for {
			bits[pos>>6] |= 1 << (pos & 63)
			dst := (pos * gm) % mn1
			dtile := data[dst*tileWords : (dst+1)*tileWords]
			copy(spare, dtile)
			copy(dtile, buf)
			buf, spare = spare, buf
			pos = dst
			if pos == start {
				break
			}
		}
	}
}
