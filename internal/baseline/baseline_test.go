package baseline

import (
	"math/rand"
	"testing"

	"inplace/internal/core"
)

func seqU32(n int) []uint32 {
	x := make([]uint32, n)
	for i := range x {
		x[i] = uint32(i)
	}
	return x
}

func seqInts(n int) []int {
	x := make([]int, n)
	for i := range x {
		x[i] = i
	}
	return x
}

func checkTransposed[T comparable](t *testing.T, name string, got, orig []T, m, n int) {
	t.Helper()
	want := make([]T, len(orig))
	core.OutOfPlace(want, orig, m, n)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s m=%d n=%d: wrong at %d: got %v want %v", name, m, n, i, got[i], want[i])
		}
	}
}

func TestCycleFollowBitsExhaustive(t *testing.T) {
	for m := 1; m <= 20; m++ {
		for n := 1; n <= 20; n++ {
			data := seqInts(m * n)
			orig := append([]int(nil), data...)
			CycleFollowBits(data, m, n)
			checkTransposed(t, "CycleFollowBits", data, orig, m, n)
		}
	}
}

func TestCycleFollowLeaderExhaustive(t *testing.T) {
	for m := 1; m <= 16; m++ {
		for n := 1; n <= 16; n++ {
			data := seqInts(m * n)
			orig := append([]int(nil), data...)
			CycleFollowLeader(data, m, n)
			checkTransposed(t, "CycleFollowLeader", data, orig, m, n)
		}
	}
}

func TestCycleFollowLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		m := 1 + rng.Intn(120)
		n := 1 + rng.Intn(120)
		data := make([]int, m*n)
		for i := range data {
			data[i] = rng.Int()
		}
		orig := append([]int(nil), data...)
		CycleFollowBits(data, m, n)
		checkTransposed(t, "CycleFollowBits", data, orig, m, n)
	}
}

func TestCycleStats(t *testing.T) {
	// 2x2 transpose permutation: swap of positions 1 and 2 — one cycle of
	// length 2.
	c, l := CycleStats(2, 2)
	if c != 1 || l != 2 {
		t.Fatalf("CycleStats(2,2) = %d,%d want 1,2", c, l)
	}
	if c, l = CycleStats(1, 10); c != 0 || l != 0 {
		t.Fatalf("CycleStats(1,10) = %d,%d want 0,0", c, l)
	}
	// Total cycle length must not exceed mn.
	c, l = CycleStats(37, 53)
	if c <= 0 || l <= 1 || l > 37*53 {
		t.Fatalf("CycleStats(37,53) = %d,%d implausible", c, l)
	}
}

func TestTileDim(t *testing.T) {
	cases := []struct{ d, target, want int }{
		{1, 32, 1},
		{7, 32, 7},      // small prime still fits within the target
		{97, 32, 1},     // large prime: degenerates to 1-wide tiles
		{64, 32, 32},    // powers of two: exactly target
		{72, 32, 24},    // 2*2*2*3 = 24; one more factor would exceed 32
		{7200, 72, 32},  // the paper's 7200×1800 example: tile 32×72
		{1800, 72, 72},  // ... and the 72 side
		{10368, 72, 64}, // the paper's 7223×10368 example: tile 31×64
		{7223, 72, 31},  // ... and the 31 side (7223 = 31·233)
		{100, 32, 20},
		{6, 32, 6},
	}
	for _, c := range cases {
		if got := TileDim(c.d, c.target); got != c.want {
			t.Errorf("TileDim(%d,%d) = %d, want %d", c.d, c.target, got, c.want)
		}
	}
	// Invariant: the result always divides d.
	for d := 1; d <= 500; d++ {
		for _, target := range []int{8, 32, 72} {
			td := TileDim(d, target)
			if td < 1 || d%td != 0 {
				t.Fatalf("TileDim(%d,%d) = %d does not divide", d, target, td)
			}
		}
	}
}

func TestGustavsonExhaustive(t *testing.T) {
	for m := 1; m <= 20; m++ {
		for n := 1; n <= 20; n++ {
			data := seqInts(m * n)
			orig := append([]int(nil), data...)
			Gustavson(data, m, n, GustavsonOpts{Target: 4, Workers: 3})
			checkTransposed(t, "Gustavson", data, orig, m, n)
		}
	}
}

func TestGustavsonLargerShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	shapes := [][2]int{{64, 48}, {48, 64}, {97, 101}, {100, 60}, {72, 72}, {128, 33}}
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		data := make([]int, m*n)
		for i := range data {
			data[i] = rng.Int()
		}
		orig := append([]int(nil), data...)
		Gustavson(data, m, n, GustavsonOpts{Workers: 4})
		checkTransposed(t, "Gustavson", data, orig, m, n)
	}
}

func TestSung32Exhaustive(t *testing.T) {
	for m := 1; m <= 20; m++ {
		for n := 1; n <= 20; n++ {
			data := seqU32(m * n)
			orig := append([]uint32(nil), data...)
			Sung32(data, m, n, SungOpts{Threshold: 4, Workers: 3})
			checkTransposed(t, "Sung32", data, orig, m, n)
		}
	}
}

func TestSung32LargerShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shapes := [][2]int{{72, 50}, {7200 / 50, 1800 / 10}, {97, 64}, {128, 96}, {81, 27}}
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		data := make([]uint32, m*n)
		for i := range data {
			data[i] = rng.Uint32()
		}
		orig := append([]uint32(nil), data...)
		Sung32(data, m, n, SungOpts{Workers: 5})
		checkTransposed(t, "Sung32", data, orig, m, n)
	}
}

func TestBaselinePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bits":      func() { CycleFollowBits(make([]int, 5), 2, 3) },
		"leader":    func() { CycleFollowLeader(make([]int, 5), 2, 3) },
		"gustavson": func() { Gustavson(make([]int, 5), 2, 3, GustavsonOpts{}) },
		"sung":      func() { Sung32(make([]uint32, 5), 2, 3, SungOpts{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}
