// Package baseline implements the comparators of the paper's evaluation:
//
//   - traditional sequential cycle-following in-place transposition, the
//     stand-in for Intel MKL's mkl_dimatcopy (Figure 3, Table 1);
//   - a Gustavson-style parallel tiled pack/transpose/unpack pipeline
//     (Figure 3, Table 1);
//   - a Sung-style PTTWAC transposition with a factor-based tile-size
//     heuristic and per-unit marker bits (Figure 6, Table 2).
//
// Each baseline is a faithful reimplementation of the published
// algorithm's structure; deviations forced by the substrate are listed in
// DESIGN.md.
package baseline

import "inplace/internal/mathutil"

// transposeDest maps the row-major linear index l of an m×n array to its
// linear index in the row-major n×m transpose: l' = (l*m) mod (mn-1),
// with 0 and mn-1 fixed. This is the classical permutation of Windley
// (1959) and Knuth (AoCP vol. 3) that cycle-following algorithms walk.
func transposeDest(l, m, mn1 int) int {
	return (l * m) % mn1
}

// CycleFollowBits transposes the row-major m×n array in place by
// following the cycles of the transposition permutation, marking visited
// elements in a bit vector. Work is O(mn) but auxiliary storage is
// O(mn) bits — the storage regime the decomposition avoids — and the
// traversal order is data-dependent and cache-hostile, which is what
// makes traditional cycle following slow in practice. Sequential, like
// mkl_dimatcopy.
func CycleFollowBits[T any](data []T, m, n int) {
	mn, ok := mathutil.CheckedMul(m, n)
	if !ok || len(data) != mn {
		panic("baseline: CycleFollowBits length mismatch")
	}
	if m <= 1 || n <= 1 || m*n <= 3 {
		return // 1×k and k×1 transposes are the identity on linear data
	}
	mn1 := m*n - 1
	bits := make([]uint64, (m*n+63)/64)
	for start := 1; start < mn1; start++ {
		if bits[start>>6]&(1<<(start&63)) != 0 {
			continue
		}
		// Walk the cycle scattering values toward their destinations.
		val := data[start]
		pos := start
		for {
			bits[pos>>6] |= 1 << (pos & 63)
			dst := transposeDest(pos, m, mn1)
			data[dst], val = val, data[dst]
			pos = dst
			if pos == start {
				break
			}
		}
	}
}

// CycleFollowLeader transposes the row-major m×n array in place with
// O(1) auxiliary storage by following a cycle only from its minimal
// element, re-walking each cycle to test leadership. This is the classic
// constant-space formulation whose work grows to O(mn·L) — the
// O(mn log mn) regime the paper cites for sub-O(mn)-space cycle
// following. Sequential; practical only for modest arrays.
func CycleFollowLeader[T any](data []T, m, n int) {
	mn, ok := mathutil.CheckedMul(m, n)
	if !ok || len(data) != mn {
		panic("baseline: CycleFollowLeader length mismatch")
	}
	if m <= 1 || n <= 1 || m*n <= 3 {
		return
	}
	mn1 := m*n - 1
	for start := 1; start < mn1; start++ {
		// Leadership test: start must be the smallest index on its cycle.
		leader := true
		for p := transposeDest(start, m, mn1); p != start; p = transposeDest(p, m, mn1) {
			if p < start {
				leader = false
				break
			}
		}
		if !leader {
			continue
		}
		val := data[start]
		pos := start
		for {
			dst := transposeDest(pos, m, mn1)
			data[dst], val = val, data[dst]
			pos = dst
			if pos == start {
				break
			}
		}
	}
}

// CycleStats reports the number of cycles and the length of the longest
// cycle of the m×n transposition permutation (fixed points excluded).
// The paper attributes the difficulty of parallelizing traditional
// algorithms to these "poorly distributed cycle lengths".
func CycleStats(m, n int) (cycles, longest int) {
	if _, ok := mathutil.CheckedMul(m, n); !ok {
		panic("baseline: CycleStats shape overflows int")
	}
	if m <= 1 || n <= 1 || m*n <= 3 {
		return 0, 0
	}
	mn1 := m*n - 1
	bits := make([]uint64, (m*n+63)/64)
	for start := 1; start < mn1; start++ {
		if bits[start>>6]&(1<<(start&63)) != 0 {
			continue
		}
		length := 0
		p := start
		for {
			bits[p>>6] |= 1 << (p & 63)
			length++
			p = transposeDest(p, m, mn1)
			if p == start {
				break
			}
		}
		if length > 1 {
			cycles++
			if length > longest {
				longest = length
			}
		}
	}
	return cycles, longest
}
