// Package memsim models the memory subsystem of a SIMD processor at the
// granularity the paper's Figures 8–9 depend on: warp-wide memory
// instructions are coalesced into cache-line transactions, and effective
// bandwidth follows from the ratio of useful to transacted bytes plus an
// instruction-issue term.
//
// The model substitutes for the NVIDIA Tesla K20c used in the paper: the
// relative performance of access strategies (in-register C2R transpose
// vs. direct per-element access vs. fixed-width vector access) is decided
// by coalescing efficiency and instruction count, both of which this
// model counts exactly; only the two calibration constants (peak DRAM
// bandwidth and warp-instruction issue rate) are taken from the K20c's
// published specifications.
package memsim

import "fmt"

// Config holds the calibration constants of the modeled processor.
type Config struct {
	// LineBytes is the coalescing granularity: one transaction moves one
	// aligned line. The K20c coalesces global accesses into 128-byte
	// lines.
	LineBytes int
	// PeakGBps is the peak DRAM bandwidth in 10^9 bytes per second.
	// The K20c's theoretical peak is 208 GB/s.
	PeakGBps float64
	// IssueNs is the chip-normalized time to issue one warp-wide
	// instruction at full occupancy, in nanoseconds. It converts
	// instruction counts into a pipeline-time floor.
	IssueNs float64
	// WriteAllocate charges a fill read for every store transaction that
	// only partially covers its line (read-modify-write), as a
	// write-allocate cache does.
	WriteAllocate bool
}

// K20c returns the calibration used throughout the reproduction: 128-byte
// lines and a sustained DRAM bandwidth of 185 GB/s (the K20c's 208 GB/s
// theoretical peak derated by a typical ~89% sustained factor), with an
// issue interval low enough that fully-coalesced shuffle-based accesses
// stay DRAM-bound at the ~180 GB/s the paper measures.
func K20c() Config {
	return Config{LineBytes: 128, PeakGBps: 185, IssueNs: 0.10, WriteAllocate: true}
}

// Memory accumulates transaction and instruction counts for a stream of
// warp-wide operations.
type Memory struct {
	cfg Config

	loads, stores  int64         // warp-wide memory instructions
	alu            int64         // warp-wide arithmetic/shuffle/select instructions
	txns           int64         // line transactions
	txnBytes       int64         // bytes moved on the DRAM bus
	usefulBytes    int64         // bytes the program actually requested
	lineScratchKey map[int64]int // reused per-access coalescing map
}

// New returns a Memory with the given configuration.
func New(cfg Config) *Memory {
	if cfg.LineBytes <= 0 || cfg.PeakGBps <= 0 {
		panic("memsim: invalid config")
	}
	return &Memory{cfg: cfg, lineScratchKey: make(map[int64]int, 64)}
}

// Config returns the memory's configuration.
func (m *Memory) Config() Config { return m.cfg }

// Reset clears all counters.
func (m *Memory) Reset() {
	m.loads, m.stores, m.alu, m.txns, m.txnBytes, m.usefulBytes = 0, 0, 0, 0, 0, 0
}

// ALU records n warp-wide arithmetic instructions (index computation,
// shuffles, conditional selects).
func (m *Memory) ALU(n int) { m.alu += int64(n) }

// Load records one warp-wide load instruction: each active lane reads
// size bytes at its address. Addresses are byte addresses; inactive lanes
// pass a negative address. The access is coalesced into distinct aligned
// lines.
func (m *Memory) Load(addrs []int64, size int) {
	m.loads++
	m.coalesce(addrs, size, false)
}

// Store records one warp-wide store instruction, coalesced like Load;
// with WriteAllocate, lines not fully covered by the warp's writes incur
// a fill read.
func (m *Memory) Store(addrs []int64, size int) {
	m.stores++
	m.coalesce(addrs, size, true)
}

func (m *Memory) coalesce(addrs []int64, size int, store bool) {
	line := int64(m.cfg.LineBytes)
	covered := m.lineScratchKey
	for k := range covered {
		delete(covered, k)
	}
	for _, a := range addrs {
		if a < 0 {
			continue
		}
		m.usefulBytes += int64(size)
		for first, last := a/line, (a+int64(size)-1)/line; first <= last; first++ {
			covered[first] += size // approximate coverage per line
		}
	}
	for _, cov := range covered {
		m.txns++
		bytes := int64(m.cfg.LineBytes)
		if store && m.cfg.WriteAllocate && cov < m.cfg.LineBytes {
			bytes *= 2 // fill read + write back
		}
		m.txnBytes += bytes
	}
}

// Stats is a snapshot of the accumulated counters plus the derived
// bandwidth model.
type Stats struct {
	Loads, Stores, ALU int64
	Transactions       int64
	TransactedBytes    int64
	UsefulBytes        int64
	DRAMTimeNs         float64
	IssueTimeNs        float64
	EffectiveGBps      float64
	Efficiency         float64 // useful / transacted
}

// Stats derives the bandwidth model from the counters: DRAM time is
// transacted bytes over peak bandwidth, pipeline time is instructions
// times the issue interval, and the effective bandwidth is useful bytes
// over whichever is larger.
func (m *Memory) Stats() Stats {
	s := Stats{
		Loads: m.loads, Stores: m.stores, ALU: m.alu,
		Transactions:    m.txns,
		TransactedBytes: m.txnBytes,
		UsefulBytes:     m.usefulBytes,
	}
	s.DRAMTimeNs = float64(m.txnBytes) / m.cfg.PeakGBps
	s.IssueTimeNs = float64(m.loads+m.stores+m.alu) * m.cfg.IssueNs
	t := s.DRAMTimeNs
	if s.IssueTimeNs > t {
		t = s.IssueTimeNs
	}
	if t > 0 {
		s.EffectiveGBps = float64(m.usefulBytes) / t
	}
	if m.txnBytes > 0 {
		s.Efficiency = float64(m.usefulBytes) / float64(m.txnBytes)
	}
	return s
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf("loads=%d stores=%d alu=%d txns=%d useful=%dB transacted=%dB eff=%.3f bw=%.1fGB/s",
		s.Loads, s.Stores, s.ALU, s.Transactions, s.UsefulBytes, s.TransactedBytes, s.Efficiency, s.EffectiveGBps)
}
