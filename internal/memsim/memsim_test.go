package memsim

import (
	"math"
	"testing"
)

func addrs32(f func(l int) int64) []int64 {
	a := make([]int64, 32)
	for l := range a {
		a[l] = f(l)
	}
	return a
}

func TestFullyCoalescedLoad(t *testing.T) {
	m := New(K20c())
	// 32 lanes × 8 bytes contiguous = 256 bytes = exactly 2 lines.
	m.Load(addrs32(func(l int) int64 { return int64(l) * 8 }), 8)
	s := m.Stats()
	if s.Transactions != 2 {
		t.Fatalf("transactions = %d, want 2", s.Transactions)
	}
	if s.TransactedBytes != 256 || s.UsefulBytes != 256 {
		t.Fatalf("bytes = %d/%d, want 256/256", s.UsefulBytes, s.TransactedBytes)
	}
	if s.Efficiency != 1 {
		t.Fatalf("efficiency = %f, want 1", s.Efficiency)
	}
}

func TestFullyStridedLoad(t *testing.T) {
	m := New(K20c())
	// 32 lanes strided by a full line: one transaction per lane.
	m.Load(addrs32(func(l int) int64 { return int64(l) * 128 }), 8)
	s := m.Stats()
	if s.Transactions != 32 {
		t.Fatalf("transactions = %d, want 32", s.Transactions)
	}
	if s.Efficiency != float64(256)/float64(32*128) {
		t.Fatalf("efficiency = %f", s.Efficiency)
	}
}

func TestStrideWithinLines(t *testing.T) {
	m := New(K20c())
	// Stride 32 bytes: 4 lanes share a line -> 8 transactions.
	m.Load(addrs32(func(l int) int64 { return int64(l) * 32 }), 8)
	if s := m.Stats(); s.Transactions != 8 {
		t.Fatalf("transactions = %d, want 8", s.Transactions)
	}
}

func TestAccessStraddlingLines(t *testing.T) {
	m := New(K20c())
	// A 16-byte access at offset 120 touches two lines.
	m.Load([]int64{120}, 16)
	if s := m.Stats(); s.Transactions != 2 {
		t.Fatalf("transactions = %d, want 2", s.Transactions)
	}
}

func TestInactiveLanes(t *testing.T) {
	m := New(K20c())
	a := addrs32(func(l int) int64 { return int64(l) * 8 })
	for l := 16; l < 32; l++ {
		a[l] = -1
	}
	m.Load(a, 8)
	s := m.Stats()
	if s.UsefulBytes != 128 {
		t.Fatalf("useful = %d, want 128", s.UsefulBytes)
	}
	if s.Transactions != 1 {
		t.Fatalf("transactions = %d, want 1", s.Transactions)
	}
}

func TestWriteAllocatePenalty(t *testing.T) {
	cfg := K20c()
	m := New(cfg)
	// Fully covered line: no penalty.
	m.Store(addrs32(func(l int) int64 { return int64(l) * 8 }), 8)
	s := m.Stats()
	if s.TransactedBytes != 256 {
		t.Fatalf("covered store transacted = %d, want 256", s.TransactedBytes)
	}
	m.Reset()
	// One 8-byte store into a line: fill read doubles the traffic.
	m.Store([]int64{0}, 8)
	s = m.Stats()
	if s.TransactedBytes != 256 {
		t.Fatalf("partial store transacted = %d, want 256 (RMW)", s.TransactedBytes)
	}
	// Without write-allocate the partial store moves one line.
	cfg.WriteAllocate = false
	m2 := New(cfg)
	m2.Store([]int64{0}, 8)
	if s := m2.Stats(); s.TransactedBytes != 128 {
		t.Fatalf("no-writealloc store transacted = %d, want 128", s.TransactedBytes)
	}
}

func TestBandwidthModel(t *testing.T) {
	cfg := Config{LineBytes: 128, PeakGBps: 100, IssueNs: 1}
	m := New(cfg)
	// 10 coalesced loads of 256 useful bytes each: 2560 bytes, 5120...
	for i := 0; i < 10; i++ {
		m.Load(addrs32(func(l int) int64 { return int64(l) * 8 }), 8)
	}
	s := m.Stats()
	// DRAM time = 2560/100 = 25.6 ns; issue time = 10 ns -> DRAM-bound.
	if math.Abs(s.DRAMTimeNs-25.6) > 1e-9 {
		t.Fatalf("dram time = %f", s.DRAMTimeNs)
	}
	if math.Abs(s.EffectiveGBps-100) > 1e-9 {
		t.Fatalf("effective = %f, want 100 (peak)", s.EffectiveGBps)
	}
	// Add ALU pressure until issue-bound.
	m.ALU(100)
	s = m.Stats()
	if s.IssueTimeNs != 110 {
		t.Fatalf("issue time = %f, want 110", s.IssueTimeNs)
	}
	want := 2560.0 / 110.0
	if math.Abs(s.EffectiveGBps-want) > 1e-9 {
		t.Fatalf("effective = %f, want %f", s.EffectiveGBps, want)
	}
}

func TestResetAndCounters(t *testing.T) {
	m := New(K20c())
	m.Load(addrs32(func(l int) int64 { return int64(l) * 8 }), 8)
	m.Store(addrs32(func(l int) int64 { return int64(l) * 8 }), 8)
	m.ALU(7)
	s := m.Stats()
	if s.Loads != 1 || s.Stores != 1 || s.ALU != 7 {
		t.Fatalf("counters = %+v", s)
	}
	m.Reset()
	s = m.Stats()
	if s.Loads != 0 || s.Stores != 0 || s.ALU != 0 || s.Transactions != 0 || s.EffectiveGBps != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid config")
		}
	}()
	New(Config{LineBytes: 0, PeakGBps: 100})
}

func TestStatsString(t *testing.T) {
	m := New(K20c())
	m.Load(addrs32(func(l int) int64 { return int64(l) * 8 }), 8)
	if got := m.Stats().String(); got == "" {
		t.Fatal("empty stats string")
	}
}
