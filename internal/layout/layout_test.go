package layout

import (
	"testing"
	"testing/quick"
)

func TestLinearizationRoundTripRowMajor(t *testing.T) {
	for m := 1; m <= 12; m++ {
		for n := 1; n <= 12; n++ {
			for l := 0; l < m*n; l++ {
				i, j := IRM(l, n), JRM(l, n)
				if i < 0 || i >= m || j < 0 || j >= n {
					t.Fatalf("m=%d n=%d l=%d: (i,j)=(%d,%d) out of range", m, n, l, i, j)
				}
				if got := LRM(i, j, n); got != l {
					t.Fatalf("m=%d n=%d: lrm(irm(%d), jrm(%d)) = %d", m, n, l, l, got)
				}
			}
		}
	}
}

func TestLinearizationRoundTripColMajor(t *testing.T) {
	for m := 1; m <= 12; m++ {
		for n := 1; n <= 12; n++ {
			for l := 0; l < m*n; l++ {
				i, j := ICM(l, m), JCM(l, m)
				if i < 0 || i >= m || j < 0 || j >= n {
					t.Fatalf("m=%d n=%d l=%d: (i,j)=(%d,%d) out of range", m, n, l, i, j)
				}
				if got := LCM(i, j, m); got != l {
					t.Fatalf("m=%d n=%d: lcm(icm(%d), jcm(%d)) = %d", m, n, l, l, got)
				}
			}
		}
	}
}

// Theorem 1's helper identities: iTrm and jTrm are jcm and icm.
func TestTransposedIndexIdentities(t *testing.T) {
	f := func(lRaw, mRaw uint8) bool {
		m := int(mRaw%31) + 1
		l := int(lRaw)
		return ITRM(l, m) == JCM(l, m) && JTRM(l, m) == ICM(l, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The paper's worked example after Equation 14: m=3, n=8, element at
// (2,0) moves to (1,5) under R2C.
func TestPaperWorkedExample(t *testing.T) {
	m, n := 3, 8
	i, j := 2, 0
	if got := S(i, j, m, n); got != 1 {
		t.Errorf("s(2,0) = %d, want 1", got)
	}
	if got := C(i, j, m, n); got != 5 {
		t.Errorf("c(2,0) = %d, want 5", got)
	}
}

// The gather pairs (s,c) and (t,d) are mutually inverse coordinate maps:
// (s,c) decomposes lrm(i,j) by m; (t,d) decomposes lcm(i,j) by n.
func TestGatherFunctionsDecompose(t *testing.T) {
	for m := 1; m <= 10; m++ {
		for n := 1; n <= 10; n++ {
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					if LCM(S(i, j, m, n), C(i, j, m, n), m) != LRM(i, j, n) {
						t.Fatalf("m=%d n=%d (%d,%d): lcm(s,c) != lrm", m, n, i, j)
					}
					if LRM(T(i, j, m, n), D(i, j, m, n), n) != LCM(i, j, m) {
						t.Fatalf("m=%d n=%d (%d,%d): lrm(t,d) != lcm", m, n, i, j)
					}
				}
			}
		}
	}
}

func TestMatrixViewRowMajor(t *testing.T) {
	data := []int{0, 1, 2, 3, 4, 5}
	mt := NewMatrix(data, 2, 3, RowMajor)
	if mt.At(0, 0) != 0 || mt.At(0, 2) != 2 || mt.At(1, 0) != 3 || mt.At(1, 2) != 5 {
		t.Fatalf("row-major At wrong: %v", mt)
	}
	mt.Set(1, 1, 42)
	if data[4] != 42 {
		t.Fatalf("Set did not write through: %v", data)
	}
}

func TestMatrixViewColMajor(t *testing.T) {
	data := []int{0, 1, 2, 3, 4, 5}
	mt := NewMatrix(data, 2, 3, ColMajor)
	if mt.At(0, 0) != 0 || mt.At(1, 0) != 1 || mt.At(0, 1) != 2 || mt.At(1, 2) != 5 {
		t.Fatalf("col-major At wrong: %v", mt)
	}
}

func TestMatrixReinterpret(t *testing.T) {
	data := make([]int, 12)
	for i := range data {
		data[i] = i
	}
	mt := NewMatrix(data, 3, 4, RowMajor)
	rt := mt.Reinterpret(4, 3, RowMajor)
	if rt.At(0, 2) != 2 || rt.At(3, 0) != 9 {
		t.Fatalf("reinterpret view wrong")
	}
}

func TestMatrixPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad shape", func() { NewMatrix([]int{}, 0, 3, RowMajor) })
	mustPanic("bad length", func() { NewMatrix(make([]int, 5), 2, 3, RowMajor) })
	mustPanic("oob index", func() {
		mt := NewMatrix(make([]int, 6), 2, 3, RowMajor)
		mt.At(2, 0)
	})
	mustPanic("negative index", func() {
		mt := NewMatrix(make([]int, 6), 2, 3, RowMajor)
		mt.At(0, -1)
	})
	mustPanic("bad reinterpret", func() {
		mt := NewMatrix(make([]int, 6), 2, 3, RowMajor)
		mt.Reinterpret(2, 4, RowMajor)
	})
}

func TestShape(t *testing.T) {
	s := Shape{Rows: 3, Cols: 8}
	if !s.Valid() || s.Len() != 24 || s.String() != "3x8" {
		t.Fatalf("shape basics wrong: %v", s)
	}
	tr := s.Transposed()
	if tr.Rows != 8 || tr.Cols != 3 {
		t.Fatalf("transposed shape wrong: %v", tr)
	}
	if (Shape{Rows: 0, Cols: 4}).Valid() {
		t.Fatal("zero-row shape must be invalid")
	}
}

func TestOrderString(t *testing.T) {
	if RowMajor.String() != "row-major" || ColMajor.String() != "col-major" {
		t.Fatal("order strings wrong")
	}
	if Order(7).String() != "Order(7)" {
		t.Fatal("unknown order string wrong")
	}
}

func TestMatrixString(t *testing.T) {
	mt := NewMatrix([]int{1, 2, 3, 4}, 2, 2, RowMajor)
	want := "1\t2\n3\t4\n"
	if got := mt.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
