// Package layout provides the linearization algebra of the paper's
// Section 2: conversions between two-dimensional (row, column) indices and
// linear offsets for row-major and column-major storage (Equations 1–6),
// the four transposition gather functions s, c, t, d (Equations 7–10), and
// the swapped-dimension index functions of Theorem 1 (Equations 16–17).
//
// The package also offers a bounds-checked Matrix view used by tests,
// examples and tools; the hot transposition kernels in internal/core do
// their own flat indexing.
package layout

import (
	"fmt"

	"inplace/internal/mathutil"
)

// Order identifies the linearization of a two-dimensional array.
type Order int

const (
	// RowMajor linearizes as l = j + i*n (Equation 1).
	RowMajor Order = iota
	// ColMajor linearizes as l = i + j*m (Equation 4).
	ColMajor
)

// String returns "row-major" or "col-major".
func (o Order) String() string {
	switch o {
	case RowMajor:
		return "row-major"
	case ColMajor:
		return "col-major"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// LRM is Equation 1: the row-major linear index of (i, j) in an array with
// n columns.
func LRM(i, j, n int) int { return j + i*n }

// IRM is Equation 2: the row index of row-major linear offset l with n
// columns.
func IRM(l, n int) int { return l / n }

// JRM is Equation 3: the column index of row-major linear offset l with n
// columns.
func JRM(l, n int) int { return l % n }

// LCM is Equation 4: the column-major linear index of (i, j) in an array
// with m rows.
func LCM(i, j, m int) int { return i + j*m }

// ICM is Equation 5: the row index of column-major linear offset l with m
// rows.
func ICM(l, m int) int { return l % m }

// JCM is Equation 6: the column index of column-major linear offset l with
// m rows.
func JCM(l, m int) int { return l / m }

// ITRM is Equation 16: the row index of offset l in the row-major
// linearization of the transposed (n×m) array, which coincides with JCM.
func ITRM(l, m int) int { return l / m }

// JTRM is Equation 17: the column index of offset l in the row-major
// linearization of the transposed (n×m) array, which coincides with ICM.
func JTRM(l, m int) int { return l % m }

// S is Equation 7: the source row of the C2R gather, s(i,j) = lrm(i,j) mod m.
func S(i, j, m, n int) int { return (j + i*n) % m }

// C is Equation 8: the source column of the C2R gather,
// c(i,j) = floor(lrm(i,j) / m).
func C(i, j, m, n int) int { return (j + i*n) / m }

// T is Equation 9: the source row of the R2C gather,
// t(i,j) = floor(lcm(i,j) / n).
func T(i, j, m, n int) int { return (i + j*m) / n }

// D is Equation 10: the source column of the R2C gather,
// d(i,j) = lcm(i,j) mod n.
func D(i, j, m, n int) int { return (i + j*m) % n }

// Shape describes the logical dimensions of a matrix: Rows × Cols.
type Shape struct {
	Rows, Cols int
}

// Valid reports whether both dimensions are positive.
func (s Shape) Valid() bool { return s.Rows > 0 && s.Cols > 0 }

// Len returns the number of elements, Rows*Cols.
func (s Shape) Len() int {
	n, ok := mathutil.CheckedMul(s.Rows, s.Cols)
	if !ok {
		panic(fmt.Sprintf("layout: shape %v overflows int", s))
	}
	return n
}

// Transposed returns the shape with dimensions swapped.
func (s Shape) Transposed() Shape { return Shape{Rows: s.Cols, Cols: s.Rows} }

// String formats the shape as "RxC".
func (s Shape) String() string { return fmt.Sprintf("%dx%d", s.Rows, s.Cols) }

// Matrix is a bounds-checked two-dimensional view over a flat slice. It is
// a convenience for tests, tools and examples; performance-critical code
// indexes the flat slice directly.
type Matrix[T any] struct {
	Data  []T
	Shape Shape
	Order Order
}

// NewMatrix wraps data as an m×n matrix with the given storage order.
// It panics if len(data) != m*n or either dimension is non-positive.
func NewMatrix[T any](data []T, m, n int, order Order) Matrix[T] {
	sh := Shape{Rows: m, Cols: n}
	if !sh.Valid() {
		panic(fmt.Sprintf("layout: invalid shape %v", sh))
	}
	if len(data) != sh.Len() {
		panic(fmt.Sprintf("layout: data length %d does not match shape %v", len(data), sh))
	}
	return Matrix[T]{Data: data, Shape: sh, Order: order}
}

// Index returns the linear offset of element (i, j).
func (mt Matrix[T]) Index(i, j int) int {
	if i < 0 || i >= mt.Shape.Rows || j < 0 || j >= mt.Shape.Cols {
		panic(fmt.Sprintf("layout: index (%d,%d) out of range for %v", i, j, mt.Shape))
	}
	if mt.Order == RowMajor {
		return LRM(i, j, mt.Shape.Cols)
	}
	return LCM(i, j, mt.Shape.Rows)
}

// At returns element (i, j).
func (mt Matrix[T]) At(i, j int) T { return mt.Data[mt.Index(i, j)] }

// Set stores v at element (i, j).
func (mt Matrix[T]) Set(i, j int, v T) { mt.Data[mt.Index(i, j)] = v }

// Reinterpret returns a view of the same flat data with a new shape and
// order. It panics if the new shape does not cover exactly the same number
// of elements. This is the "reinterpret the data as a two-dimensional
// array with transposed dimensions" step of the paper's Section 2.
func (mt Matrix[T]) Reinterpret(m, n int, order Order) Matrix[T] {
	return NewMatrix(mt.Data, m, n, order)
}

// String renders small matrices for debugging and the figure demos.
func (mt Matrix[T]) String() string {
	out := ""
	for i := 0; i < mt.Shape.Rows; i++ {
		for j := 0; j < mt.Shape.Cols; j++ {
			if j > 0 {
				out += "\t"
			}
			out += fmt.Sprint(mt.At(i, j))
		}
		out += "\n"
	}
	return out
}
