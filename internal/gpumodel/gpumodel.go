// Package gpumodel is an analytic performance model of the paper's GPU
// implementation (§5.2): it predicts the throughput of the C2R and R2C
// transposition kernels on a K20c-class processor from the memory traffic
// and coalescing efficiency of each pass, including the §4.5 on-chip row
// shuffle whose capacity limit produces the characteristic bands of
// Figures 4 and 5.
//
// The model complements the wall-clock measurements: the benchmark host's
// memory system differs from a GPU's, so the measured landscapes are
// shaped by host caches, while the model reproduces the published
// landscape structure — the fast band at small n for C2R and at small m
// for R2C, the float/double gap of Table 2, and the skinny AoS regime of
// Figure 7 — from the pass structure alone. Its constants are calibrated
// once against three published medians (19.5 GB/s double general
// transpose, 14.2 GB/s float, 34.3 GB/s skinny conversion); everything
// else is prediction.
package gpumodel

import "inplace/internal/mathutil"

// Device holds the calibration constants of the modeled processor.
type Device struct {
	// PeakGBps is the sustained DRAM bandwidth.
	PeakGBps float64
	// SectorBytes is the minimum memory transaction: an isolated
	// element access moves a whole sector (32 B on Kepler's L2).
	SectorBytes int
	// StreamEff and FineEff are the bus efficiencies of fully streamed
	// passes and of the fine-rotation banded sweeps.
	StreamEff, FineEff float64
	// SubRowEff is the bus efficiency of coarse sub-row (cache-line
	// chunk) moves during rotations and row permutes.
	SubRowEff float64
	// OnChipRowElems is the row length (in elements) up to which the row
	// shuffle stages a row entirely on chip (§4.5), making both its read
	// and write coalesced. Longer rows gather elements from DRAM at
	// sector granularity. The limit counts elements — it reflects how
	// many values the launched blocks hold in registers — and its value
	// is read off the Figure 4 band edge.
	OnChipRowElems int
	// OnChipTotalBytes is the array size below which even unstructured
	// gathers hit on-chip storage (small matrices).
	OnChipTotalBytes int
}

// K20c returns the calibration used in the reproduction.
func K20c() Device {
	return Device{
		PeakGBps:         185,
		SectorBytes:      32,
		StreamEff:        0.95,
		FineEff:          0.90,
		SubRowEff:        0.80,
		OnChipRowElems:   3000,
		OnChipTotalBytes: 1280 << 10,
	}
}

// time returns the pass time (ns per payload byte scale) for traffic
// tf× the payload at the given bus efficiency.
func (d Device) time(payload, tf, eff float64) float64 {
	return payload * tf / (d.PeakGBps * eff)
}

// gatherEff is the read efficiency of an unstructured per-element gather:
// each element fetch moves a whole sector, and the scattered requests
// additionally halve the achievable rate (transaction replay and TLB
// pressure), so the efficiency is elemBytes / (2 · SectorBytes). This is
// also where the paper's float/double gap originates: 64-bit elements
// waste half as much of each sector.
func (d Device) gatherEff(elemBytes int) float64 {
	e := float64(elemBytes) / float64(2*d.SectorBytes)
	if e > 1 {
		e = 1
	}
	return e
}

// Estimate predicts the throughput (GB/s, Equation 37) of the in-place
// transposition of an m×n array via the selected pipeline (C2R when
// useC2R, else R2C). The R2C pipeline on m×n is the mirrored C2R pipeline
// with the dimensions swapped.
func (d Device) Estimate(m, n, elemBytes int, useC2R bool) float64 {
	if !useC2R {
		m, n = n, m
	}
	payload := float64(m) * float64(n) * float64(elemBytes)
	var total float64

	// Column pre-rotation (only when gcd > 1): coarse sub-row cycle
	// moves plus a fine banded sweep.
	if mathutil.GCD(m, n) > 1 {
		total += d.time(payload, 2, d.SubRowEff)
		total += d.time(payload, 2, d.FineEff)
	}

	// Row shuffle. Rows staged on chip shuffle for free between a
	// coalesced read and a coalesced write; larger rows gather each
	// element from DRAM at sector granularity and round-trip through a
	// temporary row (§4.5) — the cliff behind the Figure 4/5 bands.
	switch {
	case n <= d.OnChipRowElems || payload <= float64(d.OnChipTotalBytes):
		total += d.time(payload, 2, d.StreamEff)
	default:
		total += d.time(payload, 1, d.gatherEff(elemBytes)) // gather read
		total += d.time(payload, 3, d.StreamEff)            // write + tmp round trip
	}

	// Column shuffle: the p rotation (coarse + fine) and the q row
	// permute (whole sub-row cycle moves).
	total += d.time(payload, 2, d.SubRowEff)
	total += d.time(payload, 2, d.FineEff)
	total += d.time(payload, 2, d.SubRowEff)

	return 2 * payload / total
}

// EstimateHeuristic predicts the combined implementation, which selects
// C2R when m > n and R2C otherwise (§5.2).
func (d Device) EstimateHeuristic(m, n, elemBytes int) float64 {
	return d.Estimate(m, n, elemBytes, m > n)
}

// EstimateSkinny predicts the §6.1 AoS↔SoA specialization for count
// structures of `fields` elements each: the direction is chosen so the
// columns are `fields` long and live on chip, leaving one unstructured
// row-shuffle gather over the long rows plus streamed banded passes.
func (d Device) EstimateSkinny(count, fields, elemBytes int) float64 {
	payload := float64(count) * float64(fields) * float64(elemBytes)
	var total float64
	// Fused pre-rotation + column work: streamed banded pass.
	total += d.time(payload, 2, d.StreamEff)
	// Row shuffle over count-long rows. In the skinny direction the d'
	// destinations advance by the constant step m mod n per column, so
	// the walk is strided rather than unstructured: a full sector's
	// worth of each fetch is eventually consumed (eff = elem/sector,
	// twice the unstructured rate).
	if payload <= float64(d.OnChipTotalBytes) {
		total += d.time(payload, 2, d.StreamEff)
	} else {
		eff := float64(elemBytes) / float64(d.SectorBytes)
		if eff > 1 {
			eff = 1
		}
		total += d.time(payload, 1, eff)
		total += d.time(payload, 1, d.StreamEff)
	}
	// Fine rotation: streamed banded sweep.
	total += d.time(payload, 2, d.FineEff)
	// Row permute q: whole structures (fields·elemBytes bytes) move
	// along cycles; small structures waste most of each transaction,
	// which is where Figure 7's spread over structure sizes originates.
	qEff := float64(fields*elemBytes) / float64(2*d.SectorBytes)
	if qEff > 1 {
		qEff = 1
	}
	total += d.time(payload, 2, qEff)
	return 2 * payload / total
}
