package gpumodel

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func TestModelMatchesPublishedMedians(t *testing.T) {
	d := K20c()
	rng := rand.New(rand.NewSource(6))

	// Table 2 medians over the paper's workload (m, n ∈ [1000, 20000)):
	// C2R double 19.53 GB/s, C2R float 14.23 GB/s.
	var double, float []float64
	for s := 0; s < 600; s++ {
		m := 1000 + rng.Intn(19000)
		n := 1000 + rng.Intn(19000)
		double = append(double, d.EstimateHeuristic(m, n, 8))
		float = append(float, d.EstimateHeuristic(m, n, 4))
	}
	md, mf := median(double), median(float)
	if math.Abs(md-19.53) > 6 {
		t.Errorf("modeled double median %.1f, paper 19.53", md)
	}
	if math.Abs(mf-14.23) > 6 {
		t.Errorf("modeled float median %.1f, paper 14.23", mf)
	}
	if mf >= md {
		t.Errorf("float median %.1f must trail double %.1f (paper's §5.2 observation)", mf, md)
	}

	// Figure 7 median over the paper's AoS workload: 34.3 GB/s,
	// maximum 51 GB/s.
	var aos []float64
	for s := 0; s < 600; s++ {
		fields := 2 + rng.Intn(30)
		count := 10_000 + rng.Intn(9_990_000)
		aos = append(aos, d.EstimateSkinny(count, fields, 8))
	}
	ma := median(aos)
	if math.Abs(ma-34.3) > 7 {
		t.Errorf("modeled skinny median %.1f, paper 34.3", ma)
	}
	lo := aos[0]
	for _, v := range aos {
		if v < lo {
			lo = v
		}
	}
	if lo >= ma {
		t.Error("skinny distribution must spread below its median")
	}
	// The fast tail (the paper's 51 GB/s maximum) comes from conversions
	// whose working set is cache resident.
	fast := d.EstimateSkinny(12_000, 12, 8)
	if fast < 40 || fast > 65 {
		t.Errorf("modeled skinny fast regime %.1f, paper max 51", fast)
	}
}

// The Figure 4 band: C2R is markedly faster when a row fits on chip
// (small n), and the band position moves with element size.
func TestLandscapeBandStructure(t *testing.T) {
	d := K20c()
	smallN := d.Estimate(20000, 2000, 8, true)  // rows stage on chip
	largeN := d.Estimate(20000, 20000, 8, true) // rows gather from DRAM
	if smallN < largeN*1.2 {
		t.Fatalf("C2R band missing: small-n %.1f vs large-n %.1f", smallN, largeN)
	}
	// R2C mirrors it: fast when m is small (Figure 5).
	smallM := d.Estimate(2000, 20000, 8, false)
	largeM := d.Estimate(20000, 20000, 8, false)
	if smallM < largeM*1.2 {
		t.Fatalf("R2C band missing: small-m %.1f vs large-m %.1f", smallM, largeM)
	}
	// Floats pay a steeper gather penalty outside the band (§5.2's
	// observation that 64-bit unstructured reads are more efficient).
	floatBulk := d.Estimate(20000, 20000, 4, true)
	doubleBulk := largeN
	if floatBulk >= doubleBulk {
		t.Fatalf("float bulk %.1f must trail double bulk %.1f", floatBulk, doubleBulk)
	}
}

// The heuristic's value (Table 2 context): combining C2R and R2C by shape
// dominates either alone across a sweep.
func TestHeuristicDominates(t *testing.T) {
	d := K20c()
	rng := rand.New(rand.NewSource(7))
	var heur, c2r, r2c []float64
	for s := 0; s < 300; s++ {
		m := 1000 + rng.Intn(19000)
		n := 1000 + rng.Intn(19000)
		heur = append(heur, d.EstimateHeuristic(m, n, 8))
		c2r = append(c2r, d.Estimate(m, n, 8, true))
		r2c = append(r2c, d.Estimate(m, n, 8, false))
	}
	mh, mc, mr := median(heur), median(c2r), median(r2c)
	if mh < mc || mh < mr {
		t.Fatalf("heuristic median %.1f must dominate C2R %.1f and R2C %.1f", mh, mc, mr)
	}
}

// Coprime shapes skip the pre-rotation and run faster.
func TestCoprimeSkipsPreRotation(t *testing.T) {
	d := K20c()
	coprime := d.Estimate(9973, 10007, 8, true) // primes
	composite := d.Estimate(9984, 10000, 8, true)
	if coprime <= composite {
		t.Fatalf("coprime %.1f must beat composite %.1f", coprime, composite)
	}
}

// Skinny conversions of cache-resident arrays hit the fast regime
// (the Figure 7 maximum of 51 GB/s).
func TestSkinnySmallArrayFastRegime(t *testing.T) {
	d := K20c()
	small := d.EstimateSkinny(10_000, 8, 8) // 640 KB
	large := d.EstimateSkinny(5_000_000, 8, 8)
	if small <= large {
		t.Fatalf("cache-resident skinny %.1f must beat DRAM-bound %.1f", small, large)
	}
}
