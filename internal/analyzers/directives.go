package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"inplace/internal/analyzers/lintkit"
)

// hotpathDirective is the annotation that marks a function or statement
// as part of the transpose hot path, opting it into the strict
// hotpathalloc and modreduce checks. See the package documentation for
// the contract.
const hotpathDirective = "//xpose:hotpath"

// hotRegion is one annotated subtree together with the function
// declaration that lexically contains it (for messages).
type hotRegion struct {
	node ast.Node
	fn   *ast.FuncDecl
}

// hotRegions collects every //xpose:hotpath-annotated region in the
// pass: whole functions whose doc comment carries the directive, and
// individual statements directly preceded by a directive comment line.
func hotRegions(pass *lintkit.Pass) []hotRegion {
	var regions []hotRegion
	for _, file := range pass.Files {
		// Lines carrying a standalone directive comment; a statement
		// starting on the next line is an annotated block.
		stmtLines := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == hotpathDirective {
					stmtLines[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if hasDirective(fn.Doc) {
				regions = append(regions, hotRegion{node: fn.Body, fn: fn})
				continue
			}
			// Statement-level regions inside an otherwise cold function.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.ForStmt, *ast.RangeStmt, *ast.BlockStmt:
					line := pass.Fset.Position(n.Pos()).Line
					if stmtLines[line-1] {
						regions = append(regions, hotRegion{node: n, fn: fn})
						return false
					}
				}
				return true
			})
		}
	}
	return regions
}

// hasDirective reports whether a doc comment group contains the
// hotpath directive on a line of its own.
func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// funcName names a function declaration for diagnostics, including the
// receiver type for methods.
func funcName(fn *ast.FuncDecl) string {
	if fn == nil {
		return "block"
	}
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		t := fn.Recv.List[0].Type
		for {
			switch u := t.(type) {
			case *ast.StarExpr:
				t = u.X
				continue
			case *ast.IndexExpr:
				t = u.X
				continue
			case *ast.IndexListExpr:
				t = u.X
				continue
			}
			break
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

// loopVar records one for/range-bound variable and the loop that binds
// it.
type loopVar struct {
	obj  types.Object
	loop ast.Node
}

// loopVarsIn collects every loop-bound variable beneath root: range
// key/value idents and variables defined in a for statement's init.
func loopVarsIn(info *types.Info, root ast.Node) []loopVar {
	var out []loopVar
	bind := func(e ast.Expr, loop ast.Node) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			out = append(out, loopVar{obj: obj, loop: loop})
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if s.Tok == token.DEFINE {
				bind(s.Key, s)
				bind(s.Value, s)
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					bind(lhs, s)
				}
			}
		}
		return true
	})
	return out
}

// capturedLoopVars returns the loop variables from vars that the
// function literal closes over: the literal sits inside the binding
// loop, and its body references the variable.
func capturedLoopVars(info *types.Info, lit *ast.FuncLit, vars []loopVar) []*ast.Ident {
	var hits []*ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		for _, v := range vars {
			if v.obj == obj && within(lit, v.loop) {
				hits = append(hits, id)
				return true
			}
		}
		return true
	})
	return hits
}

// within reports whether node n lies inside the source range of outer.
func within(n, outer ast.Node) bool {
	return outer.Pos() <= n.Pos() && n.End() <= outer.End()
}

// pkgPathOf returns the import path of the package an identifier's
// object belongs to, or "".
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isPkgFunc reports whether the call expression invokes the package
// function pkgPath.name (via its package qualifier).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && pkgPathOf(obj) == pkgPath && obj.Name() == name
}
