package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"inplace/internal/analyzers/lintkit"
)

// LeakCheck reports goroutines and timers with no provable exit path.
// The daemon spawns goroutines per connection, per coalescing group
// and per pipeline stage; one that can never return is a slow memory
// leak that no test catches. Per go statement the analyzer resolves
// the spawned body (function literal, or same-package function through
// the call graph) and demands that every unconditional `for {}` loop
// in it can escape — a return, a break, or a goto; ranging over a
// channel and bounded loops are fine. It also flags
//
//   - sync.WaitGroup.Add inside the spawned goroutine (it races the
//     corresponding Wait; Add must happen before the go statement);
//   - wg.Add(n) with a literal n that disagrees with the number of
//     goroutines calling wg.Done in the same function (both outside
//     loops, so the counts are static);
//   - time.After inside a loop (a new timer per iteration, none
//     collectable until they fire);
//   - time.NewTimer/NewTicker results that are never stopped, stored,
//     returned or passed on;
//   - time.Tick anywhere (its ticker can never be stopped).
var LeakCheck = &lintkit.Analyzer{
	Name: "leakcheck",
	Doc:  "every goroutine needs a provable exit path; timers must be stoppable",
	Run:  runLeakCheck,
}

func runLeakCheck(pass *lintkit.Pass) error {
	cg := pass.CallGraph()
	for _, fn := range sortedDecls(cg) {
		checkLeaks(pass, cg, fn)
	}
	return nil
}

func checkLeaks(pass *lintkit.Pass, cg *lintkit.CallGraph, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	name := funcName(fn)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			body, what := spawnedBody(info, cg, e)
			if body != nil {
				checkGoroutineExit(pass, e, body, what, name)
			}
		case *ast.CallExpr:
			if isPkgFunc(info, e, "time", "After") && inLoop(fn.Body, e) {
				pass.Reportf(e.Pos(), "time.After inside a loop in %s leaks a timer per iteration; hoist a time.NewTimer and Reset it", name)
			}
			if isPkgFunc(info, e, "time", "Tick") {
				pass.Reportf(e.Pos(), "time.Tick in %s leaks its ticker; use time.NewTicker and Stop it", name)
			}
		case *ast.AssignStmt:
			checkUnstoppedTimer(pass, fn, e, name)
		}
		return true
	})

	checkAddDoneBalance(pass, info, fn, name)
}

// spawnedBody resolves what a go statement runs: a function literal's
// body, or the declaration of a same-package function or method.
// Cross-package and computed callees return nil — the analyzer cannot
// see them and does not guess.
func spawnedBody(info *types.Info, cg *lintkit.CallGraph, g *ast.GoStmt) (*ast.BlockStmt, string) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, "goroutine"
	}
	if obj, decl := cg.DeclOf(info, g.Call); decl != nil {
		return decl.Body, "goroutine " + obj.Name()
	}
	return nil, ""
}

// checkGoroutineExit flags unconditional loops in a spawned body that
// no statement can leave, and Add calls racing the spawner's Wait.
func checkGoroutineExit(pass *lintkit.Pass, g *ast.GoStmt, body *ast.BlockStmt, what, where string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch e := n.(type) {
		case *ast.ForStmt:
			if e.Cond == nil && !loopCanEscape(e.Body) {
				pass.Reportf(g.Pos(), "%s started in %s loops forever: the for loop at line %d has no return, break or done-channel exit", what, where, pass.Fset.Position(e.Pos()).Line)
				return false
			}
		case *ast.CallExpr:
			if isWaitGroupMethod(pass.TypesInfo, e, "Add") {
				pass.Reportf(e.Pos(), "WaitGroup.Add inside the goroutine spawned by %s races its Wait; Add before the go statement", where)
			}
		}
		return true
	})
}

// loopCanEscape reports whether an unconditional loop body contains
// anything that can leave the loop: a return, break, or goto
// (conservatively at any nesting depth below the loop, excluding
// nested function literals).
func loopCanEscape(body *ast.BlockStmt) bool {
	escape := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escape {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			escape = true
		case *ast.BranchStmt:
			if e.Tok == token.BREAK || e.Tok == token.GOTO {
				escape = true
			}
		}
		return !escape
	})
	return escape
}

// isWaitGroupMethod matches a method call on a sync.WaitGroup value.
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// wgKey canonicalizes the receiver of a WaitGroup call for matching
// Add against Done.
func wgKey(call *ast.CallExpr) string {
	sel := call.Fun.(*ast.SelectorExpr)
	return types.ExprString(sel.X)
}

// checkAddDoneBalance compares literal wg.Add counts against the
// number of spawned goroutines calling Done on the same WaitGroup.
// Both sides must sit outside loops — a per-iteration Add(1) is the
// other idiom and cannot be counted statically.
func checkAddDoneBalance(pass *lintkit.Pass, info *types.Info, fn *ast.FuncDecl, name string) {
	adds := map[string]int{} // wg → summed literal Add argument
	addPos := map[string]token.Pos{}
	addOk := map[string]bool{} // false once a non-literal or in-loop Add appears
	dones := map[string]int{}  // wg → goroutines whose body calls Done
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isWaitGroupMethod(info, e, "Add") && len(e.Args) == 1 {
				key := wgKey(e)
				if _, tracked := addOk[key]; !tracked {
					addOk[key] = true
				}
				lit, isLit := e.Args[0].(*ast.BasicLit)
				if !isLit || lit.Kind != token.INT || inLoop(fn.Body, e) {
					addOk[key] = false
					return true
				}
				v, err := strconv.Atoi(lit.Value)
				if err != nil {
					addOk[key] = false
					return true
				}
				adds[key] += v
				if !addPos[key].IsValid() {
					addPos[key] = e.Pos()
				}
			}
		case *ast.GoStmt:
			if inLoop(fn.Body, e) {
				// Spawn count is dynamic: give up on every WaitGroup
				// this goroutine touches.
				ast.Inspect(e.Call, func(sub ast.Node) bool {
					if c, ok := sub.(*ast.CallExpr); ok && isWaitGroupMethod(info, c, "Done") {
						addOk[wgKey(c)] = false
					}
					return true
				})
				return false
			}
			ast.Inspect(e.Call, func(sub ast.Node) bool {
				if c, ok := sub.(*ast.CallExpr); ok && isWaitGroupMethod(info, c, "Done") {
					dones[wgKey(c)]++
					return false
				}
				return true
			})
			return false
		}
		return true
	})
	for key, n := range adds {
		if !addOk[key] || dones[key] == 0 {
			continue
		}
		if n != dones[key] {
			pass.Reportf(addPos[key], "%s.Add(%d) in %s but %d goroutine(s) call %s.Done; the Wait can hang or fire early", key, n, name, dones[key], key)
		}
	}
}

// inLoop reports whether node n sits inside a for or range statement
// beneath root (excluding function literals between them).
func inLoop(root ast.Node, n ast.Node) bool {
	found := false
	ast.Inspect(root, func(outer ast.Node) bool {
		if found {
			return false
		}
		switch outer.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if within(n, outer) && outer.Pos() != n.Pos() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkUnstoppedTimer flags `t := time.NewTimer(...)` (and NewTicker)
// where t is a local that is never stopped, returned, stored into a
// field or container, or passed to another call.
func checkUnstoppedTimer(pass *lintkit.Pass, fn *ast.FuncDecl, assign *ast.AssignStmt, name string) {
	info := pass.TypesInfo
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || !(isPkgFunc(info, call, "time", "NewTimer") || isPkgFunc(info, call, "time", "NewTicker")) {
		return
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	kind := "timer"
	if isPkgFunc(info, call, "time", "NewTicker") {
		kind = "ticker"
	}
	if timerEscapes(info, fn.Body, obj) {
		return
	}
	pass.Reportf(assign.Pos(), "%s %s in %s is never stopped; defer %s.Stop() or hand it to an owner that stops it", kind, id.Name, name, id.Name)
}

// timerEscapes reports whether the timer object is stopped, returned,
// assigned onward, or passed to a call anywhere in the function.
func timerEscapes(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Stop" || sel.Sel.Name == "Reset") {
				if id, ok := sel.X.(*ast.Ident); ok && info.Uses[id] == obj {
					escapes = true
					return false
				}
			}
			for _, arg := range e.Args {
				if refersTo(info, arg, obj) {
					escapes = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				if refersTo(info, r, obj) {
					escapes = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, r := range e.Rhs {
				if refersTo(info, r, obj) {
					escapes = true
					return false
				}
			}
		case *ast.SendStmt:
			if refersTo(info, e.Value, obj) {
				escapes = true
				return false
			}
		}
		return true
	})
	return escapes
}

// refersTo reports whether expr mentions obj.
func refersTo(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
