package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"inplace/internal/analyzers/lintkit"
)

// ErrSentinel reports error construction that callers cannot match.
// The public surfaces (root package, client, tune, server) promise
// typed sentinels — errors.Is(err, inplace.ErrOverflow) and friends —
// so a fmt.Errorf without %w on an exported-reachable path silently
// breaks that contract: the text survives but the identity is gone.
// Per package the analyzer computes the functions reachable from any
// exported function or method through the same-package call graph and
// flags, on those paths,
//
//   - fmt.Errorf calls whose format string has no %w verb (the error
//     created is unmatchable; wrap a package sentinel),
//   - errors.New calls inside function bodies (a fresh dynamic
//     sentinel per call; declare it at package level instead).
//
// Independently, any error construction inside an //xpose:hotpath
// region is flagged — error formatting allocates, and the hot-path
// contract keeps construction in cold helpers. Package main is exempt
// (binaries print errors, they do not return them to callers).
var ErrSentinel = &lintkit.Analyzer{
	Name: "errsentinel",
	Doc:  "exported-reachable paths must wrap package sentinels; no error construction in hot regions",
	Run:  runErrSentinel,
}

func runErrSentinel(pass *lintkit.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	info := pass.TypesInfo
	cg := pass.CallGraph()

	var roots []types.Object
	for obj, fn := range cg.Decls {
		if fn.Name.IsExported() {
			roots = append(roots, obj)
		}
	}
	reachable := cg.Reachable(roots)

	for _, fn := range sortedDecls(cg) {
		obj := info.Defs[fn.Name]
		if obj == nil || !reachable[obj] {
			continue
		}
		name := funcName(fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(info, call, "fmt", "Errorf") && len(call.Args) > 0 {
				if format, ok := stringLit(call.Args[0]); ok && !strings.Contains(format, "%w") {
					pass.Reportf(call.Pos(), "fmt.Errorf without %%w on the exported-reachable path %s; wrap a package sentinel so callers can errors.Is", name)
				}
			}
			if isPkgFunc(info, call, "errors", "New") {
				pass.Reportf(call.Pos(), "errors.New inside %s creates an unmatchable error per call; declare a package-level sentinel and wrap it with %%w", name)
			}
			return true
		})
	}

	// Hot regions must not construct errors at all, reachable or not.
	for _, r := range hotRegions(pass) {
		ast.Inspect(r.node, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(info, call, "errors", "New") || isPkgFunc(info, call, "fmt", "Errorf") {
				pass.Reportf(call.Pos(), "error constructed inside //xpose:hotpath region of %s; build errors in a cold helper", funcName(r.fn))
			}
			return true
		})
	}
	return nil
}

// stringLit unquotes a string literal expression, following a single
// level of concatenation.
func stringLit(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.BasicLit:
		if x.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(x.Value)
		if err != nil {
			return "", false
		}
		return s, true
	case *ast.BinaryExpr:
		l, ok1 := stringLit(x.X)
		r, ok2 := stringLit(x.Y)
		if ok1 && ok2 {
			return l + r, true
		}
	case *ast.ParenExpr:
		return stringLit(x.X)
	}
	return "", false
}
