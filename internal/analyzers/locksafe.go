package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"inplace/internal/analyzers/lintkit"
)

// LockSafe reports mutex-discipline violations, the failure class the
// daemon introduced: admission controller, coalescer and spill
// registry all serialize hot-path state behind sync.Mutex/RWMutex, so
// a blocking call made while one is held turns a bounded critical
// section into a convoy (or a deadlock). Per function — including
// every function literal — a control-flow-graph dataflow tracks which
// locks may be held before each statement and flags
//
//   - blocking operations under a lock: channel sends and receives,
//     selects without a default, sync.WaitGroup.Wait/sync.Cond.Wait,
//     time.Sleep, file and network I/O (os/net/io/bufio/net-http
//     calls, and Read/Write/Close-shaped methods on interface values,
//     which are I/O by contract), and calls to same-package functions
//     whose own bodies may block (propagated through the call graph);
//   - re-acquiring a lock the path already holds (self-deadlock);
//   - inconsistent acquisition order: if one function ever holds A
//     while taking B and another holds B while taking A, both sites
//     are reported;
//   - locks still held on some return path with no deferred unlock.
//
// close(ch) and non-blocking selects are exempt; goroutine bodies are
// analyzed as their own functions (spawning under a lock is fine).
var LockSafe = &lintkit.Analyzer{
	Name: "locksafe",
	Doc:  "no blocking calls, lock-order inversions or leaked critical sections while a mutex is held",
	Run:  runLockSafe,
}

// Fact values for the lock lattice: the key is the lock's canonical
// receiver expression (plus ":r" for read locks), present means "may
// be held here".
const lockHeld = 1

// lockSummary is the per-function syntactic summary propagated through
// the same-package call graph.
type lockSummary struct {
	// acquires maps lock class → a position where this function (or a
	// same-package callee) takes that lock.
	acquires map[string]token.Pos
	// mayBlock is set when the function contains a blocking operation
	// anywhere in its body (conservative: callers holding a lock must
	// assume the worst), with a short reason for messages.
	mayBlock string
}

// lockOrderEdge records "class a was held while class b was acquired"
// for the package-wide order check.
type lockOrderEdge struct {
	pos token.Pos
	fn  string
}

func runLockSafe(pass *lintkit.Pass) error {
	cg := pass.CallGraph()

	// Pass 1: syntactic summaries, then propagate through same-package
	// calls to a fixpoint so "calls a helper that blocks" is visible.
	sums := map[types.Object]*lockSummary{}
	for obj, fn := range cg.Decls {
		sums[obj] = scanLockSummary(pass, fn.Body)
	}
	for changed := true; changed; {
		changed = false
		for obj := range sums {
			s := sums[obj]
			for _, callee := range cg.Callees[obj] {
				cs := sums[callee]
				if cs == nil {
					continue
				}
				if s.mayBlock == "" && cs.mayBlock != "" {
					s.mayBlock = "calls " + callee.Name() + ", which may block"
					changed = true
				}
				for class, pos := range cs.acquires {
					if _, ok := s.acquires[class]; !ok {
						s.acquires[class] = pos
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: dataflow every function unit and collect order edges.
	order := map[[2]string][]lockOrderEdge{}
	for _, fn := range sortedDecls(cg) {
		name := funcName(fn)
		checkLockUnit(pass, cg, sums, name, fn.Body, order)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkLockUnit(pass, cg, sums, name+" (func literal)", lit.Body, order)
			}
			return true
		})
	}

	// Order inversions: a pair with edges in both directions. Sorted
	// iteration pins which direction carries the report, so the
	// diagnostic position is deterministic.
	pairs := make([][2]string, 0, len(order))
	for pair := range order {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	reported := map[[2]string]bool{}
	for _, pair := range pairs {
		edges := order[pair]
		rev := [2]string{pair[1], pair[0]}
		back, ok := order[rev]
		if !ok || reported[pair] || reported[rev] {
			continue
		}
		reported[pair] = true
		e, b := edges[0], back[0]
		pass.Reportf(e.pos, "inconsistent lock order: %s held while acquiring %s in %s, but %s acquires them in the opposite order at %s",
			pair[0], pair[1], e.fn, b.fn, pass.Fset.Position(b.pos))
	}
	return nil
}

// sortedDecls returns the package's function declarations in file
// order, so diagnostics are deterministic.
func sortedDecls(cg *lintkit.CallGraph) []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(cg.Decls))
	for _, fn := range cg.Decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// checkLockUnit runs the lock dataflow over one function body.
func checkLockUnit(pass *lintkit.Pass, cg *lintkit.CallGraph, sums map[types.Object]*lockSummary, name string, body *ast.BlockStmt, order map[[2]string][]lockOrderEdge) {
	info := pass.TypesInfo
	cfg := lintkit.NewCFG(body)

	// Comm statements of select clauses: their send/receive is the
	// select's choice, already judged at the SelectStmt node.
	comm := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cc := range sel.Body.List {
				if c := cc.(*ast.CommClause); c.Comm != nil {
					comm[c.Comm] = true
				}
			}
		}
		return true
	})

	// Deferred unlocks release at exit; collect them (including
	// unlocks inside deferred function literals) for the leak check.
	deferred := map[any]bool{}
	for _, d := range cfg.Defers {
		scanSyncOps(d.Call, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, _, acq, ok := lockOpOf(info, call); ok && !acq {
					deferred[key] = true
				}
			}
		})
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			scanSyncOps(lit.Body, func(n ast.Node) {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, _, acq, ok := lockOpOf(info, call); ok && !acq {
						deferred[key] = true
					}
				}
			})
		}
	}

	classOf := map[any]string{}
	lockPos := map[any]token.Pos{}
	transfer := func(n ast.Node, f lintkit.FactMap) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return // runs at exit, not here
		}
		scanSyncOps(n, func(sub ast.Node) {
			call, ok := sub.(*ast.CallExpr)
			if !ok {
				return
			}
			if key, class, acq, ok := lockOpOf(info, call); ok {
				if acq {
					f[key] = lockHeld
					classOf[key] = class
					if _, ok := lockPos[key]; !ok {
						lockPos[key] = call.Pos()
					}
				} else {
					delete(f, key)
				}
			}
		})
	}

	visit := func(n ast.Node, f lintkit.FactMap) {
		if len(f) == 0 {
			return
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			return
		}
		held := heldKeys(f)
		scanSyncOps(n, func(sub ast.Node) {
			switch e := sub.(type) {
			case *ast.SendStmt:
				if !comm[n] {
					pass.Reportf(e.Pos(), "channel send while %s is held in %s; release the lock first", lockName(held[0]), name)
				}
			case *ast.UnaryExpr:
				if e.Op == token.ARROW && !comm[n] {
					pass.Reportf(e.Pos(), "channel receive while %s is held in %s; release the lock first", lockName(held[0]), name)
				}
			case *ast.SelectStmt:
				if !selectHasDefault(e) {
					pass.Reportf(e.Pos(), "blocking select while %s is held in %s; release the lock first", lockName(held[0]), name)
				}
			case *ast.CallExpr:
				if key, class, acq, ok := lockOpOf(info, e); ok {
					if acq {
						if _, already := f[key]; already {
							pass.Reportf(e.Pos(), "%s acquired in %s while a path already holds it (self-deadlock)", lockName(key), name)
						}
						for _, h := range held {
							if hc := classOf[h]; hc != "" && hc != class {
								order[[2]string{hc, class}] = append(order[[2]string{hc, class}], lockOrderEdge{pos: e.Pos(), fn: name})
							}
						}
					}
					return
				}
				if why := blockingCall(info, e); why != "" {
					pass.Reportf(e.Pos(), "%s while %s is held in %s; release the lock first", why, lockName(held[0]), name)
					return
				}
				if obj, decl := cg.DeclOf(info, e); decl != nil {
					s := sums[obj]
					if s == nil {
						return
					}
					if s.mayBlock != "" {
						pass.Reportf(e.Pos(), "call to %s (%s) while %s is held in %s; release the lock first", obj.Name(), s.mayBlock, lockName(held[0]), name)
					}
					for class := range s.acquires {
						for _, h := range held {
							if hc := classOf[h]; hc != "" && hc != class {
								order[[2]string{hc, class}] = append(order[[2]string{hc, class}], lockOrderEdge{pos: e.Pos(), fn: name})
							}
						}
					}
				}
			}
		})
	}

	in := cfg.Forward(lintkit.FactMap{}, transfer, nil)
	cfg.EachNode(in, transfer, visit)

	for _, key := range heldKeys(cfg.ExitFacts(in)) {
		if deferred[key] {
			continue
		}
		pos := lockPos[key]
		if !pos.IsValid() {
			continue
		}
		pass.Reportf(pos, "%s may still be held on a return path of %s; unlock on every path or defer the unlock", lockName(key), name)
	}
}

// heldKeys returns the held lock keys sorted for deterministic
// messages.
func heldKeys(f lintkit.FactMap) []any {
	var out []any
	for k := range f {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].(string) < out[j].(string) })
	return out
}

// lockName renders a lock fact key for messages.
func lockName(key any) string {
	s := key.(string)
	if k, ok := strings.CutSuffix(s, ":r"); ok {
		return k + " (read lock)"
	}
	return s
}

// scanSyncOps walks the subtree of one CFG node visiting everything
// that executes synchronously at that point: function-literal bodies
// are skipped (they run at call time), as are go and defer statements
// (their calls run on another goroutine or at function exit). A select
// statement is visited itself but its clauses are not descended into —
// in the CFG each comm statement and clause body is its own node.
func scanSyncOps(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(sub ast.Node) bool {
		if sub == nil {
			return false
		}
		switch sub.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SelectStmt:
			visit(sub)
			return false
		}
		visit(sub)
		return true
	})
}

// lockOpOf classifies a call as a sync.Mutex/RWMutex lock or unlock.
// key is the canonical receiver expression (":r"-suffixed for read
// locks); class is the receiver's type-level identity used for
// cross-function ordering.
func lockOpOf(info *types.Info, call *ast.CallExpr) (key, class string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false, false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return "", "", false, false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", "", false, false
	}
	key = types.ExprString(sel.X)
	class = lockClass(info, sel.X)
	if name == "RLock" || name == "RUnlock" || name == "TryRLock" {
		key += ":r"
	}
	acquire = name == "Lock" || name == "RLock" || name == "TryLock" || name == "TryRLock"
	return key, class, acquire, true
}

// lockClass names the type-level identity of a lock receiver so the
// order check compares j.mu in one function with j2.mu in another:
// package-level variables keep their name, fields are named by their
// owning type.
func lockClass(info *types.Info, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return "pkg:" + obj.Name()
		}
		return "local:" + x.Name
	case *ast.SelectorExpr:
		base := lockClass(info, x.X)
		if strings.HasPrefix(base, "pkg:") || strings.HasPrefix(base, "type:") {
			return base + "." + x.Sel.Name
		}
		// Name the field by the receiver's type instead of the local
		// variable holding it.
		if t := info.Types[x.X].Type; t != nil {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return "type:" + named.Obj().Name() + "." + x.Sel.Name
			}
		}
		return base + "." + x.Sel.Name
	default:
		return types.ExprString(e)
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if c, ok := cc.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

// ioMethodNames are method names treated as I/O when called on a type
// from an I/O package or on an interface value (interfaces with these
// shapes — io.Reader, net.Conn, net.Listener — are I/O by contract).
var ioMethodNames = map[string]bool{
	"Read": true, "Write": true, "ReadAt": true, "WriteAt": true,
	"ReadFrom": true, "WriteTo": true, "Flush": true, "Close": true,
	"Sync": true, "Seek": true, "Accept": true, "Truncate": true,
	"ReadByte": true, "WriteByte": true, "WriteString": true,
	"ReadString": true, "ReadBytes": true, "Peek": true, "Discard": true,
}

// ioFuncNames are package-level functions treated as I/O when they
// come from an I/O package.
var ioFuncNames = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadDir": true, "Stat": true, "Lstat": true, "Copy": true,
	"CopyN": true, "ReadAll": true, "ReadFull": true, "Listen": true,
	"Dial": true, "DialTimeout": true, "Pipe": true,
}

var ioPkgs = map[string]bool{
	"os": true, "io": true, "io/ioutil": true, "net": true,
	"net/http": true, "bufio": true,
}

// blockingCall classifies a call expression that may block the calling
// goroutine, returning a short description or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	obj := info.Uses[sel.Sel]
	if obj == nil {
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// Method call: classify by receiver.
		recv := sig.Recv().Type()
		if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
			recv = p.Elem()
		}
		// The static receiver may be the interface itself.
		if t := info.Types[sel.X].Type; t != nil {
			if _, isIface := t.Underlying().(*types.Interface); isIface && ioMethodNames[name] {
				return "I/O call " + types.ExprString(call.Fun)
			}
		}
		if named, isNamed := recv.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			pkg := named.Obj().Pkg().Path()
			tname := named.Obj().Name()
			if pkg == "sync" && name == "Wait" {
				return "sync." + tname + ".Wait"
			}
			if ioPkgs[pkg] && ioMethodNames[name] {
				return "I/O call " + types.ExprString(call.Fun)
			}
		}
		return ""
	}
	// Package function call.
	pkg := pkgPathOf(obj)
	if pkg == "time" && name == "Sleep" {
		return "time.Sleep"
	}
	if ioPkgs[pkg] && (ioFuncNames[name] || ioMethodNames[name]) {
		return "I/O call " + pkg + "." + name
	}
	return ""
}

// scanLockSummary computes the syntactic part of a function's lock
// summary: locks it acquires and whether it contains a blocking
// operation, anywhere in its body (function literals included — a
// caller cannot tell which part runs under its lock).
func scanLockSummary(pass *lintkit.Pass, body *ast.BlockStmt) *lockSummary {
	info := pass.TypesInfo
	s := &lockSummary{acquires: map[string]token.Pos{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			return false // runs on another goroutine
		case *ast.SendStmt:
			if s.mayBlock == "" {
				s.mayBlock = "channel send"
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW && s.mayBlock == "" {
				s.mayBlock = "channel receive"
			}
		case *ast.SelectStmt:
			if !selectHasDefault(e) && s.mayBlock == "" {
				s.mayBlock = "blocking select"
			}
		case *ast.CallExpr:
			if _, class, acq, ok := lockOpOf(info, e); ok {
				if acq {
					if _, seen := s.acquires[class]; !seen {
						s.acquires[class] = e.Pos()
					}
				}
				return true
			}
			if why := blockingCall(info, e); why != "" && s.mayBlock == "" {
				s.mayBlock = why
			}
		}
		return true
	})
	return s
}
