package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"inplace/internal/analyzers/lintkit"
)

// PoolHygiene reports misuse of the pooling machinery the zero-alloc
// hot path is built on:
//
//   - sync.Pool.Put of a slice value without a length reset: the next
//     Get observes stale elements through the old length, and boxing a
//     slice header allocates on every Put anyway. Reset with s = s[:0]
//     immediately before the Put, or pool a pointer type.
//   - copying a struct that holds a lock or pool by value (sync.Mutex,
//     RWMutex, Pool, WaitGroup, Once, Cond, Map): the copy shares
//     internal state with the original and corrupts it.
//   - submitting work to internal/parallel (Pool.For, Pool.ForBounds,
//     parallel.For) or starting a goroutine with a closure that
//     captures an enclosing loop variable: pooled workers may run after
//     the loop advances, so iteration state must be rebound or passed
//     as an argument, never closed over.
var PoolHygiene = &lintkit.Analyzer{
	Name: "poolhygiene",
	Doc:  "enforce sync.Pool reset, no lock copies, no loop-var capture in pooled work",
	Run:  runPoolHygiene,
}

func runPoolHygiene(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolHygiene(pass, fn)
		}
	}
	return nil
}

func checkPoolHygiene(pass *lintkit.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	vars := loopVarsIn(info, fn.Body)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			checkPoolPuts(pass, s)
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				checkLockCopy(pass, rhs, "assignment")
			}
		case *ast.RangeStmt:
			if s.Value != nil {
				if t := info.Types[s.X].Type; t != nil {
					if elem := rangeElemType(t); elem != nil && lockHolder(elem) != "" {
						pass.Reportf(s.Value.Pos(), "range copies %s, which holds %s by value; iterate with the index instead", elem, lockHolder(elem))
					}
				}
			}
		case *ast.CallExpr:
			checkLockArgs(pass, s)
			checkPoolSubmit(pass, s, vars)
		case *ast.GoStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				for _, id := range capturedLoopVars(info, lit, vars) {
					pass.Reportf(lit.Pos(), "goroutine closure captures loop variable %s; rebind it or pass it as an argument", id.Name)
				}
			}
		}
		return true
	})
}

// checkPoolPuts scans one block for sync.Pool.Put(s) where s is a
// slice-typed value whose length was not reset by the statement
// directly above.
func checkPoolPuts(pass *lintkit.Pass, block *ast.BlockStmt) {
	info := pass.TypesInfo
	for i, stmt := range block.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || !isSyncPoolPut(info, call) || len(call.Args) != 1 {
			continue
		}
		arg := call.Args[0]
		t := info.Types[arg].Type
		if t == nil {
			continue
		}
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			continue
		}
		if id, ok := arg.(*ast.Ident); ok && i > 0 && resetsLength(block.List[i-1], id.Name) {
			continue
		}
		pass.Reportf(call.Pos(), "sync.Pool.Put of slice without length reset; assign s = s[:0] first or pool a pointer")
	}
}

// isSyncPoolPut reports whether the call is (*sync.Pool).Put.
func isSyncPoolPut(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	selection := info.Selections[sel]
	if selection == nil {
		return false
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// resetsLength reports whether stmt is `name = name[:0]` (possibly
// among other assignments).
func resetsLength(stmt ast.Stmt, name string) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN {
		return false
	}
	for i, lhs := range as.Lhs {
		lid, ok := lhs.(*ast.Ident)
		if !ok || lid.Name != name || i >= len(as.Rhs) {
			continue
		}
		sl, ok := as.Rhs[i].(*ast.SliceExpr)
		if !ok || sl.Low != nil || sl.High == nil {
			continue
		}
		if x, ok := sl.X.(*ast.Ident); ok && x.Name == name {
			if lit, ok := sl.High.(*ast.BasicLit); ok && lit.Value == "0" {
				return true
			}
		}
	}
	return false
}

// checkLockCopy flags reading a lock-holding struct by value from an
// existing variable (composite literals construct, they do not copy).
func checkLockCopy(pass *lintkit.Pass, rhs ast.Expr, context string) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := pass.TypesInfo.Types[rhs].Type
	if t == nil {
		return
	}
	if holder := lockHolder(t); holder != "" {
		pass.Reportf(rhs.Pos(), "%s copies %s, which holds %s by value; use a pointer", context, t, holder)
	}
}

// checkLockArgs flags passing a lock-holding struct by value to a call.
func checkLockArgs(pass *lintkit.Pass, call *ast.CallExpr) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	for _, arg := range call.Args {
		checkLockCopy(pass, arg, "call argument")
	}
}

// checkPoolSubmit flags parallel-submission calls whose function-literal
// argument captures an enclosing loop variable.
func checkPoolSubmit(pass *lintkit.Pass, call *ast.CallExpr, vars []loopVar) {
	if !isParallelSubmit(pass.TypesInfo, call) {
		return
	}
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		for _, id := range capturedLoopVars(pass.TypesInfo, lit, vars) {
			pass.Reportf(lit.Pos(), "work submitted to parallel pool captures loop variable %s; rebind it or pass it through the body arguments", id.Name)
		}
	}
}

// isParallelSubmit reports whether the call dispatches work through the
// internal/parallel package: the package-level For, or the For /
// ForBounds methods of its Pool type.
func isParallelSubmit(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "For", "ForBounds":
	default:
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	path := pkgPathOf(obj)
	return path == "inplace/internal/parallel" || strings.HasSuffix(path, "/internal/parallel")
}

// rangeElemType returns the element type a range statement's value
// variable copies, or nil when ranging yields no copy (maps of
// pointers, channels of pointers, etc. still copy the element; only
// the element type matters here).
func rangeElemType(t types.Type) types.Type {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	case *types.Chan:
		return u.Elem()
	}
	return nil
}

// lockHolder returns the name of the sync primitive a type holds by
// value (directly or through nested struct fields), or "".
func lockHolder(t types.Type) string {
	return lockHolderRec(t, map[types.Type]bool{})
}

func lockHolderRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Pool", "WaitGroup", "Once", "Cond", "Map":
				return "sync." + obj.Name()
			}
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if h := lockHolderRec(st.Field(i).Type(), seen); h != "" {
			return h
		}
	}
	return ""
}
