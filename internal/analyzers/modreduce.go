package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"inplace/internal/analyzers/lintkit"
)

// ModReduce reports raw % and / by a loop-invariant divisor inside
// //xpose:hotpath regions. Hardware division costs tens of cycles and
// the paper's index transformations (§4.4, §6.2.4) assume the divisors
// — the matrix dimensions and their cofactors — are fixed per plan, so
// every hot-loop division strength-reduces to a multiply-high and shift
// through a mathutil.Divider computed at plan time (Div, Mod, DivMod,
// SMod).
//
// A division is flagged when it executes inside a loop and its divisor
// is a non-constant variable declared outside that loop (loop-invariant
// by scope). Constant divisors are exempt — the compiler already
// strength-reduces those. Function literals do not reset the enclosing
// loop: a closure built inside a loop runs its divisions inside that
// loop for the purposes of this check, while a closure returned by a
// loop-free factory is measured against its call sites' annotations,
// not the factory's.
var ModReduce = &lintkit.Analyzer{
	Name: "modreduce",
	Doc:  "strength-reduce hot-loop division by loop-invariant divisors",
	Run:  runModReduce,
}

func runModReduce(pass *lintkit.Pass) error {
	for _, region := range hotRegions(pass) {
		checkModReduce(pass, region)
	}
	return nil
}

func checkModReduce(pass *lintkit.Pass, region hotRegion) {
	info := pass.TypesInfo
	where := funcName(region.fn)

	report := func(pos token.Pos, op token.Token, div ast.Expr) {
		name := "divisor"
		if id, ok := div.(*ast.Ident); ok {
			name = id.Name
		} else if sel, ok := div.(*ast.SelectorExpr); ok {
			name = sel.Sel.Name
		}
		verb := "%"
		if op == token.QUO || op == token.QUO_ASSIGN {
			verb = "/"
		}
		pass.Reportf(pos, "raw %s by loop-invariant %s in hot loop of %s; precompute a mathutil.Divider at plan time", verb, name, where)
	}

	// Walk with an explicit loop stack so "innermost enclosing loop" is
	// known at every expression; FuncLits deliberately do not clear it.
	var loops []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, s)
			defer func() { loops = loops[:len(loops)-1] }()
		case *ast.BinaryExpr:
			if (s.Op == token.REM || s.Op == token.QUO) && flagDivisor(info, s.Y, loops) {
				report(s.OpPos, s.Op, s.Y)
			}
		case *ast.AssignStmt:
			if (s.Tok == token.REM_ASSIGN || s.Tok == token.QUO_ASSIGN) && len(s.Rhs) == 1 && flagDivisor(info, s.Rhs[0], loops) {
				report(s.TokPos, s.Tok, s.Rhs[0])
			}
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				walk(c)
			}
			return false
		})
	}
	walk(region.node)
}

// flagDivisor reports whether the divisor expression is an integer
// variable that is invariant with respect to the innermost enclosing
// loop.
func flagDivisor(info *types.Info, div ast.Expr, loops []ast.Node) bool {
	if len(loops) == 0 {
		return false
	}
	tv, ok := info.Types[div]
	if !ok || tv.Value != nil || tv.Type == nil || !isIntType(tv.Type) {
		return false
	}
	var obj types.Object
	switch e := div.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
		if obj == nil {
			return false
		}
	case *ast.SelectorExpr:
		// p.M-style field reads: the plan fields never change inside a
		// kernel loop, so any selector divisor is loop-invariant.
		loop := loops[len(loops)-1]
		return !(loop.Pos() <= e.Pos() && e.End() <= loop.End() && mutatedWithin(info, e, loop))
	default:
		return false
	}
	loop := loops[len(loops)-1]
	// Declared inside the innermost loop → varies with the loop; skip.
	if loop.Pos() <= obj.Pos() && obj.Pos() <= loop.End() {
		return false
	}
	return true
}

// mutatedWithin conservatively reports whether the selector expression
// is assigned anywhere inside the loop (in which case it is not
// invariant and the strength-reduction advice would be wrong).
func mutatedWithin(info *types.Info, sel *ast.SelectorExpr, loop ast.Node) bool {
	mutated := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if s, ok := lhs.(*ast.SelectorExpr); ok && s.Sel.Name == sel.Sel.Name {
					mutated = true
				}
			}
		}
		return !mutated
	})
	return mutated
}
