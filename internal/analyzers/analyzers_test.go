package analyzers_test

import (
	"strings"
	"testing"

	"inplace/internal/analyzers"
	"inplace/internal/analyzers/lintkit"
	"inplace/internal/analyzers/lintkit/checktest"
)

// TestGolden runs the whole suite over each golden package and matches
// the diagnostics against the // want comments, both directions.
func TestGolden(t *testing.T) {
	checktest.Run(t, "testdata", analyzers.All(),
		"errsentinel",
		"hotpathalloc",
		"indexoverflow",
		"leakcheck",
		"locksafe",
		"modreduce",
		"poolhygiene",
		"suppress",
		"suppressmulti",
		"wiresafe",
	)
}

// TestSuppressionMetadata asserts the //xpose:allow bookkeeping: the
// well-formed directive in the suppress golden yields exactly one
// suppressed finding carrying its reason.
func TestSuppressionMetadata(t *testing.T) {
	findings := checktest.Findings(t, "testdata", analyzers.All(), "suppress")
	var suppressed []lintkit.Finding
	for _, f := range findings {
		if f.Suppressed {
			suppressed = append(suppressed, f)
		}
	}
	if len(suppressed) != 1 {
		t.Fatalf("suppressed findings = %d, want 1\n%s", len(suppressed), checktest.Describe(findings))
	}
	if got := suppressed[0].Reason; got != "caller proves rows*cols fits at plan time" {
		t.Errorf("suppression reason = %q", got)
	}
	if suppressed[0].Analyzer != "indexoverflow" {
		t.Errorf("suppressed analyzer = %q, want indexoverflow", suppressed[0].Analyzer)
	}
}

// TestMultiAllowMetadata asserts the comma-list form: one directive in
// the suppressmulti golden suppresses a leakcheck and an errsentinel
// finding on the same line under one reason, and the stale entries are
// reported per analyzer.
func TestMultiAllowMetadata(t *testing.T) {
	findings := checktest.Findings(t, "testdata", analyzers.All(), "suppressmulti")
	byAnalyzer := map[string]int{}
	var reasons []string
	for _, f := range findings {
		if f.Suppressed {
			byAnalyzer[f.Analyzer]++
			reasons = append(reasons, f.Reason)
		}
	}
	if byAnalyzer["leakcheck"] != 2 || byAnalyzer["errsentinel"] != 1 || len(reasons) != 3 {
		t.Fatalf("suppressed findings by analyzer = %v, want leakcheck:2 errsentinel:1\n%s",
			byAnalyzer, checktest.Describe(findings))
	}
	want := "demo: process-lifetime ticker formatted into a dynamic error"
	for _, r := range reasons {
		if r != want && !strings.HasPrefix(r, "the ticker is intentionally immortal") {
			t.Errorf("suppression reason = %q", r)
		}
	}
}

// TestByName covers the registry used by the -c flag.
func TestByName(t *testing.T) {
	for _, a := range analyzers.All() {
		if analyzers.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if analyzers.ByName("nosuch") != nil {
		t.Errorf("ByName(nosuch) should be nil")
	}
}

// TestRepoTreeClean is the suite run the ci target performs: the
// repository's own packages must produce no unsuppressed findings, and
// every suppression must carry a reason.
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := lintkit.NewModuleLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	findings, err := lintkit.Run(pkgs, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Suppressed {
			if f.Reason == "" {
				t.Errorf("suppression without reason: %s", f)
			}
			continue
		}
		t.Errorf("unsuppressed finding: %s", f)
	}
}
