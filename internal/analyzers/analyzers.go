package analyzers

import "inplace/internal/analyzers/lintkit"

// All returns the xposelint suite in reporting order.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		HotpathAlloc,
		IndexOverflow,
		ModReduce,
		PoolHygiene,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *lintkit.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
