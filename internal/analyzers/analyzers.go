package analyzers

import "inplace/internal/analyzers/lintkit"

// All returns the xposelint suite in reporting order: the original
// hot-path checks first, then the dataflow-backed concurrency and
// protocol-safety analyzers the daemon era added. IndexOverflow runs
// before WireSafe so the shared guard-function fact is computed once.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		HotpathAlloc,
		IndexOverflow,
		ModReduce,
		PoolHygiene,
		LockSafe,
		LeakCheck,
		WireSafe,
		ErrSentinel,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *lintkit.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
