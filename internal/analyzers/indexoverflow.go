package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"inplace/internal/analyzers/lintkit"
)

// IndexOverflow reports r*cols+c-shaped integer products in index
// algebra that no overflow guard dominates. The decomposition's index
// maps are built from products of the matrix dimensions; on 64-bit
// targets rows*cols silently wraps for adversarial shapes unless every
// public validation path proves the product fits in int first (the
// root package's checkShape, mathutil.CheckedMul, or an explicit
// math.MaxInt bound).
//
// A product is flagged when it appears in one of the contexts where a
// wrapped value corrupts memory addressing —
//
//   - a subscript or slice bound (exported functions only: unexported
//     kernels run behind validated plans),
//   - a make() length or capacity,
//   - a comparison against len(...) (the classic
//     `len(data) != rows*cols` validation that itself overflows),
//
// — and no guard appears earlier in the same function. A guard is a
// call to mathutil.CheckedMul, an if condition mentioning a math.MaxInt
// constant, or a call to a same-package function whose body contains
// either (e.g. perm.checkStridedBounds).
var IndexOverflow = &lintkit.Analyzer{
	Name: "indexoverflow",
	Doc:  "require overflow guards on dimension products in index algebra",
	Run:  runIndexOverflow,
}

func runIndexOverflow(pass *lintkit.Pass) error {
	guards := sharedGuardFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkOverflow(pass, fn, guards)
		}
	}
	return nil
}

// guardFuncsFactKey is the shared-fact key under which the guard
// classification is published, so wiresafe recognizes the same helper
// functions without recomputing (or diverging from) the set.
const guardFuncsFactKey = "analyzers.indexoverflow.guards"

// sharedGuardFuncs returns the package's guard functions from the
// shared fact store, computing and exporting them on first use —
// whichever of indexoverflow and wiresafe runs first pays, the other
// reuses.
func sharedGuardFuncs(pass *lintkit.Pass) map[types.Object]bool {
	if v, ok := pass.ImportFact(guardFuncsFactKey); ok {
		return v.(map[types.Object]bool)
	}
	guards := guardFuncs(pass)
	pass.ExportFact(guardFuncsFactKey, guards)
	return guards
}

// guardFuncs returns the package-level functions whose bodies establish
// an overflow bound themselves; calling one counts as a guard at the
// call site.
func guardFuncs(pass *lintkit.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if bodyHasGuard(pass.TypesInfo, fn.Body) {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// bodyHasGuard reports whether the node contains a CheckedMul call or a
// math.MaxInt* reference.
func bodyHasGuard(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if isCheckedMul(info, e) {
				found = true
			}
		case *ast.SelectorExpr:
			if isMaxIntRef(info, e.Sel) {
				found = true
			}
		case *ast.Ident:
			if isMaxIntRef(info, e) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isCheckedMul(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "CheckedMul" {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "mathutil"
}

func isMaxIntRef(info *types.Info, id *ast.Ident) bool {
	if !strings.HasPrefix(id.Name, "MaxInt") {
		return false
	}
	obj := info.Uses[id]
	return obj != nil && pkgPathOf(obj) == "math"
}

// checkOverflow walks one function, tracking guard positions, and flags
// unguarded products in index-algebra contexts.
func checkOverflow(pass *lintkit.Pass, fn *ast.FuncDecl, guards map[types.Object]bool) {
	info := pass.TypesInfo
	exported := fn.Name.IsExported()

	// Positions after which the function is considered guarded.
	var guardPos []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if isCheckedMul(info, e) {
				guardPos = append(guardPos, e.Pos())
			} else if id := calleeIdent(e); id != nil && guards[info.Uses[id]] {
				guardPos = append(guardPos, e.Pos())
			}
		case *ast.IfStmt:
			if bodyHasGuard(info, e.Cond) {
				guardPos = append(guardPos, e.Pos())
			}
		}
		return true
	})
	guarded := func(pos token.Pos) bool {
		for _, g := range guardPos {
			if g < pos {
				return true
			}
		}
		return false
	}

	flag := func(root ast.Expr, context string) {
		ast.Inspect(root, func(n ast.Node) bool {
			mul, ok := n.(*ast.BinaryExpr)
			if !ok || mul.Op != token.MUL {
				return true
			}
			tv := info.Types[mul]
			if tv.Value != nil { // constant-folded: cannot overflow silently here
				return true
			}
			if t := tv.Type; t == nil || !isIntType(t) {
				return true
			}
			if guarded(mul.Pos()) {
				return true
			}
			pass.Reportf(mul.Pos(), "unguarded integer product in %s of %s; prove it fits with mathutil.CheckedMul or a math.MaxInt bound first", context, funcName(fn))
			return false
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IndexExpr:
			// Only subscripts on slices/arrays address memory.
			if exported && indexesMemory(info, e.X) {
				flag(e.Index, "a subscript")
			}
		case *ast.SliceExpr:
			if exported {
				for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
					if b != nil {
						flag(b, "a slice bound")
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
					for _, a := range e.Args[1:] {
						flag(a, "a make size")
					}
				}
			}
		case *ast.BinaryExpr:
			switch e.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				if hasLenCall(info, e.X) {
					flag(e.Y, "a len comparison")
				}
				if hasLenCall(info, e.Y) {
					flag(e.X, "a len comparison")
				}
			}
		}
		return true
	})
}

// calleeIdent unwraps the called identifier for plain, selector and
// generic-instantiation calls, returning nil for anything else.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		case *ast.Ident:
			return f
		case *ast.SelectorExpr:
			return f.Sel
		default:
			return nil
		}
	}
}

// indexesMemory reports whether the indexed operand is a slice, array
// or pointer-to-array (as opposed to a map or type parameter list).
func indexesMemory(info *types.Info, x ast.Expr) bool {
	t := info.Types[x].Type
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

// isIntType reports whether t is (or is based on) a signed or unsigned
// integer type.
func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// hasLenCall reports whether the expression contains a len(...) call.
func hasLenCall(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "len" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
