package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"inplace/internal/analyzers/lintkit"
)

// WireSafe reports decoded lengths that reach allocation or indexing
// without a bounds check. The wire protocol and the client decode
// u32/u16 counts from untrusted peers; an unchecked value flowing into
// make, unsafe.Slice or a subscript is a remote allocation bomb or an
// out-of-range panic. The analyzer runs only on wire/client packages
// (import path containing "wire" or "client") and taints
//
//   - conversions from unsigned integers to int/int64 (the classic
//     uint32→int decode),
//   - results of binary.BigEndian/LittleEndian.UintNN reads,
//   - results of same-package functions that return tainted values
//     unchecked (propagated through the call graph, so ParseHeader's
//     raw length taints its callers until they bound it).
//
// A taint is cleared by any comparison mentioning the value, a
// mathutil.CheckedMul, or a call to a same-package guard function —
// the same guard set the indexoverflow analyzer computes, imported
// through the shared fact store. Tainted (or never-checked unsigned)
// values reaching a make size, unsafe.Slice length, subscript or
// slice bound are flagged with the path-sensitive dataflow engine, so
// a check on one branch does not excuse the other.
var WireSafe = &lintkit.Analyzer{
	Name: "wiresafe",
	Doc:  "decoded wire lengths must be bounds-checked before make/unsafe.Slice/indexing",
	Run:  runWireSafe,
}

// Taint lattice values. Merge keeps the minimum, so a path that never
// checked wins over one that did.
const (
	taintTainted = 1
	taintChecked = 2
)

func runWireSafe(pass *lintkit.Pass) error {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "wire") && !strings.Contains(path, "client") {
		return nil
	}
	cg := pass.CallGraph()
	guards := sharedGuardFuncs(pass)

	// Phase A: which same-package functions return a tainted value?
	// Iterate to a fixpoint so taint flows through one helper into the
	// next.
	tainted := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for obj, fn := range cg.Decls {
			if tainted[obj] {
				continue
			}
			if returnsTainted(pass, guards, tainted, fn.Body) {
				tainted[obj] = true
				changed = true
			}
		}
	}

	// Phase B: flag tainted sinks in every function and literal.
	for _, fn := range sortedDecls(cg) {
		name := funcName(fn)
		checkWireUnit(pass, guards, tainted, name, fn.Body)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkWireUnit(pass, guards, tainted, name+" (func literal)", lit.Body)
			}
			return true
		})
	}
	return nil
}

// taintKey canonicalizes an expression that can carry a taint fact: an
// identifier's object, or a field chain's printed form.
func taintKey(info *types.Info, e ast.Expr) any {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			return obj
		}
		if obj := info.Defs[x]; obj != nil {
			return obj
		}
	case *ast.SelectorExpr:
		return "sel:" + types.ExprString(x)
	case *ast.ParenExpr:
		return taintKey(info, x.X)
	}
	return nil
}

// wireTransfer applies one CFG node to the taint facts: comparisons
// and guard calls check values, assignments propagate or clear taint.
func wireTransfer(pass *lintkit.Pass, guards map[types.Object]bool, sums map[types.Object]bool) func(ast.Node, lintkit.FactMap) {
	info := pass.TypesInfo
	setChecked := func(e ast.Expr, f lintkit.FactMap) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if x, ok := n.(ast.Expr); ok {
				if k := taintKey(info, x); k != nil {
					f[k] = taintChecked
				}
			}
			return true
		})
	}
	return func(n ast.Node, f lintkit.FactMap) {
		ast.Inspect(n, func(sub ast.Node) bool {
			if _, ok := sub.(*ast.FuncLit); ok {
				return false
			}
			if _, ok := sub.(*ast.SelectStmt); ok {
				return false // clause statements are their own CFG nodes
			}
			switch e := sub.(type) {
			case *ast.BinaryExpr:
				switch e.Op {
				case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
					setChecked(e.X, f)
					setChecked(e.Y, f)
				}
			case *ast.CallExpr:
				if isCheckedMul(info, e) || guards[calleeForGuard(info, e)] {
					for _, arg := range e.Args {
						setChecked(arg, f)
					}
				}
			case *ast.AssignStmt:
				applyAssign(info, guards, sums, e, f)
			}
			return true
		})
	}
}

// calleeForGuard resolves the callee object for the guard-function
// lookup (plain and selector calls).
func calleeForGuard(info *types.Info, call *ast.CallExpr) types.Object {
	if id := calleeIdent(call); id != nil {
		return info.Uses[id]
	}
	return nil
}

// applyAssign moves taint across an assignment: a tainted right-hand
// side taints the left, a clean one clears it.
func applyAssign(info *types.Info, guards map[types.Object]bool, sums map[types.Object]bool, a *ast.AssignStmt, f lintkit.FactMap) {
	if len(a.Lhs) == len(a.Rhs) {
		for i, lhs := range a.Lhs {
			k := taintKey(info, lhs)
			if k == nil {
				continue
			}
			if exprTainted(info, sums, a.Rhs[i], f) {
				f[k] = taintTainted
			} else {
				delete(f, k)
			}
		}
		return
	}
	// Multi-assign from one call: a tainted-returning same-package
	// function taints every result.
	if len(a.Rhs) == 1 {
		call, ok := a.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		taint := false
		if obj := calleeForGuard(info, call); obj != nil && sums[obj] {
			taint = true
		}
		for _, lhs := range a.Lhs {
			k := taintKey(info, lhs)
			if k == nil {
				continue
			}
			if taint {
				f[k] = taintTainted
			} else {
				delete(f, k)
			}
		}
	}
}

// exprTainted reports whether evaluating e yields a decoded, unchecked
// value under the current facts.
func exprTainted(info *types.Info, sums map[types.Object]bool, e ast.Expr, f lintkit.FactMap) bool {
	tainted := false
	ast.Inspect(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if k := taintKey(info, x.(ast.Expr)); k != nil && f[k] == taintTainted {
				tainted = true
			}
			if _, ok := n.(*ast.SelectorExpr); ok {
				return false // do not descend into the chain's parts
			}
		case *ast.CallExpr:
			if isTaintSource(info, sums, x, f) {
				tainted = true
				return false
			}
		}
		return !tainted
	})
	return tainted
}

// isTaintSource classifies a call as producing a decoded value: an
// unsigned→signed conversion of an unchecked operand, a binary.*Endian
// integer read, or a same-package function with a tainted return.
func isTaintSource(info *types.Info, sums map[types.Object]bool, call *ast.CallExpr, f lintkit.FactMap) bool {
	// Conversion T(x) with T signed and x unsigned.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, dstOK := tv.Type.Underlying().(*types.Basic)
		src := info.Types[call.Args[0]].Type
		if dstOK && src != nil {
			sb, srcOK := src.Underlying().(*types.Basic)
			if srcOK &&
				dst.Info()&types.IsInteger != 0 && dst.Info()&types.IsUnsigned == 0 &&
				sb.Info()&types.IsUnsigned != 0 {
				// Converting an already-checked value is fine.
				if k := taintKey(info, call.Args[0]); k != nil && f[k] == taintChecked {
					return false
				}
				if info.Types[call.Args[0]].Value != nil {
					return false // constant
				}
				return true
			}
		}
		return false
	}
	if isEndianRead(info, call) {
		return true
	}
	if obj := calleeForGuard(info, call); obj != nil && sums[obj] {
		return true
	}
	return false
}

// isEndianRead matches binary.BigEndian.UintNN / LittleEndian.UintNN.
func isEndianRead(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Uint") {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && pkgPathOf(obj) == "encoding/binary"
}

// returnsTainted runs the taint dataflow over one body and reports
// whether any return statement carries a tainted expression.
func returnsTainted(pass *lintkit.Pass, guards map[types.Object]bool, sums map[types.Object]bool, body *ast.BlockStmt) bool {
	info := pass.TypesInfo
	cfg := lintkit.NewCFG(body)
	transfer := wireTransfer(pass, guards, sums)
	in := cfg.Forward(lintkit.FactMap{}, transfer, nil)
	found := false
	cfg.EachNode(in, transfer, func(n ast.Node, f lintkit.FactMap) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return
		}
		for _, r := range ret.Results {
			if exprTainted(info, sums, r, f) {
				found = true
			}
		}
	})
	return found
}

// checkWireUnit flags tainted or never-checked unsigned values at the
// memory sinks of one function body.
func checkWireUnit(pass *lintkit.Pass, guards map[types.Object]bool, sums map[types.Object]bool, name string, body *ast.BlockStmt) {
	info := pass.TypesInfo
	cfg := lintkit.NewCFG(body)
	transfer := wireTransfer(pass, guards, sums)
	in := cfg.Forward(lintkit.FactMap{}, transfer, nil)

	sink := func(e ast.Expr, ctx string, f lintkit.FactMap) {
		flagged := false
		ast.Inspect(e, func(n ast.Node) bool {
			if flagged {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			x, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if tv, ok := info.Types[x]; ok && tv.Value != nil {
				return false // constant subexpression
			}
			switch x.(type) {
			case *ast.Ident, *ast.SelectorExpr:
				k := taintKey(info, x)
				if k == nil {
					return true
				}
				switch f[k] {
				case taintChecked:
				case taintTainted:
					flagged = true
					pass.Reportf(x.Pos(), "decoded length %s reaches %s in %s without a bounds check; compare it against an announced limit first", types.ExprString(x), ctx, name)
				default:
					if t, ok := info.Types[x].Type.Underlying().(*types.Basic); ok && t.Info()&types.IsUnsigned != 0 {
						flagged = true
						pass.Reportf(x.Pos(), "unsigned value %s used as %s in %s without a bounds check against the announced limits", types.ExprString(x), ctx, name)
					}
				}
				if _, isSel := x.(*ast.SelectorExpr); isSel {
					return false
				}
			case *ast.CallExpr:
				call := x.(*ast.CallExpr)
				if isTaintSource(info, sums, call, f) {
					flagged = true
					pass.Reportf(x.Pos(), "unchecked decode %s feeds %s in %s; bound the value before using it", types.ExprString(x), ctx, name)
					return false
				}
			}
			return !flagged
		})
	}

	visit := func(n ast.Node, f lintkit.FactMap) {
		ast.Inspect(n, func(sub ast.Node) bool {
			if _, ok := sub.(*ast.FuncLit); ok {
				return false
			}
			if _, ok := sub.(*ast.SelectStmt); ok {
				return false // clause statements are their own CFG nodes
			}
			switch e := sub.(type) {
			case *ast.CallExpr:
				if id, ok := e.Fun.(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
						for _, a := range e.Args[1:] {
							sink(a, "a make size", f)
						}
					}
				}
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Slice" {
					if obj := info.Uses[sel.Sel]; obj != nil && pkgPathOf(obj) == "unsafe" && len(e.Args) == 2 {
						sink(e.Args[1], "an unsafe.Slice length", f)
					}
				}
			case *ast.IndexExpr:
				if indexesMemory(info, e.X) {
					sink(e.Index, "a subscript", f)
				}
			case *ast.SliceExpr:
				if indexesMemory(info, e.X) {
					for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
						if b != nil {
							sink(b, "a slice bound", f)
						}
					}
				}
			}
			return true
		})
	}

	cfg.EachNode(in, transfer, visit)
}
