// Package locksafe is the golden input for the locksafe analyzer:
// blocking operations under a held mutex, self-deadlocks, lock-order
// inversions and critical sections leaked on a return path.
package locksafe

import (
	"os"
	"sync"
)

var mu sync.Mutex
var mu2 sync.Mutex
var rw sync.RWMutex

// sendLocked blocks on a channel send inside the critical section.
func sendLocked(ch chan int) {
	mu.Lock()
	ch <- 1 // want `channel send while mu is held in sendLocked; release the lock first`
	mu.Unlock()
}

// recvLocked blocks on a receive inside the critical section.
func recvLocked(ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return <-ch // want `channel receive while mu is held in recvLocked`
}

// writeLocked does file I/O under the lock.
func writeLocked(f *os.File, b []byte) {
	mu.Lock()
	defer mu.Unlock()
	f.Write(b) // want `I/O call f.Write while mu is held in writeLocked`
}

// readUnderRLock does I/O under a read lock; the key is rendered with
// its mode.
func readUnderRLock(f *os.File, b []byte) {
	rw.RLock()
	defer rw.RUnlock()
	f.Read(b) // want `I/O call f.Read while rw \(read lock\) is held in readUnderRLock`
}

// sleeper parks the goroutine while holding the lock.
func sleeper(d func()) {
	mu.Lock()
	waitBoth(d) // want `call to waitBoth \(sync.WaitGroup.Wait\) while mu is held in sleeper`
	mu.Unlock()
}

// waitBoth may block; sleeper calling it under mu is flagged through
// the call-graph summary, not here (no lock is held in this body).
func waitBoth(d func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d()
	}()
	wg.Wait()
}

// double re-acquires the lock a path already holds.
func double() {
	mu.Lock()
	mu.Lock() // want `mu acquired in double while a path already holds it \(self-deadlock\)`
	mu.Unlock()
	mu.Unlock()
}

// leaky forgets the unlock on the early return.
func leaky(cond bool) {
	mu.Lock() // want `mu may still be held on a return path of leaky; unlock on every path or defer the unlock`
	if cond {
		return
	}
	mu.Unlock()
}

// abOrder takes mu then mu2; baOrder takes them in the opposite order.
// The inversion is reported once, on the lexically smaller pair.
func abOrder() {
	mu.Lock()
	mu2.Lock() // want `inconsistent lock order: pkg:mu held while acquiring pkg:mu2 in abOrder, but baOrder acquires them in the opposite order`
	mu2.Unlock()
	mu.Unlock()
}

func baOrder() {
	mu2.Lock()
	mu.Lock()
	mu.Unlock()
	mu2.Unlock()
}

// clean releases before the send: no finding.
func clean(ch chan int) {
	mu.Lock()
	n := 1
	mu.Unlock()
	ch <- n
}

// cleanDefer pairs the lock with a deferred unlock: no leak.
func cleanDefer() int {
	mu.Lock()
	defer mu.Unlock()
	return 2
}

// cleanClose closes a channel under the lock: close never blocks.
func cleanClose(ch chan int) {
	mu.Lock()
	close(ch)
	mu.Unlock()
}

// cleanSelect polls with a default clause: non-blocking, exempt.
func cleanSelect(ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
	}
	return 0
}
