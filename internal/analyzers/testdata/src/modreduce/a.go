// Package modreduce is the golden input for the modreduce analyzer:
// hot-loop division by a loop-invariant variable must go through a
// precomputed reciprocal.
package modreduce

// hotMod reduces by a parameter inside its loop.
//
//xpose:hotpath
func hotMod(xs []int, m int) int {
	s := 0
	for i := 0; i < len(xs); i++ {
		s += xs[i] % m // want `raw % by loop-invariant m in hot loop of hotMod`
	}
	return s
}

// hotDiv divides by a parameter inside a range loop.
//
//xpose:hotpath
func hotDiv(xs []int, m int) int {
	s := 0
	for _, v := range xs {
		s += v / m // want `raw / by loop-invariant m in hot loop of hotDiv`
	}
	return s
}

// hotAssign uses the compound form.
//
//xpose:hotpath
func hotAssign(xs []int, m int) {
	for i := range xs {
		xs[i] %= m // want `raw % by loop-invariant m in hot loop of hotAssign`
	}
}

// hotField divides by a struct field that the loop never writes.
type plan struct{ n int }

//xpose:hotpath
func hotField(xs []int, p *plan) int {
	s := 0
	for _, v := range xs {
		s += v % p.n // want `raw % by loop-invariant n in hot loop of hotField`
	}
	return s
}

// constDivisor is the compiler's strength reduction: clean.
//
//xpose:hotpath
func constDivisor(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v % 8
	}
	return s
}

// outsideLoop reduces once, not per iteration: clean.
//
//xpose:hotpath
func outsideLoop(a, b int) int {
	return a % b
}

// varyingDivisor changes each iteration, so no reciprocal applies:
// clean.
//
//xpose:hotpath
func varyingDivisor(xs []int) int {
	s := 0
	for i := 1; i < len(xs); i++ {
		d := i + 1
		s += xs[i] % d
	}
	return s
}

// coldLoop is unannotated: clean even though the shape matches.
func coldLoop(xs []int, m int) int {
	s := 0
	for _, v := range xs {
		s += v % m
	}
	return s
}

// closureInLoop builds the dividing closure inside the loop, so the
// division runs per iteration.
//
//xpose:hotpath
func closureInLoop(xs []int, m int, apply func(func(int) int)) {
	for range xs {
		apply(func(v int) int { return v % m }) // want `raw % by loop-invariant m in hot loop of closureInLoop`
	}
}

// statementRegion is cold except the annotated loop.
func statementRegion(xs []int, m int) int {
	s := xs[0] % m // cold: clean
	//xpose:hotpath
	for _, v := range xs {
		s += v % m // want `raw % by loop-invariant m in hot loop of statementRegion`
	}
	return s
}
