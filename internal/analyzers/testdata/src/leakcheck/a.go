// Package leakcheck is the golden input for the leakcheck analyzer:
// goroutines without a provable exit path, WaitGroup misuse, and
// timers that can never be collected.
package leakcheck

import (
	"sync"
	"time"
)

func work() {}

// spin starts a goroutine whose loop nothing can leave.
func spin() {
	go func() { // want `goroutine started in spin loops forever: the for loop at line \d+ has no return, break or done-channel exit`
		for {
			work()
		}
	}()
}

// drain ranges over a channel: closing the channel ends the loop.
func drain(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// pump escapes its loop through the done channel.
func pump(ch chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case ch <- 1:
			case <-done:
				return
			}
		}
	}()
}

// addInside increments the WaitGroup from the spawned goroutine,
// racing the Wait below.
func addInside(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want `WaitGroup.Add inside the goroutine spawned by addInside races its Wait; Add before the go statement`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// imbalance Adds two but only one goroutine ever calls Done.
func imbalance(wg *sync.WaitGroup, ch chan int) {
	wg.Add(2) // want `wg.Add\(2\) in imbalance but 1 goroutine\(s\) call wg.Done; the Wait can hang or fire early`
	go func() {
		defer wg.Done()
		ch <- 1
	}()
	wg.Wait()
}

// balanced is the clean counterpart: Add(1), one Done.
func balanced(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch <- 1
	}()
	wg.Wait()
}

// poll allocates a fresh timer every iteration.
func poll(ch chan int) {
	for {
		select {
		case v := <-ch:
			_ = v
		case <-time.After(time.Second): // want `time.After inside a loop in poll leaks a timer per iteration; hoist a time.NewTimer and Reset it`
			return
		}
	}
}

// tick hands back a channel whose ticker nobody can stop.
func tick() <-chan time.Time {
	return time.Tick(time.Minute) // want `time.Tick in tick leaks its ticker; use time.NewTicker and Stop it`
}

// fire abandons the timer on the ch path.
func fire(ch chan int) {
	t := time.NewTimer(time.Second) // want `timer t in fire is never stopped; defer t.Stop\(\) or hand it to an owner that stops it`
	select {
	case <-t.C:
	case <-ch:
	}
}

// stopTimer is the clean counterpart: the deferred Stop releases it.
func stopTimer() {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	<-t.C
}
