// Package errsentinel is the golden input for the errsentinel
// analyzer: exported-reachable paths must wrap package sentinels, and
// hot regions must not construct errors at all.
package errsentinel

import (
	"errors"
	"fmt"
)

// ErrEmpty is the package sentinel the clean paths wrap.
var ErrEmpty = errors.New("errsentinel: empty input")

// Parse returns an error no caller can match with errors.Is.
func Parse(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("errsentinel: empty input %q", s) // want `fmt.Errorf without %w on the exported-reachable path Parse; wrap a package sentinel so callers can errors.Is`
	}
	return len(s), nil
}

// Load reaches open through the call graph, so open's dynamic error
// is on an exported path even though open itself is unexported.
func Load(p string) error {
	return open(p)
}

func open(p string) error {
	return errors.New("errsentinel: cannot open " + p) // want `errors.New inside open creates an unmatchable error per call; declare a package-level sentinel and wrap it with %w`
}

// Check wraps the sentinel: clean.
func Check(s string) error {
	if s == "" {
		return fmt.Errorf("%w (len 0)", ErrEmpty)
	}
	return nil
}

// internalOnly is unreachable from any exported function, so its
// dynamic error stays its own business.
func internalOnly() error {
	return errors.New("errsentinel: not reachable from exports")
}

// Hot wraps the sentinel correctly, but builds it inside the annotated
// region: both the hotpathalloc and errsentinel contracts object.
//
//xpose:hotpath
func Hot(xs []int) (int, error) {
	s := 0
	for _, v := range xs {
		s += v
	}
	if s < 0 {
		return 0, fmt.Errorf("%w: negative sum", ErrEmpty) // want `fmt.Errorf in hotpath function Hot; build errors in a cold helper` `error constructed inside //xpose:hotpath region of Hot; build errors in a cold helper`
	}
	return s, nil
}
