// Package wiresafe is the golden input for the wiresafe analyzer:
// lengths decoded from a peer must be bounds-checked before they size
// an allocation or index memory. The package path contains "wire", so
// the analyzer is in scope.
package wiresafe

import (
	"encoding/binary"
	"errors"
	"math"
)

var errTooBig = errors.New("wiresafe: length exceeds limit")

// decodeBody allocates straight from the peer's length word.
func decodeBody(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	return make([]byte, n) // want `decoded length n reaches a make size in decodeBody without a bounds check; compare it against an announced limit first`
}

// decodeChecked compares the length against a limit first: clean.
func decodeChecked(b []byte, max int) ([]byte, error) {
	n := int(binary.LittleEndian.Uint32(b))
	if n > max {
		return nil, errTooBig
	}
	return make([]byte, n), nil
}

// field subscripts the buffer with a decoded offset.
func field(b []byte) byte {
	off := int(binary.LittleEndian.Uint16(b))
	return b[off] // want `decoded length off reaches a subscript in field without a bounds check; compare it against an announced limit first`
}

// raw slices with an unsigned parameter that was never compared to
// anything.
func raw(n uint32, b []byte) []byte {
	return b[:n] // want `unsigned value n used as a slice bound in raw without a bounds check against the announced limits`
}

// inline feeds the decode into make without ever naming it.
func inline(b []byte) []byte {
	return make([]byte, int(binary.LittleEndian.Uint32(b))) // want `unchecked decode int\(binary.LittleEndian.Uint32\(b\)\) feeds a make size in inline; bound the value before using it`
}

// fits is a guard function: its body mentions math.MaxInt, so calling
// it clears the taint (the same recognition indexoverflow uses).
func fits(n int) bool {
	return n >= 0 && n < math.MaxInt/2
}

// decodeGuarded routes the length through the guard: clean.
func decodeGuarded(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	if !fits(n) {
		return nil
	}
	return make([]byte, n)
}

// header returns the raw decoded length; the taint follows the return
// value into callers.
func header(b []byte) int {
	return int(binary.LittleEndian.Uint32(b))
}

// useHeader trusts header's result without a check.
func useHeader(b []byte) []byte {
	n := header(b)
	return make([]byte, n) // want `decoded length n reaches a make size in useHeader without a bounds check; compare it against an announced limit first`
}

// useHeaderChecked bounds the helper's result first: clean.
func useHeaderChecked(b []byte, max int) []byte {
	n := header(b)
	if n > max {
		return nil
	}
	return make([]byte, n)
}
