// Package hotpathalloc is the golden input for the hotpathalloc
// analyzer: allocating constructs inside //xpose:hotpath regions are
// flagged, identical constructs in cold code are not.
package hotpathalloc

import "fmt"

// hot is annotated: every allocating construct below must be flagged.
//
//xpose:hotpath
func hot(dst []int, counts map[int]int, vals []int) []int {
	dst = append(dst, 1)  // want `append in hotpath function hot`
	tmp := make([]int, 4) // want `make in hotpath function hot`
	copy(dst, tmp)
	total := counts[3] // want `map access in hotpath function hot`
	delete(counts, 3)  // want `map delete in hotpath function hot`
	for k := range counts { // want `range over map in hotpath function hot`
		total += k
	}
	fmt.Println(vals) // want `fmt\.Println in hotpath function hot`
	var sink any
	sink = any(total) // want `conversion to interface in hotpath function hot`
	_ = sink
	return dst
}

// hotCapture builds a closure over its loop variable.
//
//xpose:hotpath
func hotCapture(vals []int, apply func(func() int)) {
	for i := range vals {
		apply(func() int { return vals[i] }) // want `closure in hotpath function hotCapture captures loop variable i`
	}
}

// hotRebound rebinds the loop variable first: clean.
//
//xpose:hotpath
func hotRebound(vals []int, apply func(func() int)) {
	for i := range vals {
		j := i
		apply(func() int { return vals[j] })
	}
}

// cold uses the same constructs without the annotation: clean.
func cold(dst []int, counts map[int]int, vals []int) []int {
	dst = append(dst, 1)
	tmp := make([]int, 4)
	copy(dst, tmp)
	total := counts[3]
	delete(counts, 3)
	for k := range counts {
		total += k
	}
	fmt.Println(vals, total)
	return dst
}

// mixed is cold except for one annotated statement.
func mixed(xs []int, m map[int]int) int {
	s := m[1] // cold half: clean
	//xpose:hotpath
	for range xs {
		s += m[2] // want `map access in hotpath function mixed`
	}
	return s
}
