// Package indexoverflow is the golden input for the indexoverflow
// analyzer: dimension products in index algebra must be dominated by an
// overflow guard.
package indexoverflow

import (
	"math"

	"inplace/internal/mathutil"
)

// BadIndex subscripts with an unguarded product in an exported
// function.
func BadIndex(data []int, rows, cols int) int {
	return data[rows*cols-1] // want `unguarded integer product in a subscript of BadIndex`
}

// BadSlice bounds a slice with an unguarded product.
func BadSlice(data []int, rows, cols int) []int {
	return data[:rows*cols] // want `unguarded integer product in a slice bound of BadSlice`
}

// BadLen validates with the overflowing comparison the analyzer exists
// to catch.
func BadLen(data []int, rows, cols int) bool {
	return len(data) != rows*cols // want `unguarded integer product in a len comparison of BadLen`
}

// badMake allocates from an unguarded product; make sizes are checked
// even in unexported functions.
func badMake(rows, cols int) []int {
	return make([]int, rows*cols) // want `unguarded integer product in a make size of badMake`
}

// kernel is unexported: subscripts inside validated kernels are not
// flagged.
func kernel(data []int, m, n int) int {
	s := 0
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s += data[i*n+j]
		}
	}
	return s
}

// GuardedBound proves the product fits with a math.MaxInt bound first:
// clean.
func GuardedBound(data []int, rows, cols int) int {
	if cols == 0 || rows > math.MaxInt/cols {
		return 0
	}
	return data[rows*cols-1]
}

// GuardedMul proves it with mathutil.CheckedMul: clean.
func GuardedMul(data []int, rows, cols int) int {
	size, ok := mathutil.CheckedMul(rows, cols)
	if !ok || len(data) < size {
		return 0
	}
	return data[rows*cols-1]
}

// checkDims guards by calling CheckedMul, making it a guard function.
func checkDims(rows, cols int) {
	if _, ok := mathutil.CheckedMul(rows, cols); !ok {
		panic("indexoverflow: dims overflow")
	}
}

// GuardedByHelper calls a same-package guard function first: clean.
func GuardedByHelper(data []int, rows, cols int) int {
	checkDims(rows, cols)
	return data[rows*cols-1]
}

// ConstProduct is constant-folded: clean.
func ConstProduct(data []int) int {
	return data[3*4]
}

// LateGuard guards after the product: the subscript is still flagged.
func LateGuard(data []int, rows, cols int) int {
	v := data[rows*cols-1] // want `unguarded integer product in a subscript of LateGuard`
	checkDims(rows, cols)
	return v
}
