// Package mathutil is a golden-test stub of the real
// inplace/internal/mathutil: the indexoverflow analyzer recognizes
// CheckedMul by package name and function name, so the goldens need a
// resolvable object with this shape.
package mathutil

// CheckedMul reports a*b and whether it is representable.
func CheckedMul(a, b int) (int, bool) {
	if a < 0 || b < 0 {
		return 0, false
	}
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}
