// Package parallel is a golden-test stub of the real
// inplace/internal/parallel: the poolhygiene analyzer matches
// submission calls by import path and method name, so the goldens need
// a resolvable Pool with the same surface.
package parallel

// Pool is the stub worker pool.
type Pool struct{}

// For runs body over one chunk inline.
func (p *Pool) For(n, workers int, body func(worker, lo, hi int)) {
	body(0, 0, n)
}

// ForBounds runs body over the bounds inline.
func (p *Pool) ForBounds(bounds []int, body func(worker, lo, hi int)) {
	for w := 0; w+1 < len(bounds); w++ {
		body(w, bounds[w], bounds[w+1])
	}
}

// For is the package-level dispatch.
func For(n, workers int, body func(worker, lo, hi int)) {
	body(0, 0, n)
}
