// Package suppressmulti is the golden input for comma-separated
// //xpose:allow lists and the stale-suppression diagnostics: one
// directive may cover several analyzers on one line, and an entry that
// suppresses nothing is reported together with its reason.
package suppressmulti

import (
	"fmt"
	"time"
)

// Both trips leakcheck and errsentinel on the same line; the comma
// list suppresses both findings under one reason, so no want here.
func Both() error {
	//xpose:allow leakcheck,errsentinel -- demo: process-lifetime ticker formatted into a dynamic error
	return fmt.Errorf("tick %v", <-time.Tick(time.Minute))
}

// stale carries a directive whose analyzer no longer fires; the
// diagnostic names the reason so the cleanup is an informed one.
func stale(x int) int {
	//xpose:allow locksafe -- nothing blocks here anymore // want `unused //xpose:allow locksafe directive \(reason "nothing blocks here anymore`
	return x
}

// halfUsed lists two analyzers but only leakcheck fires: the unused
// half is reported per analyzer, reason included.
func halfUsed() <-chan time.Time {
	//xpose:allow leakcheck,wiresafe -- the ticker is intentionally immortal // want `unused //xpose:allow wiresafe directive \(reason "the ticker is intentionally immortal`
	return time.Tick(time.Hour)
}
