// Package poolhygiene is the golden input for the poolhygiene
// analyzer: sync.Pool slice resets, lock-holding value copies, and
// loop-variable capture in pooled work.
package poolhygiene

import (
	"sync"

	"inplace/internal/parallel"
)

var bufPool sync.Pool

// putSlice returns a slice with its stale length intact.
func putSlice(buf []byte) {
	bufPool.Put(buf) // want `sync\.Pool\.Put of slice without length reset`
}

// putReset truncates first: clean.
func putReset(buf []byte) {
	buf = buf[:0]
	bufPool.Put(buf)
}

// putPointer pools a pointer, the recommended shape: clean.
func putPointer(buf *[]byte) {
	bufPool.Put(buf)
}

// guarded holds a lock by value.
type guarded struct {
	mu sync.Mutex
	n  int
}

// copyLock duplicates the mutex state.
func copyLock(g *guarded) {
	h := *g // want `assignment copies .*guarded, which holds sync\.Mutex by value`
	h.n++
}

// passLock sends a lock-holding copy into a call.
func passLock(g *guarded, f func(guarded)) {
	f(*g) // want `call argument copies .*guarded, which holds sync\.Mutex by value`
}

// rangeLock copies every element into the loop variable.
func rangeLock(gs []guarded) int {
	n := 0
	for _, g := range gs { // want `range copies .*guarded, which holds sync\.Mutex by value`
		n += g.n
	}
	return n
}

// pointerSlice iterates pointers: clean.
func pointerSlice(gs []*guarded) int {
	n := 0
	for _, g := range gs {
		n += g.n
	}
	return n
}

// submitCapture closes over the loop index in pooled work.
func submitCapture(p *parallel.Pool, jobs []int) {
	for i := range jobs {
		p.For(len(jobs), 1, func(w, lo, hi int) { // want `work submitted to parallel pool captures loop variable i`
			jobs[i] = w + lo + hi
		})
	}
}

// submitRebound rebinds the index before closing over it: clean.
func submitRebound(p *parallel.Pool, jobs []int) {
	for i := range jobs {
		j := i
		p.For(len(jobs), 1, func(w, lo, hi int) {
			jobs[j] = w + lo + hi
		})
	}
}

// submitBounds exercises the ForBounds surface.
func submitBounds(p *parallel.Pool, bounds []int, jobs []int) {
	for i := range jobs {
		p.ForBounds(bounds, func(w, lo, hi int) { // want `work submitted to parallel pool captures loop variable i`
			jobs[i] = w + lo + hi
		})
	}
}

// packageFor exercises the package-level dispatch.
func packageFor(jobs []int) {
	for i := range jobs {
		parallel.For(len(jobs), 1, func(w, lo, hi int) { // want `work submitted to parallel pool captures loop variable i`
			jobs[i] = w + lo + hi
		})
	}
}

// goCapture starts a goroutine over the loop variable.
func goCapture(jobs []int, wg *sync.WaitGroup) {
	for i := range jobs {
		wg.Add(1)
		go func() { // want `goroutine closure captures loop variable i`
			jobs[i] = 0
			wg.Done()
		}()
	}
}
