// Package suppress is the golden input for the //xpose:allow
// machinery: a well-formed directive silences its finding, a directive
// without a reason is itself a violation, and a directive that
// suppresses nothing is reported as unused.
package suppress

// Allowed carries a well-formed suppression: the finding is recorded as
// suppressed and does not fail the run, so this line has no want.
func Allowed(data []int, rows, cols int) int {
	//xpose:allow indexoverflow -- caller proves rows*cols fits at plan time
	return data[rows*cols-1]
}

// MissingReason omits the mandatory justification.
func MissingReason(data []int, rows, cols int) bool {
	//xpose:allow indexoverflow // want `malformed //xpose:allow`
	return len(data) == rows*cols // want `unguarded integer product in a len comparison of MissingReason`
}

// Unused allows an analyzer that reports nothing here.
func Unused(x int) int {
	//xpose:allow modreduce -- nothing here needs it // want `unused //xpose:allow modreduce directive`
	return x
}

// WrongAnalyzer suppresses a different analyzer than the one that
// fires: the finding survives and the directive is unused.
func WrongAnalyzer(data []int, rows, cols int) int {
	//xpose:allow hotpathalloc -- wrong analyzer on purpose // want `unused //xpose:allow hotpathalloc directive`
	return data[rows*cols-1] // want `unguarded integer product in a subscript of WrongAnalyzer`
}
