package lintkit

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed and type-checked package, ready to be
// handed to analyzers.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory its files were read from.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records types and objects for every expression.
	TypesInfo *types.Info
}

// A Loader loads packages from a directory tree without the go tool:
// files come from go/build (so build tags are honoured), syntax from
// go/parser, and types from go/types with a source importer for the
// standard library. Module-local imports are resolved through a prefix
// mapping instead of GOPATH, so the loader works offline with an empty
// module cache.
type Loader struct {
	Fset *token.FileSet

	// prefix → directory; the longest matching prefix wins. The empty
	// prefix maps any path into a GOPATH-style src root (used by the
	// analyzer golden tests).
	roots map[string]string

	stdlib types.Importer
	cache  map[string]*Package
	active map[string]bool // cycle detection
}

// NewModuleLoader returns a loader rooted at the module directory dir:
// the module path from dir/go.mod maps to dir, everything else resolves
// from the standard library.
func NewModuleLoader(dir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lintkit: reading go.mod: %w", err)
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("%w in %s/go.mod", ErrNoModule, dir)
	}
	return newLoader(map[string]string{mod: dir}), nil
}

// NewSrcLoader returns a loader that resolves every non-stdlib import
// path p to srcRoot/p, the GOPATH-style layout analysis golden tests
// use for their testdata packages.
func NewSrcLoader(srcRoot string) *Loader {
	return newLoader(map[string]string{"": srcRoot})
}

func newLoader(roots map[string]string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		roots:  roots,
		stdlib: importer.ForCompiler(fset, "source", nil),
		cache:  make(map[string]*Package),
		active: make(map[string]bool),
	}
}

// dirFor resolves an import path through the prefix mapping. ok is
// false when the path belongs to the standard library.
func (l *Loader) dirFor(path string) (dir string, ok bool) {
	best := -1
	for prefix, root := range l.roots {
		switch {
		case path == prefix:
			if len(prefix) > best {
				best, dir = len(prefix), root
			}
		case prefix == "" || strings.HasPrefix(path, prefix+"/"):
			rel := strings.TrimPrefix(strings.TrimPrefix(path, prefix), "/")
			if len(prefix) > best {
				best, dir = len(prefix), filepath.Join(root, filepath.FromSlash(rel))
			}
		}
	}
	if best < 0 {
		return "", false
	}
	// The empty prefix claims every path; only accept it when the
	// directory actually exists so stdlib imports fall through.
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return "", false
	}
	return dir, true
}

// Import implements types.Importer, recursing into module-local
// packages and delegating everything else to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.stdlib.Import(path)
}

// load parses and type-checks the package in dir, caching by import
// path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("%w through %q", ErrImportCycle, path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lintkit: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lintkit: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoGoFiles, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%w in %s: %v", ErrTypeCheck, path, typeErrs[0])
	}

	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// Load resolves the patterns to packages. A pattern is a directory
// path, optionally ending in "/..." to include every package beneath
// it; "./..." therefore loads a whole tree. Directories named testdata
// and hidden directories are skipped during expansion. baseDir anchors
// relative patterns.
func (l *Loader) Load(baseDir string, patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(baseDir, root)
		}
		if !recursive {
			dirs[root] = true
			continue
		}
		err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirs[p] = true
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lintkit: expanding %q: %w", pat, err)
		}
	}

	var sorted []string
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		path, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// pathFor inverts the prefix mapping: the import path whose dirFor is
// dir.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for prefix, root := range l.roots {
		rootAbs, err := filepath.Abs(root)
		if err != nil {
			return "", err
		}
		if abs == rootAbs {
			if prefix == "" {
				return "", fmt.Errorf("%w: %s is the src root, not a package", ErrOutsideRoots, dir)
			}
			return prefix, nil
		}
		if rel, err := filepath.Rel(rootAbs, abs); err == nil && !strings.HasPrefix(rel, "..") {
			p := filepath.ToSlash(rel)
			if prefix != "" {
				p = prefix + "/" + p
			}
			return p, nil
		}
	}
	return "", fmt.Errorf("%w: %s", ErrOutsideRoots, dir)
}

// hasGoFiles reports whether dir contains at least one buildable
// non-test Go file.
func hasGoFiles(dir string) bool {
	bp, err := build.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
