package lintkit

import (
	"go/ast"
	"go/token"
)

// This file builds a per-function control-flow graph over go/ast, the
// foundation of the kit's intraprocedural dataflow analyses. The graph
// is deliberately coarse: a Block holds the "simple" statements and
// control expressions that execute on one straight-line path, in
// order, and Succs are the possible continuations. Composite
// statements (if/for/range/switch/select) never appear as block nodes
// themselves; only their condition/tag/operand expressions do, so a
// transfer function that walks each node's subtree visits every
// executed expression exactly once. Function literals are NOT split
// out — they appear inside whatever node contains them, and analyses
// that care must skip them (their bodies execute at call time, not
// here) and build a separate CFG per literal.

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block, Entry first and Exit last. Blocks that
	// lost all predecessors (code after return/break) remain in the
	// slice but are never reached by Forward.
	Blocks []*Block
	Entry  *Block
	// Exit is the single virtual exit block: every return and the fall
	// off the end of the body flow here. It holds no nodes.
	Exit *Block
	// Defers collects the defer statements of the body in source
	// order; deferred calls run on the Exit edge.
	Defers []*ast.DeferStmt
}

// A Block is one straight-line run of nodes.
type Block struct {
	Index int
	// Nodes are simple statements and control expressions in
	// execution order: assignments, expression statements, send/go/
	// defer/return statements, if/for conditions, switch tags, range
	// operands and select statements (the select itself marks the
	// blocking choice point; each comm clause starts its own block
	// with the clause's comm statement as its first node).
	Nodes []ast.Node
	Succs []*Block
}

// ctrlFrame is one enclosing breakable/continuable construct during
// construction.
type ctrlFrame struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select frames
}

type cfgBuilder struct {
	cfg          *CFG
	cur          *Block
	frames       []ctrlFrame
	labels       map[string]*Block
	pendingGotos []struct {
		from *Block
		name string
	}
	pendingLabel string
}

// NewCFG builds the control-flow graph of a function body. The body
// may be any block statement (FuncDecl.Body or FuncLit.Body).
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{Exit: &Block{}},
		labels: map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit)
	for _, g := range b.pendingGotos {
		if target, ok := b.labels[g.name]; ok {
			b.edge(g.from, target)
		} else {
			b.edge(g.from, b.cfg.Exit)
		}
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// takeLabel consumes the label of an enclosing labeled statement, so
// the loop or switch it annotates registers break/continue targets
// under that name.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// frameFor finds the break (and for loops, continue) target: the
// innermost frame when the branch is unlabeled, the matching frame
// otherwise. needCont restricts the search to loop frames.
func (b *cfgBuilder) frameFor(label string, needCont bool) *ctrlFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		then, after := b.newBlock(), b.newBlock()
		b.edge(b.cur, then)
		cond := b.cur
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body, after := b.newBlock(), b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.frames = append(b.frames, ctrlFrame{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, cont)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		body, after := b.newBlock(), b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.frames = append(b.frames, ctrlFrame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.add(s)
		after := b.newBlock()
		from := b.cur
		b.frames = append(b.frames, ctrlFrame{label: label, brk: after})
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(from, blk)
			b.cur = blk
			if clause.Comm != nil {
				b.add(clause.Comm)
			}
			b.stmtList(clause.Body)
			b.edge(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.frameFor(label, false); f != nil {
				b.edge(b.cur, f.brk)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.frameFor(label, true); f != nil {
				b.edge(b.cur, f.cont)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			if target, ok := b.labels[s.Label.Name]; ok {
				b.edge(b.cur, target)
			} else {
				b.pendingGotos = append(b.pendingGotos, struct {
					from *Block
					name string
				}{b.cur, s.Label.Name})
			}
			b.cur = b.newBlock()
		}
		// FALLTHROUGH is handled inside switchStmt.

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case nil:
		// e.g. an absent else branch routed through stmt.

	default:
		// Assign, Decl, Expr, IncDec, Send, Go, Empty: one node.
		b.add(s)
	}
}

// switchStmt lowers expression and type switches: every case clause is
// a successor of the head; a missing default adds a direct head→after
// edge; fallthrough chains a clause to the next clause's block.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.newBlock()

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, cc := range body.List {
		clauses = append(clauses, cc.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.frames = append(b.frames, ctrlFrame{label: label, brk: after})
	for i, c := range clauses {
		b.cur = blocks[i]
		for _, e := range c.List {
			b.add(e)
		}
		for _, st := range c.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(blocks) {
					b.edge(b.cur, blocks[i+1])
				}
				b.cur = b.newBlock()
				continue
			}
			b.stmt(st)
		}
		b.edge(b.cur, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}
