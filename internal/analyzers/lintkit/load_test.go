package lintkit

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeTree materializes a file map under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadHonoursBuildTags(t *testing.T) {
	// b.go is excluded by its build constraint; it would not even
	// type-check, so loading proves go/build filtered it out.
	dir := writeTree(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"p/a.go": "package p\n\nfunc A() int { return 1 }\n",
		"p/b.go": "//go:build never\n\npackage p\n\nfunc B() { undefinedSymbol() }\n",
	})
	loader, err := NewModuleLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dir, "./p")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("loaded %d packages, files = %d; want 1 package with 1 file", len(pkgs), len(pkgs[0].Files))
	}
}

func TestLoadTestOnlyPackage(t *testing.T) {
	// A directory holding only _test.go files has no lintable compile
	// unit: the loader reports a typed error, not a panic or a silent
	// empty package.
	dir := writeTree(t, map[string]string{
		"go.mod":      "module m\n\ngo 1.22\n",
		"t/x_test.go": "package t\n\nimport \"testing\"\n\nfunc TestX(t *testing.T) {}\n",
	})
	loader, err := NewModuleLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load(dir, "./t")
	if !errors.Is(err, ErrNoGoFiles) {
		t.Fatalf("Load(test-only dir) = %v, want errors.Is ErrNoGoFiles", err)
	}
}

func TestLoadTypeCheckFailure(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"p/a.go": "package p\n\nfunc A() int { return undefinedSymbol }\n",
	})
	loader, err := NewModuleLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load(dir, "./p")
	if !errors.Is(err, ErrTypeCheck) {
		t.Fatalf("Load(broken package) = %v, want errors.Is ErrTypeCheck", err)
	}
}

func TestLoadNoModuleLine(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "// a go.mod with no module directive\n",
	})
	_, err := NewModuleLoader(dir)
	if !errors.Is(err, ErrNoModule) {
		t.Fatalf("NewModuleLoader = %v, want errors.Is ErrNoModule", err)
	}
}

func TestLoadOutsideRoots(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"p/a.go": "package p\n",
	})
	elsewhere := writeTree(t, map[string]string{
		"q/a.go": "package q\n",
	})
	loader, err := NewModuleLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load(dir, filepath.Join(elsewhere, "q"))
	if !errors.Is(err, ErrOutsideRoots) {
		t.Fatalf("Load(dir outside module) = %v, want errors.Is ErrOutsideRoots", err)
	}
}

func TestLoadRecursiveSkipsTestdata(t *testing.T) {
	// ./... expansion must skip testdata and hidden directories, and a
	// test-only directory is simply not listed (hasGoFiles gates it).
	dir := writeTree(t, map[string]string{
		"go.mod":            "module m\n\ngo 1.22\n",
		"p/a.go":            "package p\n",
		"p/testdata/bad.go": "package this is not Go\n",
		"p/.hidden/x.go":    "package x\n\nfunc F() { undefined() }\n",
		"q/only_test.go":    "package q\n",
		"r/sub/b.go":        "package sub\n",
	})
	loader, err := NewModuleLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %v, want exactly m/p and m/r/sub", paths)
	}
}
