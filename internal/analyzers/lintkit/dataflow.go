package lintkit

import "go/ast"

// This file is the reaching-facts engine on top of the CFG: a forward
// iterative worklist solver over small per-variable fact lattices. An
// analysis chooses its own fact keys (typically types.Object or a
// canonical expression string) and integer fact values, supplies a
// transfer function that applies one CFG node to a fact map in place,
// and a value join for facts that disagree at a merge point. The
// driver computes the fact map entering every reachable block; EachNode
// then replays the transfer inside each block to hand the analysis the
// exact facts in force before every node.

// A FactMap carries the dataflow facts live at one program point:
// analysis-chosen keys to small integer lattice values. Absence of a
// key means "no fact".
type FactMap map[any]int

// Clone copies the map.
func (m FactMap) Clone() FactMap {
	out := make(FactMap, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// JoinMin is the join for lattices where the smaller value is the
// weaker (more dangerous) fact — e.g. tainted=1 beats checked=2 when
// only one path checked.
func JoinMin(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mergeInto folds src into dst key-union-wise, joining values that
// disagree, and reports whether dst changed. Keys present in only one
// side survive: the solver is a may-analysis over key presence.
func mergeInto(dst, src FactMap, join func(a, b int) int) bool {
	changed := false
	for k, v := range src {
		old, ok := dst[k]
		if !ok {
			dst[k] = v
			changed = true
			continue
		}
		if nv := join(old, v); nv != old {
			dst[k] = nv
			changed = true
		}
	}
	return changed
}

// Forward runs the transfer function over the graph to a fixpoint and
// returns the facts entering every reachable block. entry seeds the
// Entry block; join resolves conflicting values at merges (nil means
// JoinMin). The solver is capped at a generous iteration budget so a
// non-monotone transfer function degrades to partial facts instead of
// hanging the lint run.
func (c *CFG) Forward(entry FactMap, transfer func(ast.Node, FactMap), join func(a, b int) int) map[*Block]FactMap {
	if join == nil {
		join = JoinMin
	}
	in := map[*Block]FactMap{c.Entry: entry.Clone()}
	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	budget := 64 * (len(c.Blocks) + 1)
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := in[b].Clone()
		for _, n := range b.Nodes {
			transfer(n, out)
		}
		for _, s := range b.Succs {
			si, ok := in[s]
			if !ok {
				in[s] = out.Clone()
			} else if !mergeInto(si, out, join) {
				continue
			}
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// EachNode replays the transfer function through every reachable block
// and calls visit with the facts in force immediately before each
// node. Unreachable blocks (no entry facts) are skipped.
func (c *CFG) EachNode(in map[*Block]FactMap, transfer func(ast.Node, FactMap), visit func(ast.Node, FactMap)) {
	for _, b := range c.Blocks {
		facts, ok := in[b]
		if !ok {
			continue
		}
		cur := facts.Clone()
		for _, n := range b.Nodes {
			visit(n, cur)
			transfer(n, cur)
		}
	}
}

// ExitFacts returns the facts entering the exit block — the may-union
// over every return path — or an empty map when no path reaches it.
func (c *CFG) ExitFacts(in map[*Block]FactMap) FactMap {
	if f, ok := in[c.Exit]; ok {
		return f
	}
	return FactMap{}
}
