// Package checktest runs lintkit analyzers over golden packages and
// compares the diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the stdlib-only kit.
//
// Golden packages live in a GOPATH-style tree: testdata/src/<path>/*.go.
// A line that should be flagged carries a comment of the form
//
//	x := a * b // want `overflow`
//	y := c % d // want `mod` `second finding on the same line`
//
// Each backquoted (or double-quoted) string is a regular expression
// that must match the message of exactly one unsuppressed finding
// reported on that line; findings and expectations must match one to
// one, in both directions. Findings suppressed by a well-formed
// //xpose:allow directive are not matched against wants — a suppression
// golden file therefore has no want on the suppressed line, proving the
// directive took effect.
package checktest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"inplace/internal/analyzers/lintkit"
)

// wantRE captures the expectation list of a // want comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// exprRE captures one quoted expectation: backquoted or double-quoted.
var exprRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one // want entry awaiting a finding.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads each golden package from testdataDir/src, applies the
// analyzers, and reports any mismatch between findings and // want
// comments as test errors.
func Run(t *testing.T, testdataDir string, analyzers []*lintkit.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := lintkit.NewSrcLoader(filepath.Join(testdataDir, "src"))
	for _, path := range pkgPaths {
		pkgs, err := loader.Load(filepath.Join(testdataDir, "src"), path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		findings, err := lintkit.Run(pkgs, analyzers)
		if err != nil {
			t.Errorf("running analyzers on %s: %v", path, err)
			continue
		}
		expects := collectWants(t, pkgs)
		check(t, path, findings, expects)
	}
}

// collectWants parses every // want comment in the loaded packages.
func collectWants(t *testing.T, pkgs []*lintkit.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimSpace(m[1])
					exprs := exprRE.FindAllStringSubmatch(rest, -1)
					if len(exprs) == 0 {
						t.Errorf("%s:%d: malformed // want comment: %q", pos.Filename, pos.Line, c.Text)
						continue
					}
					for _, e := range exprs {
						raw := e[1]
						if raw == "" {
							raw = e[2]
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
							continue
						}
						out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					}
				}
			}
		}
	}
	return out
}

// check matches unsuppressed findings against expectations one to one.
func check(t *testing.T, pkgPath string, findings []lintkit.Finding, expects []*expectation) {
	t.Helper()
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		matched := false
		for _, e := range expects {
			if e.hit || e.file != f.Pos.Filename || e.line != f.Pos.Line {
				continue
			}
			if e.re.MatchString(f.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", pkgPath, f)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s: %s:%d: no finding matched want %q", pkgPath, e.file, e.line, e.raw)
		}
	}
}

// Findings is a convenience for tests that assert on suppression
// metadata directly: it loads one golden package and returns the raw
// findings.
func Findings(t *testing.T, testdataDir string, analyzers []*lintkit.Analyzer, pkgPath string) []lintkit.Finding {
	t.Helper()
	loader := lintkit.NewSrcLoader(filepath.Join(testdataDir, "src"))
	pkgs, err := loader.Load(filepath.Join(testdataDir, "src"), pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	findings, err := lintkit.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgPath, err)
	}
	return findings
}

// Describe formats findings for failure messages.
func Describe(findings []lintkit.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "  %s (suppressed=%v)\n", f, f.Suppressed)
	}
	return b.String()
}
