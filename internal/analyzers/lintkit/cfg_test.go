package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
	"time"
)

// parseBody parses src as a file and returns the body of its first
// function declaration.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			return fn.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	cfg := NewCFG(parseBody(t, `func f() { a(); b() }`))
	if got := len(cfg.Entry.Nodes); got != 2 {
		t.Fatalf("entry nodes = %d, want 2", got)
	}
	if len(cfg.Entry.Succs) != 1 || cfg.Entry.Succs[0] != cfg.Exit {
		t.Fatalf("entry should flow straight to exit, succs = %v", cfg.Entry.Succs)
	}
	if len(cfg.Exit.Nodes) != 0 {
		t.Fatalf("exit block must hold no nodes")
	}
}

func TestCFGIfJoin(t *testing.T) {
	cfg := NewCFG(parseBody(t, `func f(c bool) { if c { a() } else { b() }; d() }`))
	// Entry holds the condition and branches to then and else; both
	// rejoin in the after block that holds d().
	if got := len(cfg.Entry.Succs); got != 2 {
		t.Fatalf("condition block successors = %d, want 2", got)
	}
	var after *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "d" {
						after = b
					}
				}
			}
		}
	}
	if after == nil {
		t.Fatal("no block holds d()")
	}
	preds := 0
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s == after {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Fatalf("join block predecessors = %d, want 2 (then and else)", preds)
	}
}

func TestCFGReturnSkipsTail(t *testing.T) {
	// Code after an unconditional return stays in the graph but is
	// unreachable: Forward never hands it facts, EachNode skips it.
	cfg := NewCFG(parseBody(t, `func f() { a(); return; b() }`))
	visited := map[string]bool{}
	record := func(n ast.Node, _ FactMap) {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					visited[id.Name] = true
				}
			}
		}
	}
	noop := func(ast.Node, FactMap) {}
	in := cfg.Forward(FactMap{}, noop, nil)
	cfg.EachNode(in, noop, record)
	if !visited["a"] {
		t.Errorf("a() before the return must be visited")
	}
	if visited["b"] {
		t.Errorf("b() after the return is unreachable and must be skipped")
	}
}

func TestCFGDefersCollected(t *testing.T) {
	cfg := NewCFG(parseBody(t, `func f() { defer a(); defer b(); c() }`))
	if got := len(cfg.Defers); got != 2 {
		t.Fatalf("defers = %d, want 2", got)
	}
}

func TestCFGSelectClauses(t *testing.T) {
	cfg := NewCFG(parseBody(t, `func f(ch chan int, done chan bool) {
		select {
		case v := <-ch:
			use(v)
		case <-done:
		}
	}`))
	// The select itself is one node; each comm statement starts its own
	// block, so subtree walks never see a clause twice.
	var sel *Block
	clauseHeads := 0
	for _, b := range cfg.Blocks {
		for i, n := range b.Nodes {
			switch n.(type) {
			case *ast.SelectStmt:
				sel = b
			case *ast.AssignStmt, *ast.ExprStmt:
				if i == 0 && b != cfg.Entry {
					clauseHeads++
				}
			}
		}
	}
	if sel == nil {
		t.Fatal("select statement is not a CFG node")
	}
	if len(sel.Succs) != 2 {
		t.Fatalf("select successors = %d, want one per clause", len(sel.Succs))
	}
	if clauseHeads < 2 {
		t.Fatalf("clause head blocks = %d, want 2", clauseHeads)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	// The labeled break must leave the outer loop: f() after the loops
	// is reachable, g() after the break inside the inner loop is not.
	cfg := NewCFG(parseBody(t, `func f() {
outer:
	for {
		for {
			break outer
			g()
		}
	}
	f()
}`))
	visited := map[string]bool{}
	record := func(n ast.Node, _ FactMap) {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					visited[id.Name] = true
				}
			}
		}
	}
	noop := func(ast.Node, FactMap) {}
	in := cfg.Forward(FactMap{}, noop, nil)
	cfg.EachNode(in, noop, record)
	if !visited["f"] {
		t.Errorf("f() after the labeled break target must be reachable")
	}
	if visited["g"] {
		t.Errorf("g() after the break is unreachable")
	}
}

func TestForwardJoinsAtMerge(t *testing.T) {
	// x is assigned 1 on entry and 2 in one branch; at the use after
	// the merge, JoinMin keeps the smaller fact.
	body := parseBody(t, `func f(c bool) { x := 1; if c { x = 2 }; use(x) }`)
	cfg := NewCFG(body)
	transfer := func(n ast.Node, f FactMap) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
			if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
				f["x"] = int(lit.Value[0] - '0')
			}
		}
	}
	var atUse FactMap
	visit := func(n ast.Node, f FactMap) {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" {
					atUse = f.Clone()
				}
			}
		}
	}
	in := cfg.Forward(FactMap{}, transfer, nil)
	cfg.EachNode(in, transfer, visit)
	if atUse == nil {
		t.Fatal("use(x) never visited")
	}
	if got := atUse["x"]; got != 1 {
		t.Errorf("fact at use(x) = %d, want 1 (JoinMin of 1 and 2)", got)
	}
	if got := cfg.ExitFacts(in)["x"]; got != 1 {
		t.Errorf("exit fact = %d, want 1", got)
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	// A fact introduced inside a loop body must flow back through the
	// head and be visible on the loop's own next iteration and after it.
	body := parseBody(t, `func f(n int) { for i := 0; i < n; i++ { taint() }; use() }`)
	cfg := NewCFG(body)
	transfer := func(n ast.Node, f FactMap) {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "taint" {
					f["t"] = 1
				}
			}
		}
	}
	in := cfg.Forward(FactMap{}, transfer, nil)
	if got := cfg.ExitFacts(in)["t"]; got != 1 {
		t.Errorf("loop-born fact missing at exit: got %d, want 1", got)
	}
}

func TestCFGGotoForward(t *testing.T) {
	// A forward goto targets a label declared later; the pending edge
	// is resolved at the end of construction.
	cfg := NewCFG(parseBody(t, `func f(c bool) {
	if c {
		goto done
	}
	work()
done:
	use()
}`))
	visited := map[string]bool{}
	record := func(n ast.Node, _ FactMap) {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					visited[id.Name] = true
				}
			}
		}
	}
	noop := func(ast.Node, FactMap) {}
	in := cfg.Forward(FactMap{}, noop, nil)
	cfg.EachNode(in, noop, record)
	if !visited["work"] || !visited["use"] {
		t.Errorf("both work() and use() must be reachable, visited = %v", visited)
	}
}

func TestCFGSwitchDefault(t *testing.T) {
	// Without a default clause the switch head flows directly to the
	// after block; with one it does not.
	countHeadToAfter := func(src string) (headSuccs int) {
		cfg := NewCFG(parseBody(t, src))
		return len(cfg.Entry.Succs)
	}
	noDefault := countHeadToAfter(`func f(x int) { switch x { case 1: a() } }`)
	withDefault := countHeadToAfter(`func f(x int) { switch x { case 1: a(); default: b() } }`)
	if noDefault != 2 {
		t.Errorf("switch without default: head successors = %d, want 2 (case + after)", noDefault)
	}
	if withDefault != 2 {
		t.Errorf("switch with default: head successors = %d, want 2 (case + default)", withDefault)
	}
}

func TestForwardBudgetTerminates(t *testing.T) {
	// A non-monotone transfer (flips a fact every visit) must not hang:
	// the iteration budget cuts the solve off.
	body := parseBody(t, `func f(n int) { for i := 0; i < n; i++ { flip() } }`)
	cfg := NewCFG(body)
	v := 0
	transfer := func(n ast.Node, f FactMap) {
		if _, ok := n.(*ast.ExprStmt); ok {
			v = 1 - v
			f["flip"] = v
		}
	}
	done := make(chan struct{})
	go func() {
		cfg.Forward(FactMap{}, transfer, func(a, b int) int { return a + b })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Forward did not terminate under a non-monotone transfer")
	}
}
