package lintkit

import (
	"go/ast"
	"go/types"
)

// A CallGraph is the lightweight same-package call graph: which
// declared function or method each declared function calls directly.
// It lets analyzers recognize helper functions across call boundaries
// (a guard check factored into a validator, a blocking call buried two
// helpers deep) without whole-program analysis. Cross-package calls
// are not edges — the kit analyzes one package at a time.
type CallGraph struct {
	// Decls maps every declared function or method object with a body
	// to its declaration.
	Decls map[types.Object]*ast.FuncDecl
	// Callees lists the same-package functions each declared function
	// calls directly (including calls inside its function literals).
	Callees map[types.Object][]types.Object
}

// callGraphFactKey is the shared-fact key under which the graph is
// cached, so every analyzer in a run reuses one construction.
const callGraphFactKey = "lintkit.callgraph"

// CallGraph returns the package's call graph, building it on first use
// and sharing it between analyzers through the pass's fact store.
func (p *Pass) CallGraph() *CallGraph {
	if v, ok := p.ImportFact(callGraphFactKey); ok {
		return v.(*CallGraph)
	}
	g := buildCallGraph(p.Files, p.TypesInfo)
	p.ExportFact(callGraphFactKey, g)
	return g
}

func buildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{
		Decls:   map[types.Object]*ast.FuncDecl{},
		Callees: map[types.Object][]types.Object{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj := info.Defs[fn.Name]; obj != nil {
				g.Decls[obj] = fn
			}
		}
	}
	for obj, fn := range g.Decls {
		seen := map[types.Object]bool{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObject(info, call)
			if callee != nil && g.Decls[callee] != nil && !seen[callee] {
				seen[callee] = true
				g.Callees[obj] = append(g.Callees[obj], callee)
			}
			return true
		})
	}
	return g
}

// calleeObject resolves the object a call expression invokes, seeing
// through selectors and generic instantiations. Nil for builtins,
// conversions, and computed function values.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		case *ast.ParenExpr:
			fun = f.X
		case *ast.Ident:
			return info.Uses[f]
		case *ast.SelectorExpr:
			return info.Uses[f.Sel]
		default:
			return nil
		}
	}
}

// DeclOf returns the same-package declaration a call invokes, or nil.
func (g *CallGraph) DeclOf(info *types.Info, call *ast.CallExpr) (types.Object, *ast.FuncDecl) {
	obj := calleeObject(info, call)
	if obj == nil {
		return nil, nil
	}
	return obj, g.Decls[obj]
}

// Reachable returns the declared functions reachable from the roots
// through same-package calls, roots included.
func (g *CallGraph) Reachable(roots []types.Object) map[types.Object]bool {
	out := map[types.Object]bool{}
	var walk func(types.Object)
	walk = func(o types.Object) {
		if out[o] {
			return
		}
		out[o] = true
		for _, c := range g.Callees[o] {
			walk(c)
		}
	}
	for _, r := range roots {
		if g.Decls[r] != nil {
			walk(r)
		}
	}
	return out
}
