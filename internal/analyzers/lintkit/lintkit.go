// Package lintkit is a small, dependency-free analysis framework in the
// spirit of golang.org/x/tools/go/analysis. The repository builds with
// the standard library only, so the xposelint analyzers run on this kit
// instead: an Analyzer inspects one type-checked package through a Pass
// and reports Diagnostics; the driver resolves //xpose:allow
// suppressions and aggregates Findings.
//
// Beyond the per-function AST walk, the kit carries a small
// intraprocedural dataflow layer: a per-function control-flow graph
// (cfg.go), a reaching-facts worklist solver (dataflow.go), a
// same-package call graph (callgraph.go), and a per-package fact store
// shared between analyzers (Pass.ExportFact/ImportFact) so one
// analyzer's classification — e.g. which helpers are overflow guards —
// is visible to the others. There is still no SSA and no cross-package
// fact propagation: every check is local to one package.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a name, a short description, and
// the function that runs it over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //xpose:allow directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description, shown by `xposelint -help`.
	Doc string
	// Run inspects the package behind pass and reports diagnostics via
	// pass.Report. A non-nil error aborts the whole run (reserved for
	// analyzer bugs, not findings).
	Run func(pass *Pass) error
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records a diagnostic against the package.
	Report func(Diagnostic)

	// facts is the per-package store shared by every analyzer in one
	// run, in analyzer order.
	facts map[string]any
}

// ExportFact publishes a value under key for later analyzers running
// on the same package (and for this analyzer's own memoization).
func (p *Pass) ExportFact(key string, v any) {
	if p.facts == nil {
		p.facts = map[string]any{}
	}
	p.facts[key] = v
}

// ImportFact returns the value a prior analyzer exported under key.
func (p *Pass) ImportFact(key string) (any, bool) {
	v, ok := p.facts[key]
	return v, ok
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a diagnostic after suppression resolution, positioned
// with the file set applied.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed reports whether an //xpose:allow directive with a
	// reason covers this finding.
	Suppressed bool
	// Reason is the justification text of the covering directive.
	Reason string
}

// String formats the finding as file:line:col: [analyzer] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// allowRE matches the suppression directive:
//
//	//xpose:allow <analyzer>[,<analyzer>...] -- <reason>
//
// The reason is mandatory; a directive without one is itself reported
// as a violation, so every suppression in the tree is explained. One
// directive may name several analyzers, comma-separated, when a single
// line intentionally trips more than one check.
var allowRE = regexp.MustCompile(`^//xpose:allow\s+([a-z0-9]+(?:\s*,\s*[a-z0-9]+)*)\s*(?:--\s*(.*))?$`)

// allowDirective is one parsed //xpose:allow comment.
type allowDirective struct {
	analyzers []string
	reason    string
	line      int    // line the directive is written on
	file      string // filename
	used      map[string]bool
}

// collectAllows parses every //xpose:allow directive in the files.
// Malformed directives (unknown shape, missing reason) are reported as
// findings under the pseudo-analyzer "xposelint".
func collectAllows(fset *token.FileSet, files []*ast.File, report func(Finding)) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//xpose:allow") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRE.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					report(Finding{
						Analyzer: "xposelint",
						Pos:      pos,
						Message:  `malformed //xpose:allow: want "//xpose:allow <analyzer>[,<analyzer>] -- <reason>" with a non-empty reason`,
					})
					continue
				}
				var names []string
				for _, name := range strings.Split(m[1], ",") {
					names = append(names, strings.TrimSpace(name))
				}
				out = append(out, &allowDirective{
					analyzers: names,
					reason:    strings.TrimSpace(m[2]),
					line:      pos.Line,
					file:      pos.Filename,
					used:      map[string]bool{},
				})
			}
		}
	}
	return out
}

// covers reports whether the directive suppresses a diagnostic from the
// named analyzer at the given position: the directive lists the
// analyzer, same file, same line as the directive or the line directly
// below it (directive-on-its-own-line).
func (d *allowDirective) covers(analyzer string, pos token.Position) bool {
	if d.file != pos.Filename || (d.line != pos.Line && d.line+1 != pos.Line) {
		return false
	}
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the findings
// sorted by position. Suppressed findings are included with Suppressed
// set, so callers can print a suppression summary; unused or malformed
// //xpose:allow directives surface as findings of the pseudo-analyzer
// "xposelint".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		report := func(f Finding) { findings = append(findings, f) }
		allows := collectAllows(pkg.Fset, pkg.Files, report)
		facts := map[string]any{}
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
				facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
				for _, al := range allows {
					if al.covers(a.Name, pos) {
						f.Suppressed = true
						f.Reason = al.reason
						al.used[a.Name] = true
						break
					}
				}
				findings = append(findings, f)
			}
		}
		for _, al := range allows {
			for _, name := range al.analyzers {
				if !al.used[name] {
					findings = append(findings, Finding{
						Analyzer: "xposelint",
						Pos:      token.Position{Filename: al.file, Line: al.line, Column: 1},
						Message:  fmt.Sprintf("unused //xpose:allow %s directive (reason %q suppresses nothing here)", name, al.reason),
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}
