package lintkit

import "errors"

// Sentinel errors for the loader. Every load failure wraps one of
// these, so callers (and the loader's own tests) can distinguish "this
// directory is not a package" from "this package does not type-check"
// with errors.Is instead of string matching.
var (
	// ErrNoModule reports a go.mod without a module directive.
	ErrNoModule = errors.New("lintkit: missing module directive")
	// ErrNoGoFiles reports a directory with no buildable non-test Go
	// files (a test-only or empty package).
	ErrNoGoFiles = errors.New("lintkit: no buildable Go files")
	// ErrImportCycle reports a module-local import cycle.
	ErrImportCycle = errors.New("lintkit: import cycle")
	// ErrTypeCheck reports a package that parsed but failed
	// type-checking; the first underlying type error is included in the
	// message.
	ErrTypeCheck = errors.New("lintkit: type-check failure")
	// ErrOutsideRoots reports a directory that no configured root
	// prefix maps to an import path.
	ErrOutsideRoots = errors.New("lintkit: directory outside every configured root")
)
