package analyzers

import (
	"go/ast"
	"go/types"

	"inplace/internal/analyzers/lintkit"
)

// HotpathAlloc reports operations that allocate, or may allocate, inside
// //xpose:hotpath regions. The transpose kernels promise zero
// allocations per execution once a plan's arena is warm (see the arena
// and planner packages); the compiler will not enforce that promise, so
// this analyzer does. Flagged inside hot regions:
//
//   - append and make: direct allocations. Hot code draws scratch from
//     the plan's arena (frame.elems and friends) instead.
//   - map reads, writes, deletes and range: map access hashes and may
//     grow; hot structures are slices indexed by precomputed integers.
//   - conversions of concrete values to interface types: the value is
//     boxed. This includes calls into fmt and reflect, which box every
//     argument; error construction belongs in cold helpers (see
//     shapeErr and friends in the root package).
//   - closures capturing a loop variable: the capture forces the
//     variable (and usually the closure) to escape on every iteration.
var HotpathAlloc = &lintkit.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in //xpose:hotpath regions",
	Run:  runHotpathAlloc,
}

func runHotpathAlloc(pass *lintkit.Pass) error {
	for _, region := range hotRegions(pass) {
		checkHotAlloc(pass, region)
	}
	return nil
}

func checkHotAlloc(pass *lintkit.Pass, region hotRegion) {
	info := pass.TypesInfo
	where := funcName(region.fn)
	vars := loopVarsIn(info, region.node)
	ast.Inspect(region.node, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, e, where)
		case *ast.IndexExpr:
			if t := info.Types[e.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(e.Pos(), "map access in hotpath function %s; use a precomputed slice", where)
				}
			}
		case *ast.RangeStmt:
			if t := info.Types[e.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(e.Pos(), "range over map in hotpath function %s; use a precomputed slice", where)
				}
			}
		case *ast.FuncLit:
			for _, id := range capturedLoopVars(info, e, vars) {
				pass.Reportf(e.Pos(), "closure in hotpath function %s captures loop variable %s; rebind it outside the closure", where, id.Name)
			}
		}
		return true
	})
}

// checkHotCall flags builtin allocators, fmt/reflect calls, and
// explicit conversions to interface types.
func checkHotCall(pass *lintkit.Pass, call *ast.CallExpr, where string) {
	info := pass.TypesInfo
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append in hotpath function %s; grow scratch in the plan arena instead", where)
			case "make":
				pass.Reportf(call.Pos(), "make in hotpath function %s; allocate at plan time, not per execution", where)
			case "delete":
				pass.Reportf(call.Pos(), "map delete in hotpath function %s; use a precomputed slice", where)
			}
			return
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "fmt":
					pass.Reportf(call.Pos(), "fmt.%s in hotpath function %s; build errors in a cold helper", fun.Sel.Name, where)
					return
				case "reflect":
					pass.Reportf(call.Pos(), "reflect.%s in hotpath function %s; resolve reflection at plan time", fun.Sel.Name, where)
					return
				}
			}
		}
	}
	// Explicit conversion T(x) where T is an interface and x is not:
	// the operand is boxed.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			if at := info.Types[call.Args[0]].Type; at != nil && !types.IsInterface(at) {
				pass.Reportf(call.Pos(), "conversion to interface in hotpath function %s boxes its operand", where)
			}
		}
	}
}
