// Package analyzers implements xposelint, the static-analysis suite
// that enforces this repository's hot-path invariants at build time.
// The transpose kernels make three promises the compiler cannot check:
// a warmed plan executes without heap allocation, every dimension
// product in index algebra is proven to fit in int before it addresses
// memory, and no hot loop pays for hardware division by a plan-constant
// divisor. Each promise has an analyzer:
//
//	hotpathalloc   no allocating constructs in //xpose:hotpath regions
//	indexoverflow  overflow guards dominate r*cols+c index products
//	modreduce      hot-loop % and / by plan constants use mathutil.Divider
//	poolhygiene    sync.Pool resets, no lock copies, no loop-var capture
//	               in work submitted to internal/parallel
//
// Run the suite with
//
//	go run ./cmd/xposelint ./...
//
// or `make lint`, which the ci target includes. The process exits
// non-zero if any unsuppressed finding remains.
//
// # The //xpose:hotpath contract
//
// A function whose doc comment contains the directive line
//
//	//xpose:hotpath
//
// declares itself part of the per-execution hot path: it may run once
// per element, per pass, or per Execute, and therefore submits to the
// strict checks (hotpathalloc, modreduce). A directive comment placed
// on the line directly above a statement marks just that statement's
// subtree, for cold functions with one hot loop. Everything the
// directive does not cover is cold code, where clarity beats cycles and
// fmt.Errorf is welcome.
//
// Annotating a function is a statement about its call frequency, not
// its correctness: annotate kernels, per-pass drivers and validation
// shims on the Execute path; do not annotate planning, tuning or
// one-time setup.
//
// # Suppressions
//
// A finding that is intentional — a cold path the analyzer cannot prove
// cold, a product bounded by construction — is suppressed in place:
//
//	//xpose:allow indexoverflow -- dims are compile-time constants
//
// on the flagged line or the line above it. The reason after the double
// dash is mandatory; a directive without one, and a directive that
// suppresses nothing, are themselves reported. `xposelint -why` lists
// every suppression with its reason, so the full exception budget of
// the tree is reviewable in one place.
package analyzers
