// Package analyzers implements xposelint, the static-analysis suite
// that enforces this repository's hot-path and daemon invariants at
// build time. The transpose kernels and the xposed daemon make
// promises the compiler cannot check: a warmed plan executes without
// heap allocation, every dimension product is proven to fit in int
// before it addresses memory, no hot loop pays for hardware division,
// no critical section blocks, every goroutine can exit, no decoded
// wire length sizes an allocation unchecked, and every public error
// wraps a matchable sentinel. Each promise has an analyzer:
//
//	hotpathalloc   no allocating constructs in //xpose:hotpath regions
//	indexoverflow  overflow guards dominate r*cols+c index products
//	modreduce      hot-loop % and / by plan constants use mathutil.Divider
//	poolhygiene    sync.Pool resets, no lock copies, no loop-var capture
//	               in work submitted to internal/parallel
//	locksafe       no blocking calls, self-deadlocks, order inversions
//	               or leaked critical sections under a sync.Mutex/RWMutex
//	leakcheck      every goroutine has a provable exit path; WaitGroup
//	               Add/Done balance; timers and tickers are stoppable
//	wiresafe       lengths decoded in wire/client packages are bounds-
//	               checked before make, unsafe.Slice or indexing
//	errsentinel    exported-reachable paths wrap package sentinels with
//	               %w; no error construction in hot regions
//
// The first four are per-function syntax walkers; the last four run on
// the lintkit dataflow layer — a per-function CFG, a reaching-facts
// worklist solver and a same-package call graph (see
// internal/analyzers/lintkit) — so "the lock is held here" and "this
// length was never checked on this path" are path-sensitive facts, not
// grep hits. Example diagnostics:
//
//	channel send while s.mu is held in (*Server).notify; release the lock first
//	goroutine started in serve loops forever: the for loop at line 80 has no return, break or done-channel exit
//	decoded length n reaches a make size in readFrame without a bounds check; compare it against an announced limit first
//	fmt.Errorf without %w on the exported-reachable path TuneFor; wrap a package sentinel so callers can errors.Is
//
// Run the suite with
//
//	go run ./cmd/xposelint ./...
//
// or `make lint`, which the ci target includes; `-json` emits the
// findings machine-readably (see `make lint-report`), and the ci gate
// also re-runs the golden tests under the race detector (`lint-race`)
// and holds the full-repo lint to a wall-clock budget (`lint-bench`).
// The process exits non-zero if any unsuppressed finding remains.
//
// # The //xpose:hotpath contract
//
// A function whose doc comment contains the directive line
//
//	//xpose:hotpath
//
// declares itself part of the per-execution hot path: it may run once
// per element, per pass, or per Execute, and therefore submits to the
// strict checks (hotpathalloc, modreduce, and errsentinel's rule that
// hot regions construct no errors). A directive comment placed on the
// line directly above a statement marks just that statement's subtree,
// for cold functions with one hot loop. Everything the directive does
// not cover is cold code, where clarity beats cycles and fmt.Errorf is
// welcome.
//
// Annotating a function is a statement about its call frequency, not
// its correctness: annotate kernels, per-pass drivers and validation
// shims on the Execute path; do not annotate planning, tuning or
// one-time setup.
//
// # Suppressions
//
// A finding that is intentional — a cold path the analyzer cannot prove
// cold, a product bounded by construction, a write that must stay under
// its lock for atomicity — is suppressed in place:
//
//	//xpose:allow indexoverflow -- dims are compile-time constants
//	//xpose:allow leakcheck,errsentinel -- one line, two analyzers, one reason
//
// on the flagged line or the line above it. The reason after the double
// dash is mandatory; a directive without one is reported, and a listed
// analyzer that suppresses nothing is reported together with the
// directive's own reason, so stale exceptions are cleaned up informed.
// `xposelint -why` lists every suppression with its reason, so the full
// exception budget of the tree is reviewable in one place.
package analyzers
