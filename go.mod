module inplace

go 1.22
