package inplace

import (
	"errors"
	"fmt"

	"inplace/internal/core"
	"inplace/internal/cr"
	"inplace/internal/mathutil"
)

// Method selects the engine used to realize the transposition. All
// methods compute the same permutation.
type Method int

const (
	// Auto applies the paper's heuristics: the direction is chosen by
	// shape so the internal columns are as short as possible (§5.2 and
	// §6.1 — skinny AoS shapes automatically keep all column work in
	// cache), running on the cache-aware engine.
	Auto Method = iota
	// Algorithm1 is the paper's Algorithm 1: gather pre-rotation,
	// scatter row shuffle, gather column shuffle.
	Algorithm1
	// GatherOnly replaces the scatter row shuffle with a gather through
	// the closed-form inverse d'^{-1} (§4.2); this is the structure of
	// the paper's parallel CPU implementation (§5.1).
	GatherOnly
	// CacheAware adds the coarse/fine cache-aware rotations and the
	// cycle-following whole-sub-row row permute (§4.6, §4.7); this is
	// the structure of the paper's GPU implementation (§5.2).
	CacheAware
	// SkinnyMethod uses the fused band sweeps of the AoS↔SoA
	// specialization (§6.1); it falls back to CacheAware when the shape
	// is not skinny.
	SkinnyMethod
)

// String names the method.
func (m Method) String() string {
	switch m {
	case Auto:
		return "auto"
	case Algorithm1:
		return "algorithm1"
	case GatherOnly:
		return "gather"
	case CacheAware:
		return "cache-aware"
	case SkinnyMethod:
		return "skinny"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Order identifies the linearization of the array handed to Transpose.
type Order int

const (
	// RowMajor arrays store element (i, j) at offset j + i*cols.
	RowMajor Order = iota
	// ColMajor arrays store element (i, j) at offset i + j*rows. By
	// Theorem 2, transposing a column-major rows×cols array is the same
	// linear permutation as transposing a row-major cols×rows array.
	ColMajor
)

// Options tunes a transposition.
type Options struct {
	// Workers is the number of goroutines; 0 means GOMAXPROCS.
	Workers int
	// Method selects the engine; the zero value Auto is recommended.
	Method Method
	// Order is the linearization of the input array (default RowMajor).
	Order Order
	// BlockWidth overrides the cache-aware sub-row width in elements
	// (0 = one 64-byte cache line of 64-bit elements).
	BlockWidth int
	// Direction forces the C2R or R2C formulation instead of the
	// shape heuristic. Zero is the heuristic.
	Direction Direction
	// Tuning controls whether the planner consults the process wisdom
	// table (measured-optimal decisions recorded by Tune or loaded with
	// LoadWisdom) before falling back to the static heuristics. The zero
	// value WisdomAuto consults wisdom; see the Tuning constants.
	Tuning Tuning
	// MaxScratchBytes caps the auxiliary space the PermuteAxes planner
	// may use: when positive and below every factorization's scratch
	// floor (2·max(rows, cols)·elemSize of the worst pass), the planner
	// falls back to the O(1)-space cycle-leader strategy. Zero means
	// unbounded. The 2D paths ignore it — their floor is fixed by the
	// shape.
	MaxScratchBytes int
}

// Tuning selects how the planner uses the process wisdom table.
type Tuning int

const (
	// WisdomAuto consults wisdom for every option left at its zero value
	// (Method Auto, heuristic Direction, Workers 0, BlockWidth 0):
	// matching wisdom fills those in with the measured-optimal choice,
	// anything the caller set explicitly is honoured, and with no
	// matching wisdom the static heuristics apply unchanged. This is the
	// zero value: an untuned process behaves exactly as before.
	WisdomAuto Tuning = iota
	// WisdomOff ignores the wisdom table entirely; the static heuristics
	// decide. Use it to measure the heuristic baseline in a tuned
	// process.
	WisdomOff
	// WisdomRequired fails plan construction with ErrNoWisdom when no
	// wisdom matches, instead of falling back to the heuristics. Use it
	// where an untuned configuration must be caught at startup rather
	// than silently served.
	WisdomRequired
)

// String names the tuning mode.
func (t Tuning) String() string {
	switch t {
	case WisdomAuto:
		return "wisdom-auto"
	case WisdomOff:
		return "wisdom-off"
	case WisdomRequired:
		return "wisdom-required"
	default:
		return fmt.Sprintf("Tuning(%d)", int(t))
	}
}

// Direction optionally forces which of the two mutually-inverse
// permutation pipelines performs the transposition.
type Direction int

const (
	// HeuristicDirection picks the pipeline with the shorter internal
	// columns — C2R when rows <= cols, R2C otherwise — combining the two
	// complementary performance landscapes as §5.2 prescribes.
	HeuristicDirection Direction = iota
	// ForceC2R always uses the C2R pipeline.
	ForceC2R
	// ForceR2C always uses the R2C pipeline.
	ForceR2C
)

// Plan caches the shape-dependent constants (gcd cofactors, modular
// inverses, fixed-point reciprocals) and resolved engine choice for
// transposing one shape repeatedly.
type Plan struct {
	rows, cols int
	size       int // rows*cols, proven not to overflow int at plan time
	useC2R     bool
	plan       *cr.Plan // C2R: (rows×cols); R2C: (cols×rows)
	variant    core.Variant
	method     Method
	opts       core.Opts
}

// ErrShape reports invalid dimensions.
var ErrShape = errors.New("inplace: rows and cols must be positive")

// ErrLength reports a data slice whose length does not match the plan.
var ErrLength = errors.New("inplace: data length does not match rows*cols")

// ErrOverflow reports dimensions whose product rows*cols does not fit in
// int: no slice can hold such an array, and the index algebra of the
// decomposition would wrap. Every public validation path guards the
// product before any index arithmetic trusts it.
var ErrOverflow = errors.New("inplace: rows*cols overflows int")

// shapeErr, overflowErr and lengthErr build validation errors out of
// line, keeping the fmt machinery off the annotated hot entry points.
func shapeErr(rows, cols int) error {
	return fmt.Errorf("%w (got %dx%d)", ErrShape, rows, cols)
}

func overflowErr(rows, cols int) error {
	return fmt.Errorf("%w (got %dx%d)", ErrOverflow, rows, cols)
}

func lengthErr(got, want int) error {
	return fmt.Errorf("%w (len %d, want %d)", ErrLength, got, want)
}

// checkShape validates a rows×cols shape and returns the element count:
// both dimensions positive and the product representable in int.
func checkShape(rows, cols int) (size int, err error) {
	if rows <= 0 || cols <= 0 {
		return 0, shapeErr(rows, cols)
	}
	size, ok := mathutil.CheckedMul(rows, cols)
	if !ok {
		return 0, overflowErr(rows, cols)
	}
	return size, nil
}

// ErrNoWisdom reports a plan requested with WisdomRequired for a shape
// the process wisdom table has no entry for.
var ErrNoWisdom = errors.New("inplace: no wisdom for shape")

// ErrPerm reports an axis list that is not a permutation of the tensor's
// axes.
var ErrPerm = errors.New("inplace: perm is not a permutation of the axes")

// ErrUnknownMethod reports a Method value outside the declared set.
var ErrUnknownMethod = errors.New("inplace: unknown method")

// ErrElemSize reports an element size the size-dispatched entry points
// (TuneElem, NewPlanElem) cannot handle: only 1, 2, 4 and 8 are wired.
var ErrElemSize = errors.New("inplace: unsupported element size")

// ErrNoTuneResult reports a tuning run that measured no candidates at
// all, typically an out-of-core budget below every schedule floor.
var ErrNoTuneResult = errors.New("inplace: tuning measured no candidates")

// NewPlan validates the shape and resolves the engine for transposing a
// rows×cols array with the given options.
//
// NewPlan does not know the element size, so it never consults the
// wisdom table (whose decisions are per element size); the typed paths —
// NewPlanner, Transpose, TransposeWith, TransposeBatch, the AoS
// conversions — do.
func NewPlan(rows, cols int, o Options) (*Plan, error) {
	return newPlanElem(rows, cols, o, 0)
}

// newPlanElem is NewPlan with a known element size: elemSize > 0 makes
// the wisdom table eligible to resolve every option the caller left at
// its zero value. elemSize 0 (the untyped NewPlan path) skips wisdom.
func newPlanElem(rows, cols int, o Options, elemSize int) (*Plan, error) {
	size, err := checkShape(rows, cols)
	if err != nil {
		return nil, err
	}
	if o.Order == ColMajor {
		// Theorem 2: a column-major rows×cols buffer is bit-identical to
		// a row-major cols×rows buffer; transposing either is the same
		// linear permutation.
		rows, cols = cols, rows
		o.Order = RowMajor
	}
	if elemSize > 0 && o.Tuning != WisdomOff {
		if d, ok := lookupWisdom(rows, cols, elemSize, o.Workers); ok {
			o = applyWisdom(o, d)
		} else if o.Tuning == WisdomRequired {
			return nil, fmt.Errorf("%w (%dx%d, %d-byte elements)", ErrNoWisdom, rows, cols, elemSize)
		}
	}
	p := &Plan{rows: rows, cols: cols, size: size}

	switch o.Direction {
	case ForceC2R:
		p.useC2R = true
	case ForceR2C:
		p.useC2R = false
	default:
		// The C2R and R2C pipelines have complementary performance
		// landscapes with a crossover at square shapes, so a shape
		// heuristic picks between them (paper §5.2). For this
		// implementation the C2R pipeline — whose internal column
		// operations work on `rows`-long strided vectors — is fastest
		// when rows is the smaller dimension, and symmetrically for
		// R2C, so the heuristic prefers the direction with the shorter
		// internal columns. (The paper's GPU implementation had the
		// opposite orientation — m > n → C2R — because its bottleneck
		// was fitting a row in on-chip memory rather than column-pass
		// locality; the combined-heuristic principle is the same.)
		p.useC2R = rows <= cols
	}
	if p.useC2R {
		p.plan = cr.NewPlan(rows, cols)
	} else {
		p.plan = cr.NewPlan(cols, rows)
	}

	// With the direction heuristic, skinny (AoS-like) shapes already run
	// with their small dimension as the internal column length, which is
	// the paper's §6.1 prescription ("all column operations in on-chip
	// memory"); the cache-aware engine therefore serves every shape.
	// SkinnyMethod selects the alternative banded formulation explicitly.
	method := o.Method
	if method == Auto {
		method = CacheAware
	}
	switch method {
	case Algorithm1:
		p.variant = core.Scatter
	case GatherOnly:
		p.variant = core.Gather
	case CacheAware:
		p.variant = core.CacheAware
	case SkinnyMethod:
		p.variant = core.Skinny
	default:
		return nil, fmt.Errorf("%w %v", ErrUnknownMethod, method)
	}
	p.method = method
	p.opts = core.Opts{Workers: o.Workers, Variant: p.variant, BlockW: o.BlockWidth}
	return p, nil
}

// Rows returns the logical row count the plan transposes from.
func (p *Plan) Rows() int { return p.rows }

// Cols returns the logical column count the plan transposes from.
func (p *Plan) Cols() int { return p.cols }

// UsesC2R reports whether the plan runs the C2R pipeline (as opposed to
// R2C).
func (p *Plan) UsesC2R() bool { return p.useC2R }

// Method returns the resolved engine selection: what Auto (or wisdom)
// actually chose. It never returns Auto.
func (p *Plan) Method() Method { return p.method }

// Workers returns the worker count the plan resolved (0 = GOMAXPROCS),
// after any wisdom override.
func (p *Plan) Workers() int { return p.opts.Workers }

// String describes the plan.
func (p *Plan) String() string {
	dir := "R2C"
	if p.useC2R {
		dir = "C2R"
	}
	return fmt.Sprintf("inplace.Plan(%dx%d %s %v)", p.rows, p.cols, dir, p.variant)
}

// Do transposes data according to the plan: data must hold rows*cols
// elements; afterwards it holds the transposed array (cols×rows in the
// original order convention).
//
//xpose:hotpath
func Do[T any](p *Plan, data []T) error {
	if len(data) != p.size {
		return lengthErr(len(data), p.size)
	}
	if p.useC2R {
		core.C2R(data, p.plan, p.opts)
	} else {
		core.R2C(data, p.plan, p.opts)
	}
	return nil
}

// Transpose transposes the row-major rows×cols array held in data, in
// place, with default options: afterwards data holds the row-major
// cols×rows transpose.
func Transpose[T any](data []T, rows, cols int) error {
	return TransposeWith(data, rows, cols, Options{})
}

// TransposeWith is Transpose with explicit options. Calls route through
// a process-wide planner cache keyed by shape, options and element type,
// so repeated transposes of one shape reuse the precomputed schedule and
// scratch arena; callers wanting explicit control over that lifetime
// should hold a Planner instead.
//
//xpose:hotpath
func TransposeWith[T any](data []T, rows, cols int, o Options) error {
	pl, err := plannerFor[T](rows, cols, o)
	if err != nil {
		return err
	}
	return pl.Execute(data)
}

// C2R applies the paper's C2R permutation to a row-major m×n array with
// the selected engine; the buffer then holds the row-major n×m
// transpose. It is exposed directly for callers who need the paper's
// primitive semantics (e.g. composing with other permutations); most
// callers should use Transpose.
func C2R[T any](data []T, m, n int, o Options) error {
	size, err := checkShape(m, n)
	if err != nil {
		return err
	}
	if len(data) != size {
		return lengthErr(len(data), size)
	}
	core.C2R(data, cr.NewPlan(m, n), core.Opts{Workers: o.Workers, Variant: methodVariant(o.Method), BlockW: o.BlockWidth})
	return nil
}

// R2C applies the inverse permutation of C2R: a row-major n×m buffer
// becomes the row-major m×n transpose.
func R2C[T any](data []T, m, n int, o Options) error {
	size, err := checkShape(m, n)
	if err != nil {
		return err
	}
	if len(data) != size {
		return lengthErr(len(data), size)
	}
	core.R2C(data, cr.NewPlan(m, n), core.Opts{Workers: o.Workers, Variant: methodVariant(o.Method), BlockW: o.BlockWidth})
	return nil
}

func methodVariant(m Method) core.Variant {
	switch m {
	case Algorithm1:
		return core.Scatter
	case GatherOnly:
		return core.Gather
	case SkinnyMethod:
		return core.Skinny
	default:
		return core.CacheAware
	}
}
