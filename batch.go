package inplace

import (
	"fmt"

	"inplace/internal/parallel"
)

// TransposeBatch transposes `count` equally-shaped rows×cols matrices
// stored back to back in data, each in place. Batches of small matrices
// are the register-file workload of the paper's Section 6 scaled up to
// memory: each matrix transposes independently, so the batch
// parallelizes over matrices with perfect load balance, and the plan —
// gcd cofactors, modular inverses, reciprocals — is computed once and
// shared (§6.2.4: the dimensions are static, so index computation is
// amortized).
//
// Matrices small enough that parallelizing their internal passes would
// only add synchronization run sequentially within one worker.
func TransposeBatch[T any](data []T, count, rows, cols int, opts ...Options) error {
	o := Options{}
	if len(opts) > 0 {
		o = opts[0]
	}
	if count <= 0 {
		return fmt.Errorf("%w (got count=%d)", ErrShape, count)
	}
	p, err := NewPlan(rows, cols, o)
	if err != nil {
		return err
	}
	stride := rows * cols
	if len(data) != count*stride {
		return fmt.Errorf("%w (len %d, want %d)", ErrLength, len(data), count*stride)
	}
	parallel.For(count, o.Workers, func(w, lo, hi int) {
		// Each matrix runs single-threaded; the batch dimension provides
		// the parallelism.
		inner := *p
		inner.opts.Workers = 1
		for k := lo; k < hi; k++ {
			// Do only fails on a length mismatch, which the batch-level
			// check above has already excluded.
			if err := Do(&inner, data[k*stride:(k+1)*stride]); err != nil {
				panic(err)
			}
		}
	})
	return nil
}
