package inplace

import (
	"fmt"

	"inplace/internal/mathutil"
	"inplace/internal/parallel"
)

// TransposeBatch transposes `count` equally-shaped rows×cols matrices
// stored back to back in data, each in place. Batches of small matrices
// are the register-file workload of the paper's Section 6 scaled up to
// memory: each matrix transposes independently, so the batch
// parallelizes over matrices with perfect load balance, and the plan —
// gcd cofactors, modular inverses, reciprocals — is computed once and
// shared (§6.2.4: the dimensions are static, so index computation is
// amortized).
//
// The per-matrix planner comes from the process-wide planner cache and
// the batch loop runs on the persistent worker pool, so repeated batch
// calls of one shape skip both planning and goroutine spawning.
//
// Matrices small enough that parallelizing their internal passes would
// only add synchronization run sequentially within one worker.
func TransposeBatch[T any](data []T, count, rows, cols int, opts ...Options) error {
	o := Options{}
	if len(opts) > 0 {
		o = opts[0]
	}
	if count <= 0 {
		return fmt.Errorf("%w (got count=%d)", ErrShape, count)
	}
	// Each matrix runs single-threaded; the batch dimension provides the
	// parallelism. The Workers=1 planner's passes never dispatch, so
	// running them on pool workers cannot nest pool dispatches.
	inner := o
	inner.Workers = 1
	pl, err := plannerFor[T](rows, cols, inner)
	if err != nil {
		return err
	}
	// plannerFor has already proven rows*cols fits in int; the batch
	// length count*stride needs its own overflow guard.
	stride := pl.p.size
	total, ok := mathutil.CheckedMul(count, stride)
	if !ok {
		return fmt.Errorf("%w (got count=%d of %dx%d)", ErrOverflow, count, rows, cols)
	}
	if len(data) != total {
		return lengthErr(len(data), total)
	}
	workers := parallel.Workers(o.Workers)
	run := func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			// Execute only fails on a length mismatch, which the
			// batch-level check above has already excluded.
			if err := pl.Execute(data[k*stride : (k+1)*stride]); err != nil {
				panic(err)
			}
		}
	}
	if workers > 1 {
		parallel.Shared().For(count, o.Workers, run)
	} else {
		parallel.For(count, o.Workers, run)
	}
	return nil
}
