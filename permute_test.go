package inplace

import (
	"errors"
	"math/rand"
	"testing"
)

// naivePermute is the out-of-place reference: a strided copy into a
// fresh buffer following the numpy.transpose convention (result axis j
// is source axis perm[j]).
func naivePermute[T any](src []T, dims, perm []int) []T {
	k := len(dims)
	srcStrides := make([]int, k)
	acc := 1
	for i := k - 1; i >= 0; i-- {
		srcStrides[i] = acc
		acc *= dims[i]
	}
	dstStrides := make([]int, k)
	acc = 1
	for j := k - 1; j >= 0; j-- {
		dstStrides[j] = acc
		acc *= dims[perm[j]]
	}
	out := make([]T, len(src))
	coord := make([]int, k)
	for idx := range src {
		rem := idx
		for i := 0; i < k; i++ {
			coord[i] = rem / srcStrides[i]
			rem %= srcStrides[i]
		}
		d := 0
		for j := 0; j < k; j++ {
			d += coord[perm[j]] * dstStrides[j]
		}
		out[d] = src[idx]
	}
	return out
}

func permutedDims(dims, perm []int) []int {
	out := make([]int, len(perm))
	for j, a := range perm {
		out[j] = dims[a]
	}
	return out
}

func fillSeq(n int) []uint32 {
	data := make([]uint32, n)
	for i := range data {
		data[i] = uint32(i) * 2654435761
	}
	return data
}

func checkPermute(t *testing.T, dims, perm []int, o Options) {
	t.Helper()
	size := 1
	for _, d := range dims {
		size *= d
	}
	data := fillSeq(size)
	orig := append([]uint32(nil), data...)
	want := naivePermute(orig, dims, perm)

	if err := PermuteAxes(data, dims, perm, o); err != nil {
		t.Fatalf("PermuteAxes(%v, %v): %v", dims, perm, err)
	}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("PermuteAxes(%v, %v, %+v): wrong at %d", dims, perm, o, i)
		}
	}

	// Inverse composition: permuting the result by perm⁻¹ restores the
	// original buffer.
	inv := make([]int, len(perm))
	for j, a := range perm {
		inv[a] = j
	}
	if err := PermuteAxes(data, permutedDims(dims, perm), inv, o); err != nil {
		t.Fatalf("inverse PermuteAxes(%v, %v): %v", permutedDims(dims, perm), inv, err)
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatalf("PermuteAxes(%v, %v, %+v): inverse round trip wrong at %d", dims, perm, o, i)
		}
	}
}

func TestPermuteAxesAgainstReference(t *testing.T) {
	cases := []struct {
		dims []int
		perm []int
	}{
		{[]int{6, 7}, []int{1, 0}},
		{[]int{2, 3, 4}, []int{2, 0, 1}},
		{[]int{2, 3, 4}, []int{1, 2, 0}},
		{[]int{5, 4, 3}, []int{2, 1, 0}},
		{[]int{4, 8, 8, 3}, []int{0, 3, 1, 2}}, // NHWC -> NCHW
		{[]int{4, 3, 8, 8}, []int{0, 2, 3, 1}}, // NCHW -> NHWC
		{[]int{3, 4, 5, 2}, []int{3, 2, 1, 0}},
		{[]int{2, 3, 2, 2, 3}, []int{4, 2, 0, 3, 1}},
		{[]int{7, 1, 5, 1}, []int{2, 0, 3, 1}}, // size-1 axes
		{[]int{16, 1, 9}, []int{2, 1, 0}},
	}
	for _, c := range cases {
		checkPermute(t, c.dims, c.perm, Options{Workers: 1})
		checkPermute(t, c.dims, c.perm, Options{Workers: 4})
	}
}

func TestPermuteAxesStrategies(t *testing.T) {
	dims := []int{3, 4, 5, 2}
	perm := []int{2, 0, 3, 1}
	size := 3 * 4 * 5 * 2
	want := naivePermute(fillSeq(size), dims, perm)
	for _, strat := range []string{"greedy", "inverse", "cycle"} {
		pp, err := planPermute(dims, perm, Options{Workers: 1}, 4, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if pp.Strategy() != strat {
			t.Fatalf("forced %s, got %s", strat, pp.Strategy())
		}
		pl := newPermutePlanner[uint32](pp)
		data := fillSeq(size)
		if err := pl.Execute(data); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("strategy %s: wrong at %d", strat, i)
			}
		}
	}
}

// Rank-2 [1,0] must be byte-identical to Transpose and route through the
// same planning path: a single single-slab pass whose 2D plan matches
// the one NewPlanner builds.
func TestPermuteAxesRank2MatchesTranspose(t *testing.T) {
	rows, cols := 37, 53
	a := fillSeq(rows * cols)
	b := append([]uint32(nil), a...)

	if err := Transpose(a, rows, cols); err != nil {
		t.Fatal(err)
	}
	if err := PermuteAxes(b, []int{rows, cols}, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank-2 permute diverges from Transpose at %d", i)
		}
	}

	pl, err := NewPermutePlanner[uint32]([]int{rows, cols}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	pp := pl.Plan()
	if pp.Passes() != 1 {
		t.Fatalf("rank-2 plan has %d passes, want 1", pp.Passes())
	}
	p2d, err := NewPlanner[uint32](rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	got, want := pp.steps[0].plan, p2d.Plan()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() ||
		got.UsesC2R() != want.UsesC2R() || got.Method() != want.Method() {
		t.Fatalf("rank-2 step plan %v diverges from Transpose plan %v", got, want)
	}
}

func TestPermuteAxesDegenerate(t *testing.T) {
	// Identity permutation: no-op, any rank.
	data := fillSeq(24)
	orig := append([]uint32(nil), data...)
	if err := PermuteAxes(data, []int{2, 3, 4}, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatal("identity permutation modified the buffer")
		}
	}
	pl, err := NewPermutePlanner[uint32]([]int{2, 3, 4}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Plan().Strategy() != "noop" {
		t.Fatalf("identity strategy = %q, want noop", pl.Plan().Strategy())
	}

	// A permutation that only moves size-1 axes is also a no-op.
	pl2, err := NewPermutePlanner[uint32]([]int{1, 6, 1, 4}, []int{2, 1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if pl2.Plan().Strategy() != "noop" {
		t.Fatalf("unit-axis shuffle strategy = %q, want noop", pl2.Plan().Strategy())
	}

	// Rank-1 and scalar tensors.
	one := []uint32{7}
	if err := PermuteAxes(one, []int{1}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := PermuteAxes([]uint32{1, 2, 3}, []int{3}, []int{0}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteAxesErrors(t *testing.T) {
	data := make([]uint32, 6)
	if err := PermuteAxes(data, []int{2, 0}, []int{0, 1}); !errors.Is(err, ErrShape) {
		t.Errorf("zero dim: err = %v, want ErrShape", err)
	}
	if err := PermuteAxes(data, []int{1 << 31, 1 << 31, 1 << 31}, []int{0, 1, 2}); !errors.Is(err, ErrOverflow) {
		t.Errorf("overflow: err = %v, want ErrOverflow", err)
	}
	if err := PermuteAxes(data, []int{2, 3}, []int{0, 0}); !errors.Is(err, ErrPerm) {
		t.Errorf("duplicate axis: err = %v, want ErrPerm", err)
	}
	if err := PermuteAxes(data, []int{2, 3}, []int{1, 0, 2}); !errors.Is(err, ErrPerm) {
		t.Errorf("rank mismatch: err = %v, want ErrPerm", err)
	}
	if err := PermuteAxes(data[:5], []int{2, 3}, []int{1, 0}); !errors.Is(err, ErrLength) {
		t.Errorf("short buffer: err = %v, want ErrLength", err)
	}
	if err := PermuteAxes(data, []int{2, 3}, []int{1, 0}, Options{Tuning: WisdomRequired}); !errors.Is(err, ErrNoWisdom) {
		t.Errorf("wisdom required: err = %v, want ErrNoWisdom", err)
	}
}

// MaxScratchBytes below the factored floor must route to the cycle
// strategy, and the result must stay correct.
func TestPermuteAxesScratchBudget(t *testing.T) {
	dims := []int{6, 50, 4}
	perm := []int{2, 1, 0}
	pl, err := NewPermutePlanner[uint32](dims, perm, Options{MaxScratchBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Plan().Strategy() != "cycle" {
		t.Fatalf("budgeted strategy = %q, want cycle", pl.Plan().Strategy())
	}
	size := 6 * 50 * 4
	data := fillSeq(size)
	want := naivePermute(fillSeq(size), dims, perm)
	if err := pl.Execute(data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("cycle strategy wrong at %d", i)
		}
	}
}

// Perm wisdom steers the planner: a recorded decision for the canonical
// form must be picked up by a fresh planner, and WisdomRequired must be
// satisfied by it.
func TestPermuteWisdomSteersPlanner(t *testing.T) {
	defer ClearWisdom()
	dims := []int{4, 8, 8, 3}
	perm := []int{0, 3, 1, 2}
	if _, err := TunePermute[uint32](dims, perm, TuneConfig{Workers: 1, Fast: true}); err != nil {
		t.Fatal(err)
	}
	if PermWisdomLen() != 1 {
		t.Fatalf("PermWisdomLen = %d, want 1", PermWisdomLen())
	}
	pl, err := NewPermutePlanner[uint32](dims, perm, Options{Tuning: WisdomRequired})
	if err != nil {
		t.Fatalf("WisdomRequired after TunePermute: %v", err)
	}
	if s := pl.Plan().Strategy(); !(s == "greedy" || s == "inverse" || s == "cycle") {
		t.Fatalf("tuned strategy = %q", s)
	}
	// A different raw shape with the same canonical form shares the entry.
	if _, err := NewPermutePlanner[uint32]([]int{4, 1, 8, 8, 3}, []int{0, 1, 4, 2, 3}, Options{Tuning: WisdomRequired}); err != nil {
		t.Fatalf("canonical-form sharing: %v", err)
	}
	checkPermute(t, dims, perm, Options{})
}

func TestPermuteRandomizedAllRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		k := 2 + rng.Intn(4) // rank 2..5
		dims := make([]int, k)
		for i := range dims {
			dims[i] = 1 + rng.Intn(6)
		}
		perm := rng.Perm(k)
		checkPermute(t, dims, perm, Options{Workers: 1 + rng.Intn(3)})
	}
}
