package inplace

import (
	"math/rand"
	"testing"
)

func TestTransposeBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 30; trial++ {
		count := 1 + rng.Intn(20)
		rows := 1 + rng.Intn(24)
		cols := 1 + rng.Intn(24)
		stride := rows * cols
		data := make([]int, count*stride)
		for i := range data {
			data[i] = rng.Int()
		}
		want := make([]int, len(data))
		for k := 0; k < count; k++ {
			copy(want[k*stride:], reference(data[k*stride:(k+1)*stride], rows, cols))
		}
		if err := TransposeBatch(data, count, rows, cols, Options{Workers: 4}); err != nil {
			t.Fatal(err)
		}
		if !equal(data, want) {
			t.Fatalf("batch %dx(%dx%d) wrong", count, rows, cols)
		}
	}
}

func TestTransposeBatchSingle(t *testing.T) {
	data := intSeq(6)
	if err := TransposeBatch(data, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if !equal(data, []int{0, 3, 1, 4, 2, 5}) {
		t.Fatalf("single batch wrong: %v", data)
	}
}

func TestTransposeBatchErrors(t *testing.T) {
	if err := TransposeBatch(make([]int, 12), 0, 2, 3); err == nil {
		t.Error("zero count must fail")
	}
	if err := TransposeBatch(make([]int, 11), 2, 2, 3); err == nil {
		t.Error("length mismatch must fail")
	}
	if err := TransposeBatch(make([]int, 12), 2, -2, 3); err == nil {
		t.Error("bad shape must fail")
	}
}

func TestTransposeBatchRoundTrip(t *testing.T) {
	count, rows, cols := 50, 17, 9
	data := intSeq(count * rows * cols)
	orig := append([]int(nil), data...)
	if err := TransposeBatch(data, count, rows, cols); err != nil {
		t.Fatal(err)
	}
	if err := TransposeBatch(data, count, cols, rows); err != nil {
		t.Fatal(err)
	}
	if !equal(data, orig) {
		t.Fatal("batch round trip failed")
	}
}
