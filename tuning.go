package inplace

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"time"

	"inplace/internal/core"
	"inplace/internal/parallel"
	"inplace/internal/tune"
)

// This file is the public face of the autotuner (internal/tune): a
// process-wide wisdom table of measured-optimal execution strategies,
// populated by Tune or loaded from disk with LoadWisdom, that the
// planner consults (per Options.Tuning) before falling back to the
// paper's static shape heuristics. The pattern is FFTW's wisdom: plan
// quality comes from measurement, persistence makes the measurement pay
// once per machine instead of once per process.

// wisdomTab is the process wisdom table. All access goes through the
// helpers below; the planner cache is flushed on every mutation so
// cached planners never outlive the wisdom that shaped them.
var wisdomTab = struct {
	mu sync.RWMutex
	t  *tune.Table
}{t: tune.NewTable()}

// lookupWisdom returns the recorded decision for an order-normalized
// rows×cols shape with the given element size under the worker budget
// that workersOpt resolves to.
func lookupWisdom(rows, cols, elemSize, workersOpt int) (tune.Decision, bool) {
	k := tune.Key{Rows: rows, Cols: cols, ElemSize: elemSize, MaxWorkers: parallel.Workers(workersOpt)}
	wisdomTab.mu.RLock()
	defer wisdomTab.mu.RUnlock()
	return wisdomTab.t.Lookup(k)
}

// applyWisdom fills every option the caller left at its zero value from
// a wisdom decision. Explicit settings always win: wisdom refines the
// heuristics, it does not override the caller.
func applyWisdom(o Options, d tune.Decision) Options {
	if o.Method == Auto {
		if v, ok := d.CoreVariant(); ok {
			o.Method = methodForVariant(v)
		}
	}
	if o.Direction == HeuristicDirection {
		if d.C2R {
			o.Direction = ForceC2R
		} else {
			o.Direction = ForceR2C
		}
	}
	if o.Workers == 0 {
		o.Workers = d.Workers
	}
	if o.BlockWidth == 0 {
		o.BlockWidth = d.BlockW
	}
	return o
}

// TuneConfig bounds a Tune call.
type TuneConfig struct {
	// Workers is the worker budget the tuner may spend; 0 means
	// GOMAXPROCS. The budget becomes part of the wisdom key: a decision
	// tuned under budget 4 is only consulted by plans resolving to a
	// 4-worker budget.
	Workers int
	// Fast caps every measurement knob for smoke runs: single-sample
	// candidates with a microsecond-scale floor. Decisions are noisy;
	// use it to exercise the code path, not to tune production plans.
	Fast bool
	// Reps overrides the samples per candidate (median taken); 0 keeps
	// the default (5, or 1 when Fast).
	Reps int
	// MaxCandidateTime caps the measurement time of one candidate; 0
	// keeps the default (80ms, or 2ms when Fast).
	MaxCandidateTime time.Duration
}

func (c TuneConfig) internal() tune.Config {
	cfg := tune.Config{MaxWorkers: c.Workers}
	if c.Fast {
		cfg = tune.Smoke()
		cfg.MaxWorkers = c.Workers
	}
	if c.Reps > 0 {
		cfg.Reps = c.Reps
	}
	if c.MaxCandidateTime > 0 {
		cfg.MaxCandidate = c.MaxCandidateTime
	}
	return cfg
}

// TuneResult reports the winning decision of one Tune call.
type TuneResult struct {
	Rows, Cols int
	ElemSize   int
	MaxWorkers int // resolved budget the decision is keyed under

	Method     Method
	Direction  Direction
	Workers    int
	BlockWidth int
	GBps       float64 // throughput of the winning measurement
}

// String summarizes the result.
func (r TuneResult) String() string {
	dir := "R2C"
	if r.Direction == ForceC2R {
		dir = "C2R"
	}
	return fmt.Sprintf("tuned %dx%d (%dB, budget %d): %v %s workers=%d blockw=%d (%.2f GB/s)",
		r.Rows, r.Cols, r.ElemSize, r.MaxWorkers, r.Method, dir, r.Workers, r.BlockWidth, r.GBps)
}

// Tune measures the real candidate space for transposing row-major
// rows×cols arrays of T — pass pipeline (Algorithm1 scatter, gather,
// cache-aware) vs. the skinny banded specialization, C2R vs. R2C
// direction, worker counts up to the budget, cache-aware sub-row widths
// — with short repeatable runs and outlier-robust statistics, records
// the winner in the process wisdom table, and returns it. Subsequent
// planners for the shape (with Options.Tuning at WisdomAuto) use the
// measured decision; SaveWisdom persists it for future processes.
//
// Tuning a shape takes from milliseconds (Fast) to a few hundred
// milliseconds, and allocates a rows×cols scratch matrix for the
// duration of the call.
func Tune[T any](rows, cols int, cfgs ...TuneConfig) (TuneResult, error) {
	c := TuneConfig{}
	if len(cfgs) > 0 {
		c = cfgs[0]
	}
	d, err := tune.TuneFor[T](rows, cols, c.internal())
	if err != nil {
		return TuneResult{}, err
	}
	elemSize := int(reflect.TypeFor[T]().Size())
	k := tune.Key{Rows: rows, Cols: cols, ElemSize: elemSize, MaxWorkers: parallel.Workers(c.Workers)}
	storeWisdom(k, d)

	v, _ := d.CoreVariant()
	res := TuneResult{
		Rows: rows, Cols: cols, ElemSize: elemSize, MaxWorkers: k.MaxWorkers,
		Method: methodForVariant(v), Direction: ForceR2C,
		Workers: d.Workers, BlockWidth: d.BlockW, GBps: d.GBps,
	}
	if d.C2R {
		res.Direction = ForceC2R
	}
	return res, nil
}

// TuneElem is Tune for callers that know the element width in bytes but
// not the type — raw-buffer CLIs like cmd/xpose and cmd/xposetune.
// Supported widths are 1, 2, 4 and 8; wisdom recorded for a width is
// consulted by any element type of that size.
func TuneElem(rows, cols, elemSize int, cfgs ...TuneConfig) (TuneResult, error) {
	switch elemSize {
	case 1:
		return Tune[uint8](rows, cols, cfgs...)
	case 2:
		return Tune[uint16](rows, cols, cfgs...)
	case 4:
		return Tune[uint32](rows, cols, cfgs...)
	case 8:
		return Tune[uint64](rows, cols, cfgs...)
	default:
		return TuneResult{}, fmt.Errorf("%w: %d (want 1, 2, 4 or 8)", ErrElemSize, elemSize)
	}
}

func storeWisdom(k tune.Key, d tune.Decision) {
	wisdomTab.mu.Lock()
	wisdomTab.t.Store(k, d)
	wisdomTab.mu.Unlock()
	// Cached planners for this shape were resolved against the old
	// wisdom; rebuild on next use.
	flushPlannerCache()
}

// LoadWisdom merges the wisdom file at path into the process table.
// Entries in the file win over entries already in the table (the file is
// assumed fresher). Corrupt files are rejected with an error satisfying
// errors.Is(err, tune.ErrCorrupt); files written by an unknown format
// version merge nothing and return nil, so version skew degrades to the
// static heuristics instead of failing.
//
// Wisdom is measurement: a table records what was fastest on the
// machine that ran the tuner, under that machine's core count and cache
// hierarchy. Loading another machine's wisdom is safe — every decision
// still computes a correct transposition — but its choices may be far
// from optimal there; re-tune per deployment target.
func LoadWisdom(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := tune.Load(f)
	if err != nil {
		return fmt.Errorf("inplace: loading wisdom %s: %w", path, err)
	}
	wisdomTab.mu.Lock()
	wisdomTab.t.Merge(t)
	wisdomTab.mu.Unlock()
	flushPlannerCache()
	return nil
}

// SaveWisdom writes the process wisdom table to path as versioned JSON.
// The file round-trips: LoadWisdom of a SaveWisdom output reproduces the
// table exactly.
func SaveWisdom(path string) error {
	wisdomTab.mu.RLock()
	snapshot := wisdomTab.t.Clone()
	wisdomTab.mu.RUnlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snapshot.Save(f); err != nil {
		f.Close()
		return fmt.Errorf("inplace: saving wisdom %s: %w", path, err)
	}
	return f.Close()
}

// WisdomLen returns the number of decisions in the process wisdom table.
func WisdomLen() int {
	wisdomTab.mu.RLock()
	defer wisdomTab.mu.RUnlock()
	return wisdomTab.t.Len()
}

// ClearWisdom empties the process wisdom table (and flushes the planner
// cache), restoring the pure static heuristics.
func ClearWisdom() {
	wisdomTab.mu.Lock()
	wisdomTab.t = tune.NewTable()
	wisdomTab.mu.Unlock()
	flushPlannerCache()
}

// methodForVariant maps an engine variant back to its public Method.
func methodForVariant(v core.Variant) Method {
	switch v {
	case core.Scatter:
		return Algorithm1
	case core.Gather:
		return GatherOnly
	case core.Skinny:
		return SkinnyMethod
	default:
		return CacheAware
	}
}
